#!/usr/bin/env python3
"""Perf regression gate over BENCH_perf.json.

Compares the tracked throughput metrics of a fresh bench_perf run
against the committed baseline (bench/perf_baseline.json) and fails
when any metric regresses beyond the tolerance. Most tracked
metrics are higher-is-better:

    current >= baseline * (1 - tolerance)

Metrics named in the baseline's "lower_is_better" list (memory
footprints such as driver_loop.peak_rss_mb) gate in the other
direction:

    current <= baseline * (1 + tolerance)

Additional producer files (bench_longrun writes its driver_loop
section to its own JSON so its RSS number is not polluted by the
bench_perf process) are overlaid with --merge.

Usage (the gate needs both producers — without --merge the
driver_loop floors report MISSING):
    tools/check_perf.py BENCH_perf.json bench/perf_baseline.json \
        --merge BENCH_longrun.json
    tools/check_perf.py BENCH_perf.json bench/perf_baseline.json \
        --merge BENCH_longrun.json --tolerance 0.25
    tools/check_perf.py BENCH_perf.json bench/perf_baseline.json \
        --merge BENCH_longrun.json \
        --update   # refresh the baseline floors from this run

--update refreshes only the metrics the current (merged) run
produced; floors owned by a producer that did not run are kept,
with a notice, so a bench_perf-only refresh cannot silently disarm
the bench_longrun gate.

Reproduce the CI perf job locally:
    cmake -B build-release -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release --target bench_perf bench_longrun
    (cd build-release && ./bench_perf)
    (cd build-release && ./bench_longrun --requests=200000 \
        --json=BENCH_longrun.json)
    python3 tools/check_perf.py build-release/BENCH_perf.json \
        bench/perf_baseline.json \
        --merge build-release/BENCH_longrun.json
"""

import argparse
import json
import sys


def tracked_metrics(perf):
    """Flatten the tracked metrics of a (merged) BENCH_perf dict."""
    metrics = {}
    if "cost_model" in perf:
        metrics["cost_model.speedup"] = perf["cost_model"]["speedup"]
    for name, value in perf.get("stage_exec", {}).items():
        metrics[f"stage_exec.{name}"] = value
    for name, value in perf.get("workload_gen", {}).items():
        metrics[f"workload_gen.{name}"] = value
    for sweep in perf.get("figure_sweeps", []):
        key = f"figure_sweeps.{sweep['name']}.stages_per_sec"
        metrics[key] = sweep["stages_per_sec"]
    driver = perf.get("driver_loop", {})
    for name in ("requests_per_sec", "peak_rss_mb"):
        if name in driver:
            metrics[f"driver_loop.{name}"] = driver[name]
    for section in ("fleet", "faults", "policies", "sessions"):
        values = perf.get(section, {})
        if "requests_per_sec" in values:
            metrics[f"{section}.requests_per_sec"] = (
                values["requests_per_sec"])
    cache = perf.get("prefix_cache", {})
    if "ops_per_sec" in cache:
        metrics["prefix_cache.ops_per_sec"] = cache["ops_per_sec"]
    return metrics


def load_json(path, role):
    """Load one producer/baseline file, dying with a single
    readable line (file and reason) instead of a traceback when it
    is missing or not JSON — the usual CI failure mode is a bench
    that never ran or wrote a truncated file."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"check_perf: cannot read {role} '{path}': "
                 f"{e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_perf: {role} '{path}' is not valid JSON "
                 f"(line {e.lineno}: {e.msg}); was its producer "
                 f"interrupted?")


def main():
    parser = argparse.ArgumentParser(
        description="perf regression gate over BENCH_perf.json")
    parser.add_argument("current", help="BENCH_perf.json from bench_perf")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--merge", action="append", default=[], metavar="JSON",
        help="overlay another producer's JSON (e.g. bench_longrun's "
             "driver_loop section) before checking")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional regression (default: the "
             "baseline's own tolerance field, else 0.25)")
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline's metrics from the current run "
             "instead of checking")
    args = parser.parse_args()

    perf = load_json(args.current, "current run")
    for extra in args.merge:
        merged = load_json(extra, "--merge file")
        if not isinstance(merged, dict):
            sys.exit(f"check_perf: --merge file '{extra}' must "
                     f"hold a JSON object of metric sections")
        perf.update(merged)
    current = tracked_metrics(perf)

    baseline = load_json(args.baseline, "baseline")
    if "metrics" not in baseline or not isinstance(
            baseline["metrics"], dict):
        sys.exit(f"check_perf: baseline '{args.baseline}' has no "
                 f"'metrics' object; see bench/perf_baseline.json")
    lower_is_better = set(baseline.get("lower_is_better", []))

    if args.update:
        # Refresh in place: update/add what this run measured, keep
        # floors owned by producers that did not run (dropping them
        # would silently disarm their gate).
        merged = dict(baseline.get("metrics", {}))
        merged.update({k: round(v, 3) for k, v in current.items()})
        for key in sorted(set(merged) - set(current)):
            print(f"note: {key} not in this run; keeping the "
                  f"committed floor (run its producer and --merge "
                  f"to refresh it)")
        baseline["metrics"] = merged
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} from {args.current}")
        return 0

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.25)

    failures = []
    width = max(len(k) for k in baseline["metrics"])
    print(f"perf gate: tolerance {tolerance:.0%}")
    for key, floor in sorted(baseline["metrics"].items()):
        have = current.get(key)
        if have is None:
            failures.append(key)
            print(f"  {key:<{width}}  MISSING from current run")
            continue
        if key in lower_is_better:
            allowed = floor * (1.0 + tolerance)
            ok = have <= allowed
        else:
            allowed = floor * (1.0 - tolerance)
            ok = have >= allowed
        direction = "<=" if key in lower_is_better else ">="
        status = "ok" if ok else "REGRESSED"
        print(f"  {key:<{width}}  baseline {floor:12.3f}  "
              f"current {have:12.3f}  ({have / floor:6.2f}x, "
              f"want {direction} {allowed:.3f})  {status}")
        if not ok:
            failures.append(key)

    extra = sorted(set(current) - set(baseline["metrics"]))
    for key in extra:
        print(f"  {key:<{width}}  untracked (add to baseline "
              f"via --update)")

    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed more "
              f"than {tolerance:.0%} beyond baseline")
        return 1
    print("PASS: no tracked metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
