#!/usr/bin/env python3
"""Perf regression gate over BENCH_perf.json.

Compares the tracked throughput metrics of a fresh bench_perf run
against the committed baseline (bench/perf_baseline.json) and fails
when any metric regresses beyond the tolerance. All tracked metrics
are higher-is-better, so the gate is:

    current >= baseline * (1 - tolerance)

Usage:
    tools/check_perf.py BENCH_perf.json bench/perf_baseline.json
    tools/check_perf.py BENCH_perf.json bench/perf_baseline.json \
        --tolerance 0.25
    tools/check_perf.py BENCH_perf.json bench/perf_baseline.json \
        --update   # rewrite the baseline from the current run

Reproduce the CI perf job locally:
    cmake -B build-release -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release --target bench_perf
    (cd build-release && ./bench_perf)
    python3 tools/check_perf.py build-release/BENCH_perf.json \
        bench/perf_baseline.json
"""

import argparse
import json
import sys


def tracked_metrics(perf):
    """Flatten the higher-is-better metrics of a BENCH_perf dict."""
    metrics = {"cost_model.speedup": perf["cost_model"]["speedup"]}
    for name, value in perf["stage_exec"].items():
        metrics[f"stage_exec.{name}"] = value
    for name, value in perf.get("workload_gen", {}).items():
        metrics[f"workload_gen.{name}"] = value
    for sweep in perf["figure_sweeps"]:
        key = f"figure_sweeps.{sweep['name']}.stages_per_sec"
        metrics[key] = sweep["stages_per_sec"]
    return metrics


def main():
    parser = argparse.ArgumentParser(
        description="perf regression gate over BENCH_perf.json")
    parser.add_argument("current", help="BENCH_perf.json from bench_perf")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional regression (default: the "
             "baseline's own tolerance field, else 0.25)")
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline's metrics from the current run "
             "instead of checking")
    args = parser.parse_args()

    with open(args.current, encoding="utf-8") as f:
        current = tracked_metrics(json.load(f))

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    if args.update:
        baseline["metrics"] = {k: round(v, 3)
                               for k, v in current.items()}
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} from {args.current}")
        return 0

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.25)

    failures = []
    width = max(len(k) for k in baseline["metrics"])
    print(f"perf gate: tolerance {tolerance:.0%}")
    for key, floor in sorted(baseline["metrics"].items()):
        have = current.get(key)
        if have is None:
            failures.append(key)
            print(f"  {key:<{width}}  MISSING from current run")
            continue
        allowed = floor * (1.0 - tolerance)
        ok = have >= allowed
        status = "ok" if ok else "REGRESSED"
        print(f"  {key:<{width}}  baseline {floor:12.3f}  "
              f"current {have:12.3f}  ({have / floor:6.2f}x)  "
              f"{status}")
        if not ok:
            failures.append(key)

    extra = sorted(set(current) - set(baseline["metrics"]))
    for key in extra:
        print(f"  {key:<{width}}  untracked (add to baseline "
              f"via --update)")

    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed more "
              f"than {tolerance:.0%} below baseline")
        return 1
    print("PASS: no tracked metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
