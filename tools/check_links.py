#!/usr/bin/env python3
"""Markdown link checker for the CI docs job.

Walks every tracked *.md file (git ls-files when available, a
filesystem walk otherwise), extracts inline markdown links, and
fails if a relative link points at a path that does not exist.
External links (http/https/mailto) and pure in-page anchors are
not checked -- the job must pass offline.

Usage: python3 tools/check_links.py [repo-root]
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others",
             "--exclude-standard", "*.md", "**/*.md"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        files = [line for line in out.splitlines() if line]
        if files:
            return sorted(set(files))
    except (OSError, subprocess.CalledProcessError):
        pass
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d != ".git" and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                rel = os.path.relpath(
                    os.path.join(dirpath, name), root)
                files.append(rel)
    return sorted(files)


def check_file(root, relpath):
    """Returns a list of (line-number, target) dead links."""
    dead = []
    path = os.path.join(root, relpath)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_SCHEMES):
                    continue
                if target.startswith("#"):
                    continue  # in-page anchor
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(os.path.join(
                    os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    dead.append((lineno, target))
    return dead


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    if not os.path.isdir(root):
        print(f"check_links: no such directory: {root}")
        return 2
    files = tracked_markdown(root)
    if not files:
        print(f"check_links: no markdown files under {root}")
        return 2
    failures = 0
    for relpath in files:
        for lineno, target in check_file(root, relpath):
            print(f"{relpath}:{lineno}: dead link: {target}")
            failures += 1
    if failures:
        print(f"check_links: {failures} dead link(s) "
              f"across {len(files)} file(s)")
        return 1
    print(f"check_links: OK ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
