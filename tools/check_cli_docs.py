#!/usr/bin/env python3
"""CLI-docs cross-check for the CI docs job.

Runs `quickstart --help`, parses the flag inventory, and compares
it against the flags documented in docs/CLI.md -- in both
directions. A flag added to the binary without a docs row fails,
and so does a docs row whose flag no longer exists.

"Documented" means a table row whose first cell is the backticked
flag (`| `--name` | ... |`); flags mentioned in prose or recipe
blocks don't count, so cmake/ctest flags in examples never trip
the check.

Usage: python3 tools/check_cli_docs.py <quickstart-binary> <CLI.md>
"""

import re
import subprocess
import sys

HELP_FLAG_RE = re.compile(r"^  --([A-Za-z0-9][A-Za-z0-9-]*)=")
DOC_ROW_RE = re.compile(r"^\|\s*`--([A-Za-z0-9][A-Za-z0-9-]*)`\s*\|")

# Handled by the argument parser itself; never listed in its own
# inventory, but worth documenting.
IMPLICIT_FLAGS = {"help"}


def help_flags(binary):
    proc = subprocess.run(
        [binary, "--help"], capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"check_cli_docs: {binary} --help exited "
              f"{proc.returncode}")
        sys.exit(2)
    text = proc.stdout + proc.stderr
    flags = {m.group(1)
             for line in text.splitlines()
             for m in [HELP_FLAG_RE.match(line)] if m}
    if not flags:
        print(f"check_cli_docs: no flags parsed from "
              f"{binary} --help")
        sys.exit(2)
    return flags


def documented_flags(doc_path):
    with open(doc_path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    flags = {m.group(1)
             for line in lines
             for m in [DOC_ROW_RE.match(line)] if m}
    if not flags:
        print(f"check_cli_docs: no flag rows parsed from "
              f"{doc_path}")
        sys.exit(2)
    return flags


def main(argv):
    if len(argv) != 3:
        print("usage: check_cli_docs.py <quickstart-binary> "
              "<CLI.md>")
        return 2
    binary, doc_path = argv[1], argv[2]
    in_help = help_flags(binary)
    in_docs = documented_flags(doc_path) - IMPLICIT_FLAGS

    failures = 0
    for flag in sorted(in_help - in_docs):
        print(f"undocumented flag: --{flag} "
              f"(in --help, no table row in {doc_path})")
        failures += 1
    for flag in sorted(in_docs - in_help):
        print(f"stale docs: --{flag} "
              f"(documented in {doc_path}, not in --help)")
        failures += 1
    if failures:
        print(f"check_cli_docs: {failures} mismatch(es) between "
              f"{binary} --help and {doc_path}")
        return 1
    print(f"check_cli_docs: OK ({len(in_help)} flag(s) "
          f"cross-checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
