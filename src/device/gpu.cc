#include "device/gpu.hh"

#include <algorithm>

namespace duplex
{

EngineSpec
h100Engine(const HbmTiming &timing, const DramCalibration &cal,
           int num_stacks)
{
    EngineSpec e;
    e.name = "xPU";
    e.peakFlops = 990e12;
    e.computeEff = 0.75;
    e.memBps = cal.xpuStackBps(timing) * num_stacks;
    e.dispatchOverhead = 2 * kPsPerUs;
    return e;
}

HybridDeviceSpec
h100DeviceSpec(const HbmTiming &timing, const DramCalibration &cal)
{
    HybridDeviceSpec spec;
    spec.name = "GPU";
    spec.xpu = h100Engine(timing, cal);
    spec.hasLowEngine = false;
    spec.numStacks = 5;
    spec.memCapacity = static_cast<Bytes>(spec.numStacks) * 16 * kGiB;
    return spec;
}

GpuDevice::GpuDevice(const HybridDeviceSpec &spec)
    : spec_(spec), energy_(spec.energyParams)
{
}

DeviceTiming
GpuDevice::runHighOpb(const OpCost &cost)
{
    return engineRun(spec_.xpu, spec_.xpuPath, spec_.xpuCls, energy_,
                     cost);
}

AttentionTiming
GpuDevice::runAttention(const OpCost &decode, const OpCost &prefill)
{
    AttentionTiming t;
    t.decode = engineRun(spec_.xpu, spec_.xpuPath, spec_.xpuCls,
                         energy_, decode);
    t.prefill = engineRun(spec_.xpu, spec_.xpuPath, spec_.xpuCls,
                          energy_, prefill);
    t.composed = t.decode.time + t.prefill.time;
    return t;
}

DeviceTiming
GpuDevice::runMoe(const std::vector<ExpertWork> &experts)
{
    // Grouped-GEMM execution: one dispatch for the group, experts
    // processed back to back.
    DeviceTiming total;
    bool any = false;
    for (const auto &e : experts) {
        if (e.tokens == 0)
            continue;
        any = true;
        DeviceTiming t;
        t.time = operatorTimeNoOverhead(spec_.xpu, e.cost.flops,
                                        e.cost.bytes);
        t.energy.dramJ =
            energy_.dramEnergyJ(spec_.xpuPath, e.cost.bytes);
        t.energy.computeJ =
            energy_.computeEnergyJ(spec_.xpuCls, e.cost.flops);
        total += t;
    }
    if (any)
        total.time += spec_.xpu.dispatchOverhead;
    return total;
}

DeviceTiming
GpuDevice::runMoeGroups(const std::vector<ExpertWork> &experts,
                        int group_size, double energy_scale)
{
    // Same composition as the base implementation (runMoe per
    // contiguous group, makespan over groups, per-group energy
    // scaling), with a direct-mapped per-token-count cache shared
    // across the layer: decode stages repeat small counts heavily,
    // while a collision just recomputes — O(1) either way, and the
    // accumulation sees the same values in the same order.
    struct Memo
    {
        std::int64_t tokens = -1;
        DeviceTiming t;
    };
    Memo memo[64];
    DeviceTiming total;
    const int num_groups =
        static_cast<int>(experts.size()) / group_size;
    for (int g = 0; g < num_groups; ++g) {
        DeviceTiming group;
        bool any = false;
        for (int i = g * group_size; i < (g + 1) * group_size;
             ++i) {
            const ExpertWork &e = experts[i];
            if (e.tokens == 0)
                continue;
            any = true;
            Memo &m = memo[e.tokens & 63];
            if (m.tokens != e.tokens) {
                m.tokens = e.tokens;
                m.t.time = operatorTimeNoOverhead(
                    spec_.xpu, e.cost.flops, e.cost.bytes);
                m.t.energy.dramJ =
                    energy_.dramEnergyJ(spec_.xpuPath, e.cost.bytes);
                m.t.energy.computeJ = energy_.computeEnergyJ(
                    spec_.xpuCls, e.cost.flops);
            }
            group += m.t;
        }
        if (any)
            group.time += spec_.xpu.dispatchOverhead;
        total.time = std::max(total.time, group.time);
        total.energy.dramJ += group.energy.dramJ * energy_scale;
        total.energy.computeJ +=
            group.energy.computeJ * energy_scale;
    }
    return total;
}

} // namespace duplex
