/**
 * @file
 * Device abstraction: a package that executes operator groups.
 *
 * Every device owns a high-Op/B engine (the xPU); hybrid devices
 * (Duplex, Bank-PIM, BankGroup-PIM builds) add a low-Op/B engine
 * inside the memory stacks. The cluster hands devices per-shard
 * operator costs; devices answer with time and energy.
 */

#ifndef DUPLEX_DEVICE_DEVICE_HH
#define DUPLEX_DEVICE_DEVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "compute/engine.hh"
#include "energy/energy.hh"
#include "model/layers.hh"

namespace duplex
{

/** Full description of one device package. */
struct HybridDeviceSpec
{
    std::string name = "device";

    // High-Op/B engine (always present).
    EngineSpec xpu;
    DramPath xpuPath = DramPath::XpuInterposer;
    ComputeClass xpuCls = ComputeClass::Xpu;

    // Low-Op/B engine (absent on plain GPUs).
    bool hasLowEngine = false;
    EngineSpec low;
    DramPath lowPath = DramPath::LogicDie;
    ComputeClass lowCls = ComputeClass::LogicPim;

    /** HBM capacity of the package. */
    Bytes memCapacity = 0;

    /** Number of HBM stacks. */
    int numStacks = 5;

    /** Expert and attention co-processing enabled (Duplex+PE). */
    bool coProcessing = false;

    EnergyParams energyParams;
};

/** Result of executing one operator group on a device. */
struct DeviceTiming
{
    PicoSec time = 0;
    EnergyBreakdown energy;

    DeviceTiming &operator+=(const DeviceTiming &other)
    {
        time += other.time;
        energy += other.energy;
        return *this;
    }
};

/** One expert FFN's per-device work in an MoE layer. */
struct ExpertWork
{
    std::int64_t tokens = 0;
    OpCost cost; //!< per-device shard, weights + activations
};

/**
 * Attention-layer timing with the decode/prefill split preserved;
 * composed is the wall-clock contribution (max of both halves when
 * co-processed, their sum otherwise).
 */
struct AttentionTiming
{
    DeviceTiming decode;
    DeviceTiming prefill;
    PicoSec composed = 0;
};

class ExpertTimeLut; // core/lookup.hh

/** Executes operator groups; implemented by GPU and hybrid devices. */
class Device
{
  public:
    virtual ~Device() = default;

    virtual const HybridDeviceSpec &spec() const = 0;

    /** High-Op/B work: QKV gen, projection, dense FFN, LM head. */
    virtual DeviceTiming runHighOpb(const OpCost &cost) = 0;

    /**
     * Attention layer: decode-sequence and prefill-sequence groups.
     * Hybrid devices may co-process them (Section V-B).
     */
    virtual AttentionTiming runAttention(const OpCost &decode,
                                         const OpCost &prefill) = 0;

    /**
     * MoE layer: per-expert work. Experts with zero tokens are not
     * touched (their weights are never read).
     */
    virtual DeviceTiming runMoe(const std::vector<ExpertWork> &experts)
        = 0;

    /**
     * Whole MoE layer over contiguous groups of @p group_size
     * experts (one group per expert-parallel device / ET shard).
     * Equivalent to calling runMoe per group and combining: time is
     * the makespan (max group time) and each group's energy is
     * scaled by @p energy_scale before summing. One call per layer
     * lets devices share per-token-count memoization across groups;
     * the default implementation just loops runMoe.
     */
    virtual DeviceTiming
    runMoeGroups(const std::vector<ExpertWork> &experts,
                 int group_size, double energy_scale);

    /** Install the expert-time lookup table (hybrid devices). */
    virtual void setExpertLut(const ExpertTimeLut *lut) { (void)lut; }
};

/** Timing + energy of one group on a specific engine. */
DeviceTiming engineRun(const EngineSpec &engine, DramPath path,
                       ComputeClass cls, const EnergyModel &energy,
                       const OpCost &cost);

} // namespace duplex

#endif // DUPLEX_DEVICE_DEVICE_HH
