/**
 * @file
 * Baseline GPU device (NVIDIA H100-class, Section VI).
 *
 * 990 TFLOPS dense FP16, five HBM3 stacks (80 GB), memory bandwidth
 * taken from the calibrated cycle-level DRAM model rather than the
 * datasheet peak.
 */

#ifndef DUPLEX_DEVICE_GPU_HH
#define DUPLEX_DEVICE_GPU_HH

#include "device/device.hh"
#include "dram/calibrate.hh"

namespace duplex
{

/** Build the H100-class xPU engine from the DRAM calibration. */
EngineSpec h100Engine(const HbmTiming &timing,
                      const DramCalibration &cal, int num_stacks = 5);

/** Full H100-class device spec (no low-Op/B engine). */
HybridDeviceSpec h100DeviceSpec(const HbmTiming &timing,
                                const DramCalibration &cal);

/** Plain GPU: everything runs on the xPU engine. */
class GpuDevice : public Device
{
  public:
    explicit GpuDevice(const HybridDeviceSpec &spec);

    const HybridDeviceSpec &spec() const override { return spec_; }

    DeviceTiming runHighOpb(const OpCost &cost) override;
    AttentionTiming runAttention(const OpCost &decode,
                                 const OpCost &prefill) override;
    DeviceTiming
    runMoe(const std::vector<ExpertWork> &experts) override;
    DeviceTiming
    runMoeGroups(const std::vector<ExpertWork> &experts,
                 int group_size, double energy_scale) override;

  private:
    HybridDeviceSpec spec_;
    EnergyModel energy_;
};

} // namespace duplex

#endif // DUPLEX_DEVICE_GPU_HH
