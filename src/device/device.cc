#include "device/device.hh"

namespace duplex
{

DeviceTiming
engineRun(const EngineSpec &engine, DramPath path, ComputeClass cls,
          const EnergyModel &energy, const OpCost &cost)
{
    DeviceTiming t;
    if (cost.flops <= 0.0 && cost.bytes == 0)
        return t;
    t.time = operatorTime(engine, cost.flops, cost.bytes);
    t.energy.dramJ = energy.dramEnergyJ(path, cost.bytes);
    t.energy.computeJ = energy.computeEnergyJ(cls, cost.flops);
    return t;
}

} // namespace duplex
