#include "device/device.hh"

#include <algorithm>

namespace duplex
{

DeviceTiming
Device::runMoeGroups(const std::vector<ExpertWork> &experts,
                     int group_size, double energy_scale)
{
    // Reference composition: per group, runMoe; the layer's clock
    // contribution is the slowest group while energies sum.
    DeviceTiming total;
    std::vector<ExpertWork> group;
    group.reserve(group_size);
    const int num_groups =
        static_cast<int>(experts.size()) / group_size;
    for (int g = 0; g < num_groups; ++g) {
        group.assign(experts.begin() + g * group_size,
                     experts.begin() + (g + 1) * group_size);
        const DeviceTiming t = runMoe(group);
        total.time = std::max(total.time, t.time);
        total.energy.dramJ += t.energy.dramJ * energy_scale;
        total.energy.computeJ += t.energy.computeJ * energy_scale;
    }
    return total;
}

DeviceTiming
engineRun(const EngineSpec &engine, DramPath path, ComputeClass cls,
          const EnergyModel &energy, const OpCost &cost)
{
    DeviceTiming t;
    if (cost.flops <= 0.0 && cost.bytes == 0)
        return t;
    t.time = operatorTime(engine, cost.flops, cost.bytes);
    t.energy.dramJ = energy.dramEnergyJ(path, cost.bytes);
    t.energy.computeJ = energy.computeEnergyJ(cls, cost.flops);
    return t;
}

} // namespace duplex
