#include "device/pim.hh"

#include "common/log.hh"

namespace duplex
{

const char *
pimVariantName(PimVariant v)
{
    switch (v) {
      case PimVariant::LogicPim:
        return "Logic-PIM";
      case PimVariant::BankPim:
        return "Bank-PIM";
      case PimVariant::BankGroupPim:
        return "BankGroup-PIM";
      default:
        return "?";
    }
}

EngineSpec
logicPimEngine(const HbmTiming &timing, const DramCalibration &cal,
               int num_stacks)
{
    EngineSpec e;
    e.name = "Logic-PIM";
    // 32 GEMM modules x 512 FP16 MACs x 650 MHz per stack
    // (Section VII-E) = 21.3 TFLOPS per stack, 8 Op/B against the
    // provisioned 4x bandwidth.
    e.peakFlops = 2.0 * 32 * 512 * 650e6 * num_stacks;
    e.computeEff = 1.0;
    e.memBps = cal.pimStackBps(timing) * num_stacks;
    e.dispatchOverhead = 1 * kPsPerUs;
    return e;
}

EngineSpec
bankPimEngine(const HbmTiming &timing, const DramCalibration &cal,
              int num_stacks)
{
    EngineSpec e;
    e.name = "Bank-PIM";
    const double provisioned =
        16.0 * timing.stackPeakBytesPerSec() * num_stacks;
    e.peakFlops = provisioned * 1.0; // peak Op/B of 1
    e.computeEff = 1.0;
    e.memBps = provisioned * cal.pimStaggeredEff;
    e.dispatchOverhead = 1 * kPsPerUs;
    return e;
}

EngineSpec
bankGroupPimEngine(const HbmTiming &timing, const DramCalibration &cal,
                   int num_stacks)
{
    EngineSpec e = logicPimEngine(timing, cal, num_stacks);
    e.name = "BankGroup-PIM";
    return e;
}

DramPath
pimVariantPath(PimVariant v)
{
    switch (v) {
      case PimVariant::LogicPim:
        return DramPath::LogicDie;
      case PimVariant::BankPim:
        return DramPath::BankLocal;
      case PimVariant::BankGroupPim:
        return DramPath::BankGroup;
      default:
        panic("unknown PIM variant");
    }
}

ComputeClass
pimVariantClass(PimVariant v)
{
    switch (v) {
      case PimVariant::LogicPim:
        return ComputeClass::LogicPim;
      case PimVariant::BankPim:
        return ComputeClass::BankPim;
      case PimVariant::BankGroupPim:
        return ComputeClass::BankGroupPim;
      default:
        panic("unknown PIM variant");
    }
}

PimEngineDesc
pimVariantDesc(PimVariant v, const HbmTiming &timing,
               const DramCalibration &cal, const AreaModel &area)
{
    PimEngineDesc d;
    d.name = pimVariantName(v);
    d.path = pimVariantPath(v);
    d.cls = pimVariantClass(v);
    switch (v) {
      case PimVariant::LogicPim:
        d.engine = logicPimEngine(timing, cal, 1);
        d.areaMm2 = area.logicPim().totalMm2();
        break;
      case PimVariant::BankPim:
        d.engine = bankPimEngine(timing, cal, 1);
        d.areaMm2 = area.bankPim(d.engine.peakFlops).totalMm2();
        break;
      case PimVariant::BankGroupPim:
        d.engine = bankGroupPimEngine(timing, cal, 1);
        d.areaMm2 = area.bankGroupPim().totalMm2();
        break;
      default:
        panic("unknown PIM variant");
    }
    // Per-stack engines keep the per-operator dispatch out of EDAP.
    d.engine.dispatchOverhead = 0;
    return d;
}

} // namespace duplex
