/**
 * @file
 * Low-Op/B engine specifications: Logic-PIM and the prior-work
 * variants compared against it (Section VI).
 *
 *  - Logic-PIM: 4 x stack bandwidth via dedicated TSVs, processing
 *    units on the logic die at 8 Op/B (21.3 TFLOPS per stack).
 *  - Bank-PIM: in-bank units, 16 x stack bandwidth at 1 Op/B
 *    (HBM-PIM-style, doubled).
 *  - BankGroup-PIM: Logic-PIM's bandwidth and compute, but with
 *    units and buffers in the DRAM dies.
 *
 * Sustained bandwidth for all variants uses the bundle-mode
 * efficiency measured on the cycle-level model, since every variant
 * saturates its banks the same way.
 */

#ifndef DUPLEX_DEVICE_PIM_HH
#define DUPLEX_DEVICE_PIM_HH

#include "area/area.hh"
#include "device/device.hh"
#include "dram/calibrate.hh"
#include "energy/edap.hh"

namespace duplex
{

/** Prior-PIM variant selector. */
enum class PimVariant
{
    LogicPim,
    BankPim,
    BankGroupPim,
};

/** Name for reporting. */
const char *pimVariantName(PimVariant v);

/** Logic-PIM engine for a device with @p num_stacks stacks. */
EngineSpec logicPimEngine(const HbmTiming &timing,
                          const DramCalibration &cal,
                          int num_stacks = 5);

/** Bank-PIM engine (16 x bandwidth, peak Op/B 1). */
EngineSpec bankPimEngine(const HbmTiming &timing,
                         const DramCalibration &cal,
                         int num_stacks = 5);

/** BankGroup-PIM engine (Logic-PIM numbers, DRAM-die placement). */
EngineSpec bankGroupPimEngine(const HbmTiming &timing,
                              const DramCalibration &cal,
                              int num_stacks = 5);

/** DRAM path for a variant's data. */
DramPath pimVariantPath(PimVariant v);

/** Compute class for a variant's arithmetic. */
ComputeClass pimVariantClass(PimVariant v);

/**
 * Per-stack engine description for the Fig. 8 EDAP comparison,
 * including the variant's added-silicon area.
 */
PimEngineDesc pimVariantDesc(PimVariant v, const HbmTiming &timing,
                             const DramCalibration &cal,
                             const AreaModel &area);

} // namespace duplex

#endif // DUPLEX_DEVICE_PIM_HH
