/**
 * @file
 * Multi-device stage execution.
 *
 * The cluster walks the model's decoder blocks for one batched
 * stage, applying the sharding plan: tensor parallelism inside a
 * node (all devices do identical shards, so one representative
 * device is evaluated), data parallelism across nodes, and expert /
 * expert-tensor parallelism for MoE layers with the matching
 * collectives. It returns wall-clock time plus a per-layer-class
 * time and energy breakdown (Figs. 4(a), 15).
 *
 * A separate HeteroCluster models the Section III-B strawman: two
 * GPUs for high-Op/B work plus two Logic-PIM-only devices owning all
 * expert weights and the KV cache.
 */

#ifndef DUPLEX_CLUSTER_CLUSTER_HH
#define DUPLEX_CLUSTER_CLUSTER_HH

#include <array>
#include <memory>

#include "core/duplex_device.hh"
#include "model/kv.hh"
#include "parallel/collectives.hh"
#include "parallel/sharding.hh"
#include "workload/experts.hh"

namespace duplex
{

/** Number of LayerClass values. */
constexpr int kNumLayerClasses = 5;

/** Per-class slice of a stage. */
struct ClassSlice
{
    PicoSec time = 0;
    EnergyBreakdown energy;

    ClassSlice &operator+=(const ClassSlice &other)
    {
        time += other.time;
        energy += other.energy;
        return *this;
    }
};

/** Result of one stage (or an aggregation of stages). */
struct StageResult
{
    PicoSec time = 0;
    std::array<ClassSlice, kNumLayerClasses> byClass{};

    /**
     * Tokens routed to each expert across the stage's MoE layers
     * (empty for dense models); the ExpertRoutingCounts observer
     * folds these into a per-run histogram.
     */
    std::vector<std::int64_t> expertTokens;

    ClassSlice &slice(LayerClass cls)
    {
        return byClass[static_cast<int>(cls)];
    }

    const ClassSlice &slice(LayerClass cls) const
    {
        return byClass[static_cast<int>(cls)];
    }

    /** Total energy over all classes (joules). */
    double totalEnergyJ() const;

    StageResult &operator+=(const StageResult &other);
};

/** Configuration of a homogeneous serving system. */
struct ClusterConfig
{
    ModelConfig model;
    SystemTopology topo;
    HybridDeviceSpec deviceSpec;
    ExpertPlacement expertPlacement = ExpertPlacement::ExpertParallel;
    GatePolicy gatePolicy = GatePolicy::Uniform;
    double zipfS = 1.0;
    std::uint64_t seed = 7;

    /** Activation / scratch reservation per device. */
    Bytes reservedBytesPerDevice = 1 * kGiB;
};

/** Homogeneous cluster: every device runs the same spec. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);

    const ClusterConfig &config() const { return cfg_; }
    const ShardingPlan &plan() const { return plan_; }

    /** Execute one batched stage; deterministic given the seed. */
    StageResult executeStage(const StageShape &stage);

    /** KV capacity of the whole system. */
    KvBudget kvBudget() const;

    /** Largest context-token count the KV cache can hold. */
    std::int64_t maxKvTokens() const { return kvBudget().maxKvTokens(cfg_.model); }

    /** Experts routed to the low engine in the last MoE layer. */
    int lastExpertsOnLow() const;

  private:
    ClusterConfig cfg_;
    LayerCosts costs_;
    ShardingPlan plan_;
    std::unique_ptr<Device> device_;
    std::unique_ptr<ExpertTimeLut> lut_;
    ExpertSelector selector_;
    Rng rng_;

    /** Reused across stages: multi-node share of the stage. */
    StageShape nodeShareScratch_;

    /** Reused across MoE layers: per-group expert work. */
    std::vector<ExpertWork> moeWorkScratch_;

    /** Reused across MoE layers: per-expert token histogram. */
    std::vector<std::int64_t> histScratch_;

    /** Exact affine expert-FFN cost (avoids re-deriving GEMMs). */
    AffineOpCost expertCost_;

    /**
     * Sequences this node serves under data parallelism. Borrows
     * the original shape when one node serves everything; fills the
     * reused scratch shape otherwise. The returned reference is
     * valid until the next call.
     */
    const StageShape &nodeShare(const StageShape &stage);

    void runMoeLayer(std::int64_t global_tokens,
                     const DeviceTiming &gate_t, PicoSec moe_comm,
                     StageResult &out);
    PicoSec moeCommTime(std::int64_t global_tokens,
                        std::int64_t node_tokens) const;
    void addFc(const OpCost &cost, double scale, StageResult &out);
    void addFcTiming(const DeviceTiming &t, StageResult &out);
};

/** Section III-B heterogeneous system: GPUs + PIM-only devices. */
struct HeteroConfig
{
    ModelConfig model;
    int numGpus = 2;
    int numPimDevices = 2;
    HybridDeviceSpec gpuSpec;  //!< xPU side
    HybridDeviceSpec pimSpec;  //!< provides the low engine
    LinkSpec link;             //!< GPU <-> PIM interconnect
    GatePolicy gatePolicy = GatePolicy::Uniform;
    double zipfS = 1.0;
    std::uint64_t seed = 7;
    Bytes reservedBytesPerDevice = 1 * kGiB;
};

class HeteroCluster
{
  public:
    explicit HeteroCluster(const HeteroConfig &config);

    StageResult executeStage(const StageShape &stage);

    /** KV lives on the PIM devices only. */
    KvBudget kvBudget() const;
    std::int64_t maxKvTokens() const
    {
        return kvBudget().maxKvTokens(cfg_.model);
    }

  private:
    HeteroConfig cfg_;
    LayerCosts costs_;
    EnergyModel energy_;
    ExpertSelector selector_;
    Rng rng_;

    /** Reused across MoE layers: per-expert token histogram. */
    std::vector<std::int64_t> histScratch_;

    /** Exact affine expert-FFN cost (avoids re-deriving GEMMs). */
    AffineOpCost expertCost_;
};

} // namespace duplex

#endif // DUPLEX_CLUSTER_CLUSTER_HH
