#include "cluster/cluster.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

double
StageResult::totalEnergyJ() const
{
    double total = 0.0;
    for (const auto &s : byClass)
        total += s.energy.totalJ();
    return total;
}

StageResult &
StageResult::operator+=(const StageResult &other)
{
    time += other.time;
    for (int i = 0; i < kNumLayerClasses; ++i)
        byClass[i] += other.byClass[i];
    if (expertTokens.size() < other.expertTokens.size())
        expertTokens.resize(other.expertTokens.size(), 0);
    for (std::size_t e = 0; e < other.expertTokens.size(); ++e)
        expertTokens[e] += other.expertTokens[e];
    return *this;
}

Cluster::Cluster(const ClusterConfig &config)
    : cfg_(config),
      costs_(config.model),
      plan_(makeShardingPlan(config.model, config.topo,
                             config.expertPlacement)),
      device_(makeDevice(config.deviceSpec)),
      selector_(std::max(1, config.model.numExperts),
                std::max(1, config.model.topK), config.gatePolicy,
                config.zipfS),
      rng_(config.seed)
{
    if (cfg_.model.numExperts > 0)
        expertCost_ = costs_.expertFfnAffine();
    if (cfg_.deviceSpec.hasLowEngine && cfg_.model.numExperts > 0) {
        const double shard = plan_.expertShardFraction();
        lut_ = std::make_unique<ExpertTimeLut>(
            cfg_.deviceSpec.xpu, cfg_.deviceSpec.low,
            costs_.expertFfn(1).scaled(shard),
            costs_.expertFfn(2).scaled(shard));
        device_->setExpertLut(lut_.get());
    }
}

int
Cluster::lastExpertsOnLow() const
{
    if (auto *hybrid = dynamic_cast<HybridDevice *>(device_.get()))
        return hybrid->lastExpertsOnLow();
    return 0;
}

KvBudget
Cluster::kvBudget() const
{
    KvBudget budget;
    budget.deviceCapacity = cfg_.deviceSpec.memCapacity;
    budget.numDevices = cfg_.topo.totalDevices();
    budget.weightBytesTotal =
        weightBytesPerDevice(cfg_.model, cfg_.topo, plan_) *
        static_cast<Bytes>(budget.numDevices);
    budget.reservedBytes = cfg_.reservedBytesPerDevice;
    return budget;
}

const StageShape &
Cluster::nodeShare(const StageShape &stage)
{
    if (cfg_.topo.numNodes <= 1)
        return stage;
    StageShape &share = nodeShareScratch_;
    share.decodeContexts.clear();
    share.prefillLengths.clear();
    share.agg = {};
    for (std::size_t i = 0; i < stage.decodeContexts.size(); ++i)
        if (i % cfg_.topo.numNodes == 0) {
            share.decodeContexts.push_back(stage.decodeContexts[i]);
            share.agg.addDecode(stage.decodeContexts[i]);
        }
    for (std::size_t i = 0; i < stage.prefillLengths.size(); ++i)
        if (i % cfg_.topo.numNodes == 0) {
            share.prefillLengths.push_back(stage.prefillLengths[i]);
            share.agg.addPrefill(stage.prefillLengths[i]);
        }
    share.aggValid = true;
    return share;
}

void
Cluster::addFc(const OpCost &cost, double scale, StageResult &out)
{
    addFcTiming(device_->runHighOpb(cost.scaled(scale)), out);
}

void
Cluster::addFcTiming(const DeviceTiming &t, StageResult &out)
{
    out.time += t.time;
    auto &slice = out.slice(LayerClass::Fc);
    slice.time += t.time;
    const double devices =
        static_cast<double>(plan_.tpDegree) * plan_.dpDegree;
    slice.energy.dramJ += t.energy.dramJ * devices;
    slice.energy.computeJ += t.energy.computeJ * devices;
}

void
Cluster::runMoeLayer(std::int64_t global_tokens,
                     const DeviceTiming &gate_t, PicoSec moe_comm,
                     StageResult &out)
{
    selector_.sampleInto(rng_, global_tokens, histScratch_);
    const std::vector<std::int64_t> &hist = histScratch_;
    const ModelConfig &m = cfg_.model;

    if (out.expertTokens.size() <
        static_cast<std::size_t>(m.numExperts))
        out.expertTokens.resize(m.numExperts, 0);
    for (int e = 0; e < m.numExperts; ++e)
        out.expertTokens[e] += hist[e];

    // Group the experts the way the plan places them.
    int num_groups = 0;
    int experts_per_group = 0;
    double shard = plan_.expertShardFraction();
    int shards_per_group = plan_.expertTpDegree;
    if (plan_.experts == ExpertPlacement::ExpertParallel) {
        experts_per_group = std::max(1, plan_.expertsPerDevice);
        num_groups = m.numExperts / experts_per_group;
    } else {
        num_groups = plan_.expertEpNodes;
        experts_per_group = m.numExperts / num_groups;
    }

    // One device call for the whole layer: equivalent to runMoe
    // per expert group, but the device shares its per-token-count
    // memo across groups.
    std::vector<ExpertWork> &work = moeWorkScratch_;
    work.clear();
    work.reserve(static_cast<std::size_t>(num_groups) *
                 experts_per_group);
    for (int e = 0; e < num_groups * experts_per_group; ++e) {
        ExpertWork w;
        w.tokens = hist[e];
        w.cost = expertCost_.at(hist[e]).scaled(shard);
        work.push_back(w);
    }
    const DeviceTiming moe = device_->runMoeGroups(
        work, experts_per_group,
        static_cast<double>(shards_per_group));

    out.time += gate_t.time + moe.time;
    auto &slice = out.slice(LayerClass::Moe);
    slice.time += gate_t.time + moe.time;
    const double devices =
        static_cast<double>(plan_.tpDegree) * plan_.dpDegree;
    slice.energy.dramJ +=
        moe.energy.dramJ + gate_t.energy.dramJ * devices;
    slice.energy.computeJ +=
        moe.energy.computeJ + gate_t.energy.computeJ * devices;

    out.time += moe_comm;
    out.slice(LayerClass::Communication).time += moe_comm;
}

PicoSec
Cluster::moeCommTime(std::int64_t global_tokens,
                     std::int64_t node_tokens) const
{
    // Collectives: token dispatch + combine (all-to-all) for expert
    // parallelism; a single all-reduce for expert tensor parallelism
    // (Section V-B).
    const ModelConfig &m = cfg_.model;
    PicoSec comm = 0;
    const Bytes token_payload =
        static_cast<Bytes>(global_tokens) * m.topK * m.hidden *
        kFp16Bytes;
    if (plan_.experts == ExpertPlacement::ExpertParallel) {
        const Bytes per_device =
            token_payload / cfg_.topo.totalDevices();
        const LinkSpec &link = plan_.expertEpNodes > 1
                                   ? cfg_.topo.interNode
                                   : cfg_.topo.intraNode;
        const int peers = plan_.expertEpNodes > 1
                              ? cfg_.topo.numNodes
                              : cfg_.topo.devicesPerNode;
        comm += 2 * allToAllTime(per_device, peers, link);
    } else {
        const Bytes reduce_bytes = static_cast<Bytes>(node_tokens) *
                                   m.hidden * kFp16Bytes;
        comm += allReduceTime(reduce_bytes, plan_.tpDegree,
                              cfg_.topo.intraNode);
        if (plan_.expertEpNodes > 1) {
            const Bytes per_node = token_payload / cfg_.topo.numNodes;
            comm += 2 * allToAllTime(per_node, cfg_.topo.numNodes,
                                     cfg_.topo.interNode);
        }
    }
    return comm;
}

StageResult
Cluster::executeStage(const StageShape &stage)
{
    StageResult out;
    const StageAggregates stage_agg = stage.aggregates();
    const std::int64_t global_tokens = stage_agg.totalTokens();
    if (global_tokens == 0)
        return out;
    const StageShape &node = nodeShare(stage);
    const StageAggregates agg =
        &node == &stage ? stage_agg : node.aggregates();
    const std::int64_t node_tokens = agg.totalTokens();

    const ModelConfig &m = cfg_.model;
    const double tp_shard = plan_.tpShardFraction();
    const double devices =
        static_cast<double>(plan_.tpDegree) * plan_.dpDegree;

    // Token embedding.
    addFc(costs_.embedding(node_tokens), tp_shard, out);

    const Bytes reduce_bytes =
        static_cast<Bytes>(node_tokens) * m.hidden * kFp16Bytes;

    // Every per-layer cost below is layer-invariant, so it is
    // computed once and its DeviceTiming re-accumulated per layer
    // — bit-identical to the former per-layer recomputation, since
    // the devices are stateless for these groups.
    const DeviceTiming qkv_t =
        device_->runHighOpb(costs_.qkv(node_tokens).scaled(tp_shard));
    const AttentionTiming at = device_->runAttention(
        costs_.attentionDecode(agg).scaled(tp_shard),
        costs_.attentionPrefill(agg).scaled(tp_shard));
    const DeviceTiming proj_t = device_->runHighOpb(
        costs_.projection(node_tokens).scaled(tp_shard));
    const DeviceTiming elem_t = device_->runHighOpb(
        costs_.elementwise(node_tokens).scaled(tp_shard));
    const PicoSec all_reduce = allReduceTime(
        reduce_bytes, plan_.tpDegree, cfg_.topo.intraNode);

    const bool has_dense = m.numLayers > m.numMoeLayers();
    const bool has_moe = m.numMoeLayers() > 0;
    DeviceTiming ffn_t;
    if (has_dense)
        ffn_t = device_->runHighOpb(
            costs_.denseFfn(node_tokens).scaled(tp_shard));
    DeviceTiming gate_t;
    PicoSec moe_comm = 0;
    if (has_moe) {
        // Gate runs on every device over the node's tokens (DP
        // ceiling split, as the seed modeled it).
        const std::int64_t moe_node_tokens =
            (global_tokens + plan_.dpDegree - 1) / plan_.dpDegree;
        gate_t = device_->runHighOpb(
            costs_.gate(moe_node_tokens).scaled(tp_shard));
        moe_comm = moeCommTime(global_tokens, moe_node_tokens);
    }

    for (int layer = 0; layer < m.numLayers; ++layer) {
        // QKV generation.
        addFcTiming(qkv_t, out);

        // Attention (decode + prefill groups, possibly co-processed).
        out.time += at.composed;
        auto &dec = out.slice(LayerClass::AttentionDecode);
        dec.time += at.decode.time;
        dec.energy.dramJ += at.decode.energy.dramJ * devices;
        dec.energy.computeJ += at.decode.energy.computeJ * devices;
        auto &pre = out.slice(LayerClass::AttentionPrefill);
        pre.time += at.prefill.time;
        pre.energy.dramJ += at.prefill.energy.dramJ * devices;
        pre.energy.computeJ += at.prefill.energy.computeJ * devices;

        // Output projection + residual/layer norms.
        addFcTiming(proj_t, out);
        addFcTiming(elem_t, out);

        // All-reduce after the attention block; FFN or MoE (the
        // expert draw is the only per-layer randomness); all-reduce
        // after the FFN/MoE block output.
        if (m.isMoeLayer(layer)) {
            runMoeLayer(global_tokens, gate_t, moe_comm, out);
        } else {
            addFcTiming(ffn_t, out);
        }
        out.time += 2 * all_reduce;
        out.slice(LayerClass::Communication).time += 2 * all_reduce;
    }

    // LM head: one next-token logit per decode sequence and per
    // prefill sequence.
    const std::int64_t head_tokens = agg.numDecode + agg.numPrefill;
    addFc(costs_.lmHead(head_tokens), tp_shard, out);

    return out;
}

HeteroCluster::HeteroCluster(const HeteroConfig &config)
    : cfg_(config),
      costs_(config.model),
      energy_(config.gpuSpec.energyParams),
      selector_(std::max(1, config.model.numExperts),
                std::max(1, config.model.topK), config.gatePolicy,
                config.zipfS),
      rng_(config.seed)
{
    fatalIf(!cfg_.pimSpec.hasLowEngine,
            "HeteroCluster: PIM devices need a low engine");
    if (cfg_.model.numExperts > 0)
        expertCost_ = costs_.expertFfnAffine();
}

KvBudget
HeteroCluster::kvBudget() const
{
    // Expert weights and KV cache live on the PIM devices.
    KvBudget budget;
    budget.deviceCapacity = cfg_.pimSpec.memCapacity;
    budget.numDevices = cfg_.numPimDevices;
    const ModelConfig &m = cfg_.model;
    double expert_params = 0.0;
    if (m.numExperts > 0) {
        expert_params = static_cast<double>(m.numMoeLayers()) *
                        m.numExperts * m.ffnParams();
    }
    budget.weightBytesTotal =
        static_cast<Bytes>(expert_params) * kFp16Bytes;
    budget.reservedBytes = cfg_.reservedBytesPerDevice;
    return budget;
}

StageResult
HeteroCluster::executeStage(const StageShape &stage)
{
    StageResult out;
    const StageAggregates agg = stage.aggregates();
    const std::int64_t tokens = agg.totalTokens();
    if (tokens == 0)
        return out;

    const ModelConfig &m = cfg_.model;
    const double gpu_shard = 1.0 / cfg_.numGpus;
    const double pim_shard = 1.0 / cfg_.numPimDevices;

    auto time_gpu = [&](const OpCost &cost) {
        return engineRun(cfg_.gpuSpec.xpu, cfg_.gpuSpec.xpuPath,
                         cfg_.gpuSpec.xpuCls, energy_,
                         cost.scaled(gpu_shard));
    };
    auto add_gpu = [&](const DeviceTiming &t, LayerClass cls) {
        out.time += t.time;
        auto &slice = out.slice(cls);
        slice.time += t.time;
        slice.energy.dramJ += t.energy.dramJ * cfg_.numGpus;
        slice.energy.computeJ += t.energy.computeJ * cfg_.numGpus;
    };
    auto add_pim = [&](const DeviceTiming &t, LayerClass cls) {
        out.time += t.time;
        auto &slice = out.slice(cls);
        slice.time += t.time;
        slice.energy.dramJ += t.energy.dramJ * cfg_.numPimDevices;
        slice.energy.computeJ +=
            t.energy.computeJ * cfg_.numPimDevices;
    };

    const Bytes activation_bytes =
        static_cast<Bytes>(tokens) * m.hidden * kFp16Bytes;

    add_gpu(time_gpu(costs_.embedding(tokens)), LayerClass::Fc);

    // Layer-invariant timings, computed once per stage (the engine
    // evaluation is stateless; re-accumulating the same DeviceTiming
    // is bit-identical to the former per-layer recomputation).
    const DeviceTiming qkv_t = time_gpu(costs_.qkv(tokens));
    const DeviceTiming attn_dec_t = engineRun(
        cfg_.pimSpec.low, cfg_.pimSpec.lowPath, cfg_.pimSpec.lowCls,
        energy_, costs_.attentionDecode(agg).scaled(pim_shard));
    // Prefill attention stays on the GPUs (KV is streamed over).
    const DeviceTiming attn_pre_t =
        time_gpu(costs_.attentionPrefill(agg));
    const DeviceTiming proj_t = time_gpu(costs_.projection(tokens));
    const DeviceTiming elem_t = time_gpu(costs_.elementwise(tokens));
    const bool has_dense = m.numLayers > m.numMoeLayers();
    DeviceTiming ffn_t;
    if (has_dense)
        ffn_t = time_gpu(costs_.denseFfn(tokens));
    DeviceTiming gate_t;
    if (m.numMoeLayers() > 0)
        gate_t = time_gpu(costs_.gate(tokens));
    const PicoSec attn_comm = 2 * p2pTime(activation_bytes, cfg_.link);

    for (int layer = 0; layer < m.numLayers; ++layer) {
        add_gpu(qkv_t, LayerClass::Fc);

        // Activations cross to the PIM devices for attention and
        // return for the projection.
        PicoSec comm = attn_comm;
        add_pim(attn_dec_t, LayerClass::AttentionDecode);
        add_gpu(attn_pre_t, LayerClass::AttentionPrefill);
        add_gpu(proj_t, LayerClass::Fc);
        add_gpu(elem_t, LayerClass::Fc);

        if (m.isMoeLayer(layer)) {
            // The PIM devices own every expert, in all stages.
            add_gpu(gate_t, LayerClass::Moe);
            comm += attn_comm;
            selector_.sampleInto(rng_, tokens, histScratch_);
            const std::vector<std::int64_t> &hist = histScratch_;
            if (out.expertTokens.size() <
                static_cast<std::size_t>(m.numExperts))
                out.expertTokens.resize(m.numExperts, 0);
            PicoSec worst = 0;
            EnergyBreakdown moe_energy;
            const int per_dev = m.numExperts / cfg_.numPimDevices;
            for (int d = 0; d < cfg_.numPimDevices; ++d) {
                PicoSec dev_time = cfg_.pimSpec.low.dispatchOverhead;
                for (int e = d * per_dev; e < (d + 1) * per_dev;
                     ++e) {
                    out.expertTokens[e] += hist[e];
                    if (hist[e] == 0)
                        continue;
                    const OpCost c = expertCost_.at(hist[e]);
                    dev_time += operatorTimeNoOverhead(
                        cfg_.pimSpec.low, c.flops, c.bytes);
                    moe_energy.dramJ += energy_.dramEnergyJ(
                        cfg_.pimSpec.lowPath, c.bytes);
                    moe_energy.computeJ += energy_.computeEnergyJ(
                        cfg_.pimSpec.lowCls, c.flops);
                }
                worst = std::max(worst, dev_time);
            }
            out.time += worst;
            auto &slice = out.slice(LayerClass::Moe);
            slice.time += worst;
            slice.energy += moe_energy;
        } else {
            add_gpu(ffn_t, LayerClass::Fc);
        }
        out.time += comm;
        out.slice(LayerClass::Communication).time += comm;
    }
    const std::int64_t head_tokens = agg.numDecode + agg.numPrefill;
    add_gpu(time_gpu(costs_.lmHead(head_tokens)), LayerClass::Fc);
    return out;
}

} // namespace duplex
