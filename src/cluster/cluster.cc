#include "cluster/cluster.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

double
StageResult::totalEnergyJ() const
{
    double total = 0.0;
    for (const auto &s : byClass)
        total += s.energy.totalJ();
    return total;
}

StageResult &
StageResult::operator+=(const StageResult &other)
{
    time += other.time;
    for (int i = 0; i < kNumLayerClasses; ++i)
        byClass[i] += other.byClass[i];
    return *this;
}

Cluster::Cluster(const ClusterConfig &config)
    : cfg_(config),
      costs_(config.model),
      plan_(makeShardingPlan(config.model, config.topo,
                             config.expertPlacement)),
      device_(makeDevice(config.deviceSpec)),
      selector_(std::max(1, config.model.numExperts),
                std::max(1, config.model.topK), config.gatePolicy,
                config.zipfS),
      rng_(config.seed)
{
    if (cfg_.deviceSpec.hasLowEngine && cfg_.model.numExperts > 0) {
        const double shard = plan_.expertShardFraction();
        lut_ = std::make_unique<ExpertTimeLut>(
            cfg_.deviceSpec.xpu, cfg_.deviceSpec.low,
            costs_.expertFfn(1).scaled(shard),
            costs_.expertFfn(2).scaled(shard));
        device_->setExpertLut(lut_.get());
    }
}

int
Cluster::lastExpertsOnLow() const
{
    if (auto *hybrid = dynamic_cast<HybridDevice *>(device_.get()))
        return hybrid->lastExpertsOnLow();
    return 0;
}

KvBudget
Cluster::kvBudget() const
{
    KvBudget budget;
    budget.deviceCapacity = cfg_.deviceSpec.memCapacity;
    budget.numDevices = cfg_.topo.totalDevices();
    budget.weightBytesTotal =
        weightBytesPerDevice(cfg_.model, cfg_.topo, plan_) *
        static_cast<Bytes>(budget.numDevices);
    budget.reservedBytes = cfg_.reservedBytesPerDevice;
    return budget;
}

StageShape
Cluster::nodeShare(const StageShape &stage) const
{
    if (cfg_.topo.numNodes <= 1)
        return stage;
    StageShape share;
    for (std::size_t i = 0; i < stage.decodeContexts.size(); ++i)
        if (i % cfg_.topo.numNodes == 0)
            share.decodeContexts.push_back(stage.decodeContexts[i]);
    for (std::size_t i = 0; i < stage.prefillLengths.size(); ++i)
        if (i % cfg_.topo.numNodes == 0)
            share.prefillLengths.push_back(stage.prefillLengths[i]);
    return share;
}

void
Cluster::addFc(const OpCost &cost, double scale, StageResult &out)
{
    const DeviceTiming t = device_->runHighOpb(cost.scaled(scale));
    out.time += t.time;
    auto &slice = out.slice(LayerClass::Fc);
    slice.time += t.time;
    const double devices =
        static_cast<double>(plan_.tpDegree) * plan_.dpDegree;
    slice.energy.dramJ += t.energy.dramJ * devices;
    slice.energy.computeJ += t.energy.computeJ * devices;
}

void
Cluster::runMoeLayer(std::int64_t global_tokens, StageResult &out)
{
    const auto hist = selector_.sample(rng_, global_tokens);
    const ModelConfig &m = cfg_.model;

    // Group the experts the way the plan places them.
    int num_groups = 0;
    int experts_per_group = 0;
    double shard = plan_.expertShardFraction();
    int shards_per_group = plan_.expertTpDegree;
    if (plan_.experts == ExpertPlacement::ExpertParallel) {
        experts_per_group = std::max(1, plan_.expertsPerDevice);
        num_groups = m.numExperts / experts_per_group;
    } else {
        num_groups = plan_.expertEpNodes;
        experts_per_group = m.numExperts / num_groups;
    }

    PicoSec makespan = 0;
    EnergyBreakdown moe_energy;
    for (int g = 0; g < num_groups; ++g) {
        std::vector<ExpertWork> work;
        work.reserve(experts_per_group);
        for (int e = g * experts_per_group;
             e < (g + 1) * experts_per_group; ++e) {
            ExpertWork w;
            w.tokens = hist[e];
            w.cost = costs_.expertFfn(hist[e]).scaled(shard);
            work.push_back(w);
        }
        const DeviceTiming t = device_->runMoe(work);
        makespan = std::max(makespan, t.time);
        moe_energy.dramJ += t.energy.dramJ * shards_per_group;
        moe_energy.computeJ += t.energy.computeJ * shards_per_group;
    }

    // Gate runs on every device over the node's tokens.
    const std::int64_t node_tokens =
        (global_tokens + plan_.dpDegree - 1) / plan_.dpDegree;
    const DeviceTiming gate_t = device_->runHighOpb(
        costs_.gate(node_tokens).scaled(plan_.tpShardFraction()));

    out.time += gate_t.time + makespan;
    auto &slice = out.slice(LayerClass::Moe);
    slice.time += gate_t.time + makespan;
    const double devices =
        static_cast<double>(plan_.tpDegree) * plan_.dpDegree;
    slice.energy.dramJ +=
        moe_energy.dramJ + gate_t.energy.dramJ * devices;
    slice.energy.computeJ +=
        moe_energy.computeJ + gate_t.energy.computeJ * devices;

    // Collectives: token dispatch + combine (all-to-all) for expert
    // parallelism; a single all-reduce for expert tensor parallelism
    // (Section V-B).
    PicoSec comm = 0;
    const Bytes token_payload =
        static_cast<Bytes>(global_tokens) * m.topK * m.hidden *
        kFp16Bytes;
    if (plan_.experts == ExpertPlacement::ExpertParallel) {
        const Bytes per_device =
            token_payload / cfg_.topo.totalDevices();
        const LinkSpec &link = plan_.expertEpNodes > 1
                                   ? cfg_.topo.interNode
                                   : cfg_.topo.intraNode;
        const int peers = plan_.expertEpNodes > 1
                              ? cfg_.topo.numNodes
                              : cfg_.topo.devicesPerNode;
        comm += 2 * allToAllTime(per_device, peers, link);
    } else {
        const Bytes reduce_bytes = static_cast<Bytes>(node_tokens) *
                                   m.hidden * kFp16Bytes;
        comm += allReduceTime(reduce_bytes, plan_.tpDegree,
                              cfg_.topo.intraNode);
        if (plan_.expertEpNodes > 1) {
            const Bytes per_node = token_payload / cfg_.topo.numNodes;
            comm += 2 * allToAllTime(per_node, cfg_.topo.numNodes,
                                     cfg_.topo.interNode);
        }
    }
    out.time += comm;
    out.slice(LayerClass::Communication).time += comm;
}

StageResult
Cluster::executeStage(const StageShape &stage)
{
    StageResult out;
    const StageShape node = nodeShare(stage);
    const std::int64_t node_tokens = node.totalTokens();
    if (stage.totalTokens() == 0)
        return out;

    const ModelConfig &m = cfg_.model;
    const double tp_shard = plan_.tpShardFraction();
    const double devices =
        static_cast<double>(plan_.tpDegree) * plan_.dpDegree;

    // Token embedding.
    addFc(costs_.embedding(node_tokens), tp_shard, out);

    const Bytes reduce_bytes =
        static_cast<Bytes>(node_tokens) * m.hidden * kFp16Bytes;

    for (int layer = 0; layer < m.numLayers; ++layer) {
        // QKV generation.
        addFc(costs_.qkv(node_tokens), tp_shard, out);

        // Attention (decode + prefill groups, possibly co-processed).
        const AttentionTiming at = device_->runAttention(
            costs_.attentionDecode(node).scaled(tp_shard),
            costs_.attentionPrefill(node).scaled(tp_shard));
        out.time += at.composed;
        auto &dec = out.slice(LayerClass::AttentionDecode);
        dec.time += at.decode.time;
        dec.energy.dramJ += at.decode.energy.dramJ * devices;
        dec.energy.computeJ += at.decode.energy.computeJ * devices;
        auto &pre = out.slice(LayerClass::AttentionPrefill);
        pre.time += at.prefill.time;
        pre.energy.dramJ += at.prefill.energy.dramJ * devices;
        pre.energy.computeJ += at.prefill.energy.computeJ * devices;

        // Output projection + residual/layer norms.
        addFc(costs_.projection(node_tokens), tp_shard, out);
        addFc(costs_.elementwise(node_tokens), tp_shard, out);

        // All-reduce after the attention block.
        PicoSec comm = allReduceTime(reduce_bytes, plan_.tpDegree,
                                     cfg_.topo.intraNode);

        // FFN or MoE.
        if (m.isMoeLayer(layer)) {
            runMoeLayer(stage.totalTokens(), out);
        } else {
            addFc(costs_.denseFfn(node_tokens), tp_shard, out);
        }

        // All-reduce after the FFN/MoE block output.
        comm += allReduceTime(reduce_bytes, plan_.tpDegree,
                              cfg_.topo.intraNode);
        out.time += comm;
        out.slice(LayerClass::Communication).time += comm;
    }

    // LM head: one next-token logit per decode sequence and per
    // prefill sequence.
    const std::int64_t head_tokens =
        node.decodeTokens() +
        static_cast<std::int64_t>(node.prefillLengths.size());
    addFc(costs_.lmHead(head_tokens), tp_shard, out);

    return out;
}

HeteroCluster::HeteroCluster(const HeteroConfig &config)
    : cfg_(config),
      costs_(config.model),
      energy_(config.gpuSpec.energyParams),
      selector_(std::max(1, config.model.numExperts),
                std::max(1, config.model.topK), config.gatePolicy,
                config.zipfS),
      rng_(config.seed)
{
    fatalIf(!cfg_.pimSpec.hasLowEngine,
            "HeteroCluster: PIM devices need a low engine");
}

KvBudget
HeteroCluster::kvBudget() const
{
    // Expert weights and KV cache live on the PIM devices.
    KvBudget budget;
    budget.deviceCapacity = cfg_.pimSpec.memCapacity;
    budget.numDevices = cfg_.numPimDevices;
    const ModelConfig &m = cfg_.model;
    double expert_params = 0.0;
    if (m.numExperts > 0) {
        expert_params = static_cast<double>(m.numMoeLayers()) *
                        m.numExperts * m.ffnParams();
    }
    budget.weightBytesTotal =
        static_cast<Bytes>(expert_params) * kFp16Bytes;
    budget.reservedBytes = cfg_.reservedBytesPerDevice;
    return budget;
}

StageResult
HeteroCluster::executeStage(const StageShape &stage)
{
    StageResult out;
    if (stage.totalTokens() == 0)
        return out;

    const ModelConfig &m = cfg_.model;
    const std::int64_t tokens = stage.totalTokens();
    const double gpu_shard = 1.0 / cfg_.numGpus;
    const double pim_shard = 1.0 / cfg_.numPimDevices;

    auto run_gpu = [&](const OpCost &cost, LayerClass cls) {
        const OpCost shard = cost.scaled(gpu_shard);
        DeviceTiming t =
            engineRun(cfg_.gpuSpec.xpu, cfg_.gpuSpec.xpuPath,
                      cfg_.gpuSpec.xpuCls, energy_, shard);
        out.time += t.time;
        auto &slice = out.slice(cls);
        slice.time += t.time;
        slice.energy.dramJ += t.energy.dramJ * cfg_.numGpus;
        slice.energy.computeJ += t.energy.computeJ * cfg_.numGpus;
    };
    auto run_pim = [&](const OpCost &cost, LayerClass cls) {
        const OpCost shard = cost.scaled(pim_shard);
        DeviceTiming t =
            engineRun(cfg_.pimSpec.low, cfg_.pimSpec.lowPath,
                      cfg_.pimSpec.lowCls, energy_, shard);
        out.time += t.time;
        auto &slice = out.slice(cls);
        slice.time += t.time;
        slice.energy.dramJ += t.energy.dramJ * cfg_.numPimDevices;
        slice.energy.computeJ +=
            t.energy.computeJ * cfg_.numPimDevices;
    };

    const Bytes activation_bytes =
        static_cast<Bytes>(tokens) * m.hidden * kFp16Bytes;

    run_gpu(costs_.embedding(tokens), LayerClass::Fc);
    for (int layer = 0; layer < m.numLayers; ++layer) {
        run_gpu(costs_.qkv(tokens), LayerClass::Fc);

        // Activations cross to the PIM devices for attention and
        // return for the projection.
        PicoSec comm = 2 * p2pTime(activation_bytes, cfg_.link);
        run_pim(costs_.attentionDecode(stage),
                LayerClass::AttentionDecode);
        // Prefill attention stays on the GPUs (KV is streamed over).
        run_gpu(costs_.attentionPrefill(stage),
                LayerClass::AttentionPrefill);
        run_gpu(costs_.projection(tokens), LayerClass::Fc);
        run_gpu(costs_.elementwise(tokens), LayerClass::Fc);

        if (m.isMoeLayer(layer)) {
            // The PIM devices own every expert, in all stages.
            run_gpu(costs_.gate(tokens), LayerClass::Moe);
            comm += 2 * p2pTime(activation_bytes, cfg_.link);
            const auto hist = selector_.sample(rng_, tokens);
            PicoSec worst = 0;
            EnergyBreakdown moe_energy;
            const int per_dev = m.numExperts / cfg_.numPimDevices;
            for (int d = 0; d < cfg_.numPimDevices; ++d) {
                PicoSec dev_time = cfg_.pimSpec.low.dispatchOverhead;
                for (int e = d * per_dev; e < (d + 1) * per_dev;
                     ++e) {
                    if (hist[e] == 0)
                        continue;
                    const OpCost c = costs_.expertFfn(hist[e]);
                    dev_time += operatorTimeNoOverhead(
                        cfg_.pimSpec.low, c.flops, c.bytes);
                    moe_energy.dramJ += energy_.dramEnergyJ(
                        cfg_.pimSpec.lowPath, c.bytes);
                    moe_energy.computeJ += energy_.computeEnergyJ(
                        cfg_.pimSpec.lowCls, c.flops);
                }
                worst = std::max(worst, dev_time);
            }
            out.time += worst;
            auto &slice = out.slice(LayerClass::Moe);
            slice.time += worst;
            slice.energy += moe_energy;
        } else {
            run_gpu(costs_.denseFfn(tokens), LayerClass::Fc);
        }
        out.time += comm;
        out.slice(LayerClass::Communication).time += comm;
    }
    const std::int64_t head_tokens =
        stage.decodeTokens() +
        static_cast<std::int64_t>(stage.prefillLengths.size());
    run_gpu(costs_.lmHead(head_tokens), LayerClass::Fc);
    return out;
}

} // namespace duplex
