#include "energy/edap.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

EdapResult
evaluateEdap(const PimEngineDesc &desc, const GemmShape &shape,
             const EnergyModel &energy)
{
    EdapResult r;
    const PicoSec t =
        operatorTimeNoOverhead(desc.engine, shape.flops(),
                               shape.trafficBytes());
    r.delaySec = psToSec(t);
    r.energyJ = energy.dramEnergyJ(desc.path, shape.trafficBytes()) +
                energy.computeEnergyJ(desc.cls, shape.flops());
    r.areaMm2 = desc.areaMm2;
    return r;
}

std::vector<double>
normalizeEdap(const std::vector<EdapResult> &results)
{
    panicIf(results.empty(), "normalizeEdap: empty set");
    double worst = 0.0;
    for (const auto &r : results)
        worst = std::max(worst, r.edap());
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto &r : results)
        out.push_back(worst > 0.0 ? r.edap() / worst : 0.0);
    return out;
}

} // namespace duplex
