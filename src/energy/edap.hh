/**
 * @file
 * Energy-delay-area product (EDAP) evaluation for Fig. 8.
 *
 * The paper compares Bank-PIM, BankGroup-PIM and Logic-PIM on an
 * FP16 GEMM with a (16384 x 4096) weight matrix while sweeping Op/B
 * (the token count m) from 1 to 32, and normalizes EDAP within each
 * Op/B column. This header is deliberately independent of the DRAM
 * and area modules: callers describe each engine with plain numbers
 * (see device/pim.hh for the assembled variants).
 */

#ifndef DUPLEX_ENERGY_EDAP_HH
#define DUPLEX_ENERGY_EDAP_HH

#include <string>
#include <vector>

#include "compute/engine.hh"
#include "energy/energy.hh"

namespace duplex
{

/** Everything EDAP needs to know about one PIM engine. */
struct PimEngineDesc
{
    std::string name;
    EngineSpec engine;       //!< sustained bandwidth + peak compute
    DramPath path = DramPath::LogicDie;
    ComputeClass cls = ComputeClass::LogicPim;
    double areaMm2 = 0.0;    //!< added silicon per stack
};

/** EDAP evaluation of one GEMM on one engine. */
struct EdapResult
{
    double delaySec = 0.0;
    double energyJ = 0.0;
    double areaMm2 = 0.0;

    double edap() const { return delaySec * energyJ * areaMm2; }
};

/** Evaluate delay, energy and area for @p shape on @p desc. */
EdapResult evaluateEdap(const PimEngineDesc &desc,
                        const GemmShape &shape,
                        const EnergyModel &energy);

/**
 * Normalize EDAP values so the worst engine in the set maps to 1.0,
 * matching the presentation of Fig. 8.
 */
std::vector<double> normalizeEdap(const std::vector<EdapResult> &results);

} // namespace duplex

#endif // DUPLEX_ENERGY_EDAP_HH
