#include "energy/energy.hh"

#include "common/log.hh"

namespace duplex
{

EnergyModel::EnergyModel(const EnergyParams &params)
    : params_(params)
{
}

double
EnergyModel::dramPjPerByte(DramPath path) const
{
    const EnergyParams &p = params_;
    double per_bit = p.arrayPj + p.actPj;
    switch (path) {
      case DramPath::XpuInterposer:
        per_bit += p.onDiePj + p.tsvPj + p.phyPj;
        break;
      case DramPath::LogicDie:
        per_bit += p.onDieShortPj + p.tsvPj;
        break;
      case DramPath::BankLocal:
        per_bit += p.bankLocalPj;
        break;
      case DramPath::BankGroup:
        per_bit += p.bgLocalPj;
        break;
      default:
        panic("unknown DRAM path");
    }
    return per_bit * 8.0;
}

double
EnergyModel::computePjPerFlop(ComputeClass cls) const
{
    switch (cls) {
      case ComputeClass::Xpu:
        return params_.xpuFlopPj;
      case ComputeClass::LogicPim:
        return params_.logicPimFlopPj;
      case ComputeClass::BankPim:
        return params_.bankPimFlopPj;
      case ComputeClass::BankGroupPim:
        return params_.bankGroupPimFlopPj;
      default:
        panic("unknown compute class");
    }
}

} // namespace duplex
