/**
 * @file
 * Energy model for Duplex devices and prior PIM architectures.
 *
 * DRAM access energy is composed per data path from per-bit
 * constants in the style of O'Connor et al. (Fine-Grained DRAM,
 * MICRO'17), the reference the paper uses for activation / read /
 * write / TSV energy. The xPU path pays the full route (array,
 * on-die datapath, TSV, PHY + interposer); Logic-PIM stops at the
 * logic die, and Bank-PIM stops at the bank, which is exactly the
 * mechanism behind Fig. 15's energy savings.
 *
 * Compute energy is a per-FLOP constant per engine class, standing
 * in for the paper's 7 nm synthesis results; SRAM buffering is
 * folded into the constant. Values are documented in DESIGN.md and
 * deliberately easy to retune.
 */

#ifndef DUPLEX_ENERGY_ENERGY_HH
#define DUPLEX_ENERGY_ENERGY_HH

#include "common/units.hh"

namespace duplex
{

/** Where data stops on its way out of the DRAM arrays. */
enum class DramPath
{
    XpuInterposer, //!< array -> TSV -> logic die -> PHY -> interposer
    LogicDie,      //!< array -> TSV -> logic die (Logic-PIM)
    BankLocal,     //!< array -> in-bank unit (Bank-PIM)
    BankGroup,     //!< array -> bank-group unit (BankGroup-PIM)
};

/** Which units perform the arithmetic. */
enum class ComputeClass
{
    Xpu,          //!< H100-class SIMT/tensor units
    LogicPim,     //!< GEMM modules on the HBM logic die
    BankPim,      //!< in-bank units in DRAM process
    BankGroupPim, //!< bank-group units in DRAM process
};

/** Per-bit and per-FLOP energy constants (picojoules). */
struct EnergyParams
{
    // DRAM path components, pJ per bit.
    double arrayPj = 1.51;      //!< bank array access
    double actPj = 0.11;        //!< activation amortized over a row
    double onDiePj = 0.65;      //!< global on-die datapath
    double onDieShortPj = 0.25; //!< shortened path to PIM TSV area
    double tsvPj = 0.30;        //!< through-silicon via transfer
    double phyPj = 1.10;        //!< PHY + interposer I/O
    double bankLocalPj = 0.10;  //!< bank-adjacent wire (Bank-PIM)
    double bgLocalPj = 0.25;    //!< bank-group wire (BankGroup-PIM)

    // Compute, pJ per FLOP (buffers folded in).
    double xpuFlopPj = 0.40;
    double logicPimFlopPj = 0.28;
    double bankPimFlopPj = 0.95;
    double bankGroupPimFlopPj = 0.80;
};

/** Energy accounting for one device family. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams{});

    const EnergyParams &params() const { return params_; }

    /** Picojoules per byte moved along @p path. */
    double dramPjPerByte(DramPath path) const;

    /** Picojoules per FLOP on @p cls. */
    double computePjPerFlop(ComputeClass cls) const;

    /** Total DRAM energy (joules) for @p bytes on @p path. */
    double dramEnergyJ(DramPath path, Bytes bytes) const
    {
        return dramPjPerByte(path) * static_cast<double>(bytes) *
               1e-12;
    }

    /** Total compute energy (joules) for @p flops on @p cls. */
    double computeEnergyJ(ComputeClass cls, Flops flops) const
    {
        return computePjPerFlop(cls) * flops * 1e-12;
    }

  private:
    EnergyParams params_;
};

/** Energy split of one operator or one layer class (joules). */
struct EnergyBreakdown
{
    double dramJ = 0.0;
    double computeJ = 0.0;

    double totalJ() const { return dramJ + computeJ; }

    EnergyBreakdown &operator+=(const EnergyBreakdown &other)
    {
        dramJ += other.dramJ;
        computeJ += other.computeJ;
        return *this;
    }
};

} // namespace duplex

#endif // DUPLEX_ENERGY_ENERGY_HH
