#include "area/area.hh"

#include "common/log.hh"

namespace duplex
{

AreaModel::AreaModel(const AreaParams &params)
    : params_(params)
{
}

double
AreaModel::logicPimPeakFlops() const
{
    return 2.0 * params_.gemmModules * params_.macsPerModule *
           params_.moduleClockHz;
}

double
AreaModel::mm2PerMacLogic() const
{
    const double macs =
        static_cast<double>(params_.gemmModules) *
        params_.macsPerModule;
    return params_.gemmModulesMm2 / macs;
}

AreaReport
AreaModel::logicPim() const
{
    AreaReport r;
    r.computeMm2 = params_.gemmModulesMm2;
    r.bufferMm2 = params_.buffersMm2;
    r.softmaxMm2 = params_.softmaxMm2;
    r.tsvMm2 = params_.tsvMm2;
    return r;
}

AreaReport
AreaModel::bankPim(double peak_flops) const
{
    panicIf(peak_flops <= 0.0, "bankPim: peak FLOPs must be positive");
    const double macs =
        peak_flops / (2.0 * params_.moduleClockHz);
    AreaReport r;
    r.computeMm2 = macs * mm2PerMacLogic() * params_.dramLogicFactor;
    // Per-bank operand latches replace the big staging buffers;
    // charge the same SRAM capacity at the DRAM-process factor.
    r.bufferMm2 = params_.buffersMm2 * params_.dramSramFactor;
    r.softmaxMm2 = params_.softmaxMm2; // stays on the logic die
    r.tsvMm2 = 0.0;
    return r;
}

AreaReport
AreaModel::bankGroupPim() const
{
    AreaReport r;
    r.computeMm2 =
        params_.gemmModulesMm2 * params_.dramLogicFactor;
    r.bufferMm2 = params_.buffersMm2 * params_.dramSramFactor;
    r.softmaxMm2 = params_.softmaxMm2; // stays on the logic die
    r.tsvMm2 = 0.0;
    return r;
}

double
AreaModel::logicPimDieFraction() const
{
    return logicPim().totalMm2() / params_.logicDieMm2;
}

} // namespace duplex
