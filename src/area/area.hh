/**
 * @file
 * Silicon area model for PIM variants (Section VII-E).
 *
 * Logic-PIM's published per-stack budget is reproduced exactly:
 * 32 GEMM modules of 512 FP16 MACs at 650 MHz plus an 8 KB buffer
 * each (3.02 mm^2), two 1 MB staging buffers (2.26 mm^2), a softmax
 * unit (1.64 mm^2), and 10.89 mm^2 of added TSVs — 17.80 mm^2,
 * 14.71% of a 121 mm^2 HBM3 logic die.
 *
 * Prior-work variants place their units in the DRAM dies, where the
 * paper (citing UPMEM) assumes logic is 10 x larger for the same
 * feature size; SRAM macros embedded in DRAM are charged a smaller
 * factor since DRAM processes do provide dense storage.
 */

#ifndef DUPLEX_AREA_AREA_HH
#define DUPLEX_AREA_AREA_HH

namespace duplex
{

/** Area constants; defaults reproduce the paper's numbers. */
struct AreaParams
{
    // Published Logic-PIM budget, mm^2 per stack.
    double gemmModulesMm2 = 3.02; //!< 32 x 512 MACs + 8 KB buffers
    double buffersMm2 = 2.26;     //!< two 1 MB staging buffers
    double softmaxMm2 = 1.64;     //!< softmax unit incl. 128 KB SRAM
    double tsvMm2 = 10.89;        //!< added TSVs (22 um pitch, 4x)
    double logicDieMm2 = 121.0;   //!< HBM3 logic die

    // Process scaling factors for DRAM-die implementations.
    double dramLogicFactor = 10.0; //!< logic in DRAM process
    double dramSramFactor = 2.0;   //!< SRAM macros in DRAM process

    // GEMM-module composition (for scaling to other MAC counts).
    int gemmModules = 32;
    int macsPerModule = 512;
    double moduleClockHz = 650e6;
};

/** Per-variant area summary, mm^2 of added silicon per stack. */
struct AreaReport
{
    double computeMm2 = 0.0;
    double bufferMm2 = 0.0;
    double softmaxMm2 = 0.0;
    double tsvMm2 = 0.0;

    double totalMm2() const
    {
        return computeMm2 + bufferMm2 + softmaxMm2 + tsvMm2;
    }
};

/** Area model answering Fig. 8 / Section VII-E questions. */
class AreaModel
{
  public:
    explicit AreaModel(const AreaParams &params = AreaParams{});

    const AreaParams &params() const { return params_; }

    /** Peak FP16 FLOPs of the published Logic-PIM configuration. */
    double logicPimPeakFlops() const;

    /** mm^2 per MAC (7 nm logic, buffer share included). */
    double mm2PerMacLogic() const;

    /** Logic-PIM: everything on the logic die plus added TSVs. */
    AreaReport logicPim() const;

    /**
     * Bank-PIM: in-bank units sized for @p peak_flops in the DRAM
     * dies; softmax/activation stay on the logic die (Section VI).
     * No added TSVs.
     */
    AreaReport bankPim(double peak_flops) const;

    /**
     * BankGroup-PIM: Logic-PIM's compute and buffers, but placed in
     * the DRAM dies at bank groups. No added TSVs.
     */
    AreaReport bankGroupPim() const;

    /** Fraction of the logic die taken by Logic-PIM units. */
    double logicPimDieFraction() const;

  private:
    AreaParams params_;
};

} // namespace duplex

#endif // DUPLEX_AREA_AREA_HH
