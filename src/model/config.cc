#include "model/config.hh"

#include <algorithm>
#include <cctype>

#include "common/log.hh"

namespace duplex
{

int
ModelConfig::numMoeLayers() const
{
    if (numExperts == 0)
        return 0;
    int count = 0;
    for (int l = 0; l < numLayers; ++l)
        if (isMoeLayer(l))
            ++count;
    return count;
}

double
ModelConfig::attentionParams() const
{
    const double h = hidden;
    const double kv = static_cast<double>(kvHeads()) * headDim();
    // Q and output projections are hidden x hidden; K and V are
    // hidden x (kvHeads * headDim), shrunk by GQA.
    return h * h + 2.0 * h * kv + h * h;
}

double
ModelConfig::ffnParams() const
{
    return static_cast<double>(ffnFcCount()) * hidden *
           static_cast<double>(intermediate);
}

double
ModelConfig::totalParams() const
{
    double params = 0.0;
    for (int l = 0; l < numLayers; ++l) {
        params += attentionParams();
        if (isMoeLayer(l)) {
            params += static_cast<double>(numExperts) * ffnParams();
            params += static_cast<double>(hidden) * numExperts; // gate
        } else {
            params += ffnParams();
        }
    }
    // Token embedding + LM head (untied).
    params += 2.0 * static_cast<double>(vocab) * hidden;
    return params;
}

Bytes
ModelConfig::kvBytesPerToken() const
{
    return static_cast<Bytes>(numLayers) * 2 *
           static_cast<Bytes>(kvHeads()) * headDim() * kFp16Bytes;
}

ModelConfig
mixtralConfig()
{
    ModelConfig m;
    m.name = "Mixtral";
    m.numLayers = 32;
    m.hidden = 4096;
    m.intermediate = 14336;
    m.numHeads = 32;
    m.degGrp = 4;
    m.numExperts = 8;
    m.topK = 2;
    m.gatedFfn = true;
    m.moePeriod = 1;
    m.vocab = 32000;
    return m;
}

ModelConfig
glamConfig()
{
    ModelConfig m;
    m.name = "GLaM";
    m.numLayers = 32;
    m.hidden = 4096;
    m.intermediate = 16384;
    m.numHeads = 32;
    m.degGrp = 1;
    m.numExperts = 64;
    m.topK = 2;
    m.gatedFfn = false;
    m.moePeriod = 2;
    m.vocab = 32000;
    return m;
}

ModelConfig
grok1Config()
{
    ModelConfig m;
    m.name = "Grok1";
    m.numLayers = 64;
    m.hidden = 6144;
    m.intermediate = 32768;
    m.numHeads = 48;
    m.degGrp = 6;
    m.numExperts = 8;
    m.topK = 2;
    m.gatedFfn = true;
    m.moePeriod = 1;
    m.vocab = 32000;
    return m;
}

ModelConfig
optConfig()
{
    ModelConfig m;
    m.name = "OPT";
    m.numLayers = 64;
    m.hidden = 9216;
    m.intermediate = 36864;
    m.numHeads = 72;
    m.degGrp = 1;
    m.numExperts = 0;
    m.topK = 0;
    m.gatedFfn = false;
    m.vocab = 50272;
    return m;
}

ModelConfig
llama3Config()
{
    ModelConfig m;
    m.name = "Llama3";
    m.numLayers = 80;
    m.hidden = 8192;
    m.intermediate = 28672;
    m.numHeads = 64;
    m.degGrp = 8;
    m.numExperts = 0;
    m.topK = 0;
    m.gatedFfn = true;
    m.vocab = 128256;
    return m;
}

ModelConfig
modelByName(const std::string &name)
{
    std::string key = name;
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (key == "mixtral")
        return mixtralConfig();
    if (key == "glam")
        return glamConfig();
    if (key == "grok1" || key == "grok")
        return grok1Config();
    if (key == "opt")
        return optConfig();
    if (key == "llama3" || key == "llama")
        return llama3Config();
    fatal("unknown model: " + name);
}

} // namespace duplex
