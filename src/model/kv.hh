/**
 * @file
 * KV-cache capacity accounting.
 *
 * Hetero and split systems lose batch size to weight duplication
 * (Figs. 5(c), 16); this helper answers "how many requests of a
 * given context length fit" for any weights-per-device split.
 */

#ifndef DUPLEX_MODEL_KV_HH
#define DUPLEX_MODEL_KV_HH

#include "model/config.hh"

namespace duplex
{

/** Capacity bookkeeping for one group of devices serving a model. */
struct KvBudget
{
    Bytes deviceCapacity = 0;   //!< HBM bytes per device
    int numDevices = 0;         //!< devices sharing the weights
    Bytes weightBytesTotal = 0; //!< weights resident across them
    Bytes reservedBytes = 0;    //!< activations / scratch per device

    /** Bytes available for KV cache across the group. */
    Bytes kvCapacityBytes() const;

    /**
     * Maximum tokens of KV cache that fit for @p m.
     */
    std::int64_t maxKvTokens(const ModelConfig &m) const;

    /**
     * Largest batch of requests with @p tokens_per_request context
     * that fits.
     */
    std::int64_t maxBatch(const ModelConfig &m,
                          std::int64_t tokens_per_request) const;
};

} // namespace duplex

#endif // DUPLEX_MODEL_KV_HH
