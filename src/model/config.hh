/**
 * @file
 * LLM architecture configurations (Table I).
 *
 * | Model   | Param | layers | hidden | interm | heads | deggrp | Nex | top-k |
 * |---------|-------|--------|--------|--------|-------|--------|-----|-------|
 * | Mixtral | 47B   | 32     | 4096   | 14336  | 32    | 4 GQA  | 8   | 2     |
 * | GLaM    | 143B  | 32     | 4096   | 16384  | 32    | 1 MHA  | 64  | 2     |
 * | Grok1   | 314B  | 64     | 6144   | 32768  | 48    | 6 GQA  | 8   | 2     |
 * | OPT     | 66B   | 64     | 9216   | 36864  | 72    | 1 MHA  | -   | -     |
 * | Llama3  | 70B   | 80     | 8192   | 28672  | 64    | 8 GQA  | -   | -     |
 *
 * Mixtral and Grok1 are MoE in every decoder block; GLaM alternates
 * dense and MoE blocks. Gated FFNs (SiLU-style, three FC layers) are
 * used by Mixtral/Grok1/Llama3; GLaM and OPT use two FC layers.
 */

#ifndef DUPLEX_MODEL_CONFIG_HH
#define DUPLEX_MODEL_CONFIG_HH

#include <string>

#include "common/units.hh"
#include "compute/gemm.hh"

namespace duplex
{

/** Architecture shape of one LLM. */
struct ModelConfig
{
    std::string name = "model";
    int numLayers = 0;
    int hidden = 0;
    int intermediate = 0;
    int numHeads = 0;
    int degGrp = 1;       //!< heads per KV group; 1 = MHA
    int numExperts = 0;   //!< 0 = dense FFN everywhere
    int topK = 0;
    bool gatedFfn = false; //!< 3 FC layers (gate/up/down) when true
    int moePeriod = 1;    //!< every Nth block is MoE (GLaM: 2)
    int vocab = 32000;

    /** Dimension of one attention head. */
    int headDim() const { return hidden / numHeads; }

    /** Number of KV heads (GQA groups). */
    int kvHeads() const { return numHeads / degGrp; }

    /** True when block @p layer carries an MoE FFN. */
    bool isMoeLayer(int layer) const
    {
        return numExperts > 0 && layer % moePeriod == 0;
    }

    /** Number of MoE blocks in the model. */
    int numMoeLayers() const;

    /** FC layers per FFN (2 or 3). */
    int ffnFcCount() const { return gatedFfn ? 3 : 2; }

    /** Parameters of one attention block (QKV + projection). */
    double attentionParams() const;

    /** Parameters of one dense FFN or one expert. */
    double ffnParams() const;

    /** Total parameter count including embeddings. */
    double totalParams() const;

    /** Total FP16 weight bytes. */
    Bytes weightBytes() const
    {
        return static_cast<Bytes>(totalParams()) * kFp16Bytes;
    }

    /** KV-cache bytes one token occupies across all layers. */
    Bytes kvBytesPerToken() const;
};

/** Table I presets. */
ModelConfig mixtralConfig();
ModelConfig glamConfig();
ModelConfig grok1Config();
ModelConfig optConfig();
ModelConfig llama3Config();

/** Look up a preset by (case-insensitive) name; fatal if unknown. */
ModelConfig modelByName(const std::string &name);

} // namespace duplex

#endif // DUPLEX_MODEL_CONFIG_HH
