#include "model/layers.hh"

#include "common/log.hh"

namespace duplex
{

const char *
layerClassName(LayerClass cls)
{
    switch (cls) {
      case LayerClass::Fc:
        return "FC";
      case LayerClass::AttentionPrefill:
        return "Attention(Prefill)";
      case LayerClass::AttentionDecode:
        return "Attention(Decoding)";
      case LayerClass::Moe:
        return "MoE";
      case LayerClass::Communication:
        return "Communication";
      default:
        return "?";
    }
}

StageAggregates
aggregatesOf(const StageShape &stage)
{
    StageAggregates agg;
    for (auto ctx : stage.decodeContexts)
        agg.addDecode(ctx);
    for (auto len : stage.prefillLengths)
        agg.addPrefill(len);
    return agg;
}

std::int64_t
StageShape::prefillTokens() const
{
    if (aggValid)
        return agg.prefillSum;
    std::int64_t total = 0;
    for (auto len : prefillLengths)
        total += len;
    return total;
}

std::int64_t
StageShape::contextTokens() const
{
    if (aggValid)
        return agg.contextTokens();
    std::int64_t total = 0;
    for (auto ctx : decodeContexts)
        total += ctx;
    return total + prefillTokens();
}

LayerCosts::LayerCosts(const ModelConfig &m)
    : model_(m)
{
    fatalIf(m.hidden <= 0 || m.numLayers <= 0,
            "LayerCosts: model '" + m.name + "' is not configured");
}

namespace
{

OpCost
fromGemm(const GemmShape &g)
{
    return {g.flops(), g.trafficBytes()};
}

} // namespace

OpCost
LayerCosts::qkv(std::int64_t tokens) const
{
    const auto kv =
        static_cast<std::int64_t>(model_.kvHeads()) * model_.headDim();
    GemmShape g{tokens, model_.hidden, model_.hidden + 2 * kv};
    return fromGemm(g);
}

OpCost
LayerCosts::projection(std::int64_t tokens) const
{
    GemmShape g{tokens, model_.hidden, model_.hidden};
    return fromGemm(g);
}

OpCost
LayerCosts::denseFfn(std::int64_t tokens) const
{
    OpCost cost;
    if (model_.gatedFfn) {
        cost += fromGemm({tokens, model_.hidden, model_.intermediate});
        cost += fromGemm({tokens, model_.hidden, model_.intermediate});
    } else {
        cost += fromGemm({tokens, model_.hidden, model_.intermediate});
    }
    cost += fromGemm({tokens, model_.intermediate, model_.hidden});
    // Gated activation / nonlinearity over the intermediate tensor.
    const double elems = static_cast<double>(tokens) *
                         model_.intermediate;
    cost.flops += 4.0 * elems;
    cost.bytes += static_cast<Bytes>(elems) * kFp16Bytes;
    return cost;
}

OpCost
LayerCosts::gate(std::int64_t tokens) const
{
    GemmShape g{tokens, model_.hidden, model_.numExperts};
    OpCost cost = fromGemm(g);
    // Top-k selection and renormalization.
    cost.flops += 4.0 * static_cast<double>(tokens) *
                  model_.numExperts;
    return cost;
}

OpCost
LayerCosts::expertFfn(std::int64_t tokens) const
{
    if (tokens == 0)
        return {};
    return denseFfn(tokens);
}

AffineOpCost
LayerCosts::expertFfnAffine() const
{
    // denseFfn is affine in the token count with integer-valued
    // coefficients (GEMM flops/traffic are linear in m, weights are
    // the intercept), so two samples recover it exactly.
    const OpCost c1 = expertFfn(1);
    const OpCost c2 = expertFfn(2);
    AffineOpCost model;
    model.slope = {c2.flops - c1.flops, c2.bytes - c1.bytes};
    model.base = {c1.flops - model.slope.flops,
                  c1.bytes - model.slope.bytes};
    return model;
}

OpCost
LayerCosts::attentionDecode(const StageAggregates &agg) const
{
    // Every per-sequence term of the reference loop is affine in the
    // attended context (ctx + 1), so the whole stage collapses to the
    // sums below. All intermediate values are integer-valued doubles
    // well under 2^53, so the result is bit-identical to summing
    // sequence by sequence.
    OpCost cost;
    const auto head_dim = static_cast<double>(model_.headDim());
    const auto kv_heads = static_cast<double>(model_.kvHeads());
    const auto heads = static_cast<double>(model_.numHeads);
    const auto num = static_cast<double>(agg.numDecode);
    // Sum over sequences of the attended context (ctx + self).
    const auto attended =
        static_cast<double>(agg.contextSum + agg.numDecode);

    // Per KV head: (degGrp x headDim) x (headDim x ctx) and
    // (degGrp x ctx) x (ctx x headDim).
    cost.flops += 4.0 * heads * head_dim * attended;
    // KV matrices are read once per group; Q/output are tiny.
    const double kv_bytes = 2.0 * kv_heads * head_dim * attended *
                            static_cast<double>(kFp16Bytes);
    const double qo_bytes = 2.0 * heads * head_dim * num *
                            static_cast<double>(kFp16Bytes);
    cost.bytes += static_cast<Bytes>(kv_bytes + qo_bytes);
    // Softmax over heads x ctx scores.
    const double scores = heads * attended;
    cost.flops += 5.0 * scores;
    cost.bytes += static_cast<Bytes>(
        2.0 * scores * static_cast<double>(kFp16Bytes));
    // KV append for this stage's new tokens.
    cost.bytes += static_cast<Bytes>(agg.numDecode) * 2 *
                  model_.kvHeads() * model_.headDim() * kFp16Bytes;
    return cost;
}

OpCost
LayerCosts::attentionPrefill(const StageAggregates &agg) const
{
    // Causal pairs sum to (prefillSqSum + prefillSum) / 2 and the
    // streaming terms are linear in prefillSum; like the decode
    // path, exact-integer doubles make this bit-identical to the
    // per-sequence reference loop.
    OpCost cost;
    const auto head_dim = static_cast<double>(model_.headDim());
    const auto kv_heads = static_cast<double>(model_.kvHeads());
    const auto heads = static_cast<double>(model_.numHeads);
    const auto tokens = static_cast<double>(agg.prefillSum);
    // Causal self-attention: half of the full score matrix,
    // summed over sequences: sum of len * (len + 1) / 2.
    const double pairs = static_cast<double>(
        (agg.prefillSqSum + agg.prefillSum) / 2);

    cost.flops += 4.0 * heads * head_dim * pairs;
    // Flash-style tiling: K and V streamed once per KV head,
    // Q streamed once; the score matrix never hits DRAM.
    const double kv_bytes = 2.0 * kv_heads * head_dim * tokens *
                            static_cast<double>(kFp16Bytes);
    const double qo_bytes = 2.0 * heads * head_dim * tokens *
                            static_cast<double>(kFp16Bytes);
    cost.bytes += static_cast<Bytes>(kv_bytes + qo_bytes);
    cost.flops += 5.0 * heads * pairs; // online softmax
    // KV append for the whole prompt.
    cost.bytes += static_cast<Bytes>(
        2.0 * kv_heads * head_dim * tokens *
        static_cast<double>(kFp16Bytes));
    return cost;
}

OpCost
LayerCosts::attentionDecodeReference(const StageShape &stage) const
{
    OpCost cost;
    const auto head_dim = static_cast<double>(model_.headDim());
    const auto kv_heads = static_cast<double>(model_.kvHeads());
    const auto heads = static_cast<double>(model_.numHeads);

    for (auto ctx_in : stage.decodeContexts) {
        const auto ctx = static_cast<double>(ctx_in) + 1.0; // + self
        cost.flops += 4.0 * heads * head_dim * ctx;
        const double kv_bytes = 2.0 * kv_heads * head_dim * ctx *
                                static_cast<double>(kFp16Bytes);
        const double qo_bytes = 2.0 * heads * head_dim *
                                static_cast<double>(kFp16Bytes);
        cost.bytes += static_cast<Bytes>(kv_bytes + qo_bytes);
        const double scores = heads * ctx;
        cost.flops += 5.0 * scores;
        cost.bytes += static_cast<Bytes>(
            2.0 * scores * static_cast<double>(kFp16Bytes));
    }
    cost.bytes += static_cast<Bytes>(stage.decodeTokens()) * 2 *
                  model_.kvHeads() * model_.headDim() * kFp16Bytes;
    return cost;
}

OpCost
LayerCosts::attentionPrefillReference(const StageShape &stage) const
{
    OpCost cost;
    const auto head_dim = static_cast<double>(model_.headDim());
    const auto kv_heads = static_cast<double>(model_.kvHeads());
    const auto heads = static_cast<double>(model_.numHeads);

    for (auto len_in : stage.prefillLengths) {
        const auto len = static_cast<double>(len_in);
        const double pairs = len * (len + 1.0) / 2.0;
        cost.flops += 4.0 * heads * head_dim * pairs;
        const double kv_bytes = 2.0 * kv_heads * head_dim * len *
                                static_cast<double>(kFp16Bytes);
        const double qo_bytes = 2.0 * heads * head_dim * len *
                                static_cast<double>(kFp16Bytes);
        cost.bytes += static_cast<Bytes>(kv_bytes + qo_bytes);
        cost.flops += 5.0 * heads * pairs; // online softmax
        cost.bytes += static_cast<Bytes>(
            2.0 * kv_heads * head_dim * len *
            static_cast<double>(kFp16Bytes));
    }
    return cost;
}

OpCost
LayerCosts::lmHead(std::int64_t tokens) const
{
    GemmShape g{tokens, model_.hidden, model_.vocab};
    return fromGemm(g);
}

OpCost
LayerCosts::embedding(std::int64_t tokens) const
{
    OpCost cost;
    cost.bytes = static_cast<Bytes>(tokens) * model_.hidden *
                 kFp16Bytes;
    return cost;
}

OpCost
LayerCosts::elementwise(std::int64_t tokens) const
{
    // Two layer norms and two residual adds per block.
    const double elems = 4.0 * static_cast<double>(tokens) *
                         model_.hidden;
    OpCost cost;
    cost.flops = 4.0 * elems;
    cost.bytes = static_cast<Bytes>(2.0 * elems *
                                    static_cast<double>(kFp16Bytes));
    return cost;
}

} // namespace duplex
