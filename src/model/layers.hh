/**
 * @file
 * Per-stage operator cost builder.
 *
 * Costs are model-level (unsharded): FLOPs plus DRAM traffic for one
 * operator group of one decoder block, given the stage composition
 * (decode sequences, prefill sequences, expert token histogram). The
 * parallel/ module divides these across devices; the device layer
 * turns them into time and energy.
 *
 * Element-wise work (softmax, gated activation, residual) is folded
 * into its parent group — matching fused kernels on GPUs and the
 * dedicated vector modules of Logic-PIM — but is still tracked as
 * FLOPs/bytes so energy accounting sees it.
 */

#ifndef DUPLEX_MODEL_LAYERS_HH
#define DUPLEX_MODEL_LAYERS_HH

#include <vector>

#include "model/config.hh"

namespace duplex
{

/** Coarse layer class used in Fig. 4(a) / Fig. 15 breakdowns. */
enum class LayerClass
{
    Fc,                //!< QKV gen, projection, dense FFN, LM head
    AttentionPrefill,  //!< attention of prefill sequences
    AttentionDecode,   //!< attention of decode sequences
    Moe,               //!< gate + expert FFNs
    Communication,     //!< collectives
};

/** Name for reporting. */
const char *layerClassName(LayerClass cls);

/** FLOPs + DRAM traffic of one operator group. */
struct OpCost
{
    Flops flops = 0.0;
    Bytes bytes = 0;

    OpCost &operator+=(const OpCost &other)
    {
        flops += other.flops;
        bytes += other.bytes;
        return *this;
    }

    /** Scale both members (sharding). */
    OpCost scaled(double f) const
    {
        return {flops * f,
                static_cast<Bytes>(static_cast<double>(bytes) * f)};
    }

    double opPerByte() const
    {
        return bytes == 0 ? 0.0
                          : flops / static_cast<double>(bytes);
    }
};

/** Composition of one batched stage, as the scheduler forms it. */
struct StageShape
{
    /** Context length of each decode sequence (before this stage). */
    std::vector<std::int64_t> decodeContexts;

    /** Input length of each prefill sequence joining this stage. */
    std::vector<std::int64_t> prefillLengths;

    /** Decode tokens (one per decode sequence). */
    std::int64_t decodeTokens() const
    {
        return static_cast<std::int64_t>(decodeContexts.size());
    }

    /** Prefill tokens (sum of input lengths). */
    std::int64_t prefillTokens() const;

    /** All tokens passing the FC / MoE layers this stage. */
    std::int64_t totalTokens() const
    {
        return decodeTokens() + prefillTokens();
    }

    /**
     * Context tokens resident in the KV cache during this stage
     * (decode contexts plus joining prompts); what
     * StageObservation.kvTokens reports.
     */
    std::int64_t contextTokens() const;

    bool isMixed() const { return !prefillLengths.empty(); }
};

/** Cost builders for one decoder block of @p m. */
class LayerCosts
{
  public:
    explicit LayerCosts(const ModelConfig &m);

    const ModelConfig &model() const { return model_; }

    /** QKV generation for @p tokens. */
    OpCost qkv(std::int64_t tokens) const;

    /** Output projection for @p tokens. */
    OpCost projection(std::int64_t tokens) const;

    /** Dense FFN (non-MoE block) incl. activation. */
    OpCost denseFfn(std::int64_t tokens) const;

    /** MoE gate (tokens x hidden x Nex plus top-k selection). */
    OpCost gate(std::int64_t tokens) const;

    /** One expert FFN processing @p tokens, incl. activation. */
    OpCost expertFfn(std::int64_t tokens) const;

    /**
     * Attention of decode sequences: per sequence a
     * (degGrp x headDim x context) GEMM pair per KV head plus
     * softmax, KV read dominated. Includes this stage's KV append.
     */
    OpCost attentionDecode(const StageShape &stage) const;

    /** Attention of prefill sequences (causal self-attention). */
    OpCost attentionPrefill(const StageShape &stage) const;

    /** LM head for @p tokens (decode + last prefill token each). */
    OpCost lmHead(std::int64_t tokens) const;

    /** Token embedding lookup. */
    OpCost embedding(std::int64_t tokens) const;

    /** Residual/layer-norm element-wise passes for @p tokens. */
    OpCost elementwise(std::int64_t tokens) const;

  private:
    ModelConfig model_;
};

} // namespace duplex

#endif // DUPLEX_MODEL_LAYERS_HH
