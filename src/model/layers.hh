/**
 * @file
 * Per-stage operator cost builder.
 *
 * Costs are model-level (unsharded): FLOPs plus DRAM traffic for one
 * operator group of one decoder block, given the stage composition
 * (decode sequences, prefill sequences, expert token histogram). The
 * parallel/ module divides these across devices; the device layer
 * turns them into time and energy.
 *
 * Element-wise work (softmax, gated activation, residual) is folded
 * into its parent group — matching fused kernels on GPUs and the
 * dedicated vector modules of Logic-PIM — but is still tracked as
 * FLOPs/bytes so energy accounting sees it.
 */

#ifndef DUPLEX_MODEL_LAYERS_HH
#define DUPLEX_MODEL_LAYERS_HH

#include <vector>

#include "model/config.hh"

namespace duplex
{

/** Coarse layer class used in Fig. 4(a) / Fig. 15 breakdowns. */
enum class LayerClass
{
    Fc,                //!< QKV gen, projection, dense FFN, LM head
    AttentionPrefill,  //!< attention of prefill sequences
    AttentionDecode,   //!< attention of decode sequences
    Moe,               //!< gate + expert FFNs
    Communication,     //!< collectives
};

/** Name for reporting. */
const char *layerClassName(LayerClass cls);

/** FLOPs + DRAM traffic of one operator group. */
struct OpCost
{
    Flops flops = 0.0;
    Bytes bytes = 0;

    OpCost &operator+=(const OpCost &other)
    {
        flops += other.flops;
        bytes += other.bytes;
        return *this;
    }

    /** Scale both members (sharding). */
    OpCost scaled(double f) const
    {
        return {flops * f,
                static_cast<Bytes>(static_cast<double>(bytes) * f)};
    }

    double opPerByte() const
    {
        return bytes == 0 ? 0.0
                          : flops / static_cast<double>(bytes);
    }
};

struct StageShape;

/**
 * Closed-form stage aggregates: everything the analytic cost models
 * need to price a stage in O(1), independent of batch size.
 *
 * Decode-attention cost is affine in (numDecode, contextSum) and
 * prefill-attention cost is a polynomial in (numPrefill, prefillSum,
 * prefillSqSum), so these five sums replace the per-context loops.
 * The ContinuousBatcher maintains them incrementally across
 * admissions, token advances and retirements; aggregatesOf() rebuilds
 * them from a shape's vectors for hand-built stages and for the
 * equivalence tests.
 */
struct StageAggregates
{
    std::int64_t numDecode = 0;    //!< decode sequences
    std::int64_t contextSum = 0;   //!< sum of decode contexts
    std::int64_t numPrefill = 0;   //!< prefill sequences
    std::int64_t prefillSum = 0;   //!< sum of prefill lengths
    std::int64_t prefillSqSum = 0; //!< sum of squared lengths

    void addDecode(std::int64_t ctx)
    {
        ++numDecode;
        contextSum += ctx;
    }

    void removeDecode(std::int64_t ctx)
    {
        --numDecode;
        contextSum -= ctx;
    }

    void addPrefill(std::int64_t len)
    {
        ++numPrefill;
        prefillSum += len;
        prefillSqSum += len * len;
    }

    /** All tokens passing the FC / MoE layers this stage. */
    std::int64_t totalTokens() const
    {
        return numDecode + prefillSum;
    }

    /** Context tokens resident in the KV cache this stage. */
    std::int64_t contextTokens() const
    {
        return contextSum + prefillSum;
    }

    bool operator==(const StageAggregates &) const = default;
};

/** Rebuild the aggregates of @p stage from its sequence vectors. */
StageAggregates aggregatesOf(const StageShape &stage);

/**
 * Exact affine cost model: at(t) == base + t * slope for t >= 1,
 * bit-identical to rebuilding the cost (every coefficient is an
 * integer-valued double far below 2^53). Lets the MoE hot loop
 * price an expert's tokens without re-deriving GEMM shapes.
 */
struct AffineOpCost
{
    OpCost base;
    OpCost slope;

    OpCost at(std::int64_t tokens) const
    {
        if (tokens == 0)
            return {};
        return {base.flops + static_cast<double>(tokens) *
                                 slope.flops,
                base.bytes +
                    static_cast<Bytes>(tokens) * slope.bytes};
    }
};

/** Composition of one batched stage, as the scheduler forms it. */
struct StageShape
{
    /**
     * Context length of each decode sequence (before this stage).
     * Schedulers publish this per-context view only on request
     * (BatcherConfig.exactStageView / ServingSystem::
     * needsExactStageView) — the default stage is aggregate-only
     * (aggValid set, this vector empty), which every O(1) cost
     * path prices bit-identically. Consumers must go through
     * decodeTokens()/aggregates(), never decodeContexts.size(),
     * unless they asked for the exact view.
     */
    std::vector<std::int64_t> decodeContexts;

    /** Input length of each prefill sequence joining this stage. */
    std::vector<std::int64_t> prefillLengths;

    /**
     * Aggregates matching the vectors above, when aggValid is set.
     * Schedulers that maintain the sums incrementally (the
     * ContinuousBatcher) publish them here so per-stage costing
     * never re-walks the batch; hand-built shapes leave aggValid
     * false and aggregates() recomputes on demand.
     */
    StageAggregates agg;
    bool aggValid = false;

    /** The aggregates: O(1) when aggValid, one walk otherwise. */
    StageAggregates aggregates() const
    {
        return aggValid ? agg : aggregatesOf(*this);
    }

    /** Decode tokens (one per decode sequence). */
    std::int64_t decodeTokens() const
    {
        // Aggregate-only shapes (the scheduler's default stage
        // view) leave decodeContexts empty; the count lives in agg.
        return aggValid
                   ? agg.numDecode
                   : static_cast<std::int64_t>(decodeContexts.size());
    }

    /** Prefill tokens (sum of input lengths). */
    std::int64_t prefillTokens() const;

    /** All tokens passing the FC / MoE layers this stage. */
    std::int64_t totalTokens() const
    {
        return decodeTokens() + prefillTokens();
    }

    /**
     * Context tokens resident in the KV cache during this stage
     * (decode contexts plus joining prompts); what
     * StageObservation.kvTokens reports.
     */
    std::int64_t contextTokens() const;

    bool isMixed() const { return !prefillLengths.empty(); }
};

/** Cost builders for one decoder block of @p m. */
class LayerCosts
{
  public:
    explicit LayerCosts(const ModelConfig &m);

    const ModelConfig &model() const { return model_; }

    /** QKV generation for @p tokens. */
    OpCost qkv(std::int64_t tokens) const;

    /** Output projection for @p tokens. */
    OpCost projection(std::int64_t tokens) const;

    /** Dense FFN (non-MoE block) incl. activation. */
    OpCost denseFfn(std::int64_t tokens) const;

    /** MoE gate (tokens x hidden x Nex plus top-k selection). */
    OpCost gate(std::int64_t tokens) const;

    /** One expert FFN processing @p tokens, incl. activation. */
    OpCost expertFfn(std::int64_t tokens) const;

    /**
     * The expert FFN cost as an exact affine model in the token
     * count (expertFfnAffine().at(t) == expertFfn(t) bit-for-bit).
     */
    AffineOpCost expertFfnAffine() const;

    /**
     * Attention of decode sequences: per sequence a
     * (degGrp x headDim x context) GEMM pair per KV head plus
     * softmax, KV read dominated. Includes this stage's KV append.
     * O(1): affine in (numDecode, contextSum).
     */
    OpCost attentionDecode(const StageAggregates &agg) const;

    OpCost attentionDecode(const StageShape &stage) const
    {
        return attentionDecode(stage.aggregates());
    }

    /**
     * Attention of prefill sequences (causal self-attention).
     * O(1): polynomial in (numPrefill, prefillSum, prefillSqSum).
     */
    OpCost attentionPrefill(const StageAggregates &agg) const;

    OpCost attentionPrefill(const StageShape &stage) const
    {
        return attentionPrefill(stage.aggregates());
    }

    /**
     * Per-context reference implementations of the attention costs,
     * retained to pin the closed forms in the equivalence tests.
     * Not used on any simulation path.
     */
    OpCost attentionDecodeReference(const StageShape &stage) const;
    OpCost attentionPrefillReference(const StageShape &stage) const;

    /** LM head for @p tokens (decode + last prefill token each). */
    OpCost lmHead(std::int64_t tokens) const;

    /** Token embedding lookup. */
    OpCost embedding(std::int64_t tokens) const;

    /** Residual/layer-norm element-wise passes for @p tokens. */
    OpCost elementwise(std::int64_t tokens) const;

  private:
    ModelConfig model_;
};

} // namespace duplex

#endif // DUPLEX_MODEL_LAYERS_HH
