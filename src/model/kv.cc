#include "model/kv.hh"

#include "common/log.hh"

namespace duplex
{

Bytes
KvBudget::kvCapacityBytes() const
{
    const Bytes total =
        deviceCapacity * static_cast<Bytes>(numDevices);
    const Bytes used = weightBytesTotal +
                       reservedBytes * static_cast<Bytes>(numDevices);
    if (used >= total)
        return 0;
    return total - used;
}

std::int64_t
KvBudget::maxKvTokens(const ModelConfig &m) const
{
    const Bytes per_token = m.kvBytesPerToken();
    panicIf(per_token == 0, "model has no KV cache");
    return static_cast<std::int64_t>(kvCapacityBytes() / per_token);
}

std::int64_t
KvBudget::maxBatch(const ModelConfig &m,
                   std::int64_t tokens_per_request) const
{
    panicIf(tokens_per_request <= 0,
            "maxBatch: tokens_per_request must be positive");
    return maxKvTokens(m) / tokens_per_request;
}

} // namespace duplex
