/**
 * @file
 * HBM3 timing and geometry parameters.
 *
 * All times are integer picoseconds. The defaults follow JEDEC
 * HBM3-class parts as used by the paper (Section VI): tCCD_S = 1.5 ns
 * (which also sets the 650 MHz Logic-PIM clock), tCCD_L = 2 x tCCD_S,
 * and a 32 B column access per pseudo channel.
 *
 * Geometry per stack: 32 pseudo channels; per pseudo channel two
 * ranks of 16 banks in four bank groups. A "bank bundle" is the
 * Logic-PIM read unit: banks {0,1} of every bank group of a rank form
 * bundle 0 of that rank, banks {2,3} form bundle 1, so each pseudo
 * channel exposes four bundle-indexed memory spaces (Section V-C).
 */

#ifndef DUPLEX_DRAM_TIMING_HH
#define DUPLEX_DRAM_TIMING_HH

#include "common/units.hh"

namespace duplex
{

/** Timing and geometry of one HBM stack. */
struct HbmTiming
{
    // --- Geometry -------------------------------------------------
    int pchPerStack = 32;     //!< pseudo channels per stack
    int ranksPerPch = 2;      //!< ranks sharing a pseudo channel
    int bankGroups = 4;       //!< bank groups per rank
    int banksPerGroup = 4;    //!< banks per bank group
    Bytes rowBytes = 1024;    //!< open page per bank per pseudo channel
    Bytes columnBytes = 32;   //!< data moved by one RD/WR burst

    // --- Column timing (ps) ----------------------------------------
    PicoSec tCCDS = 1500;     //!< RD->RD, different bank group
    PicoSec tCCDL = 3000;     //!< RD->RD, same bank group (or same bank)
    PicoSec tBURST = 1500;    //!< data bus occupancy of one burst

    // --- Row timing (ps) -------------------------------------------
    PicoSec tRCD = 14000;     //!< ACT -> RD
    PicoSec tRP = 14000;      //!< PRE -> ACT
    PicoSec tRAS = 28000;     //!< ACT -> PRE
    PicoSec tRTP = 5000;      //!< RD -> PRE
    PicoSec tRRDS = 4000;     //!< ACT -> ACT, different bank group
    PicoSec tRRDL = 6000;     //!< ACT -> ACT, same bank group
    PicoSec tFAW = 16000;     //!< window for at most four ACTs per rank

    // --- Write timing (ps) ------------------------------------------
    PicoSec tWR = 15000;      //!< end of write data -> PRE
    PicoSec tWTRS = 3000;     //!< write -> read, different bank group
    PicoSec tWTRL = 7500;     //!< write -> read, same bank group
    PicoSec tRTW = 3000;      //!< read -> write turnaround

    // --- Refresh (ps) -----------------------------------------------
    PicoSec tREFI = 3900000;  //!< all-bank refresh interval
    PicoSec tRFC = 260000;    //!< all-bank refresh duration

    /** Banks per rank. */
    int banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Banks per bundle (two per bank group). */
    int banksPerBundle() const { return bankGroups * 2; }

    /** Bundles per pseudo channel (two per rank). */
    int bundlesPerPch() const { return ranksPerPch * 2; }

    /** Columns per row. */
    int columnsPerRow() const
    {
        return static_cast<int>(rowBytes / columnBytes);
    }

    /**
     * Peak (zero-stall) xPU-path bandwidth of one pseudo channel:
     * one 32 B burst per tCCD_S.
     */
    double pchPeakBytesPerSec() const;

    /** Peak xPU-path bandwidth of the whole stack. */
    double stackPeakBytesPerSec() const;

    /**
     * Peak Logic-PIM bundle-path bandwidth of one pseudo channel:
     * eight banks, each delivering 32 B per tCCD_L (Section IV-C),
     * i.e. 4 x the xPU path.
     */
    double pchBundlePeakBytesPerSec() const;
};

/** JEDEC HBM3-class preset used throughout the paper reproduction. */
HbmTiming hbm3Timing();

} // namespace duplex

#endif // DUPLEX_DRAM_TIMING_HH
