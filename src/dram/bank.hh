/**
 * @file
 * Per-bank DRAM state machine.
 *
 * A bank tracks its open row and the timestamps needed to enforce
 * intra-bank constraints (tRCD, tRAS, tRTP, tWR, tRP, per-bank column
 * cadence). Cross-bank constraints (tCCD, tRRD, tFAW, bus occupancy)
 * are enforced by the owning PseudoChannel.
 */

#ifndef DUPLEX_DRAM_BANK_HH
#define DUPLEX_DRAM_BANK_HH

#include <cstdint>

#include "dram/timing.hh"

namespace duplex
{

/** State and timing history of one DRAM bank. */
class Bank
{
  public:
    /** Bank state. */
    enum class State { Precharged, Active };

    explicit Bank(const HbmTiming *timing);

    /** Current state. */
    State state() const { return state_; }

    /** Row currently open; meaningful only when Active. */
    std::int64_t openRow() const { return openRow_; }

    /** Earliest time an ACT may issue (intra-bank constraints only). */
    PicoSec earliestAct(PicoSec now) const;

    /** Earliest time a RD to the open row may issue. */
    PicoSec earliestRead(PicoSec now) const;

    /** Earliest time a WR to the open row may issue. */
    PicoSec earliestWrite(PicoSec now) const;

    /** Earliest time a PRE may issue. */
    PicoSec earliestPrecharge(PicoSec now) const;

    /**
     * Issue ACT at @p when for @p row. @p when must satisfy
     * earliestAct; the caller (channel) must have checked rank-level
     * constraints.
     */
    void act(PicoSec when, std::int64_t row);

    /**
     * Issue RD at @p when. @p column_cadence is the per-bank column
     * cycle (tCCD_L for a single bank regardless of path).
     */
    void read(PicoSec when);

    /** Issue WR at @p when. */
    void write(PicoSec when);

    /** Issue PRE at @p when. */
    void precharge(PicoSec when);

    /** Force the precharged state (used by all-bank refresh). */
    void completeRefresh(PicoSec ready_at);

  private:
    const HbmTiming *timing_;
    State state_ = State::Precharged;
    std::int64_t openRow_ = -1;

    PicoSec lastActAt_ = -1'000'000'000;
    PicoSec lastReadAt_ = -1'000'000'000;
    PicoSec lastWriteAt_ = -1'000'000'000;
    //! Time the last PRE completed (ACT legal at +tRP). A fresh
    //! bank is long precharged, so the first ACT may go at once.
    PicoSec prechargedAt_ = -1'000'000'000;
};

} // namespace duplex

#endif // DUPLEX_DRAM_BANK_HH
