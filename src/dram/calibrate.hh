/**
 * @file
 * Bandwidth calibration: measure what the cycle-level DRAM model
 * actually sustains instead of assuming datasheet peaks.
 *
 * The probes stream multi-megabyte reads through one pseudo channel
 * and report sustained/provisioned efficiency for:
 *  - the xPU path alone,
 *  - the Logic-PIM bundle path alone (staggered and lockstep C/A),
 *  - both paths concurrently on disjoint bundles (the co-processing
 *    case, which shares rank ACT windows and refresh).
 *
 * Device models consume these factors so every figure in the paper
 * reproduction rests on measured DRAM behaviour.
 */

#ifndef DUPLEX_DRAM_CALIBRATE_HH
#define DUPLEX_DRAM_CALIBRATE_HH

#include "dram/timing.hh"

namespace duplex
{

/** Sustained-bandwidth factors measured on the cycle model. */
struct DramCalibration
{
    /** Sustained / peak for an xPU-path stream over all banks. */
    double xpuStreamEff = 1.0;

    /** Sustained / provisioned-4x for a staggered bundle stream. */
    double pimStaggeredEff = 1.0;

    /** Sustained / provisioned-4x for a lockstep (shared C/A) one. */
    double pimLockstepEff = 1.0;

    /** xPU efficiency while Logic-PIM streams other bundles. */
    double xpuCoEff = 1.0;

    /** Logic-PIM efficiency while xPU streams other bundles. */
    double pimCoEff = 1.0;

    /** Sustained xPU bytes/s for one stack. */
    double xpuStackBps(const HbmTiming &t) const
    {
        return t.stackPeakBytesPerSec() * xpuStreamEff;
    }

    /** Sustained Logic-PIM bytes/s for one stack (staggered mode). */
    double pimStackBps(const HbmTiming &t) const
    {
        return t.pchBundlePeakBytesPerSec() * t.pchPerStack *
               pimStaggeredEff;
    }

    /** Measured Logic-PIM gain over the xPU path. */
    double pimGain(const HbmTiming &t) const
    {
        return pimStackBps(t) / xpuStackBps(t);
    }
};

/**
 * Run the probes. @p bytes_per_pch controls probe length; the default
 * reaches steady state through several refresh windows.
 */
DramCalibration calibrateDram(const HbmTiming &timing,
                              Bytes bytes_per_pch = 2 * kMiB);

/**
 * Memoized calibration for the default HBM3 timing; probes run once
 * per process.
 */
const DramCalibration &cachedCalibration();

} // namespace duplex

#endif // DUPLEX_DRAM_CALIBRATE_HH
