#include "dram/controller.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace duplex
{

PicoSec
runEngines(const std::vector<StreamEngine *> &engines)
{
    PicoSec finish = 0;
    for (;;) {
        StreamEngine *best = nullptr;
        PicoSec best_t = std::numeric_limits<PicoSec>::max();
        for (auto *e : engines) {
            if (e->done())
                continue;
            const PicoSec t = e->nextReadyTime();
            if (t < best_t) {
                best_t = t;
                best = e;
            }
        }
        if (best == nullptr)
            break;
        best->step();
    }
    for (auto *e : engines)
        finish = std::max(finish, e->finishTime());
    return finish;
}

XpuStreamEngine::XpuStreamEngine(PseudoChannel &channel,
                                 std::vector<BankRef> banks, Bytes bytes,
                                 std::int64_t start_row)
    : channel_(channel)
{
    panicIf(banks.empty(), "XpuStreamEngine: no banks");
    const auto &t = channel_.timing();
    const std::uint64_t bursts = (bytes + t.columnBytes - 1) /
                                 t.columnBytes;
    cursors_.reserve(banks.size());
    for (std::size_t i = 0; i < banks.size(); ++i) {
        Cursor c;
        c.ref = banks[i];
        c.burstsLeft = bursts / banks.size() +
                       (i < bursts % banks.size() ? 1 : 0);
        c.row = start_row;
        c.col = 0;
        cursors_.push_back(c);
    }
}

bool
XpuStreamEngine::done() const
{
    for (const auto &c : cursors_)
        if (c.burstsLeft > 0)
            return false;
    return true;
}

PicoSec
XpuStreamEngine::cursorReady(const Cursor &c) const
{
    const Bank &b =
        channel_.bank(c.ref.rank, c.ref.bg, c.ref.bank);
    if (b.state() == Bank::State::Active && b.openRow() == c.row) {
        const PicoSec rd = b.earliestRead(0);
        return channel_.earliestXpuBurst(c.ref.rank, c.ref.bg, rd);
    }
    if (b.state() == Bank::State::Active)
        return b.earliestPrecharge(0);
    const PicoSec act = b.earliestAct(0);
    return channel_.earliestAct(c.ref.rank, c.ref.bg, act);
}

int
XpuStreamEngine::pickCursor()
{
    int best = -1;
    PicoSec best_t = std::numeric_limits<PicoSec>::max();
    for (std::size_t i = 0; i < cursors_.size(); ++i) {
        if (cursors_[i].burstsLeft == 0)
            continue;
        const PicoSec t = cursorReady(cursors_[i]);
        if (t < best_t) {
            best_t = t;
            best = static_cast<int>(i);
        }
    }
    return best;
}

PicoSec
XpuStreamEngine::nextReadyTime()
{
    const int i = pickCursor();
    panicIf(i < 0, "nextReadyTime on a finished engine");
    return cursorReady(cursors_[i]);
}

void
XpuStreamEngine::step()
{
    const int i = pickCursor();
    panicIf(i < 0, "step on a finished engine");
    Cursor &c = cursors_[i];
    const auto &tp = channel_.timing();

    for (;;) {
        Bank &b = channel_.bank(c.ref.rank, c.ref.bg, c.ref.bank);
        if (b.state() == Bank::State::Active && b.openRow() == c.row) {
            PicoSec t = b.earliestRead(0);
            t = channel_.earliestXpuBurst(c.ref.rank, c.ref.bg, t);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue; // refresh closed rows; re-derive command
            b.read(t);
            channel_.recordXpuBurst(c.ref.rank, c.ref.bg, t);
            finishTime_ = std::max(finishTime_, t + tp.tBURST);
            --c.burstsLeft;
            if (++c.col >= tp.columnsPerRow()) {
                c.col = 0;
                ++c.row;
            }
            return;
        }
        if (b.state() == Bank::State::Active) {
            PicoSec t = b.earliestPrecharge(0);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue;
            b.precharge(t);
            return;
        }
        PicoSec t = b.earliestAct(0);
        t = channel_.earliestAct(c.ref.rank, c.ref.bg, t);
        const PicoSec gated = channel_.gateRefresh(t);
        if (gated != t)
            continue;
        b.act(t, c.row);
        channel_.recordAct(c.ref.rank, c.ref.bg, t);
        return;
    }
}

FrFcfsController::FrFcfsController(PseudoChannel &channel,
                                   std::size_t window)
    : channel_(channel), window_(window)
{
    panicIf(window_ == 0, "FrFcfsController: window must be positive");
}

void
FrFcfsController::enqueue(const Transaction &txn)
{
    queue_.push_back(txn);
}

PicoSec
FrFcfsController::serve(const Transaction &txn)
{
    const auto &tp = channel_.timing();
    const DramCoord &co = txn.coord;
    for (;;) {
        Bank &b = channel_.bank(co.rank, co.bankGroup, co.bank);
        if (b.state() == Bank::State::Active &&
            b.openRow() == co.row) {
            PicoSec t = txn.isWrite ? b.earliestWrite(txn.arrival)
                                    : b.earliestRead(txn.arrival);
            t = channel_.earliestXpuBurst(co.rank, co.bankGroup, t);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue;
            if (txn.isWrite)
                b.write(t);
            else
                b.read(t);
            channel_.recordXpuBurst(co.rank, co.bankGroup, t);
            return t + tp.tBURST;
        }
        if (b.state() == Bank::State::Active) {
            PicoSec t = b.earliestPrecharge(txn.arrival);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue;
            b.precharge(t);
            continue;
        }
        PicoSec t = b.earliestAct(txn.arrival);
        t = channel_.earliestAct(co.rank, co.bankGroup, t);
        const PicoSec gated = channel_.gateRefresh(t);
        if (gated != t)
            continue;
        b.act(t, co.row);
        channel_.recordAct(co.rank, co.bankGroup, t);
    }
}

PicoSec
FrFcfsController::drain()
{
    while (!queue_.empty()) {
        // First-ready: pick the oldest row hit in the window, else
        // the oldest transaction overall.
        const std::size_t limit = std::min(window_, queue_.size());
        std::size_t chosen = 0;
        bool found_hit = false;
        for (std::size_t i = 0; i < limit; ++i) {
            const DramCoord &co = queue_[i].coord;
            const Bank &b =
                channel_.bank(co.rank, co.bankGroup, co.bank);
            if (b.state() == Bank::State::Active &&
                b.openRow() == co.row) {
                chosen = i;
                found_hit = true;
                break;
            }
        }
        if (!found_hit)
            chosen = 0;
        Transaction txn = queue_[chosen];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(chosen));
        const PicoSec end = serve(txn);
        txn.completed = end;
        finishTime_ = std::max(finishTime_, end);
        completed_.push_back(txn);
    }
    return finishTime_;
}

} // namespace duplex
