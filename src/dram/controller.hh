/**
 * @file
 * xPU-path memory machinery: a streaming read engine used by the
 * bandwidth probes and a transaction-level FR-FCFS controller for
 * irregular patterns.
 *
 * Both drive a PseudoChannel at command granularity. Engines expose a
 * stepper interface so an xPU stream and a Logic-PIM bundle stream
 * can be interleaved on the same channel (shared ACT windows and
 * refresh), which is how the co-processing interference probe works.
 */

#ifndef DUPLEX_DRAM_CONTROLLER_HH
#define DUPLEX_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/address.hh"
#include "dram/channel.hh"

namespace duplex
{

/** Stepper interface shared by command-issuing engines. */
class StreamEngine
{
  public:
    virtual ~StreamEngine() = default;

    /** True when all work has been issued. */
    virtual bool done() const = 0;

    /** Earliest time of this engine's next command. */
    virtual PicoSec nextReadyTime() = 0;

    /** Issue exactly one command. */
    virtual void step() = 0;

    /** End of the last data burst issued so far. */
    virtual PicoSec finishTime() const = 0;
};

/** Run engines to completion, always advancing the earliest one. */
PicoSec runEngines(const std::vector<StreamEngine *> &engines);

/**
 * Streams a large contiguous read over the xPU path, striping bursts
 * round robin across a set of banks so the shared bus stays busy
 * while row switches hide behind other banks.
 */
class XpuStreamEngine : public StreamEngine
{
  public:
    /** A bank the stream may use. */
    struct BankRef
    {
        int rank;
        int bg;
        int bank;
    };

    /**
     * @param channel Channel to drive.
     * @param banks   Banks the stream is striped across (ownership of
     *                bundles is the caller's concern).
     * @param bytes   Total bytes to read.
     * @param start_row First row used in every bank.
     */
    XpuStreamEngine(PseudoChannel &channel, std::vector<BankRef> banks,
                    Bytes bytes, std::int64_t start_row = 0);

    bool done() const override;
    PicoSec nextReadyTime() override;
    void step() override;
    PicoSec finishTime() const override { return finishTime_; }

  private:
    struct Cursor
    {
        BankRef ref;
        std::uint64_t burstsLeft = 0;
        std::int64_t row = 0;
        int col = 0;
    };

    PseudoChannel &channel_;
    std::vector<Cursor> cursors_;
    PicoSec finishTime_ = 0;

    /** Earliest feasible time of the next command for one cursor. */
    PicoSec cursorReady(const Cursor &c) const;

    int pickCursor();
};

/** One outstanding transaction for the FR-FCFS controller. */
struct Transaction
{
    DramCoord coord;
    bool isWrite = false;
    PicoSec arrival = 0;
    PicoSec completed = -1;
};

/**
 * Transaction-level FR-FCFS controller: among pending transactions it
 * first serves row hits (oldest first), then the oldest miss. Used
 * for irregular access patterns and as the reference scheduler in
 * tests.
 */
class FrFcfsController
{
  public:
    explicit FrFcfsController(PseudoChannel &channel,
                              std::size_t window = 32);

    /** Queue a transaction. */
    void enqueue(const Transaction &txn);

    /** Run everything to completion; returns last data-end time. */
    PicoSec drain();

    /** Completed transactions in completion order. */
    const std::vector<Transaction> &completed() const
    {
        return completed_;
    }

  private:
    PseudoChannel &channel_;
    std::size_t window_;
    std::deque<Transaction> queue_;
    std::vector<Transaction> completed_;
    PicoSec finishTime_ = 0;

    /** Issue all commands for one transaction; returns data end. */
    PicoSec serve(const Transaction &txn);
};

} // namespace duplex

#endif // DUPLEX_DRAM_CONTROLLER_HH
