/**
 * @file
 * One HBM stack and its bundle-indexed memory spaces.
 *
 * Section V-C divides device memory into four sections by bank-bundle
 * index so expert co-processing never creates bank conflicts between
 * xPU and Logic-PIM. BundleSpaceAllocator does the capacity
 * bookkeeping for those sections; the timing behaviour itself lives
 * in PseudoChannel / BundleStreamEngine.
 */

#ifndef DUPLEX_DRAM_STACK_HH
#define DUPLEX_DRAM_STACK_HH

#include <array>
#include <string>

#include "dram/timing.hh"

namespace duplex
{

/** Capacity bookkeeping for the four bundle-indexed spaces. */
class BundleSpaceAllocator
{
  public:
    static constexpr int kNumSpaces = 4;

    /** @param total_bytes Total capacity across the four spaces. */
    explicit BundleSpaceAllocator(Bytes total_bytes);

    /** Capacity of one space. */
    Bytes spaceCapacity() const { return spaceCapacity_; }

    /** Bytes still free in @p space. */
    Bytes freeBytes(int space) const;

    /** Total free bytes across all spaces. */
    Bytes totalFreeBytes() const;

    /**
     * Reserve @p bytes in @p space.
     * @return true on success; false leaves the allocator unchanged.
     */
    bool allocate(int space, Bytes bytes);

    /** Release @p bytes from @p space. */
    void release(int space, Bytes bytes);

    /**
     * Reserve @p bytes spread evenly over a subset of spaces
     * (e.g. KV cache over three spaces, Section V-C).
     */
    bool allocateSpread(const std::array<bool, kNumSpaces> &spaces,
                        Bytes bytes);

  private:
    Bytes spaceCapacity_;
    std::array<Bytes, kNumSpaces> used_{};
};

/** Static description of one HBM stack in a device. */
struct HbmStack
{
    HbmTiming timing = hbm3Timing();
    Bytes capacity = 16ull * kGiB;

    /** Capacity of one bundle-indexed space. */
    Bytes bundleSpaceBytes() const
    {
        return capacity / BundleSpaceAllocator::kNumSpaces;
    }
};

} // namespace duplex

#endif // DUPLEX_DRAM_STACK_HH
