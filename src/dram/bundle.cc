#include "dram/bundle.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace duplex
{

BundleStreamEngine::BundleStreamEngine(PseudoChannel &channel, int rank,
                                       int half, Bytes bytes,
                                       bool lockstep,
                                       std::int64_t start_row)
    : channel_(channel), rank_(rank), lockstep_(lockstep)
{
    const auto &t = channel_.timing();
    panicIf(half != 0 && half != 1, "bundle half must be 0 or 1");
    const std::uint64_t bursts =
        (bytes + t.columnBytes - 1) / t.columnBytes;

    const int banks = t.banksPerBundle();
    cursors_.reserve(banks);
    int i = 0;
    for (int bg = 0; bg < t.bankGroups; ++bg) {
        for (int b = half * 2; b < half * 2 + 2; ++b, ++i) {
            Cursor c;
            c.bg = bg;
            c.bank = b;
            c.burstsLeft =
                bursts / banks +
                (static_cast<std::uint64_t>(i) < bursts % banks ? 1
                                                                : 0);
            c.row = start_row;
            cursors_.push_back(c);
        }
    }
    if (lockstep_) {
        // Shared C/A: every bank does identical work.
        const std::uint64_t per_bank = bursts / banks +
                                       (bursts % banks != 0 ? 1 : 0);
        for (auto &c : cursors_)
            c.burstsLeft = per_bank;
    }
}

bool
BundleStreamEngine::done() const
{
    for (const auto &c : cursors_)
        if (c.burstsLeft > 0)
            return false;
    return true;
}

PicoSec
BundleStreamEngine::cursorReady(const Cursor &c) const
{
    const Bank &b = channel_.bank(rank_, c.bg, c.bank);
    if (b.state() == Bank::State::Active && b.openRow() == c.row) {
        const PicoSec rd = b.earliestRead(0);
        return channel_.earliestPimSlot(rd);
    }
    if (b.state() == Bank::State::Active)
        return b.earliestPrecharge(0);
    const PicoSec act = b.earliestAct(0);
    return channel_.earliestAct(rank_, c.bg, act);
}

int
BundleStreamEngine::pickCursor()
{
    int best = -1;
    PicoSec best_t = std::numeric_limits<PicoSec>::max();
    for (std::size_t i = 0; i < cursors_.size(); ++i) {
        if (cursors_[i].burstsLeft == 0)
            continue;
        const PicoSec t = cursorReady(cursors_[i]);
        if (t < best_t) {
            best_t = t;
            best = static_cast<int>(i);
        }
    }
    return best;
}

PicoSec
BundleStreamEngine::nextReadyTime()
{
    if (lockstep_) {
        // The group advances at the pace of its slowest member.
        PicoSec worst = 0;
        for (auto &c : cursors_) {
            if (c.burstsLeft == 0)
                continue;
            worst = std::max(worst, cursorReady(c));
        }
        return worst;
    }
    const int i = pickCursor();
    panicIf(i < 0, "nextReadyTime on a finished engine");
    return cursorReady(cursors_[i]);
}

void
BundleStreamEngine::step()
{
    if (lockstep_)
        stepLockstep();
    else
        stepStaggered();
}

void
BundleStreamEngine::stepStaggered()
{
    const int i = pickCursor();
    panicIf(i < 0, "step on a finished engine");
    Cursor &c = cursors_[i];
    const auto &tp = channel_.timing();

    for (;;) {
        Bank &b = channel_.bank(rank_, c.bg, c.bank);
        if (b.state() == Bank::State::Active && b.openRow() == c.row) {
            PicoSec t = b.earliestRead(0);
            t = channel_.earliestPimSlot(t);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue;
            b.read(t);
            channel_.recordPimRead(t);
            finishTime_ = std::max(finishTime_, t + tp.tCCDL);
            --c.burstsLeft;
            if (++c.col >= tp.columnsPerRow()) {
                c.col = 0;
                ++c.row;
            }
            return;
        }
        if (b.state() == Bank::State::Active) {
            PicoSec t = b.earliestPrecharge(0);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue;
            b.precharge(t);
            return;
        }
        PicoSec t = b.earliestAct(0);
        t = channel_.earliestAct(rank_, c.bg, t);
        const PicoSec gated = channel_.gateRefresh(t);
        if (gated != t)
            continue;
        b.act(t, c.row);
        channel_.recordAct(rank_, c.bg, t);
        return;
    }
}

void
BundleStreamEngine::stepLockstep()
{
    const auto &tp = channel_.timing();
    // Bring every lagging bank up to the group's row first; one
    // command per step keeps interleaving with other engines fair.
    for (auto &c : cursors_) {
        if (c.burstsLeft == 0)
            continue;
        Bank &b = channel_.bank(rank_, c.bg, c.bank);
        if (b.state() == Bank::State::Active && b.openRow() == c.row)
            continue;
        for (;;) {
            Bank &bb = channel_.bank(rank_, c.bg, c.bank);
            if (bb.state() == Bank::State::Active &&
                bb.openRow() == c.row)
                break;
            if (bb.state() == Bank::State::Active) {
                PicoSec t = bb.earliestPrecharge(0);
                const PicoSec gated = channel_.gateRefresh(t);
                if (gated != t)
                    continue;
                bb.precharge(t);
                return;
            }
            PicoSec t = bb.earliestAct(0);
            t = channel_.earliestAct(rank_, c.bg, t);
            const PicoSec gated = channel_.gateRefresh(t);
            if (gated != t)
                continue;
            bb.act(t, c.row);
            channel_.recordAct(rank_, c.bg, t);
            return;
        }
    }

    // All banks aligned: issue one synchronized group read.
    for (;;) {
        PicoSec t = channel_.earliestPimSlot(0);
        bool aligned = true;
        for (auto &c : cursors_) {
            if (c.burstsLeft == 0)
                continue;
            Bank &b = channel_.bank(rank_, c.bg, c.bank);
            if (b.state() != Bank::State::Active ||
                b.openRow() != c.row) {
                aligned = false;
                break;
            }
            t = std::max(t, b.earliestRead(0));
        }
        if (!aligned)
            return; // refresh disturbed alignment; realign next step
        const PicoSec gated = channel_.gateRefresh(t);
        if (gated != t)
            continue;
        for (auto &c : cursors_) {
            if (c.burstsLeft == 0)
                continue;
            Bank &b = channel_.bank(rank_, c.bg, c.bank);
            b.read(t);
            --c.burstsLeft;
            if (++c.col >= tp.columnsPerRow()) {
                c.col = 0;
                ++c.row;
            }
        }
        channel_.recordPimSlot(t);
        finishTime_ = std::max(finishTime_, t + tp.tCCDL);
        return;
    }
}

} // namespace duplex
