#include "dram/timing.hh"

namespace duplex
{

double
HbmTiming::pchPeakBytesPerSec() const
{
    return static_cast<double>(columnBytes) /
           (static_cast<double>(tCCDS) / static_cast<double>(kPsPerSec));
}

double
HbmTiming::stackPeakBytesPerSec() const
{
    return pchPeakBytesPerSec() * pchPerStack;
}

double
HbmTiming::pchBundlePeakBytesPerSec() const
{
    const double per_bank =
        static_cast<double>(columnBytes) /
        (static_cast<double>(tCCDL) / static_cast<double>(kPsPerSec));
    return per_bank * banksPerBundle();
}

HbmTiming
hbm3Timing()
{
    // Defaults in the struct are the HBM3 preset; one place to tweak.
    return HbmTiming{};
}

} // namespace duplex
