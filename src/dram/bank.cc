#include "dram/bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

Bank::Bank(const HbmTiming *timing)
    : timing_(timing)
{
}

PicoSec
Bank::earliestAct(PicoSec now) const
{
    panicIf(state_ != State::Precharged, "ACT to an active bank");
    return std::max(now, prechargedAt_ + timing_->tRP);
}

PicoSec
Bank::earliestRead(PicoSec now) const
{
    panicIf(state_ != State::Active, "RD to a precharged bank");
    PicoSec t = std::max(now, lastActAt_ + timing_->tRCD);
    // A single bank cycles columns at tCCD_L regardless of the path
    // (the bank-group constraint originates in shared column logic).
    t = std::max(t, lastReadAt_ + timing_->tCCDL);
    t = std::max(t, lastWriteAt_ + timing_->tWTRL);
    return t;
}

PicoSec
Bank::earliestWrite(PicoSec now) const
{
    panicIf(state_ != State::Active, "WR to a precharged bank");
    PicoSec t = std::max(now, lastActAt_ + timing_->tRCD);
    t = std::max(t, lastWriteAt_ + timing_->tCCDL);
    t = std::max(t, lastReadAt_ + timing_->tRTW);
    return t;
}

PicoSec
Bank::earliestPrecharge(PicoSec now) const
{
    panicIf(state_ != State::Active, "PRE to a precharged bank");
    PicoSec t = std::max(now, lastActAt_ + timing_->tRAS);
    t = std::max(t, lastReadAt_ + timing_->tRTP);
    t = std::max(t,
                 lastWriteAt_ + timing_->tBURST + timing_->tWR);
    return t;
}

void
Bank::act(PicoSec when, std::int64_t row)
{
    panicIf(when < earliestAct(when), "ACT issued too early");
    state_ = State::Active;
    openRow_ = row;
    lastActAt_ = when;
}

void
Bank::read(PicoSec when)
{
    panicIf(when < earliestRead(when), "RD issued too early");
    lastReadAt_ = when;
}

void
Bank::write(PicoSec when)
{
    panicIf(when < earliestWrite(when), "WR issued too early");
    lastWriteAt_ = when;
}

void
Bank::precharge(PicoSec when)
{
    panicIf(when < earliestPrecharge(when), "PRE issued too early");
    state_ = State::Precharged;
    openRow_ = -1;
    prechargedAt_ = when;
}

void
Bank::completeRefresh(PicoSec ready_at)
{
    state_ = State::Precharged;
    openRow_ = -1;
    // Model REF as ending in a precharged state whose tRP is already
    // paid: the next ACT may go at ready_at.
    prechargedAt_ = ready_at - timing_->tRP;
    lastActAt_ = -1'000'000'000;
    lastReadAt_ = -1'000'000'000;
    lastWriteAt_ = -1'000'000'000;
}

} // namespace duplex
