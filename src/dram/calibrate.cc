#include "dram/calibrate.hh"

#include <memory>
#include <mutex>
#include <vector>

#include "common/log.hh"
#include "dram/bundle.hh"
#include "dram/controller.hh"

namespace duplex
{

namespace
{

/** All banks of the channel, for the solo xPU stream. */
std::vector<XpuStreamEngine::BankRef>
allBanks(const HbmTiming &t)
{
    std::vector<XpuStreamEngine::BankRef> banks;
    for (int r = 0; r < t.ranksPerPch; ++r)
        for (int bg = 0; bg < t.bankGroups; ++bg)
            for (int b = 0; b < t.banksPerGroup; ++b)
                banks.push_back({r, bg, b});
    return banks;
}

/** Banks of every bundle except (rank 0, half 0). */
std::vector<XpuStreamEngine::BankRef>
banksExcludingBundle0(const HbmTiming &t)
{
    std::vector<XpuStreamEngine::BankRef> banks;
    for (int r = 0; r < t.ranksPerPch; ++r)
        for (int bg = 0; bg < t.bankGroups; ++bg)
            for (int b = 0; b < t.banksPerGroup; ++b)
                if (!(r == 0 && b < 2))
                    banks.push_back({r, bg, b});
    return banks;
}

double
soloXpuEff(const HbmTiming &t, Bytes bytes)
{
    PseudoChannel ch(t);
    XpuStreamEngine eng(ch, allBanks(t), bytes);
    std::vector<StreamEngine *> engines{&eng};
    const PicoSec end = runEngines(engines);
    const double secs = psToSec(end);
    return static_cast<double>(bytes) / secs /
           t.pchPeakBytesPerSec();
}

double
soloPimEff(const HbmTiming &t, Bytes bytes, bool lockstep)
{
    PseudoChannel ch(t);
    BundleStreamEngine eng(ch, 0, 0, bytes, lockstep);
    std::vector<StreamEngine *> engines{&eng};
    const PicoSec end = runEngines(engines);
    const double secs = psToSec(end);
    return static_cast<double>(bytes) / secs /
           t.pchBundlePeakBytesPerSec();
}

/**
 * Concurrency probe: the measured engine gets @p bytes, the
 * background engine gets enough work to stay busy throughout.
 */
double
concurrentXpuEff(const HbmTiming &t, Bytes bytes)
{
    PseudoChannel ch(t);
    XpuStreamEngine xpu(ch, banksExcludingBundle0(t), bytes);
    BundleStreamEngine pim(ch, 0, 0, bytes * 8, false);
    std::vector<StreamEngine *> engines{&xpu, &pim};
    // Run until the xPU engine finishes; the PIM engine keeps going.
    while (!xpu.done()) {
        StreamEngine *next =
            (pim.done() || xpu.nextReadyTime() <= pim.nextReadyTime())
                ? static_cast<StreamEngine *>(&xpu)
                : static_cast<StreamEngine *>(&pim);
        next->step();
    }
    const double secs = psToSec(xpu.finishTime());
    return static_cast<double>(bytes) / secs /
           t.pchPeakBytesPerSec();
}

double
concurrentPimEff(const HbmTiming &t, Bytes bytes)
{
    PseudoChannel ch(t);
    BundleStreamEngine pim(ch, 0, 0, bytes, false);
    XpuStreamEngine xpu(ch, banksExcludingBundle0(t), bytes * 8);
    std::vector<StreamEngine *> engines{&xpu, &pim};
    while (!pim.done()) {
        StreamEngine *next =
            (xpu.done() || pim.nextReadyTime() <= xpu.nextReadyTime())
                ? static_cast<StreamEngine *>(&pim)
                : static_cast<StreamEngine *>(&xpu);
        next->step();
    }
    const double secs = psToSec(pim.finishTime());
    return static_cast<double>(bytes) / secs /
           t.pchBundlePeakBytesPerSec();
}

} // namespace

DramCalibration
calibrateDram(const HbmTiming &timing, Bytes bytes_per_pch)
{
    fatalIf(bytes_per_pch < 64 * kKiB,
            "calibration probe too short to reach steady state");
    DramCalibration cal;
    cal.xpuStreamEff = soloXpuEff(timing, bytes_per_pch);
    cal.pimStaggeredEff = soloPimEff(timing, bytes_per_pch, false);
    cal.pimLockstepEff = soloPimEff(timing, bytes_per_pch, true);
    cal.xpuCoEff = concurrentXpuEff(timing, bytes_per_pch);
    cal.pimCoEff = concurrentPimEff(timing, bytes_per_pch);

    panicIf(cal.xpuStreamEff > 1.0 + 1e-9 ||
                cal.pimStaggeredEff > 1.0 + 1e-9,
            "calibration exceeded provisioned bandwidth");
    return cal;
}

const DramCalibration &
cachedCalibration()
{
    static std::once_flag flag;
    static DramCalibration cal;
    std::call_once(flag, [] { cal = calibrateDram(hbm3Timing()); });
    return cal;
}

} // namespace duplex
