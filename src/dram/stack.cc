#include "dram/stack.hh"

#include "common/log.hh"

namespace duplex
{

BundleSpaceAllocator::BundleSpaceAllocator(Bytes total_bytes)
    : spaceCapacity_(total_bytes / kNumSpaces)
{
    panicIf(total_bytes % kNumSpaces != 0,
            "capacity must divide evenly into bundle spaces");
}

Bytes
BundleSpaceAllocator::freeBytes(int space) const
{
    panicIf(space < 0 || space >= kNumSpaces, "bad bundle space");
    return spaceCapacity_ - used_[space];
}

Bytes
BundleSpaceAllocator::totalFreeBytes() const
{
    Bytes total = 0;
    for (int s = 0; s < kNumSpaces; ++s)
        total += freeBytes(s);
    return total;
}

bool
BundleSpaceAllocator::allocate(int space, Bytes bytes)
{
    panicIf(space < 0 || space >= kNumSpaces, "bad bundle space");
    if (used_[space] + bytes > spaceCapacity_)
        return false;
    used_[space] += bytes;
    return true;
}

void
BundleSpaceAllocator::release(int space, Bytes bytes)
{
    panicIf(space < 0 || space >= kNumSpaces, "bad bundle space");
    panicIf(used_[space] < bytes, "releasing more than allocated");
    used_[space] -= bytes;
}

bool
BundleSpaceAllocator::allocateSpread(
    const std::array<bool, kNumSpaces> &spaces, Bytes bytes)
{
    int n = 0;
    for (bool b : spaces)
        n += b ? 1 : 0;
    if (n == 0)
        return false;
    const Bytes share = (bytes + n - 1) / n;
    for (int s = 0; s < kNumSpaces; ++s)
        if (spaces[s] && freeBytes(s) < share)
            return false;
    for (int s = 0; s < kNumSpaces; ++s)
        if (spaces[s])
            used_[s] += share;
    return true;
}

} // namespace duplex
