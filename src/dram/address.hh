/**
 * @file
 * Physical address decomposition for one HBM stack.
 *
 * Two concerns live here:
 *  - a bijective linear-address <-> coordinate mapping used by the
 *    controller for arbitrary access patterns (column bits lowest,
 *    then pseudo channel, bank group, bank, rank, row — maximizing
 *    channel/bank parallelism for streams), and
 *  - the bundle index (Section V-C): the four bundle-indexed memory
 *    spaces that let xPU and Logic-PIM operate without bank
 *    conflicts.
 */

#ifndef DUPLEX_DRAM_ADDRESS_HH
#define DUPLEX_DRAM_ADDRESS_HH

#include <cstdint>

#include "dram/timing.hh"

namespace duplex
{

/** Coordinates of one column burst inside a stack. */
struct DramCoord
{
    int pch = 0;
    int rank = 0;
    int bankGroup = 0;
    int bank = 0;       //!< bank index inside its group, 0..3
    std::int64_t row = 0;
    int column = 0;

    bool operator==(const DramCoord &other) const = default;

    /**
     * Bundle this coordinate belongs to: banks {0,1} of each group
     * form the rank's bundle 0, banks {2,3} bundle 1; globally
     * rank * 2 + half, in 0..3.
     */
    int bundleIndex() const { return rank * 2 + (bank >= 2 ? 1 : 0); }
};

/** Linear <-> coordinate mapping for a stack. */
class AddressMap
{
  public:
    explicit AddressMap(const HbmTiming &timing);

    /** Decode a stack-local byte address (must be column-aligned). */
    DramCoord decode(std::uint64_t addr) const;

    /** Encode coordinates back to a stack-local byte address. */
    std::uint64_t encode(const DramCoord &coord) const;

    /** Capacity of the stack implied by @p rows_per_bank rows. */
    std::uint64_t capacityBytes(std::int64_t rows_per_bank) const;

  private:
    HbmTiming timing_;
};

} // namespace duplex

#endif // DUPLEX_DRAM_ADDRESS_HH
