#include "dram/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

PseudoChannel::PseudoChannel(const HbmTiming &timing)
    : timing_(timing), refreshDueAt_(timing.tREFI)
{
    const int total =
        timing_.ranksPerPch * timing_.bankGroups * timing_.banksPerGroup;
    banks_.reserve(total);
    for (int i = 0; i < total; ++i)
        banks_.emplace_back(&timing_);

    lastActPerRank_.assign(timing_.ranksPerPch, -1'000'000'000);
    lastActPerBg_.assign(
        timing_.ranksPerPch,
        std::vector<PicoSec>(timing_.bankGroups, -1'000'000'000));
    actWindow_.resize(timing_.ranksPerPch);
    lastXpuBurstPerBg_.assign(
        timing_.ranksPerPch,
        std::vector<PicoSec>(timing_.bankGroups, -1'000'000'000));
}

int
PseudoChannel::bankIndex(int rank, int bg, int bank_in_group) const
{
    panicIf(rank < 0 || rank >= timing_.ranksPerPch, "bad rank");
    panicIf(bg < 0 || bg >= timing_.bankGroups, "bad bank group");
    panicIf(bank_in_group < 0 || bank_in_group >= timing_.banksPerGroup,
            "bad bank index");
    return (rank * timing_.bankGroups + bg) * timing_.banksPerGroup +
           bank_in_group;
}

Bank &
PseudoChannel::bank(int rank, int bg, int bank_in_group)
{
    return banks_[bankIndex(rank, bg, bank_in_group)];
}

const Bank &
PseudoChannel::bank(int rank, int bg, int bank_in_group) const
{
    return banks_[bankIndex(rank, bg, bank_in_group)];
}

PicoSec
PseudoChannel::earliestAct(int rank, int bg, PicoSec t) const
{
    t = std::max(t, lastActPerRank_[rank] + timing_.tRRDS);
    t = std::max(t, lastActPerBg_[rank][bg] + timing_.tRRDL);
    const auto &window = actWindow_[rank];
    if (window.size() >= 4) {
        // Fifth-newest ACT bounds the next one via tFAW.
        const PicoSec fourth = window[window.size() - 4];
        t = std::max(t, fourth + timing_.tFAW);
    }
    return t;
}

void
PseudoChannel::recordAct(int rank, int bg, PicoSec t)
{
    panicIf(t < earliestAct(rank, bg, t), "ACT violates rank timing");
    lastActPerRank_[rank] = std::max(lastActPerRank_[rank], t);
    lastActPerBg_[rank][bg] = std::max(lastActPerBg_[rank][bg], t);
    auto &window = actWindow_[rank];
    // Two concurrent engines (xPU + Logic-PIM) may interleave ACTs
    // slightly out of order; keep the tFAW window sorted.
    auto pos = std::upper_bound(window.begin(), window.end(), t);
    window.insert(pos, t);
    while (window.size() > 8)
        window.pop_front();
}

PicoSec
PseudoChannel::earliestXpuBurst(int rank, int bg, PicoSec t) const
{
    t = std::max(t, xpuBusFreeAt_);
    t = std::max(t, lastXpuBurstPerBg_[rank][bg] + timing_.tCCDL);
    return t;
}

void
PseudoChannel::recordXpuBurst(int rank, int bg, PicoSec t)
{
    panicIf(t < earliestXpuBurst(rank, bg, t),
            "xPU burst violates bus timing");
    xpuBusFreeAt_ = t + timing_.tBURST;
    lastXpuBurstPerBg_[rank][bg] = t;
    ++xpuBursts_;
}

PicoSec
PseudoChannel::earliestPimSlot(PicoSec t) const
{
    return std::max(t, pimSlotFreeAt_);
}

void
PseudoChannel::recordPimSlot(PicoSec t)
{
    panicIf(t < earliestPimSlot(t), "PIM slot violates TSV timing");
    pimSlotFreeAt_ = t + timing_.tCCDL;
    ++pimSlots_;
}

void
PseudoChannel::recordPimRead(PicoSec t)
{
    panicIf(t < earliestPimSlot(t), "PIM read violates TSV timing");
    pimSlotFreeAt_ = t + timing_.tCCDL / timing_.banksPerBundle();
    ++pimSlots_;
}

PicoSec
PseudoChannel::gateRefresh(PicoSec t)
{
    while (t >= refreshDueAt_) {
        const PicoSec ready = refreshDueAt_ + timing_.tRFC;
        for (auto &b : banks_)
            b.completeRefresh(ready);
        refreshDueAt_ += timing_.tREFI;
        t = std::max(t, ready);
    }
    return t;
}

} // namespace duplex
