#include "dram/address.hh"

#include "common/log.hh"

namespace duplex
{

AddressMap::AddressMap(const HbmTiming &timing)
    : timing_(timing)
{
}

DramCoord
AddressMap::decode(std::uint64_t addr) const
{
    panicIf(addr % timing_.columnBytes != 0,
            "AddressMap::decode: address not column aligned");
    std::uint64_t unit = addr / timing_.columnBytes;

    DramCoord c;
    // Low to high: column, pch, bank group, bank, rank, row.
    c.column = static_cast<int>(unit % timing_.columnsPerRow());
    unit /= timing_.columnsPerRow();
    c.pch = static_cast<int>(unit % timing_.pchPerStack);
    unit /= timing_.pchPerStack;
    c.bankGroup = static_cast<int>(unit % timing_.bankGroups);
    unit /= timing_.bankGroups;
    c.bank = static_cast<int>(unit % timing_.banksPerGroup);
    unit /= timing_.banksPerGroup;
    c.rank = static_cast<int>(unit % timing_.ranksPerPch);
    unit /= timing_.ranksPerPch;
    c.row = static_cast<std::int64_t>(unit);
    return c;
}

std::uint64_t
AddressMap::encode(const DramCoord &coord) const
{
    std::uint64_t unit = static_cast<std::uint64_t>(coord.row);
    unit = unit * timing_.ranksPerPch + coord.rank;
    unit = unit * timing_.banksPerGroup + coord.bank;
    unit = unit * timing_.bankGroups + coord.bankGroup;
    unit = unit * timing_.pchPerStack + coord.pch;
    unit = unit * timing_.columnsPerRow() + coord.column;
    return unit * timing_.columnBytes;
}

std::uint64_t
AddressMap::capacityBytes(std::int64_t rows_per_bank) const
{
    const std::uint64_t banks =
        static_cast<std::uint64_t>(timing_.pchPerStack) *
        timing_.ranksPerPch * timing_.banksPerRank();
    return banks * rows_per_bank * timing_.rowBytes;
}

} // namespace duplex
