/**
 * @file
 * One HBM3 pseudo channel: banks plus all cross-bank constraints.
 *
 * The channel enforces what individual banks cannot see:
 *  - the shared xPU data bus (one burst per tBURST, and tCCD_L
 *    between bursts that hit the same bank group),
 *  - rank-level activation limits (tRRD_S/tRRD_L spacing, at most
 *    four ACTs per rank in any tFAW window) — shared between the
 *    xPU and Logic-PIM paths since they use the same DRAM arrays,
 *  - all-bank refresh every tREFI for tRFC.
 *
 * The Logic-PIM path has its own data TSVs (Section IV-C), so bundle
 * reads never contend for the xPU bus; they only share ACT windows
 * and refresh with the xPU path.
 */

#ifndef DUPLEX_DRAM_CHANNEL_HH
#define DUPLEX_DRAM_CHANNEL_HH

#include <deque>
#include <vector>

#include "dram/bank.hh"
#include "dram/timing.hh"

namespace duplex
{

/** A pseudo channel: 2 ranks x 16 banks with shared-resource timing. */
class PseudoChannel
{
  public:
    explicit PseudoChannel(const HbmTiming &timing);

    /** The timing parameters this channel runs with. */
    const HbmTiming &timing() const { return timing_; }

    /** Access a bank by rank / bank-group / in-group index. */
    Bank &bank(int rank, int bg, int bank_in_group);
    const Bank &bank(int rank, int bg, int bank_in_group) const;

    /**
     * Earliest time an ACT to (rank, bg) may issue given rank-level
     * constraints (tRRD_S, tRRD_L, tFAW) and refresh. Does not check
     * the bank itself.
     */
    PicoSec earliestAct(int rank, int bg, PicoSec t) const;

    /** Record an issued ACT for rank-level bookkeeping. */
    void recordAct(int rank, int bg, PicoSec t);

    /**
     * Earliest time an xPU-path read burst may use the shared data
     * bus: tBURST occupancy between any two bursts, tCCD_L between
     * bursts to the same bank group of the same rank.
     */
    PicoSec earliestXpuBurst(int rank, int bg, PicoSec t) const;

    /** Record an issued xPU-path burst. */
    void recordXpuBurst(int rank, int bg, PicoSec t);

    /**
     * Earliest time a Logic-PIM bundle slot may start. The dedicated
     * TSV group moves one 8-bank x 32 B slot per tCCD_L.
     */
    PicoSec earliestPimSlot(PicoSec t) const;

    /** Record a lockstep Logic-PIM bundle slot (8 banks at once). */
    void recordPimSlot(PicoSec t);

    /**
     * Record one staggered Logic-PIM read: the TSV group is modeled
     * as a rate resource carrying eight 32 B reads per tCCD_L.
     */
    void recordPimRead(PicoSec t);

    /**
     * Refresh gate: if @p t falls into (or past) a pending all-bank
     * refresh window, performs the refresh (closing every bank) and
     * returns the first usable time; otherwise returns @p t.
     * Commands must never be recorded at a time before the value
     * returned here.
     */
    PicoSec gateRefresh(PicoSec t);

    /** Time of the next scheduled refresh. */
    PicoSec nextRefreshAt() const { return refreshDueAt_; }

    /** Total bursts recorded on each path (for probe statistics). */
    std::uint64_t xpuBursts() const { return xpuBursts_; }
    std::uint64_t pimSlots() const { return pimSlots_; }

  private:
    HbmTiming timing_;
    std::vector<Bank> banks_;

    // Rank-level ACT bookkeeping.
    std::vector<PicoSec> lastActPerRank_;
    std::vector<std::vector<PicoSec>> lastActPerBg_;
    std::vector<std::deque<PicoSec>> actWindow_;

    // xPU shared data bus.
    PicoSec xpuBusFreeAt_ = 0;
    std::vector<std::vector<PicoSec>> lastXpuBurstPerBg_;

    // Logic-PIM TSV group.
    PicoSec pimSlotFreeAt_ = 0;

    PicoSec refreshDueAt_;

    std::uint64_t xpuBursts_ = 0;
    std::uint64_t pimSlots_ = 0;

    int bankIndex(int rank, int bg, int bank_in_group) const;
};

} // namespace duplex

#endif // DUPLEX_DRAM_CHANNEL_HH
