/**
 * @file
 * Logic-PIM bank-bundle read engine (Section IV-C).
 *
 * A bundle is eight banks of one rank (two per bank group). The
 * engine streams a contiguous region striped across the bundle's
 * banks over the dedicated PIM TSV group, which carries eight 32 B
 * reads per tCCD_L — 4 x the xPU-path peak.
 *
 * Two command disciplines are modeled:
 *  - lockstep: one shared C/A drives all eight banks (the paper's
 *    minimal-overhead description); row switches synchronize.
 *  - staggered: per-bank C/A sequencing; row switches of different
 *    banks overlap, sustaining more of the provisioned bandwidth.
 */

#ifndef DUPLEX_DRAM_BUNDLE_HH
#define DUPLEX_DRAM_BUNDLE_HH

#include "dram/controller.hh"

namespace duplex
{

/** Streams one bundle of a pseudo channel over the PIM TSV path. */
class BundleStreamEngine : public StreamEngine
{
  public:
    /**
     * @param channel  Channel to drive.
     * @param rank     Rank holding the bundle.
     * @param half     0 = banks {0,1} per group, 1 = banks {2,3}.
     * @param bytes    Total bytes to read.
     * @param lockstep Shared-C/A mode when true.
     * @param start_row First row used in every bank.
     */
    BundleStreamEngine(PseudoChannel &channel, int rank, int half,
                       Bytes bytes, bool lockstep = false,
                       std::int64_t start_row = 0);

    bool done() const override;
    PicoSec nextReadyTime() override;
    void step() override;
    PicoSec finishTime() const override { return finishTime_; }

  private:
    struct Cursor
    {
        int bg = 0;
        int bank = 0;
        std::uint64_t burstsLeft = 0;
        std::int64_t row = 0;
        int col = 0;
    };

    PseudoChannel &channel_;
    int rank_;
    bool lockstep_;
    std::vector<Cursor> cursors_;
    PicoSec finishTime_ = 0;

    PicoSec cursorReady(const Cursor &c) const;
    int pickCursor();
    void stepStaggered();
    void stepLockstep();
};

} // namespace duplex

#endif // DUPLEX_DRAM_BUNDLE_HH
