#include "workload/source.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"
#include "workload/trace.hh"

namespace duplex
{

namespace
{

/**
 * The deterministic splitmix64 finalizer priority stamping mixes
 * request ids with (same mix as fleet/policy.hh mixSessionHash,
 * repeated here so the workload layer does not depend on the fleet
 * layer). NOT std::hash — the stamp must be byte-stable across
 * libstdc++ and libc++ for the CI determinism matrix.
 */
std::uint64_t
mixPriorityHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

// ------------------------------------------------------- base class

Request
WorkloadSource::next()
{
    Request r;
    if (lookahead_.has_value()) {
        r = *lookahead_;
        lookahead_.reset();
    } else {
        panicIf(generatorRemaining() <= 0,
                "WorkloadSource::next on an exhausted source");
        r = generate();
    }
    // Session stamping is arithmetic on the already-drawn id — no
    // RNG draws, so every golden request stream stays bit-identical
    // whether or not sessions are enabled. Recorded session ids
    // (trace replay) win over the stamp.
    if (numSessions_ > 0 && r.sessionId < 0)
        r.sessionId = r.id % numSessions_;
    // Priority stamping follows the same no-RNG rule: a splitmix
    // mix of the id against a fixed-point threshold, so the class-1
    // subset is a deterministic function of (id, fraction) and
    // trace-carried classes win.
    if (priorityThreshold_ > 0 && r.priorityClass == 0 &&
        static_cast<std::int64_t>(
            mixPriorityHash(static_cast<std::uint64_t>(r.id)) %
            10000) < priorityThreshold_)
        r.priorityClass = 1;
    return r;
}

void
WorkloadSource::setPriorityFraction(double frac)
{
    fatalIf(frac < 0.0 || frac > 1.0,
            "priority fraction must be in [0, 1]");
    priorityThreshold_ =
        static_cast<std::int64_t>(std::llround(frac * 10000.0));
}

PicoSec
WorkloadSource::peekArrival()
{
    if (!lookahead_.has_value()) {
        if (generatorRemaining() <= 0)
            return -1;
        lookahead_ = generate();
    }
    return lookahead_->arrival;
}

std::int64_t
WorkloadSource::remaining() const
{
    const std::int64_t left = generatorRemaining();
    if (left == kUnbounded)
        return kUnbounded;
    return left + (lookahead_.has_value() ? 1 : 0);
}

void
WorkloadSource::notifyRetired(const Request &r, PicoSec now)
{
    if (!wantsRetirements())
        return;
    // A retirement may create a turn that precedes the buffered
    // lookahead; give the buffer back so generate() re-orders.
    if (lookahead_.has_value()) {
        reabsorb(std::move(*lookahead_));
        lookahead_.reset();
    }
    onRetired(r, now);
}

void
WorkloadSource::restore(Request r)
{
    panicIf(!wantsRetirements(),
            "WorkloadSource::restore on a source without "
            "retirement feedback");
    if (lookahead_.has_value()) {
        reabsorb(std::move(*lookahead_));
        lookahead_.reset();
    }
    reabsorb(std::move(r));
}

void
WorkloadSource::onRetired(const Request &, PicoSec)
{
}

void
WorkloadSource::reabsorb(Request)
{
    panic("WorkloadSource::reabsorb not supported by this source");
}

// -------------------------------------------------- SyntheticSource

SyntheticSource::SyntheticSource(std::string name,
                                 const WorkloadConfig &config,
                                 std::string summary)
    : name_(std::move(name)), summary_(std::move(summary)),
      gen_(config)
{
}

bool
SyntheticSource::openLoop() const
{
    return gen_.config().openLoop();
}

std::string
SyntheticSource::describe() const
{
    std::ostringstream out;
    out << name_ << ": truncated-Gaussian lengths, Lin ~ "
        << gen_.config().meanInputLen << ", Lout ~ "
        << gen_.config().meanOutputLen << " (cv "
        << gen_.config().lengthCv << "), ";
    if (gen_.config().openLoop())
        out << "Poisson arrivals at " << gen_.config().qps
            << " req/s";
    else
        out << "closed loop";
    if (!summary_.empty())
        out << " — " << summary_;
    return out.str();
}

// ------------------------------------------------------ TraceSource

TraceSource::TraceSource(const std::string &path)
    : name_("trace"), label_(path), requests_(loadTrace(path))
{
}

TraceSource::TraceSource(std::string label,
                         std::vector<Request> requests)
    : name_("trace"), label_(std::move(label)),
      requests_(std::move(requests))
{
    for (std::size_t i = 1; i < requests_.size(); ++i)
        fatalIf(requests_[i].arrival < requests_[i - 1].arrival,
                "TraceSource: arrivals must be non-decreasing");
}

std::string
TraceSource::describe() const
{
    std::ostringstream out;
    out << name_ << ": replays " << requests_.size()
        << " recorded request(s) from '" << label_
        << "', arrival stamps drive admission";
    return out.str();
}

Request
TraceSource::generate()
{
    panicIf(next_ >= static_cast<std::int64_t>(requests_.size()),
            "TraceSource::generate past the end of the trace");
    return requests_[next_++];
}

// ----------------------------------------------------- BurstySource

BurstySource::BurstySource(const WorkloadSpec &spec)
    : name_("bursty"), spec_(spec), rng_(spec.seed)
{
    fatalIf(spec_.burstQps <= 0.0,
            "BurstySource: burstQps must be positive");
    fatalIf(spec_.idleQps < 0.0,
            "BurstySource: idleQps must be non-negative");
    fatalIf(spec_.meanBurstSec <= 0.0 || spec_.meanIdleSec <= 0.0,
            "BurstySource: mean state durations must be positive");
    fatalIf(spec_.meanInputLen <= 0 || spec_.meanOutputLen <= 0,
            "BurstySource: mean lengths must be positive");
    // The stream opens inside a burst so the first arrivals come at
    // burst pace; the state machine takes over from there.
    stateEnd_ = secToPs(rng_.exponential(1.0 / spec_.meanBurstSec));
}

std::string
BurstySource::describe() const
{
    std::ostringstream out;
    out << name_ << ": on/off Poisson, bursts at " << spec_.burstQps
        << " req/s (~" << spec_.meanBurstSec << " s) over an idle "
        << "floor of " << spec_.idleQps << " req/s (~"
        << spec_.meanIdleSec << " s), Lin ~ " << spec_.meanInputLen
        << ", Lout ~ " << spec_.meanOutputLen;
    return out.str();
}

Request
BurstySource::generate()
{
    Request r;
    r.id = nextId_++;
    drawLengths(rng_, r, spec_.meanInputLen, spec_.meanOutputLen,
                spec_.lengthCv, spec_.minLen);

    // Two-state MMPP: by memorylessness, a gap drawn in the current
    // state is valid only while the state lasts; crossing the state
    // boundary discards it and redraws at the new rate.
    for (;;) {
        const double rate =
            inBurst_ ? spec_.burstQps : spec_.idleQps;
        if (rate > 0.0) {
            const PicoSec gap = secToPs(rng_.exponential(rate));
            if (clock_ + gap <= stateEnd_) {
                clock_ += gap;
                break;
            }
        }
        // No arrival before the state flips (or a silent state):
        // jump to the boundary and draw the next state's duration.
        clock_ = stateEnd_;
        inBurst_ = !inBurst_;
        const double mean_dur =
            inBurst_ ? spec_.meanBurstSec : spec_.meanIdleSec;
        stateEnd_ =
            clock_ + secToPs(rng_.exponential(1.0 / mean_dur));
    }
    r.arrival = clock_;
    return r;
}

// ---------------------------------------------------- DiurnalSource

DiurnalSource::DiurnalSource(const WorkloadSpec &spec)
    : name_("diurnal"), spec_(spec), rng_(spec.seed)
{
    fatalIf(spec_.diurnalPeriodSec <= 0.0,
            "DiurnalSource: period must be positive");
    fatalIf(spec_.meanInputLen <= 0 || spec_.meanOutputLen <= 0,
            "DiurnalSource: mean lengths must be positive");
    ramp_ = spec_.qpsRamp;
    if (ramp_.empty()) {
        fatalIf(spec_.diurnalLowQps < 0.0 ||
                    spec_.diurnalHighQps <= 0.0,
                "DiurnalSource: ramp rates must be non-negative "
                "with a positive peak");
        ramp_ = {{0.0, spec_.diurnalLowQps},
                 {spec_.diurnalPeriodSec / 2.0,
                  spec_.diurnalHighQps}};
    }
    double prev = -1.0;
    for (const QpsPoint &p : ramp_) {
        fatalIf(p.timeSec < 0.0 ||
                    p.timeSec >= spec_.diurnalPeriodSec,
                "DiurnalSource: breakpoint times must lie in "
                "[0, period)");
        fatalIf(p.timeSec <= prev && prev >= 0.0,
                "DiurnalSource: breakpoints must be strictly "
                "increasing");
        fatalIf(p.qps < 0.0,
                "DiurnalSource: ramp rates must be non-negative");
        prev = p.timeSec;
        peakQps_ = std::max(peakQps_, p.qps);
    }
    fatalIf(peakQps_ <= 0.0,
            "DiurnalSource: the ramp never rises above zero");
}

double
DiurnalSource::qpsAt(PicoSec t) const
{
    const double period = spec_.diurnalPeriodSec;
    double sec = std::fmod(psToSec(t), period);
    if (sec < 0.0)
        sec += period;
    // Find the segment [a, b) containing sec; the ramp wraps from
    // the last breakpoint back to the first across the period end.
    const std::size_t n = ramp_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const QpsPoint &a = ramp_[i];
        const bool last = i + 1 == n;
        const QpsPoint &b = ramp_[last ? 0 : i + 1];
        const double span =
            (last ? period + b.timeSec : b.timeSec) - a.timeSec;
        if (sec >= a.timeSec &&
            (last || sec < b.timeSec)) {
            if (span <= 0.0)
                return a.qps;
            const double f = (sec - a.timeSec) / span;
            return a.qps + f * (b.qps - a.qps);
        }
    }
    // sec precedes the first breakpoint: the wrap segment covers it.
    const QpsPoint &a = ramp_.back();
    const QpsPoint &b = ramp_.front();
    const double span = period - a.timeSec + b.timeSec;
    if (span <= 0.0)
        return b.qps;
    const double f = (period - a.timeSec + sec) / span;
    return a.qps + f * (b.qps - a.qps);
}

std::string
DiurnalSource::describe() const
{
    std::ostringstream out;
    out << name_ << ": piecewise-linear QPS ramp over "
        << spec_.diurnalPeriodSec << " s (" << ramp_.size()
        << " breakpoint(s), peak " << peakQps_
        << " req/s), Lin ~ " << spec_.meanInputLen << ", Lout ~ "
        << spec_.meanOutputLen;
    return out.str();
}

Request
DiurnalSource::generate()
{
    Request r;
    r.id = nextId_++;
    drawLengths(rng_, r, spec_.meanInputLen, spec_.meanOutputLen,
                spec_.lengthCv, spec_.minLen);
    // Thinning: candidate arrivals at the peak rate, accepted with
    // probability qps(t) / peak — a textbook non-homogeneous
    // Poisson sampler, deterministic given the seed.
    for (;;) {
        clock_ += secToPs(rng_.exponential(peakQps_));
        if (rng_.uniform() * peakQps_ <= qpsAt(clock_))
            break;
    }
    r.arrival = clock_;
    return r;
}

// ---------------------------------------------------- MixtureSource

MixtureSource::MixtureSource(std::string name,
                             const WorkloadConfig &base,
                             std::vector<ScenarioClass> classes)
    : name_(std::move(name)), base_(base),
      classes_(std::move(classes)), rng_(base.seed)
{
    fatalIf(classes_.empty(),
            "MixtureSource: need at least one scenario class");
    for (const ScenarioClass &c : classes_) {
        fatalIf(c.weight <= 0.0,
                "MixtureSource: class weights must be positive");
        fatalIf(c.meanInputLen <= 0 || c.meanOutputLen <= 0,
                "MixtureSource: class mean lengths must be "
                "positive");
        totalWeight_ += c.weight;
    }
}

bool
MixtureSource::openLoop() const
{
    return base_.openLoop();
}

std::string
MixtureSource::describe() const
{
    std::ostringstream out;
    out << name_ << ": weighted mix of";
    for (const ScenarioClass &c : classes_) {
        out << " " << c.label << " ("
            << static_cast<int>(
                   100.0 * c.weight / totalWeight_ + 0.5)
            << "%, " << c.meanInputLen << "/" << c.meanOutputLen
            << ")";
    }
    if (base_.openLoop())
        out << ", Poisson arrivals at " << base_.qps << " req/s";
    else
        out << ", closed loop";
    return out.str();
}

Request
MixtureSource::generate()
{
    double pick = rng_.uniform() * totalWeight_;
    const ScenarioClass *chosen = &classes_.back();
    for (const ScenarioClass &c : classes_) {
        if (pick < c.weight) {
            chosen = &c;
            break;
        }
        pick -= c.weight;
    }
    Request r;
    r.id = nextId_++;
    drawLengths(rng_, r, chosen->meanInputLen,
                chosen->meanOutputLen, chosen->lengthCv,
                base_.minLen);
    if (base_.qps > 0.0) {
        clock_ += secToPs(rng_.exponential(base_.qps));
        r.arrival = clock_;
    }
    return r;
}

// ---------------------------------------------------- SessionSource

namespace
{

/** Min-heap comparator: later (arrival, sessionId, id) sinks. */
bool
laterTurn(const Request &a, const Request &b)
{
    if (a.arrival != b.arrival)
        return a.arrival > b.arrival;
    if (a.sessionId != b.sessionId)
        return a.sessionId > b.sessionId;
    return a.id > b.id;
}

} // namespace

SessionSource::SessionSource(const WorkloadSpec &spec)
    : name_("session"), spec_(spec), rng_(spec.seed)
{
    fatalIf(spec_.sessionTurns < 1,
            "SessionSource: need at least one turn per session");
    fatalIf(spec_.sharedPrefixTokens < 0,
            "SessionSource: shared prefix tokens must be "
            "non-negative");
    fatalIf(spec_.meanThinkSec < 0.0,
            "SessionSource: mean think time must be non-negative");
    fatalIf(spec_.meanInputLen <= 0 || spec_.meanOutputLen <= 0,
            "SessionSource: mean lengths must be positive");
    sessionQps_ = spec_.qps > 0.0 ? spec_.qps : spec_.sessionQps;
    fatalIf(sessionQps_ <= 0.0,
            "SessionSource: fresh-session rate must be positive");
}

std::string
SessionSource::describe() const
{
    std::ostringstream out;
    out << name_ << ": multi-turn chat, " << spec_.sessionTurns
        << " turn(s)/session, fresh sessions at " << sessionQps_
        << " /s, shared prefix " << spec_.sharedPrefixTokens
        << " tokens, user turns ~ " << spec_.meanInputLen
        << ", replies ~ " << spec_.meanOutputLen << ", think ~ "
        << spec_.meanThinkSec << " s after each reply";
    return out.str();
}

SessionSource::TurnDraw
SessionSource::drawTurn(std::int64_t session, int turn) const
{
    // A turn's content is a pure function of (seed, session, turn):
    // driver loops may interleave retirements differently without
    // perturbing any draw, and double runs stay byte-identical.
    std::uint64_t s = mixPriorityHash(spec_.seed);
    s = mixPriorityHash(s ^ static_cast<std::uint64_t>(session));
    s = mixPriorityHash(s ^ static_cast<std::uint64_t>(turn));
    Rng tr(s);
    Request tmp;
    drawLengths(tr, tmp, spec_.meanInputLen, spec_.meanOutputLen,
                spec_.lengthCv, spec_.minLen);
    TurnDraw d;
    d.userTokens = tmp.inputLen;
    d.outputTokens = tmp.outputLen;
    d.think = spec_.meanThinkSec > 0.0
                  ? secToPs(tr.exponential(1.0 / spec_.meanThinkSec))
                  : 0;
    return d;
}

void
SessionSource::ensureFresh()
{
    if (fresh_.has_value())
        return;
    // Only the fresh-session Poisson gaps touch the main RNG, so
    // the open-session schedule is independent of retirements.
    clock_ += secToPs(rng_.exponential(sessionQps_));
    const std::int64_t sid = nextSession_++;
    const TurnDraw d = drawTurn(sid, 0);
    Request r;
    r.id = nextId_++;
    r.sessionId = sid;
    r.inputLen = spec_.sharedPrefixTokens + d.userTokens;
    r.outputLen = d.outputTokens;
    r.arrival = clock_;
    sessions_[sid] =
        SessionState{1, r.inputLen + r.outputLen};
    fresh_ = r;
}

Request
SessionSource::generate()
{
    ensureFresh();
    // Earliest of the materialized pending turns and the next fresh
    // session; the heap wins ties so a follow-up turn created at
    // the same instant precedes a new conversation.
    if (!heap_.empty() &&
        heap_.front().arrival <= fresh_->arrival) {
        std::pop_heap(heap_.begin(), heap_.end(), laterTurn);
        Request r = std::move(heap_.back());
        heap_.pop_back();
        return r;
    }
    Request r = *fresh_;
    fresh_.reset();
    return r;
}

void
SessionSource::onRetired(const Request &r, PicoSec now)
{
    if (r.sessionId < 0)
        return;
    auto it = sessions_.find(r.sessionId);
    if (it == sessions_.end())
        return;
    SessionState &st = it->second;
    if (st.nextTurn >= spec_.sessionTurns)
        return;
    const int turn = st.nextTurn;
    const TurnDraw d = drawTurn(r.sessionId, turn);
    Request nr;
    nr.id = nextId_++;
    nr.sessionId = r.sessionId;
    // Prompt = shared prefix + full history + the new user turn;
    // contextLen already folds the prefix in from turn 0.
    nr.inputLen = st.contextLen + d.userTokens;
    nr.outputLen = d.outputTokens;
    nr.arrival = now + d.think;
    st.nextTurn = turn + 1;
    st.contextLen = nr.inputLen + nr.outputLen;
    heap_.push_back(std::move(nr));
    std::push_heap(heap_.begin(), heap_.end(), laterTurn);
}

void
SessionSource::reabsorb(Request r)
{
    heap_.push_back(std::move(r));
    std::push_heap(heap_.begin(), heap_.end(), laterTurn);
}

} // namespace duplex
