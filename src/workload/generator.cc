#include "workload/generator.hh"

#include "common/log.hh"

namespace duplex
{

RequestGenerator::RequestGenerator(const WorkloadConfig &config)
    : config_(config), rng_(config.seed)
{
    fatalIf(config_.meanInputLen <= 0 || config_.meanOutputLen <= 0,
            "RequestGenerator: mean lengths must be positive");
}

Request
RequestGenerator::next()
{
    Request r;
    r.id = nextId_++;
    drawLengths(rng_, r, config_.meanInputLen,
                config_.meanOutputLen, config_.lengthCv,
                config_.minLen);
    if (config_.qps > 0.0) {
        clock_ += secToPs(rng_.exponential(config_.qps));
        r.arrival = clock_;
    }
    return r;
}

std::vector<Request>
RequestGenerator::take(int n)
{
    std::vector<Request> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

} // namespace duplex
