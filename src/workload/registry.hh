/**
 * @file
 * String-keyed workload registry and factory — the workload-side
 * mirror of sim/registry.hh.
 *
 * Workloads register an id ("bursty"), a display name, a one-line
 * summary and a factory over WorkloadSpec; callers build sources
 * with makeWorkload(id, spec) and enumerate everything registered
 * with registeredWorkloads(). Pre-registered: "synthetic" (the
 * paper's Section VI stream, bit-identical to the old
 * RequestGenerator), "trace", "bursty", "diurnal", and the named
 * scenario presets "chat", "long-prefill-summarize",
 * "long-decode-codegen", "mixed". A new workload is one
 * registerWorkloadSource call — no enum edits, no new entry points,
 * and every registered id is swept automatically by the tests and
 * bench_scenarios.
 */

#ifndef DUPLEX_WORKLOAD_REGISTRY_HH
#define DUPLEX_WORKLOAD_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/source.hh"

namespace duplex
{

/** Builds one workload source from a spec. */
using WorkloadFactory =
    std::function<std::unique_ptr<WorkloadSource>(
        const WorkloadSpec &spec)>;

/** Registry of every workload the simulator can build. */
class WorkloadRegistry
{
  public:
    /** The process-wide registry, with the stock workloads loaded. */
    static WorkloadRegistry &instance();

    /** Register a workload; re-registering an id is fatal. */
    void add(const std::string &id, const std::string &display,
             const std::string &summary, WorkloadFactory factory);

    /** True when @p id is registered. */
    bool contains(const std::string &id) const;

    /** Build a source; fatal on an unknown id. */
    std::unique_ptr<WorkloadSource>
    make(const std::string &id, const WorkloadSpec &spec) const;

    /**
     * Registered ids, lexicographically sorted — NOT registration
     * order. Sorted output keeps fleet sweeps and bench tables
     * byte-stable across standard libraries (the g++/clang++ CI
     * matrix diffs them); asserted in tests/workload/test_registry.
     */
    std::vector<std::string> ids() const;

    /** Display name for tables ("Bursty"). */
    const std::string &displayName(const std::string &id) const;

    /** One-line summary for --list-workloads style output. */
    const std::string &summary(const std::string &id) const;

  private:
    struct Entry
    {
        std::string id;
        std::string display;
        std::string summary;
        WorkloadFactory factory;
    };

    std::vector<Entry> entries_;

    const Entry &find(const std::string &id) const;
};

/** Build a registered workload (shorthand for the registry). */
std::unique_ptr<WorkloadSource>
makeWorkload(const std::string &id, const WorkloadSpec &spec = {});

/** Ids of every registered workload. */
std::vector<std::string> registeredWorkloads();

/** Register a workload with the process-wide registry. */
void registerWorkloadSource(const std::string &id,
                            const std::string &display,
                            const std::string &summary,
                            WorkloadFactory factory);

} // namespace duplex

#endif // DUPLEX_WORKLOAD_REGISTRY_HH
