#include "workload/registry.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

namespace
{

/** Factory for a single-class scenario preset: the synthetic
 *  generator with the preset's length profile; arrival discipline
 *  (qps), seed and minLen still come from the caller's spec. */
WorkloadFactory
scenarioFactory(std::string id, std::int64_t mean_in,
                std::int64_t mean_out, double cv,
                std::string summary)
{
    return [id = std::move(id), mean_in, mean_out, cv,
            summary =
                std::move(summary)](const WorkloadSpec &spec) {
        WorkloadConfig cfg = spec;
        cfg.meanInputLen = mean_in;
        cfg.meanOutputLen = mean_out;
        cfg.lengthCv = cv;
        return std::make_unique<SyntheticSource>(id, cfg, summary);
    };
}

// The scenario length profiles. Chat turns are prompt- and
// answer-sized; summarization is prefill-dominated (a document in,
// a short abstract out); code generation is decode-dominated (a
// short instruction in, a long completion out). "mixed" serves all
// three from one fleet, the ROADMAP's million-user shape.
constexpr std::int64_t kChatIn = 512, kChatOut = 256;
constexpr std::int64_t kSummarizeIn = 8192, kSummarizeOut = 256;
constexpr std::int64_t kCodegenIn = 512, kCodegenOut = 4096;

void
registerStockWorkloads(WorkloadRegistry &registry)
{
    registry.add(
        "synthetic", "Synthetic",
        "Section VI truncated-Gaussian stream (the paper's "
        "default; closed loop, or Poisson at spec.qps)",
        [](const WorkloadSpec &spec) {
            // Slice to the WorkloadConfig base: bit-identical to
            // the old RequestGenerator stream by construction.
            return std::make_unique<SyntheticSource>("synthetic",
                                                     spec);
        });
    registry.add(
        "trace", "Trace",
        "replay a recorded arrival,in,out CSV (spec.tracePath)",
        [](const WorkloadSpec &spec) {
            fatalIf(spec.tracePath.empty(),
                    "workload 'trace' needs spec.tracePath (CLI: "
                    "--trace=<path>)");
            return std::make_unique<TraceSource>(spec.tracePath);
        });
    registry.add(
        "bursty", "Bursty",
        "on/off modulated Poisson: burst QPS over an idle floor, "
        "exponential state durations",
        [](const WorkloadSpec &spec) {
            return std::make_unique<BurstySource>(spec);
        });
    registry.add(
        "diurnal", "Diurnal",
        "piecewise-linear periodic QPS ramp (low -> peak -> low)",
        [](const WorkloadSpec &spec) {
            return std::make_unique<DiurnalSource>(spec);
        });
    registry.add("chat", "Chat",
                 "conversational turns: Lin ~ 512, Lout ~ 256",
                 scenarioFactory("chat", kChatIn, kChatOut, 0.35,
                                 "conversational turns"));
    registry.add(
        "long-prefill-summarize", "Summarize",
        "prefill-heavy summarization: Lin ~ 8192, Lout ~ 256",
        scenarioFactory("long-prefill-summarize", kSummarizeIn,
                        kSummarizeOut, 0.25,
                        "document-in, abstract-out"));
    registry.add(
        "long-decode-codegen", "Codegen",
        "decode-heavy code generation: Lin ~ 512, Lout ~ 4096",
        scenarioFactory("long-decode-codegen", kCodegenIn,
                        kCodegenOut, 0.35,
                        "short instruction, long completion"));
    registry.add(
        "session", "Session",
        "multi-turn chat: open-loop fresh sessions, closed-loop "
        "turns gated on retirement + think time, growing prompts "
        "over a shared prefix",
        [](const WorkloadSpec &spec) {
            return std::make_unique<SessionSource>(spec);
        });
    registry.add(
        "mixed", "Mixed",
        "weighted mix: 50% chat, 25% summarize, 25% codegen",
        [](const WorkloadSpec &spec) {
            return std::make_unique<MixtureSource>(
                "mixed", spec,
                std::vector<ScenarioClass>{
                    {"chat", 0.50, kChatIn, kChatOut, 0.35},
                    {"summarize", 0.25, kSummarizeIn,
                     kSummarizeOut, 0.25},
                    {"codegen", 0.25, kCodegenIn, kCodegenOut,
                     0.35}});
        });
}

} // namespace

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry *registry = [] {
        auto *r = new WorkloadRegistry;
        registerStockWorkloads(*r);
        return r;
    }();
    return *registry;
}

void
WorkloadRegistry::add(const std::string &id,
                      const std::string &display,
                      const std::string &summary,
                      WorkloadFactory factory)
{
    fatalIf(contains(id),
            "WorkloadRegistry: duplicate workload id '" + id + "'");
    fatalIf(!factory,
            "WorkloadRegistry: null factory for '" + id + "'");
    entries_.push_back({id, display, summary, std::move(factory)});
}

bool
WorkloadRegistry::contains(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return true;
    return false;
}

const WorkloadRegistry::Entry &
WorkloadRegistry::find(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return e;
    std::string known;
    for (const Entry &e : entries_)
        known += (known.empty() ? "" : ", ") + e.id;
    fatal("WorkloadRegistry: unknown workload '" + id +
          "' (known: " + known + ")");
}

std::unique_ptr<WorkloadSource>
WorkloadRegistry::make(const std::string &id,
                       const WorkloadSpec &spec) const
{
    std::unique_ptr<WorkloadSource> source = find(id).factory(spec);
    // Session and priority stamping are cross-cutting spec knobs
    // every source honors; applying them here means a factory never
    // has to know sessions or priority classes exist.
    source->setSessionCount(spec.numSessions);
    source->setPriorityFraction(spec.priorityFrac);
    return source;
}

std::vector<std::string>
WorkloadRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.id);
    std::sort(out.begin(), out.end());
    return out;
}

const std::string &
WorkloadRegistry::displayName(const std::string &id) const
{
    return find(id).display;
}

const std::string &
WorkloadRegistry::summary(const std::string &id) const
{
    return find(id).summary;
}

std::unique_ptr<WorkloadSource>
makeWorkload(const std::string &id, const WorkloadSpec &spec)
{
    return WorkloadRegistry::instance().make(id, spec);
}

std::vector<std::string>
registeredWorkloads()
{
    return WorkloadRegistry::instance().ids();
}

void
registerWorkloadSource(const std::string &id,
                       const std::string &display,
                       const std::string &summary,
                       WorkloadFactory factory)
{
    WorkloadRegistry::instance().add(id, display, summary,
                                     std::move(factory));
}

} // namespace duplex
