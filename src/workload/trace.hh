/**
 * @file
 * Request-trace I/O.
 *
 * The paper evaluates on synthesized workloads; deployments replay
 * production traces. This loader accepts a simple CSV —
 * `arrival_sec,input_len,output_len` per line, '#' comments — so a
 * recorded trace can drive the same simulator, and the writer dumps
 * generated workloads for sharing.
 */

#ifndef DUPLEX_WORKLOAD_TRACE_HH
#define DUPLEX_WORKLOAD_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request.hh"

namespace duplex
{

/** Parse a trace from a stream; fatal on malformed lines. */
std::vector<Request> parseTrace(std::istream &in);

/** Load a trace file. */
std::vector<Request> loadTrace(const std::string &path);

/** Serialize requests to the trace format. */
void writeTrace(std::ostream &out,
                const std::vector<Request> &requests);

/** Save requests to a trace file. */
void saveTrace(const std::string &path,
               const std::vector<Request> &requests);

} // namespace duplex

#endif // DUPLEX_WORKLOAD_TRACE_HH
