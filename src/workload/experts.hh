/**
 * @file
 * Expert selection: per-token top-k gating.
 *
 * The paper samples target experts uniformly (Section VI, following
 * Switch Transformers); Section VIII-B discusses skewed gates with
 * hot and cold experts, which we model with a Zipf distribution for
 * the ablation study.
 */

#ifndef DUPLEX_WORKLOAD_EXPERTS_HH
#define DUPLEX_WORKLOAD_EXPERTS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace duplex
{

/** Gate distribution over experts. */
enum class GatePolicy
{
    Uniform, //!< every expert equally likely (paper default)
    Zipf,    //!< hot/cold experts, P(i) ~ 1/(i+1)^s
};

/** Samples per-expert token histograms for MoE layers. */
class ExpertSelector
{
  public:
    /**
     * @param num_experts Experts per MoE layer (Nex).
     * @param top_k       Experts chosen per token.
     * @param policy      Gate distribution.
     * @param zipf_s      Skew exponent for the Zipf policy.
     */
    ExpertSelector(int num_experts, int top_k,
                   GatePolicy policy = GatePolicy::Uniform,
                   double zipf_s = 1.0);

    int numExperts() const { return numExperts_; }
    int topK() const { return topK_; }

    /**
     * Sample how many of @p tokens select each expert. The
     * histogram sums to tokens * topK.
     */
    std::vector<std::int64_t> sample(Rng &rng,
                                     std::int64_t tokens) const;

    /**
     * Allocation-free sample(): resets and fills @p hist (resized
     * to numExperts). Same draws as sample(), so the two can be
     * mixed without perturbing the stream; the simulators call this
     * once per MoE layer with a reused scratch histogram.
     */
    void sampleInto(Rng &rng, std::int64_t tokens,
                    std::vector<std::int64_t> &hist) const;

  private:
    int numExperts_;
    int topK_;
    GatePolicy policy_;
    std::vector<double> cumWeights_; //!< Zipf CDF

    void sampleOneToken(Rng &rng,
                        std::vector<std::int64_t> &hist) const;
};

} // namespace duplex

#endif // DUPLEX_WORKLOAD_EXPERTS_HH
