/**
 * @file
 * The polymorphic workload-source interface.
 *
 * PR 1 put every evaluated serving system behind one ServingSystem
 * contract; this is the same move for the other half of an
 * experiment. A WorkloadSource produces the request stream a driver
 * loop consumes — synthetic truncated-Gaussian draws (the paper's
 * Section VI workload), recorded-trace replay, on/off bursty
 * arrivals, diurnal QPS ramps, or named scenario mixes — behind one
 * contract: next() / peekArrival() / remaining() / name() /
 * describe(). Sources are created by name through the
 * WorkloadRegistry (workload/registry.hh); new workloads implement
 * this interface and register a factory, nothing else.
 *
 * Sources stream: a million-request run draws requests one at a
 * time instead of materializing the whole vector up front
 * (sched/arrivals.hh buffers exactly one lookahead request).
 */

#ifndef DUPLEX_WORKLOAD_SOURCE_HH
#define DUPLEX_WORKLOAD_SOURCE_HH

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace duplex
{

/** One (time, QPS) breakpoint of a piecewise-linear arrival ramp. */
struct QpsPoint
{
    double timeSec = 0.0;
    double qps = 0.0;
};

/**
 * Everything a workload factory may consume. The WorkloadConfig
 * base is the synthetic spec (mean lengths, CV, QPS, seed) — kept
 * verbatim so every existing `config.workload.meanInputLen = ...`
 * call site still compiles and the default "synthetic" source is
 * bit-identical to the old RequestGenerator stream. The extra
 * fields parameterize the non-synthetic sources; each source reads
 * only what it documents and ignores the rest.
 */
struct WorkloadSpec : WorkloadConfig
{
    /** Trace file replayed by the "trace" source. */
    std::string tracePath;

    // --- "bursty": on/off modulated Poisson -----------------------
    double burstQps = 8.0;    //!< arrival rate inside a burst
    double idleQps = 0.25;    //!< rate between bursts (0 = silent)
    double meanBurstSec = 2.0; //!< mean burst duration
    double meanIdleSec = 6.0;  //!< mean idle-gap duration

    // --- "diurnal": piecewise-linear QPS ramp ---------------------
    /**
     * Breakpoints of one period, times in [0, diurnalPeriodSec).
     * Empty builds the default triangle ramp low -> high -> low
     * from the three scalars below.
     */
    std::vector<QpsPoint> qpsRamp;
    double diurnalLowQps = 1.0;
    double diurnalHighQps = 8.0;
    double diurnalPeriodSec = 60.0;

    /**
     * Distinct sessions to stamp onto the stream (request id modulo
     * this count); 0 leaves requests session-less. Consumed by the
     * registry for every source — see
     * WorkloadSource::setSessionCount for the no-RNG guarantee.
     */
    int numSessions = 0;

    /**
     * Fraction of requests stamped priorityClass = 1 (the rest stay
     * class 0) for the "priority" scheduling policy
     * (sched/policy.hh); 0 leaves the stream classless. Consumed by
     * the registry for every source — see
     * WorkloadSource::setPriorityFraction for the no-RNG guarantee.
     */
    double priorityFrac = 0.0;

    // --- "session": multi-turn chat over retirement feedback ------
    /**
     * Fresh-session arrival rate (sessions/s) when the base spec's
     * qps is <= 0; a positive spec.qps wins so `--qps` steers the
     * session workload like every other open-loop source.
     */
    double sessionQps = 2.0;

    /** Turns per session (>= 1); the loop closes between them. */
    int sessionTurns = 4;

    /**
     * Shared system-prompt tokens prepended to every session's
     * first turn — the cross-session prefix a KV prefix cache
     * (src/kvcache/) can serve warm.
     */
    std::int64_t sharedPrefixTokens = 256;

    /**
     * Mean think time (s) between a turn's retirement and the next
     * turn's arrival (exponentially distributed).
     */
    double meanThinkSec = 2.0;
};

/**
 * A request stream the driver loops can consume. Arrivals are
 * non-decreasing; closed-loop sources carry arrival = 0 (requests
 * are admitted whenever a slot frees, see sched/arrivals.hh).
 *
 * Subclasses implement generate() (draw one request) and
 * generatorRemaining(); the base class owns the one-request
 * lookahead that makes peekArrival() possible for generative
 * sources without perturbing the draw stream.
 */
class WorkloadSource
{
  public:
    /** remaining() of a generative (never-exhausted) source. */
    static constexpr std::int64_t kUnbounded =
        std::numeric_limits<std::int64_t>::max();

    virtual ~WorkloadSource() = default;

    /** Next request in arrival order; source must not be exhausted. */
    Request next();

    /**
     * Arrival timestamp of the request next() would return, without
     * consuming it; -1 when the source is exhausted. Generative
     * sources draw (and buffer) the request to answer this.
     */
    PicoSec peekArrival();

    /** Requests the source can still produce (kUnbounded if endless). */
    std::int64_t remaining() const;

    /** True when the stream carries real arrival timestamps. */
    virtual bool openLoop() const = 0;

    /** Registry id / display handle ("synthetic", "bursty", ...). */
    virtual const std::string &name() const = 0;

    /** One-line description of the modeled request mix. */
    virtual std::string describe() const = 0;

    /**
     * Stamp requests with a session id (`id % count`) as they leave
     * next(); 0 (the default) leaves sessionId = -1. Applied by the
     * WorkloadRegistry from WorkloadSpec.numSessions. Pure
     * arithmetic on the request id — no RNG draws — so enabling
     * sessions never perturbs the golden request streams. Requests
     * that already carry a sessionId (trace replay) keep it.
     */
    void setSessionCount(int count) { numSessions_ = count; }

    /**
     * Stamp roughly this fraction of requests with
     * priorityClass = 1 as they leave next(); 0 (the default)
     * leaves every class untouched. Applied by the WorkloadRegistry
     * from WorkloadSpec.priorityFrac. Like session stamping, the
     * decision is pure arithmetic on the already-drawn request id
     * (a splitmix64 mix against a fixed-point threshold — no RNG
     * draws), so enabling priorities never perturbs the golden
     * request streams, and the same ids are high-class at every
     * fraction superset. Requests that already carry a non-zero
     * class (trace replay) keep it.
     */
    void setPriorityFraction(double frac);

    // --- Retirement feedback (PR 9) -------------------------------
    // Closed-over-sessions sources (SessionSource) create a
    // request's follow-up turn only when the driver retires the
    // previous one. The channel is strictly opt-in: a source that
    // does not override wantsRetirements() never sees a callback,
    // so every pre-existing source's draw stream — and therefore
    // every golden — is untouched by the plumbing below.

    /** True when the source consumes retirement notifications. */
    virtual bool wantsRetirements() const { return false; }

    /**
     * A driver loop retired @p r at time @p now. No-op unless
     * wantsRetirements(). Reabsorbs the peekArrival() lookahead
     * first (via reabsorb()) so a retirement-created request that
     * precedes the buffered one is re-emitted in arrival order.
     */
    void notifyRetired(const Request &r, PicoSec now);

    /**
     * Hand an already-drawn, unconsumed request back to the source
     * (buffer unwind before a retirement re-orders the stream).
     * Only valid on wantsRetirements() sources.
     */
    void restore(Request r);

  protected:
    /** Draw the next request; called only while remaining() > 0. */
    virtual Request generate() = 0;

    /** Requests left to generate, excluding the lookahead buffer. */
    virtual std::int64_t generatorRemaining() const = 0;

    /** Retirement hook for wantsRetirements() sources; default no-op. */
    virtual void onRetired(const Request &r, PicoSec now);

    /**
     * Take back a request previously returned by generate().
     * Sources that opt into retirements must implement this (the
     * default panics): restored requests re-enter the stream and
     * are re-emitted in arrival order against newly created turns.
     */
    virtual void reabsorb(Request r);

  private:
    std::optional<Request> lookahead_;
    int numSessions_ = 0;

    /** Fixed-point (per-10000) priority threshold; 0 = off. */
    std::int64_t priorityThreshold_ = 0;
};

/**
 * The paper's Section VI synthetic workload behind the source
 * interface: a verbatim RequestGenerator wrap, so the draw stream
 * is bit-identical to the pre-registry code (pinned by
 * WorkloadSource.SyntheticMatchesRequestGeneratorExactly) and every
 * engine/split/figure golden holds. Scenario presets reuse this
 * class with overridden mean lengths.
 */
class SyntheticSource : public WorkloadSource
{
  public:
    SyntheticSource(std::string name, const WorkloadConfig &config,
                    std::string summary = "");

    bool openLoop() const override;
    const std::string &name() const override { return name_; }
    std::string describe() const override;

  protected:
    Request generate() override { return gen_.next(); }
    std::int64_t generatorRemaining() const override
    {
        return kUnbounded;
    }

  private:
    std::string name_;
    std::string summary_;
    RequestGenerator gen_;
};

/**
 * Replays a recorded trace (workload/trace.hh CSV): the recorded
 * `arrival,in,out` timestamps drive the engine as-is, so a
 * production trace and a synthetic stream run through the same
 * simulator. Always open loop — the stamps are the workload.
 */
class TraceSource : public WorkloadSource
{
  public:
    /** Load @p path (fatal if unreadable / malformed). */
    explicit TraceSource(const std::string &path);

    /** Replay an in-memory request vector (tests, round-trips). */
    TraceSource(std::string label, std::vector<Request> requests);

    bool openLoop() const override { return true; }
    const std::string &name() const override { return name_; }
    std::string describe() const override;

  protected:
    Request generate() override;
    std::int64_t generatorRemaining() const override
    {
        return static_cast<std::int64_t>(requests_.size()) - next_;
    }

  private:
    std::string name_;
    std::string label_;
    std::vector<Request> requests_;
    std::int64_t next_ = 0;
};

/**
 * On/off modulated Poisson arrivals (a two-state MMPP): bursts at
 * burstQps alternate with idle gaps at idleQps, both with
 * exponentially distributed durations. Request lengths come from
 * the synthetic spec's truncated Gaussians. Models the traffic
 * spikes a latency SLO actually has to survive.
 */
class BurstySource : public WorkloadSource
{
  public:
    explicit BurstySource(const WorkloadSpec &spec);

    bool openLoop() const override { return true; }
    const std::string &name() const override { return name_; }
    std::string describe() const override;

  protected:
    Request generate() override;
    std::int64_t generatorRemaining() const override
    {
        return kUnbounded;
    }

  private:
    std::string name_;
    WorkloadSpec spec_;
    Rng rng_;
    int nextId_ = 0;
    PicoSec clock_ = 0;
    bool inBurst_ = true;
    PicoSec stateEnd_ = 0;
};

/**
 * Non-homogeneous Poisson arrivals whose rate follows a
 * piecewise-linear periodic ramp (default: a low -> high -> low
 * triangle over diurnalPeriodSec), sampled by thinning against the
 * ramp's peak rate. Request lengths come from the synthetic spec.
 */
class DiurnalSource : public WorkloadSource
{
  public:
    explicit DiurnalSource(const WorkloadSpec &spec);

    bool openLoop() const override { return true; }
    const std::string &name() const override { return name_; }
    std::string describe() const override;

    /** Ramp rate at @p t (wrapped into the period); for tests. */
    double qpsAt(PicoSec t) const;

  protected:
    Request generate() override;
    std::int64_t generatorRemaining() const override
    {
        return kUnbounded;
    }

  private:
    std::string name_;
    WorkloadSpec spec_;
    std::vector<QpsPoint> ramp_;
    double peakQps_ = 0.0;
    Rng rng_;
    int nextId_ = 0;
    PicoSec clock_ = 0;
};

/** One component of a request-mix scenario. */
struct ScenarioClass
{
    std::string label;        //!< e.g. "chat"
    double weight = 1.0;      //!< relative draw probability
    std::int64_t meanInputLen = 1024;
    std::int64_t meanOutputLen = 1024;
    double lengthCv = 0.25;
};

/**
 * Draws each request from a weighted mix of length classes (the
 * "mixed" scenario: chat turns, long-prefill summarization and
 * long-decode code generation sharing one serving fleet). Arrivals
 * follow the synthetic spec: closed loop, or Poisson at spec.qps.
 */
class MixtureSource : public WorkloadSource
{
  public:
    MixtureSource(std::string name, const WorkloadConfig &base,
                  std::vector<ScenarioClass> classes);

    bool openLoop() const override;
    const std::string &name() const override { return name_; }
    std::string describe() const override;

    const std::vector<ScenarioClass> &classes() const
    {
        return classes_;
    }

  protected:
    Request generate() override;
    std::int64_t generatorRemaining() const override
    {
        return kUnbounded;
    }

  private:
    std::string name_;
    WorkloadConfig base_;
    std::vector<ScenarioClass> classes_;
    double totalWeight_ = 0.0;
    Rng rng_;
    int nextId_ = 0;
    PicoSec clock_ = 0;
};

/**
 * Multi-turn conversational traffic: fresh sessions open as an
 * open-loop Poisson stream, but each session's turns form a closed
 * loop — turn t+1 arrives one exponential think time after the
 * driver RETIRES turn t (wantsRetirements() feedback, see the base
 * class). Turn t+1's prompt is the shared system prefix plus the
 * accumulated history (all previous prompts and completions) plus
 * freshly drawn user tokens, so prompts grow and re-send a prefix a
 * KV cache (src/kvcache/) can serve warm.
 *
 * Determinism: turn lengths and think times come from a private
 * per-(session, turn) RNG (a splitmix mix of seed, session, turn),
 * so a turn's content is a pure function of the spec — independent
 * of how driver loops interleave retirements — and only the arrival
 * time depends on when the previous turn finished. Double runs of
 * any driver are byte-identical.
 */
class SessionSource : public WorkloadSource
{
  public:
    explicit SessionSource(const WorkloadSpec &spec);

    bool openLoop() const override { return true; }
    const std::string &name() const override { return name_; }
    std::string describe() const override;
    bool wantsRetirements() const override { return true; }

    /** Fresh-session arrival rate actually in use (sessions/s). */
    double sessionQps() const { return sessionQps_; }

  protected:
    Request generate() override;
    std::int64_t generatorRemaining() const override
    {
        return kUnbounded;
    }
    void onRetired(const Request &r, PicoSec now) override;
    void reabsorb(Request r) override;

  private:
    /** Draws of one (session, turn): user/output tokens + think. */
    struct TurnDraw
    {
        std::int64_t userTokens = 0;
        std::int64_t outputTokens = 0;
        PicoSec think = 0;
    };

    /** Per-session progress between retirements. */
    struct SessionState
    {
        int nextTurn = 1;            //!< next turn index to emit
        std::int64_t contextLen = 0; //!< history after the last turn
    };

    TurnDraw drawTurn(std::int64_t session, int turn) const;
    void ensureFresh();

    std::string name_;
    WorkloadSpec spec_;
    double sessionQps_ = 0.0;
    Rng rng_; //!< fresh-session arrival gaps only
    int nextId_ = 0;
    std::int64_t nextSession_ = 0;
    PicoSec clock_ = 0;

    /** Next fresh session's first turn, drawn lazily. */
    std::optional<Request> fresh_;

    /** Materialized pending turns (retirement-created + restored),
     *  a min-heap on (arrival, sessionId, id). */
    std::vector<Request> heap_;

    std::map<std::int64_t, SessionState> sessions_;
};

} // namespace duplex

#endif // DUPLEX_WORKLOAD_SOURCE_HH
