/**
 * @file
 * Synthetic workload generation (Section VI).
 *
 * Request lengths come from truncated Gaussians around the reported
 * (Lin, Lout) averages; arrivals are either closed-loop (a finished
 * request is immediately replaced, the paper's default) or an open
 * Poisson process at a given QPS (Fig. 13).
 */

#ifndef DUPLEX_WORKLOAD_GENERATOR_HH
#define DUPLEX_WORKLOAD_GENERATOR_HH

#include <vector>

#include "common/rng.hh"
#include "workload/request.hh"

namespace duplex
{

/** Parameters of the synthetic request stream. */
struct WorkloadConfig
{
    std::int64_t meanInputLen = 1024;
    std::int64_t meanOutputLen = 1024;

    /** Stddev as a fraction of the mean. */
    double lengthCv = 0.25;

    /** Shortest admissible prompt / generation. */
    std::int64_t minLen = 8;

    /** Poisson arrival rate; <= 0 means closed loop. */
    double qps = 0.0;

    std::uint64_t seed = 12345;

    /** True when the stream carries Poisson arrival timestamps. */
    bool openLoop() const { return qps > 0.0; }
};

/**
 * Draw a request's (Lin, Lout) pair from the Section VI truncated
 * Gaussians: input length first, then output length — that order
 * is part of the golden RNG-stream contract, so every source
 * (RequestGenerator, bursty, diurnal, mixture) must draw through
 * this one helper.
 */
inline void
drawLengths(Rng &rng, Request &r, std::int64_t mean_in,
            std::int64_t mean_out, double cv, std::int64_t min_len)
{
    r.inputLen = rng.truncatedGaussianInt(
        static_cast<double>(mean_in),
        cv * static_cast<double>(mean_in), min_len);
    r.outputLen = rng.truncatedGaussianInt(
        static_cast<double>(mean_out),
        cv * static_cast<double>(mean_out), min_len);
}

/** Draws requests per WorkloadConfig. */
class RequestGenerator
{
  public:
    explicit RequestGenerator(const WorkloadConfig &config);

    const WorkloadConfig &config() const { return config_; }

    /**
     * Next request. Closed-loop requests carry arrival = 0 (they
     * are admitted whenever a slot frees); Poisson requests carry
     * accumulated arrival timestamps.
     */
    Request next();

    /** Generate @p n requests. */
    std::vector<Request> take(int n);

  private:
    WorkloadConfig config_;
    Rng rng_;
    int nextId_ = 0;
    PicoSec clock_ = 0;
};

} // namespace duplex

#endif // DUPLEX_WORKLOAD_GENERATOR_HH
