#include "workload/trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace duplex
{

std::vector<Request>
parseTrace(std::istream &in)
{
    std::vector<Request> requests;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        std::string arrival_s;
        std::string lin_s;
        std::string lout_s;
        std::string session_s;
        if (!std::getline(fields, arrival_s, ',') ||
            !std::getline(fields, lin_s, ',') ||
            !std::getline(fields, lout_s, ',')) {
            fatal("trace line " + std::to_string(line_no) +
                  ": expected arrival_sec,input_len,output_len");
        }
        // Optional 4th column: session_id (written only for traces
        // recorded with sessions; three-column traces stay valid).
        const bool has_session =
            static_cast<bool>(std::getline(fields, session_s, ','));
        Request r;
        r.id = static_cast<int>(requests.size());
        try {
            r.arrival = secToPs(std::stod(arrival_s));
            r.inputLen = std::stoll(lin_s);
            r.outputLen = std::stoll(lout_s);
            if (has_session)
                r.sessionId = std::stoll(session_s);
        } catch (const std::exception &) {
            fatal("trace line " + std::to_string(line_no) +
                  ": malformed number");
        }
        fatalIf(r.arrival < 0 || r.inputLen <= 0 || r.outputLen <= 0,
                "trace line " + std::to_string(line_no) +
                    ": lengths must be positive, arrival "
                    "non-negative");
        fatalIf(!requests.empty() &&
                    r.arrival < requests.back().arrival,
                "trace line " + std::to_string(line_no) +
                    ": arrivals must be non-decreasing");
        requests.push_back(r);
    }
    return requests;
}

std::vector<Request>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open trace: " + path);
    return parseTrace(in);
}

void
writeTrace(std::ostream &out, const std::vector<Request> &requests)
{
    // The session_id column appears only when some request carries
    // one, so traces recorded without sessions stay byte-identical
    // to the pre-session format.
    bool sessions = false;
    for (const auto &r : requests)
        sessions = sessions || r.sessionId >= 0;
    out << (sessions ? "# arrival_sec,input_len,output_len,session_id\n"
                     : "# arrival_sec,input_len,output_len\n");
    char buf[64];
    for (const auto &r : requests) {
        // Nanosecond text precision keeps long traces lossless.
        std::snprintf(buf, sizeof(buf), "%.9f", psToSec(r.arrival));
        out << buf << "," << r.inputLen << "," << r.outputLen;
        if (sessions)
            out << "," << r.sessionId;
        out << "\n";
    }
}

void
saveTrace(const std::string &path,
          const std::vector<Request> &requests)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot write trace: " + path);
    writeTrace(out, requests);
}

} // namespace duplex
