#include "workload/trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace duplex
{

namespace
{

/** "trace line N: 'the offending text' — " error prefix, so a bad
 *  line in a million-row CSV is findable without opening it. */
std::string
lineContext(int line_no, const std::string &line)
{
    const auto first = line.find_first_not_of(" \t\r");
    const auto last = line.find_last_not_of(" \t\r\n");
    std::string shown = first == std::string::npos
                            ? ""
                            : line.substr(first, last - first + 1);
    if (shown.size() > 60)
        shown = shown.substr(0, 57) + "...";
    return "trace line " + std::to_string(line_no) + ": '" + shown +
           "' — ";
}

/** Parse one field completely ('1.5x' is an error, not 1.5). */
double
traceNumber(const std::string &field, const char *name,
            int line_no, const std::string &line)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(field, &used);
        fatalIf(field.find_first_not_of(" \t\r",
                                        used) != std::string::npos,
                lineContext(line_no, line) + "bad " +
                    std::string(name) + " '" + field + "'");
        return v;
    } catch (const std::exception &) {
        fatal(lineContext(line_no, line) + "bad " +
              std::string(name) + " '" + field + "'");
    }
}

} // namespace

std::vector<Request>
parseTrace(std::istream &in)
{
    std::vector<Request> requests;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        std::string arrival_s;
        std::string lin_s;
        std::string lout_s;
        std::string session_s;
        std::string priority_s;
        std::string excess_s;
        if (!std::getline(fields, arrival_s, ',') ||
            !std::getline(fields, lin_s, ',') ||
            !std::getline(fields, lout_s, ',')) {
            fatal(lineContext(line_no, line) +
                  "expected arrival_sec,input_len,output_len"
                  "[,session_id[,priority_class]]");
        }
        // Optional 4th/5th columns: session_id and priority_class
        // (written only for traces recorded with sessions or
        // priorities; three- and four-column traces stay valid).
        // A 6th column is a malformed file, not something to drop
        // silently.
        const bool has_session =
            static_cast<bool>(std::getline(fields, session_s, ','));
        const bool has_priority = static_cast<bool>(
            std::getline(fields, priority_s, ','));
        fatalIf(static_cast<bool>(
                    std::getline(fields, excess_s, ',')),
                lineContext(line_no, line) +
                    "too many columns (expected at most "
                    "arrival_sec,input_len,output_len,session_id,"
                    "priority_class)");
        Request r;
        r.id = static_cast<int>(requests.size());
        r.arrival = secToPs(
            traceNumber(arrival_s, "arrival_sec", line_no, line));
        r.inputLen = static_cast<std::int64_t>(
            traceNumber(lin_s, "input_len", line_no, line));
        r.outputLen = static_cast<std::int64_t>(
            traceNumber(lout_s, "output_len", line_no, line));
        if (has_session)
            r.sessionId = static_cast<std::int64_t>(traceNumber(
                session_s, "session_id", line_no, line));
        if (has_priority)
            r.priorityClass = static_cast<int>(traceNumber(
                priority_s, "priority_class", line_no, line));
        fatalIf(r.arrival < 0 || r.inputLen <= 0 || r.outputLen <= 0,
                lineContext(line_no, line) +
                    "lengths must be positive, arrival "
                    "non-negative");
        fatalIf(r.priorityClass < 0,
                lineContext(line_no, line) +
                    "priority_class must be >= 0");
        // Plain if, not fatalIf: the message touches back() and
        // must only be built once a previous request exists.
        if (!requests.empty() &&
            r.arrival < requests.back().arrival) {
            fatal(lineContext(line_no, line) +
                  "arrivals must be non-decreasing (previous "
                  "line arrives at " +
                  std::to_string(psToSec(requests.back().arrival)) +
                  " s)");
        }
        requests.push_back(r);
    }
    return requests;
}

std::vector<Request>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open trace: " + path);
    return parseTrace(in);
}

void
writeTrace(std::ostream &out, const std::vector<Request> &requests)
{
    // Optional columns appear only when some request carries them,
    // so traces recorded without sessions or priorities stay
    // byte-identical to the earlier formats. The format is
    // positional: a priority column forces the session column (as
    // -1 placeholders when the stream is session-less).
    bool priorities = false;
    for (const auto &r : requests)
        priorities = priorities || r.priorityClass != 0;
    bool sessions = priorities;
    for (const auto &r : requests)
        sessions = sessions || r.sessionId >= 0;
    out << "# arrival_sec,input_len,output_len";
    if (sessions)
        out << ",session_id";
    if (priorities)
        out << ",priority_class";
    out << "\n";
    char buf[64];
    for (const auto &r : requests) {
        // Nanosecond text precision keeps long traces lossless.
        std::snprintf(buf, sizeof(buf), "%.9f", psToSec(r.arrival));
        out << buf << "," << r.inputLen << "," << r.outputLen;
        if (sessions)
            out << "," << r.sessionId;
        if (priorities)
            out << "," << r.priorityClass;
        out << "\n";
    }
}

void
saveTrace(const std::string &path,
          const std::vector<Request> &requests)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot write trace: " + path);
    writeTrace(out, requests);
}

} // namespace duplex
