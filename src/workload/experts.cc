#include "workload/experts.hh"

#include <cmath>

#include "common/log.hh"

namespace duplex
{

ExpertSelector::ExpertSelector(int num_experts, int top_k,
                               GatePolicy policy, double zipf_s)
    : numExperts_(num_experts), topK_(top_k), policy_(policy)
{
    fatalIf(num_experts <= 0, "ExpertSelector: need experts");
    fatalIf(top_k <= 0 || top_k > num_experts,
            "ExpertSelector: need 0 < topK <= numExperts");
    if (policy_ == GatePolicy::Zipf) {
        cumWeights_.resize(numExperts_);
        double total = 0.0;
        for (int i = 0; i < numExperts_; ++i) {
            total += 1.0 / std::pow(static_cast<double>(i + 1),
                                    zipf_s);
            cumWeights_[i] = total;
        }
        for (auto &w : cumWeights_)
            w /= total;
    }
}

void
ExpertSelector::sampleOneToken(Rng &rng,
                               std::vector<std::int64_t> &hist) const
{
    if (policy_ == GatePolicy::Uniform) {
        if (topK_ == 2) {
            // Floyd's algorithm unrolled for the paper models'
            // top-2 gate: identical draws to chooseDistinct(n, 2).
            const int t1 = static_cast<int>(
                rng.uniformInt(0, numExperts_ - 2));
            const int t2 = static_cast<int>(
                rng.uniformInt(0, numExperts_ - 1));
            ++hist[t1];
            ++hist[t2 == t1 ? numExperts_ - 1 : t2];
        } else if (topK_ <= 8) {
            // Stack buffer, no allocation per token.
            int chosen[8];
            rng.chooseDistinctInto(numExperts_, topK_, chosen);
            for (int i = 0; i < topK_; ++i)
                ++hist[chosen[i]];
        } else {
            for (int e : rng.chooseDistinct(numExperts_, topK_))
                ++hist[e];
        }
        return;
    }
    // Zipf: rejection-sample distinct experts by CDF inversion.
    int chosen[8];
    panicIf(topK_ > 8, "topK > 8 unsupported for Zipf gate");
    int found = 0;
    while (found < topK_) {
        const double u = rng.uniform();
        int e = 0;
        while (e < numExperts_ - 1 && cumWeights_[e] < u)
            ++e;
        bool dup = false;
        for (int i = 0; i < found; ++i)
            if (chosen[i] == e)
                dup = true;
        if (!dup)
            chosen[found++] = e;
    }
    for (int i = 0; i < found; ++i)
        ++hist[chosen[i]];
}

std::vector<std::int64_t>
ExpertSelector::sample(Rng &rng, std::int64_t tokens) const
{
    std::vector<std::int64_t> hist;
    sampleInto(rng, tokens, hist);
    return hist;
}

void
ExpertSelector::sampleInto(Rng &rng, std::int64_t tokens,
                           std::vector<std::int64_t> &hist) const
{
    hist.assign(numExperts_, 0);
    if (policy_ == GatePolicy::Uniform && topK_ == 2) {
        // The paper models all gate top-2: run the unrolled Floyd
        // draw (identical stream to sampleOneToken) as one tight
        // loop over the layer's tokens.
        const int n = numExperts_;
        std::int64_t *h = hist.data();
        for (std::int64_t t = 0; t < tokens; ++t) {
            const int t1 =
                static_cast<int>(rng.uniformInt(0, n - 2));
            const int t2 =
                static_cast<int>(rng.uniformInt(0, n - 1));
            ++h[t1];
            ++h[t2 == t1 ? n - 1 : t2];
        }
        return;
    }
    for (std::int64_t t = 0; t < tokens; ++t)
        sampleOneToken(rng, hist);
}

} // namespace duplex
