#include "workload/experts.hh"

#include <cmath>

#include "common/log.hh"

namespace duplex
{

ExpertSelector::ExpertSelector(int num_experts, int top_k,
                               GatePolicy policy, double zipf_s)
    : numExperts_(num_experts), topK_(top_k), policy_(policy)
{
    fatalIf(num_experts <= 0, "ExpertSelector: need experts");
    fatalIf(top_k <= 0 || top_k > num_experts,
            "ExpertSelector: need 0 < topK <= numExperts");
    if (policy_ == GatePolicy::Zipf) {
        cumWeights_.resize(numExperts_);
        double total = 0.0;
        for (int i = 0; i < numExperts_; ++i) {
            total += 1.0 / std::pow(static_cast<double>(i + 1),
                                    zipf_s);
            cumWeights_[i] = total;
        }
        for (auto &w : cumWeights_)
            w /= total;
    }
}

void
ExpertSelector::sampleOneToken(Rng &rng,
                               std::vector<std::int64_t> &hist) const
{
    if (policy_ == GatePolicy::Uniform) {
        for (int e : rng.chooseDistinct(numExperts_, topK_))
            ++hist[e];
        return;
    }
    // Zipf: rejection-sample distinct experts by CDF inversion.
    int chosen[8];
    panicIf(topK_ > 8, "topK > 8 unsupported for Zipf gate");
    int found = 0;
    while (found < topK_) {
        const double u = rng.uniform();
        int e = 0;
        while (e < numExperts_ - 1 && cumWeights_[e] < u)
            ++e;
        bool dup = false;
        for (int i = 0; i < found; ++i)
            if (chosen[i] == e)
                dup = true;
        if (!dup)
            chosen[found++] = e;
    }
    for (int i = 0; i < found; ++i)
        ++hist[chosen[i]];
}

std::vector<std::int64_t>
ExpertSelector::sample(Rng &rng, std::int64_t tokens) const
{
    std::vector<std::int64_t> hist(numExperts_, 0);
    for (std::int64_t t = 0; t < tokens; ++t)
        sampleOneToken(rng, hist);
    return hist;
}

} // namespace duplex
