/**
 * @file
 * Inference request records and their lifecycle timestamps.
 */

#ifndef DUPLEX_WORKLOAD_REQUEST_HH
#define DUPLEX_WORKLOAD_REQUEST_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace duplex
{

/** One inference request as the serving scheduler sees it. */
struct Request
{
    int id = -1;
    std::int64_t inputLen = 0;   //!< prompt tokens (Lin)
    std::int64_t outputLen = 0;  //!< tokens to generate (Lout)
    PicoSec arrival = 0;         //!< when the request enters the queue

    /**
     * Conversation/session handle, -1 when absent. Purely a routing
     * tag: the session-affinity fleet policy (src/fleet/) hashes it
     * so one session's turns land on the same instance (warm KV
     * reuse in a real deployment). No cost path reads it.
     */
    std::int64_t sessionId = -1;

    /**
     * Scheduling class for the "priority" batcher policy
     * (sched/policy.hh): higher admits first and may preempt
     * strictly-lower-class decodes. 0 (the default) is the baseline
     * class; FCFS-style policies ignore it entirely. Stamped by the
     * workload layer (WorkloadSpec.priorityFrac) or carried by the
     * optional trace-CSV column; no cost path reads it.
     */
    int priorityClass = 0;

    /**
     * Times this request was re-queued from prefill: fleet crash
     * re-routes (fleet/faults.hh, RetrySpec caps those) and batcher
     * preemptions (sched/policy.hh) both count here. Zero outside
     * faulted or preempting runs; no cost path reads it.
     */
    int retries = 0;

    // --- Lifecycle, filled by the scheduler -----------------------
    PicoSec firstToken = -1;     //!< completion of the prefill stage
    PicoSec finished = -1;       //!< completion of the last token
    std::int64_t generated = 0;  //!< tokens produced so far

    /**
     * Prompt tokens already processed under chunked prefill
     * (BatcherConfig.prefillChunkTokens); stays 0 when chunking is
     * off — generated == 0 remains the prefill flag there.
     */
    std::int64_t prefilled = 0;

    /**
     * Prompt tokens served from a KV prefix cache at admission
     * (src/kvcache/); 0 means a cold prefill. Set by the batcher
     * when a PrefixCachePool is active, reset on preemption/retry
     * re-queues (the re-admission looks the prefix up again), and
     * read by SloAttainment/PrefixCacheStats for the warm-vs-cold
     * TTFT split. No cost path reads it directly — the cached
     * tokens shrink `prefilled` instead, which the cost model sees.
     */
    std::int64_t cachedTokens = 0;

    std::vector<PicoSec> tokenTimes; //!< completion time per token

    /** Context length the KV cache holds for this request. */
    std::int64_t contextLen() const { return inputLen + generated; }

    bool done() const { return generated >= outputLen; }
};

} // namespace duplex

#endif // DUPLEX_WORKLOAD_REQUEST_HH
