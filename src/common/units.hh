/**
 * @file
 * Core unit types and conversion helpers.
 *
 * All simulated time is kept as integer picoseconds (PicoSec) so DRAM
 * command timing can be checked exactly; floating-point seconds appear
 * only at reporting boundaries. Data sizes are bytes in uint64_t,
 * operation counts (FLOPs) are double (they reach 1e15 per stage).
 */

#ifndef DUPLEX_COMMON_UNITS_HH
#define DUPLEX_COMMON_UNITS_HH

#include <cstdint>

namespace duplex
{

/** Simulated time in integer picoseconds. */
using PicoSec = std::int64_t;

/** Data size in bytes. */
using Bytes = std::uint64_t;

/** Floating-point operation count. */
using Flops = double;

/** Scale constants for time conversion. */
constexpr PicoSec kPsPerNs = 1000;
constexpr PicoSec kPsPerUs = 1000ll * 1000;
constexpr PicoSec kPsPerMs = 1000ll * 1000 * 1000;
constexpr PicoSec kPsPerSec = 1000ll * 1000 * 1000 * 1000;

/** Convert nanoseconds (possibly fractional) to picoseconds. */
constexpr PicoSec
nsToPs(double ns)
{
    return static_cast<PicoSec>(ns * static_cast<double>(kPsPerNs) + 0.5);
}

/** Convert picoseconds to seconds for reporting. */
constexpr double
psToSec(PicoSec ps)
{
    return static_cast<double>(ps) / static_cast<double>(kPsPerSec);
}

/** Convert picoseconds to milliseconds for reporting. */
constexpr double
psToMs(PicoSec ps)
{
    return static_cast<double>(ps) / static_cast<double>(kPsPerMs);
}

/** Convert seconds to picoseconds. */
constexpr PicoSec
secToPs(double sec)
{
    return static_cast<PicoSec>(sec * static_cast<double>(kPsPerSec) + 0.5);
}

/** Size literals. */
constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/** Decimal rate helpers (bandwidth vendors use powers of ten). */
constexpr double kGB = 1e9;
constexpr double kTB = 1e12;

/** FLOP scale helpers. */
constexpr double kGFLOP = 1e9;
constexpr double kTFLOP = 1e12;

/**
 * Time to move @p bytes at @p bytes_per_sec, as integer picoseconds,
 * rounded up so zero-cost transfers cannot be fabricated by rounding.
 */
constexpr PicoSec
transferTimePs(Bytes bytes, double bytes_per_sec)
{
    if (bytes == 0)
        return 0;
    double sec = static_cast<double>(bytes) / bytes_per_sec;
    PicoSec ps = static_cast<PicoSec>(sec * static_cast<double>(kPsPerSec));
    return ps > 0 ? ps : 1;
}

} // namespace duplex

#endif // DUPLEX_COMMON_UNITS_HH
