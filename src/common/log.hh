/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so a core dump / debugger can be attached.
 * warn()   — something is modeled approximately; execution continues.
 * inform() — plain status output.
 */

#ifndef DUPLEX_COMMON_LOG_HH
#define DUPLEX_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace duplex
{

/** Internal: emit a tagged message to stderr. */
void logMessage(const char *tag, const std::string &msg);

/** Exit the process after reporting a user-caused error. */
[[noreturn]] void fatal(const std::string &msg);

/** Abort the process after reporting a simulator bug. */
[[noreturn]] void panic(const std::string &msg);

/** Report a modeling approximation or suspicious condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/**
 * Check a simulator invariant.
 *
 * @param cond Condition that must hold.
 * @param msg  Explanation printed when it does not.
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/**
 * Overload for hot paths: the literal is only converted to a
 * std::string (an allocation) when the invariant actually fails.
 */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic(msg);
}

/** Check a user-facing precondition. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace duplex

#endif // DUPLEX_COMMON_LOG_HH
