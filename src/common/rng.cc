#include "common/rng.hh"

#include <cmath>

#include "common/log.hh"

namespace duplex
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::int64_t
Rng::truncatedGaussianInt(double mean, double stddev,
                          std::int64_t min_value)
{
    for (int attempt = 0; attempt < 1024; ++attempt) {
        const double v = gaussian(mean, stddev);
        const auto len = static_cast<std::int64_t>(std::llround(v));
        if (len >= min_value)
            return len;
    }
    // Pathological (mean far below min); clamp rather than spin.
    return min_value;
}

double
Rng::exponential(double rate_per_sec)
{
    panicIf(rate_per_sec <= 0.0, "exponential: rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate_per_sec;
}

std::vector<int>
Rng::chooseDistinct(int n, int k)
{
    // chooseDistinctInto validates 0 <= k <= n.
    std::vector<int> chosen(k < 0 ? 0 : k);
    chooseDistinctInto(n, k, chosen.data());
    return chosen;
}

} // namespace duplex
