/**
 * @file
 * Process peak-RSS probe shared by the drivers that report the
 * memory win of retirement streaming (quickstart, bench_longrun).
 * One copy of the platform-dependent ru_maxrss unit handling.
 */

#ifndef DUPLEX_COMMON_RSS_HH
#define DUPLEX_COMMON_RSS_HH

#include <sys/resource.h>

namespace duplex
{

/** Peak resident set size of this process, in MB. */
inline double
peakRssMb()
{
    struct rusage usage
    {
    };
    getrusage(RUSAGE_SELF, &usage);
#ifdef __APPLE__
    // ru_maxrss is bytes on macOS.
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    // ... and kilobytes on Linux.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

} // namespace duplex

#endif // DUPLEX_COMMON_RSS_HH
