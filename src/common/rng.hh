/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * The paper's evaluation (Section VI) samples request lengths from
 * Gaussian distributions, expert choices uniformly, and request
 * arrivals from a Poisson process. Everything here is seeded
 * explicitly so a simulation is reproducible bit-for-bit.
 */

#ifndef DUPLEX_COMMON_RNG_HH
#define DUPLEX_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace duplex
{

/**
 * A small, fast, deterministic generator (xoshiro256**) with the
 * distribution helpers the workload layer needs. Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Positive integer from a truncated Gaussian: resampled until the
     * value is at least @p min_value. Used for sequence lengths.
     */
    std::int64_t truncatedGaussianInt(double mean, double stddev,
                                      std::int64_t min_value);

    /** Exponential inter-arrival gap for a Poisson process (seconds). */
    double exponential(double rate_per_sec);

    /**
     * Choose @p k distinct values uniformly from [0, n). Order is not
     * significant. Used for top-k expert selection (uniform gate).
     */
    std::vector<int> chooseDistinct(int n, int k);

  private:
    std::uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace duplex

#endif // DUPLEX_COMMON_RNG_HH
