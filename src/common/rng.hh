/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * The paper's evaluation (Section VI) samples request lengths from
 * Gaussian distributions, expert choices uniformly, and request
 * arrivals from a Poisson process. Everything here is seeded
 * explicitly so a simulation is reproducible bit-for-bit.
 */

#ifndef DUPLEX_COMMON_RNG_HH
#define DUPLEX_COMMON_RNG_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace duplex
{

/**
 * A small, fast, deterministic generator (xoshiro256**) with the
 * distribution helpers the workload layer needs. Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Next raw 64-bit value. Inline: expert selection draws this
     * hundreds of millions of times per figure sweep.
     */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 mantissa bits give a uniform double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi)
    {
        panicIf(lo > hi, "uniformInt: empty range");
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Positive integer from a truncated Gaussian: resampled until the
     * value is at least @p min_value. Used for sequence lengths.
     */
    std::int64_t truncatedGaussianInt(double mean, double stddev,
                                      std::int64_t min_value);

    /** Exponential inter-arrival gap for a Poisson process (seconds). */
    double exponential(double rate_per_sec);

    /**
     * Choose @p k distinct values uniformly from [0, n). Order is not
     * significant. Used for top-k expert selection (uniform gate).
     */
    std::vector<int> chooseDistinct(int n, int k);

    /**
     * Allocation-free chooseDistinct: writes @p k distinct values
     * into @p out (caller provides at least k slots). Consumes the
     * same draws as chooseDistinct, so mixing the two preserves the
     * stream.
     */
    void chooseDistinctInto(int n, int k, int *out)
    {
        panicIf(k > n || k < 0,
                "chooseDistinct: need 0 <= k <= n");
        // Floyd's algorithm: O(k) draws, no allocation of [0, n).
        int count = 0;
        for (int j = n - k; j < n; ++j) {
            const int t = static_cast<int>(uniformInt(0, j));
            bool seen = false;
            for (int i = 0; i < count; ++i) {
                if (out[i] == t) {
                    seen = true;
                    break;
                }
            }
            out[count++] = seen ? j : t;
        }
    }

  private:
    std::uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;

    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }
};

} // namespace duplex

#endif // DUPLEX_COMMON_RNG_HH
