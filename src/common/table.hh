/**
 * @file
 * ASCII table writer used by the benchmark harness to print the same
 * rows/series the paper's figures report.
 */

#ifndef DUPLEX_COMMON_TABLE_HH
#define DUPLEX_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace duplex
{

/**
 * A column-aligned text table. Columns are declared up front; rows are
 * added as strings or formatted numbers; print() writes a
 * markdown-style table to stdout.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    void startRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append an integer cell. */
    void cell(std::int64_t value);

    /** Append a floating-point cell with @p digits decimals. */
    void cell(double value, int digits = 3);

    /** Write the table to stdout. */
    void print() const;

    /** Render the table as a string (used in tests). */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helper: fixed-point with the given decimals. */
std::string formatDouble(double value, int digits);

} // namespace duplex

#endif // DUPLEX_COMMON_TABLE_HH
