#include "common/argparse.hh"

#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace duplex
{

void
ArgParser::addFlag(const std::string &name, const std::string &help,
                   const std::string &default_value)
{
    const bool boolean =
        default_value == "true" || default_value == "false";
    flags_[name] = Flag{help, default_value, boolean};
}

void
ArgParser::usage() const
{
    std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
    for (const auto &[name, flag] : flags_) {
        std::fprintf(stderr, "  --%s=%s\n      %s\n", name.c_str(),
                     flag.value.c_str(), flag.help.c_str());
    }
}

void
ArgParser::parse(int argc, char **argv)
{
    program_ = argc > 0 ? argv[0] : "prog";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            usage();
            fatal("positional arguments are not supported: " + arg);
        }
        arg = arg.substr(2);
        std::string name;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // Boolean flags (default "true"/"false") work as bare
            // switches: --list-systems means --list-systems=true.
            // In space form they only swallow the next token when
            // it is a recognized boolean literal, so "--verbose
            // mixtral" stays a typo-detecting positional error
            // rather than silently disabling the switch.
            const auto flag = flags_.find(name);
            const bool boolean =
                flag != flags_.end() && flag->second.boolean;
            auto is_bool_literal = [](const std::string &v) {
                return v == "true" || v == "false" || v == "1" ||
                       v == "0" || v == "yes" || v == "no";
            };
            const bool next_is_value =
                i + 1 < argc && is_bool_literal(argv[i + 1]);
            if (boolean && !next_is_value) {
                value = "true";
            } else if (i + 1 >= argc) {
                usage();
                fatal("flag --" + name + " needs a value");
            } else {
                value = argv[++i];
            }
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) {
            usage();
            fatal("unknown flag --" + name);
        }
        it->second.value = value;
    }
}

std::string
ArgParser::getString(const std::string &name) const
{
    auto it = flags_.find(name);
    panicIf(it == flags_.end(), "undeclared flag read: " + name);
    return it->second.value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(getString(name).c_str(), nullptr, 10);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(getString(name).c_str(), nullptr);
}

bool
ArgParser::getBool(const std::string &name) const
{
    const std::string v = getString(name);
    return v == "1" || v == "true" || v == "yes";
}

} // namespace duplex
