#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

void
SampleStats::add(double v)
{
    samples_.push_back(v);
    sum_ += v;
    sorted_ = false;
}

void
SampleStats::reserve(std::size_t n)
{
    samples_.reserve(n);
}

void
SampleStats::merge(const SampleStats &other)
{
    if (other.samples_.empty())
        return;
    samples_.reserve(samples_.size() + other.samples_.size());
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
}

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

void
SampleStats::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleStats::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.front();
}

double
SampleStats::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

double
SampleStats::percentile(double p) const
{
    panicIf(p < 0.0 || p > 100.0, "percentile: p out of [0, 100]");
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double
SampleStats::fractionAtMost(double v) const
{
    if (samples_.empty())
        return 1.0;
    ensureSorted();
    const auto at_most = std::upper_bound(samples_.begin(),
                                          samples_.end(), v) -
                         samples_.begin();
    return static_cast<double>(at_most) /
           static_cast<double>(samples_.size());
}

void
SampleStats::clear()
{
    samples_.clear();
    sum_ = 0.0;
    sorted_ = true;
}

BoundedStats::BoundedStats(BoundedSpec spec)
    : spec_(spec),
      binWidth_(spec.maxValue / std::max(1, spec.bins)),
      counts_(static_cast<std::size_t>(std::max(1, spec.bins)) + 1,
              0)
{
    fatalIf(spec.maxValue <= 0.0 || spec.bins <= 0,
            "BoundedStats: maxValue and bins must be positive");
}

void
BoundedStats::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    std::size_t bin;
    if (v < 0.0) {
        bin = 0;
    } else if (v >= spec_.maxValue) {
        bin = counts_.size() - 1; // overflow slot
    } else {
        bin = static_cast<std::size_t>(v / binWidth_);
        if (bin >= counts_.size() - 1)
            bin = counts_.size() - 2;
    }
    ++counts_[bin];
}

double
BoundedStats::mean() const
{
    if (count_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(count_);
}

double
BoundedStats::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
BoundedStats::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
BoundedStats::percentile(double p) const
{
    panicIf(p < 0.0 || p > 100.0, "percentile: p out of [0, 100]");
    if (count_ == 0)
        return 0.0;
    // The rank convention matches SampleStats (0-based order
    // statistics); the value inside the owning bin is interpolated
    // from the rank's position among that bin's samples.
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    std::int64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b] == 0)
            continue;
        const double first = static_cast<double>(seen);
        const double last =
            static_cast<double>(seen + counts_[b] - 1);
        if (rank <= last) {
            if (b == counts_.size() - 1)
                return max_; // overflow bin: report the exact max
            const double lo = static_cast<double>(b) * binWidth_;
            const double hi = lo + binWidth_;
            const double span =
                static_cast<double>(counts_[b]);
            const double frac = span <= 1.0
                                    ? 0.5
                                    : (rank - first) / (span - 1.0);
            const double v = lo + frac * (hi - lo);
            // Never report outside the exact observed range.
            return std::clamp(v, min_, max_);
        }
        seen += counts_[b];
    }
    return max_;
}

double
BoundedStats::fractionAtMost(double v) const
{
    if (count_ == 0)
        return 1.0;
    if (v >= max_)
        return 1.0;
    if (v < min_)
        return 0.0;
    std::int64_t at_most = 0;
    if (v >= spec_.maxValue) {
        // Threshold inside the overflow bin: every regular-bin
        // sample is <= v; interpolate the overflow samples across
        // their exact range [maxValue, max_].
        for (std::size_t b = 0; b + 1 < counts_.size(); ++b)
            at_most += counts_[b];
        const double span = max_ - spec_.maxValue;
        const double frac =
            span > 0.0 ? (v - spec_.maxValue) / span : 1.0;
        at_most += static_cast<std::int64_t>(
            frac * static_cast<double>(counts_.back()));
        return static_cast<double>(at_most) /
               static_cast<double>(count_);
    }
    const std::size_t full_bins =
        static_cast<std::size_t>(v / binWidth_);
    for (std::size_t b = 0; b < full_bins; ++b)
        at_most += counts_[b];
    // Partial credit inside the boundary bin.
    const double lo = static_cast<double>(full_bins) * binWidth_;
    const double frac = (v - lo) / binWidth_;
    at_most += static_cast<std::int64_t>(
        frac * static_cast<double>(counts_[full_bins]));
    return static_cast<double>(at_most) /
           static_cast<double>(count_);
}

} // namespace duplex
