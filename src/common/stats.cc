#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

void
SampleStats::add(double v)
{
    samples_.push_back(v);
    sum_ += v;
    sorted_ = false;
}

void
SampleStats::merge(const SampleStats &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
}

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

void
SampleStats::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleStats::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.front();
}

double
SampleStats::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

double
SampleStats::percentile(double p) const
{
    panicIf(p < 0.0 || p > 100.0, "percentile: p out of [0, 100]");
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double
SampleStats::fractionAtMost(double v) const
{
    if (samples_.empty())
        return 1.0;
    ensureSorted();
    const auto at_most = std::upper_bound(samples_.begin(),
                                          samples_.end(), v) -
                         samples_.begin();
    return static_cast<double>(at_most) /
           static_cast<double>(samples_.size());
}

void
SampleStats::clear()
{
    samples_.clear();
    sum_ = 0.0;
    sorted_ = true;
}

} // namespace duplex
