/**
 * @file
 * Sample accumulators and percentile statistics.
 *
 * The paper reports p50/p90/p99 token-between-token (TBT) latency,
 * median time-to-first-token (T2FT), and median end-to-end (E2E)
 * latency. SampleStats collects raw samples and answers those
 * queries with linear-interpolated percentiles; it retains every
 * sample (O(n) memory) and sorts lazily, once per query burst.
 *
 * BoundedStats is the opt-in O(1)-memory alternative for
 * long-running campaigns (millions of requests): a fixed-bin
 * streaming histogram whose percentiles interpolate within a bin.
 * It is deliberately *not* the golden path — percentiles are
 * approximate to bin resolution — so figure reproductions and the
 * golden tests stay on SampleStats.
 */

#ifndef DUPLEX_COMMON_STATS_HH
#define DUPLEX_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace duplex
{

/** Accumulates scalar samples; answers mean/min/max/percentile. */
class SampleStats
{
  public:
    /** Add one observation. */
    void add(double v);

    /** Pre-size the sample buffer for @p n total observations. */
    void reserve(std::size_t n);

    /**
     * Append all samples from another accumulator. Reserves the
     * destination up front and marks it unsorted exactly once; a
     * merge followed by a percentile query matches adding the same
     * samples one at a time (pinned in tests/common/test_stats.cc).
     */
    void merge(const SampleStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest observation; 0 when empty. */
    double min() const;

    /** Largest observation; 0 when empty. */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /**
     * Percentile in [0, 100] with linear interpolation between order
     * statistics; 0 when empty.
     */
    double percentile(double p) const;

    /** Shorthand for percentile(50). */
    double median() const { return percentile(50.0); }

    /**
     * Fraction of samples <= @p v (SLO attainment against a
     * threshold); 1.0 when empty — an objective over no
     * observations is vacuously met.
     */
    double fractionAtMost(double v) const;

    /** Drop all samples. */
    void clear();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;

    void ensureSorted() const;
};

/** Shape of a BoundedStats histogram. */
struct BoundedSpec
{
    /**
     * Upper edge of the binned range; observations at or beyond it
     * land in the overflow bin (reported as the exact max).
     * The default covers latencies up to 100 s in ~49 ms bins.
     */
    double maxValue = 100000.0;

    /** Uniform bins across [0, maxValue). */
    int bins = 2048;
};

/**
 * Fixed-bin streaming histogram: O(bins) memory regardless of the
 * observation count. count/sum/mean/min/max are exact;
 * percentile/fractionAtMost interpolate within a bin and are
 * therefore approximate to bin resolution. Use for truly
 * O(1)-memory campaigns (bench_longrun); NOT the golden path —
 * figures and golden tests use SampleStats.
 */
class BoundedStats
{
  public:
    explicit BoundedStats(BoundedSpec spec = {});

    /** Add one observation (values < 0 clamp into the first bin). */
    void add(double v);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const; //!< exact; 0 when empty
    double max() const; //!< exact; 0 when empty

    /**
     * Approximate percentile in [0, 100]: locates the bin holding
     * the rank and interpolates linearly inside it. Overflow-bin
     * ranks report the exact max.
     */
    double percentile(double p) const;

    /** Approximate fraction of samples <= @p v; 1.0 when empty. */
    double fractionAtMost(double v) const;

    const BoundedSpec &spec() const { return spec_; }

  private:
    BoundedSpec spec_;
    double binWidth_;
    std::vector<std::int64_t> counts_; //!< bins + 1 overflow slot
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace duplex

#endif // DUPLEX_COMMON_STATS_HH
