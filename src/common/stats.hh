/**
 * @file
 * Sample accumulators and percentile statistics.
 *
 * The paper reports p50/p90/p99 token-between-token (TBT) latency,
 * median time-to-first-token (T2FT), and median end-to-end (E2E)
 * latency. SampleStats collects raw samples and answers those
 * queries with linear-interpolated percentiles.
 */

#ifndef DUPLEX_COMMON_STATS_HH
#define DUPLEX_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace duplex
{

/** Accumulates scalar samples; answers mean/min/max/percentile. */
class SampleStats
{
  public:
    /** Add one observation. */
    void add(double v);

    /** Append all samples from another accumulator. */
    void merge(const SampleStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest observation; 0 when empty. */
    double min() const;

    /** Largest observation; 0 when empty. */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /**
     * Percentile in [0, 100] with linear interpolation between order
     * statistics; 0 when empty.
     */
    double percentile(double p) const;

    /** Shorthand for percentile(50). */
    double median() const { return percentile(50.0); }

    /**
     * Fraction of samples <= @p v (SLO attainment against a
     * threshold); 1.0 when empty — an objective over no
     * observations is vacuously met.
     */
    double fractionAtMost(double v) const;

    /** Drop all samples. */
    void clear();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;

    void ensureSorted() const;
};

} // namespace duplex

#endif // DUPLEX_COMMON_STATS_HH
