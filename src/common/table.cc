#include "common/table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace duplex
{

std::string
formatDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panicIf(headers_.empty(), "Table: need at least one column");
}

void
Table::startRow()
{
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
}

void
Table::cell(const std::string &value)
{
    panicIf(rows_.empty(), "Table: cell before startRow");
    panicIf(rows_.back().size() >= headers_.size(),
            "Table: too many cells in row");
    rows_.back().push_back(value);
}

void
Table::cell(std::int64_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(double value, int digits)
{
    cell(formatDouble(value, digits));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        out << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            out << " " << v << std::string(widths[c] - v.size(), ' ')
                << " |";
        }
        out << "\n";
    };

    emit_row(headers_);
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        out << std::string(widths[c] + 2, '-') << "|";
    out << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace duplex
