#include "common/log.hh"

namespace duplex
{

void
logMessage(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage("warn", msg);
}

void
inform(const std::string &msg)
{
    logMessage("info", msg);
}

} // namespace duplex
