/**
 * @file
 * Minimal command-line flag parser for examples and bench binaries.
 *
 * Flags use the form --name=value or --name value; unrecognized flags
 * are fatal so typos do not silently fall back to defaults.
 */

#ifndef DUPLEX_COMMON_ARGPARSE_HH
#define DUPLEX_COMMON_ARGPARSE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace duplex
{

/** Parses --key=value style flags with typed accessors and defaults. */
class ArgParser
{
  public:
    /** Describe a flag so --help can list it. */
    void addFlag(const std::string &name, const std::string &help,
                 const std::string &default_value);

    /**
     * Parse argv. Exits with usage text on --help or on an
     * unrecognized flag.
     */
    void parse(int argc, char **argv);

    /** String value of a flag (default if unset). */
    std::string getString(const std::string &name) const;

    /** Integer value of a flag. */
    std::int64_t getInt(const std::string &name) const;

    /** Floating-point value of a flag. */
    double getDouble(const std::string &name) const;

    /** Boolean value: true/1/yes are true. */
    bool getBool(const std::string &name) const;

  private:
    struct Flag
    {
        std::string help;
        std::string value;

        /** Declared with a true/false default: works as a bare
         *  switch (--verbose means --verbose=true). */
        bool boolean = false;
    };

    std::map<std::string, Flag> flags_;
    std::string program_;

    void usage() const;
};

} // namespace duplex

#endif // DUPLEX_COMMON_ARGPARSE_HH
