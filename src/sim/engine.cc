#include "sim/engine.hh"

#include "common/log.hh"
#include "sim/driver.hh"
#include "sim/registry.hh"
#include "workload/registry.hh"

namespace duplex
{

namespace
{

/** Fans one callback stream out to the attached observers. */
class ObserverMux : public SimObserver
{
  public:
    explicit ObserverMux(const std::vector<SimObserver *> &obs)
        : observers_(obs)
    {
    }

    void onSimBegin(const ServingSystem &system,
                    const SimConfig &config) override
    {
        for (SimObserver *o : observers_)
            o->onSimBegin(system, config);
    }

    void onStage(const StageObservation &obs) override
    {
        for (SimObserver *o : observers_)
            o->onStage(obs);
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        for (SimObserver *o : observers_)
            o->onRequestRetired(request, now);
    }

    void onSimEnd(const SimResult &result) override
    {
        for (SimObserver *o : observers_)
            o->onSimEnd(result);
    }

  private:
    const std::vector<SimObserver *> &observers_;
};

} // namespace

SimulationEngine::SimulationEngine(SimConfig config)
    : config_(std::move(config))
{
}

void
SimulationEngine::addObserver(SimObserver *observer)
{
    panicIf(observer == nullptr, "null SimObserver attached");
    observers_.push_back(observer);
}

SimResult
SimulationEngine::run()
{
    const std::string id = config_.systemName.empty()
                               ? systemId(config_.system)
                               : config_.systemName;
    SystemOptions opts;
    opts.seed = config_.seed;
    const std::unique_ptr<ServingSystem> system =
        makeSystem(id, config_.model, opts);
    return run(*system);
}

SimResult
SimulationEngine::run(ServingSystem &system)
{
    ObserverMux mux(observers_);
    mux.onSimBegin(system, config_);

    if (auto custom = system.runCustomLoop(config_, mux)) {
        mux.onSimEnd(*custom);
        return *custom;
    }

    SimResult result = runBatcherLoop(system, mux);
    mux.onSimEnd(result);
    return result;
}

SimResult
SimulationEngine::runBatcherLoop(ServingSystem &system,
                                 SimObserver &observer)
{
    // The same shared arrival stream every driver loop consumes
    // (sched/arrivals.hh): the workload registry builds the source
    // by name, and the closed/open-loop discipline lives in one
    // place. Streaming: only one lookahead request is ever
    // buffered. The loop body itself lives in DriverLoop
    // (sim/driver.hh) so the fleet layer steps the identical code.
    DriverLoop loop(
        config_, system, observer,
        ArrivalQueue(makeWorkload(config_.workloadIdOrDefault(),
                                  config_.workload),
                     config_.numRequests));
    while (!loop.done())
        loop.step();
    return loop.finish();
}

} // namespace duplex
