#include "sim/engine.hh"

#include <algorithm>

#include "common/log.hh"
#include "sched/batcher.hh"
#include "sim/registry.hh"
#include "workload/registry.hh"

namespace duplex
{

namespace
{

/** Fans one callback stream out to the attached observers. */
class ObserverMux : public SimObserver
{
  public:
    explicit ObserverMux(const std::vector<SimObserver *> &obs)
        : observers_(obs)
    {
    }

    void onSimBegin(const ServingSystem &system,
                    const SimConfig &config) override
    {
        for (SimObserver *o : observers_)
            o->onSimBegin(system, config);
    }

    void onStage(const StageObservation &obs) override
    {
        for (SimObserver *o : observers_)
            o->onStage(obs);
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        for (SimObserver *o : observers_)
            o->onRequestRetired(request, now);
    }

    void onSimEnd(const SimResult &result) override
    {
        for (SimObserver *o : observers_)
            o->onSimEnd(result);
    }

  private:
    const std::vector<SimObserver *> &observers_;
};

} // namespace

SimulationEngine::SimulationEngine(SimConfig config)
    : config_(std::move(config))
{
}

void
SimulationEngine::addObserver(SimObserver *observer)
{
    panicIf(observer == nullptr, "null SimObserver attached");
    observers_.push_back(observer);
}

SimResult
SimulationEngine::run()
{
    const std::string id = config_.systemName.empty()
                               ? systemId(config_.system)
                               : config_.systemName;
    SystemOptions opts;
    opts.seed = config_.seed;
    const std::unique_ptr<ServingSystem> system =
        makeSystem(id, config_.model, opts);
    return run(*system);
}

SimResult
SimulationEngine::run(ServingSystem &system)
{
    ObserverMux mux(observers_);
    mux.onSimBegin(system, config_);

    if (auto custom = system.runCustomLoop(config_, mux)) {
        mux.onSimEnd(*custom);
        return *custom;
    }

    SimResult result = runBatcherLoop(system, mux);
    mux.onSimEnd(result);
    return result;
}

SimResult
SimulationEngine::runBatcherLoop(ServingSystem &system,
                                 SimObserver &observer)
{
    BatcherConfig bcfg;
    bcfg.maxBatch = config_.maxBatch;
    bcfg.maxPrefillsPerStage = config_.maxPrefillsPerStage;
    bcfg.maxKvTokens = system.maxKvTokens();
    // Aggregate-only stages unless the system stripes per-context
    // values (multi-node nodeShare): forming a stage is then
    // O(changes-to-the-batch), not O(batch).
    bcfg.exactStageView = system.needsExactStageView();
    // The same shared arrival stream every driver loop consumes
    // (sched/arrivals.hh): the workload registry builds the source
    // by name, and the closed/open-loop discipline lives in one
    // place. Streaming: only one lookahead request is ever buffered.
    ContinuousBatcher batcher(
        bcfg, ArrivalQueue(makeWorkload(config_.workloadIdOrDefault(),
                                        config_.workload),
                           config_.numRequests));

    // Retirement streaming (the default): finished requests are
    // drained every stage, their latency samples extracted by the
    // accumulator, and the Request — tokenTimes vector included —
    // dropped on the spot. The driver retains no finished
    // requests; only the extracted sample doubles grow (Bounded
    // mode replaces even those with fixed-bin histograms for flat
    // memory). Retained mode keeps the legacy grow-forever vector
    // as the reference path (bit-identical by property test).
    const bool retained =
        config_.metricsMode == MetricsMode::Retained;
    MetricsAccumulator accumulator = makeMetricsAccumulator(
        config_.metricsMode,
        static_cast<std::size_t>(config_.warmupRequests),
        config_.boundedLatency);
    std::vector<Request> drained;

    SimResult result;
    PicoSec now = 0;
    WarmupWindow warmup(config_.warmupStages);
    std::int64_t stages = 0;
    std::size_t retired = 0;
    while (!batcher.allDone() && stages < config_.maxStages) {
        StageShape stage = batcher.formStage(now);
        if (stage.totalTokens() == 0) {
            // Open loop and idle: idleAdvance (sched/arrivals.hh)
            // jumps exactly to the next arrival, with the
            // one-picosecond bump reserved for stalls where the
            // clock would not otherwise move (admission blocked by
            // KV or batch limits with the arrival already in the
            // past) — the no-drift rule is shared with every custom
            // driver loop and pinned by
            // OpenLoopIdleAdvanceJumpsExactlyToArrival.
            const PicoSec arrival = batcher.nextArrival();
            panicIf(arrival < 0, "idle batcher with no arrivals");
            now = idleAdvance(now, arrival);
            // The batcher counted no stage; retry at the new time.
            continue;
        }
        result.peakBatch = std::max(
            result.peakBatch,
            static_cast<int>(stage.agg.numDecode +
                             stage.agg.numPrefill));
        const PicoSec stage_start = now;
        const StageResult sr = system.executeStage(stage);
        now += sr.time;
        batcher.completeStage(now);
        result.totals += sr;
        warmup.onStageCompleted(now, batcher.totalGenerated());
        observer.onStage({stages, stage_start, now, stage, sr,
                          stage.contextTokens()});
        ++stages;
        if (retained) {
            for (; retired < batcher.finished().size(); ++retired)
                observer.onRequestRetired(
                    batcher.finished()[retired], now);
        } else {
            batcher.drainFinished(drained);
            for (const Request &r : drained) {
                observer.onRequestRetired(r, now);
                accumulator.ingest(r);
            }
        }
    }

    result.metrics =
        retained ? collectMetrics(batcher.finished(),
                                  static_cast<std::size_t>(
                                      config_.warmupRequests))
                 : accumulator.takeMetrics();
    if (config_.metricsMode == MetricsMode::Bounded)
        result.boundedLatency =
            std::make_shared<const BoundedLatencyMetrics>(
                accumulator.takeBounded());
    result.generatedTokens = batcher.totalGenerated();
    warmup.finalize(result.metrics, now, batcher.totalGenerated());
    result.metrics.decodingOnlyStages = batcher.decodingOnlyStages();
    result.metrics.mixedStages = batcher.mixedStages();
    return result;
}

} // namespace duplex
