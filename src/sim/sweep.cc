#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/engine.hh"

namespace duplex
{

SweepRunner::SweepRunner(int num_workers)
    : workers_(num_workers)
{
    if (workers_ <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers_ = hw > 0 ? static_cast<int>(hw) : 1;
    }
}

namespace
{

ObservedRun
runOne(const SimConfig &config, const ObserverFactory &factory)
{
    ObservedRun run;
    if (factory)
        run.observers = factory(config);
    SimulationEngine engine(config);
    for (const std::unique_ptr<SimObserver> &o : run.observers)
        engine.addObserver(o.get());
    run.result = engine.run();
    return run;
}

} // namespace

std::vector<SimResult>
SweepRunner::run(const std::vector<SimConfig> &configs) const
{
    std::vector<ObservedRun> runs = runObserved(configs, {});
    std::vector<SimResult> results;
    results.reserve(runs.size());
    for (ObservedRun &r : runs)
        results.push_back(std::move(r.result));
    return results;
}

std::vector<ObservedRun>
SweepRunner::runObserved(const std::vector<SimConfig> &configs,
                         const ObserverFactory &factory) const
{
    std::vector<ObservedRun> results(configs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        tasks.push_back([&results, &configs, &factory, i] {
            results[i] = runOne(configs[i], factory);
        });
    runTasks(tasks);
    return results;
}

void
SweepRunner::runTasks(
    const std::vector<std::function<void()>> &tasks) const
{
    if (tasks.empty())
        return;

    const int pool =
        std::min(workers_, static_cast<int>(tasks.size()));
    if (pool <= 1) {
        for (const std::function<void()> &task : tasks)
            task();
        return;
    }

    // Registry lookups are concurrent reads; every task owns its
    // engines and observers, so workers only share the work queue
    // (tasks must be thread-safe, see sweep.hh).
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size() ||
                failed.load(std::memory_order_relaxed))
                return;
            try {
                tasks[i]();
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (int t = 0; t < pool; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace duplex
