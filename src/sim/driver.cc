#include "sim/driver.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

namespace
{

/** The batcher limits a run derives from its config and system. */
BatcherConfig
batcherConfig(const SimConfig &config, ServingSystem &system)
{
    BatcherConfig bcfg;
    bcfg.maxBatch = config.maxBatch;
    bcfg.maxPrefillsPerStage = config.maxPrefillsPerStage;
    bcfg.maxKvTokens = system.maxKvTokens();
    // Aggregate-only stages unless the system stripes per-context
    // values (multi-node nodeShare): forming a stage is then
    // O(changes-to-the-batch), not O(batch).
    bcfg.exactStageView = system.needsExactStageView();
    bcfg.prefillChunkTokens = config.prefillChunkTokens;
    return bcfg;
}

/**
 * The scheduling policy a run installs. "fcfs" (the default)
 * returns null — the batcher's policy-free fast path, pinned
 * bit-identical to the explicit FcfsPolicy object in
 * tests/sched/test_policy.cc — so default runs never touch the
 * policy machinery at all.
 */
std::unique_ptr<SchedulingPolicy>
driverPolicy(const SimConfig &config)
{
    const std::string &id = config.schedPolicyOrDefault();
    if (id == "fcfs")
        return nullptr;
    return makeSchedulingPolicy(id);
}

} // namespace

DriverLoop::DriverLoop(const SimConfig &config,
                       ServingSystem &system, SimObserver &observer,
                       ArrivalQueue arrivals, PicoSec start)
    : config_(config), system_(system), observer_(observer),
      policy_(driverPolicy(config)),
      pool_(config.prefixCache.enabled()
                ? std::make_unique<PrefixCachePool>(
                      config.prefixCache,
                      static_cast<std::int64_t>(
                          config.model.kvBytesPerToken()))
                : nullptr),
      batcher_(batcherConfig(config, system), std::move(arrivals),
               policy_.get(), pool_.get()),
      // Retirement streaming (the default): finished requests are
      // drained every stage, their latency samples extracted by the
      // accumulator, and the Request — tokenTimes vector included —
      // dropped on the spot. Retained mode keeps the legacy
      // grow-forever vector as the reference path (bit-identical by
      // property test).
      retained_(config.metricsMode == MetricsMode::Retained),
      accumulator_(makeMetricsAccumulator(
          config.metricsMode,
          static_cast<std::size_t>(config.warmupRequests),
          config.boundedLatency)),
      now_(start), warmup_(config.warmupStages)
{
    maxKvTokens_ = system.maxKvTokens();
}

void
DriverLoop::step()
{
    panicIf(done(), "DriverLoop::step on a finished loop");
    StageShape stage = batcher_.formStage(now_);
    if (stage.totalTokens() == 0) {
        // Open loop and idle: idleAdvance (sched/arrivals.hh) jumps
        // exactly to the next arrival, with the one-picosecond bump
        // reserved for stalls where the clock would not otherwise
        // move (admission blocked by KV or batch limits with the
        // arrival already in the past) — the no-drift rule is
        // shared with every custom driver loop and pinned by
        // OpenLoopIdleAdvanceJumpsExactlyToArrival.
        const PicoSec arrival = batcher_.nextArrival();
        panicIf(arrival < 0, "idle batcher with no arrivals");
        now_ = idleAdvance(now_, arrival);
        // The batcher counted no stage; retry at the new time.
        return;
    }
    result_.peakBatch =
        std::max(result_.peakBatch,
                 static_cast<int>(stage.agg.numDecode +
                                  stage.agg.numPrefill));
    const PicoSec stage_start = now_;
    const StageResult sr = system_.executeStage(stage);
    // Degraded-straggler windows scale the stage's wall time; the
    // exact-1.0 guard keeps unfaulted loops bit-identical (PicoSec
    // values can exceed double's 2^53 exactness on long runs).
    PicoSec elapsed = sr.time;
    if (timeScale_ != 1.0)
        elapsed = std::max<PicoSec>(
            1, static_cast<PicoSec>(std::llround(
                   static_cast<double>(sr.time) * timeScale_)));
    now_ += elapsed;
    batcher_.completeStage(now_);
    result_.totals += sr;
    warmup_.onStageCompleted(now_, batcher_.totalGenerated());
    observer_.onStage({stages_, stage_start, now_, stage, sr,
                       stage.contextTokens()});
    ++stages_;
    if (retained_) {
        for (; retiredSeen_ < batcher_.finished().size();
             ++retiredSeen_) {
            observer_.onRequestRetired(
                batcher_.finished()[retiredSeen_], now_);
            // Retirement feedback after the observers: a
            // session source releases the next turn only once
            // the previous one has been fully accounted.
            batcher_.notifyRetired(
                batcher_.finished()[retiredSeen_], now_);
        }
    } else {
        batcher_.drainFinished(drained_);
        for (const Request &r : drained_) {
            observer_.onRequestRetired(r, now_);
            accumulator_.ingest(r);
            batcher_.notifyRetired(r, now_);
        }
    }
}

void
DriverLoop::advanceTo(PicoSec t)
{
    panicIf(!idle(), "DriverLoop::advanceTo with work pending");
    if (t > now_)
        now_ = idleAdvance(now_, t);
}

SimResult
DriverLoop::finish()
{
    panicIf(finished_, "DriverLoop::finish called twice");
    finished_ = true;
    result_.metrics =
        retained_ ? collectMetrics(batcher_.finished(),
                                   static_cast<std::size_t>(
                                       config_.warmupRequests))
                  : accumulator_.takeMetrics();
    if (config_.metricsMode == MetricsMode::Bounded)
        result_.boundedLatency =
            std::make_shared<const BoundedLatencyMetrics>(
                accumulator_.takeBounded());
    result_.generatedTokens = batcher_.totalGenerated();
    result_.preemptions = batcher_.preemptions();
    result_.preemptedTokens = batcher_.preemptedTokens();
    warmup_.finalize(result_.metrics, now_,
                     batcher_.totalGenerated());
    result_.metrics.decodingOnlyStages =
        batcher_.decodingOnlyStages();
    result_.metrics.mixedStages = batcher_.mixedStages();
    if (pool_ != nullptr)
        result_.prefixCache = pool_->metrics();
    return std::move(result_);
}

} // namespace duplex
