/**
 * @file
 * Experiment configuration shared by the simulator entry points.
 */

#ifndef DUPLEX_SIM_EXPERIMENT_HH
#define DUPLEX_SIM_EXPERIMENT_HH

#include <memory>
#include <string>

#include "cluster/cluster.hh"
#include "kvcache/prefix_cache.hh"
#include "sched/metrics.hh"
#include "sim/presets.hh"
#include "workload/source.hh"

namespace duplex
{

/** One end-to-end simulation. */
struct SimConfig
{
    /**
     * Registry id of the serving system to build ("gpu",
     * "duplex-pe-et", ... — see sim/registry.hh). When empty, the
     * deprecated SystemKind enum below picks the system instead.
     */
    std::string systemName;

    /** @deprecated Use systemName; kept for the old entry points. */
    SystemKind system = SystemKind::Gpu;

    ModelConfig model;

    /**
     * Registry id of the workload to stream ("synthetic", "trace",
     * "bursty", ... — see workload/registry.hh). Empty runs the
     * default "synthetic" source, which is bit-identical to the
     * pre-registry RequestGenerator stream.
     */
    std::string workloadName;

    /**
     * The workload parameters. Its WorkloadConfig base is the old
     * synthetic spec (mean lengths, CV, qps, seed), so existing
     * `workload.meanInputLen = ...` call sites are untouched; the
     * extra fields parameterize trace/bursty/diurnal sources.
     */
    WorkloadSpec workload;

    /** The workload id the driver loops should build. */
    const std::string &workloadIdOrDefault() const
    {
        static const std::string kDefault = "synthetic";
        return workloadName.empty() ? kDefault : workloadName;
    }

    /** Stage-level batch limit. */
    int maxBatch = 32;

    /** Requests injected over the run. */
    int numRequests = 128;

    /** Finished requests excluded from latency percentiles. */
    int warmupRequests = 16;

    /** Stage cap; throughput sweeps cut off here. */
    std::int64_t maxStages = 100000;

    /**
     * Stages excluded from the throughput window (batch ramp-up);
     * latency percentiles use warmupRequests instead.
     */
    std::int64_t warmupStages = 40;

    /** Prefills admitted per stage (see BatcherConfig). */
    int maxPrefillsPerStage = 4;

    /**
     * Registry id of the batcher scheduling policy ("fcfs",
     * "ttft-protect", "priority", ... — see sched/policy.hh).
     * Empty runs "fcfs", which takes the batcher's policy-free
     * fast path — bit-identical to the pre-policy simulator.
     * Continuous-batching driver loops only; the split system's
     * custom loop ignores it.
     */
    std::string schedPolicy;

    /** The scheduling-policy id the driver loops should build. */
    const std::string &schedPolicyOrDefault() const
    {
        static const std::string kDefault = "fcfs";
        return schedPolicy.empty() ? kDefault : schedPolicy;
    }

    /**
     * Chunked prefill: max prompt tokens one request runs per
     * stage (see BatcherConfig.prefillChunkTokens); 0 = whole
     * prompt in one stage (the pre-chunking behavior).
     */
    std::int64_t prefillChunkTokens = 0;

    /**
     * How the driver loop retains latency metrics (see
     * sched/metrics.hh). Streaming (default) drains retired
     * requests each stage — bit-identical results at flat memory;
     * Retained is the legacy keep-every-request reference path;
     * Bounded streams into fixed-bin histograms (boundedLatency
     * below) for O(1)-memory campaigns, with approximate
     * percentiles.
     */
    MetricsMode metricsMode = MetricsMode::Streaming;

    /** Histogram shape for MetricsMode::Bounded runs. */
    BoundedSpec boundedLatency;

    /**
     * KV prefix cache (src/kvcache/): disabled by default, in which
     * case no pool is built and every run is bit-identical to the
     * cache-less simulator. Continuous-batching driver loops only;
     * the split system's custom loop ignores it.
     */
    PrefixCacheSpec prefixCache;

    std::uint64_t seed = 7;
};

/** Outcome of one simulation. */
struct SimResult
{
    ServingMetrics metrics; //!< throughput over the measured window
    StageResult totals;     //!< full-run time/energy breakdown

    /**
     * Fixed-bin latency histograms, set only by
     * MetricsMode::Bounded runs (metrics' latency SampleStats stay
     * empty there). Shared so SimResult stays cheap to copy.
     */
    std::shared_ptr<const BoundedLatencyMetrics> boundedLatency;

    /** Tokens generated over the whole run (incl. warm-up). */
    std::int64_t generatedTokens = 0;

    /** Joules per generated token (full run). */
    double energyPerTokenJ() const
    {
        return generatedTokens > 0
                   ? totals.totalEnergyJ() /
                         static_cast<double>(generatedTokens)
                   : 0.0;
    }

    /** Largest batch observed in any stage. */
    int peakBatch = 0;

    /**
     * Decode preemptions the scheduling policy performed, and the
     * generated tokens those evictions discarded (victims restart
     * from prefill). Zero for non-preempting policies.
     */
    std::int64_t preemptions = 0;
    std::int64_t preemptedTokens = 0;

    /**
     * KV prefix-cache counters (src/kvcache/); all-zero when the
     * cache was disabled for the run.
     */
    PrefixCacheMetrics prefixCache;
};

} // namespace duplex

#endif // DUPLEX_SIM_EXPERIMENT_HH
