/**
 * @file
 * Parallel sweep harness: runs independent SimulationEngine
 * configurations concurrently on a small worker pool.
 *
 * Every run builds its own ServingSystem instance from the registry,
 * so runs share no mutable state and the sweep is embarrassingly
 * parallel; results come back in input order, making the figure
 * benches' normalize-against-baseline loops a drop-in migration.
 *
 * Observers ARE supported on parallel runs (PR 5): pass an
 * observer factory and each run gets its own private observer set,
 * returned alongside its SimResult — so sweeps can collect SLO
 * attainment, stage histograms, or any other SimObserver-derived
 * metric without falling back to a serial engine.
 */

#ifndef DUPLEX_SIM_SWEEP_HH
#define DUPLEX_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <vector>

#include "sim/experiment.hh"

namespace duplex
{

class SimObserver;

/**
 * Builds the observers one sweep run attaches; called once per
 * configuration, possibly concurrently from worker threads, so it
 * must be thread-safe (pure construction — no shared mutable
 * state). The returned observers are private to that run and come
 * back, filled, in ObservedRun.observers.
 */
using ObserverFactory =
    std::function<std::vector<std::unique_ptr<SimObserver>>(
        const SimConfig &)>;

/** One sweep run's result plus the observers that watched it. */
struct ObservedRun
{
    SimResult result;
    std::vector<std::unique_ptr<SimObserver>> observers;
};

/** Runs batches of independent simulations on a worker pool. */
class SweepRunner
{
  public:
    /**
     * @param num_workers Worker threads; 0 picks the hardware
     *        concurrency (capped by the batch size per run call).
     */
    explicit SweepRunner(int num_workers = 0);

    /** Worker threads a run() call may spawn. */
    int workers() const { return workers_; }

    /**
     * Run every configuration, one SimulationEngine each, and
     * return the results in the same order. The first exception
     * thrown by any run is rethrown after all workers finish.
     */
    std::vector<SimResult>
    run(const std::vector<SimConfig> &configs) const;

    /**
     * Like run(), but each run attaches the observers @p factory
     * builds for its configuration and returns them (filled) with
     * its result, in input order. A null factory degenerates to
     * plain runs.
     */
    std::vector<ObservedRun>
    runObserved(const std::vector<SimConfig> &configs,
                const ObserverFactory &factory) const;

    /**
     * The generic primitive under run()/runObserved(): execute
     * independent tasks on the worker pool, in input order when the
     * pool degenerates to one worker. Tasks must not share mutable
     * state (each writes its own result slot). The first exception
     * thrown by any task is rethrown after all workers finish —
     * bench_fleet drives whole FleetDriver runs through this.
     */
    void
    runTasks(const std::vector<std::function<void()>> &tasks) const;

  private:
    int workers_;
};

} // namespace duplex

#endif // DUPLEX_SIM_SWEEP_HH
