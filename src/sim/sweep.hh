/**
 * @file
 * Parallel sweep harness: runs independent SimulationEngine
 * configurations concurrently on a small worker pool.
 *
 * Every run builds its own ServingSystem instance from the registry,
 * so runs share no mutable state and the sweep is embarrassingly
 * parallel; results come back in input order, making the figure
 * benches' normalize-against-baseline loops a drop-in migration.
 * Observers are not supported on parallel runs — attach them to a
 * serial SimulationEngine instead.
 */

#ifndef DUPLEX_SIM_SWEEP_HH
#define DUPLEX_SIM_SWEEP_HH

#include <vector>

#include "sim/experiment.hh"

namespace duplex
{

/** Runs batches of independent simulations on a worker pool. */
class SweepRunner
{
  public:
    /**
     * @param num_workers Worker threads; 0 picks the hardware
     *        concurrency (capped by the batch size per run call).
     */
    explicit SweepRunner(int num_workers = 0);

    /** Worker threads a run() call may spawn. */
    int workers() const { return workers_; }

    /**
     * Run every configuration, one SimulationEngine each, and
     * return the results in the same order. The first exception
     * thrown by any run is rethrown after all workers finish.
     */
    std::vector<SimResult>
    run(const std::vector<SimConfig> &configs) const;

  private:
    int workers_;
};

} // namespace duplex

#endif // DUPLEX_SIM_SWEEP_HH
