/**
 * @file
 * The simulation engine: one continuous-batching driver loop for
 * every registered serving system, with an observer API.
 *
 * The engine owns the scheduler loop that used to be duplicated
 * between runSimulation, runSplitSimulation and the benches' hand
 * rolled drivers: it forms stages with the ContinuousBatcher,
 * executes them on a ServingSystem, applies the warm-up-window
 * accounting and collects ServingMetrics. Systems with a
 * non-standard lifecycle (SplitSystem) plug in their own loop via
 * ServingSystem::runCustomLoop and still feed the same observers.
 *
 * Observers (SimObserver) get per-stage and per-request-retire
 * callbacks plus begin/end hooks, so new metrics — stage-time
 * histograms, KV-occupancy traces, expert-routing counts — are
 * drop-in observers (see sim/observers.hh) instead of new driver
 * loops.
 */

#ifndef DUPLEX_SIM_ENGINE_HH
#define DUPLEX_SIM_ENGINE_HH

#include <memory>
#include <vector>

#include "sim/experiment.hh"
#include "sim/serving_system.hh"

namespace duplex
{

/**
 * One device group's slice of a stage, reported by disaggregated
 * systems (prefill/decode split): which group ran the stage, how
 * many devices it spans, how long they computed and how long
 * admission stalled on KV-transfer link waits ahead of the stage.
 */
struct GroupObservation
{
    const char *group = "";    //!< group id ("prefill", "decode")
    int devices = 0;           //!< devices in the group
    PicoSec busy = 0;          //!< group compute time in this stage
    PicoSec linkWait = 0;      //!< admission stall on KV transfers
};

/**
 * What the engine saw while executing one stage.
 *
 * @warning shape, result and groups are borrowed from the driver
 * loop and are valid only for the duration of the onStage callback.
 * An observer that needs them later must copy the fields it uses
 * (as KvOccupancyTrace does), never the whole observation.
 */
struct StageObservation
{
    std::int64_t index;        //!< 0-based stage number
    PicoSec start;             //!< clock when the stage was formed
    PicoSec end;               //!< clock after the stage executed
    const StageShape &shape;   //!< batched stage composition
    const StageResult &result; //!< time/energy breakdown
    std::int64_t kvTokens;     //!< context tokens resident in KV

    /**
     * Per-device-group breakdown, when the driving system is
     * disaggregated; nullptr from the engine's homogeneous loop.
     * Use groupBreakdown() for uniform access.
     */
    const std::vector<GroupObservation> *groups = nullptr;

    /** The per-group slices of this stage (empty if homogeneous). */
    const std::vector<GroupObservation> &groupBreakdown() const
    {
        static const std::vector<GroupObservation> kNone;
        return groups != nullptr ? *groups : kNone;
    }
};

/**
 * Callbacks fired by the engine (and by custom system loops).
 * Default implementations do nothing; override what you need.
 *
 * Ordering guarantee per run: one onSimBegin, then for each stage
 * one onStage followed by the onRequestRetired calls of requests
 * that stage retired, then one onSimEnd.
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    virtual void onSimBegin(const ServingSystem &system,
                            const SimConfig &config)
    {
        (void)system;
        (void)config;
    }

    virtual void onStage(const StageObservation &obs) { (void)obs; }

    virtual void onRequestRetired(const Request &request,
                                  PicoSec now)
    {
        (void)request;
        (void)now;
    }

    virtual void onSimEnd(const SimResult &result) { (void)result; }
};

/** Drives one simulation, fanning callbacks out to observers. */
class SimulationEngine
{
  public:
    explicit SimulationEngine(SimConfig config);

    const SimConfig &config() const { return config_; }

    /** Attach a non-owning observer; call before run(). */
    void addObserver(SimObserver *observer);

    /** Build the configured system from the registry and run. */
    SimResult run();

    /** Run the engine loop on an existing system instance. */
    SimResult run(ServingSystem &system);

  private:
    SimConfig config_;
    std::vector<SimObserver *> observers_;

    SimResult runBatcherLoop(ServingSystem &system,
                             SimObserver &observer);
};

} // namespace duplex

#endif // DUPLEX_SIM_ENGINE_HH
