// Experiment structs are header-only; this translation unit anchors
// the target.
#include "sim/experiment.hh"
