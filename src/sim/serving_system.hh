/**
 * @file
 * The polymorphic serving-system interface.
 *
 * Every evaluated system — the GPU baseline, the Duplex variants,
 * the Bank-PIM hybrids, the Section III-B hetero strawman and the
 * Fig. 16 prefill/decode split — implements ServingSystem, so the
 * SimulationEngine, the benches and the tests can drive any of them
 * through one contract. Systems are created by name through the
 * SystemRegistry (sim/registry.hh); new systems implement this
 * interface and register a factory, nothing else.
 */

#ifndef DUPLEX_SIM_SERVING_SYSTEM_HH
#define DUPLEX_SIM_SERVING_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>

#include "cluster/cluster.hh"
#include "sim/experiment.hh"

namespace duplex
{

class SimObserver;

/** A serving system the simulation engine can drive. */
class ServingSystem
{
  public:
    virtual ~ServingSystem() = default;

    /** Execute one batched stage; deterministic given the seed. */
    virtual StageResult executeStage(const StageShape &stage) = 0;

    /** KV capacity of the whole system. */
    virtual KvBudget kvBudget() const = 0;

    /** Largest context-token count the KV cache can hold. */
    virtual std::int64_t maxKvTokens() const = 0;

    /** Display name for tables and reports (e.g. "Duplex+PE"). */
    virtual const std::string &name() const = 0;

    /** One-line description of the modeled hardware. */
    virtual std::string describe() const = 0;

    /**
     * True when executeStage consumes per-sequence context values
     * (StageShape.decodeContexts) rather than the O(1)
     * StageAggregates. The engine's driver loop asks this before
     * building its scheduler: only systems that answer true pay
     * the per-stage O(batch) walk that fills the vector; everyone
     * else gets the aggregate-only stage view, which the PR-2
     * closed forms price bit-identically. Multi-node clusters
     * (nodeShare striping) are the one in-tree consumer.
     */
    virtual bool needsExactStageView() const { return false; }

    /**
     * Systems whose request lifecycle deviates from the engine's
     * continuous-batching loop (e.g. disaggregated prefill/decode)
     * run their own driver here and return the result; the default
     * nullopt means "use the engine's loop". The observer receives
     * the same callbacks either way.
     */
    virtual std::optional<SimResult>
    runCustomLoop(const SimConfig &config, SimObserver &observer)
    {
        (void)config;
        (void)observer;
        return std::nullopt;
    }
};

/** Homogeneous cluster behind the ServingSystem interface. */
class ClusterSystem : public ServingSystem
{
  public:
    ClusterSystem(std::string name, const ClusterConfig &config);

    StageResult executeStage(const StageShape &stage) override;
    KvBudget kvBudget() const override;
    std::int64_t maxKvTokens() const override;
    const std::string &name() const override { return name_; }
    std::string describe() const override;

    /** Multi-node clusters stripe per-context values (nodeShare). */
    bool needsExactStageView() const override
    {
        return cluster_.config().topo.numNodes > 1;
    }

    /** The underlying cluster, for config-level inspection. */
    const Cluster &cluster() const { return cluster_; }
    Cluster &cluster() { return cluster_; }

  private:
    std::string name_;
    Cluster cluster_;
};

/** Section III-B GPUs + PIM-only devices behind the interface. */
class HeteroSystem : public ServingSystem
{
  public:
    HeteroSystem(std::string name, const HeteroConfig &config);

    StageResult executeStage(const StageShape &stage) override;
    KvBudget kvBudget() const override;
    std::int64_t maxKvTokens() const override;
    const std::string &name() const override { return name_; }
    std::string describe() const override;

  private:
    std::string name_;
    HeteroConfig cfg_;
    HeteroCluster cluster_;
};

} // namespace duplex

#endif // DUPLEX_SIM_SERVING_SYSTEM_HH
