#include "sim/registry.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/split_system.hh"

namespace duplex
{

namespace
{

/** Factory for the homogeneous (Cluster-backed) presets. */
SystemFactory
clusterFactory(SystemKind kind)
{
    return [kind](const ModelConfig &model,
                  const SystemOptions &opts) {
        return std::make_unique<ClusterSystem>(
            systemName(kind),
            makeClusterConfig(kind, model, opts.seed));
    };
}

/** Factory for the Splitwise-style disaggregated variants. */
SystemFactory
splitFactory(std::string display, SplitSpec spec)
{
    return [display = std::move(display),
            spec](const ModelConfig &model,
                  const SystemOptions &opts) {
        return std::make_unique<SplitSystem>(display, model,
                                             opts.seed, spec);
    };
}

void
registerPaperSystems(SystemRegistry &registry)
{
    registry.add("gpu", systemName(SystemKind::Gpu),
                 "H100-class baseline, 4-8 devices per node",
                 clusterFactory(SystemKind::Gpu));
    registry.add("gpu-2x", systemName(SystemKind::Gpu2x),
                 "GPU baseline with twice the devices",
                 clusterFactory(SystemKind::Gpu2x));
    registry.add("duplex", systemName(SystemKind::Duplex),
                 "Logic-PIM low engine, Op/B-driven selection",
                 clusterFactory(SystemKind::Duplex));
    registry.add("duplex-pe", systemName(SystemKind::DuplexPE),
                 "Duplex + expert/attention co-processing",
                 clusterFactory(SystemKind::DuplexPE));
    registry.add("duplex-pe-et",
                 systemName(SystemKind::DuplexPEET),
                 "Duplex + co-processing + tensor-parallel experts",
                 clusterFactory(SystemKind::DuplexPEET));
    registry.add("bank-pim", systemName(SystemKind::BankPim),
                 "hybrid device with a Bank-PIM low engine",
                 clusterFactory(SystemKind::BankPim));
    registry.add("bankgroup-pim",
                 systemName(SystemKind::BankGroupPim),
                 "hybrid device with a BankGroup-PIM low engine",
                 clusterFactory(SystemKind::BankGroupPim));
    registry.add(
        "hetero", systemName(SystemKind::Hetero),
        "2 GPUs + 2 Logic-PIM devices over NVLink (Section III-B)",
        [](const ModelConfig &model, const SystemOptions &opts) {
            return std::make_unique<HeteroSystem>(
                systemName(SystemKind::Hetero),
                makeHeteroConfig(model, opts.seed));
        });
    registry.add(
        "duplex-split", systemName(SystemKind::DuplexSplit),
        "Splitwise-style prefill/decode split (Fig. 16)",
        [](const ModelConfig &model, const SystemOptions &opts) {
            return std::make_unique<SplitSystem>(
                systemName(SystemKind::DuplexSplit), model,
                opts.seed);
        });
    registry.add(
        "duplex-split-contended", "Duplex-Split-C",
        "symmetric split, KV migrations contend FIFO for NVLink",
        splitFactory("Duplex-Split-C",
                     SplitSpec{0, 0, /*contendedKvTransfer=*/true}));
    registry.add(
        "duplex-split-2p6d", "Duplex-Split-2P6D",
        "prefill-light split: 2 prefill + 6 decode devices, "
        "contended KV link",
        splitFactory("Duplex-Split-2P6D", SplitSpec{2, 6, true}));
    registry.add(
        "duplex-split-6p2d", "Duplex-Split-6P2D",
        "prefill-heavy split: 6 prefill + 2 decode devices, "
        "contended KV link",
        splitFactory("Duplex-Split-6P2D", SplitSpec{6, 2, true}));
}

} // namespace

SystemRegistry &
SystemRegistry::instance()
{
    static SystemRegistry *registry = [] {
        auto *r = new SystemRegistry;
        registerPaperSystems(*r);
        return r;
    }();
    return *registry;
}

void
SystemRegistry::add(const std::string &id,
                    const std::string &display,
                    const std::string &summary,
                    SystemFactory factory)
{
    fatalIf(contains(id),
            "SystemRegistry: duplicate system id '" + id + "'");
    fatalIf(!factory,
            "SystemRegistry: null factory for '" + id + "'");
    entries_.push_back(
        {id, display, summary, std::move(factory)});
}

bool
SystemRegistry::contains(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return true;
    return false;
}

const SystemRegistry::Entry &
SystemRegistry::find(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return e;
    std::string known;
    for (const Entry &e : entries_)
        known += (known.empty() ? "" : ", ") + e.id;
    fatal("SystemRegistry: unknown system '" + id +
          "' (known: " + known + ")");
}

std::unique_ptr<ServingSystem>
SystemRegistry::make(const std::string &id,
                     const ModelConfig &model,
                     const SystemOptions &opts) const
{
    return find(id).factory(model, opts);
}

std::vector<std::string>
SystemRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.id);
    std::sort(out.begin(), out.end());
    return out;
}

const std::string &
SystemRegistry::displayName(const std::string &id) const
{
    return find(id).display;
}

const std::string &
SystemRegistry::summary(const std::string &id) const
{
    return find(id).summary;
}

std::unique_ptr<ServingSystem>
makeSystem(const std::string &id, const ModelConfig &model,
           const SystemOptions &opts)
{
    return SystemRegistry::instance().make(id, model, opts);
}

std::vector<std::string>
registeredSystems()
{
    return SystemRegistry::instance().ids();
}

void
registerServingSystem(const std::string &id,
                      const std::string &display,
                      const std::string &summary,
                      SystemFactory factory)
{
    SystemRegistry::instance().add(id, display, summary,
                                   std::move(factory));
}

const char *
systemId(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Gpu:
        return "gpu";
      case SystemKind::Gpu2x:
        return "gpu-2x";
      case SystemKind::Duplex:
        return "duplex";
      case SystemKind::DuplexPE:
        return "duplex-pe";
      case SystemKind::DuplexPEET:
        return "duplex-pe-et";
      case SystemKind::BankPim:
        return "bank-pim";
      case SystemKind::BankGroupPim:
        return "bankgroup-pim";
      case SystemKind::Hetero:
        return "hetero";
      case SystemKind::DuplexSplit:
        return "duplex-split";
    }
    fatal("systemId: unknown SystemKind");
}

} // namespace duplex
