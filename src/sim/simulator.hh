/**
 * @file
 * End-to-end serving simulation: continuous batching scheduler
 * driving a cluster, request lifecycle tracking, and the
 * prefill/decode split system of Section VIII-A.
 */

#ifndef DUPLEX_SIM_SIMULATOR_HH
#define DUPLEX_SIM_SIMULATOR_HH

#include "sim/experiment.hh"

namespace duplex
{

/** Run one simulation on a homogeneous or hetero system. */
SimResult runSimulation(const SimConfig &config);

/**
 * Run the Duplex-Split system (Fig. 16): half the devices dedicate
 * to prefill, half to decode; weights are duplicated across the two
 * groups and KV caches migrate over NVLink after prefill.
 */
SimResult runSplitSimulation(const SimConfig &config);

} // namespace duplex

#endif // DUPLEX_SIM_SIMULATOR_HH
