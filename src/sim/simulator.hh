/**
 * @file
 * Deprecated simulation entry points.
 *
 * The driver loop now lives in SimulationEngine (sim/engine.hh) and
 * systems are built by name through the SystemRegistry
 * (sim/registry.hh). These free functions survive as thin shims for
 * old call sites:
 *
 *     SimConfig c;
 *     c.systemName = "duplex-pe-et";
 *     SimResult r = SimulationEngine(c).run();
 *
 * replaces runSimulation; the split system is just another
 * registered name ("duplex-split"), so runSplitSimulation has no
 * modern counterpart.
 */

#ifndef DUPLEX_SIM_SIMULATOR_HH
#define DUPLEX_SIM_SIMULATOR_HH

#include "sim/engine.hh"
#include "sim/registry.hh"

namespace duplex
{

/**
 * Run one simulation on any system.
 * @deprecated Use SimulationEngine(config).run().
 */
SimResult runSimulation(const SimConfig &config);

/**
 * Run the Duplex-Split system regardless of config.system.
 * @deprecated Use SimulationEngine with systemName "duplex-split".
 */
SimResult runSplitSimulation(const SimConfig &config);

} // namespace duplex

#endif // DUPLEX_SIM_SIMULATOR_HH
