/**
 * @file
 * The Duplex-Split serving system (Fig. 16, Splitwise-style): one
 * device group dedicates to prefill, another to decode; weights are
 * duplicated across the two groups and KV caches migrate over
 * NVLink after prefill.
 *
 * The split is parameterized by SplitSpec:
 *  - asymmetric group sizes (e.g. 1 prefill + 3 decode devices);
 *    the default (0/0) keeps the paper's symmetric half/half split;
 *  - a KV-transfer contention model: when enabled, concurrent
 *    prompt-KV migrations serialize FIFO on the NVLink (LinkQueue)
 *    and delay decode admission, instead of the seed's free
 *    parallel-copy assumption.
 *
 * The driver loop honors workload.qps: with qps > 0 the prefill
 * group consumes the same open-loop Poisson arrival stream the
 * engine loop does (shared ArrivalQueue / idleAdvance semantics in
 * sched/arrivals.hh); with qps <= 0 it runs the paper's closed
 * loop, bit-identical to the pre-SplitSpec implementation.
 *
 * The split lifecycle (two device groups with independent clocks)
 * does not fit the engine's continuous-batching loop, so the system
 * overrides ServingSystem::runCustomLoop with its own driver and
 * feeds the same observer callbacks the engine fires — including
 * the per-group StageObservation breakdown (GroupObservation).
 */

#ifndef DUPLEX_SIM_SPLIT_SYSTEM_HH
#define DUPLEX_SIM_SPLIT_SYSTEM_HH

#include "sim/serving_system.hh"

namespace duplex
{

/** Shape of a disaggregated prefill/decode split. */
struct SplitSpec
{
    /** Prefill-group devices; 0 means half the default topology. */
    int prefillDevices = 0;

    /** Decode-group devices; 0 means half the default topology. */
    int decodeDevices = 0;

    /**
     * When true, concurrent prompt-KV migrations occupy the NVLink
     * for kvBytes/linkBW each and queue FIFO (LinkQueue); when
     * false, every migration starts immediately (the seed model,
     * kept as the default for golden-output compatibility).
     */
    bool contendedKvTransfer = false;
};

/** Disaggregated prefill/decode system over two device groups. */
class SplitSystem : public ServingSystem
{
  public:
    SplitSystem(std::string name, const ModelConfig &model,
                std::uint64_t seed, const SplitSpec &spec = {});

    /**
     * Prefill-only stages run on the prefill group, decode-only
     * stages on the decode group; a mixed stage runs each half on
     * its group and reports the serialized (summed) time.
     */
    StageResult executeStage(const StageShape &stage) override;

    /** KV lives on the decode group only. */
    KvBudget kvBudget() const override;
    std::int64_t maxKvTokens() const override;

    const std::string &name() const override { return name_; }
    std::string describe() const override;

    std::optional<SimResult>
    runCustomLoop(const SimConfig &config,
                  SimObserver &observer) override;

    const SplitSpec &spec() const { return spec_; }
    int prefillDevices() const;
    int decodeDevices() const;

  private:
    std::string name_;
    ModelConfig model_;
    SplitSpec spec_;
    Cluster prefill_;
    Cluster decode_;
    LinkSpec nvlink_;

    static ClusterConfig groupConfig(const ModelConfig &model,
                                     std::uint64_t seed,
                                     int devices);

    /** Devices a 0-valued SplitSpec entry resolves to. */
    static int defaultGroupDevices(const ModelConfig &model);
};

} // namespace duplex

#endif // DUPLEX_SIM_SPLIT_SYSTEM_HH
