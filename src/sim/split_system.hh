/**
 * @file
 * The Duplex-Split serving system (Fig. 16, Splitwise-style): half
 * the devices dedicate to prefill, half to decode; weights are
 * duplicated across the two groups and KV caches migrate over
 * NVLink after prefill.
 *
 * The split lifecycle (two device groups with independent clocks)
 * does not fit the engine's continuous-batching loop, so the system
 * overrides ServingSystem::runCustomLoop with its own driver —
 * extracted verbatim from the old runSplitSimulation — and feeds
 * the same observer callbacks the engine fires.
 */

#ifndef DUPLEX_SIM_SPLIT_SYSTEM_HH
#define DUPLEX_SIM_SPLIT_SYSTEM_HH

#include "sim/serving_system.hh"

namespace duplex
{

/** Disaggregated prefill/decode system over two device groups. */
class SplitSystem : public ServingSystem
{
  public:
    SplitSystem(std::string name, const ModelConfig &model,
                std::uint64_t seed);

    /**
     * Prefill-only stages run on the prefill group, decode-only
     * stages on the decode group; a mixed stage runs each half on
     * its group and reports the serialized (summed) time.
     */
    StageResult executeStage(const StageShape &stage) override;

    /** KV lives on the decode group only. */
    KvBudget kvBudget() const override;
    std::int64_t maxKvTokens() const override;

    const std::string &name() const override { return name_; }
    std::string describe() const override;

    std::optional<SimResult>
    runCustomLoop(const SimConfig &config,
                  SimObserver &observer) override;

  private:
    std::string name_;
    ModelConfig model_;
    Cluster prefill_;
    Cluster decode_;
    LinkSpec nvlink_;

    static ClusterConfig groupConfig(const ModelConfig &model,
                                     std::uint64_t seed);
};

} // namespace duplex

#endif // DUPLEX_SIM_SPLIT_SYSTEM_HH
