/**
 * @file
 * Drop-in observers for the simulation engine: the metrics that
 * used to require a bespoke driver loop are now SimObserver
 * implementations attached with SimulationEngine::addObserver.
 *
 *  - StageTimeHistogram: stage-latency distribution over the run.
 *  - KvOccupancyTrace:   KV-resident tokens over time (capacity
 *                        head-room studies, Fig. 5(c)).
 *  - ProgressPrinter:    periodic progress/trace sink for long
 *                        sweeps; prints to any FILE*.
 */

#ifndef DUPLEX_SIM_OBSERVERS_HH
#define DUPLEX_SIM_OBSERVERS_HH

#include <cstdio>
#include <vector>

#include "common/stats.hh"
#include "sim/engine.hh"

namespace duplex
{

/** Collects the distribution of per-stage execution times. */
class StageTimeHistogram : public SimObserver
{
  public:
    void onStage(const StageObservation &obs) override;

    /** Stage-time samples in milliseconds. */
    const SampleStats &stageMs() const { return stageMs_; }

  private:
    SampleStats stageMs_;
};

/** Records (time, KV tokens resident) per stage. */
class KvOccupancyTrace : public SimObserver
{
  public:
    struct Point
    {
        PicoSec time;
        std::int64_t kvTokens;
    };

    void onStage(const StageObservation &obs) override;

    const std::vector<Point> &points() const { return points_; }

    /** Largest KV-token residency seen in any stage. */
    std::int64_t peakKvTokens() const;

  private:
    std::vector<Point> points_;
};

/** Prints one progress line every @p every stages. */
class ProgressPrinter : public SimObserver
{
  public:
    explicit ProgressPrinter(std::int64_t every = 200,
                             std::FILE *out = stderr)
        : every_(every), out_(out)
    {
    }

    void onSimBegin(const ServingSystem &system,
                    const SimConfig &config) override;
    void onStage(const StageObservation &obs) override;
    void onRequestRetired(const Request &request,
                          PicoSec now) override;
    void onSimEnd(const SimResult &result) override;

  private:
    std::int64_t every_;
    std::FILE *out_;
    std::int64_t retired_ = 0;
};

} // namespace duplex

#endif // DUPLEX_SIM_OBSERVERS_HH
