/**
 * @file
 * Drop-in observers for the simulation engine: the metrics that
 * used to require a bespoke driver loop are now SimObserver
 * implementations attached with SimulationEngine::addObserver.
 *
 *  - StageTimeHistogram:  stage-latency distribution over the run.
 *  - KvOccupancyTrace:    KV-resident tokens over time (capacity
 *                         head-room studies, Fig. 5(c)).
 *  - ExpertRoutingCounts: per-expert token histogram over the run
 *                         (Section VIII-B skew studies).
 *  - GroupUtilization:    per-device-group busy/link-wait totals
 *                         for disaggregated systems (Fig. 16).
 *  - SloAttainment:       per-request TTFT/TBT SLO attainment and
 *                         goodput (tokens from attaining requests
 *                         only) — the metric bursty/diurnal
 *                         workloads are judged by.
 *  - ProgressPrinter:     periodic progress/trace sink for long
 *                         sweeps; prints to any FILE*.
 */

#ifndef DUPLEX_SIM_OBSERVERS_HH
#define DUPLEX_SIM_OBSERVERS_HH

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"
#include "sim/engine.hh"

namespace duplex
{

/** Collects the distribution of per-stage execution times. */
class StageTimeHistogram : public SimObserver
{
  public:
    void onStage(const StageObservation &obs) override;

    /** Stage-time samples in milliseconds. */
    const SampleStats &stageMs() const { return stageMs_; }

  private:
    SampleStats stageMs_;
};

/** Records (time, KV tokens resident) per stage. */
class KvOccupancyTrace : public SimObserver
{
  public:
    struct Point
    {
        PicoSec time;
        std::int64_t kvTokens;
    };

    void onStage(const StageObservation &obs) override;

    const std::vector<Point> &points() const { return points_; }

    /** Largest KV-token residency seen in any stage. */
    std::int64_t peakKvTokens() const;

  private:
    std::vector<Point> points_;
};

/**
 * Accumulates the per-expert token histogram over a run from the
 * expertTokens slice each stage result carries (summed across the
 * stage's MoE layers). Empty for dense models.
 */
class ExpertRoutingCounts : public SimObserver
{
  public:
    void onStage(const StageObservation &obs) override;

    /** Tokens routed to each expert over the whole run. */
    const std::vector<std::int64_t> &tokensPerExpert() const
    {
        return tokensPerExpert_;
    }

    /** Total expert-token assignments (tokens x topK x MoE layers). */
    std::int64_t totalRouted() const;

    /**
     * Hottest / coldest expert load ratio: 1.0 when uniform (or
     * nothing was routed), infinity when some expert got nothing.
     */
    double skew() const;

  private:
    std::vector<std::int64_t> tokensPerExpert_;
};

/**
 * Per-device-group utilization over a run, fed by the
 * GroupObservation breakdown disaggregated systems attach to each
 * StageObservation. Homogeneous systems report no groups, so the
 * observer stays empty for them.
 */
class GroupUtilization : public SimObserver
{
  public:
    struct Group
    {
        std::string name;         //!< group id ("prefill", ...)
        int devices = 0;          //!< devices in the group
        PicoSec busyTime = 0;     //!< total compute time
        PicoSec linkWaitTime = 0; //!< total KV-transfer stalls
        std::int64_t stages = 0;  //!< stages the group executed
    };

    void onStage(const StageObservation &obs) override;
    void onSimEnd(const SimResult &result) override;

    /** Groups seen over the run, in first-seen order. */
    const std::vector<Group> &groups() const { return groups_; }

    /** Lookup by group id; nullptr when the group never ran. */
    const Group *find(std::string_view name) const;

    /** Fraction of the run's elapsed time the group computed. */
    double busyFraction(std::string_view name) const;

  private:
    std::vector<Group> groups_;
    PicoSec elapsed_ = 0;
};

/**
 * Per-request SLO attainment over a run. A request attains the
 * objective when its time-to-first-token meets slo.t2ftMs AND
 * every one of its token gaps meets slo.tbtMs; goodput counts only
 * the tokens of attaining requests, over the span from the first
 * retired request's arrival to the last retirement. This is the
 * per-request view the aggregate ServingMetrics attainment
 * fractions cannot express (a request is only as good as its worst
 * token gap), and the headline number for bursty/diurnal
 * workloads: raw throughput hides the requests a burst starved.
 */
class SloAttainment : public SimObserver
{
  public:
    explicit SloAttainment(SloSpec slo = {}) : slo_(slo) {}

    void onRequestRetired(const Request &request,
                          PicoSec now) override;

    const SloSpec &slo() const { return slo_; }

    /** Requests retired over the run. */
    std::int64_t totalRequests() const { return total_; }

    /** Requests meeting both objectives. */
    std::int64_t attainedRequests() const { return attained_; }

    /** Fraction of requests whose TTFT met the objective. */
    double t2ftAttainment() const;

    // --- warm/cold split (KV prefix cache, src/kvcache/) -------
    // A retirement is "warm" when admission served part of its
    // prompt from the prefix cache (request.cachedTokens > 0).
    // All-cold when the cache is disabled — the split then
    // reproduces the aggregate numbers exactly.

    /** Requests retired with a prefix-cache hit. */
    std::int64_t warmRequests() const { return warmTotal_; }

    /** Requests retired without one (every request, cache off). */
    std::int64_t coldRequests() const
    {
        return total_ - warmTotal_;
    }

    /** TTFT attainment over warm requests (1.0 when none). */
    double warmT2ftAttainment() const;

    /** TTFT attainment over cold requests (1.0 when none). */
    double coldT2ftAttainment() const;

    /** Fraction of requests whose every token gap met the SLO. */
    double tbtAttainment() const;

    /** Fraction of requests meeting both objectives. */
    double attainment() const;

    /** Tokens/s from attaining requests over the retire span. */
    double goodputTokensPerSec() const;

  private:
    SloSpec slo_;
    std::int64_t total_ = 0;
    std::int64_t t2ftOk_ = 0;
    std::int64_t tbtOk_ = 0;
    std::int64_t attained_ = 0;
    std::int64_t goodTokens_ = 0;
    std::int64_t warmTotal_ = 0;
    std::int64_t warmT2ftOk_ = 0;
    PicoSec spanStart_ = -1;
    PicoSec spanEnd_ = -1;
};

/**
 * Warm-vs-cold request split under a KV prefix cache
 * (src/kvcache/): a retirement is "warm" when admission served part
 * of its prompt from the cache (request.cachedTokens > 0), cold
 * otherwise. The headline comparison is the mean TTFT gap — a warm
 * turn prefills only the uncached suffix, so its first token should
 * land strictly earlier than a cold turn's at equal load. With the
 * cache disabled every request is cold and the observer reproduces
 * the plain TTFT mean.
 */
class PrefixCacheStats : public SimObserver
{
  public:
    void onRequestRetired(const Request &request,
                          PicoSec now) override;

    /** Requests retired with / without a prefix-cache hit. */
    std::int64_t warmRequests() const { return warm_; }
    std::int64_t coldRequests() const { return cold_; }

    /** Fraction of retirements that were warm (0 when none). */
    double warmFraction() const;

    /** Prompt tokens served from the cache, over all retirements. */
    std::int64_t cachedTokens() const { return cachedTokens_; }

    /** Mean TTFT over warm / cold retirements (0 when none). */
    double warmT2ftMs() const;
    double coldT2ftMs() const;

  private:
    std::int64_t warm_ = 0;
    std::int64_t cold_ = 0;
    std::int64_t cachedTokens_ = 0;
    double warmT2ftMsSum_ = 0.0;
    double coldT2ftMsSum_ = 0.0;
};

/** Prints one progress line every @p every stages. */
class ProgressPrinter : public SimObserver
{
  public:
    explicit ProgressPrinter(std::int64_t every = 200,
                             std::FILE *out = stderr)
        : every_(every), out_(out)
    {
    }

    void onSimBegin(const ServingSystem &system,
                    const SimConfig &config) override;
    void onStage(const StageObservation &obs) override;
    void onRequestRetired(const Request &request,
                          PicoSec now) override;
    void onSimEnd(const SimResult &result) override;

  private:
    std::int64_t every_;
    std::FILE *out_;
    std::int64_t retired_ = 0;
};

} // namespace duplex

#endif // DUPLEX_SIM_OBSERVERS_HH
