/**
 * @file
 * String-keyed serving-system registry and factory.
 *
 * Systems register an id ("duplex-pe"), a display name
 * ("Duplex+PE"), a one-line summary and a factory; callers build
 * instances with makeSystem(id, model, opts) and enumerate
 * everything registered with registeredSystems(). The registry
 * subsumes the old SystemKind enum + makeClusterConfig /
 * makeHeteroConfig special cases: the nine paper systems are
 * pre-registered, and a new system is one registerServingSystem
 * call — no enum edits, no new entry points.
 */

#ifndef DUPLEX_SIM_REGISTRY_HH
#define DUPLEX_SIM_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/presets.hh"
#include "sim/serving_system.hh"

namespace duplex
{

/** Per-instance knobs a factory may honor. */
struct SystemOptions
{
    std::uint64_t seed = 7;
};

/** Builds one system instance for a model. */
using SystemFactory = std::function<std::unique_ptr<ServingSystem>(
    const ModelConfig &model, const SystemOptions &opts)>;

/** Registry of every serving system the simulator can build. */
class SystemRegistry
{
  public:
    /** The process-wide registry, with the paper systems loaded. */
    static SystemRegistry &instance();

    /** Register a system; re-registering an id is fatal. */
    void add(const std::string &id, const std::string &display,
             const std::string &summary, SystemFactory factory);

    /** True when @p id is registered. */
    bool contains(const std::string &id) const;

    /** Build a system; fatal on an unknown id. */
    std::unique_ptr<ServingSystem>
    make(const std::string &id, const ModelConfig &model,
         const SystemOptions &opts = {}) const;

    /**
     * Registered ids, lexicographically sorted — NOT registration
     * order. Sorted output keeps sweeps and bench tables byte-stable
     * across standard libraries (the g++/clang++ CI matrix diffs
     * them); asserted in tests/sim/test_registry.
     */
    std::vector<std::string> ids() const;

    /** Display name for tables ("Duplex+PE"). */
    const std::string &displayName(const std::string &id) const;

    /** One-line summary for --list-systems style output. */
    const std::string &summary(const std::string &id) const;

  private:
    struct Entry
    {
        std::string id;
        std::string display;
        std::string summary;
        SystemFactory factory;
    };

    std::vector<Entry> entries_;

    const Entry &find(const std::string &id) const;
};

/** Build a registered system (shorthand for the registry). */
std::unique_ptr<ServingSystem>
makeSystem(const std::string &id, const ModelConfig &model,
           const SystemOptions &opts = {});

/** Ids of every registered system. */
std::vector<std::string> registeredSystems();

/** Register a system with the process-wide registry. */
void registerServingSystem(const std::string &id,
                           const std::string &display,
                           const std::string &summary,
                           SystemFactory factory);

/** Registry id of a legacy SystemKind ("duplex-pe-et", ...). */
const char *systemId(SystemKind kind);

} // namespace duplex

#endif // DUPLEX_SIM_REGISTRY_HH
