#include "sim/simulator.hh"

namespace duplex
{

SimResult
runSimulation(const SimConfig &config)
{
    // The engine already falls back to the legacy enum when
    // systemName is empty.
    return SimulationEngine(config).run();
}

SimResult
runSplitSimulation(const SimConfig &config)
{
    SimConfig c = config;
    c.systemName = "duplex-split";
    return SimulationEngine(c).run();
}

} // namespace duplex
