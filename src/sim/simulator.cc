#include "sim/simulator.hh"

#include "common/log.hh"

namespace duplex
{

namespace
{

/** One deprecation notice per shim per process, not per call —
 *  sweeps through the shims would otherwise flood stderr. */
void
warnDeprecatedOnce(bool &warned, const char *old_name,
                   const char *replacement)
{
    if (!warned) {
        warned = true;
        warn(std::string(old_name) +
             " is deprecated; use " + replacement);
    }
}

} // namespace

SimResult
runSimulation(const SimConfig &config)
{
    static bool warned = false;
    warnDeprecatedOnce(warned, "runSimulation",
                       "SimulationEngine(config).run()");
    // The engine already falls back to the legacy enum when
    // systemName is empty.
    return SimulationEngine(config).run();
}

SimResult
runSplitSimulation(const SimConfig &config)
{
    static bool warned = false;
    warnDeprecatedOnce(warned, "runSplitSimulation",
                       "SimulationEngine with systemName "
                       "\"duplex-split\"");
    SimConfig c = config;
    c.systemName = "duplex-split";
    return SimulationEngine(c).run();
}

} // namespace duplex
