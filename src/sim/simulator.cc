#include "sim/simulator.hh"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/log.hh"
#include "sched/batcher.hh"

namespace duplex
{

namespace
{

/** Uniform face over Cluster and HeteroCluster. */
class StageExecutor
{
  public:
    virtual ~StageExecutor() = default;
    virtual StageResult execute(const StageShape &stage) = 0;
    virtual std::int64_t maxKvTokens() const = 0;
};

class HomogeneousExecutor : public StageExecutor
{
  public:
    explicit HomogeneousExecutor(const ClusterConfig &cfg)
        : cluster_(cfg)
    {
    }

    StageResult execute(const StageShape &stage) override
    {
        return cluster_.executeStage(stage);
    }

    std::int64_t maxKvTokens() const override
    {
        return cluster_.maxKvTokens();
    }

  private:
    Cluster cluster_;
};

class HeteroExecutor : public StageExecutor
{
  public:
    explicit HeteroExecutor(const HeteroConfig &cfg)
        : cluster_(cfg)
    {
    }

    StageResult execute(const StageShape &stage) override
    {
        return cluster_.executeStage(stage);
    }

    std::int64_t maxKvTokens() const override
    {
        return cluster_.maxKvTokens();
    }

  private:
    HeteroCluster cluster_;
};

std::unique_ptr<StageExecutor>
makeExecutor(const SimConfig &config)
{
    if (config.system == SystemKind::Hetero) {
        return std::make_unique<HeteroExecutor>(
            makeHeteroConfig(config.model, config.seed));
    }
    return std::make_unique<HomogeneousExecutor>(
        makeClusterConfig(config.system, config.model, config.seed));
}

} // namespace

SimResult
runSimulation(const SimConfig &config)
{
    if (config.system == SystemKind::DuplexSplit)
        return runSplitSimulation(config);

    auto executor = makeExecutor(config);

    RequestGenerator gen(config.workload);
    BatcherConfig bcfg;
    bcfg.maxBatch = config.maxBatch;
    bcfg.maxPrefillsPerStage = config.maxPrefillsPerStage;
    bcfg.maxKvTokens = executor->maxKvTokens();
    bcfg.closedLoop = config.workload.qps <= 0.0;
    ContinuousBatcher batcher(bcfg, gen.take(config.numRequests));

    SimResult result;
    PicoSec now = 0;
    std::int64_t stages = 0;
    PicoSec warmup_end_time = 0;
    std::int64_t warmup_tokens = 0;
    while (!batcher.allDone() && stages < config.maxStages) {
        StageShape stage = batcher.formStage(now);
        if (stage.totalTokens() == 0) {
            // Open loop and idle: jump to the next arrival.
            const PicoSec arrival = batcher.nextArrival();
            panicIf(arrival < 0, "idle batcher with no arrivals");
            now = std::max(now + 1, arrival);
            // The batcher counted no stage; retry at the new time.
            continue;
        }
        result.peakBatch = std::max(
            result.peakBatch,
            static_cast<int>(stage.decodeContexts.size() +
                             stage.prefillLengths.size()));
        const StageResult sr = executor->execute(stage);
        now += sr.time;
        batcher.completeStage(now);
        result.totals += sr;
        ++stages;
        if (stages == config.warmupStages) {
            warmup_end_time = now;
            warmup_tokens = batcher.totalGenerated();
        }
    }

    result.metrics = collectMetrics(
        batcher.finished(),
        static_cast<std::size_t>(config.warmupRequests));
    result.generatedTokens = batcher.totalGenerated();
    if (stages > config.warmupStages) {
        // Throughput over the post-warm-up window only.
        result.metrics.totalTokens =
            batcher.totalGenerated() - warmup_tokens;
        result.metrics.elapsed = now - warmup_end_time;
    } else {
        result.metrics.totalTokens = batcher.totalGenerated();
        result.metrics.elapsed = now;
    }
    result.metrics.decodingOnlyStages = batcher.decodingOnlyStages();
    result.metrics.mixedStages = batcher.mixedStages();
    return result;
}

SimResult
runSplitSimulation(const SimConfig &config)
{
    // Two device groups, each with half the devices and a full copy
    // of the (sharded) weights.
    const SystemTopology full = defaultTopology(config.model, false);
    fatalIf(full.numNodes != 1,
            "split system modeled for single-node configurations");
    const int half = full.devicesPerNode / 2;
    fatalIf(half < 1, "split system needs at least two devices");

    ClusterConfig group = makeClusterConfig(
        SystemKind::DuplexPEET, config.model, config.seed);
    group.topo.devicesPerNode = half;
    if (config.model.numExperts > 0 &&
        config.model.numExperts % half != 0) {
        group.expertPlacement = ExpertPlacement::ExpertTensorParallel;
    }
    Cluster prefill_cluster(group);
    ClusterConfig decode_group = group;
    decode_group.seed = config.seed + 1;
    Cluster decode_cluster(decode_group);

    const LinkSpec nvlink = SystemTopology{}.intraNode;

    RequestGenerator gen(config.workload);
    std::vector<Request> requests = gen.take(config.numRequests);

    // KV capacity of the decode group only.
    const std::int64_t kv_limit = decode_cluster.maxKvTokens();

    struct PendingDecode
    {
        Request req;
        PicoSec readyAt;
    };

    std::deque<Request> waiting(requests.begin(), requests.end());
    std::vector<PendingDecode> transferred;
    std::vector<Request> active;
    std::vector<Request> finished;

    PicoSec prefill_now = 0;
    PicoSec decode_now = 0;
    std::int64_t total_generated = 0;
    SimResult result;
    std::int64_t stages = 0;

    const int max_prefill_batch = 4;

    auto kv_tokens_active = [&]() {
        // Full-lifetime budget, matching the batcher's admission.
        std::int64_t total = 0;
        for (const auto &r : active)
            total += r.inputLen + r.outputLen;
        return total;
    };

    while ((!waiting.empty() || !transferred.empty() ||
            !active.empty()) &&
           stages < config.maxStages) {
        // The prefill group paces itself against decode demand: it
        // keeps a small reserve of ready requests, no more.
        while (!waiting.empty() &&
               static_cast<int>(transferred.size() + active.size()) <
                   config.maxBatch + max_prefill_batch) {
            StageShape stage;
            std::vector<Request> batch;
            while (!waiting.empty() &&
                   static_cast<int>(batch.size()) <
                       max_prefill_batch) {
                Request r = waiting.front();
                waiting.pop_front();
                r.arrival = prefill_now; // closed-loop admission
                stage.prefillLengths.push_back(r.inputLen);
                batch.push_back(std::move(r));
            }
            const StageResult sr = prefill_cluster.executeStage(stage);
            prefill_now += sr.time;
            result.totals += sr;
            ++stages;
            for (auto &r : batch) {
                r.firstToken = prefill_now;
                r.generated = 1;
                r.tokenTimes.push_back(prefill_now);
                ++total_generated;
                // Migrate the prompt KV to the decode group.
                const Bytes kv_bytes =
                    static_cast<Bytes>(r.inputLen) *
                    config.model.kvBytesPerToken();
                const PicoSec ready =
                    prefill_now + p2pTime(kv_bytes, nvlink);
                transferred.push_back({r, ready});
            }
        }

        // Admit transferred requests the decode group can hold.
        std::sort(transferred.begin(), transferred.end(),
                  [](const PendingDecode &a, const PendingDecode &b) {
                      return a.readyAt < b.readyAt;
                  });
        std::int64_t kv = kv_tokens_active();
        for (auto it = transferred.begin();
             it != transferred.end();) {
            if (static_cast<int>(active.size()) >= config.maxBatch)
                break;
            if (it->readyAt > decode_now) {
                if (active.empty()) {
                    decode_now = it->readyAt; // idle jump
                } else {
                    break;
                }
            }
            const std::int64_t need =
                kv + it->req.inputLen + it->req.outputLen +
                static_cast<std::int64_t>(active.size()) + 1;
            if (need > kv_limit) {
                fatalIf(active.empty(),
                        "split system: one request's KV exceeds the "
                        "decode group's capacity");
                break;
            }
            kv += it->req.contextLen();
            active.push_back(it->req);
            it = transferred.erase(it);
        }

        if (active.empty()) {
            if (transferred.empty() && waiting.empty())
                break;
            continue;
        }

        // One decode-only stage.
        StageShape stage;
        for (const auto &r : active)
            stage.decodeContexts.push_back(r.contextLen());
        const StageResult sr = decode_cluster.executeStage(stage);
        decode_now += sr.time;
        result.totals += sr;
        ++stages;

        std::vector<Request> still;
        still.reserve(active.size());
        for (auto &r : active) {
            r.generated += 1;
            r.tokenTimes.push_back(decode_now);
            ++total_generated;
            if (r.done()) {
                r.finished = decode_now;
                finished.push_back(r);
            } else {
                still.push_back(std::move(r));
            }
        }
        active = std::move(still);
        result.peakBatch = std::max(
            result.peakBatch,
            static_cast<int>(stage.decodeContexts.size()));
    }

    result.metrics = collectMetrics(
        finished, static_cast<std::size_t>(config.warmupRequests));
    result.generatedTokens = total_generated;
    result.metrics.totalTokens = total_generated;
    result.metrics.elapsed = std::max(prefill_now, decode_now);
    result.metrics.decodingOnlyStages = stages;
    result.metrics.mixedStages = 0;
    return result;
}

} // namespace duplex
