/**
 * @file
 * The continuous-batching driver loop as a steppable object.
 *
 * SimulationEngine::run used to own this loop outright; the fleet
 * layer (src/fleet/) needs to interleave many instances' loops over
 * one shared arrival stream, stepping whichever instance's clock is
 * furthest behind. DriverLoop is that extraction: one object holds
 * the batcher, the warm-up window, the metrics accumulator and the
 * clock of one instance's run, and exposes the loop body as step().
 * The engine's single-instance run is now literally
 * `while (!loop.done()) loop.step(); return loop.finish();`, so the
 * fleet's per-instance behavior cannot diverge from the engine's —
 * the FleetDriver golden-equivalence test pins a 1-instance fleet
 * to the bare engine bit-for-bit.
 *
 * Arrival feeding comes in two flavors: the engine constructs the
 * loop over the workload registry's shared stream (the PR-4
 * contract), while a fleet router constructs it over an empty
 * push-fed ArrivalQueue and delivers routed requests through
 * pushArrival() as their arrival times come due.
 */

#ifndef DUPLEX_SIM_DRIVER_HH
#define DUPLEX_SIM_DRIVER_HH

#include <memory>
#include <vector>

#include "sched/batcher.hh"
#include "sched/metrics.hh"
#include "sched/policy.hh"
#include "sim/engine.hh"

namespace duplex
{

/** One instance's continuous-batching run, steppable stage by
 *  stage. Construct, step() until done(), then finish() once. */
class DriverLoop
{
  public:
    /**
     * @param config    The run configuration (metrics mode, stage
     *                  and warm-up limits, batch caps).
     * @param system    The serving system executing stages; must
     *                  outlive the loop.
     * @param observer  Receives onStage/onRequestRetired callbacks;
     *                  must outlive the loop. begin/end hooks stay
     *                  with the caller (the engine and the fleet
     *                  driver fire their own).
     * @param arrivals  The request stream: the engine passes the
     *                  registry-built shared stream, a fleet router
     *                  passes ArrivalQueue(closed_loop) and feeds
     *                  pushArrival().
     * @param start     Clock origin; a fleet instance spun up
     *                  mid-run starts at its provisioning time.
     */
    DriverLoop(const SimConfig &config, ServingSystem &system,
               SimObserver &observer, ArrivalQueue arrivals,
               PicoSec start = 0);

    /** True when no request is pending or active in the batcher. */
    bool idle() const { return batcher_.allDone(); }

    /** True when the run's stage budget is exhausted. */
    bool stageCapped() const
    {
        return stages_ >= config_.maxStages;
    }

    /** Nothing left to step (batcher drained or stage-capped). */
    bool done() const { return idle() || stageCapped(); }

    /** The instance clock: end of the last executed stage. */
    PicoSec now() const { return now_; }

    /** Stages executed so far (empty forming attempts excluded). */
    std::int64_t stages() const { return stages_; }

    /**
     * One loop iteration: form a stage at the current clock and
     * execute it, or — when nothing is admissible — advance the
     * clock by the shared idleAdvance rule. Panics when done().
     */
    void step();

    /**
     * Advance an idle instance's clock toward @p t (idleAdvance
     * rule, never past an executable stage). The fleet driver uses
     * this to march an empty instance up to the next arrival it
     * might be routed; the engine never needs it (its batcher holds
     * the whole stream, so step() sees every arrival).
     */
    void advanceTo(PicoSec t);

    /** Collect the run's SimResult; call exactly once, when done. */
    SimResult finish();

    // ---- fleet-router hooks -----------------------------------

    /** Deliver one routed request (push-fed arrival queues only). */
    void pushArrival(Request r) { batcher_.pushArrival(std::move(r)); }

    /**
     * Fail-stop abort (the fleet crash path): move every queued and
     * active request into @p out (appending; queued first, then the
     * batch in admission order) and leave the loop idle at its
     * current clock. The evicted requests keep their lifecycle
     * state for lost-work accounting but produce no metric samples
     * and no onRequestRetired callbacks — they did not finish here.
     * Never call mid-stage (between formStage and completeStage;
     * impossible from outside, step() is atomic).
     */
    void evictAll(std::vector<Request> &out)
    {
        batcher_.evictAll(out);
    }

    /**
     * Proactive-drain eviction (the fleet drain path): move only
     * the QUEUED requests into @p out (arrival order) and leave the
     * active batch running. The migrated requests lost no work —
     * they were never admitted — so the router can re-route them
     * without retry accounting.
     */
    void evictQueued(std::vector<Request> &out)
    {
        batcher_.evictQueued(out);
    }

    /**
     * Crash-path cache invalidation: evict every entry of the
     * instance's KV prefix cache (ledger-closed — flushed bytes
     * count as evictions). The HBM behind the cache died with the
     * instance, so post-rejoin lookups must all miss. No-op when
     * the cache is disabled.
     */
    void flushPrefixCache()
    {
        if (pool_ != nullptr)
            pool_->flush();
    }

    /**
     * Stage-time multiplier (degraded-straggler windows): stages
     * executed while the scale is not exactly 1.0 take
     * llround(time * scale) instead. The 1.0 path is bit-identical
     * to a loop that never heard of scaling — the no-fault golden
     * contract.
     */
    void setTimeScale(double scale)
    {
        panicIf(scale <= 0.0, "DriverLoop: time scale must be > 0");
        timeScale_ = scale;
    }

    double timeScale() const { return timeScale_; }

    /** Requests routed but not yet admitted into the batch. */
    std::size_t queueDepth() const { return batcher_.pendingCount(); }

    /** Requests currently being served. */
    std::size_t activeCount() const { return batcher_.activeCount(); }

    /**
     * Live full-lifetime KV commitment of the active batch — the
     * PR-5 incremental sum the least-loaded routing policy reads.
     */
    std::int64_t activeLifetimeKv() const
    {
        return batcher_.activeLifetimeKv();
    }

    /** KV capacity of the instance's serving system. */
    std::int64_t maxKvTokens() const { return maxKvTokens_; }

  private:
    SimConfig config_;
    ServingSystem &system_;
    SimObserver &observer_;

    /**
     * The scheduling policy config_.schedPolicy names, built from
     * the SchedulingPolicyRegistry; null for "fcfs" (the default),
     * which runs the batcher's policy-free fast path. Declared
     * before batcher_ — the batcher borrows the raw pointer.
     */
    std::unique_ptr<SchedulingPolicy> policy_;

    /**
     * The KV prefix cache config_.prefixCache describes; null when
     * the cache is disabled (the default — the batcher then runs
     * its cache-less path bit-for-bit). Declared before batcher_ —
     * the batcher borrows the raw pointer. Per-loop, so every fleet
     * instance gets its own pool (cache locality is exactly what
     * session-affinity routing buys).
     */
    std::unique_ptr<PrefixCachePool> pool_;

    ContinuousBatcher batcher_;
    bool retained_;
    MetricsAccumulator accumulator_;
    std::vector<Request> drained_;
    SimResult result_;
    PicoSec now_;
    WarmupWindow warmup_;
    std::int64_t stages_ = 0;
    std::size_t retiredSeen_ = 0;
    std::int64_t maxKvTokens_ = 0;
    double timeScale_ = 1.0;
    bool finished_ = false;
};

} // namespace duplex

#endif // DUPLEX_SIM_DRIVER_HH
