/**
 * @file
 * System presets (Section VI): the cluster-level configurations
 * behind the registered serving systems.
 *
 * Default device counts: Mixtral/OPT/Llama3 one node of four
 * devices; GLaM one node of eight; Grok1 two nodes of eight. The
 * 2xGPU comparison doubles devices by first filling nodes to eight,
 * then adding nodes.
 *
 * To *run* a system, prefer the string-keyed SystemRegistry
 * (sim/registry.hh) over the SystemKind enum: makeSystem("duplex")
 * builds a ready ServingSystem, and new systems register without
 * touching this enum. The builders below remain the config layer
 * the registry factories (and the ablation studies, which tweak
 * individual fields) are written against.
 */

#ifndef DUPLEX_SIM_PRESETS_HH
#define DUPLEX_SIM_PRESETS_HH

#include <string>

#include "cluster/cluster.hh"

namespace duplex
{

/** Evaluated serving systems. */
enum class SystemKind
{
    Gpu,          //!< H100-class baseline
    Gpu2x,        //!< twice the devices
    Duplex,       //!< engine selection only (Fig. 10(a)/(b))
    DuplexPE,     //!< + expert/attention co-processing
    DuplexPEET,   //!< + tensor-parallel experts
    BankPim,      //!< hybrid device with Bank-PIM low engine
    BankGroupPim, //!< hybrid device with BankGroup-PIM low engine
    Hetero,       //!< 2 GPUs + 2 Logic-PIM devices (Section III-B)
    DuplexSplit,  //!< Splitwise-style prefill/decode split (Fig. 16)
};

/** Name for reporting. */
const char *systemName(SystemKind kind);

/** Device count defaults per model. */
SystemTopology defaultTopology(const ModelConfig &model,
                               bool doubled = false);

/**
 * Cluster configuration for a homogeneous system. Not valid for
 * Hetero / DuplexSplit (those have dedicated builders).
 */
ClusterConfig makeClusterConfig(SystemKind kind,
                                const ModelConfig &model,
                                std::uint64_t seed = 7);

/**
 * Registry-id flavor of makeClusterConfig ("gpu", "duplex-pe-et",
 * ...) for callers that tweak config fields (gate policy, ablation
 * studies) before building the Cluster themselves — everything
 * else should go through makeSystem. Fatal for ids without a
 * homogeneous cluster config (hetero, the split variants).
 */
ClusterConfig makeClusterConfig(const std::string &system_id,
                                const ModelConfig &model,
                                std::uint64_t seed = 7);

/** Hetero system: GPUs + PIM-only devices over NVLink. */
HeteroConfig makeHeteroConfig(const ModelConfig &model,
                              std::uint64_t seed = 7);

} // namespace duplex

#endif // DUPLEX_SIM_PRESETS_HH
