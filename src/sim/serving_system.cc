#include "sim/serving_system.hh"

#include <sstream>

namespace duplex
{

ClusterSystem::ClusterSystem(std::string name,
                             const ClusterConfig &config)
    : name_(std::move(name)), cluster_(config)
{
}

StageResult
ClusterSystem::executeStage(const StageShape &stage)
{
    return cluster_.executeStage(stage);
}

KvBudget
ClusterSystem::kvBudget() const
{
    return cluster_.kvBudget();
}

std::int64_t
ClusterSystem::maxKvTokens() const
{
    return cluster_.maxKvTokens();
}

std::string
ClusterSystem::describe() const
{
    const ClusterConfig &cfg = cluster_.config();
    std::ostringstream out;
    out << name_ << ": " << cfg.topo.numNodes << " node(s) x "
        << cfg.topo.devicesPerNode << " device(s)";
    if (cfg.deviceSpec.hasLowEngine)
        out << ", Logic-PIM low engine"
            << (cfg.deviceSpec.coProcessing ? " + co-processing"
                                            : "");
    return out.str();
}

HeteroSystem::HeteroSystem(std::string name,
                           const HeteroConfig &config)
    : name_(std::move(name)), cfg_(config), cluster_(config)
{
}

StageResult
HeteroSystem::executeStage(const StageShape &stage)
{
    return cluster_.executeStage(stage);
}

KvBudget
HeteroSystem::kvBudget() const
{
    return cluster_.kvBudget();
}

std::int64_t
HeteroSystem::maxKvTokens() const
{
    return cluster_.maxKvTokens();
}

std::string
HeteroSystem::describe() const
{
    std::ostringstream out;
    out << name_ << ": " << cfg_.numGpus << " GPU(s) + "
        << cfg_.numPimDevices
        << " Logic-PIM device(s), KV on the PIM side";
    return out.str();
}

} // namespace duplex
