#include "sim/observers.hh"

#include <algorithm>

namespace duplex
{

void
StageTimeHistogram::onStage(const StageObservation &obs)
{
    stageMs_.add(psToMs(obs.result.time));
}

void
KvOccupancyTrace::onStage(const StageObservation &obs)
{
    points_.push_back({obs.end, obs.kvTokens});
}

std::int64_t
KvOccupancyTrace::peakKvTokens() const
{
    std::int64_t peak = 0;
    for (const Point &p : points_)
        peak = std::max(peak, p.kvTokens);
    return peak;
}

void
ProgressPrinter::onSimBegin(const ServingSystem &system,
                            const SimConfig &config)
{
    retired_ = 0;
    std::fprintf(out_, "[sim] %s: %d requests, max batch %d\n",
                 system.describe().c_str(), config.numRequests,
                 config.maxBatch);
}

void
ProgressPrinter::onStage(const StageObservation &obs)
{
    if (every_ > 0 && (obs.index + 1) % every_ == 0) {
        std::fprintf(out_,
                     "[sim] stage %lld: t=%.1f ms, batch %zu+%zu, "
                     "%lld requests done\n",
                     static_cast<long long>(obs.index + 1),
                     psToMs(obs.end),
                     obs.shape.decodeContexts.size(),
                     obs.shape.prefillLengths.size(),
                     static_cast<long long>(retired_));
    }
}

void
ProgressPrinter::onRequestRetired(const Request &request,
                                  PicoSec now)
{
    (void)request;
    (void)now;
    ++retired_;
}

void
ProgressPrinter::onSimEnd(const SimResult &result)
{
    std::fprintf(out_,
                 "[sim] done: %lld tokens, %.0f tok/s, peak batch "
                 "%d\n",
                 static_cast<long long>(result.generatedTokens),
                 result.metrics.throughputTokensPerSec(),
                 result.peakBatch);
}

} // namespace duplex
