#include "sim/observers.hh"

#include <algorithm>
#include <limits>

namespace duplex
{

void
StageTimeHistogram::onStage(const StageObservation &obs)
{
    stageMs_.add(psToMs(obs.result.time));
}

void
KvOccupancyTrace::onStage(const StageObservation &obs)
{
    points_.push_back({obs.end, obs.kvTokens});
}

std::int64_t
KvOccupancyTrace::peakKvTokens() const
{
    std::int64_t peak = 0;
    for (const Point &p : points_)
        peak = std::max(peak, p.kvTokens);
    return peak;
}

void
ExpertRoutingCounts::onStage(const StageObservation &obs)
{
    const std::vector<std::int64_t> &stage_tokens =
        obs.result.expertTokens;
    if (tokensPerExpert_.size() < stage_tokens.size())
        tokensPerExpert_.resize(stage_tokens.size(), 0);
    for (std::size_t e = 0; e < stage_tokens.size(); ++e)
        tokensPerExpert_[e] += stage_tokens[e];
}

std::int64_t
ExpertRoutingCounts::totalRouted() const
{
    std::int64_t total = 0;
    for (auto t : tokensPerExpert_)
        total += t;
    return total;
}

double
ExpertRoutingCounts::skew() const
{
    if (tokensPerExpert_.empty())
        return 1.0;
    const auto [lo, hi] = std::minmax_element(
        tokensPerExpert_.begin(), tokensPerExpert_.end());
    if (*hi == 0)
        return 1.0; // nothing routed: trivially uniform
    if (*lo == 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(*hi) / static_cast<double>(*lo);
}

void
GroupUtilization::onStage(const StageObservation &obs)
{
    for (const GroupObservation &g : obs.groupBreakdown()) {
        Group *slot = nullptr;
        for (Group &have : groups_) {
            if (have.name == g.group) {
                slot = &have;
                break;
            }
        }
        if (slot == nullptr) {
            groups_.push_back({g.group, g.devices, 0, 0, 0});
            slot = &groups_.back();
        }
        slot->busyTime += g.busy;
        slot->linkWaitTime += g.linkWait;
        ++slot->stages;
    }
}

void
GroupUtilization::onSimEnd(const SimResult &result)
{
    elapsed_ = result.metrics.elapsed;
}

const GroupUtilization::Group *
GroupUtilization::find(std::string_view name) const
{
    for (const Group &g : groups_)
        if (g.name == name)
            return &g;
    return nullptr;
}

double
GroupUtilization::busyFraction(std::string_view name) const
{
    const Group *g = find(name);
    if (g == nullptr || elapsed_ <= 0)
        return 0.0;
    return static_cast<double>(g->busyTime) /
           static_cast<double>(elapsed_);
}

void
SloAttainment::onRequestRetired(const Request &request,
                                PicoSec now)
{
    ++total_;
    const bool t2ft_ok =
        request.firstToken >= 0 &&
        psToMs(request.firstToken - request.arrival) <= slo_.t2ftMs;
    bool tbt_ok = true;
    for (std::size_t t = 1; t < request.tokenTimes.size(); ++t) {
        if (psToMs(request.tokenTimes[t] -
                   request.tokenTimes[t - 1]) > slo_.tbtMs) {
            tbt_ok = false;
            break;
        }
    }
    t2ftOk_ += t2ft_ok ? 1 : 0;
    tbtOk_ += tbt_ok ? 1 : 0;
    if (request.cachedTokens > 0) {
        ++warmTotal_;
        warmT2ftOk_ += t2ft_ok ? 1 : 0;
    }
    if (t2ft_ok && tbt_ok) {
        ++attained_;
        goodTokens_ += request.generated;
    }
    if (spanStart_ < 0 || request.arrival < spanStart_)
        spanStart_ = request.arrival;
    spanEnd_ = std::max(spanEnd_, now);
}

double
SloAttainment::t2ftAttainment() const
{
    return total_ > 0 ? static_cast<double>(t2ftOk_) /
                            static_cast<double>(total_)
                      : 1.0;
}

double
SloAttainment::tbtAttainment() const
{
    return total_ > 0 ? static_cast<double>(tbtOk_) /
                            static_cast<double>(total_)
                      : 1.0;
}

double
SloAttainment::attainment() const
{
    return total_ > 0 ? static_cast<double>(attained_) /
                            static_cast<double>(total_)
                      : 1.0;
}

double
SloAttainment::warmT2ftAttainment() const
{
    return warmTotal_ > 0 ? static_cast<double>(warmT2ftOk_) /
                                static_cast<double>(warmTotal_)
                          : 1.0;
}

double
SloAttainment::coldT2ftAttainment() const
{
    const std::int64_t cold = coldRequests();
    return cold > 0 ? static_cast<double>(t2ftOk_ - warmT2ftOk_) /
                          static_cast<double>(cold)
                    : 1.0;
}

double
SloAttainment::goodputTokensPerSec() const
{
    const PicoSec span = spanEnd_ - spanStart_;
    if (total_ == 0 || span <= 0)
        return 0.0;
    return static_cast<double>(goodTokens_) / psToSec(span);
}

void
PrefixCacheStats::onRequestRetired(const Request &request,
                                   PicoSec now)
{
    (void)now;
    // Requests that never prefilled here (evicted mid-flight) carry
    // no first token; skip them rather than skew the means.
    if (request.firstToken < 0)
        return;
    const double t2ft =
        psToMs(request.firstToken - request.arrival);
    if (request.cachedTokens > 0) {
        ++warm_;
        cachedTokens_ += request.cachedTokens;
        warmT2ftMsSum_ += t2ft;
    } else {
        ++cold_;
        coldT2ftMsSum_ += t2ft;
    }
}

double
PrefixCacheStats::warmFraction() const
{
    const std::int64_t total = warm_ + cold_;
    return total > 0 ? static_cast<double>(warm_) /
                           static_cast<double>(total)
                     : 0.0;
}

double
PrefixCacheStats::warmT2ftMs() const
{
    return warm_ > 0 ? warmT2ftMsSum_ / static_cast<double>(warm_)
                     : 0.0;
}

double
PrefixCacheStats::coldT2ftMs() const
{
    return cold_ > 0 ? coldT2ftMsSum_ / static_cast<double>(cold_)
                     : 0.0;
}

void
ProgressPrinter::onSimBegin(const ServingSystem &system,
                            const SimConfig &config)
{
    retired_ = 0;
    std::fprintf(out_, "[sim] %s: %d requests, max batch %d\n",
                 system.describe().c_str(), config.numRequests,
                 config.maxBatch);
}

void
ProgressPrinter::onStage(const StageObservation &obs)
{
    if (every_ > 0 && (obs.index + 1) % every_ == 0) {
        // decodeTokens(), not decodeContexts.size(): the default
        // stage view is aggregate-only.
        std::fprintf(out_,
                     "[sim] stage %lld: t=%.1f ms, batch %lld+%zu, "
                     "%lld requests done\n",
                     static_cast<long long>(obs.index + 1),
                     psToMs(obs.end),
                     static_cast<long long>(
                         obs.shape.decodeTokens()),
                     obs.shape.prefillLengths.size(),
                     static_cast<long long>(retired_));
    }
}

void
ProgressPrinter::onRequestRetired(const Request &request,
                                  PicoSec now)
{
    (void)request;
    (void)now;
    ++retired_;
}

void
ProgressPrinter::onSimEnd(const SimResult &result)
{
    std::fprintf(out_,
                 "[sim] done: %lld tokens, %.0f tok/s, peak batch "
                 "%d\n",
                 static_cast<long long>(result.generatedTokens),
                 result.metrics.throughputTokensPerSec(),
                 result.peakBatch);
}

} // namespace duplex
