#include "sim/presets.hh"

#include <utility>

#include "common/log.hh"

namespace duplex
{

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Gpu:
        return "GPU";
      case SystemKind::Gpu2x:
        return "2xGPU";
      case SystemKind::Duplex:
        return "Duplex";
      case SystemKind::DuplexPE:
        return "Duplex+PE";
      case SystemKind::DuplexPEET:
        return "Duplex+PE+ET";
      case SystemKind::BankPim:
        return "Bank-PIM";
      case SystemKind::BankGroupPim:
        return "BankGroup-PIM";
      case SystemKind::Hetero:
        return "Hetero";
      case SystemKind::DuplexSplit:
        return "Duplex-Split";
      default:
        return "?";
    }
}

SystemTopology
defaultTopology(const ModelConfig &model, bool doubled)
{
    SystemTopology topo;
    int devices = 4;
    if (model.name == "GLaM")
        devices = 8;
    else if (model.name == "Grok1")
        devices = 16;
    if (doubled)
        devices *= 2;
    topo.devicesPerNode = std::min(devices, 8);
    topo.numNodes = (devices + 7) / 8;
    return topo;
}

ClusterConfig
makeClusterConfig(SystemKind kind, const ModelConfig &model,
                  std::uint64_t seed)
{
    const HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();

    ClusterConfig cfg;
    cfg.model = model;
    cfg.seed = seed;
    cfg.topo = defaultTopology(model, kind == SystemKind::Gpu2x);
    cfg.expertPlacement = ExpertPlacement::ExpertParallel;

    switch (kind) {
      case SystemKind::Gpu:
      case SystemKind::Gpu2x:
        cfg.deviceSpec = h100DeviceSpec(timing, cal);
        break;
      case SystemKind::Duplex:
        cfg.deviceSpec = duplexDeviceSpec(timing, cal, false);
        break;
      case SystemKind::DuplexPE:
        cfg.deviceSpec = duplexDeviceSpec(timing, cal, true);
        break;
      case SystemKind::DuplexPEET:
        cfg.deviceSpec = duplexDeviceSpec(timing, cal, true);
        if (model.numExperts > 0)
            cfg.expertPlacement =
                ExpertPlacement::ExpertTensorParallel;
        break;
      case SystemKind::BankPim:
        cfg.deviceSpec = pimVariantDeviceSpec(PimVariant::BankPim,
                                              timing, cal, true);
        if (model.numExperts > 0)
            cfg.expertPlacement =
                ExpertPlacement::ExpertTensorParallel;
        break;
      case SystemKind::BankGroupPim:
        cfg.deviceSpec = pimVariantDeviceSpec(
            PimVariant::BankGroupPim, timing, cal, true);
        if (model.numExperts > 0)
            cfg.expertPlacement =
                ExpertPlacement::ExpertTensorParallel;
        break;
      default:
        fatal("makeClusterConfig: system needs a dedicated builder");
    }
    return cfg;
}

ClusterConfig
makeClusterConfig(const std::string &system_id,
                  const ModelConfig &model, std::uint64_t seed)
{
    static const std::pair<const char *, SystemKind> kIdToKind[] = {
        {"gpu", SystemKind::Gpu},
        {"gpu-2x", SystemKind::Gpu2x},
        {"duplex", SystemKind::Duplex},
        {"duplex-pe", SystemKind::DuplexPE},
        {"duplex-pe-et", SystemKind::DuplexPEET},
        {"bank-pim", SystemKind::BankPim},
        {"bankgroup-pim", SystemKind::BankGroupPim},
    };
    for (const auto &[id, kind] : kIdToKind)
        if (system_id == id)
            return makeClusterConfig(kind, model, seed);
    fatal("makeClusterConfig: no homogeneous cluster config for '" +
          system_id + "'");
}

HeteroConfig
makeHeteroConfig(const ModelConfig &model, std::uint64_t seed)
{
    const HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();

    HeteroConfig cfg;
    cfg.model = model;
    cfg.seed = seed;
    cfg.numGpus = 2;
    cfg.numPimDevices = 2;
    cfg.gpuSpec = h100DeviceSpec(timing, cal);
    cfg.pimSpec = duplexDeviceSpec(timing, cal, false);
    cfg.link = SystemTopology{}.intraNode;
    return cfg;
}

} // namespace duplex
