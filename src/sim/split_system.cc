#include "sim/split_system.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "sched/arrivals.hh"
#include "sim/engine.hh"
#include "workload/registry.hh"

namespace duplex
{

int
SplitSystem::defaultGroupDevices(const ModelConfig &model)
{
    // The paper's symmetric split: half the devices per group.
    const int half = defaultTopology(model, false).devicesPerNode / 2;
    fatalIf(half < 1, "split system needs at least two devices");
    return half;
}

ClusterConfig
SplitSystem::groupConfig(const ModelConfig &model,
                         std::uint64_t seed, int devices)
{
    // Each group gets its device count and a full copy of the
    // (sharded) weights.
    fatalIf(defaultTopology(model, false).numNodes != 1,
            "split system modeled for single-node configurations");
    fatalIf(devices < 1, "split group needs at least one device");
    ClusterConfig group =
        makeClusterConfig(SystemKind::DuplexPEET, model, seed);
    group.topo.numNodes = 1;
    group.topo.devicesPerNode = devices;
    if (model.numExperts > 0 && model.numExperts % devices != 0) {
        group.expertPlacement = ExpertPlacement::ExpertTensorParallel;
    }
    return group;
}

SplitSystem::SplitSystem(std::string name, const ModelConfig &model,
                         std::uint64_t seed, const SplitSpec &spec)
    : name_(std::move(name)), model_(model), spec_(spec),
      prefill_(groupConfig(model, seed,
                           spec.prefillDevices > 0
                               ? spec.prefillDevices
                               : defaultGroupDevices(model))),
      decode_([&] {
          ClusterConfig decode_group = groupConfig(
              model, seed,
              spec.decodeDevices > 0 ? spec.decodeDevices
                                     : defaultGroupDevices(model));
          decode_group.seed = seed + 1;
          return decode_group;
      }()),
      nvlink_(SystemTopology{}.intraNode)
{
    // Both groups duplicate the full weights, and both need KV
    // headroom: the decode group holds every active context, the
    // prefill group holds a batch's prompt KV until it migrates.
    fatalIf(prefill_.maxKvTokens() <= 0,
            "split system '" + name_ + "': a prefill group of " +
                std::to_string(prefillDevices()) +
                " device(s) cannot hold the duplicated weights "
                "plus prompt KV for " +
                model.name);
    fatalIf(decode_.maxKvTokens() <= 0,
            "split system '" + name_ + "': a decode group of " +
                std::to_string(decodeDevices()) +
                " device(s) cannot hold the duplicated weights "
                "plus any KV cache for " +
                model.name);
}

int
SplitSystem::prefillDevices() const
{
    return prefill_.config().topo.devicesPerNode;
}

int
SplitSystem::decodeDevices() const
{
    return decode_.config().topo.devicesPerNode;
}

StageResult
SplitSystem::executeStage(const StageShape &stage)
{
    // Split the stage by aggregates so aggregate-only shapes (the
    // schedulers' default view) work too; per-context vectors are
    // forwarded when present (hand-built shapes).
    const StageAggregates agg = stage.aggregates();
    StageShape prefill_part;
    prefill_part.prefillLengths = stage.prefillLengths;
    prefill_part.agg = {0, 0, agg.numPrefill, agg.prefillSum,
                        agg.prefillSqSum};
    prefill_part.aggValid = true;
    StageShape decode_part;
    decode_part.decodeContexts = stage.decodeContexts;
    decode_part.agg = {agg.numDecode, agg.contextSum, 0, 0, 0};
    decode_part.aggValid = true;

    StageResult r;
    if (agg.numPrefill > 0)
        r += prefill_.executeStage(prefill_part);
    if (agg.numDecode > 0)
        r += decode_.executeStage(decode_part);
    return r;
}

KvBudget
SplitSystem::kvBudget() const
{
    return decode_.kvBudget();
}

std::int64_t
SplitSystem::maxKvTokens() const
{
    return decode_.maxKvTokens();
}

std::string
SplitSystem::describe() const
{
    std::ostringstream out;
    out << name_ << ": " << prefillDevices() << " prefill + "
        << decodeDevices()
        << " decode device(s), duplicated weights, KV migrates "
           "over NVLink";
    if (spec_.contendedKvTransfer)
        out << " (FIFO link contention)";
    return out.str();
}

std::optional<SimResult>
SplitSystem::runCustomLoop(const SimConfig &config,
                           SimObserver &observer)
{
    // The same arrival stream the engine loop would consume,
    // built through the workload registry: closed loop when the
    // source carries no arrival stamps, arrival-gated otherwise
    // (sched/arrivals.hh).
    ArrivalQueue waiting(makeWorkload(config.workloadIdOrDefault(),
                                      config.workload),
                         config.numRequests);

    // KV capacity of the decode group only.
    const std::int64_t kv_limit = decode_.maxKvTokens();

    struct PendingDecode
    {
        Request req;
        PicoSec issuedAt; //!< when the KV migration was issued
        PicoSec readyAt;  //!< when it lands on the decode group
    };

    std::vector<PendingDecode> transferred;
    std::vector<Request> active;

    // Retirement streaming, mirroring the engine loop: retired
    // requests are ingested (and dropped) immediately unless the
    // caller asked for the retained reference path.
    const bool retained =
        config.metricsMode == MetricsMode::Retained;
    MetricsAccumulator accumulator = makeMetricsAccumulator(
        config.metricsMode,
        static_cast<std::size_t>(config.warmupRequests),
        config.boundedLatency);
    std::vector<Request> finished;

    LinkQueue link(nvlink_);

    PicoSec prefill_now = 0;
    PicoSec decode_now = 0;
    PicoSec decode_link_wait = 0; //!< stalls since last decode stage
    std::int64_t total_generated = 0;
    SimResult result;
    std::int64_t stages = 0;

    const int max_prefill_batch = config.maxPrefillsPerStage;

    std::vector<GroupObservation> group_scratch;

    // Incrementally maintained over `active`, replacing the former
    // per-round walks: the full-lifetime KV budget (the batcher's
    // admission rule) and the decode-set aggregates the O(1) cost
    // model prices stages from.
    std::int64_t active_lifetime_kv = 0;
    StageAggregates decode_agg;

    while ((!waiting.empty() || !transferred.empty() ||
            !active.empty()) &&
           stages < config.maxStages) {
        // The prefill group paces itself against decode demand: it
        // keeps a small reserve of ready requests, no more.
        while (!waiting.empty() &&
               static_cast<int>(transferred.size() + active.size()) <
                   config.maxBatch + max_prefill_batch) {
            if (!waiting.hasAdmissible(prefill_now)) {
                // Open loop, prefill group idle: sit until the next
                // arrival (shared no-drift rule with the engine).
                prefill_now =
                    idleAdvance(prefill_now, waiting.nextArrival());
            }
            StageShape stage;
            std::vector<Request> batch;
            while (waiting.hasAdmissible(prefill_now) &&
                   static_cast<int>(batch.size()) <
                       max_prefill_batch) {
                Request r = waiting.pop(prefill_now);
                stage.prefillLengths.push_back(r.inputLen);
                stage.agg.addPrefill(r.inputLen);
                batch.push_back(std::move(r));
            }
            stage.aggValid = true;
            const PicoSec stage_start = prefill_now;
            const StageResult sr = prefill_.executeStage(stage);
            prefill_now += sr.time;
            result.totals += sr;
            group_scratch.clear();
            group_scratch.push_back(
                {"prefill", prefillDevices(), sr.time, 0});
            observer.onStage({stages, stage_start, prefill_now,
                              stage, sr, stage.contextTokens(),
                              &group_scratch});
            ++stages;
            for (auto &r : batch) {
                r.firstToken = prefill_now;
                r.generated = 1;
                r.tokenTimes.push_back(prefill_now);
                ++total_generated;
                // Migrate the prompt KV to the decode group: a free
                // parallel copy in the seed model, a FIFO-serialized
                // link occupancy when contention is enabled.
                const Bytes kv_bytes =
                    static_cast<Bytes>(r.inputLen) *
                    model_.kvBytesPerToken();
                const PicoSec ready =
                    spec_.contendedKvTransfer
                        ? link.transfer(prefill_now, kv_bytes)
                        : prefill_now + p2pTime(kv_bytes, nvlink_);
                transferred.push_back({r, prefill_now, ready});
            }
        }

        // Admit transferred requests the decode group can hold.
        std::sort(transferred.begin(), transferred.end(),
                  [](const PendingDecode &a, const PendingDecode &b) {
                      return a.readyAt < b.readyAt;
                  });
        std::int64_t kv = active_lifetime_kv;
        for (auto it = transferred.begin();
             it != transferred.end();) {
            if (static_cast<int>(active.size()) >= config.maxBatch)
                break;
            if (it->readyAt > decode_now) {
                if (active.empty()) {
                    // Idle jump; the slice of the stall overlapping
                    // the KV migration itself is link-wait time.
                    const PicoSec migration_start =
                        std::max(decode_now, it->issuedAt);
                    if (it->readyAt > migration_start)
                        decode_link_wait +=
                            it->readyAt - migration_start;
                    decode_now = it->readyAt;
                } else {
                    break;
                }
            }
            const std::int64_t need =
                kv + it->req.inputLen + it->req.outputLen +
                static_cast<std::int64_t>(active.size()) + 1;
            if (need > kv_limit) {
                fatalIf(active.empty(),
                        "split system: one request's KV exceeds the "
                        "decode group's capacity");
                break;
            }
            kv += it->req.contextLen();
            active_lifetime_kv +=
                it->req.inputLen + it->req.outputLen;
            decode_agg.addDecode(it->req.contextLen());
            active.push_back(it->req);
            it = transferred.erase(it);
        }

        if (active.empty()) {
            if (transferred.empty() && waiting.empty())
                break;
            continue;
        }

        // One decode-only stage, published aggregate-only: the
        // decode group's O(1) cost model prices it from the
        // incrementally maintained sums, bit-identical to the
        // former per-context vector.
        StageShape stage;
        stage.agg = decode_agg;
        stage.aggValid = true;
        const PicoSec stage_start = decode_now;
        const StageResult sr = decode_.executeStage(stage);
        decode_now += sr.time;
        result.totals += sr;
        group_scratch.clear();
        group_scratch.push_back(
            {"decode", decodeDevices(), sr.time, decode_link_wait});
        decode_link_wait = 0;
        observer.onStage({stages, stage_start, decode_now, stage,
                          sr, stage.contextTokens(),
                          &group_scratch});
        ++stages;

        std::vector<Request> still;
        still.reserve(active.size());
        for (auto &r : active) {
            decode_agg.removeDecode(r.contextLen());
            r.generated += 1;
            r.tokenTimes.push_back(decode_now);
            ++total_generated;
            if (r.done()) {
                r.finished = decode_now;
                active_lifetime_kv -= r.inputLen + r.outputLen;
                observer.onRequestRetired(r, decode_now);
                // Retirement feedback: a session workload releases
                // its next turn through the shared arrival stream
                // (no-op for every other source).
                waiting.notifyRetired(r, decode_now);
                if (retained)
                    finished.push_back(std::move(r));
                else
                    accumulator.ingest(r); // then dropped
            } else {
                decode_agg.addDecode(r.contextLen());
                still.push_back(std::move(r));
            }
        }
        active = std::move(still);
        result.peakBatch = std::max(
            result.peakBatch,
            static_cast<int>(stage.agg.numDecode));
    }

    result.metrics =
        retained ? collectMetrics(finished,
                                  static_cast<std::size_t>(
                                      config.warmupRequests))
                 : accumulator.takeMetrics();
    if (config.metricsMode == MetricsMode::Bounded)
        result.boundedLatency =
            std::make_shared<const BoundedLatencyMetrics>(
                accumulator.takeBounded());
    result.generatedTokens = total_generated;
    result.metrics.totalTokens = total_generated;
    result.metrics.elapsed = std::max(prefill_now, decode_now);
    result.metrics.decodingOnlyStages = stages;
    result.metrics.mixedStages = 0;
    return result;
}

} // namespace duplex
