#include "sim/split_system.hh"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/log.hh"
#include "sim/engine.hh"

namespace duplex
{

ClusterConfig
SplitSystem::groupConfig(const ModelConfig &model,
                         std::uint64_t seed)
{
    // Each group gets half the devices and a full copy of the
    // (sharded) weights.
    const SystemTopology full = defaultTopology(model, false);
    fatalIf(full.numNodes != 1,
            "split system modeled for single-node configurations");
    const int half = full.devicesPerNode / 2;
    fatalIf(half < 1, "split system needs at least two devices");

    ClusterConfig group =
        makeClusterConfig(SystemKind::DuplexPEET, model, seed);
    group.topo.devicesPerNode = half;
    if (model.numExperts > 0 && model.numExperts % half != 0) {
        group.expertPlacement = ExpertPlacement::ExpertTensorParallel;
    }
    return group;
}

SplitSystem::SplitSystem(std::string name, const ModelConfig &model,
                         std::uint64_t seed)
    : name_(std::move(name)), model_(model),
      prefill_(groupConfig(model, seed)),
      decode_([&] {
          ClusterConfig decode_group = groupConfig(model, seed);
          decode_group.seed = seed + 1;
          return decode_group;
      }()),
      nvlink_(SystemTopology{}.intraNode)
{
}

StageResult
SplitSystem::executeStage(const StageShape &stage)
{
    StageShape prefill_part;
    prefill_part.prefillLengths = stage.prefillLengths;
    StageShape decode_part;
    decode_part.decodeContexts = stage.decodeContexts;

    StageResult r;
    if (!prefill_part.prefillLengths.empty())
        r += prefill_.executeStage(prefill_part);
    if (!decode_part.decodeContexts.empty())
        r += decode_.executeStage(decode_part);
    return r;
}

KvBudget
SplitSystem::kvBudget() const
{
    return decode_.kvBudget();
}

std::int64_t
SplitSystem::maxKvTokens() const
{
    return decode_.maxKvTokens();
}

std::string
SplitSystem::describe() const
{
    const ClusterConfig &cfg = prefill_.config();
    std::ostringstream out;
    out << name_ << ": " << cfg.topo.devicesPerNode
        << " prefill + " << cfg.topo.devicesPerNode
        << " decode device(s), duplicated weights, KV migrates "
           "over NVLink";
    return out.str();
}

std::optional<SimResult>
SplitSystem::runCustomLoop(const SimConfig &config,
                           SimObserver &observer)
{
    RequestGenerator gen(config.workload);
    std::vector<Request> requests = gen.take(config.numRequests);

    // KV capacity of the decode group only.
    const std::int64_t kv_limit = decode_.maxKvTokens();

    struct PendingDecode
    {
        Request req;
        PicoSec readyAt;
    };

    std::deque<Request> waiting(requests.begin(), requests.end());
    std::vector<PendingDecode> transferred;
    std::vector<Request> active;
    std::vector<Request> finished;

    PicoSec prefill_now = 0;
    PicoSec decode_now = 0;
    std::int64_t total_generated = 0;
    SimResult result;
    std::int64_t stages = 0;

    const int max_prefill_batch = 4;

    auto kv_tokens_active = [&]() {
        // Full-lifetime budget, matching the batcher's admission.
        std::int64_t total = 0;
        for (const auto &r : active)
            total += r.inputLen + r.outputLen;
        return total;
    };

    while ((!waiting.empty() || !transferred.empty() ||
            !active.empty()) &&
           stages < config.maxStages) {
        // The prefill group paces itself against decode demand: it
        // keeps a small reserve of ready requests, no more.
        while (!waiting.empty() &&
               static_cast<int>(transferred.size() + active.size()) <
                   config.maxBatch + max_prefill_batch) {
            StageShape stage;
            std::vector<Request> batch;
            while (!waiting.empty() &&
                   static_cast<int>(batch.size()) <
                       max_prefill_batch) {
                Request r = waiting.front();
                waiting.pop_front();
                r.arrival = prefill_now; // closed-loop admission
                stage.prefillLengths.push_back(r.inputLen);
                batch.push_back(std::move(r));
            }
            const PicoSec stage_start = prefill_now;
            const StageResult sr = prefill_.executeStage(stage);
            prefill_now += sr.time;
            result.totals += sr;
            observer.onStage({stages, stage_start, prefill_now,
                              stage, sr, stage.contextTokens()});
            ++stages;
            for (auto &r : batch) {
                r.firstToken = prefill_now;
                r.generated = 1;
                r.tokenTimes.push_back(prefill_now);
                ++total_generated;
                // Migrate the prompt KV to the decode group.
                const Bytes kv_bytes =
                    static_cast<Bytes>(r.inputLen) *
                    model_.kvBytesPerToken();
                const PicoSec ready =
                    prefill_now + p2pTime(kv_bytes, nvlink_);
                transferred.push_back({r, ready});
            }
        }

        // Admit transferred requests the decode group can hold.
        std::sort(transferred.begin(), transferred.end(),
                  [](const PendingDecode &a, const PendingDecode &b) {
                      return a.readyAt < b.readyAt;
                  });
        std::int64_t kv = kv_tokens_active();
        for (auto it = transferred.begin();
             it != transferred.end();) {
            if (static_cast<int>(active.size()) >= config.maxBatch)
                break;
            if (it->readyAt > decode_now) {
                if (active.empty()) {
                    decode_now = it->readyAt; // idle jump
                } else {
                    break;
                }
            }
            const std::int64_t need =
                kv + it->req.inputLen + it->req.outputLen +
                static_cast<std::int64_t>(active.size()) + 1;
            if (need > kv_limit) {
                fatalIf(active.empty(),
                        "split system: one request's KV exceeds the "
                        "decode group's capacity");
                break;
            }
            kv += it->req.contextLen();
            active.push_back(it->req);
            it = transferred.erase(it);
        }

        if (active.empty()) {
            if (transferred.empty() && waiting.empty())
                break;
            continue;
        }

        // One decode-only stage.
        StageShape stage;
        for (const auto &r : active)
            stage.decodeContexts.push_back(r.contextLen());
        const PicoSec stage_start = decode_now;
        const StageResult sr = decode_.executeStage(stage);
        decode_now += sr.time;
        result.totals += sr;
        observer.onStage({stages, stage_start, decode_now, stage,
                          sr, stage.contextTokens()});
        ++stages;

        std::vector<Request> still;
        still.reserve(active.size());
        for (auto &r : active) {
            r.generated += 1;
            r.tokenTimes.push_back(decode_now);
            ++total_generated;
            if (r.done()) {
                r.finished = decode_now;
                observer.onRequestRetired(r, decode_now);
                finished.push_back(r);
            } else {
                still.push_back(std::move(r));
            }
        }
        active = std::move(still);
        result.peakBatch = std::max(
            result.peakBatch,
            static_cast<int>(stage.decodeContexts.size()));
    }

    result.metrics = collectMetrics(
        finished, static_cast<std::size_t>(config.warmupRequests));
    result.generatedTokens = total_generated;
    result.metrics.totalTokens = total_generated;
    result.metrics.elapsed = std::max(prefill_now, decode_now);
    result.metrics.decodingOnlyStages = stages;
    result.metrics.mixedStages = 0;
    return result;
}

} // namespace duplex
