#include "compute/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

void
reportUnconfiguredEngine(const EngineSpec &spec)
{
    panic("operatorTime: engine '" + spec.name +
          "' has no compute or bandwidth");
}

PicoSec
gemmTime(const EngineSpec &spec, const GemmShape &shape)
{
    return operatorTime(spec, shape.flops(), shape.trafficBytes());
}

} // namespace duplex
