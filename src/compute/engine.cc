#include "compute/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

PicoSec
operatorTimeNoOverhead(const EngineSpec &spec, Flops flops, Bytes bytes)
{
    panicIf(spec.peakFlops <= 0.0 || spec.memBps <= 0.0,
            "operatorTime: engine '" + spec.name +
                "' has no compute or bandwidth");
    if (flops <= 0.0 && bytes == 0)
        return 0;
    const double compute_sec = flops / spec.effectiveFlops();
    const double memory_sec =
        static_cast<double>(bytes) / spec.memBps;
    const double sec = std::max(compute_sec, memory_sec);
    const auto ps = static_cast<PicoSec>(
        sec * static_cast<double>(kPsPerSec) + 0.5);
    return std::max<PicoSec>(ps, 1);
}

PicoSec
operatorTime(const EngineSpec &spec, Flops flops, Bytes bytes)
{
    if (flops <= 0.0 && bytes == 0)
        return 0;
    return operatorTimeNoOverhead(spec, flops, bytes) +
           spec.dispatchOverhead;
}

PicoSec
gemmTime(const EngineSpec &spec, const GemmShape &shape)
{
    return operatorTime(spec, shape.flops(), shape.trafficBytes());
}

} // namespace duplex
