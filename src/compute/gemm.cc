// GemmShape is header-only; this translation unit anchors the target.
#include "compute/gemm.hh"
