/**
 * @file
 * GEMM shape arithmetic: FLOPs, DRAM traffic, and arithmetic
 * intensity (Op/B), the quantity the whole paper pivots on.
 *
 * Conventions: C[m x n] = A[m x k] * B[k x n] with FP16 operands
 * (2 bytes). For LLM FC layers, B is the weight matrix; for
 * attention, B is the KV cache. Op/B here counts all three operand
 * tensors, so a weight-dominated GEMV (m = 1) lands just under 1 and
 * grouped-query attention with group degree g lands just under g,
 * matching Section III-A.
 */

#ifndef DUPLEX_COMPUTE_GEMM_HH
#define DUPLEX_COMPUTE_GEMM_HH

#include <cstdint>

#include "common/units.hh"

namespace duplex
{

/** Bytes per FP16 element. */
constexpr Bytes kFp16Bytes = 2;

/** Dimensions of one GEMM. */
struct GemmShape
{
    std::int64_t m = 0; //!< rows of A / C (tokens)
    std::int64_t k = 0; //!< inner dimension
    std::int64_t n = 0; //!< columns of B / C

    /** Multiply-accumulate FLOPs (2 per MAC). */
    Flops flops() const
    {
        return 2.0 * static_cast<double>(m) *
               static_cast<double>(k) * static_cast<double>(n);
    }

    /** Bytes of the stationary operand (weights / KV). */
    Bytes weightBytes() const
    {
        return static_cast<Bytes>(k) * static_cast<Bytes>(n) *
               kFp16Bytes;
    }

    /** Bytes of the streaming input operand. */
    Bytes inputBytes() const
    {
        return static_cast<Bytes>(m) * static_cast<Bytes>(k) *
               kFp16Bytes;
    }

    /** Bytes of the output operand. */
    Bytes outputBytes() const
    {
        return static_cast<Bytes>(m) * static_cast<Bytes>(n) *
               kFp16Bytes;
    }

    /** Total DRAM traffic assuming no on-chip reuse of operands. */
    Bytes trafficBytes() const
    {
        return weightBytes() + inputBytes() + outputBytes();
    }

    /** Arithmetic intensity in FLOPs per DRAM byte. */
    double opPerByte() const
    {
        const Bytes traffic = trafficBytes();
        if (traffic == 0)
            return 0.0;
        return flops() / static_cast<double>(traffic);
    }
};

} // namespace duplex

#endif // DUPLEX_COMPUTE_GEMM_HH
