/**
 * @file
 * Compute-engine specifications and the calibrated-roofline operator
 * timer.
 *
 * An EngineSpec describes one processing-unit class of a device: the
 * xPU (H100-class), the Logic-PIM GEMM modules on the HBM logic die,
 * or a prior-work PIM variant (Bank-PIM, BankGroup-PIM). Timing is
 * computed as max(compute time, memory time) plus a fixed dispatch
 * overhead; the paper models compute the same way ("timing data is
 * calculated considering the number and the frequency of the
 * computing units") while memory time rests on the bandwidth the
 * cycle-level DRAM model sustains (dram/calibrate).
 */

#ifndef DUPLEX_COMPUTE_ENGINE_HH
#define DUPLEX_COMPUTE_ENGINE_HH

#include <string>

#include "common/units.hh"
#include "compute/gemm.hh"

namespace duplex
{

/** One class of processing units and the bandwidth feeding it. */
struct EngineSpec
{
    std::string name = "engine";

    /** Peak FP16 FLOPs per second. */
    double peakFlops = 0.0;

    /** Achievable fraction of peak on dense GEMM. */
    double computeEff = 1.0;

    /** Sustained DRAM bytes per second available to this engine. */
    double memBps = 0.0;

    /** Fixed per-operator dispatch cost (kernel launch / PIM cmd). */
    PicoSec dispatchOverhead = 0;

    /** Effective FLOPs per second after efficiency. */
    double effectiveFlops() const { return peakFlops * computeEff; }

    /** Engine's balance point in Op/B. */
    double ridgeOpPerByte() const
    {
        return memBps > 0.0 ? effectiveFlops() / memBps : 0.0;
    }
};

/**
 * Calibrated-roofline time for an operator with the given FLOPs and
 * DRAM traffic on @p spec, including dispatch overhead.
 */
PicoSec operatorTime(const EngineSpec &spec, Flops flops, Bytes bytes);

/** Convenience wrapper for a GEMM shape. */
PicoSec gemmTime(const EngineSpec &spec, const GemmShape &shape);

/**
 * Time without the dispatch overhead; used when several operators
 * are fused into one dispatch (e.g. a fused expert FFN).
 */
PicoSec operatorTimeNoOverhead(const EngineSpec &spec, Flops flops,
                               Bytes bytes);

} // namespace duplex

#endif // DUPLEX_COMPUTE_ENGINE_HH
