/**
 * @file
 * Compute-engine specifications and the calibrated-roofline operator
 * timer.
 *
 * An EngineSpec describes one processing-unit class of a device: the
 * xPU (H100-class), the Logic-PIM GEMM modules on the HBM logic die,
 * or a prior-work PIM variant (Bank-PIM, BankGroup-PIM). Timing is
 * computed as max(compute time, memory time) plus a fixed dispatch
 * overhead; the paper models compute the same way ("timing data is
 * calculated considering the number and the frequency of the
 * computing units") while memory time rests on the bandwidth the
 * cycle-level DRAM model sustains (dram/calibrate).
 */

#ifndef DUPLEX_COMPUTE_ENGINE_HH
#define DUPLEX_COMPUTE_ENGINE_HH

#include <string>

#include "common/units.hh"
#include "compute/gemm.hh"

namespace duplex
{

/** One class of processing units and the bandwidth feeding it. */
struct EngineSpec
{
    std::string name = "engine";

    /** Peak FP16 FLOPs per second. */
    double peakFlops = 0.0;

    /** Achievable fraction of peak on dense GEMM. */
    double computeEff = 1.0;

    /** Sustained DRAM bytes per second available to this engine. */
    double memBps = 0.0;

    /** Fixed per-operator dispatch cost (kernel launch / PIM cmd). */
    PicoSec dispatchOverhead = 0;

    /** Effective FLOPs per second after efficiency. */
    double effectiveFlops() const { return peakFlops * computeEff; }

    /** Engine's balance point in Op/B. */
    double ridgeOpPerByte() const
    {
        return memBps > 0.0 ? effectiveFlops() / memBps : 0.0;
    }
};

/** Internal: report an unconfigured engine (never on the hot path). */
[[noreturn]] void reportUnconfiguredEngine(const EngineSpec &spec);

/**
 * Time without the dispatch overhead; used when several operators
 * are fused into one dispatch (e.g. a fused expert FFN). Inline:
 * the MoE layers call this once or twice per expert per stage, so
 * it must not allocate or leave the instruction cache.
 */
inline PicoSec
operatorTimeNoOverhead(const EngineSpec &spec, Flops flops,
                       Bytes bytes)
{
    if (spec.peakFlops <= 0.0 || spec.memBps <= 0.0)
        reportUnconfiguredEngine(spec);
    if (flops <= 0.0 && bytes == 0)
        return 0;
    const double compute_sec = flops / spec.effectiveFlops();
    const double memory_sec =
        static_cast<double>(bytes) / spec.memBps;
    const double sec =
        compute_sec > memory_sec ? compute_sec : memory_sec;
    const auto ps = static_cast<PicoSec>(
        sec * static_cast<double>(kPsPerSec) + 0.5);
    return ps > 1 ? ps : 1;
}

/**
 * Calibrated-roofline time for an operator with the given FLOPs and
 * DRAM traffic on @p spec, including dispatch overhead.
 */
inline PicoSec
operatorTime(const EngineSpec &spec, Flops flops, Bytes bytes)
{
    if (flops <= 0.0 && bytes == 0)
        return 0;
    return operatorTimeNoOverhead(spec, flops, bytes) +
           spec.dispatchOverhead;
}

/** Convenience wrapper for a GEMM shape. */
PicoSec gemmTime(const EngineSpec &spec, const GemmShape &shape);

} // namespace duplex

#endif // DUPLEX_COMPUTE_ENGINE_HH
