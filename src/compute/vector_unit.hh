/**
 * @file
 * Softmax and activation vector units (Fig. 7(c)).
 *
 * Logic-PIM carries dedicated softmax and activation modules on the
 * logic die; the xPU has its own SFUs. Element-wise work is almost
 * always bandwidth bound, so the timer is a roofline over an
 * elements-per-second pipe with the memory system as the other leg.
 */

#ifndef DUPLEX_COMPUTE_VECTOR_UNIT_HH
#define DUPLEX_COMPUTE_VECTOR_UNIT_HH

#include <string>

#include "common/units.hh"
#include "compute/engine.hh"

namespace duplex
{

/** Throughput description of a softmax/activation pipeline. */
struct VectorUnitSpec
{
    std::string name = "vector";

    /** Elements processed per second at peak. */
    double elemsPerSec = 0.0;

    /** FLOPs charged per element (exp/div/mul chains). */
    double flopsPerElem = 5.0;

    /** Bytes moved per element (read + write, FP16). */
    double bytesPerElem = 2.0 * kFp16Bytes;
};

/**
 * Time for an element-wise pass over @p elems elements, bounded by
 * both the unit pipe and the engine's memory bandwidth.
 */
PicoSec vectorOpTime(const VectorUnitSpec &unit, const EngineSpec &mem,
                     double elems);

/** DRAM traffic of one element-wise pass (for energy accounting). */
Bytes vectorOpBytes(const VectorUnitSpec &unit, double elems);

/** FLOPs of one element-wise pass. */
Flops vectorOpFlops(const VectorUnitSpec &unit, double elems);

} // namespace duplex

#endif // DUPLEX_COMPUTE_VECTOR_UNIT_HH
