#include "compute/vector_unit.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

PicoSec
vectorOpTime(const VectorUnitSpec &unit, const EngineSpec &mem,
             double elems)
{
    if (elems <= 0.0)
        return 0;
    panicIf(unit.elemsPerSec <= 0.0,
            "vectorOpTime: unit '" + unit.name + "' has no pipe");
    const double pipe_sec = elems / unit.elemsPerSec;
    const double mem_sec =
        elems * unit.bytesPerElem / mem.memBps;
    const double sec = std::max(pipe_sec, mem_sec);
    const auto ps = static_cast<PicoSec>(
        sec * static_cast<double>(kPsPerSec) + 0.5);
    return std::max<PicoSec>(ps, 1);
}

Bytes
vectorOpBytes(const VectorUnitSpec &unit, double elems)
{
    return static_cast<Bytes>(elems * unit.bytesPerElem + 0.5);
}

Flops
vectorOpFlops(const VectorUnitSpec &unit, double elems)
{
    return elems * unit.flopsPerElem;
}

} // namespace duplex
