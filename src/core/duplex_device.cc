#include "core/duplex_device.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

HybridDeviceSpec
duplexDeviceSpec(const HbmTiming &timing, const DramCalibration &cal,
                 bool co_processing)
{
    return pimVariantDeviceSpec(PimVariant::LogicPim, timing, cal,
                                co_processing);
}

HybridDeviceSpec
pimVariantDeviceSpec(PimVariant variant, const HbmTiming &timing,
                     const DramCalibration &cal, bool co_processing)
{
    HybridDeviceSpec spec = h100DeviceSpec(timing, cal);
    spec.name = std::string("Duplex(") + pimVariantName(variant) + ")";
    spec.hasLowEngine = true;
    switch (variant) {
      case PimVariant::LogicPim:
        spec.low = logicPimEngine(timing, cal, spec.numStacks);
        break;
      case PimVariant::BankPim:
        spec.low = bankPimEngine(timing, cal, spec.numStacks);
        break;
      case PimVariant::BankGroupPim:
        spec.low = bankGroupPimEngine(timing, cal, spec.numStacks);
        break;
      default:
        panic("unknown PIM variant");
    }
    spec.lowPath = pimVariantPath(variant);
    spec.lowCls = pimVariantClass(variant);
    spec.coProcessing = co_processing;
    return spec;
}

std::unique_ptr<Device>
makeDevice(const HybridDeviceSpec &spec)
{
    if (spec.hasLowEngine)
        return std::make_unique<HybridDevice>(spec);
    return std::make_unique<GpuDevice>(spec);
}

HybridDevice::HybridDevice(const HybridDeviceSpec &spec)
    : spec_(spec), energy_(spec.energyParams)
{
    panicIf(!spec_.hasLowEngine,
            "HybridDevice requires a low-Op/B engine");
}

DeviceTiming
HybridDevice::onXpu(const OpCost &cost)
{
    return engineRun(spec_.xpu, spec_.xpuPath, spec_.xpuCls, energy_,
                     cost);
}

DeviceTiming
HybridDevice::onLow(const OpCost &cost)
{
    return engineRun(spec_.low, spec_.lowPath, spec_.lowCls, energy_,
                     cost);
}

DeviceTiming
HybridDevice::onBest(const OpCost &cost)
{
    if (cost.flops <= 0.0 && cost.bytes == 0)
        return {};
    const PicoSec t_xpu =
        operatorTime(spec_.xpu, cost.flops, cost.bytes);
    const PicoSec t_low =
        operatorTime(spec_.low, cost.flops, cost.bytes);
    return t_low < t_xpu ? onLow(cost) : onXpu(cost);
}

DeviceTiming
HybridDevice::runHighOpb(const OpCost &cost)
{
    return onXpu(cost);
}

AttentionTiming
HybridDevice::runAttention(const OpCost &decode, const OpCost &prefill)
{
    const bool have_decode = decode.bytes > 0 || decode.flops > 0.0;
    const bool have_prefill =
        prefill.bytes > 0 || prefill.flops > 0.0;

    AttentionTiming t;
    if (spec_.coProcessing && have_decode && have_prefill) {
        // Decode attention on the low engine concurrent with
        // prefill attention on the xPU (Section V-B).
        t.decode = onLow(decode);
        t.prefill = onXpu(prefill);
        t.composed =
            coProcessedAttentionTime(t.decode.time, t.prefill.time);
        return t;
    }

    if (have_decode)
        t.decode = onBest(decode);
    if (have_prefill)
        t.prefill = onBest(prefill);
    t.composed = t.decode.time + t.prefill.time;
    return t;
}

DeviceTiming
HybridDevice::runMoe(const std::vector<ExpertWork> &experts)
{
    lastExpertsOnLow_ = 0;
    int num_active = 0;
    for (const auto &e : experts)
        if (e.tokens > 0)
            ++num_active;
    if (num_active == 0)
        return {};

    if (!spec_.coProcessing || lut_ == nullptr) {
        // Engine selection for the whole layer by total time.
        PicoSec t_xpu = spec_.xpu.dispatchOverhead;
        PicoSec t_low = spec_.low.dispatchOverhead;
        for (const auto &e : experts) {
            if (e.tokens == 0)
                continue;
            t_xpu += operatorTimeNoOverhead(spec_.xpu, e.cost.flops,
                                            e.cost.bytes);
            t_low += operatorTimeNoOverhead(spec_.low, e.cost.flops,
                                            e.cost.bytes);
        }
        const bool use_low = t_low < t_xpu;
        DeviceTiming total;
        total.time = use_low ? t_low : t_xpu;
        if (use_low)
            lastExpertsOnLow_ = num_active;
        const DramPath path = use_low ? spec_.lowPath : spec_.xpuPath;
        const ComputeClass cls = use_low ? spec_.lowCls : spec_.xpuCls;
        for (const auto &e : experts) {
            if (e.tokens == 0)
                continue;
            total.energy.dramJ +=
                energy_.dramEnergyJ(path, e.cost.bytes);
            total.energy.computeJ +=
                energy_.computeEnergyJ(cls, e.cost.flops);
        }
        return total;
    }

    // Expert co-processing: lookup-table prefix search, run in the
    // reused scratch partition (zero-token experts are dropped by
    // the partitioner itself).
    partitionExpertsInto(experts, *lut_, spec_.xpu, spec_.low,
                         partScratch_, prefixScratch_,
                         suffixScratch_);
    const ExpertPartition &part = partScratch_;
    lastExpertsOnLow_ = part.numOnLow;

    DeviceTiming total;
    total.time = part.makespan();
    for (int i = 0; i < static_cast<int>(part.sorted.size()); ++i) {
        const auto &e = part.sorted[i];
        if (i < part.numOnLow) {
            total.energy.dramJ +=
                energy_.dramEnergyJ(spec_.lowPath, e.cost.bytes);
            total.energy.computeJ +=
                energy_.computeEnergyJ(spec_.lowCls, e.cost.flops);
        } else {
            total.energy.dramJ +=
                energy_.dramEnergyJ(spec_.xpuPath, e.cost.bytes);
            total.energy.computeJ +=
                energy_.computeEnergyJ(spec_.xpuCls, e.cost.flops);
        }
    }
    return total;
}

DeviceTiming
HybridDevice::runMoeGroups(const std::vector<ExpertWork> &experts,
                           int group_size, double energy_scale)
{
    // Same composition as runMoe per contiguous group (makespan
    // over groups, per-group energy scaling, engine selection per
    // group); one call per layer shares the per-token-count memo
    // across every group.
    const int num_groups =
        static_cast<int>(experts.size()) / group_size;
    DeviceTiming total;

    if (spec_.coProcessing && lut_ != nullptr) {
        for (int g = 0; g < num_groups; ++g) {
            const ExpertWork *begin = experts.data() + g * group_size;
            bool group_active = false;
            for (int i = 0; i < group_size; ++i) {
                if (begin[i].tokens > 0) {
                    group_active = true;
                    break;
                }
            }
            if (!group_active) {
                lastExpertsOnLow_ = 0;
                continue;
            }
            partitionExpertsRange(begin, begin + group_size, *lut_,
                                  spec_.xpu, spec_.low, partScratch_,
                                  prefixScratch_, suffixScratch_);
            const ExpertPartition &part = partScratch_;
            lastExpertsOnLow_ = part.numOnLow;
            DeviceTiming group;
            group.time = part.makespan();
            for (int i = 0;
                 i < static_cast<int>(part.sorted.size()); ++i) {
                const auto &e = part.sorted[i];
                if (i < part.numOnLow) {
                    group.energy.dramJ += energy_.dramEnergyJ(
                        spec_.lowPath, e.cost.bytes);
                    group.energy.computeJ += energy_.computeEnergyJ(
                        spec_.lowCls, e.cost.flops);
                } else {
                    group.energy.dramJ += energy_.dramEnergyJ(
                        spec_.xpuPath, e.cost.bytes);
                    group.energy.computeJ += energy_.computeEnergyJ(
                        spec_.xpuCls, e.cost.flops);
                }
            }
            total.time = std::max(total.time, group.time);
            total.energy.dramJ += group.energy.dramJ * energy_scale;
            total.energy.computeJ +=
                group.energy.computeJ * energy_scale;
        }
        return total;
    }

    // Direct-mapped per-token-count cache: decode stages repeat
    // small counts heavily; a collision just recomputes. The sums
    // see the same values in the same order as the uncached path.
    struct Memo
    {
        std::int64_t tokens = -1;
        PicoSec xpu;
        PicoSec low;
        EnergyBreakdown xpuE;
        EnergyBreakdown lowE;
    };
    Memo memo[64];
    auto lookup = [&](const ExpertWork &e) -> const Memo & {
        Memo &m = memo[e.tokens & 63];
        if (m.tokens != e.tokens) {
            m.tokens = e.tokens;
            m.xpu = operatorTimeNoOverhead(spec_.xpu, e.cost.flops,
                                           e.cost.bytes);
            m.low = operatorTimeNoOverhead(spec_.low, e.cost.flops,
                                           e.cost.bytes);
            m.xpuE = {energy_.dramEnergyJ(spec_.xpuPath,
                                          e.cost.bytes),
                      energy_.computeEnergyJ(spec_.xpuCls,
                                             e.cost.flops)};
            m.lowE = {energy_.dramEnergyJ(spec_.lowPath,
                                          e.cost.bytes),
                      energy_.computeEnergyJ(spec_.lowCls,
                                             e.cost.flops)};
        }
        return m;
    };

    for (int g = 0; g < num_groups; ++g) {
        lastExpertsOnLow_ = 0;
        int num_active = 0;
        PicoSec t_xpu = spec_.xpu.dispatchOverhead;
        PicoSec t_low = spec_.low.dispatchOverhead;
        for (int i = g * group_size; i < (g + 1) * group_size;
             ++i) {
            const ExpertWork &e = experts[i];
            if (e.tokens == 0)
                continue;
            ++num_active;
            const Memo &m = lookup(e);
            t_xpu += m.xpu;
            t_low += m.low;
        }
        if (num_active == 0)
            continue;
        const bool use_low = t_low < t_xpu;
        if (use_low)
            lastExpertsOnLow_ = num_active;
        DeviceTiming group;
        group.time = use_low ? t_low : t_xpu;
        for (int i = g * group_size; i < (g + 1) * group_size;
             ++i) {
            const ExpertWork &e = experts[i];
            if (e.tokens == 0)
                continue;
            const Memo &m = lookup(e);
            group.energy += use_low ? m.lowE : m.xpuE;
        }
        total.time = std::max(total.time, group.time);
        total.energy.dramJ += group.energy.dramJ * energy_scale;
        total.energy.computeJ +=
            group.energy.computeJ * energy_scale;
    }
    return total;
}

} // namespace duplex
