#include "core/duplex_device.hh"

#include "common/log.hh"

namespace duplex
{

HybridDeviceSpec
duplexDeviceSpec(const HbmTiming &timing, const DramCalibration &cal,
                 bool co_processing)
{
    return pimVariantDeviceSpec(PimVariant::LogicPim, timing, cal,
                                co_processing);
}

HybridDeviceSpec
pimVariantDeviceSpec(PimVariant variant, const HbmTiming &timing,
                     const DramCalibration &cal, bool co_processing)
{
    HybridDeviceSpec spec = h100DeviceSpec(timing, cal);
    spec.name = std::string("Duplex(") + pimVariantName(variant) + ")";
    spec.hasLowEngine = true;
    switch (variant) {
      case PimVariant::LogicPim:
        spec.low = logicPimEngine(timing, cal, spec.numStacks);
        break;
      case PimVariant::BankPim:
        spec.low = bankPimEngine(timing, cal, spec.numStacks);
        break;
      case PimVariant::BankGroupPim:
        spec.low = bankGroupPimEngine(timing, cal, spec.numStacks);
        break;
      default:
        panic("unknown PIM variant");
    }
    spec.lowPath = pimVariantPath(variant);
    spec.lowCls = pimVariantClass(variant);
    spec.coProcessing = co_processing;
    return spec;
}

std::unique_ptr<Device>
makeDevice(const HybridDeviceSpec &spec)
{
    if (spec.hasLowEngine)
        return std::make_unique<HybridDevice>(spec);
    return std::make_unique<GpuDevice>(spec);
}

HybridDevice::HybridDevice(const HybridDeviceSpec &spec)
    : spec_(spec), energy_(spec.energyParams)
{
    panicIf(!spec_.hasLowEngine,
            "HybridDevice requires a low-Op/B engine");
}

DeviceTiming
HybridDevice::onXpu(const OpCost &cost)
{
    return engineRun(spec_.xpu, spec_.xpuPath, spec_.xpuCls, energy_,
                     cost);
}

DeviceTiming
HybridDevice::onLow(const OpCost &cost)
{
    return engineRun(spec_.low, spec_.lowPath, spec_.lowCls, energy_,
                     cost);
}

DeviceTiming
HybridDevice::onBest(const OpCost &cost)
{
    if (cost.flops <= 0.0 && cost.bytes == 0)
        return {};
    const PicoSec t_xpu =
        operatorTime(spec_.xpu, cost.flops, cost.bytes);
    const PicoSec t_low =
        operatorTime(spec_.low, cost.flops, cost.bytes);
    return t_low < t_xpu ? onLow(cost) : onXpu(cost);
}

DeviceTiming
HybridDevice::runHighOpb(const OpCost &cost)
{
    return onXpu(cost);
}

AttentionTiming
HybridDevice::runAttention(const OpCost &decode, const OpCost &prefill)
{
    const bool have_decode = decode.bytes > 0 || decode.flops > 0.0;
    const bool have_prefill =
        prefill.bytes > 0 || prefill.flops > 0.0;

    AttentionTiming t;
    if (spec_.coProcessing && have_decode && have_prefill) {
        // Decode attention on the low engine concurrent with
        // prefill attention on the xPU (Section V-B).
        t.decode = onLow(decode);
        t.prefill = onXpu(prefill);
        t.composed =
            coProcessedAttentionTime(t.decode.time, t.prefill.time);
        return t;
    }

    if (have_decode)
        t.decode = onBest(decode);
    if (have_prefill)
        t.prefill = onBest(prefill);
    t.composed = t.decode.time + t.prefill.time;
    return t;
}

DeviceTiming
HybridDevice::runMoe(const std::vector<ExpertWork> &experts)
{
    lastExpertsOnLow_ = 0;
    // Aggregate the active experts once for the non-co-processing
    // paths.
    std::vector<const ExpertWork *> active;
    active.reserve(experts.size());
    for (const auto &e : experts)
        if (e.tokens > 0)
            active.push_back(&e);
    if (active.empty())
        return {};

    if (!spec_.coProcessing || lut_ == nullptr) {
        // Engine selection for the whole layer by total time.
        PicoSec t_xpu = spec_.xpu.dispatchOverhead;
        PicoSec t_low = spec_.low.dispatchOverhead;
        for (const auto *e : active) {
            t_xpu += operatorTimeNoOverhead(spec_.xpu, e->cost.flops,
                                            e->cost.bytes);
            t_low += operatorTimeNoOverhead(spec_.low, e->cost.flops,
                                            e->cost.bytes);
        }
        const bool use_low = t_low < t_xpu;
        DeviceTiming total;
        total.time = use_low ? t_low : t_xpu;
        if (use_low)
            lastExpertsOnLow_ = static_cast<int>(active.size());
        for (const auto *e : active) {
            if (use_low) {
                total.energy.dramJ += energy_.dramEnergyJ(
                    spec_.lowPath, e->cost.bytes);
                total.energy.computeJ += energy_.computeEnergyJ(
                    spec_.lowCls, e->cost.flops);
            } else {
                total.energy.dramJ += energy_.dramEnergyJ(
                    spec_.xpuPath, e->cost.bytes);
                total.energy.computeJ += energy_.computeEnergyJ(
                    spec_.xpuCls, e->cost.flops);
            }
        }
        return total;
    }

    // Expert co-processing: lookup-table prefix search.
    std::vector<ExpertWork> work;
    work.reserve(active.size());
    for (const auto *e : active)
        work.push_back(*e);
    const ExpertPartition part =
        partitionExperts(work, *lut_, spec_.xpu, spec_.low);
    lastExpertsOnLow_ = part.numOnLow;

    DeviceTiming total;
    total.time = part.makespan();
    for (int i = 0; i < static_cast<int>(part.sorted.size()); ++i) {
        const auto &e = part.sorted[i];
        if (i < part.numOnLow) {
            total.energy.dramJ +=
                energy_.dramEnergyJ(spec_.lowPath, e.cost.bytes);
            total.energy.computeJ +=
                energy_.computeEnergyJ(spec_.lowCls, e.cost.flops);
        } else {
            total.energy.dramJ +=
                energy_.dramEnergyJ(spec_.xpuPath, e.cost.bytes);
            total.energy.computeJ +=
                energy_.computeEnergyJ(spec_.xpuCls, e.cost.flops);
        }
    }
    return total;
}

} // namespace duplex
