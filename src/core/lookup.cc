#include "core/lookup.hh"

#include "common/log.hh"

namespace duplex
{

ExpertTimeLut::ExpertTimeLut(const EngineSpec &xpu,
                             const EngineSpec &low,
                             const OpCost &cost_one,
                             const OpCost &cost_two,
                             std::int64_t max_tokens)
    : xpu_(xpu), low_(low)
{
    panicIf(max_tokens < 1, "ExpertTimeLut: need max_tokens >= 1");
    perToken_.flops = cost_two.flops - cost_one.flops;
    perToken_.bytes = cost_two.bytes - cost_one.bytes;
    base_.flops = cost_one.flops - perToken_.flops;
    base_.bytes = cost_one.bytes - perToken_.bytes;

    xpuTable_.resize(max_tokens + 1);
    lowTable_.resize(max_tokens + 1);
    xpuTable_[0] = 0;
    lowTable_[0] = 0;
    for (std::int64_t t = 1; t <= max_tokens; ++t) {
        const OpCost c = expertCost(t);
        xpuTable_[t] =
            operatorTimeNoOverhead(xpu_, c.flops, c.bytes);
        lowTable_[t] =
            operatorTimeNoOverhead(low_, c.flops, c.bytes);
    }
}

OpCost
ExpertTimeLut::expertCost(std::int64_t tokens) const
{
    if (tokens <= 0)
        return {};
    OpCost c;
    c.flops = base_.flops +
              perToken_.flops * static_cast<double>(tokens);
    c.bytes = base_.bytes +
              static_cast<Bytes>(perToken_.bytes) *
                  static_cast<Bytes>(tokens);
    return c;
}

PicoSec
ExpertTimeLut::xpuTimeBeyondTable(std::int64_t tokens) const
{
    const OpCost c = expertCost(tokens);
    return operatorTimeNoOverhead(xpu_, c.flops, c.bytes);
}

PicoSec
ExpertTimeLut::lowTimeBeyondTable(std::int64_t tokens) const
{
    const OpCost c = expertCost(tokens);
    return operatorTimeNoOverhead(low_, c.flops, c.bytes);
}

} // namespace duplex
