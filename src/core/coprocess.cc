#include "core/coprocess.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

ExpertPartition
partitionExperts(const std::vector<ExpertWork> &experts,
                 const ExpertTimeLut &lut, const EngineSpec &xpu,
                 const EngineSpec &low)
{
    ExpertPartition part;
    part.sorted.reserve(experts.size());
    for (const auto &e : experts)
        if (e.tokens > 0)
            part.sorted.push_back(e);
    std::sort(part.sorted.begin(), part.sorted.end(),
              [](const ExpertWork &a, const ExpertWork &b) {
                  return a.tokens < b.tokens;
              });

    const int n = static_cast<int>(part.sorted.size());
    if (n == 0)
        return part;

    // Prefix sums of low-engine times and suffix sums of xPU times.
    std::vector<PicoSec> low_prefix(n + 1, 0);
    std::vector<PicoSec> xpu_suffix(n + 1, 0);
    for (int i = 0; i < n; ++i) {
        low_prefix[i + 1] =
            low_prefix[i] + lut.lowTime(part.sorted[i].tokens);
    }
    for (int i = n - 1; i >= 0; --i) {
        xpu_suffix[i] =
            xpu_suffix[i + 1] + lut.xpuTime(part.sorted[i].tokens);
    }

    PicoSec best = -1;
    int best_split = 0;
    PicoSec best_low = 0;
    PicoSec best_xpu = 0;
    for (int split = 0; split <= n; ++split) {
        const PicoSec t_low =
            split > 0 ? low_prefix[split] + low.dispatchOverhead : 0;
        const PicoSec t_xpu =
            split < n ? xpu_suffix[split] + xpu.dispatchOverhead : 0;
        const PicoSec makespan = std::max(t_low, t_xpu);
        if (best < 0 || makespan < best) {
            best = makespan;
            best_split = split;
            best_low = t_low;
            best_xpu = t_xpu;
        }
    }
    part.numOnLow = best_split;
    part.lowTime = best_low;
    part.xpuTime = best_xpu;
    return part;
}

} // namespace duplex
