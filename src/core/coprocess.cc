#include "core/coprocess.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

ExpertPartition
partitionExperts(const std::vector<ExpertWork> &experts,
                 const ExpertTimeLut &lut, const EngineSpec &xpu,
                 const EngineSpec &low)
{
    ExpertPartition part;
    std::vector<PicoSec> prefix;
    std::vector<PicoSec> suffix;
    partitionExpertsInto(experts, lut, xpu, low, part, prefix,
                         suffix);
    return part;
}

void
partitionExpertsInto(const std::vector<ExpertWork> &experts,
                     const ExpertTimeLut &lut, const EngineSpec &xpu,
                     const EngineSpec &low, ExpertPartition &part,
                     std::vector<PicoSec> &prefix_scratch,
                     std::vector<PicoSec> &suffix_scratch)
{
    partitionExpertsRange(experts.data(),
                          experts.data() + experts.size(), lut, xpu,
                          low, part, prefix_scratch,
                          suffix_scratch);
}

void
partitionExpertsRange(const ExpertWork *begin, const ExpertWork *end,
                      const ExpertTimeLut &lut, const EngineSpec &xpu,
                      const EngineSpec &low, ExpertPartition &part,
                      std::vector<PicoSec> &prefix_scratch,
                      std::vector<PicoSec> &suffix_scratch)
{
    part.sorted.clear();
    part.numOnLow = 0;
    part.lowTime = 0;
    part.xpuTime = 0;
    part.sorted.reserve(static_cast<std::size_t>(end - begin));
    for (const ExpertWork *e = begin; e != end; ++e)
        if (e->tokens > 0)
            part.sorted.push_back(*e);

    const int n = static_cast<int>(part.sorted.size());
    if (n == 0)
        return;

    // Ascending by token count. Ties carry identical costs and LUT
    // times, so any tie order yields the same split and sums;
    // insertion sort beats std::sort at MoE group sizes.
    if (n <= 16) {
        for (int i = 1; i < n; ++i) {
            const ExpertWork key = part.sorted[i];
            int j = i - 1;
            while (j >= 0 && part.sorted[j].tokens > key.tokens) {
                part.sorted[j + 1] = part.sorted[j];
                --j;
            }
            part.sorted[j + 1] = key;
        }
    } else {
        std::sort(part.sorted.begin(), part.sorted.end(),
                  [](const ExpertWork &a, const ExpertWork &b) {
                      return a.tokens < b.tokens;
                  });
    }

    // Prefix sums of low-engine times and suffix sums of xPU times.
    std::vector<PicoSec> &low_prefix = prefix_scratch;
    std::vector<PicoSec> &xpu_suffix = suffix_scratch;
    low_prefix.assign(n + 1, 0);
    xpu_suffix.assign(n + 1, 0);
    for (int i = 0; i < n; ++i) {
        low_prefix[i + 1] =
            low_prefix[i] + lut.lowTime(part.sorted[i].tokens);
    }
    for (int i = n - 1; i >= 0; --i) {
        xpu_suffix[i] =
            xpu_suffix[i + 1] + lut.xpuTime(part.sorted[i].tokens);
    }

    PicoSec best = -1;
    int best_split = 0;
    PicoSec best_low = 0;
    PicoSec best_xpu = 0;
    for (int split = 0; split <= n; ++split) {
        const PicoSec t_low =
            split > 0 ? low_prefix[split] + low.dispatchOverhead : 0;
        const PicoSec t_xpu =
            split < n ? xpu_suffix[split] + xpu.dispatchOverhead : 0;
        const PicoSec makespan = std::max(t_low, t_xpu);
        if (best < 0 || makespan < best) {
            best = makespan;
            best_split = split;
            best_low = t_low;
            best_xpu = t_xpu;
        }
    }
    part.numOnLow = best_split;
    part.lowTime = best_low;
    part.xpuTime = best_xpu;
}

} // namespace duplex
