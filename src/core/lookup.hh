/**
 * @file
 * Expert-time lookup table (Section V-B).
 *
 * "Duplex preliminarily estimates and stores the processing times
 * for experts in both xPU and Logic-PIM, depending on the number of
 * processed tokens. At runtime, Duplex uses this lookup table to
 * determine which experts to process in Logic-PIM."
 *
 * Expert FFN cost is affine in the token count (constant weight
 * traffic plus per-token activations), so the table is built from
 * two probe costs and answers in O(1); token counts beyond the table
 * fall back to the exact roofline.
 */

#ifndef DUPLEX_CORE_LOOKUP_HH
#define DUPLEX_CORE_LOOKUP_HH

#include <vector>

#include "compute/engine.hh"
#include "model/layers.hh"

namespace duplex
{

/** Precomputed expert-FFN times on both engines of a device. */
class ExpertTimeLut
{
  public:
    /**
     * @param xpu        High-Op/B engine.
     * @param low        Low-Op/B engine.
     * @param cost_one   Expert cost at one token (per-device shard).
     * @param cost_two   Expert cost at two tokens.
     * @param max_tokens Largest tabulated token count.
     */
    ExpertTimeLut(const EngineSpec &xpu, const EngineSpec &low,
                  const OpCost &cost_one, const OpCost &cost_two,
                  std::int64_t max_tokens = 8192);

    /** Expert cost model: affine reconstruction. */
    OpCost expertCost(std::int64_t tokens) const;

    /**
     * Time on the high-Op/B engine, no dispatch overhead. Inline:
     * the co-processing partition search probes this per expert
     * per MoE layer.
     */
    PicoSec xpuTime(std::int64_t tokens) const
    {
        if (tokens <= 0)
            return 0;
        if (tokens <= maxTokens())
            return xpuTable_[tokens];
        return xpuTimeBeyondTable(tokens);
    }

    /** Time on the low-Op/B engine, no dispatch overhead. */
    PicoSec lowTime(std::int64_t tokens) const
    {
        if (tokens <= 0)
            return 0;
        if (tokens <= maxTokens())
            return lowTable_[tokens];
        return lowTimeBeyondTable(tokens);
    }

    std::int64_t maxTokens() const
    {
        return static_cast<std::int64_t>(xpuTable_.size()) - 1;
    }

  private:
    EngineSpec xpu_;
    EngineSpec low_;
    OpCost base_;     //!< cost at zero tokens (weight traffic)
    OpCost perToken_; //!< marginal cost per token
    std::vector<PicoSec> xpuTable_;
    std::vector<PicoSec> lowTable_;

    PicoSec xpuTimeBeyondTable(std::int64_t tokens) const;
    PicoSec lowTimeBeyondTable(std::int64_t tokens) const;
};

} // namespace duplex

#endif // DUPLEX_CORE_LOOKUP_HH
