/**
 * @file
 * The Duplex device (Section IV): an xPU and a low-Op/B engine
 * sharing the same HBM stacks, with Op/B-driven engine selection and
 * optional expert/attention co-processing.
 *
 * The same class also builds Bank-PIM and BankGroup-PIM devices by
 * swapping the low-Op/B engine, which is how Fig. 14 compares them.
 */

#ifndef DUPLEX_CORE_DUPLEX_DEVICE_HH
#define DUPLEX_CORE_DUPLEX_DEVICE_HH

#include <memory>

#include "core/coprocess.hh"
#include "core/lookup.hh"
#include "device/gpu.hh"
#include "device/pim.hh"

namespace duplex
{

/** Duplex device spec: H100-class xPU + Logic-PIM in the stacks. */
HybridDeviceSpec duplexDeviceSpec(const HbmTiming &timing,
                                  const DramCalibration &cal,
                                  bool co_processing);

/** Hybrid device built around a prior-work PIM variant. */
HybridDeviceSpec pimVariantDeviceSpec(PimVariant variant,
                                      const HbmTiming &timing,
                                      const DramCalibration &cal,
                                      bool co_processing);

/** Instantiate the right Device implementation for @p spec. */
std::unique_ptr<Device> makeDevice(const HybridDeviceSpec &spec);

/**
 * A device with both engine classes. Engine selection picks the
 * faster engine per operator group (equivalently: compares the
 * group's Op/B against the engines' ridge points); co-processing
 * runs both engines concurrently on disjoint bank bundles.
 */
class HybridDevice : public Device
{
  public:
    explicit HybridDevice(const HybridDeviceSpec &spec);

    const HybridDeviceSpec &spec() const override { return spec_; }

    DeviceTiming runHighOpb(const OpCost &cost) override;
    AttentionTiming runAttention(const OpCost &decode,
                                 const OpCost &prefill) override;
    DeviceTiming
    runMoe(const std::vector<ExpertWork> &experts) override;
    DeviceTiming
    runMoeGroups(const std::vector<ExpertWork> &experts,
                 int group_size, double energy_scale) override;

    void setExpertLut(const ExpertTimeLut *lut) override
    {
        lut_ = lut;
    }

    /** Experts routed to the low engine in the last runMoe call. */
    int lastExpertsOnLow() const { return lastExpertsOnLow_; }

  private:
    HybridDeviceSpec spec_;
    EnergyModel energy_;
    const ExpertTimeLut *lut_ = nullptr;
    int lastExpertsOnLow_ = 0;

    // Reused across runMoe calls (one per MoE layer per stage).
    ExpertPartition partScratch_;
    std::vector<PicoSec> prefixScratch_;
    std::vector<PicoSec> suffixScratch_;

    DeviceTiming onXpu(const OpCost &cost);
    DeviceTiming onLow(const OpCost &cost);

    /** Faster engine for a whole group (Op/B-driven selection). */
    DeviceTiming onBest(const OpCost &cost);
};

} // namespace duplex

#endif // DUPLEX_CORE_DUPLEX_DEVICE_HH
