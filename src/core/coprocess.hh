/**
 * @file
 * Expert and attention co-processing (Section V-B).
 *
 * Expert co-processing: experts are sorted by token count; the
 * partitioner progressively assigns the fewest-token experts to
 * Logic-PIM and keeps the split that minimizes the makespan
 * max(time on Logic-PIM, time on xPU) — the paper's lookup-table
 * search, implemented exactly.
 *
 * Attention co-processing: prefill-sequence attention on the xPU
 * concurrent with decode-sequence attention on Logic-PIM.
 */

#ifndef DUPLEX_CORE_COPROCESS_HH
#define DUPLEX_CORE_COPROCESS_HH

#include <vector>

#include "core/lookup.hh"
#include "device/device.hh"

namespace duplex
{

/** Outcome of the expert partition search. */
struct ExpertPartition
{
    /** Experts sorted ascending by token count. */
    std::vector<ExpertWork> sorted;

    /** Experts sorted[0 .. numOnLow) run on the low-Op/B engine. */
    int numOnLow = 0;

    PicoSec lowTime = 0;  //!< makespan contribution of Logic-PIM
    PicoSec xpuTime = 0;  //!< makespan contribution of the xPU

    PicoSec makespan() const { return std::max(lowTime, xpuTime); }
};

/**
 * Search the best prefix split. Zero-token experts are dropped
 * (their weights are never read). Per-side dispatch overheads are
 * charged once per non-empty side.
 *
 * @param experts Per-expert work, any order.
 * @param lut     Expert-time lookup table for both engines.
 * @param xpu     High-Op/B engine (for dispatch overhead).
 * @param low     Low-Op/B engine (for dispatch overhead).
 */
ExpertPartition partitionExperts(const std::vector<ExpertWork> &experts,
                                 const ExpertTimeLut &lut,
                                 const EngineSpec &xpu,
                                 const EngineSpec &low);

/**
 * Scratch-buffer variant for the per-layer hot path: fills @p part
 * (clearing its previous contents) and reuses @p prefix_scratch /
 * @p suffix_scratch instead of allocating. Same result as
 * partitionExperts.
 */
void partitionExpertsInto(const std::vector<ExpertWork> &experts,
                          const ExpertTimeLut &lut,
                          const EngineSpec &xpu,
                          const EngineSpec &low,
                          ExpertPartition &part,
                          std::vector<PicoSec> &prefix_scratch,
                          std::vector<PicoSec> &suffix_scratch);

/** Range form of partitionExpertsInto (one expert-parallel group). */
void partitionExpertsRange(const ExpertWork *begin,
                           const ExpertWork *end,
                           const ExpertTimeLut &lut,
                           const EngineSpec &xpu,
                           const EngineSpec &low,
                           ExpertPartition &part,
                           std::vector<PicoSec> &prefix_scratch,
                           std::vector<PicoSec> &suffix_scratch);

/**
 * Attention co-processing composition: both groups run concurrently,
 * so the layer takes the slower of the two.
 */
inline PicoSec
coProcessedAttentionTime(PicoSec low_decode, PicoSec xpu_prefill)
{
    return std::max(low_decode, xpu_prefill);
}

} // namespace duplex

#endif // DUPLEX_CORE_COPROCESS_HH
