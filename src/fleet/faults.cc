#include "fleet/faults.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/log.hh"

namespace duplex
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::Degrade:
        return "degrade";
      case FaultKind::Rejoin:
        return "rejoin";
      case FaultKind::Drain:
        return "drain";
    }
    return "?";
}

PicoSec
RetrySpec::backoffFor(int attempt) const
{
    panicIf(attempt < 1, "RetrySpec::backoffFor: 1-based attempt");
    double delay = backoffSec;
    for (int k = 1; k < attempt; ++k)
        delay *= multiplier;
    return secToPs(delay);
}

FaultPlan::FaultPlan(const FaultSpec &spec, int instance,
                     std::uint64_t fleet_seed)
    : random_(spec.mtbfSec > 0.0), instance_(instance),
      mtbfSec_(spec.mtbfSec), mttrSec_(spec.mttrSec),
      stragglerFraction_(spec.stragglerFraction),
      stragglerFactor_(spec.stragglerFactor),
      stragglerDurationSec_(spec.stragglerDurationSec),
      rng_(faultStreamSeed(fleet_seed, instance))
{
    fatalIf(spec.mtbfSec < 0.0, "FaultSpec: negative mtbfSec");
    fatalIf(random_ && spec.mttrSec <= 0.0,
            "FaultSpec: MTBF draws need a positive mttrSec");
    fatalIf(spec.stragglerFraction < 0.0 ||
                spec.stragglerFraction > 1.0,
            "FaultSpec: stragglerFraction must be in [0, 1]");
    fatalIf(spec.stragglerFraction > 0.0 &&
                spec.stragglerFactor <= 0.0,
            "FaultSpec: stragglerFactor must be positive");
    fatalIf(spec.stragglerDurationSec < 0.0,
            "FaultSpec: negative stragglerDurationSec");
    fatalIf(spec.numDomains < 0, "FaultSpec: negative numDomains");
    for (int d : spec.domainOf)
        fatalIf(d < 0, "FaultSpec: negative domain in domainOf");
    fatalIf(spec.domainMtbfSec < 0.0,
            "FaultSpec: negative domainMtbfSec");
    fatalIf(spec.domainMttrSec < 0.0,
            "FaultSpec: negative domainMttrSec");
    fatalIf(spec.domainMtbfSec > 0.0 && !spec.hasDomains(),
            "FaultSpec: domainMtbfSec needs a domain map "
            "(numDomains or domainOf)");
    fatalIf(spec.domainMtbfSec > 0.0 && spec.domainMttrSec <= 0.0 &&
                spec.mttrSec <= 0.0,
            "FaultSpec: domain MTBF draws need a positive repair "
            "time (domainMttrSec or mttrSec)");
    fatalIf(spec.drainFactorThreshold < 0.0,
            "FaultSpec: negative drainFactorThreshold");
    for (const FaultEvent &e : spec.events) {
        fatalIf(e.kind == FaultKind::Rejoin,
                "FaultSpec: rejoin events are reported, not "
                "scheduled — schedule a crash with a downtime");
        fatalIf(e.kind == FaultKind::Drain,
                "FaultSpec: drain events are reported, not "
                "scheduled — they fire when a degrade crosses "
                "drainFactorThreshold");
        fatalIf(e.at < 0, "FaultSpec: negative event time");
        if (e.domain >= 0) {
            // Domain-targeted events belong to the DomainFaultPlan;
            // validate the shared bits once, on every instance.
            fatalIf(e.kind != FaultKind::Crash,
                    "FaultSpec: only crashes can target a domain");
            fatalIf(!spec.hasDomains(),
                    "FaultSpec: a domain-targeted crash needs a "
                    "domain map (numDomains or domainOf)");
            fatalIf(e.domain >= spec.domainCount(),
                    "FaultSpec: crash targets a domain beyond the "
                    "domain map");
            continue;
        }
        if (e.instance != instance)
            continue;
        if (e.kind == FaultKind::Degrade) {
            fatalIf(e.duration <= 0,
                    "FaultSpec: degrade events need a positive "
                    "window");
            fatalIf(e.factor <= 0.0,
                    "FaultSpec: degrade factor must be positive");
        }
        explicit_.push_back(e);
    }
    std::stable_sort(explicit_.begin(), explicit_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    if (random_)
        armRandom(0);
}

void
FaultPlan::armRandom(PicoSec after)
{
    nextRandomAt_ =
        after + secToPs(rng_.exponential(1.0 / mtbfSec_));
}

bool
FaultPlan::pending() const
{
    return !explicit_.empty() || nextRandomAt_ >= 0;
}

PicoSec
FaultPlan::nextAt() const
{
    if (!pending())
        return -1;
    if (explicit_.empty())
        return nextRandomAt_;
    if (nextRandomAt_ < 0)
        return explicit_.front().at;
    return std::min(explicit_.front().at, nextRandomAt_);
}

FaultEvent
FaultPlan::pop()
{
    panicIf(!pending(), "FaultPlan::pop with nothing scheduled");
    if (!explicit_.empty() &&
        (nextRandomAt_ < 0 ||
         explicit_.front().at <= nextRandomAt_)) {
        FaultEvent e = explicit_.front();
        explicit_.pop_front();
        return e;
    }
    // Random event: one fixed draw order (kind, then window) so the
    // stream is a pure function of the spec and the instance seed.
    FaultEvent e;
    e.instance = instance_;
    e.at = nextRandomAt_;
    const bool straggle =
        stragglerFraction_ > 0.0 &&
        rng_.uniform() < stragglerFraction_;
    if (straggle) {
        e.kind = FaultKind::Degrade;
        e.factor = stragglerFactor_;
        const double window =
            stragglerDurationSec_ > 0.0
                ? stragglerDurationSec_
                : rng_.exponential(1.0 / mttrSec_);
        e.duration = std::max<PicoSec>(1, secToPs(window));
    } else {
        e.kind = FaultKind::Crash;
        e.duration = std::max<PicoSec>(
            1, secToPs(rng_.exponential(1.0 / mttrSec_)));
    }
    // The machine cannot fail again until this fault's window ends.
    armRandom(e.at + e.duration);
    return e;
}

DomainFaultPlan::DomainFaultPlan(const FaultSpec &spec, int domain,
                                 std::uint64_t fleet_seed)
    : random_(spec.domainMtbfSec > 0.0), domain_(domain),
      mtbfSec_(spec.domainMtbfSec),
      mttrSec_(spec.domainMttrSec > 0.0 ? spec.domainMttrSec
                                        : spec.mttrSec),
      rng_(domainStreamSeed(fleet_seed, domain))
{
    for (const FaultEvent &e : spec.events) {
        if (e.domain != domain)
            continue;
        explicit_.push_back(e);
    }
    std::stable_sort(explicit_.begin(), explicit_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    if (random_)
        armRandom(0);
}

void
DomainFaultPlan::armRandom(PicoSec after)
{
    nextRandomAt_ =
        after + secToPs(rng_.exponential(1.0 / mtbfSec_));
}

bool
DomainFaultPlan::pending() const
{
    return !explicit_.empty() || nextRandomAt_ >= 0;
}

PicoSec
DomainFaultPlan::nextAt() const
{
    if (!pending())
        return -1;
    if (explicit_.empty())
        return nextRandomAt_;
    if (nextRandomAt_ < 0)
        return explicit_.front().at;
    return std::min(explicit_.front().at, nextRandomAt_);
}

FaultEvent
DomainFaultPlan::pop()
{
    panicIf(!pending(),
            "DomainFaultPlan::pop with nothing scheduled");
    if (!explicit_.empty() &&
        (nextRandomAt_ < 0 ||
         explicit_.front().at <= nextRandomAt_)) {
        FaultEvent e = explicit_.front();
        explicit_.pop_front();
        return e;
    }
    // Random domain crash: one fixed draw (downtime) so the stream
    // is a pure function of the spec and the domain seed.
    FaultEvent e;
    e.kind = FaultKind::Crash;
    e.domain = domain_;
    e.at = nextRandomAt_;
    e.duration = std::max<PicoSec>(
        1, secToPs(rng_.exponential(1.0 / mttrSec_)));
    // The domain cannot fail again until this repair window ends.
    armRandom(e.at + e.duration);
    return e;
}

std::uint64_t
faultStreamSeed(std::uint64_t fleet_seed, int instance)
{
    // splitmix finalizer over (seed, instance) plus a fault-only
    // salt: disjoint from the `seed + instance` workload streams by
    // construction, and stable across standard libraries.
    std::uint64_t x = fleet_seed * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(instance);
    x ^= 0xFA17'FA17'FA17'FA17ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
domainStreamSeed(std::uint64_t fleet_seed, int domain)
{
    // Same finalizer, a domain-only salt: disjoint from every
    // per-instance fault stream (different salt) and from every
    // workload/expert stream (different construction).
    std::uint64_t x = fleet_seed * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(domain);
    x ^= 0xD0'0D'D0'0D'D0'0D'D0'0DULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

namespace
{

/** Split @p text on any of @p seps, trimming surrounding
 *  whitespace and dropping empty pieces ("a; b" == "a;b"). */
std::vector<std::string>
splitAny(const std::string &text, const char *seps)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find_first_of(seps, start);
        std::size_t stop =
            end == std::string::npos ? text.size() : end;
        while (start < stop && std::isspace(static_cast<unsigned char>(
                                   text[start])))
            ++start;
        while (stop > start && std::isspace(static_cast<unsigned char>(
                                   text[stop - 1])))
            --stop;
        if (stop > start)
            out.push_back(text.substr(start, stop - start));
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    return out;
}

double
parseNumber(const std::string &field, const std::string &item)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(field, &used);
        fatalIf(used != field.size(),
                "--faults: bad number '" + field + "' in '" + item +
                    "'");
        return v;
    } catch (const std::exception &) {
        fatal("--faults: bad number '" + field + "' in '" + item +
              "'");
    }
}

} // namespace

std::vector<FaultEvent>
parseFaultList(const std::string &text)
{
    std::vector<FaultEvent> events;
    for (const std::string &item : splitAny(text, ";,")) {
        const std::size_t atPos = item.find('@');
        fatalIf(atPos == std::string::npos,
                "--faults: '" + item +
                    "' — expected kind@sec:instance[:...]");
        const std::string kind = item.substr(0, atPos);
        const std::vector<std::string> fields =
            splitAny(item.substr(atPos + 1), ":");
        fatalIf(fields.size() < 2,
                "--faults: '" + item +
                    "' — need at least time and instance");
        FaultEvent e;
        const double sec = parseNumber(fields[0], item);
        fatalIf(sec < 0.0,
                "--faults: negative time in '" + item + "'");
        e.at = secToPs(sec);
        if (fields[1].rfind("domain=", 0) == 0) {
            // Correlated event: crash@sec:domain=D[:downtime-sec]
            // strikes every instance of the domain at once.
            fatalIf(kind != "crash",
                    "--faults: only crash can target a domain in '" +
                        item + "'");
            const double dom =
                parseNumber(fields[1].substr(7), item);
            e.domain = static_cast<int>(dom);
            fatalIf(e.domain < 0 ||
                        static_cast<double>(e.domain) != dom,
                    "--faults: domain must be a non-negative "
                    "integer in '" +
                        item + "'");
        } else {
            const double inst = parseNumber(fields[1], item);
            e.instance = static_cast<int>(inst);
            fatalIf(e.instance < 0 ||
                        static_cast<double>(e.instance) != inst,
                    "--faults: instance must be a non-negative "
                    "integer in '" +
                        item + "'");
        }
        if (kind == "crash") {
            fatalIf(fields.size() > 3,
                    "--faults: too many fields in '" + item +
                        "' (crash@sec:instance[:downtime-sec])");
            e.kind = FaultKind::Crash;
            e.duration = -1;
            if (fields.size() == 3) {
                const double down = parseNumber(fields[2], item);
                fatalIf(down <= 0.0,
                        "--faults: downtime must be positive in '" +
                            item + "'");
                e.duration = secToPs(down);
            }
        } else if (kind == "degrade") {
            fatalIf(fields.size() < 3 || fields.size() > 4,
                    "--faults: '" + item +
                        "' — degrade@sec:instance:window-sec"
                        "[:factor]");
            e.kind = FaultKind::Degrade;
            const double window = parseNumber(fields[2], item);
            fatalIf(window <= 0.0,
                    "--faults: window must be positive in '" +
                        item + "'");
            e.duration = secToPs(window);
            e.factor = 3.0;
            if (fields.size() == 4) {
                e.factor = parseNumber(fields[3], item);
                fatalIf(e.factor <= 0.0,
                        "--faults: factor must be positive in '" +
                            item + "'");
            }
        } else {
            fatal("--faults: unknown kind '" + kind + "' in '" +
                  item + "' (crash | degrade)");
        }
        events.push_back(e);
    }
    return events;
}

} // namespace duplex
