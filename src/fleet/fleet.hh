/**
 * @file
 * Fleet-scale serving: N registry-built instances behind a router.
 *
 * PRs 1-5 evaluate a single serving instance; the ROADMAP north
 * star ("heavy traffic from millions of users") is a fleet of them
 * behind a load balancer. FleetDriver is that composition: it owns
 * N independent instances — each a registry-built ServingSystem
 * with its own ContinuousBatcher, RNG stream (seed + instance id)
 * and KV budget, driven by the same DriverLoop the engine runs — and
 * consumes ONE shared WorkloadSource stream, handing each arriving
 * request to a pluggable RoutingPolicy (fleet/policy.hh).
 *
 * Interleaving discipline (the determinism contract): a request is
 * routed once its arrival time reaches the minimum instance clock,
 * and the instance furthest behind in simulated time always steps
 * next (lowest id on ties). Routing therefore sees a reproducible
 * snapshot of instance state, every run is byte-identical, and a
 * 1-instance round-robin fleet executes the exact clock/stage
 * sequence of a bare SimulationEngine run (pinned bit-for-bit in
 * tests/fleet/test_fleet.cc).
 *
 * Autoscaling (ScaleSpec): the driver tracks the observed arrival
 * rate over a sliding window; sustained load above
 * upQpsPerInstance x fleet spins up a fresh instance (its clock
 * starts at the provisioning time), load below downQpsPerInstance x
 * fleet drains the highest-id instance — no new admissions, active
 * requests finish — before retiring it. Scale events surface
 * through FleetObserver.
 *
 * Fault injection (FleetConfig::faults, fleet/faults.hh): scheduled
 * or seeded crashes evict an instance's queued and active requests
 * (their KV is lost; retries restart from prefill after a RetrySpec
 * backoff, re-routed like fresh arrivals), down instances are
 * ejected from every routing snapshot until their repair time, and
 * degraded-straggler windows scale an instance's stage times while
 * failure-aware policies steer around it. A failure-domain map
 * (FaultSpec::numDomains / domainOf) adds correlated loss: a domain
 * crash — explicit or drawn from the per-domain fault stream —
 * strikes every instance of the rack/zone at once, and the
 * domain-spread routing policy plus the per-domain availability in
 * FleetResult measure how routing bounds the blast radius. A
 * degrade window past FaultSpec::drainFactorThreshold proactively
 * DRAINS the instance: it stops admitting and its queued (never
 * admitted) requests migrate back through the router with no retry
 * cost. All of it stays inside the determinism contract: fault
 * draws live on dedicated RNG streams, so a fleet with faults
 * disabled is byte-identical to one that never heard of them, and
 * every faulted run double-runs byte-identical.
 */

#ifndef DUPLEX_FLEET_FLEET_HH
#define DUPLEX_FLEET_FLEET_HH

#include <deque>
#include <memory>
#include <vector>

#include "fleet/faults.hh"
#include "fleet/policy.hh"
#include "sim/driver.hh"
#include "sim/observers.hh"

namespace duplex
{

/** Arrival-rate-driven autoscaling knobs. */
struct ScaleSpec
{
    bool enabled = false;

    int minInstances = 1;
    int maxInstances = 8;

    /** Spin up when observed QPS exceeds this per instance. */
    double upQpsPerInstance = 4.0;

    /** Drain an instance when observed QPS falls below this. */
    double downQpsPerInstance = 1.0;

    /** Sliding window the arrival rate is observed over. */
    double windowSec = 5.0;

    /** Minimum simulated time between scale decisions. */
    double cooldownSec = 10.0;

    /**
     * Availability-aware mode: both scale thresholds act on the
     * fleet's EFFECTIVE capacity — accepting x (1 - observed
     * unavailability) — instead of the raw accepting count, so a
     * fleet losing an MTTR/MTBF share of its instance-time to
     * crashes provisions that share as spare headroom instead of
     * queueing retries. Observed unavailability is the downtime
     * fraction accrued so far (open intervals included), a
     * deterministic function of the run; the mode is inert without
     * fault injection (unavailability is exactly 0).
     */
    bool availabilityAware = false;
};

/** One fleet-scale run. */
struct FleetConfig
{
    /** Per-instance run configuration (system, workload, limits).
     *  Instance i gets seed sim.seed + i for its RNG stream. */
    SimConfig sim;

    /** Instances at start (scaling may grow/shrink within
     *  [minInstances, maxInstances] afterwards). */
    int instances = 1;

    /** Routing-policy registry id (fleet/policy.hh). */
    std::string policy = "round-robin";

    ScaleSpec scaling;

    /** Fault schedule; default-constructed = disabled (the
     *  bit-identical-to-the-fault-free-fleet contract). */
    FaultSpec faults;

    /** How crashed-out requests flow back through the router. */
    RetrySpec retry;
};

/** One autoscaling decision, surfaced through FleetObserver. */
struct ScaleEvent
{
    enum class Kind
    {
        Up,    //!< fresh instance provisioned
        Drain, //!< instance stopped accepting, finishing work
        Retire //!< drained instance fully idle and torn down
    };

    Kind kind = Kind::Up;
    PicoSec time = 0;
    int instance = -1;
    double observedQps = 0.0;
    int acceptingAfter = 0; //!< accepting instances after the event
};

/**
 * Availability accounting of one failure domain (rack/zone, as
 * FaultSpec's domain map stripes the fleet). Two measures:
 * `availability` is time-based (downtime share of the run window),
 * `served()` is request-weighted (the fraction of requests routed
 * into the domain that were not crashed out of it) — the measure a
 * domain-spread router actually improves, since balancing in-flight
 * work across domains bounds what one correlated crash can take.
 */
struct DomainAvailability
{
    int domain = -1;
    int instances = 0; //!< instances the map places in the domain
    int crashes = 0;   //!< crashes applied to the domain's instances

    std::int64_t routed = 0; //!< requests routed into the domain
    std::int64_t lost = 0;   //!< requests crashed out of the domain

    /** Downtime summed over the domain's instances. */
    PicoSec downtime = 0;

    /** Time-based: 1 - downtime / (makespan x instances). */
    double availability = 1.0;

    /** Request-weighted service availability. */
    double served() const
    {
        return routed > 0
                   ? 1.0 - static_cast<double>(lost) /
                               static_cast<double>(routed)
                   : 1.0;
    }
};

/** The fleet-wide outcome: per-instance results folded together. */
struct FleetResult
{
    /** Latency samples merged across instances (SampleStats::merge);
     *  elapsed is the fleet makespan (max instance clock). */
    ServingMetrics metrics;

    /** Time/energy totals summed across instances. */
    StageResult totals;

    std::int64_t generatedTokens = 0;
    std::int64_t requestsRouted = 0;
    std::int64_t requestsRetired = 0;

    int peakBatch = 0;     //!< largest batch on any instance
    int peakInstances = 0; //!< most instances alive at once
    int scaleUps = 0;
    int scaleDowns = 0;

    // --- availability accounting (all zero in fault-free runs) --

    int crashes = 0;        //!< fail-stop faults applied
    int degradeWindows = 0; //!< straggler windows applied
    int drains = 0;         //!< proactive drains applied

    /** Queued requests a proactive drain re-routed (no work lost,
     *  no retry budget consumed — they had never been admitted). */
    std::int64_t requestsMigrated = 0;

    /** Evictions: one request crashed out twice counts twice. */
    std::int64_t requestsLost = 0;

    /** Generated tokens thrown away with evicted requests — work
     *  the fleet did and then lost (retries redo it from prefill). */
    std::int64_t lostWorkTokens = 0;

    std::int64_t retriesScheduled = 0;

    /** Requests that exhausted RetrySpec::maxAttempts and left the
     *  system unserved. In a run that drains fully,
     *  requestsRetired + requestsDropped == workload requests. */
    std::int64_t requestsDropped = 0;

    /** Instance-time spent crashed out, summed over instances. */
    PicoSec totalDowntime = 0;

    /** Applied fault/rejoin timeline, in application order;
     *  `at` holds the effective (stage-boundary) strike time. */
    std::vector<FaultEvent> faultEvents;

    /**
     * Fraction of instance-time the fleet was up:
     * 1 - totalDowntime / (makespan x instances ever provisioned).
     * 1.0 for an empty or fault-free run.
     */
    double availability() const
    {
        if (metrics.elapsed <= 0 || perInstance.empty())
            return 1.0;
        const double denom =
            static_cast<double>(metrics.elapsed) *
            static_cast<double>(perInstance.size());
        const double frac =
            static_cast<double>(totalDowntime) / denom;
        return frac >= 1.0 ? 0.0 : 1.0 - frac;
    }

    /**
     * KV prefix-cache counters summed across instances (each
     * instance owns an independent pool — src/kvcache/); all-zero
     * when the cache was disabled. The fleet-wide hit rate is what
     * separates session-affinity routing (one session's turns keep
     * landing on the instance holding their prefix) from
     * load-only policies that scatter them.
     */
    PrefixCacheMetrics prefixCache;

    /** Final per-instance results, in instance-id order (includes
     *  instances retired mid-run). */
    std::vector<SimResult> perInstance;

    /** Downtime per instance, parallel to perInstance (all zero in
     *  fault-free runs). */
    std::vector<PicoSec> perInstanceDowntime;

    /** Per-domain availability, in domain-id order; empty unless
     *  the fault spec maps instances into failure domains. */
    std::vector<DomainAvailability> perDomain;

    /**
     * Worst request-weighted service availability over the domains
     * (min of DomainAvailability::served()); 1.0 without a domain
     * map. The headline metric of the bench_faults domains x policy
     * sweep — domain-spread routing exists to raise it.
     */
    double worstDomainAvailability() const
    {
        double worst = 1.0;
        for (const DomainAvailability &d : perDomain)
            if (d.served() < worst)
                worst = d.served();
        return worst;
    }

    std::vector<ScaleEvent> scaleEvents;
};

/**
 * Fleet-level callbacks, the FleetObserver extension of the
 * SimObserver idea: per-stage and per-retire events carry the
 * instance id, and scale events report autoscaling decisions.
 * Ordering mirrors the engine contract per instance; events from
 * different instances interleave in simulated-time order (the
 * min-clock stepping discipline).
 */
class FleetObserver
{
  public:
    virtual ~FleetObserver() = default;

    virtual void onFleetBegin(const FleetConfig &config)
    {
        (void)config;
    }

    virtual void onInstanceUp(int instance, PicoSec now)
    {
        (void)instance;
        (void)now;
    }

    virtual void onRequestRouted(int instance,
                                 const Request &request, PicoSec now)
    {
        (void)instance;
        (void)request;
        (void)now;
    }

    virtual void onStage(int instance, const StageObservation &obs)
    {
        (void)instance;
        (void)obs;
    }

    virtual void onRequestRetired(int instance,
                                  const Request &request,
                                  PicoSec now)
    {
        (void)instance;
        (void)request;
        (void)now;
    }

    virtual void onScaleEvent(const ScaleEvent &event)
    {
        (void)event;
    }

    /**
     * A fault struck @p instance (or it rejoined — event.kind says
     * which). @p now is the effective simulated time: the scheduled
     * strike aligned forward to the stage boundary when the
     * instance's clock had already run past it.
     */
    virtual void onFault(int instance, const FaultEvent &event,
                         PicoSec now)
    {
        (void)instance;
        (void)event;
        (void)now;
    }

    /**
     * @p request crashed out of @p instance. dropped=false: its
     * @p attempt-th re-route enters the router at simulated time
     * @p at (RetrySpec backoff applied). dropped=true: the retry
     * budget is exhausted and the request leaves the system,
     * counted in FleetResult::requestsDropped.
     */
    virtual void onRetry(int instance, const Request &request,
                         int attempt, bool dropped, PicoSec at)
    {
        (void)instance;
        (void)request;
        (void)attempt;
        (void)dropped;
        (void)at;
    }

    virtual void onFleetEnd(const FleetResult &result)
    {
        (void)result;
    }
};

/**
 * Runs one fleet: construct over a FleetConfig, attach observers,
 * run() once. Deterministic by construction — routing is a pure
 * function of arrival order and instance state, instances step in
 * min-clock order, and every RNG stream is seeded from the config.
 */
class FleetDriver
{
  public:
    explicit FleetDriver(FleetConfig config);
    ~FleetDriver();

    FleetDriver(const FleetDriver &) = delete;
    FleetDriver &operator=(const FleetDriver &) = delete;

    const FleetConfig &config() const { return config_; }

    /** Attach a non-owning observer; call before run(). */
    void addObserver(FleetObserver *observer);

    /** Execute the fleet run; call exactly once. */
    FleetResult run();

  private:
    struct Instance;

    /** Per-instance SimObserver shim (fleet.cc); reaches back into
     *  shared_ to deliver retirement feedback. */
    friend class InstanceObserver;

    FleetConfig config_;
    std::vector<FleetObserver *> observers_;
    std::vector<std::unique_ptr<Instance>> instances_;
    std::unique_ptr<RoutingPolicy> policy_;
    bool ran_ = false;

    /** The shared stream's admission discipline, mirrored by every
     *  instance's push-fed queue. Set before the first spawn. */
    bool closedLoop_ = true;

    /**
     * run()'s shared arrival queue, while run() is live: the
     * retirement-feedback channel. Every instance retirement is
     * forwarded here so a session workload (workload/source.hh) can
     * release the session's next turn into the shared stream — a
     * no-op for every source without retirement feedback.
     */
    ArrivalQueue *shared_ = nullptr;

    // --- autoscaling state -------------------------------------
    std::deque<PicoSec> arrivalWindow_;
    PicoSec lastScaleTime_ = 0;
    std::vector<ScaleEvent> scaleEvents_;
    int scaleUps_ = 0;
    int scaleDowns_ = 0;

    // --- fault-injection state ---------------------------------
    bool faultsEnabled_ = false;

    /** A crashed-out request waiting out its retry backoff. */
    struct PendingRetry
    {
        PicoSec at = 0;       //!< when the retry becomes routable
        std::int64_t seq = 0; //!< FIFO tiebreak among equal times
        Request req;
    };

    /** Min-heap on (at, seq) via std::push_heap/pop_heap with the
     *  retryLater comparator (fleet.cc). front() = earliest. */
    std::vector<PendingRetry> retries_;
    std::int64_t retrySeq_ = 0;

    int crashes_ = 0;
    int degradeWindows_ = 0;
    int drains_ = 0;
    std::int64_t requestsLost_ = 0;
    std::int64_t lostWorkTokens_ = 0;
    std::int64_t retriesScheduled_ = 0;
    std::int64_t requestsDropped_ = 0;
    std::int64_t requestsMigrated_ = 0;
    PicoSec totalDowntime_ = 0;
    std::vector<FaultEvent> faultRecords_;

    /** One correlated-crash timeline per failure domain (empty
     *  without a domain map or with faults disabled). */
    std::vector<DomainFaultPlan> domainPlans_;

    // Per-domain availability counters, indexed by domain id (all
    // empty without a domain map).
    std::vector<std::int64_t> domainRouted_;
    std::vector<std::int64_t> domainLost_;
    std::vector<int> domainCrashes_;

    int acceptingCount() const;
    std::vector<InstanceStatus> snapshot() const;
    Instance &spawn(PicoSec now);
    void maybeScale(PicoSec now);
    void retireInstance(Instance &inst, FleetResult &result);
    double observedQps(PicoSec now);
    double observedUnavailability(PicoSec now) const;

    bool anyRoutable() const;
    bool serviceFaults(Instance &inst, PicoSec horizon);
    void serviceDomainFaults(PicoSec horizon);
    void applyCrash(Instance &inst, const FaultEvent &event);
    void applyDegrade(Instance &inst, const FaultEvent &event);
    void applyDrain(Instance &inst, const FaultEvent &event,
                    PicoSec now);
    void rejoinInstance(Instance &inst, PicoSec at);
    void scheduleRetry(Request request, int instance, PicoSec now);
    bool forceRejoinEarliest();
    bool forceDrainEndEarliest();
};

/**
 * Fleet-wide per-request SLO attainment and goodput: the
 * SloAttainment observer (sim/observers.hh) fed from every
 * instance's retirements — the headline metric bench_fleet judges
 * routing policies by.
 */
class FleetSloAttainment : public FleetObserver
{
  public:
    explicit FleetSloAttainment(SloSpec slo = {}) : slo_(slo) {}

    void onRequestRetired(int instance, const Request &request,
                          PicoSec now) override
    {
        (void)instance;
        slo_.onRequestRetired(request, now);
    }

    const SloAttainment &attainment() const { return slo_; }

  private:
    SloAttainment slo_;
};

/**
 * Fleet-wide warm/cold request split under a KV prefix cache: the
 * PrefixCacheStats observer (sim/observers.hh) fed from every
 * instance's retirements. The fleet-level TTFT gap it reports is
 * the benefit session-affinity routing is judged by.
 */
class FleetPrefixCacheStats : public FleetObserver
{
  public:
    void onRequestRetired(int instance, const Request &request,
                          PicoSec now) override
    {
        (void)instance;
        stats_.onRequestRetired(request, now);
    }

    const PrefixCacheStats &stats() const { return stats_; }

  private:
    PrefixCacheStats stats_;
};

/**
 * Per-instance utilization folded the way GroupUtilization folds
 * device groups: stages run, busy time, tokens and retirements per
 * instance, for quickstart's fleet breakdown table.
 */
class FleetUtilization : public FleetObserver
{
  public:
    struct InstanceStats
    {
        int id = -1;
        std::int64_t stages = 0;
        PicoSec busyTime = 0;
        std::int64_t routed = 0;
        std::int64_t retired = 0;
    };

    void onRequestRouted(int instance, const Request &request,
                         PicoSec now) override;
    void onStage(int instance, const StageObservation &obs) override;
    void onRequestRetired(int instance, const Request &request,
                          PicoSec now) override;

    /** Per-instance stats, in instance-id order. */
    const std::vector<InstanceStats> &instances() const
    {
        return stats_;
    }

  private:
    std::vector<InstanceStats> stats_;

    InstanceStats &at(int instance);
};

} // namespace duplex

#endif // DUPLEX_FLEET_FLEET_HH
