#include "fleet/policy.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

namespace
{

/**
 * Cycle through the offered instances in order. The cursor counts
 * routed requests, so the rotation is stable even as autoscaling
 * grows or shrinks the offered set between requests.
 */
class RoundRobinPolicy : public RoutingPolicy
{
  public:
    int route(const Request &,
              const std::vector<InstanceStatus> &instances) override
    {
        const std::size_t k = cursor_++ % instances.size();
        return instances[k].id;
    }

    const std::string &name() const override
    {
        static const std::string kName = "round-robin";
        return kName;
    }

    std::string describe() const override
    {
        return "cycle through instances in id order";
    }

  private:
    std::size_t cursor_ = 0;
};

/**
 * Send the request where the most KV capacity is free: argmax of
 * kvHeadroom (live lifetime-KV sum plus queued commitments already
 * subtracted), lowest instance id on ties. This is the load the
 * batcher actually admits against, so balancing it balances
 * admission stalls.
 */
class LeastLoadedPolicy : public RoutingPolicy
{
  public:
    int route(const Request &,
              const std::vector<InstanceStatus> &instances) override
    {
        const InstanceStatus *best = &instances.front();
        for (const InstanceStatus &s : instances)
            if (s.kvHeadroom > best->kvHeadroom)
                best = &s;
        return best->id;
    }

    const std::string &name() const override
    {
        static const std::string kName = "least-loaded";
        return kName;
    }

    std::string describe() const override
    {
        return "most free KV capacity (live lifetime-KV headroom)";
    }
};

/**
 * Classic JSQ: argmin of in-flight requests (queued plus active),
 * lowest instance id on ties. Blind to request length, so a fleet
 * with mixed prompt sizes balances counts, not KV — the contrast
 * with least-loaded is the point of the bench_fleet sweep.
 */
class JoinShortestQueuePolicy : public RoutingPolicy
{
  public:
    int route(const Request &,
              const std::vector<InstanceStatus> &instances) override
    {
        const InstanceStatus *best = &instances.front();
        auto depth = [](const InstanceStatus &s) {
            return s.queueDepth + s.activeCount;
        };
        for (const InstanceStatus &s : instances)
            if (depth(s) < depth(*best))
                best = &s;
        return best->id;
    }

    const std::string &name() const override
    {
        static const std::string kName = "join-shortest-queue";
        return kName;
    }

    std::string describe() const override
    {
        return "fewest in-flight requests (queued + active)";
    }
};

/**
 * Pin a session's turns to one instance (warm KV reuse in a real
 * deployment): hash the session id over the offered set with the
 * cross-stdlib-stable splitmix mix. Session-less requests fall back
 * to hashing their request id, which spreads them uniformly. The
 * mapping is stable while the offered set is — a scale event
 * remaps, the usual consistent-hashing caveat.
 */
class SessionAffinityPolicy : public RoutingPolicy
{
  public:
    int route(const Request &request,
              const std::vector<InstanceStatus> &instances) override
    {
        const std::uint64_t key =
            request.sessionId >= 0
                ? static_cast<std::uint64_t>(request.sessionId)
                : mixSessionHash(
                      static_cast<std::uint64_t>(request.id));
        const std::size_t k = static_cast<std::size_t>(
            mixSessionHash(key) % instances.size());
        return instances[k].id;
    }

    const std::string &name() const override
    {
        static const std::string kName = "session-affinity";
        return kName;
    }

    std::string describe() const override
    {
        return "hash sessionId to an instance (stable per session)";
    }
};

/**
 * Failure-aware routing: least-loaded (argmax kvHeadroom, lowest id
 * on ties) restricted to Healthy instances; only when every offered
 * instance is inside a degraded-straggler window does it fall back
 * to the full set. In a fault-free fleet every instance is Healthy,
 * so healthy-first IS least-loaded bit-for-bit — the no-fault
 * golden contract extends to the policy (pinned in
 * tests/fleet/test_faults.cc).
 */
class HealthyFirstPolicy : public RoutingPolicy
{
  public:
    int route(const Request &,
              const std::vector<InstanceStatus> &instances) override
    {
        const InstanceStatus *best = nullptr;
        for (const InstanceStatus &s : instances)
            if (s.health == InstanceHealth::Healthy &&
                (best == nullptr || s.kvHeadroom > best->kvHeadroom))
                best = &s;
        if (best == nullptr)
            for (const InstanceStatus &s : instances)
                if (best == nullptr ||
                    s.kvHeadroom > best->kvHeadroom)
                    best = &s;
        return best->id;
    }

    const std::string &name() const override
    {
        static const std::string kName = "healthy-first";
        return kName;
    }

    std::string describe() const override
    {
        return "least-loaded among healthy instances; degraded "
               "only as a last resort";
    }
};

/**
 * Failure-domain-aware routing: pick the domain (rack/zone, as the
 * fault topology maps it into InstanceStatus::domain) holding the
 * fewest in-flight requests, then least-loaded (argmax kvHeadroom,
 * lowest id on ties) within it — so one correlated domain crash
 * takes out the smallest possible slice of in-flight work. Healthy
 * instances are preferred exactly like healthy-first: degraded ones
 * join only when no healthy instance is offered. Domain-less
 * instances (no domain map) count as singleton domains, which
 * degenerates into spreading by in-flight count.
 */
class DomainSpreadPolicy : public RoutingPolicy
{
  public:
    int route(const Request &,
              const std::vector<InstanceStatus> &instances) override
    {
        const InstanceStatus *best = pick(instances, true);
        if (best == nullptr)
            best = pick(instances, false);
        return best->id;
    }

    const std::string &name() const override
    {
        static const std::string kName = "domain-spread";
        return kName;
    }

    std::string describe() const override
    {
        return "least-loaded inside the failure domain with the "
               "fewest in-flight requests";
    }

  private:
    /** In-flight load of @p s's domain over the offered set; a
     *  domain-less instance is its own singleton domain. */
    static std::int64_t
    domainLoad(const InstanceStatus &s,
               const std::vector<InstanceStatus> &instances)
    {
        std::int64_t load = 0;
        for (const InstanceStatus &o : instances)
            if (o.id == s.id ||
                (s.domain >= 0 && o.domain == s.domain))
                load += static_cast<std::int64_t>(o.queueDepth) +
                        static_cast<std::int64_t>(o.activeCount);
        return load;
    }

    const InstanceStatus *
    pick(const std::vector<InstanceStatus> &instances,
         bool healthyOnly)
    {
        const InstanceStatus *best = nullptr;
        std::int64_t bestLoad = 0;
        for (const InstanceStatus &s : instances) {
            if (healthyOnly && s.health != InstanceHealth::Healthy)
                continue;
            const std::int64_t load = domainLoad(s, instances);
            if (best == nullptr || load < bestLoad ||
                (load == bestLoad &&
                 s.kvHeadroom > best->kvHeadroom)) {
                best = &s;
                bestLoad = load;
            }
        }
        return best;
    }
};

template <typename Policy>
RoutingPolicyFactory
factoryOf()
{
    return [] { return std::make_unique<Policy>(); };
}

void
registerStockPolicies(RoutingPolicyRegistry &registry)
{
    registry.add("round-robin",
                 "cycle through instances in id order",
                 factoryOf<RoundRobinPolicy>());
    registry.add("least-loaded",
                 "most free KV capacity (live lifetime-KV headroom)",
                 factoryOf<LeastLoadedPolicy>());
    registry.add("join-shortest-queue",
                 "fewest in-flight requests (queued + active)",
                 factoryOf<JoinShortestQueuePolicy>());
    registry.add("session-affinity",
                 "hash sessionId to an instance (stable per session)",
                 factoryOf<SessionAffinityPolicy>());
    registry.add("healthy-first",
                 "least-loaded among healthy instances; degraded "
                 "only as a last resort",
                 factoryOf<HealthyFirstPolicy>());
    registry.add("domain-spread",
                 "least-loaded inside the failure domain with the "
                 "fewest in-flight requests",
                 factoryOf<DomainSpreadPolicy>());
}

} // namespace

RoutingPolicyRegistry &
RoutingPolicyRegistry::instance()
{
    static RoutingPolicyRegistry *registry = [] {
        auto *r = new RoutingPolicyRegistry;
        registerStockPolicies(*r);
        return r;
    }();
    return *registry;
}

void
RoutingPolicyRegistry::add(const std::string &id,
                           const std::string &summary,
                           RoutingPolicyFactory factory)
{
    fatalIf(contains(id),
            "RoutingPolicyRegistry: duplicate policy id '" + id +
                "'");
    fatalIf(!factory,
            "RoutingPolicyRegistry: null factory for '" + id + "'");
    entries_.push_back({id, summary, std::move(factory)});
}

bool
RoutingPolicyRegistry::contains(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return true;
    return false;
}

const RoutingPolicyRegistry::Entry &
RoutingPolicyRegistry::find(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return e;
    std::string known;
    for (const std::string &k : ids())
        known += (known.empty() ? "" : ", ") + k;
    fatal("RoutingPolicyRegistry: unknown policy '" + id +
          "' (known: " + known + ")");
}

std::unique_ptr<RoutingPolicy>
RoutingPolicyRegistry::make(const std::string &id) const
{
    return find(id).factory();
}

std::vector<std::string>
RoutingPolicyRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.id);
    std::sort(out.begin(), out.end());
    return out;
}

const std::string &
RoutingPolicyRegistry::summary(const std::string &id) const
{
    return find(id).summary;
}

std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(const std::string &id)
{
    return RoutingPolicyRegistry::instance().make(id);
}

std::vector<std::string>
registeredRoutingPolicies()
{
    return RoutingPolicyRegistry::instance().ids();
}

void
registerRoutingPolicy(const std::string &id,
                      const std::string &summary,
                      RoutingPolicyFactory factory)
{
    RoutingPolicyRegistry::instance().add(id, summary,
                                          std::move(factory));
}

} // namespace duplex
