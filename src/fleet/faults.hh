/**
 * @file
 * Deterministic fault injection for a serving fleet.
 *
 * The PR-6 fleet assumes every instance is perfectly reliable — the
 * one assumption production never grants. This subsystem schedules
 * the failures a replicated serving fleet actually sees and keeps
 * them inside the simulator's determinism contract:
 *
 *  - fail-stop crashes: the instance loses every queued and active
 *    request (their KV is gone — retries restart from prefill) and
 *    stays down for a repair interval before rejoining;
 *  - degraded-straggler windows: the instance carries a stage-time
 *    multiplier for a bounded interval (thermal throttling, a noisy
 *    neighbor, a flaky link) while still serving;
 *  - timed recovery: a crashed instance rejoins with an empty batch
 *    at its repair time, a degraded one sheds its multiplier when
 *    the window closes;
 *  - correlated domain crashes: a failure-domain map (rack/zone)
 *    stripes instances over --domains=N domains, and a dedicated
 *    domain-level fault stream (domainStreamSeed) strikes whole
 *    domains at once — the correlated loss production actually
 *    sees;
 *  - proactive draining: a degrade window whose factor crosses
 *    FaultSpec::drainFactorThreshold stops the instance admitting
 *    and migrates its queued (not active) requests back through
 *    the router instead of waiting to crash-and-retry.
 *
 * Events come either from an explicit list (tests, reproducible
 * scenarios, the quickstart --faults flag) or from seeded MTBF/MTTR
 * draws. Random draws use a DEDICATED per-instance fault RNG stream
 * (faultStreamSeed) so the workload and expert-draw golden streams
 * are untouched: a fleet run with faults disabled is byte-identical
 * to the PR-6 fleet, and every faulted run double-runs
 * byte-identical (pinned in tests/fleet/test_faults.cc and the CI
 * determinism job).
 *
 * FleetDriver (fleet/fleet.hh) owns the failure semantics — this
 * file owns only the schedule (FaultSpec -> per-instance FaultPlan)
 * and the retry discipline (RetrySpec).
 */

#ifndef DUPLEX_FLEET_FAULTS_HH
#define DUPLEX_FLEET_FAULTS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"

namespace duplex
{

/** What kind of fault (or recovery) happened to an instance. */
enum class FaultKind
{
    Crash,   //!< fail-stop: queued + active requests and KV lost
    Degrade, //!< straggler window: stage times scaled by a factor
    Rejoin,  //!< recovery (reported only; never scheduled directly)
    Drain    //!< proactive drain of a heavy straggler (reported
             //!< only; fires when a degrade crosses the threshold)
};

/** Short display name ("crash", "degrade", "rejoin", "drain"). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault against one instance (or a whole domain). */
struct FaultEvent
{
    FaultKind kind = FaultKind::Crash;

    int instance = -1; //!< target instance id (-1: domain event)

    /**
     * Target failure domain (-1: a plain per-instance event). A
     * domain crash strikes every live instance the domain map
     * places in the domain — the correlated rack/zone loss.
     */
    int domain = -1;

    PicoSec at = 0; //!< when the fault strikes (simulated time)

    /**
     * Crash: downtime before the instance rejoins (-1 = never).
     * Degrade: length of the straggler window (must be positive).
     */
    PicoSec duration = -1;

    /** Stage-time multiplier while degraded (Degrade only, > 0). */
    double factor = 1.0;
};

/**
 * Fault schedule for a fleet run: an explicit event list, seeded
 * MTBF/MTTR draws, or both. Default-constructed = faults disabled,
 * which every fleet config gets unless asked otherwise — the
 * bit-identical-to-PR-6 contract.
 */
struct FaultSpec
{
    /** Explicit events (any instance, any order; sorted per
     *  instance by the plan). Validated at plan construction. */
    std::vector<FaultEvent> events;

    /**
     * Mean time between random faults per instance, in simulated
     * seconds; 0 disables the random process. Each instance draws
     * from its own dedicated fault RNG stream (faultStreamSeed), so
     * fault draws never perturb workload or expert streams.
     */
    double mtbfSec = 0.0;

    /** Mean repair time for random crashes (exponential draw). */
    double mttrSec = 2.0;

    /** Fraction of random faults that degrade instead of crash. */
    double stragglerFraction = 0.0;

    /** Stage-time multiplier of random straggler windows. */
    double stragglerFactor = 3.0;

    /** Straggler window length; 0 draws exponential(mttrSec). */
    double stragglerDurationSec = 0.0;

    // --- failure-domain topology (correlated loss) -------------

    /**
     * Failure domains the fleet is striped over (rack/zone model):
     * instance i lands in domain i % numDomains unless domainOf
     * overrides it. 0 (the default) = no domain topology; every
     * domain knob below is then inert.
     */
    int numDomains = 0;

    /** Explicit instance -> domain map; instances beyond the end
     *  fall back to the numDomains stripe. Entries must be >= 0. */
    std::vector<int> domainOf;

    /**
     * Mean time between correlated domain crashes, per domain, in
     * simulated seconds; 0 disables the random domain process.
     * Draws live on a dedicated per-domain fault stream
     * (domainStreamSeed) — a pure function of (spec, domain, seed),
     * never of fleet interleaving.
     */
    double domainMtbfSec = 0.0;

    /** Mean repair time of random domain crashes; 0 falls back to
     *  mttrSec. */
    double domainMttrSec = 0.0;

    /**
     * Proactive-drain threshold: a degrade window whose stage-time
     * factor is >= this stops the instance admitting and migrates
     * its queued (not active) requests back through the router
     * (FaultKind::Drain). 0 (the default) never drains.
     */
    double drainFactorThreshold = 0.0;

    /** Domains in the topology (stripe count or explicit map). */
    int domainCount() const
    {
        int n = numDomains;
        for (int d : domainOf)
            if (d + 1 > n)
                n = d + 1;
        return n;
    }

    /** True when a domain topology is configured. */
    bool hasDomains() const { return domainCount() > 0; }

    /** Domain of @p instance; -1 without a domain topology. */
    int domainFor(int instance) const
    {
        if (instance >= 0 &&
            instance < static_cast<int>(domainOf.size()))
            return domainOf[static_cast<std::size_t>(instance)];
        const int n = domainCount();
        return n > 0 ? instance % n : -1;
    }

    /** True when any fault can ever fire. */
    bool enabled() const
    {
        return !events.empty() || mtbfSec > 0.0 ||
               domainMtbfSec > 0.0;
    }
};

/** How lost requests flow back through the router after a crash. */
struct RetrySpec
{
    /**
     * Re-routes a request may consume before it is dropped: a
     * request crashed for the (maxAttempts+1)-th time is dropped
     * and counted in FleetResult.requestsDropped. 0 = never retry.
     */
    int maxAttempts = 3;

    /** Backoff before the first retry, in simulated seconds. */
    double backoffSec = 0.05;

    /**
     * Backoff growth per attempt: delay(k) = backoffSec *
     * multiplier^(k-1). 1.0 = fixed backoff.
     */
    double multiplier = 2.0;

    /** Simulated backoff ahead of attempt @p attempt (1-based). */
    PicoSec backoffFor(int attempt) const;
};

/**
 * The materialized fault timeline of ONE instance: explicit events
 * filtered and sorted, plus the lazily drawn random process. The
 * random stream re-arms only after the previous fault's window ends
 * (a machine cannot crash while it is already down), so draws are a
 * deterministic function of (spec, instance, seed) alone — never of
 * fleet interleaving.
 */
class FaultPlan
{
  public:
    /** An inert plan: pending() is false forever. */
    FaultPlan() = default;

    /**
     * Build instance @p instance's timeline under @p spec. The
     * fault RNG is seeded from faultStreamSeed(@p fleet_seed,
     * @p instance) — disjoint from every workload/expert stream.
     */
    FaultPlan(const FaultSpec &spec, int instance,
              std::uint64_t fleet_seed);

    /** True when another fault is scheduled. */
    bool pending() const;

    /** Strike time of the next fault; -1 when none pending. */
    PicoSec nextAt() const;

    /**
     * Consume the next fault. Random events draw their kind and
     * window here (one fixed draw order), then re-arm the process
     * after the window closes.
     */
    FaultEvent pop();

  private:
    std::deque<FaultEvent> explicit_;

    bool random_ = false;
    int instance_ = -1;
    double mtbfSec_ = 0.0;
    double mttrSec_ = 0.0;
    double stragglerFraction_ = 0.0;
    double stragglerFactor_ = 1.0;
    double stragglerDurationSec_ = 0.0;
    Rng rng_{0};
    PicoSec nextRandomAt_ = -1;

    void armRandom(PicoSec after);
};

/**
 * The materialized fault timeline of ONE failure domain: explicit
 * domain-targeted crashes sorted, plus the lazily drawn correlated
 * crash process (domainMtbfSec). Exactly the FaultPlan discipline —
 * the stream re-arms only after the previous crash's repair window
 * ends, so draws are a deterministic function of (spec, domain,
 * seed) alone. The FleetDriver fans each popped event out to every
 * live instance the domain map places in the domain.
 */
class DomainFaultPlan
{
  public:
    /** An inert plan: pending() is false forever. */
    DomainFaultPlan() = default;

    /**
     * Build domain @p domain's timeline under @p spec. The fault
     * RNG is seeded from domainStreamSeed(@p fleet_seed,
     * @p domain) — disjoint from every instance fault stream.
     */
    DomainFaultPlan(const FaultSpec &spec, int domain,
                    std::uint64_t fleet_seed);

    /** True when another domain crash is scheduled. */
    bool pending() const;

    /** Strike time of the next crash; -1 when none pending. */
    PicoSec nextAt() const;

    /** Consume the next crash (draws downtime, then re-arms the
     *  process after the repair window closes). */
    FaultEvent pop();

  private:
    std::deque<FaultEvent> explicit_;

    bool random_ = false;
    int domain_ = -1;
    double mtbfSec_ = 0.0;
    double mttrSec_ = 0.0;
    Rng rng_{0};
    PicoSec nextRandomAt_ = -1;

    void armRandom(PicoSec after);
};

/**
 * Seed of instance @p instance's dedicated fault stream. Mixed away
 * from the `seed + instance` workload streams (splitmix finalizer
 * plus a fault-only salt), so enabling faults cannot perturb any
 * golden draw sequence.
 */
std::uint64_t faultStreamSeed(std::uint64_t fleet_seed,
                              int instance);

/**
 * Seed of domain @p domain's dedicated correlated-fault stream.
 * Salted differently from faultStreamSeed, so domain draws are
 * disjoint from every per-instance fault stream as well as every
 * workload/expert stream.
 */
std::uint64_t domainStreamSeed(std::uint64_t fleet_seed,
                               int domain);

/**
 * Parse the quickstart/bench --faults grammar: a semicolon- or
 * comma-separated list of events,
 *
 *   crash@<sec>:<instance>[:<downtime-sec>]
 *   crash@<sec>:domain=<D>[:<downtime-sec>]
 *   degrade@<sec>:<instance>:<window-sec>[:<factor>]
 *
 * e.g. "crash@2:0;degrade@4:1:2:3.5;crash@6:domain=1:0.5". A crash
 * without a downtime never rejoins; the degrade factor defaults to
 * 3; a domain= crash strikes every instance of the domain at once
 * (needs a domain map — --domains or FaultSpec::domainOf).
 * Malformed items are fatal with a message naming the offending
 * item.
 */
std::vector<FaultEvent> parseFaultList(const std::string &text);

} // namespace duplex

#endif // DUPLEX_FLEET_FAULTS_HH
