#include "fleet/fleet.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "sim/registry.hh"
#include "workload/registry.hh"

namespace duplex
{

namespace
{

/** The registry id the per-instance systems are built from. */
const std::string &
systemIdOf(const SimConfig &config)
{
    static std::string legacy;
    if (!config.systemName.empty())
        return config.systemName;
    legacy = systemId(config.system);
    return legacy;
}

} // namespace

/**
 * Forwards one instance's engine callbacks to the fleet observers,
 * tagged with the instance id, and counts retirements. begin/end
 * hooks are fleet-level (onFleetBegin/onFleetEnd), so the
 * SimObserver ones stay unused.
 */
class InstanceObserver : public SimObserver
{
  public:
    InstanceObserver(FleetDriver &fleet,
                     const std::vector<FleetObserver *> &observers,
                     int instance)
        : fleet_(fleet), observers_(observers), instance_(instance)
    {
    }

    void onStage(const StageObservation &obs) override
    {
        for (FleetObserver *o : observers_)
            o->onStage(instance_, obs);
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        ++retired_;
        for (FleetObserver *o : observers_)
            o->onRequestRetired(instance_, request, now);
        // Retirement feedback into the shared stream, after the
        // observers (mirroring the engine loop's ordering): a
        // session workload releases its next turn here; a no-op
        // for every other source.
        if (fleet_.shared_ != nullptr)
            fleet_.shared_->notifyRetired(request, now);
    }

    std::int64_t retired() const { return retired_; }

  private:
    FleetDriver &fleet_;
    const std::vector<FleetObserver *> &observers_;
    int instance_;
    std::int64_t retired_ = 0;
};

/** One serving instance: system + steppable loop + router-side
 *  accounting of routed-but-unadmitted KV commitments. */
struct FleetDriver::Instance
{
    int id = -1;
    bool accepting = true;
    bool retired = false;

    // --- fault state (inert unless the fleet injects faults) ---
    InstanceHealth health = InstanceHealth::Healthy;
    bool down = false;       //!< crashed out, awaiting repair
    PicoSec downSince = -1;  //!< when the open downtime began
    PicoSec rejoinAt = -1;   //!< repair time; -1 = never rejoins
    PicoSec degradeEnd = -1; //!< straggler window close; -1 = none
    PicoSec downtime = 0;    //!< closed downtime accrued so far
    FaultPlan plan;          //!< this instance's fault timeline

    /** Failure domain the fault topology places the instance in;
     *  -1 without a domain map. */
    int domain = -1;

    /**
     * Proactively draining: a degrade window crossed the drain
     * threshold, so the instance stopped admitting (its queued
     * requests were migrated) until the window closes or a crash
     * supersedes it. Distinct from !accepting, which is the
     * autoscaler's permanent drain-before-retire.
     */
    bool faultDrain = false;

    /** Correlated domain crashes fanned out to this instance but
     *  not yet due at its clock (time-ordered). */
    std::deque<FaultEvent> domainPending;

    std::unique_ptr<ServingSystem> system;
    std::unique_ptr<InstanceObserver> observer;
    std::unique_ptr<DriverLoop> loop;

    /**
     * Lifetime KV (inputLen + outputLen) of each routed request the
     * batcher has not yet admitted, in routing order. Admission is
     * FIFO, so after each step the entries whose requests were
     * admitted are exactly the front (queue length delta) ones.
     */
    std::deque<std::int64_t> queuedKv;
    std::int64_t queuedKvSum = 0;

    std::int64_t routed = 0;

    /** Drop the front entries the batcher admitted since last sync. */
    void syncQueuedKv()
    {
        while (queuedKv.size() > loop->queueDepth()) {
            queuedKvSum -= queuedKv.front();
            queuedKv.pop_front();
        }
    }
};

FleetDriver::FleetDriver(FleetConfig config)
    : config_(std::move(config))
{
    fatalIf(config_.instances < 1,
            "FleetDriver: need at least one instance");
}

FleetDriver::~FleetDriver() = default;

void
FleetDriver::addObserver(FleetObserver *observer)
{
    panicIf(observer == nullptr, "null FleetObserver attached");
    observers_.push_back(observer);
}

int
FleetDriver::acceptingCount() const
{
    int n = 0;
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting)
            ++n;
    return n;
}

std::vector<InstanceStatus>
FleetDriver::snapshot() const
{
    std::vector<InstanceStatus> out;
    out.reserve(instances_.size());
    for (const auto &inst : instances_) {
        // Crashed (down) and proactively draining instances are
        // ejected outright — the policy never sees one, the
        // failure-semantics mirror of the draining rule.
        if (inst->retired || !inst->accepting || inst->down ||
            inst->faultDrain)
            continue;
        InstanceStatus s;
        s.id = inst->id;
        s.domain = inst->domain;
        s.health = inst->health;
        s.queueDepth = inst->loop->queueDepth();
        s.activeCount = inst->loop->activeCount();
        s.maxKvTokens = inst->loop->maxKvTokens();
        s.kvHeadroom = s.maxKvTokens -
                       inst->loop->activeLifetimeKv() -
                       inst->queuedKvSum;
        s.clock = inst->loop->now();
        out.push_back(s);
    }
    return out;
}

FleetDriver::Instance &
FleetDriver::spawn(PicoSec now)
{
    auto inst = std::make_unique<Instance>();
    inst->id = static_cast<int>(instances_.size());
    SystemOptions opts;
    // Independent RNG stream per instance; instance 0 matches the
    // bare engine's seed, the golden-equivalence anchor.
    opts.seed = config_.sim.seed +
                static_cast<std::uint64_t>(inst->id);
    inst->system =
        makeSystem(systemIdOf(config_.sim), config_.sim.model, opts);
    inst->observer = std::make_unique<InstanceObserver>(
        *this, observers_, inst->id);
    // Push-fed arrivals: the router delivers requests as their
    // arrival times come due; the loop's clock starts at the
    // provisioning time (0 for the initial fleet).
    inst->loop = std::make_unique<DriverLoop>(
        config_.sim, *inst->system, *inst->observer,
        ArrivalQueue(closedLoop_), now);
    // The instance's fault timeline, on its dedicated RNG stream;
    // default-constructed (inert) when faults are disabled so the
    // fault-free fleet never touches the subsystem.
    if (faultsEnabled_)
        inst->plan =
            FaultPlan(config_.faults, inst->id, config_.sim.seed);
    // The domain map is topology, not a fault process: filled
    // whenever domains are configured so domain-aware routing works
    // even before any fault fires.
    if (config_.faults.hasDomains())
        inst->domain = config_.faults.domainFor(inst->id);
    Instance &ref = *inst;
    instances_.push_back(std::move(inst));
    for (FleetObserver *o : observers_)
        o->onInstanceUp(ref.id, now);
    return ref;
}

double
FleetDriver::observedQps(PicoSec now)
{
    const PicoSec window = secToPs(config_.scaling.windowSec);
    while (!arrivalWindow_.empty() &&
           arrivalWindow_.front() + window < now)
        arrivalWindow_.pop_front();
    return static_cast<double>(arrivalWindow_.size()) /
           config_.scaling.windowSec;
}

double
FleetDriver::observedUnavailability(PicoSec now) const
{
    if (now <= 0 || instances_.empty())
        return 0.0;
    PicoSec down = 0;
    for (const auto &inst : instances_) {
        down += inst->downtime;
        // Open downtime interval: count what has accrued so far.
        if (inst->down && inst->downSince >= 0 &&
            inst->downSince < now)
            down += now - inst->downSince;
    }
    const double frac =
        static_cast<double>(down) /
        (static_cast<double>(now) *
         static_cast<double>(instances_.size()));
    // Cap so one long outage cannot demand unbounded spare
    // capacity (effective capacity never drops below 10%).
    return std::min(frac, 0.9);
}

void
FleetDriver::maybeScale(PicoSec now)
{
    const ScaleSpec &spec = config_.scaling;
    const double qps = observedQps(now);
    if (now - lastScaleTime_ < secToPs(spec.cooldownSec))
        return;
    const int accepting = acceptingCount();
    // Availability-aware mode: thresholds act on effective capacity
    // accepting x (1 - observed unavailability) — the MTTR/MTBF
    // share the fleet is losing gets provisioned as spare headroom.
    // Exactly `accepting` when faults are off (unavailability 0),
    // so the mode is inert on a fault-free fleet.
    double capacity = static_cast<double>(accepting);
    if (spec.availabilityAware && faultsEnabled_)
        capacity = static_cast<double>(accepting) *
                   (1.0 - observedUnavailability(now));
    ScaleEvent event;
    event.time = now;
    event.observedQps = qps;
    if (qps > spec.upQpsPerInstance * capacity &&
        accepting < spec.maxInstances) {
        Instance &inst = spawn(now);
        event.kind = ScaleEvent::Kind::Up;
        event.instance = inst.id;
        event.acceptingAfter = accepting + 1;
        ++scaleUps_;
    } else if (qps < spec.downQpsPerInstance * capacity &&
               accepting > spec.minInstances) {
        // Drain the highest-id accepting instance: stop routing to
        // it; it finishes its queued and active requests, then
        // retires (the drain-retires-nothing-in-flight guarantee).
        Instance *victim = nullptr;
        for (const auto &inst : instances_)
            if (!inst->retired && inst->accepting)
                victim = inst.get();
        victim->accepting = false;
        event.kind = ScaleEvent::Kind::Drain;
        event.instance = victim->id;
        event.acceptingAfter = accepting - 1;
        ++scaleDowns_;
    } else {
        return;
    }
    lastScaleTime_ = now;
    scaleEvents_.push_back(event);
    for (FleetObserver *o : observers_)
        o->onScaleEvent(event);
}

void
FleetDriver::retireInstance(Instance &inst, FleetResult &result)
{
    panicIf(!inst.loop->idle(),
            "retiring a fleet instance with in-flight requests");
    inst.retired = true;
    // A draining instance can crash out (its work already evicted
    // and re-routed); retirement closes the downtime interval.
    if (inst.down) {
        const PicoSec d = std::max<PicoSec>(
            0, inst.loop->now() - inst.downSince);
        totalDowntime_ += d;
        inst.downtime += d;
        inst.down = false;
        inst.downSince = -1;
        inst.rejoinAt = -1;
    }
    ScaleEvent event;
    event.kind = ScaleEvent::Kind::Retire;
    event.time = inst.loop->now();
    event.instance = inst.id;
    event.acceptingAfter = acceptingCount();
    scaleEvents_.push_back(event);
    for (FleetObserver *o : observers_)
        o->onScaleEvent(event);
    (void)result; // folding happens once at end, in id order
}

bool
FleetDriver::anyRoutable() const
{
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting && !inst->down &&
            !inst->faultDrain)
            return true;
    return false;
}

/**
 * Fire everything due on @p inst up to simulated time @p horizon,
 * in chronological order: a pending rejoin, a degrade-window close
 * and the scheduled faults interleave (a rejoin can be followed by
 * the next crash in the same call). Fault events that strike while
 * the instance is down are consumed and dropped — a dead machine
 * cannot fail twice. Returns true when anything changed, so callers
 * re-evaluate routing state (a crash changes who is busy and may
 * have queued retries).
 */
bool
FleetDriver::serviceFaults(Instance &inst, PicoSec horizon)
{
    bool fired = false;
    for (;;) {
        const PicoSec rejoin =
            inst.down && inst.rejoinAt >= 0 &&
                    inst.rejoinAt <= horizon
                ? inst.rejoinAt
                : -1;
        const PicoSec degradeEnd =
            !inst.down && inst.degradeEnd >= 0 &&
                    inst.degradeEnd <= horizon
                ? inst.degradeEnd
                : -1;
        const PicoSec fault =
            inst.plan.pending() && inst.plan.nextAt() <= horizon
                ? inst.plan.nextAt()
                : -1;
        const PicoSec domain =
            !inst.domainPending.empty() &&
                    inst.domainPending.front().at <= horizon
                ? inst.domainPending.front().at
                : -1;
        PicoSec next = -1;
        for (PicoSec t : {rejoin, degradeEnd, fault, domain})
            if (t >= 0 && (next < 0 || t < next))
                next = t;
        if (next < 0)
            return fired;
        fired = true;
        if (next == rejoin) {
            rejoinInstance(inst, rejoin);
        } else if (next == degradeEnd) {
            inst.loop->setTimeScale(1.0);
            inst.health = InstanceHealth::Healthy;
            inst.degradeEnd = -1;
            // The window that drove a proactive drain closed: the
            // instance admits again.
            inst.faultDrain = false;
        } else if (next == fault) {
            const FaultEvent e = inst.plan.pop();
            if (inst.down || inst.retired)
                continue;
            if (e.kind == FaultKind::Crash)
                applyCrash(inst, e);
            else
                applyDegrade(inst, e);
        } else {
            // A correlated domain crash fanned out to this member.
            const FaultEvent e = inst.domainPending.front();
            inst.domainPending.pop_front();
            if (inst.down || inst.retired)
                continue;
            applyCrash(inst, e);
        }
    }
}

/**
 * Pop every domain crash due by @p horizon from the per-domain
 * plans and fan it out to the domain's live members; each member
 * applies it at its own stage boundary through serviceFaults. Draws
 * happen here — once, on the domain's dedicated stream — so they
 * stay a pure function of (spec, domain, seed) no matter how the
 * member clocks interleave.
 */
void
FleetDriver::serviceDomainFaults(PicoSec horizon)
{
    for (DomainFaultPlan &plan : domainPlans_) {
        while (plan.pending() && plan.nextAt() <= horizon) {
            const FaultEvent e = plan.pop();
            for (auto &inst : instances_)
                if (!inst->retired && inst->domain == e.domain)
                    inst->domainPending.push_back(e);
        }
    }
}

void
FleetDriver::applyCrash(Instance &inst, const FaultEvent &event)
{
    // Fail-stop at the stage boundary: when a stage ran past the
    // scheduled strike, the crash takes effect at the instance's
    // clock (a stage is atomic; nothing fails mid-matmul).
    const PicoSec now = std::max(event.at, inst.loop->now());
    std::vector<Request> lost;
    inst.loop->evictAll(lost);
    // The KV prefix cache died with the instance's HBM: flush it
    // (ledger-closed — the bytes count as evictions) so post-rejoin
    // lookups all miss instead of reporting phantom warm hits.
    inst.loop->flushPrefixCache();
    inst.queuedKv.clear();
    inst.queuedKvSum = 0;
    // A crash supersedes any straggler window in progress — and the
    // proactive drain that window may have triggered.
    if (inst.degradeEnd >= 0) {
        inst.loop->setTimeScale(1.0);
        inst.degradeEnd = -1;
    }
    inst.faultDrain = false;
    inst.health = InstanceHealth::Healthy;
    inst.down = true;
    inst.downSince = now;
    inst.rejoinAt = event.duration < 0
                        ? -1
                        : std::max(now, event.at + event.duration);
    ++crashes_;
    if (inst.domain >= 0)
        ++domainCrashes_[static_cast<std::size_t>(inst.domain)];
    FaultEvent rec = event;
    rec.instance = inst.id;
    rec.at = now;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, now);
    for (Request &r : lost)
        scheduleRetry(std::move(r), inst.id, now);
}

void
FleetDriver::applyDegrade(Instance &inst, const FaultEvent &event)
{
    const PicoSec now = std::max(event.at, inst.loop->now());
    inst.health = InstanceHealth::Degraded;
    inst.loop->setTimeScale(event.factor);
    // The window closes at its scheduled end even when a stage ran
    // past the start; a window fully consumed mid-stage is cleared
    // by the next serviceFaults pass without scaling anything.
    inst.degradeEnd = event.at + event.duration;
    ++degradeWindows_;
    FaultEvent rec = event;
    rec.instance = inst.id;
    rec.at = now;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, now);
    // Proactive drain: a straggler this heavy is served around, not
    // through — stop admitting and hand the queued requests back to
    // the router instead of waiting for a crash to retry them.
    if (config_.faults.drainFactorThreshold > 0.0 &&
        event.factor >= config_.faults.drainFactorThreshold)
        applyDrain(inst, event, now);
}

void
FleetDriver::applyDrain(Instance &inst, const FaultEvent &event,
                        PicoSec now)
{
    inst.faultDrain = true;
    std::vector<Request> queued;
    inst.loop->evictQueued(queued);
    inst.queuedKv.clear();
    inst.queuedKvSum = 0;
    ++drains_;
    FaultEvent rec = event;
    rec.kind = FaultKind::Drain;
    rec.instance = inst.id;
    rec.at = now;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, now);
    // Migration, not retry: the queued requests were never
    // admitted, so no work is lost and no retry budget is spent.
    // They re-enter the router through the pending heap at the
    // drain time (original queue order preserved via seq), stamped
    // with that time as their arrival — every per-instance queue
    // requires nondecreasing arrivals, and the router hands them to
    // a *different* instance whose queue may already sit past the
    // original stamp.
    for (Request &r : queued) {
        ++requestsMigrated_;
        const PicoSec at = std::max(now, r.arrival);
        r.arrival = at;
        retries_.push_back({at, retrySeq_++, std::move(r)});
        std::push_heap(
            retries_.begin(), retries_.end(),
            [](const PendingRetry &a, const PendingRetry &b) {
                return a.at > b.at ||
                       (a.at == b.at && a.seq > b.seq);
            });
    }
}

void
FleetDriver::rejoinInstance(Instance &inst, PicoSec at)
{
    panicIf(!inst.down, "rejoining an instance that is not down");
    const PicoSec d = std::max<PicoSec>(0, at - inst.downSince);
    totalDowntime_ += d;
    inst.downtime += d;
    inst.down = false;
    inst.downSince = -1;
    inst.rejoinAt = -1;
    // Empty batch, clock resumed at the repair time (no-op when the
    // crash-frozen clock already sits past it).
    inst.loop->advanceTo(at);
    FaultEvent rec;
    rec.kind = FaultKind::Rejoin;
    rec.instance = inst.id;
    rec.at = at;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, at);
}

void
FleetDriver::scheduleRetry(Request request, int instance,
                           PicoSec now)
{
    ++requestsLost_;
    lostWorkTokens_ += request.generated;
    const int dom =
        instances_[static_cast<std::size_t>(instance)]->domain;
    if (dom >= 0)
        ++domainLost_[static_cast<std::size_t>(dom)];
    const int attempt = request.retries + 1;
    if (request.retries >= config_.retry.maxAttempts) {
        ++requestsDropped_;
        for (FleetObserver *o : observers_)
            o->onRetry(instance, request, attempt, true, now);
        return;
    }
    // The retry restarts from prefill — the crashed KV is gone
    // (chunked-prefill progress included).
    request.retries = attempt;
    request.generated = 0;
    request.prefilled = 0;
    request.cachedTokens = 0; // re-admission probes the cache again
    request.firstToken = -1;
    request.finished = -1;
    request.tokenTimes.clear();
    const PicoSec at = now + config_.retry.backoffFor(attempt);
    request.arrival = at;
    ++retriesScheduled_;
    for (FleetObserver *o : observers_)
        o->onRetry(instance, request, attempt, false, at);
    retries_.push_back({at, retrySeq_++, std::move(request)});
    std::push_heap(retries_.begin(), retries_.end(),
                   [](const PendingRetry &a, const PendingRetry &b) {
                       return a.at > b.at ||
                              (a.at == b.at && a.seq > b.seq);
                   });
}

/**
 * When every accepting instance is down, the fleet only makes
 * progress by waiting out the earliest repair: rejoin that instance
 * at its repair time (lowest id on ties) and route there. Returns
 * false when no down accepting instance ever rejoins.
 */
bool
FleetDriver::forceRejoinEarliest()
{
    Instance *best = nullptr;
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting && inst->down &&
            inst->rejoinAt >= 0 &&
            (best == nullptr || inst->rejoinAt < best->rejoinAt))
            best = inst.get();
    if (best == nullptr)
        return false;
    rejoinInstance(*best, best->rejoinAt);
    return true;
}

/**
 * When nothing is routable and nothing is down-with-a-repair, the
 * blockers are proactive drains: close the earliest draining
 * instance's degrade window (firing everything chronologically due
 * by then) so routing can resume — the drain-window mirror of
 * forceRejoinEarliest. Returns false when no instance is draining.
 */
bool
FleetDriver::forceDrainEndEarliest()
{
    Instance *best = nullptr;
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting &&
            inst->faultDrain && inst->degradeEnd >= 0 &&
            (best == nullptr ||
             inst->degradeEnd < best->degradeEnd))
            best = inst.get();
    if (best == nullptr)
        return false;
    const PicoSec end = best->degradeEnd;
    serviceFaults(*best, end);
    // An idle drained instance's clock may sit before the window
    // close; it becomes routable AT the close, like a rejoin.
    if (!best->down && best->loop->idle())
        best->loop->advanceTo(end);
    return true;
}

FleetResult
FleetDriver::run()
{
    panicIf(ran_, "FleetDriver::run called twice");
    ran_ = true;

    policy_ = makeRoutingPolicy(config_.policy);
    int initial = config_.instances;
    if (config_.scaling.enabled)
        initial = std::clamp(initial, config_.scaling.minInstances,
                             config_.scaling.maxInstances);

    for (FleetObserver *o : observers_)
        o->onFleetBegin(config_);

    ArrivalQueue shared(
        makeWorkload(config_.sim.workloadIdOrDefault(),
                     config_.sim.workload),
        config_.sim.numRequests);
    // Instance queues mirror the shared stream's discipline (trace
    // and bursty sources are open loop whatever qps says).
    closedLoop_ = shared.closedLoop();
    // Expose the shared queue (a run() local) to the per-instance
    // observers for retirement feedback; cleared before the fold so
    // the dangling window is exactly the stepping loop.
    shared_ = &shared;

    // Fault injection: decided before the first spawn so every
    // instance (initial and autoscaled) gets its fault timeline.
    faultsEnabled_ = config_.faults.enabled();
    if (faultsEnabled_) {
        fatalIf(config_.retry.maxAttempts < 0,
                "RetrySpec: negative maxAttempts");
        fatalIf(config_.retry.backoffSec < 0.0,
                "RetrySpec: negative backoffSec");
        fatalIf(config_.retry.multiplier <= 0.0,
                "RetrySpec: multiplier must be positive");
    }
    // Failure-domain topology: per-domain counters whenever a
    // domain map exists (domain-aware routing works without any
    // fault process), correlated-crash plans only under faults.
    const int numDomains = config_.faults.domainCount();
    if (numDomains > 0) {
        domainRouted_.assign(static_cast<std::size_t>(numDomains),
                             0);
        domainLost_.assign(static_cast<std::size_t>(numDomains), 0);
        domainCrashes_.assign(static_cast<std::size_t>(numDomains),
                              0);
        if (faultsEnabled_)
            for (int d = 0; d < numDomains; ++d)
                domainPlans_.emplace_back(config_.faults, d,
                                          config_.sim.seed);
    }

    for (int i = 0; i < initial; ++i)
        spawn(0);
    // Autoscaling reacts to observed arrival timestamps; a closed
    // loop has none (arrival = admission), so scaling requires an
    // open-loop workload.
    fatalIf(config_.scaling.enabled && shared.closedLoop(),
            "fleet autoscaling needs an open-loop workload "
            "(qps > 0)");

    FleetResult result;
    result.peakInstances = initial;

    for (;;) {
        // Retire drained instances the moment they go idle, so they
        // stop participating in the min-clock scan.
        for (auto &inst : instances_)
            if (!inst->retired && !inst->accepting &&
                inst->loop->idle())
                retireInstance(*inst, result);

        // Fire faults due at each instance's own clock before any
        // routing or stepping decision reads fleet state — faults
        // strike at stage boundaries, and the last step may have
        // carried an instance's clock past a scheduled strike.
        // Domain plans pump first (draws are interleaving-free, so
        // the furthest clock is a safe horizon); each member then
        // applies its share at its own stage boundary.
        if (faultsEnabled_) {
            if (!domainPlans_.empty()) {
                PicoSec horizon = 0;
                for (const auto &inst : instances_)
                    if (!inst->retired)
                        horizon = std::max(horizon,
                                           inst->loop->now());
                serviceDomainFaults(horizon);
            }
            for (auto &inst : instances_)
                if (!inst->retired)
                    serviceFaults(*inst, inst->loop->now());
        }

        // Route every arrival no BUSY instance is still behind: a
        // busy instance's state at the arrival time is not yet
        // known, so routing must wait for it; an idle instance has
        // nothing to do until the arrival, so its clock simply
        // marches forward (the engine's idleAdvance, applied
        // fleet-wide). Closed loop: arrivals carry no timestamps,
        // so the whole stream routes up front and the queued-KV
        // accounting makes the balancing policies spread it
        // sensibly. Crash retries re-enter here, merged with the
        // shared stream in timestamp order and gated like open-loop
        // arrivals; down instances neither gate routing nor appear
        // in the snapshot.
        for (;;) {
            const bool haveShared = !shared.empty();
            if (!haveShared && retries_.empty())
                break;
            if (faultsEnabled_ && !anyRoutable()) {
                // The whole fleet is down (or draining): wait out
                // the earliest repair — or, when nothing is down
                // with a repair scheduled, close the earliest
                // proactive-drain window — then route there.
                if (!forceRejoinEarliest())
                    fatalIf(!forceDrainEndEarliest(),
                            "fleet: every instance is down or "
                            "draining with no rejoin scheduled and "
                            "requests still pending");
                continue;
            }
            PicoSec busyMin = std::numeric_limits<PicoSec>::max();
            PicoSec allMin = std::numeric_limits<PicoSec>::max();
            for (const auto &inst : instances_) {
                if (inst->retired || inst->down)
                    continue;
                allMin = std::min(allMin, inst->loop->now());
                if (!inst->loop->idle())
                    busyMin =
                        std::min(busyMin, inst->loop->now());
            }
            // Retries carry real timestamps even under a closed
            // loop; the timestamp-less closed-loop stream routes
            // first there, open loop merges by earliest time
            // (shared stream wins ties — it was in line first).
            bool fromRetry = !haveShared;
            if (haveShared && !retries_.empty() &&
                !shared.closedLoop())
                fromRetry =
                    retries_.front().at < shared.front().arrival;
            const PicoSec arrival = fromRetry
                                        ? retries_.front().at
                                        : shared.front().arrival;
            if ((fromRetry || !shared.closedLoop()) &&
                arrival > busyMin)
                break;
            const PicoSec at =
                !fromRetry && shared.closedLoop() ? allMin
                                                  : arrival;
            if (faultsEnabled_) {
                // Fire anything due by the routing time (rejoins
                // included), then re-evaluate: a crash changes who
                // is busy and may have queued earlier retries.
                if (!domainPlans_.empty()) {
                    PicoSec horizon = at;
                    for (const auto &inst : instances_)
                        if (!inst->retired)
                            horizon = std::max(horizon,
                                               inst->loop->now());
                    serviceDomainFaults(horizon);
                }
                bool changed = false;
                for (auto &inst : instances_)
                    if (!inst->retired)
                        changed =
                            serviceFaults(
                                *inst,
                                std::max(at, inst->loop->now())) ||
                            changed;
                if (changed)
                    continue;
            }
            Request r;
            if (fromRetry) {
                std::pop_heap(
                    retries_.begin(), retries_.end(),
                    [](const PendingRetry &a,
                       const PendingRetry &b) {
                        return a.at > b.at ||
                               (a.at == b.at && a.seq > b.seq);
                    });
                r = std::move(retries_.back().req);
                retries_.pop_back();
            } else {
                r = shared.pop(allMin);
            }
            // March idle instances up to the arrival so the
            // policy's clock snapshot is consistent, and so the
            // chosen instance admits at the arrival time exactly
            // as the bare engine would.
            if (fromRetry || !shared.closedLoop())
                for (auto &inst : instances_)
                    if (!inst->retired && !inst->down &&
                        inst->loop->idle())
                        inst->loop->advanceTo(at);
            if (config_.scaling.enabled) {
                arrivalWindow_.push_back(at);
                maybeScale(at);
            }
            const std::vector<InstanceStatus> statuses = snapshot();
            panicIf(statuses.empty(),
                    "fleet has no accepting instance to route to");
            const int target = policy_->route(r, statuses);
            panicIf(target < 0 ||
                        target >= static_cast<int>(
                                      instances_.size()) ||
                        instances_[target]->retired ||
                        instances_[target]->down ||
                        !instances_[target]->accepting,
                    "routing policy '" + config_.policy +
                        "' picked an unroutable instance");
            Instance &inst = *instances_[target];
            const std::int64_t kv = r.inputLen + r.outputLen;
            for (FleetObserver *o : observers_)
                o->onRequestRouted(target, r, at);
            inst.loop->pushArrival(std::move(r));
            inst.queuedKv.push_back(kv);
            inst.queuedKvSum += kv;
            ++inst.routed;
            if (inst.domain >= 0)
                ++domainRouted_[
                    static_cast<std::size_t>(inst.domain)];
            ++result.requestsRouted;
        }
        result.peakInstances = std::max(
            result.peakInstances,
            static_cast<int>(std::count_if(
                instances_.begin(), instances_.end(),
                [](const auto &i) { return !i->retired; })));

        // Step the live instance furthest behind in simulated time
        // (lowest id on ties) — the deterministic interleaving.
        Instance *next = nullptr;
        for (const auto &inst : instances_) {
            if (inst->retired || inst->down ||
                inst->loop->done())
                continue;
            if (next == nullptr ||
                inst->loop->now() < next->loop->now())
                next = inst.get();
        }
        if (next != nullptr) {
            next->loop->step();
            next->syncQueuedKv();
            continue;
        }

        if (shared.empty() && retries_.empty())
            break;
        // Every live instance is done. A stage-capped instance with
        // work still queued ends the run (engine stage-cap
        // semantics); otherwise all are idle — march them to the
        // next arrival (or pending retry) and route it.
        bool capped = false;
        for (const auto &inst : instances_)
            capped = capped || (!inst->retired &&
                                inst->loop->stageCapped() &&
                                !inst->loop->idle());
        if (capped)
            break;
        PicoSec t = std::numeric_limits<PicoSec>::max();
        if (!shared.empty())
            t = shared.front().arrival;
        if (!retries_.empty())
            t = std::min(t, retries_.front().at);
        for (auto &inst : instances_)
            if (!inst->retired && !inst->down)
                inst->loop->advanceTo(t);
    }

    shared_ = nullptr;

    // Fold per-instance results in id order (retired instances'
    // loops are finished here too — their state froze at
    // retirement).
    result.perInstance.reserve(instances_.size());
    PicoSec makespan = 0;
    for (const auto &inst : instances_)
        makespan = std::max(makespan, inst->loop->now());
    // Close downtime intervals still open at the end of the run: an
    // instance whose repair lands inside the makespan counts down
    // to its repair, one still dead at the end counts to the
    // makespan (availability is measured over the run window).
    for (auto &inst : instances_)
        if (inst->down) {
            const PicoSec end =
                inst->rejoinAt >= 0 && inst->rejoinAt < makespan
                    ? inst->rejoinAt
                    : makespan;
            const PicoSec d =
                std::max<PicoSec>(0, end - inst->downSince);
            totalDowntime_ += d;
            inst->downtime += d;
        }
    for (auto &inst : instances_) {
        result.perInstanceDowntime.push_back(inst->downtime);
        SimResult sr = inst->loop->finish();
        result.metrics.tbtMs.merge(sr.metrics.tbtMs);
        result.metrics.t2ftMs.merge(sr.metrics.t2ftMs);
        result.metrics.e2eMs.merge(sr.metrics.e2eMs);
        result.metrics.totalTokens += sr.metrics.totalTokens;
        result.metrics.decodingOnlyStages +=
            sr.metrics.decodingOnlyStages;
        result.metrics.mixedStages += sr.metrics.mixedStages;
        result.totals += sr.totals;
        result.generatedTokens += sr.generatedTokens;
        result.peakBatch = std::max(result.peakBatch, sr.peakBatch);
        result.prefixCache.merge(sr.prefixCache);
        result.requestsRetired += inst->observer->retired();
        result.perInstance.push_back(std::move(sr));
    }
    result.metrics.elapsed = makespan;
    result.scaleEvents = scaleEvents_;
    result.scaleUps = scaleUps_;
    result.scaleDowns = scaleDowns_;
    result.crashes = crashes_;
    result.degradeWindows = degradeWindows_;
    result.drains = drains_;
    result.requestsLost = requestsLost_;
    result.lostWorkTokens = lostWorkTokens_;
    result.retriesScheduled = retriesScheduled_;
    result.requestsDropped = requestsDropped_;
    result.requestsMigrated = requestsMigrated_;
    result.totalDowntime = totalDowntime_;
    result.faultEvents = faultRecords_;

    // Per-domain availability: counters folded with per-instance
    // downtime, both measures (time-based and request-weighted)
    // over the run window.
    if (numDomains > 0) {
        result.perDomain.resize(
            static_cast<std::size_t>(numDomains));
        for (int d = 0; d < numDomains; ++d) {
            DomainAvailability &da =
                result.perDomain[static_cast<std::size_t>(d)];
            da.domain = d;
            da.crashes =
                domainCrashes_[static_cast<std::size_t>(d)];
            da.routed = domainRouted_[static_cast<std::size_t>(d)];
            da.lost = domainLost_[static_cast<std::size_t>(d)];
        }
        for (const auto &inst : instances_)
            if (inst->domain >= 0) {
                DomainAvailability &da = result.perDomain[
                    static_cast<std::size_t>(inst->domain)];
                ++da.instances;
                da.downtime += inst->downtime;
            }
        for (DomainAvailability &da : result.perDomain)
            if (makespan > 0 && da.instances > 0) {
                const double frac =
                    static_cast<double>(da.downtime) /
                    (static_cast<double>(makespan) *
                     static_cast<double>(da.instances));
                da.availability = frac >= 1.0 ? 0.0 : 1.0 - frac;
            }
    }

    for (FleetObserver *o : observers_)
        o->onFleetEnd(result);
    return result;
}

// ------------------------------------------------ FleetUtilization

FleetUtilization::InstanceStats &
FleetUtilization::at(int instance)
{
    while (static_cast<int>(stats_.size()) <= instance) {
        InstanceStats s;
        s.id = static_cast<int>(stats_.size());
        stats_.push_back(s);
    }
    return stats_[static_cast<std::size_t>(instance)];
}

void
FleetUtilization::onRequestRouted(int instance, const Request &,
                                  PicoSec)
{
    ++at(instance).routed;
}

void
FleetUtilization::onStage(int instance, const StageObservation &obs)
{
    InstanceStats &s = at(instance);
    ++s.stages;
    s.busyTime += obs.result.time;
}

void
FleetUtilization::onRequestRetired(int instance, const Request &,
                                   PicoSec)
{
    ++at(instance).retired;
}

} // namespace duplex
