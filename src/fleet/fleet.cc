#include "fleet/fleet.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "sim/registry.hh"
#include "workload/registry.hh"

namespace duplex
{

namespace
{

/** The registry id the per-instance systems are built from. */
const std::string &
systemIdOf(const SimConfig &config)
{
    static std::string legacy;
    if (!config.systemName.empty())
        return config.systemName;
    legacy = systemId(config.system);
    return legacy;
}

} // namespace

/**
 * Forwards one instance's engine callbacks to the fleet observers,
 * tagged with the instance id, and counts retirements. begin/end
 * hooks are fleet-level (onFleetBegin/onFleetEnd), so the
 * SimObserver ones stay unused.
 */
class InstanceObserver : public SimObserver
{
  public:
    InstanceObserver(const std::vector<FleetObserver *> &observers,
                     int instance)
        : observers_(observers), instance_(instance)
    {
    }

    void onStage(const StageObservation &obs) override
    {
        for (FleetObserver *o : observers_)
            o->onStage(instance_, obs);
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        ++retired_;
        for (FleetObserver *o : observers_)
            o->onRequestRetired(instance_, request, now);
    }

    std::int64_t retired() const { return retired_; }

  private:
    const std::vector<FleetObserver *> &observers_;
    int instance_;
    std::int64_t retired_ = 0;
};

/** One serving instance: system + steppable loop + router-side
 *  accounting of routed-but-unadmitted KV commitments. */
struct FleetDriver::Instance
{
    int id = -1;
    bool accepting = true;
    bool retired = false;

    std::unique_ptr<ServingSystem> system;
    std::unique_ptr<InstanceObserver> observer;
    std::unique_ptr<DriverLoop> loop;

    /**
     * Lifetime KV (inputLen + outputLen) of each routed request the
     * batcher has not yet admitted, in routing order. Admission is
     * FIFO, so after each step the entries whose requests were
     * admitted are exactly the front (queue length delta) ones.
     */
    std::deque<std::int64_t> queuedKv;
    std::int64_t queuedKvSum = 0;

    std::int64_t routed = 0;

    /** Drop the front entries the batcher admitted since last sync. */
    void syncQueuedKv()
    {
        while (queuedKv.size() > loop->queueDepth()) {
            queuedKvSum -= queuedKv.front();
            queuedKv.pop_front();
        }
    }
};

FleetDriver::FleetDriver(FleetConfig config)
    : config_(std::move(config))
{
    fatalIf(config_.instances < 1,
            "FleetDriver: need at least one instance");
}

FleetDriver::~FleetDriver() = default;

void
FleetDriver::addObserver(FleetObserver *observer)
{
    panicIf(observer == nullptr, "null FleetObserver attached");
    observers_.push_back(observer);
}

int
FleetDriver::acceptingCount() const
{
    int n = 0;
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting)
            ++n;
    return n;
}

std::vector<InstanceStatus>
FleetDriver::snapshot() const
{
    std::vector<InstanceStatus> out;
    out.reserve(instances_.size());
    for (const auto &inst : instances_) {
        if (inst->retired || !inst->accepting)
            continue;
        InstanceStatus s;
        s.id = inst->id;
        s.queueDepth = inst->loop->queueDepth();
        s.activeCount = inst->loop->activeCount();
        s.maxKvTokens = inst->loop->maxKvTokens();
        s.kvHeadroom = s.maxKvTokens -
                       inst->loop->activeLifetimeKv() -
                       inst->queuedKvSum;
        s.clock = inst->loop->now();
        out.push_back(s);
    }
    return out;
}

FleetDriver::Instance &
FleetDriver::spawn(PicoSec now)
{
    auto inst = std::make_unique<Instance>();
    inst->id = static_cast<int>(instances_.size());
    SystemOptions opts;
    // Independent RNG stream per instance; instance 0 matches the
    // bare engine's seed, the golden-equivalence anchor.
    opts.seed = config_.sim.seed +
                static_cast<std::uint64_t>(inst->id);
    inst->system =
        makeSystem(systemIdOf(config_.sim), config_.sim.model, opts);
    inst->observer =
        std::make_unique<InstanceObserver>(observers_, inst->id);
    // Push-fed arrivals: the router delivers requests as their
    // arrival times come due; the loop's clock starts at the
    // provisioning time (0 for the initial fleet).
    inst->loop = std::make_unique<DriverLoop>(
        config_.sim, *inst->system, *inst->observer,
        ArrivalQueue(closedLoop_), now);
    Instance &ref = *inst;
    instances_.push_back(std::move(inst));
    for (FleetObserver *o : observers_)
        o->onInstanceUp(ref.id, now);
    return ref;
}

double
FleetDriver::observedQps(PicoSec now)
{
    const PicoSec window = secToPs(config_.scaling.windowSec);
    while (!arrivalWindow_.empty() &&
           arrivalWindow_.front() + window < now)
        arrivalWindow_.pop_front();
    return static_cast<double>(arrivalWindow_.size()) /
           config_.scaling.windowSec;
}

void
FleetDriver::maybeScale(PicoSec now)
{
    const ScaleSpec &spec = config_.scaling;
    const double qps = observedQps(now);
    if (now - lastScaleTime_ < secToPs(spec.cooldownSec))
        return;
    const int accepting = acceptingCount();
    ScaleEvent event;
    event.time = now;
    event.observedQps = qps;
    if (qps > spec.upQpsPerInstance * accepting &&
        accepting < spec.maxInstances) {
        Instance &inst = spawn(now);
        event.kind = ScaleEvent::Kind::Up;
        event.instance = inst.id;
        event.acceptingAfter = accepting + 1;
        ++scaleUps_;
    } else if (qps < spec.downQpsPerInstance * accepting &&
               accepting > spec.minInstances) {
        // Drain the highest-id accepting instance: stop routing to
        // it; it finishes its queued and active requests, then
        // retires (the drain-retires-nothing-in-flight guarantee).
        Instance *victim = nullptr;
        for (const auto &inst : instances_)
            if (!inst->retired && inst->accepting)
                victim = inst.get();
        victim->accepting = false;
        event.kind = ScaleEvent::Kind::Drain;
        event.instance = victim->id;
        event.acceptingAfter = accepting - 1;
        ++scaleDowns_;
    } else {
        return;
    }
    lastScaleTime_ = now;
    scaleEvents_.push_back(event);
    for (FleetObserver *o : observers_)
        o->onScaleEvent(event);
}

void
FleetDriver::retireInstance(Instance &inst, FleetResult &result)
{
    panicIf(!inst.loop->idle(),
            "retiring a fleet instance with in-flight requests");
    inst.retired = true;
    ScaleEvent event;
    event.kind = ScaleEvent::Kind::Retire;
    event.time = inst.loop->now();
    event.instance = inst.id;
    event.acceptingAfter = acceptingCount();
    scaleEvents_.push_back(event);
    for (FleetObserver *o : observers_)
        o->onScaleEvent(event);
    (void)result; // folding happens once at end, in id order
}

FleetResult
FleetDriver::run()
{
    panicIf(ran_, "FleetDriver::run called twice");
    ran_ = true;

    policy_ = makeRoutingPolicy(config_.policy);
    int initial = config_.instances;
    if (config_.scaling.enabled)
        initial = std::clamp(initial, config_.scaling.minInstances,
                             config_.scaling.maxInstances);

    for (FleetObserver *o : observers_)
        o->onFleetBegin(config_);

    ArrivalQueue shared(
        makeWorkload(config_.sim.workloadIdOrDefault(),
                     config_.sim.workload),
        config_.sim.numRequests);
    // Instance queues mirror the shared stream's discipline (trace
    // and bursty sources are open loop whatever qps says).
    closedLoop_ = shared.closedLoop();

    for (int i = 0; i < initial; ++i)
        spawn(0);
    // Autoscaling reacts to observed arrival timestamps; a closed
    // loop has none (arrival = admission), so scaling requires an
    // open-loop workload.
    fatalIf(config_.scaling.enabled && shared.closedLoop(),
            "fleet autoscaling needs an open-loop workload "
            "(qps > 0)");

    FleetResult result;
    result.peakInstances = initial;

    for (;;) {
        // Retire drained instances the moment they go idle, so they
        // stop participating in the min-clock scan.
        for (auto &inst : instances_)
            if (!inst->retired && !inst->accepting &&
                inst->loop->idle())
                retireInstance(*inst, result);

        // Route every arrival no BUSY instance is still behind: a
        // busy instance's state at the arrival time is not yet
        // known, so routing must wait for it; an idle instance has
        // nothing to do until the arrival, so its clock simply
        // marches forward (the engine's idleAdvance, applied
        // fleet-wide). Closed loop: arrivals carry no timestamps,
        // so the whole stream routes up front and the queued-KV
        // accounting makes the balancing policies spread it
        // sensibly.
        for (;;) {
            if (shared.empty())
                break;
            PicoSec busyMin = std::numeric_limits<PicoSec>::max();
            PicoSec allMin = std::numeric_limits<PicoSec>::max();
            for (const auto &inst : instances_) {
                if (inst->retired)
                    continue;
                allMin = std::min(allMin, inst->loop->now());
                if (!inst->loop->idle())
                    busyMin =
                        std::min(busyMin, inst->loop->now());
            }
            const PicoSec arrival = shared.front().arrival;
            if (!shared.closedLoop() && arrival > busyMin)
                break;
            Request r = shared.pop(allMin);
            const PicoSec at =
                shared.closedLoop() ? allMin : arrival;
            // March idle instances up to the arrival so the
            // policy's clock snapshot is consistent, and so the
            // chosen instance admits at the arrival time exactly
            // as the bare engine would.
            if (!shared.closedLoop())
                for (auto &inst : instances_)
                    if (!inst->retired && inst->loop->idle())
                        inst->loop->advanceTo(at);
            if (config_.scaling.enabled) {
                arrivalWindow_.push_back(at);
                maybeScale(at);
            }
            const std::vector<InstanceStatus> statuses = snapshot();
            panicIf(statuses.empty(),
                    "fleet has no accepting instance to route to");
            const int target = policy_->route(r, statuses);
            panicIf(target < 0 ||
                        target >= static_cast<int>(
                                      instances_.size()) ||
                        instances_[target]->retired ||
                        !instances_[target]->accepting,
                    "routing policy '" + config_.policy +
                        "' picked an unroutable instance");
            Instance &inst = *instances_[target];
            const std::int64_t kv = r.inputLen + r.outputLen;
            for (FleetObserver *o : observers_)
                o->onRequestRouted(target, r, at);
            inst.loop->pushArrival(std::move(r));
            inst.queuedKv.push_back(kv);
            inst.queuedKvSum += kv;
            ++inst.routed;
            ++result.requestsRouted;
        }
        result.peakInstances = std::max(
            result.peakInstances,
            static_cast<int>(std::count_if(
                instances_.begin(), instances_.end(),
                [](const auto &i) { return !i->retired; })));

        // Step the live instance furthest behind in simulated time
        // (lowest id on ties) — the deterministic interleaving.
        Instance *next = nullptr;
        for (const auto &inst : instances_) {
            if (inst->retired || inst->loop->done())
                continue;
            if (next == nullptr ||
                inst->loop->now() < next->loop->now())
                next = inst.get();
        }
        if (next != nullptr) {
            next->loop->step();
            next->syncQueuedKv();
            continue;
        }

        if (shared.empty())
            break;
        // Every live instance is done. A stage-capped instance with
        // work still queued ends the run (engine stage-cap
        // semantics); otherwise all are idle — march them to the
        // next arrival and route it.
        bool capped = false;
        for (const auto &inst : instances_)
            capped = capped || (!inst->retired &&
                                inst->loop->stageCapped() &&
                                !inst->loop->idle());
        if (capped)
            break;
        const PicoSec t = shared.front().arrival;
        for (auto &inst : instances_)
            if (!inst->retired)
                inst->loop->advanceTo(t);
    }

    // Fold per-instance results in id order (retired instances'
    // loops are finished here too — their state froze at
    // retirement).
    result.perInstance.reserve(instances_.size());
    PicoSec makespan = 0;
    for (auto &inst : instances_) {
        makespan = std::max(makespan, inst->loop->now());
        SimResult sr = inst->loop->finish();
        result.metrics.tbtMs.merge(sr.metrics.tbtMs);
        result.metrics.t2ftMs.merge(sr.metrics.t2ftMs);
        result.metrics.e2eMs.merge(sr.metrics.e2eMs);
        result.metrics.totalTokens += sr.metrics.totalTokens;
        result.metrics.decodingOnlyStages +=
            sr.metrics.decodingOnlyStages;
        result.metrics.mixedStages += sr.metrics.mixedStages;
        result.totals += sr.totals;
        result.generatedTokens += sr.generatedTokens;
        result.peakBatch = std::max(result.peakBatch, sr.peakBatch);
        result.requestsRetired += inst->observer->retired();
        result.perInstance.push_back(std::move(sr));
    }
    result.metrics.elapsed = makespan;
    result.scaleEvents = scaleEvents_;
    result.scaleUps = scaleUps_;
    result.scaleDowns = scaleDowns_;

    for (FleetObserver *o : observers_)
        o->onFleetEnd(result);
    return result;
}

// ------------------------------------------------ FleetUtilization

FleetUtilization::InstanceStats &
FleetUtilization::at(int instance)
{
    while (static_cast<int>(stats_.size()) <= instance) {
        InstanceStats s;
        s.id = static_cast<int>(stats_.size());
        stats_.push_back(s);
    }
    return stats_[static_cast<std::size_t>(instance)];
}

void
FleetUtilization::onRequestRouted(int instance, const Request &,
                                  PicoSec)
{
    ++at(instance).routed;
}

void
FleetUtilization::onStage(int instance, const StageObservation &obs)
{
    InstanceStats &s = at(instance);
    ++s.stages;
    s.busyTime += obs.result.time;
}

void
FleetUtilization::onRequestRetired(int instance, const Request &,
                                   PicoSec)
{
    ++at(instance).retired;
}

} // namespace duplex
