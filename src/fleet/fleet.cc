#include "fleet/fleet.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "sim/registry.hh"
#include "workload/registry.hh"

namespace duplex
{

namespace
{

/** The registry id the per-instance systems are built from. */
const std::string &
systemIdOf(const SimConfig &config)
{
    static std::string legacy;
    if (!config.systemName.empty())
        return config.systemName;
    legacy = systemId(config.system);
    return legacy;
}

} // namespace

/**
 * Forwards one instance's engine callbacks to the fleet observers,
 * tagged with the instance id, and counts retirements. begin/end
 * hooks are fleet-level (onFleetBegin/onFleetEnd), so the
 * SimObserver ones stay unused.
 */
class InstanceObserver : public SimObserver
{
  public:
    InstanceObserver(FleetDriver &fleet,
                     const std::vector<FleetObserver *> &observers,
                     int instance)
        : fleet_(fleet), observers_(observers), instance_(instance)
    {
    }

    void onStage(const StageObservation &obs) override
    {
        for (FleetObserver *o : observers_)
            o->onStage(instance_, obs);
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        ++retired_;
        for (FleetObserver *o : observers_)
            o->onRequestRetired(instance_, request, now);
        // Retirement feedback into the shared stream, after the
        // observers (mirroring the engine loop's ordering): a
        // session workload releases its next turn here; a no-op
        // for every other source.
        if (fleet_.shared_ != nullptr)
            fleet_.shared_->notifyRetired(request, now);
    }

    std::int64_t retired() const { return retired_; }

  private:
    FleetDriver &fleet_;
    const std::vector<FleetObserver *> &observers_;
    int instance_;
    std::int64_t retired_ = 0;
};

/** One serving instance: system + steppable loop + router-side
 *  accounting of routed-but-unadmitted KV commitments. */
struct FleetDriver::Instance
{
    int id = -1;
    bool accepting = true;
    bool retired = false;

    // --- fault state (inert unless the fleet injects faults) ---
    InstanceHealth health = InstanceHealth::Healthy;
    bool down = false;       //!< crashed out, awaiting repair
    PicoSec downSince = -1;  //!< when the open downtime began
    PicoSec rejoinAt = -1;   //!< repair time; -1 = never rejoins
    PicoSec degradeEnd = -1; //!< straggler window close; -1 = none
    FaultPlan plan;          //!< this instance's fault timeline

    std::unique_ptr<ServingSystem> system;
    std::unique_ptr<InstanceObserver> observer;
    std::unique_ptr<DriverLoop> loop;

    /**
     * Lifetime KV (inputLen + outputLen) of each routed request the
     * batcher has not yet admitted, in routing order. Admission is
     * FIFO, so after each step the entries whose requests were
     * admitted are exactly the front (queue length delta) ones.
     */
    std::deque<std::int64_t> queuedKv;
    std::int64_t queuedKvSum = 0;

    std::int64_t routed = 0;

    /** Drop the front entries the batcher admitted since last sync. */
    void syncQueuedKv()
    {
        while (queuedKv.size() > loop->queueDepth()) {
            queuedKvSum -= queuedKv.front();
            queuedKv.pop_front();
        }
    }
};

FleetDriver::FleetDriver(FleetConfig config)
    : config_(std::move(config))
{
    fatalIf(config_.instances < 1,
            "FleetDriver: need at least one instance");
}

FleetDriver::~FleetDriver() = default;

void
FleetDriver::addObserver(FleetObserver *observer)
{
    panicIf(observer == nullptr, "null FleetObserver attached");
    observers_.push_back(observer);
}

int
FleetDriver::acceptingCount() const
{
    int n = 0;
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting)
            ++n;
    return n;
}

std::vector<InstanceStatus>
FleetDriver::snapshot() const
{
    std::vector<InstanceStatus> out;
    out.reserve(instances_.size());
    for (const auto &inst : instances_) {
        // Crashed (down) instances are ejected outright — the
        // policy never sees one, the failure-semantics mirror of
        // the draining rule.
        if (inst->retired || !inst->accepting || inst->down)
            continue;
        InstanceStatus s;
        s.id = inst->id;
        s.health = inst->health;
        s.queueDepth = inst->loop->queueDepth();
        s.activeCount = inst->loop->activeCount();
        s.maxKvTokens = inst->loop->maxKvTokens();
        s.kvHeadroom = s.maxKvTokens -
                       inst->loop->activeLifetimeKv() -
                       inst->queuedKvSum;
        s.clock = inst->loop->now();
        out.push_back(s);
    }
    return out;
}

FleetDriver::Instance &
FleetDriver::spawn(PicoSec now)
{
    auto inst = std::make_unique<Instance>();
    inst->id = static_cast<int>(instances_.size());
    SystemOptions opts;
    // Independent RNG stream per instance; instance 0 matches the
    // bare engine's seed, the golden-equivalence anchor.
    opts.seed = config_.sim.seed +
                static_cast<std::uint64_t>(inst->id);
    inst->system =
        makeSystem(systemIdOf(config_.sim), config_.sim.model, opts);
    inst->observer = std::make_unique<InstanceObserver>(
        *this, observers_, inst->id);
    // Push-fed arrivals: the router delivers requests as their
    // arrival times come due; the loop's clock starts at the
    // provisioning time (0 for the initial fleet).
    inst->loop = std::make_unique<DriverLoop>(
        config_.sim, *inst->system, *inst->observer,
        ArrivalQueue(closedLoop_), now);
    // The instance's fault timeline, on its dedicated RNG stream;
    // default-constructed (inert) when faults are disabled so the
    // fault-free fleet never touches the subsystem.
    if (faultsEnabled_)
        inst->plan =
            FaultPlan(config_.faults, inst->id, config_.sim.seed);
    Instance &ref = *inst;
    instances_.push_back(std::move(inst));
    for (FleetObserver *o : observers_)
        o->onInstanceUp(ref.id, now);
    return ref;
}

double
FleetDriver::observedQps(PicoSec now)
{
    const PicoSec window = secToPs(config_.scaling.windowSec);
    while (!arrivalWindow_.empty() &&
           arrivalWindow_.front() + window < now)
        arrivalWindow_.pop_front();
    return static_cast<double>(arrivalWindow_.size()) /
           config_.scaling.windowSec;
}

void
FleetDriver::maybeScale(PicoSec now)
{
    const ScaleSpec &spec = config_.scaling;
    const double qps = observedQps(now);
    if (now - lastScaleTime_ < secToPs(spec.cooldownSec))
        return;
    const int accepting = acceptingCount();
    ScaleEvent event;
    event.time = now;
    event.observedQps = qps;
    if (qps > spec.upQpsPerInstance * accepting &&
        accepting < spec.maxInstances) {
        Instance &inst = spawn(now);
        event.kind = ScaleEvent::Kind::Up;
        event.instance = inst.id;
        event.acceptingAfter = accepting + 1;
        ++scaleUps_;
    } else if (qps < spec.downQpsPerInstance * accepting &&
               accepting > spec.minInstances) {
        // Drain the highest-id accepting instance: stop routing to
        // it; it finishes its queued and active requests, then
        // retires (the drain-retires-nothing-in-flight guarantee).
        Instance *victim = nullptr;
        for (const auto &inst : instances_)
            if (!inst->retired && inst->accepting)
                victim = inst.get();
        victim->accepting = false;
        event.kind = ScaleEvent::Kind::Drain;
        event.instance = victim->id;
        event.acceptingAfter = accepting - 1;
        ++scaleDowns_;
    } else {
        return;
    }
    lastScaleTime_ = now;
    scaleEvents_.push_back(event);
    for (FleetObserver *o : observers_)
        o->onScaleEvent(event);
}

void
FleetDriver::retireInstance(Instance &inst, FleetResult &result)
{
    panicIf(!inst.loop->idle(),
            "retiring a fleet instance with in-flight requests");
    inst.retired = true;
    // A draining instance can crash out (its work already evicted
    // and re-routed); retirement closes the downtime interval.
    if (inst.down) {
        totalDowntime_ += std::max<PicoSec>(
            0, inst.loop->now() - inst.downSince);
        inst.down = false;
        inst.downSince = -1;
        inst.rejoinAt = -1;
    }
    ScaleEvent event;
    event.kind = ScaleEvent::Kind::Retire;
    event.time = inst.loop->now();
    event.instance = inst.id;
    event.acceptingAfter = acceptingCount();
    scaleEvents_.push_back(event);
    for (FleetObserver *o : observers_)
        o->onScaleEvent(event);
    (void)result; // folding happens once at end, in id order
}

bool
FleetDriver::anyRoutable() const
{
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting && !inst->down)
            return true;
    return false;
}

/**
 * Fire everything due on @p inst up to simulated time @p horizon,
 * in chronological order: a pending rejoin, a degrade-window close
 * and the scheduled faults interleave (a rejoin can be followed by
 * the next crash in the same call). Fault events that strike while
 * the instance is down are consumed and dropped — a dead machine
 * cannot fail twice. Returns true when anything changed, so callers
 * re-evaluate routing state (a crash changes who is busy and may
 * have queued retries).
 */
bool
FleetDriver::serviceFaults(Instance &inst, PicoSec horizon)
{
    bool fired = false;
    for (;;) {
        const PicoSec rejoin =
            inst.down && inst.rejoinAt >= 0 &&
                    inst.rejoinAt <= horizon
                ? inst.rejoinAt
                : -1;
        const PicoSec degradeEnd =
            !inst.down && inst.degradeEnd >= 0 &&
                    inst.degradeEnd <= horizon
                ? inst.degradeEnd
                : -1;
        const PicoSec fault =
            inst.plan.pending() && inst.plan.nextAt() <= horizon
                ? inst.plan.nextAt()
                : -1;
        PicoSec next = -1;
        for (PicoSec t : {rejoin, degradeEnd, fault})
            if (t >= 0 && (next < 0 || t < next))
                next = t;
        if (next < 0)
            return fired;
        fired = true;
        if (next == rejoin) {
            rejoinInstance(inst, rejoin);
        } else if (next == degradeEnd) {
            inst.loop->setTimeScale(1.0);
            inst.health = InstanceHealth::Healthy;
            inst.degradeEnd = -1;
        } else {
            const FaultEvent e = inst.plan.pop();
            if (inst.down || inst.retired)
                continue;
            if (e.kind == FaultKind::Crash)
                applyCrash(inst, e);
            else
                applyDegrade(inst, e);
        }
    }
}

void
FleetDriver::applyCrash(Instance &inst, const FaultEvent &event)
{
    // Fail-stop at the stage boundary: when a stage ran past the
    // scheduled strike, the crash takes effect at the instance's
    // clock (a stage is atomic; nothing fails mid-matmul).
    const PicoSec now = std::max(event.at, inst.loop->now());
    std::vector<Request> lost;
    inst.loop->evictAll(lost);
    inst.queuedKv.clear();
    inst.queuedKvSum = 0;
    // A crash supersedes any straggler window in progress.
    if (inst.degradeEnd >= 0) {
        inst.loop->setTimeScale(1.0);
        inst.degradeEnd = -1;
    }
    inst.health = InstanceHealth::Healthy;
    inst.down = true;
    inst.downSince = now;
    inst.rejoinAt = event.duration < 0
                        ? -1
                        : std::max(now, event.at + event.duration);
    ++crashes_;
    FaultEvent rec = event;
    rec.instance = inst.id;
    rec.at = now;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, now);
    for (Request &r : lost)
        scheduleRetry(std::move(r), inst.id, now);
}

void
FleetDriver::applyDegrade(Instance &inst, const FaultEvent &event)
{
    const PicoSec now = std::max(event.at, inst.loop->now());
    inst.health = InstanceHealth::Degraded;
    inst.loop->setTimeScale(event.factor);
    // The window closes at its scheduled end even when a stage ran
    // past the start; a window fully consumed mid-stage is cleared
    // by the next serviceFaults pass without scaling anything.
    inst.degradeEnd = event.at + event.duration;
    ++degradeWindows_;
    FaultEvent rec = event;
    rec.instance = inst.id;
    rec.at = now;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, now);
}

void
FleetDriver::rejoinInstance(Instance &inst, PicoSec at)
{
    panicIf(!inst.down, "rejoining an instance that is not down");
    totalDowntime_ += std::max<PicoSec>(0, at - inst.downSince);
    inst.down = false;
    inst.downSince = -1;
    inst.rejoinAt = -1;
    // Empty batch, clock resumed at the repair time (no-op when the
    // crash-frozen clock already sits past it).
    inst.loop->advanceTo(at);
    FaultEvent rec;
    rec.kind = FaultKind::Rejoin;
    rec.instance = inst.id;
    rec.at = at;
    faultRecords_.push_back(rec);
    for (FleetObserver *o : observers_)
        o->onFault(inst.id, rec, at);
}

void
FleetDriver::scheduleRetry(Request request, int instance,
                           PicoSec now)
{
    ++requestsLost_;
    lostWorkTokens_ += request.generated;
    const int attempt = request.retries + 1;
    if (request.retries >= config_.retry.maxAttempts) {
        ++requestsDropped_;
        for (FleetObserver *o : observers_)
            o->onRetry(instance, request, attempt, true, now);
        return;
    }
    // The retry restarts from prefill — the crashed KV is gone
    // (chunked-prefill progress included).
    request.retries = attempt;
    request.generated = 0;
    request.prefilled = 0;
    request.cachedTokens = 0; // re-admission probes the cache again
    request.firstToken = -1;
    request.finished = -1;
    request.tokenTimes.clear();
    const PicoSec at = now + config_.retry.backoffFor(attempt);
    request.arrival = at;
    ++retriesScheduled_;
    for (FleetObserver *o : observers_)
        o->onRetry(instance, request, attempt, false, at);
    retries_.push_back({at, retrySeq_++, std::move(request)});
    std::push_heap(retries_.begin(), retries_.end(),
                   [](const PendingRetry &a, const PendingRetry &b) {
                       return a.at > b.at ||
                              (a.at == b.at && a.seq > b.seq);
                   });
}

/**
 * When every accepting instance is down, the fleet only makes
 * progress by waiting out the earliest repair: rejoin that instance
 * at its repair time (lowest id on ties) and route there. Returns
 * false when no down accepting instance ever rejoins.
 */
bool
FleetDriver::forceRejoinEarliest()
{
    Instance *best = nullptr;
    for (const auto &inst : instances_)
        if (!inst->retired && inst->accepting && inst->down &&
            inst->rejoinAt >= 0 &&
            (best == nullptr || inst->rejoinAt < best->rejoinAt))
            best = inst.get();
    if (best == nullptr)
        return false;
    rejoinInstance(*best, best->rejoinAt);
    return true;
}

FleetResult
FleetDriver::run()
{
    panicIf(ran_, "FleetDriver::run called twice");
    ran_ = true;

    policy_ = makeRoutingPolicy(config_.policy);
    int initial = config_.instances;
    if (config_.scaling.enabled)
        initial = std::clamp(initial, config_.scaling.minInstances,
                             config_.scaling.maxInstances);

    for (FleetObserver *o : observers_)
        o->onFleetBegin(config_);

    ArrivalQueue shared(
        makeWorkload(config_.sim.workloadIdOrDefault(),
                     config_.sim.workload),
        config_.sim.numRequests);
    // Instance queues mirror the shared stream's discipline (trace
    // and bursty sources are open loop whatever qps says).
    closedLoop_ = shared.closedLoop();
    // Expose the shared queue (a run() local) to the per-instance
    // observers for retirement feedback; cleared before the fold so
    // the dangling window is exactly the stepping loop.
    shared_ = &shared;

    // Fault injection: decided before the first spawn so every
    // instance (initial and autoscaled) gets its fault timeline.
    faultsEnabled_ = config_.faults.enabled();
    if (faultsEnabled_) {
        fatalIf(config_.retry.maxAttempts < 0,
                "RetrySpec: negative maxAttempts");
        fatalIf(config_.retry.backoffSec < 0.0,
                "RetrySpec: negative backoffSec");
        fatalIf(config_.retry.multiplier <= 0.0,
                "RetrySpec: multiplier must be positive");
    }

    for (int i = 0; i < initial; ++i)
        spawn(0);
    // Autoscaling reacts to observed arrival timestamps; a closed
    // loop has none (arrival = admission), so scaling requires an
    // open-loop workload.
    fatalIf(config_.scaling.enabled && shared.closedLoop(),
            "fleet autoscaling needs an open-loop workload "
            "(qps > 0)");

    FleetResult result;
    result.peakInstances = initial;

    for (;;) {
        // Retire drained instances the moment they go idle, so they
        // stop participating in the min-clock scan.
        for (auto &inst : instances_)
            if (!inst->retired && !inst->accepting &&
                inst->loop->idle())
                retireInstance(*inst, result);

        // Fire faults due at each instance's own clock before any
        // routing or stepping decision reads fleet state — faults
        // strike at stage boundaries, and the last step may have
        // carried an instance's clock past a scheduled strike.
        if (faultsEnabled_)
            for (auto &inst : instances_)
                if (!inst->retired)
                    serviceFaults(*inst, inst->loop->now());

        // Route every arrival no BUSY instance is still behind: a
        // busy instance's state at the arrival time is not yet
        // known, so routing must wait for it; an idle instance has
        // nothing to do until the arrival, so its clock simply
        // marches forward (the engine's idleAdvance, applied
        // fleet-wide). Closed loop: arrivals carry no timestamps,
        // so the whole stream routes up front and the queued-KV
        // accounting makes the balancing policies spread it
        // sensibly. Crash retries re-enter here, merged with the
        // shared stream in timestamp order and gated like open-loop
        // arrivals; down instances neither gate routing nor appear
        // in the snapshot.
        for (;;) {
            const bool haveShared = !shared.empty();
            if (!haveShared && retries_.empty())
                break;
            if (faultsEnabled_ && !anyRoutable()) {
                // The whole fleet is down (or draining): wait out
                // the earliest repair, then route there.
                fatalIf(!forceRejoinEarliest(),
                        "fleet: every instance is down or draining "
                        "with no rejoin scheduled and requests "
                        "still pending");
                continue;
            }
            PicoSec busyMin = std::numeric_limits<PicoSec>::max();
            PicoSec allMin = std::numeric_limits<PicoSec>::max();
            for (const auto &inst : instances_) {
                if (inst->retired || inst->down)
                    continue;
                allMin = std::min(allMin, inst->loop->now());
                if (!inst->loop->idle())
                    busyMin =
                        std::min(busyMin, inst->loop->now());
            }
            // Retries carry real timestamps even under a closed
            // loop; the timestamp-less closed-loop stream routes
            // first there, open loop merges by earliest time
            // (shared stream wins ties — it was in line first).
            bool fromRetry = !haveShared;
            if (haveShared && !retries_.empty() &&
                !shared.closedLoop())
                fromRetry =
                    retries_.front().at < shared.front().arrival;
            const PicoSec arrival = fromRetry
                                        ? retries_.front().at
                                        : shared.front().arrival;
            if ((fromRetry || !shared.closedLoop()) &&
                arrival > busyMin)
                break;
            const PicoSec at =
                !fromRetry && shared.closedLoop() ? allMin
                                                  : arrival;
            if (faultsEnabled_) {
                // Fire anything due by the routing time (rejoins
                // included), then re-evaluate: a crash changes who
                // is busy and may have queued earlier retries.
                bool changed = false;
                for (auto &inst : instances_)
                    if (!inst->retired)
                        changed =
                            serviceFaults(
                                *inst,
                                std::max(at, inst->loop->now())) ||
                            changed;
                if (changed)
                    continue;
            }
            Request r;
            if (fromRetry) {
                std::pop_heap(
                    retries_.begin(), retries_.end(),
                    [](const PendingRetry &a,
                       const PendingRetry &b) {
                        return a.at > b.at ||
                               (a.at == b.at && a.seq > b.seq);
                    });
                r = std::move(retries_.back().req);
                retries_.pop_back();
            } else {
                r = shared.pop(allMin);
            }
            // March idle instances up to the arrival so the
            // policy's clock snapshot is consistent, and so the
            // chosen instance admits at the arrival time exactly
            // as the bare engine would.
            if (fromRetry || !shared.closedLoop())
                for (auto &inst : instances_)
                    if (!inst->retired && !inst->down &&
                        inst->loop->idle())
                        inst->loop->advanceTo(at);
            if (config_.scaling.enabled) {
                arrivalWindow_.push_back(at);
                maybeScale(at);
            }
            const std::vector<InstanceStatus> statuses = snapshot();
            panicIf(statuses.empty(),
                    "fleet has no accepting instance to route to");
            const int target = policy_->route(r, statuses);
            panicIf(target < 0 ||
                        target >= static_cast<int>(
                                      instances_.size()) ||
                        instances_[target]->retired ||
                        instances_[target]->down ||
                        !instances_[target]->accepting,
                    "routing policy '" + config_.policy +
                        "' picked an unroutable instance");
            Instance &inst = *instances_[target];
            const std::int64_t kv = r.inputLen + r.outputLen;
            for (FleetObserver *o : observers_)
                o->onRequestRouted(target, r, at);
            inst.loop->pushArrival(std::move(r));
            inst.queuedKv.push_back(kv);
            inst.queuedKvSum += kv;
            ++inst.routed;
            ++result.requestsRouted;
        }
        result.peakInstances = std::max(
            result.peakInstances,
            static_cast<int>(std::count_if(
                instances_.begin(), instances_.end(),
                [](const auto &i) { return !i->retired; })));

        // Step the live instance furthest behind in simulated time
        // (lowest id on ties) — the deterministic interleaving.
        Instance *next = nullptr;
        for (const auto &inst : instances_) {
            if (inst->retired || inst->down ||
                inst->loop->done())
                continue;
            if (next == nullptr ||
                inst->loop->now() < next->loop->now())
                next = inst.get();
        }
        if (next != nullptr) {
            next->loop->step();
            next->syncQueuedKv();
            continue;
        }

        if (shared.empty() && retries_.empty())
            break;
        // Every live instance is done. A stage-capped instance with
        // work still queued ends the run (engine stage-cap
        // semantics); otherwise all are idle — march them to the
        // next arrival (or pending retry) and route it.
        bool capped = false;
        for (const auto &inst : instances_)
            capped = capped || (!inst->retired &&
                                inst->loop->stageCapped() &&
                                !inst->loop->idle());
        if (capped)
            break;
        PicoSec t = std::numeric_limits<PicoSec>::max();
        if (!shared.empty())
            t = shared.front().arrival;
        if (!retries_.empty())
            t = std::min(t, retries_.front().at);
        for (auto &inst : instances_)
            if (!inst->retired && !inst->down)
                inst->loop->advanceTo(t);
    }

    shared_ = nullptr;

    // Fold per-instance results in id order (retired instances'
    // loops are finished here too — their state froze at
    // retirement).
    result.perInstance.reserve(instances_.size());
    PicoSec makespan = 0;
    for (const auto &inst : instances_)
        makespan = std::max(makespan, inst->loop->now());
    // Close downtime intervals still open at the end of the run: an
    // instance whose repair lands inside the makespan counts down
    // to its repair, one still dead at the end counts to the
    // makespan (availability is measured over the run window).
    for (auto &inst : instances_)
        if (inst->down) {
            const PicoSec end =
                inst->rejoinAt >= 0 && inst->rejoinAt < makespan
                    ? inst->rejoinAt
                    : makespan;
            totalDowntime_ +=
                std::max<PicoSec>(0, end - inst->downSince);
        }
    for (auto &inst : instances_) {
        SimResult sr = inst->loop->finish();
        result.metrics.tbtMs.merge(sr.metrics.tbtMs);
        result.metrics.t2ftMs.merge(sr.metrics.t2ftMs);
        result.metrics.e2eMs.merge(sr.metrics.e2eMs);
        result.metrics.totalTokens += sr.metrics.totalTokens;
        result.metrics.decodingOnlyStages +=
            sr.metrics.decodingOnlyStages;
        result.metrics.mixedStages += sr.metrics.mixedStages;
        result.totals += sr.totals;
        result.generatedTokens += sr.generatedTokens;
        result.peakBatch = std::max(result.peakBatch, sr.peakBatch);
        result.prefixCache.merge(sr.prefixCache);
        result.requestsRetired += inst->observer->retired();
        result.perInstance.push_back(std::move(sr));
    }
    result.metrics.elapsed = makespan;
    result.scaleEvents = scaleEvents_;
    result.scaleUps = scaleUps_;
    result.scaleDowns = scaleDowns_;
    result.crashes = crashes_;
    result.degradeWindows = degradeWindows_;
    result.requestsLost = requestsLost_;
    result.lostWorkTokens = lostWorkTokens_;
    result.retriesScheduled = retriesScheduled_;
    result.requestsDropped = requestsDropped_;
    result.totalDowntime = totalDowntime_;
    result.faultEvents = faultRecords_;

    for (FleetObserver *o : observers_)
        o->onFleetEnd(result);
    return result;
}

// ------------------------------------------------ FleetUtilization

FleetUtilization::InstanceStats &
FleetUtilization::at(int instance)
{
    while (static_cast<int>(stats_.size()) <= instance) {
        InstanceStats s;
        s.id = static_cast<int>(stats_.size());
        stats_.push_back(s);
    }
    return stats_[static_cast<std::size_t>(instance)];
}

void
FleetUtilization::onRequestRouted(int instance, const Request &,
                                  PicoSec)
{
    ++at(instance).routed;
}

void
FleetUtilization::onStage(int instance, const StageObservation &obs)
{
    InstanceStats &s = at(instance);
    ++s.stages;
    s.busyTime += obs.result.time;
}

void
FleetUtilization::onRequestRetired(int instance, const Request &,
                                   PicoSec)
{
    ++at(instance).retired;
}

} // namespace duplex
