/**
 * @file
 * Pluggable request-routing policies for a serving fleet.
 *
 * A FleetDriver (fleet/fleet.hh) fronts N registry-built serving
 * instances with one shared arrival stream; a RoutingPolicy picks
 * the instance each request lands on. Policies see only an
 * InstanceStatus snapshot per routable instance — queue depth,
 * active batch size, live KV headroom (the PR-5 incremental
 * lifetime-KV sum minus routed-but-unadmitted commitments) — and
 * must be pure functions of (request, snapshot): no RNG, no wall
 * clock, no hidden state beyond their own deterministic counters.
 * That purity is what makes a fleet run byte-reproducible (the CI
 * fleet-determinism diff) and a 1-instance fleet bit-identical to
 * the bare engine.
 *
 * Policies register in a string-keyed registry mirroring
 * sim/registry.hh and workload/registry.hh, completing the
 * experiment grid: system x workload x policy x fleet size. Stock
 * policies: "round-robin", "least-loaded", "join-shortest-queue",
 * "session-affinity", "healthy-first", "domain-spread". A new
 * policy is one registerRoutingPolicy call — see the ROADMAP
 * recipe.
 */

#ifndef DUPLEX_FLEET_POLICY_HH
#define DUPLEX_FLEET_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/request.hh"

namespace duplex
{

/**
 * Routable-instance health as the policies see it. Crashed (down)
 * instances are EJECTED from the routing snapshot entirely — a
 * policy never sees one — so the only states offered are serving
 * ones. Degraded marks a straggler window (stage times scaled up by
 * the fault injector, fleet/faults.hh): the instance still serves,
 * just slowly, and failure-aware policies can steer around it.
 */
enum class InstanceHealth
{
    Healthy,
    Degraded
};

/** One routable instance as the policy sees it. */
struct InstanceStatus
{
    int id = -1; //!< stable instance id (survives scale events)

    /**
     * Failure domain (rack/zone) the fault topology places the
     * instance in; -1 when no domain map is configured
     * (FaultSpec::domainFor). Domain-aware policies spread load so
     * one correlated domain crash takes out as little in-flight
     * work as possible.
     */
    int domain = -1;

    /** Healthy, or inside a degraded-straggler window. */
    InstanceHealth health = InstanceHealth::Healthy;

    /** Requests routed to the instance but not yet admitted. */
    std::size_t queueDepth = 0;

    /** Requests currently in the instance's batch. */
    std::size_t activeCount = 0;

    /**
     * KV tokens the instance can still commit to: capacity minus
     * the active batch's full-lifetime KV sum minus the lifetime KV
     * of routed-but-unadmitted requests. May go negative when a
     * queue holds more lifetime KV than the instance's capacity.
     */
    std::int64_t kvHeadroom = 0;

    /** KV capacity of the instance's serving system. */
    std::int64_t maxKvTokens = 0;

    /** The instance's simulation clock. */
    PicoSec clock = 0;
};

/**
 * Picks the instance each arriving request lands on. route() must
 * be deterministic in (request, instances, own past decisions).
 */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    /**
     * Choose among @p instances (non-empty; only accepting
     * instances are offered — draining ones never appear). Returns
     * the chosen InstanceStatus.id.
     */
    virtual int route(const Request &request,
                      const std::vector<InstanceStatus> &instances)
        = 0;

    /** Registry id / display handle ("least-loaded", ...). */
    virtual const std::string &name() const = 0;

    /** One-line description of the routing rule. */
    virtual std::string describe() const = 0;
};

/** Builds one (stateful) policy instance per fleet run. */
using RoutingPolicyFactory =
    std::function<std::unique_ptr<RoutingPolicy>()>;

/** Registry of every routing policy a fleet can use. */
class RoutingPolicyRegistry
{
  public:
    /** The process-wide registry, with the stock policies loaded. */
    static RoutingPolicyRegistry &instance();

    /** Register a policy; re-registering an id is fatal. */
    void add(const std::string &id, const std::string &summary,
             RoutingPolicyFactory factory);

    /** True when @p id is registered. */
    bool contains(const std::string &id) const;

    /** Build a fresh policy instance; fatal on an unknown id. */
    std::unique_ptr<RoutingPolicy> make(const std::string &id) const;

    /**
     * Registered ids, lexicographically sorted — NOT registration
     * order (matches the system/workload registries; keeps fleet
     * sweep tables byte-stable across standard libraries).
     */
    std::vector<std::string> ids() const;

    /** One-line summary for --list-policies style output. */
    const std::string &summary(const std::string &id) const;

  private:
    struct Entry
    {
        std::string id;
        std::string summary;
        RoutingPolicyFactory factory;
    };

    std::vector<Entry> entries_;

    const Entry &find(const std::string &id) const;
};

/** Build a registered policy (shorthand for the registry). */
std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(const std::string &id);

/** Ids of every registered policy, sorted. */
std::vector<std::string> registeredRoutingPolicies();

/** Register a policy with the process-wide registry. */
void registerRoutingPolicy(const std::string &id,
                           const std::string &summary,
                           RoutingPolicyFactory factory);

/**
 * The deterministic integer mix session-affinity hashing uses
 * (splitmix64 finalizer). NOT std::hash — that may differ between
 * libstdc++ and libc++, and fleet runs must diff byte-identical
 * across the CI compiler matrix.
 */
inline std::uint64_t
mixSessionHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace duplex

#endif // DUPLEX_FLEET_POLICY_HH
