#include "parallel/sharding.hh"

#include "common/log.hh"

namespace duplex
{

ShardingPlan
makeShardingPlan(const ModelConfig &model, const SystemTopology &topo,
                 ExpertPlacement placement)
{
    ShardingPlan plan;
    plan.tpDegree = topo.devicesPerNode;
    plan.dpDegree = topo.numNodes;
    plan.experts = placement;

    if (model.numExperts == 0) {
        plan.expertsPerDevice = 0;
        plan.expertTpDegree = plan.tpDegree;
        return plan;
    }

    if (placement == ExpertPlacement::ExpertParallel) {
        const int devices = topo.totalDevices();
        if (model.numExperts >= devices) {
            fatalIf(model.numExperts % devices != 0,
                    "experts must divide evenly over devices");
            plan.expertsPerDevice = model.numExperts / devices;
            plan.expertTpDegree = 1;
        } else {
            fatalIf(devices % model.numExperts != 0,
                    "devices must divide evenly over experts");
            plan.expertsPerDevice = 1;
            plan.expertTpDegree = devices / model.numExperts;
        }
        plan.expertEpNodes = topo.numNodes;
    } else {
        // ET: every expert sliced across the node's devices;
        // experts split across nodes when there are several.
        fatalIf(topo.numNodes > 1 &&
                    model.numExperts % topo.numNodes != 0,
                "experts must divide evenly over nodes");
        plan.expertsPerDevice = model.numExperts / topo.numNodes;
        plan.expertTpDegree = topo.devicesPerNode;
        plan.expertEpNodes = topo.numNodes;
    }
    return plan;
}

Bytes
weightBytesPerDevice(const ModelConfig &model,
                     const SystemTopology &topo,
                     const ShardingPlan &plan)
{
    double per_device = 0.0;

    // Non-expert weights: TP inside the node, replicated across DP
    // nodes.
    double non_expert = 0.0;
    for (int l = 0; l < model.numLayers; ++l) {
        non_expert += model.attentionParams();
        if (!model.isMoeLayer(l))
            non_expert += model.ffnParams();
        else
            non_expert += static_cast<double>(model.hidden) *
                          model.numExperts; // gate
    }
    non_expert += 2.0 * static_cast<double>(model.vocab) *
                  model.hidden;
    per_device += non_expert / plan.tpDegree;

    // Expert weights.
    if (model.numExperts > 0) {
        const double expert_total =
            static_cast<double>(model.numMoeLayers()) *
            model.numExperts * model.ffnParams();
        if (plan.experts == ExpertPlacement::ExpertParallel) {
            per_device += expert_total / topo.totalDevices();
        } else {
            // Experts split over nodes, sliced within the node.
            per_device += expert_total /
                          (plan.expertEpNodes * plan.expertTpDegree);
        }
    }
    return static_cast<Bytes>(per_device) * kFp16Bytes;
}

} // namespace duplex
