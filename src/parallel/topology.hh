/**
 * @file
 * Multi-device system topology (Section VI).
 *
 * Up to eight devices form a node connected by bidirectional
 * 900 GB/s NVLink (HGX-style); nodes are connected by 400 GB/s
 * InfiniBand. Link bandwidth here is the usable per-direction
 * bandwidth seen by one device.
 */

#ifndef DUPLEX_PARALLEL_TOPOLOGY_HH
#define DUPLEX_PARALLEL_TOPOLOGY_HH

#include "common/units.hh"

namespace duplex
{

/** One interconnect class. */
struct LinkSpec
{
    double bytesPerSec = 0.0;
    PicoSec latency = 0;
};

/** Shape of the serving system. */
struct SystemTopology
{
    int numNodes = 1;
    int devicesPerNode = 4;

    /** NVLink: 900 GB/s bidirectional => 450 GB/s per direction. */
    LinkSpec intraNode{450.0 * kGB, 700 * kPsPerNs};

    /** InfiniBand: 400 GB/s node-to-node. */
    LinkSpec interNode{200.0 * kGB, 2 * kPsPerUs};

    int totalDevices() const { return numNodes * devicesPerNode; }
};

} // namespace duplex

#endif // DUPLEX_PARALLEL_TOPOLOGY_HH
