/**
 * @file
 * Collective communication cost models.
 *
 * Ring-based formulas over the usable per-direction link bandwidth:
 *  - all-reduce of B bytes over n peers: 2 (n-1)/n * B per device,
 *  - all-to-all: each device exchanges (n-1)/n of its payload,
 *  - point-to-point: a single transfer.
 * Latency is charged per ring step. These feed the Communication
 * slices of Fig. 4(a) and the inter-node penalties of Grok1.
 */

#ifndef DUPLEX_PARALLEL_COLLECTIVES_HH
#define DUPLEX_PARALLEL_COLLECTIVES_HH

#include "parallel/topology.hh"

namespace duplex
{

/** Time for a ring all-reduce of @p bytes per device over @p n. */
PicoSec allReduceTime(Bytes bytes, int n, const LinkSpec &link);

/** Time for an all-to-all where each device holds @p bytes. */
PicoSec allToAllTime(Bytes bytes, int n, const LinkSpec &link);

/** Point-to-point transfer time. */
PicoSec p2pTime(Bytes bytes, const LinkSpec &link);

/**
 * Hierarchical all-reduce: intra-node ring, inter-node ring over
 * node leaders, intra-node broadcast. Used when a tensor-parallel
 * group spans nodes.
 */
PicoSec hierarchicalAllReduceTime(Bytes bytes, int devices_per_node,
                                  int num_nodes,
                                  const LinkSpec &intra,
                                  const LinkSpec &inter);

/**
 * A point-to-point link with FIFO occupancy: each transfer holds
 * the link for p2pTime(bytes, link); transfers issued while the
 * link is busy queue behind it. This is the KV-migration contention
 * model of the disaggregated split system — concurrent prompt-KV
 * migrations serialize instead of copying for free in parallel.
 */
class LinkQueue
{
  public:
    explicit LinkQueue(const LinkSpec &link) : link_(link) {}

    /**
     * Enqueue a transfer of @p bytes issued at @p start; returns
     * its completion time. Transfers must be issued in
     * non-decreasing start order (FIFO).
     */
    PicoSec transfer(PicoSec start, Bytes bytes);

    /** When the link next falls idle (0 if never used). */
    PicoSec freeAt() const { return freeAt_; }

    const LinkSpec &link() const { return link_; }

  private:
    LinkSpec link_;
    PicoSec freeAt_ = 0;
};

} // namespace duplex

#endif // DUPLEX_PARALLEL_COLLECTIVES_HH
