// SystemTopology is header-only; this translation unit anchors the
// target.
#include "parallel/topology.hh"
