#include "parallel/collectives.hh"

#include "common/log.hh"

namespace duplex
{

PicoSec
allReduceTime(Bytes bytes, int n, const LinkSpec &link)
{
    panicIf(n <= 0, "allReduce: need at least one peer");
    if (n == 1 || bytes == 0)
        return 0;
    const double factor = 2.0 * static_cast<double>(n - 1) /
                          static_cast<double>(n);
    const Bytes moved = static_cast<Bytes>(
        factor * static_cast<double>(bytes));
    return transferTimePs(moved, link.bytesPerSec) +
           2 * (n - 1) * link.latency;
}

PicoSec
allToAllTime(Bytes bytes, int n, const LinkSpec &link)
{
    panicIf(n <= 0, "allToAll: need at least one peer");
    if (n == 1 || bytes == 0)
        return 0;
    const double factor = static_cast<double>(n - 1) /
                          static_cast<double>(n);
    const Bytes moved = static_cast<Bytes>(
        factor * static_cast<double>(bytes));
    return transferTimePs(moved, link.bytesPerSec) +
           (n - 1) * link.latency;
}

PicoSec
p2pTime(Bytes bytes, const LinkSpec &link)
{
    if (bytes == 0)
        return 0;
    return transferTimePs(bytes, link.bytesPerSec) + link.latency;
}

PicoSec
LinkQueue::transfer(PicoSec start, Bytes bytes)
{
    panicIf(start < 0, "LinkQueue: negative transfer start");
    const PicoSec begin = start > freeAt_ ? start : freeAt_;
    freeAt_ = begin + p2pTime(bytes, link_);
    return freeAt_;
}

PicoSec
hierarchicalAllReduceTime(Bytes bytes, int devices_per_node,
                          int num_nodes, const LinkSpec &intra,
                          const LinkSpec &inter)
{
    PicoSec t = allReduceTime(bytes, devices_per_node, intra);
    if (num_nodes > 1) {
        t += allReduceTime(bytes, num_nodes, inter);
        t += allReduceTime(bytes, devices_per_node, intra) / 2;
    }
    return t;
}

} // namespace duplex
