/**
 * @file
 * Model-to-device sharding plans (Section III, Fig. 3; Section V-B).
 *
 * Non-expert weights use tensor parallelism inside a node and data
 * parallelism across nodes. Expert FFNs use either
 *  - expert parallelism (EP): experts spread over all devices, with
 *    tensor parallelism inside an expert when devices > Nex, or
 *  - expert tensor parallelism (ET, Duplex+PE+ET): every expert is
 *    sliced across all devices of a node so each device sees every
 *    expert; EP applies only across nodes.
 */

#ifndef DUPLEX_PARALLEL_SHARDING_HH
#define DUPLEX_PARALLEL_SHARDING_HH

#include <vector>

#include "model/config.hh"
#include "parallel/topology.hh"

namespace duplex
{

/** Expert placement strategy. */
enum class ExpertPlacement
{
    ExpertParallel, //!< Fig. 3 default
    ExpertTensorParallel, //!< Duplex+PE+ET (Section V-B)
};

/** Derived sharding description for one system. */
struct ShardingPlan
{
    int tpDegree = 1;        //!< tensor-parallel width (non-expert)
    int dpDegree = 1;        //!< data-parallel width (across nodes)
    ExpertPlacement experts = ExpertPlacement::ExpertParallel;

    /** Experts resident per device (EP mode). */
    int expertsPerDevice = 0;

    /** Tensor-parallel width inside one expert. */
    int expertTpDegree = 1;

    /** Nodes an expert-parallel exchange spans. */
    int expertEpNodes = 1;

    /** Fraction of one expert's weights held per device. */
    double expertShardFraction() const
    {
        return 1.0 / static_cast<double>(expertTpDegree);
    }

    /** Fraction of non-expert per-layer weights per device. */
    double tpShardFraction() const
    {
        return 1.0 / static_cast<double>(tpDegree);
    }
};

/**
 * Build the plan for @p model on @p topo.
 *
 * @param placement Expert placement policy.
 */
ShardingPlan makeShardingPlan(const ModelConfig &model,
                              const SystemTopology &topo,
                              ExpertPlacement placement);

/**
 * Weight bytes resident on one device under @p plan (expert and
 * non-expert shards plus embeddings).
 */
Bytes weightBytesPerDevice(const ModelConfig &model,
                           const SystemTopology &topo,
                           const ShardingPlan &plan);

} // namespace duplex

#endif // DUPLEX_PARALLEL_SHARDING_HH
