/**
 * @file
 * Pluggable scheduling policies for the continuous batcher.
 *
 * The ContinuousBatcher (sched/batcher.hh) admits FCFS: requests
 * enter the batch in arrival order until a slot, prefill-cap or KV
 * limit stops admission. A SchedulingPolicy makes that loop
 * pluggable along three axes:
 *
 *  - admission ORDER: nextAdmission() picks which queued request is
 *    tried next (priority classes jump the line);
 *  - admission GATING: prefillBudget() bounds the prefill entries
 *    one stage may carry (ttft-protect widens it under burst so a
 *    queue of prompts drains before their TTFT budget burns);
 *  - decode PREEMPTION: selectVictims() names active decodes to
 *    evict when a candidate does not fit. Victims lose their KV and
 *    re-queue from prefill — the same lifecycle reset the fleet's
 *    crash-retry path applies (fleet/fleet.cc scheduleRetry).
 *
 * Policies see only read-only snapshots of the batcher's queue and
 * active set and must be pure functions of them: no RNG, no wall
 * clock, no hidden mutable state beyond their own deterministic
 * counters. That purity is what lets every policy double-run
 * byte-identical in the CI determinism job, exactly like routing
 * policies (fleet/policy.hh).
 *
 * Policies register in a string-keyed registry mirroring
 * sim/registry.hh, workload/registry.hh and fleet/policy.hh —
 * completing the experiment grid's fourth axis: system x workload x
 * routing x scheduling. Stock policies: "fcfs", "ttft-protect",
 * "priority". A new policy is one registerSchedulingPolicy call —
 * see the ROADMAP recipe.
 */

#ifndef DUPLEX_SCHED_POLICY_HH
#define DUPLEX_SCHED_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/request.hh"

namespace duplex
{

/** The batcher's admission state as a policy sees it. Rebuilt for
 *  every policy call within a stage, so counts reflect admissions
 *  and preemptions already made while forming it. */
struct SchedSnapshot
{
    PicoSec now = 0;

    // --- configured limits -------------------------------------
    int maxBatch = 0;
    int maxPrefillsPerStage = 0;
    std::int64_t maxKvTokens = 0;

    // --- live state --------------------------------------------
    /** Full-lifetime KV commitment of the active batch. */
    std::int64_t activeLifetimeKv = 0;

    /** Requests currently in the batch (decode + admitted). */
    std::size_t activeCount = 0;

    /** Arrived requests waiting for admission (the queue view
     *  nextAdmission() indexes into). */
    std::size_t queuedCount = 0;

    /** Prefill entries already in the stage being formed
     *  (continuing chunks + admissions so far). */
    int stagePrefills = 0;
};

/**
 * Admission ordering/gating plus optional decode preemption.
 * Decisions must be deterministic in (snapshot, views, own past
 * decisions) — the no-RNG contract above.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Registry id / display handle ("fcfs", "priority", ...). */
    virtual const std::string &name() const = 0;

    /** One-line description of the scheduling rule. */
    virtual std::string describe() const = 0;

    /**
     * Pick the next admission attempt from @p queue (arrived,
     * admission-eligible requests in arrival order; non-empty).
     * Return its index, or -1 to gate admission for the rest of
     * this stage. The batcher still applies the batch/KV/prefill
     * limits to the pick; a pick that does not fit triggers
     * selectVictims() and, failing that, ends admission.
     */
    virtual int
    nextAdmission(const std::vector<const Request *> &queue,
                  const SchedSnapshot &snap) = 0;

    /**
     * Prefill entries (continuing chunks + new admissions) one
     * stage may carry; called before each admission attempt.
     * Default: the configured per-stage cap.
     */
    virtual int prefillBudget(const SchedSnapshot &snap) const
    {
        return snap.maxPrefillsPerStage;
    }

    /**
     * Candidate @p cand does not fit: @p need_kv lifetime-KV tokens
     * over capacity and/or @p need_slots batch slots short. Append
     * indices into @p active (the active batch, admission order) to
     * evict, or leave @p victims empty to give up — the batcher
     * then stops admitting for this stage. Only decoding requests
     * (generated >= 1) are eligible; naming a mid-prefill entry is
     * a contract violation (the batcher panics). Victims re-queue
     * from prefill with their KV gone. Default: never preempt.
     */
    virtual void
    selectVictims(const Request &cand,
                  const std::vector<const Request *> &active,
                  std::int64_t need_kv, int need_slots,
                  const SchedSnapshot &snap,
                  std::vector<std::size_t> &victims)
    {
        (void)cand;
        (void)active;
        (void)need_kv;
        (void)need_slots;
        (void)snap;
        victims.clear();
    }
};

/** Builds one (stateful) policy instance per run. */
using SchedulingPolicyFactory =
    std::function<std::unique_ptr<SchedulingPolicy>()>;

/** Registry of every scheduling policy a batcher can use. */
class SchedulingPolicyRegistry
{
  public:
    /** The process-wide registry, with the stock policies loaded. */
    static SchedulingPolicyRegistry &instance();

    /** Register a policy; re-registering an id is fatal. */
    void add(const std::string &id, const std::string &summary,
             SchedulingPolicyFactory factory);

    /** True when @p id is registered. */
    bool contains(const std::string &id) const;

    /** Build a fresh policy instance; fatal on an unknown id. */
    std::unique_ptr<SchedulingPolicy>
    make(const std::string &id) const;

    /**
     * Registered ids, lexicographically sorted — NOT registration
     * order (matches every other registry; keeps policy sweep
     * tables byte-stable across standard libraries).
     */
    std::vector<std::string> ids() const;

    /** One-line summary for --list-scheds style output. */
    const std::string &summary(const std::string &id) const;

  private:
    struct Entry
    {
        std::string id;
        std::string summary;
        SchedulingPolicyFactory factory;
    };

    std::vector<Entry> entries_;

    const Entry &find(const std::string &id) const;
};

/** Build a registered policy (shorthand for the registry). */
std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const std::string &id);

/** Ids of every registered policy, sorted. */
std::vector<std::string> registeredSchedulingPolicies();

/** Register a policy with the process-wide registry. */
void registerSchedulingPolicy(const std::string &id,
                              const std::string &summary,
                              SchedulingPolicyFactory factory);

} // namespace duplex

#endif // DUPLEX_SCHED_POLICY_HH
