/**
 * @file
 * Continuous batching scheduler (ORCA-style, Section II-C).
 *
 * Inference is batched at the stage level: every iteration runs one
 * stage over all admitted requests — decode sequences generate one
 * token each, newly admitted requests run their prefill in the same
 * stage (making it a "mixed" stage). When no request is waiting, the
 * stage is "decoding-only". Admission respects both the configured
 * batch size and the KV-cache capacity of the serving system.
 */

#ifndef DUPLEX_SCHED_BATCHER_HH
#define DUPLEX_SCHED_BATCHER_HH

#include <limits>
#include <vector>

#include "model/layers.hh"
#include "sched/arrivals.hh"
#include "workload/generator.hh"
#include "workload/request.hh"

namespace duplex
{

/** Admission limits for the batcher. */
struct BatcherConfig
{
    int maxBatch = 32;

    /**
     * Prefills admitted into one stage. Serving systems chunk
     * admissions so one stage never becomes a prompt avalanche;
     * this also bounds mixed-stage latency spikes.
     */
    int maxPrefillsPerStage = 4;

    /** KV tokens the system can hold; admission stops beyond it. */
    std::int64_t maxKvTokens =
        std::numeric_limits<std::int64_t>::max();

    /**
     * Closed loop (paper default): a finished request is replaced
     * immediately; arrivals in the request stream are ignored.
     * Open loop: requests are admitted only after their Poisson
     * arrival time (Fig. 13).
     */
    bool closedLoop = true;

    /**
     * Opt-in exact stage view: fill StageShape.decodeContexts with
     * the per-sequence context lengths each stage (an O(batch)
     * walk). The default publishes only the O(1) StageAggregates —
     * sufficient (and bit-identical) for every single-node cost
     * path since PR 2. Systems whose executeStage truly consumes
     * per-context values (multi-node nodeShare striping) request
     * the walk via ServingSystem::needsExactStageView.
     */
    bool exactStageView = false;
};

/** Stage-level scheduler over a generated request stream. */
class ContinuousBatcher
{
  public:
    /**
     * @param config    Admission limits.
     * @param requests  The request stream (pre-generated); gated
     *                  per config.closedLoop.
     */
    ContinuousBatcher(const BatcherConfig &config,
                      std::vector<Request> requests);

    /**
     * @param config    Admission limits (closedLoop ignored — the
     *                  queue carries the discipline).
     * @param arrivals  The shared arrival stream; build it with
     *                  ArrivalQueue(workload, numRequests) so every
     *                  driver loop sees the identical contract.
     */
    ContinuousBatcher(const BatcherConfig &config,
                      ArrivalQueue arrivals);

    /** True when every request has finished. */
    bool allDone() const;

    /** Requests still unadmitted. */
    std::size_t pendingCount() const { return arrivals_.size(); }

    /**
     * Deliver one routed request into the arrival queue (push-fed
     * queues only — see ArrivalQueue::push). The fleet driver feeds
     * instances through this as routing decisions come due.
     */
    void pushArrival(Request r) { arrivals_.push(std::move(r)); }

    /**
     * Live sum over the active batch of (inputLen + outputLen) —
     * each request's full-lifetime KV commitment, incrementally
     * maintained (admission adds, retirement subtracts). The
     * least-loaded routing policy reads this as KV headroom.
     */
    std::int64_t activeLifetimeKv() const
    {
        return activeLifetimeKv_;
    }

    /** Requests currently being served. */
    std::size_t activeCount() const { return active_.size(); }

    /**
     * Form the next stage at time @p now: admit what fits, return
     * the stage composition. Returns an empty stage if nothing can
     * run (open loop, before the next arrival).
     */
    StageShape formStage(PicoSec now);

    /**
     * Earliest arrival among pending requests (open loop); used to
     * advance the clock across idle gaps. -1 when none pending.
     */
    PicoSec nextArrival() const;

    /**
     * Account for the stage formed by the last formStage() call
     * finishing at @p now: prefills produce their first token,
     * decodes one more; finished requests retire.
     */
    void completeStage(PicoSec now);

    /**
     * Retired requests with full lifecycle timestamps — the
     * retained view. Grows for the whole run unless the caller
     * drains it; streaming driver loops use drainFinished()
     * instead so memory stays flat in the request count.
     */
    const std::vector<Request> &finished() const { return finished_; }

    /**
     * Move the requests retired since the last drain into @p out
     * (clearing it first) and reset the internal finished buffer.
     * The two buffers swap storage, so a drain-per-stage loop is
     * allocation-free at steady state. Retirement order — the
     * observer-contract order — is preserved. Mixing drainFinished
     * with end-of-run finished() walks sees only the undrained
     * tail.
     */
    void drainFinished(std::vector<Request> &out);

    /**
     * Fail-stop eviction (the fleet crash path, mirroring
     * drainFinished): append every queued and active request to
     * @p out — queued first in arrival order, then the active batch
     * in admission order — and zero the KV/aggregate accounting.
     * The evicted requests keep their lifecycle state so the caller
     * can account lost work; their KV is conceptually gone, so a
     * re-submission must restart from prefill. Push-fed and vector
     * arrival queues only; never call with a stage in flight.
     */
    void evictAll(std::vector<Request> &out);

    /** Tokens generated so far across all requests. */
    std::int64_t totalGenerated() const { return totalGenerated_; }

    /** Stage counts by type (Fig. 5(a)). */
    std::int64_t decodingOnlyStages() const { return decodeOnly_; }
    std::int64_t mixedStages() const { return mixed_; }

    /**
     * Incrementally maintained aggregates of the active decode set
     * (as of the next formStage); formStage publishes them plus the
     * admitted prefills in StageShape.agg, so stage costing never
     * re-walks the batch.
     */
    const StageAggregates &activeDecodeAggregates() const
    {
        return decodeAgg_;
    }

  private:
    BatcherConfig config_;
    ArrivalQueue arrivals_; //!< shared closed/open-loop gating
    std::vector<Request> active_;
    bool stageOpen_ = false;
    std::vector<Request> finished_;
    std::vector<Request> stillActiveScratch_; //!< completeStage reuse
    StageAggregates decodeAgg_; //!< active decode sequences

    /**
     * Incrementally maintained sum over active_ of
     * (inputLen + outputLen) — each request's full-lifetime KV
     * budget. Replaces the former per-stage activeKvTokens() walk:
     * admission adds the budget, retirement subtracts it, so
     * formStage's KV headroom check is O(1).
     */
    std::int64_t activeLifetimeKv_ = 0;

    std::int64_t totalGenerated_ = 0;
    std::int64_t decodeOnly_ = 0;
    std::int64_t mixed_ = 0;
};

} // namespace duplex

#endif // DUPLEX_SCHED_BATCHER_HH
