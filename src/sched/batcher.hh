/**
 * @file
 * Continuous batching scheduler (ORCA-style, Section II-C).
 *
 * Inference is batched at the stage level: every iteration runs one
 * stage over all admitted requests — decode sequences generate one
 * token each, newly admitted requests run their prefill in the same
 * stage (making it a "mixed" stage). When no request is waiting, the
 * stage is "decoding-only". Admission respects both the configured
 * batch size and the KV-cache capacity of the serving system.
 */

#ifndef DUPLEX_SCHED_BATCHER_HH
#define DUPLEX_SCHED_BATCHER_HH

#include <deque>
#include <limits>
#include <vector>

#include "kvcache/prefix_cache.hh"
#include "model/layers.hh"
#include "sched/arrivals.hh"
#include "sched/policy.hh"
#include "workload/generator.hh"
#include "workload/request.hh"

namespace duplex
{

/** Admission limits for the batcher. */
struct BatcherConfig
{
    int maxBatch = 32;

    /**
     * Prefills admitted into one stage. Serving systems chunk
     * admissions so one stage never becomes a prompt avalanche;
     * this also bounds mixed-stage latency spikes.
     */
    int maxPrefillsPerStage = 4;

    /** KV tokens the system can hold; admission stops beyond it. */
    std::int64_t maxKvTokens =
        std::numeric_limits<std::int64_t>::max();

    /**
     * Closed loop (paper default): a finished request is replaced
     * immediately; arrivals in the request stream are ignored.
     * Open loop: requests are admitted only after their Poisson
     * arrival time (Fig. 13).
     */
    bool closedLoop = true;

    /**
     * Opt-in exact stage view: fill StageShape.decodeContexts with
     * the per-sequence context lengths each stage (an O(batch)
     * walk). The default publishes only the O(1) StageAggregates —
     * sufficient (and bit-identical) for every single-node cost
     * path since PR 2. Systems whose executeStage truly consumes
     * per-context values (multi-node nodeShare striping) request
     * the walk via ServingSystem::needsExactStageView.
     */
    bool exactStageView = false;

    /**
     * Chunked prefill: process at most this many prompt tokens of
     * one request per stage, spreading a long prefill across
     * stages so in-flight decodes keep taking turns — the
     * worst-token-gap metric this bounds is exactly what the SLO
     * attainment observers judge. A request produces its first
     * token only in the stage that finishes its prompt. 0 (the
     * default) runs whole prompts in one stage, bit-identical to
     * the pre-chunking batcher.
     */
    std::int64_t prefillChunkTokens = 0;
};

/** Stage-level scheduler over a generated request stream. */
class ContinuousBatcher
{
  public:
    /**
     * @param config    Admission limits.
     * @param requests  The request stream (pre-generated); gated
     *                  per config.closedLoop.
     * @param policy    Optional scheduling policy (sched/policy.hh;
     *                  borrowed, must outlive the batcher). nullptr
     *                  runs the built-in FCFS fast path —
     *                  bit-identical to the pre-policy batcher, and
     *                  to installing the registered "fcfs" policy.
     */
    ContinuousBatcher(const BatcherConfig &config,
                      std::vector<Request> requests,
                      SchedulingPolicy *policy = nullptr);

    /**
     * @param config    Admission limits (closedLoop ignored — the
     *                  queue carries the discipline).
     * @param arrivals  The shared arrival stream; build it with
     *                  ArrivalQueue(workload, numRequests) so every
     *                  driver loop sees the identical contract.
     * @param policy    As above.
     * @param pool      Optional KV prefix cache (src/kvcache/;
     *                  borrowed, must outlive the batcher). nullptr
     *                  — or a disabled pool — leaves every
     *                  admission bit-identical to the cache-less
     *                  batcher. With an enabled pool, admission
     *                  probes it (a hit jumps `prefilled` to the
     *                  cached length so only the suffix runs),
     *                  retirement installs the session's context,
     *                  and the pool's residentTokens() shrink the
     *                  KV admission headroom — reclaimed
     *                  live-work-first when admission would block.
     */
    ContinuousBatcher(const BatcherConfig &config,
                      ArrivalQueue arrivals,
                      SchedulingPolicy *policy = nullptr,
                      PrefixCachePool *pool = nullptr);

    /** True when every request has finished. */
    bool allDone() const;

    /** Requests still unadmitted (queued plus undrawn). */
    std::size_t pendingCount() const
    {
        return arrivals_.size() + ready_.size();
    }

    /**
     * Deliver one routed request into the arrival queue (push-fed
     * queues only — see ArrivalQueue::push). The fleet driver feeds
     * instances through this as routing decisions come due.
     */
    void pushArrival(Request r) { arrivals_.push(std::move(r)); }

    /**
     * Live sum over the active batch of (inputLen + outputLen) —
     * each request's full-lifetime KV commitment, incrementally
     * maintained (admission adds, retirement subtracts). The
     * least-loaded routing policy reads this as KV headroom.
     */
    std::int64_t activeLifetimeKv() const
    {
        return activeLifetimeKv_;
    }

    /** Requests currently being served. */
    std::size_t activeCount() const { return active_.size(); }

    /**
     * Form the next stage at time @p now: admit what fits, return
     * the stage composition. Returns an empty stage if nothing can
     * run (open loop, before the next arrival).
     */
    StageShape formStage(PicoSec now);

    /**
     * Earliest arrival among pending requests (open loop); used to
     * advance the clock across idle gaps. -1 when none pending.
     */
    PicoSec nextArrival() const;

    /**
     * Account for the stage formed by the last formStage() call
     * finishing at @p now: prefills produce their first token,
     * decodes one more; finished requests retire.
     */
    void completeStage(PicoSec now);

    /**
     * Retired requests with full lifecycle timestamps — the
     * retained view. Grows for the whole run unless the caller
     * drains it; streaming driver loops use drainFinished()
     * instead so memory stays flat in the request count.
     */
    const std::vector<Request> &finished() const { return finished_; }

    /**
     * Move the requests retired since the last drain into @p out
     * (clearing it first) and reset the internal finished buffer.
     * The two buffers swap storage, so a drain-per-stage loop is
     * allocation-free at steady state. Retirement order — the
     * observer-contract order — is preserved. Mixing drainFinished
     * with end-of-run finished() walks sees only the undrained
     * tail.
     */
    void drainFinished(std::vector<Request> &out);

    /**
     * Fail-stop eviction (the fleet crash path, mirroring
     * drainFinished): append every queued and active request to
     * @p out — queued first in arrival order, then the active batch
     * in admission order — and zero the KV/aggregate accounting.
     * The evicted requests keep their lifecycle state so the caller
     * can account lost work; their KV is conceptually gone, so a
     * re-submission must restart from prefill. Push-fed and vector
     * arrival queues only; never call with a stage in flight.
     */
    void evictAll(std::vector<Request> &out);

    /**
     * Proactive-drain eviction (the fleet drain path): append every
     * QUEUED request to @p out in arrival order and leave the
     * active batch — and its KV/aggregate accounting — untouched.
     * Unlike evictAll, no work is lost: the migrated requests never
     * started, so re-routing them elsewhere costs nothing. Push-fed
     * and vector arrival queues only; never call with a stage in
     * flight.
     */
    void evictQueued(std::vector<Request> &out);

    /** Tokens generated so far across all requests. */
    std::int64_t totalGenerated() const { return totalGenerated_; }

    /** Stage counts by type (Fig. 5(a)). */
    std::int64_t decodingOnlyStages() const { return decodeOnly_; }
    std::int64_t mixedStages() const { return mixed_; }

    /**
     * Admissions into the batch over the run, re-admissions of
     * preempted requests included. With preemptions() this pins
     * the accounting invariant a drained run must satisfy:
     * admissions == retirements + preemptions (every admission
     * either finishes or is evicted and admitted again).
     */
    std::int64_t admissions() const { return admissions_; }

    /** Decode preemptions a scheduling policy performed. */
    std::int64_t preemptions() const { return preempted_; }

    /**
     * A driver loop retired @p r at @p now — forwarded to the
     * arrival queue so retirement-gated workload sources
     * (SessionSource) can release the next turn. Call after the
     * observers have seen the retirement.
     */
    void notifyRetired(const Request &r, PicoSec now)
    {
        arrivals_.notifyRetired(r, now);
    }

    /** Generated tokens discarded by those preemptions (victims
     *  restart from prefill; their decoded work is lost). */
    std::int64_t preemptedTokens() const
    {
        return preemptedTokens_;
    }

    /**
     * Incrementally maintained aggregates of the active decode set
     * (as of the next formStage); formStage publishes them plus the
     * admitted prefills in StageShape.agg, so stage costing never
     * re-walks the batch.
     */
    const StageAggregates &activeDecodeAggregates() const
    {
        return decodeAgg_;
    }

  private:
    BatcherConfig config_;
    ArrivalQueue arrivals_; //!< shared closed/open-loop gating

    /**
     * Borrowed scheduling policy; nullptr is the FCFS fast path
     * (the exact pre-policy admission loop, no ready_ pool).
     */
    SchedulingPolicy *policy_ = nullptr;

    /** Borrowed KV prefix cache; nullptr/disabled = no cache. */
    PrefixCachePool *pool_ = nullptr;

    /**
     * Arrived-but-unadmitted requests the policy path reorders
     * over: open-loop arrivals are drained here once due (closed
     * loop draws stay queued — ArrivalQueue::pop stamps their
     * arrival at admission, so materializing early would fork the
     * timestamps), and preempted victims re-queue here. Always
     * empty on the FCFS fast path.
     */
    std::deque<Request> ready_;

    std::vector<Request> active_;
    bool stageOpen_ = false;
    std::vector<Request> finished_;
    std::vector<Request> stillActiveScratch_; //!< completeStage reuse
    std::vector<const Request *> queueViewScratch_;
    std::vector<const Request *> activeViewScratch_;
    std::vector<std::size_t> victimScratch_;
    StageAggregates decodeAgg_; //!< active decode sequences

    /**
     * Incrementally maintained sum over active_ of
     * (inputLen + outputLen) — each request's full-lifetime KV
     * budget. Replaces the former per-stage activeKvTokens() walk:
     * admission adds the budget, retirement subtracts it, so
     * formStage's KV headroom check is O(1).
     */
    std::int64_t activeLifetimeKv_ = 0;

    std::int64_t totalGenerated_ = 0;
    std::int64_t decodeOnly_ = 0;
    std::int64_t mixed_ = 0;
    std::int64_t admissions_ = 0;
    std::int64_t preempted_ = 0;
    std::int64_t preemptedTokens_ = 0;

    /** Prompt tokens request @p r runs in its next stage. */
    std::int64_t prefillSpan(const Request &r) const;

    /** KV tokens admissible right now: capacity minus cache residency. */
    std::int64_t kvCapacity() const;

    /** Probe the prefix cache for a just-popped admission. */
    void applyPrefixCache(Request &r);

    /** Policy-driven admission (formStage's non-FCFS arm). */
    void admitWithPolicy(PicoSec now, StageShape &stage,
                         std::int64_t &kv);

    /** Evict one active decode back into ready_ (preemption). */
    void preemptActive(std::size_t index);

    SchedSnapshot snapshot(PicoSec now,
                           const StageShape &stage) const;
};

} // namespace duplex

#endif // DUPLEX_SCHED_BATCHER_HH
