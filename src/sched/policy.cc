#include "sched/policy.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

namespace
{

/**
 * The seed's admission rule as a policy object: strict arrival
 * order, configured prefill cap, no preemption. Installing it is
 * bit-identical to running with no policy at all (the batcher's
 * legacy fast path) — pinned in tests/sched/test_policy.cc.
 */
class FcfsPolicy : public SchedulingPolicy
{
  public:
    int nextAdmission(const std::vector<const Request *> &,
                      const SchedSnapshot &) override
    {
        return 0;
    }

    const std::string &name() const override
    {
        static const std::string kName = "fcfs";
        return kName;
    }

    std::string describe() const override
    {
        return "arrival order, fixed prefill cap (the default)";
    }
};

/**
 * TTFT protection under burst: admission stays FCFS, but when the
 * queue holds more prompts than one stage's prefill cap — the
 * backlog a burst builds — the per-stage cap widens to the batch
 * size so queued prefills drain in one or two stages instead of
 * cap-at-a-time. Each waiting stage costs a queued request its
 * whole stage time in TTFT; draining the backlog early spends TBT
 * (bigger mixed stages) to protect TTFT — the bench_policies
 * bursty column shows the trade.
 */
class TtftProtectPolicy : public SchedulingPolicy
{
  public:
    int nextAdmission(const std::vector<const Request *> &,
                      const SchedSnapshot &) override
    {
        return 0;
    }

    int prefillBudget(const SchedSnapshot &snap) const override
    {
        const bool backlog =
            snap.queuedCount >
            static_cast<std::size_t>(snap.maxPrefillsPerStage);
        return backlog ? snap.maxBatch : snap.maxPrefillsPerStage;
    }

    const std::string &name() const override
    {
        static const std::string kName = "ttft-protect";
        return kName;
    }

    std::string describe() const override
    {
        return "FCFS, but widen the prefill cap to the batch size "
               "while a queue backlog exists";
    }
};

/**
 * Priority classes: the highest Request.priorityClass in the queue
 * admits first (FIFO within a class), and a high-class candidate
 * that does not fit may preempt strictly-lower-class decodes.
 * Victim selection is KV-aware and greedy: lowest class first,
 * largest lifetime-KV footprint within a class (fewest evictions
 * free the most room), youngest (highest id) on ties. If even
 * evicting every eligible victim cannot fit the candidate, nothing
 * is evicted — no useless preemption.
 */
class PriorityPolicy : public SchedulingPolicy
{
  public:
    int nextAdmission(const std::vector<const Request *> &queue,
                      const SchedSnapshot &) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue.size(); ++i)
            if (queue[i]->priorityClass >
                queue[best]->priorityClass)
                best = i;
        return static_cast<int>(best);
    }

    void selectVictims(const Request &cand,
                       const std::vector<const Request *> &active,
                       std::int64_t need_kv, int need_slots,
                       const SchedSnapshot &,
                       std::vector<std::size_t> &victims) override
    {
        victims.clear();
        std::vector<std::size_t> eligible;
        for (std::size_t i = 0; i < active.size(); ++i)
            if (active[i]->generated >= 1 &&
                active[i]->priorityClass < cand.priorityClass)
                eligible.push_back(i);
        auto lifetime = [&](std::size_t i) {
            return active[i]->inputLen + active[i]->outputLen;
        };
        std::sort(eligible.begin(), eligible.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (active[a]->priorityClass !=
                          active[b]->priorityClass)
                          return active[a]->priorityClass <
                                 active[b]->priorityClass;
                      if (lifetime(a) != lifetime(b))
                          return lifetime(a) > lifetime(b);
                      return active[a]->id > active[b]->id;
                  });
        std::int64_t freed_kv = 0;
        int freed_slots = 0;
        for (std::size_t i : eligible) {
            if (freed_kv >= need_kv && freed_slots >= need_slots)
                break;
            victims.push_back(i);
            // An eviction frees the victim's lifetime KV and the
            // +1 slack slot its batch membership consumed in the
            // admission formula.
            freed_kv += lifetime(i) + 1;
            freed_slots += 1;
        }
        if (freed_kv < need_kv || freed_slots < need_slots)
            victims.clear();
    }

    const std::string &name() const override
    {
        static const std::string kName = "priority";
        return kName;
    }

    std::string describe() const override
    {
        return "highest priorityClass admits first and may preempt "
               "lower-class decodes (KV-aware victims)";
    }
};

template <typename Policy>
SchedulingPolicyFactory
factoryOf()
{
    return [] { return std::make_unique<Policy>(); };
}

void
registerStockPolicies(SchedulingPolicyRegistry &registry)
{
    registry.add("fcfs",
                 "arrival order, fixed prefill cap (the default)",
                 factoryOf<FcfsPolicy>());
    registry.add("ttft-protect",
                 "FCFS, but widen the prefill cap to the batch "
                 "size while a queue backlog exists",
                 factoryOf<TtftProtectPolicy>());
    registry.add("priority",
                 "highest priorityClass admits first and may "
                 "preempt lower-class decodes (KV-aware victims)",
                 factoryOf<PriorityPolicy>());
}

} // namespace

SchedulingPolicyRegistry &
SchedulingPolicyRegistry::instance()
{
    static SchedulingPolicyRegistry *registry = [] {
        auto *r = new SchedulingPolicyRegistry;
        registerStockPolicies(*r);
        return r;
    }();
    return *registry;
}

void
SchedulingPolicyRegistry::add(const std::string &id,
                              const std::string &summary,
                              SchedulingPolicyFactory factory)
{
    fatalIf(contains(id),
            "SchedulingPolicyRegistry: duplicate policy id '" +
                id + "'");
    fatalIf(!factory,
            "SchedulingPolicyRegistry: null factory for '" + id +
                "'");
    entries_.push_back({id, summary, std::move(factory)});
}

bool
SchedulingPolicyRegistry::contains(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return true;
    return false;
}

const SchedulingPolicyRegistry::Entry &
SchedulingPolicyRegistry::find(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return e;
    std::string known;
    for (const std::string &k : ids())
        known += (known.empty() ? "" : ", ") + k;
    fatal("SchedulingPolicyRegistry: unknown policy '" + id +
          "' (known: " + known + ")");
}

std::unique_ptr<SchedulingPolicy>
SchedulingPolicyRegistry::make(const std::string &id) const
{
    return find(id).factory();
}

std::vector<std::string>
SchedulingPolicyRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.id);
    std::sort(out.begin(), out.end());
    return out;
}

const std::string &
SchedulingPolicyRegistry::summary(const std::string &id) const
{
    return find(id).summary;
}

std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const std::string &id)
{
    return SchedulingPolicyRegistry::instance().make(id);
}

std::vector<std::string>
registeredSchedulingPolicies()
{
    return SchedulingPolicyRegistry::instance().ids();
}

void
registerSchedulingPolicy(const std::string &id,
                         const std::string &summary,
                         SchedulingPolicyFactory factory)
{
    SchedulingPolicyRegistry::instance().add(id, summary,
                                             std::move(factory));
}

} // namespace duplex
