#include "sched/batcher.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace duplex
{

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     std::vector<Request> requests)
    : ContinuousBatcher(
          config,
          ArrivalQueue(std::move(requests), config.closedLoop))
{
}

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     ArrivalQueue arrivals)
    : config_(config), arrivals_(std::move(arrivals))
{
    fatalIf(config_.maxBatch <= 0, "maxBatch must be positive");
}

bool
ContinuousBatcher::allDone() const
{
    return arrivals_.empty() && active_.empty();
}

PicoSec
ContinuousBatcher::nextArrival() const
{
    return arrivals_.nextArrival();
}

StageShape
ContinuousBatcher::formStage(PicoSec now)
{
    panicIf(stageOpen_, "formStage called with a stage in flight");
    StageShape stage;

    // Admit new requests while a slot and KV room exist. The KV
    // headroom base is the incrementally maintained lifetime sum,
    // so forming a stage costs O(admissions), not O(batch).
    std::int64_t kv = activeLifetimeKv_;
    while (arrivals_.hasAdmissible(now) &&
           static_cast<int>(stage.prefillLengths.size()) <
               config_.maxPrefillsPerStage &&
           active_.size() < static_cast<std::size_t>(config_.maxBatch)) {
        const Request &cand = arrivals_.front();
        // Budget the candidate's full KV lifetime (prompt plus the
        // tokens it will generate) against the active set's
        // lifetime sum. Within one stage, earlier admissions
        // contribute only their prompt to `kv` — the seed's
        // admission rule, preserved bit-for-bit (a multi-admit
        // stage can therefore still overshoot the cap late in
        // generation, exactly as the original walk allowed).
        const std::int64_t need =
            kv + cand.inputLen + cand.outputLen +
            static_cast<std::int64_t>(active_.size()) + 1;
        if (need > config_.maxKvTokens)
            break;
        Request admitted = arrivals_.pop(now);
        kv += admitted.inputLen;
        activeLifetimeKv_ += admitted.inputLen + admitted.outputLen;
        stage.prefillLengths.push_back(admitted.inputLen);
        stage.agg.addPrefill(admitted.inputLen);
        active_.push_back(std::move(admitted));
    }

    if (config_.exactStageView) {
        // Opt-in slow path: per-context values for consumers that
        // stripe the batch (multi-node nodeShare).
        for (const auto &r : active_) {
            if (r.generated > 0)
                stage.decodeContexts.push_back(r.contextLen());
        }
    }
    stage.agg.numDecode = decodeAgg_.numDecode;
    stage.agg.contextSum = decodeAgg_.contextSum;
    stage.aggValid = true;

    if (stage.agg.numPrefill > 0)
        ++mixed_;
    else if (stage.agg.numDecode > 0)
        ++decodeOnly_;

    stageOpen_ = stage.totalTokens() > 0;
    return stage;
}

void
ContinuousBatcher::completeStage(PicoSec now)
{
    panicIf(!stageOpen_, "completeStage without a stage in flight");
    stageOpen_ = false;

    std::vector<Request> &still_active = stillActiveScratch_;
    still_active.clear();
    still_active.reserve(active_.size());
    for (auto &r : active_) {
        // A request admitted by the stage just completed has not
        // produced a token yet — generated == 0 is the per-request
        // prefill flag (requests enter active_ only through
        // admission, which leaves generated untouched).
        if (r.generated == 0) {
            r.firstToken = now;
            r.generated = 1;
        } else {
            // Leaves the decode set at its stage-time context; it
            // rejoins below at the grown context unless retired.
            decodeAgg_.removeDecode(r.contextLen());
            r.generated += 1;
        }
        r.tokenTimes.push_back(now);
        ++totalGenerated_;
        if (r.done()) {
            r.finished = now;
            activeLifetimeKv_ -= r.inputLen + r.outputLen;
            finished_.push_back(std::move(r));
        } else {
            decodeAgg_.addDecode(r.contextLen());
            still_active.push_back(std::move(r));
        }
    }
    std::swap(active_, still_active);
}

void
ContinuousBatcher::drainFinished(std::vector<Request> &out)
{
    out.clear();
    std::swap(out, finished_);
}

void
ContinuousBatcher::evictAll(std::vector<Request> &out)
{
    panicIf(stageOpen_, "evictAll with a stage in flight");
    arrivals_.drainPending(out);
    for (auto &r : active_)
        out.push_back(std::move(r));
    active_.clear();
    // The instance's KV is gone with the requests: reset the
    // incremental accounting the next admissions rebuild.
    decodeAgg_ = StageAggregates{};
    activeLifetimeKv_ = 0;
}

} // namespace duplex
