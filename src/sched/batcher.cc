#include "sched/batcher.hh"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/log.hh"

namespace duplex
{

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     std::vector<Request> requests,
                                     SchedulingPolicy *policy)
    : ContinuousBatcher(
          config,
          ArrivalQueue(std::move(requests), config.closedLoop),
          policy)
{
}

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     ArrivalQueue arrivals,
                                     SchedulingPolicy *policy,
                                     PrefixCachePool *pool)
    : config_(config), arrivals_(std::move(arrivals)),
      policy_(policy),
      pool_(pool != nullptr && pool->enabled() ? pool : nullptr)
{
    fatalIf(config_.maxBatch <= 0, "maxBatch must be positive");
    fatalIf(config_.prefillChunkTokens < 0,
            "prefillChunkTokens must be >= 0 (0 = off)");
}

std::int64_t
ContinuousBatcher::kvCapacity() const
{
    // Cache residency competes with live batches for the same KV
    // memory; pool_ is null whenever the cache is off, so the
    // cache-less capacity is exactly the configured cap.
    return pool_ == nullptr
               ? config_.maxKvTokens
               : config_.maxKvTokens - pool_->residentTokens();
}

void
ContinuousBatcher::applyPrefixCache(Request &r)
{
    if (pool_ == nullptr || r.generated > 0 || r.prefilled > 0)
        return;
    const std::int64_t hit = pool_->acquire(r);
    // The hit tokens are prefill already done: the cost model and
    // TTFT see only the uncached suffix (prefillSpan shrinks), and
    // cachedTokens carries the warm/cold tag to the observers.
    r.prefilled = hit;
    r.cachedTokens = hit;
}

bool
ContinuousBatcher::allDone() const
{
    return arrivals_.empty() && ready_.empty() && active_.empty();
}

PicoSec
ContinuousBatcher::nextArrival() const
{
    // Requests in the ready pool have already arrived; their front
    // timestamp keeps the idleAdvance rule moving when a policy
    // gates admission with the queue non-empty.
    return ready_.empty() ? arrivals_.nextArrival()
                          : ready_.front().arrival;
}

std::int64_t
ContinuousBatcher::prefillSpan(const Request &r) const
{
    const std::int64_t remaining = r.inputLen - r.prefilled;
    return config_.prefillChunkTokens > 0
               ? std::min(config_.prefillChunkTokens, remaining)
               : remaining;
}

SchedSnapshot
ContinuousBatcher::snapshot(PicoSec now,
                            const StageShape &stage) const
{
    SchedSnapshot s;
    s.now = now;
    s.maxBatch = config_.maxBatch;
    s.maxPrefillsPerStage = config_.maxPrefillsPerStage;
    s.maxKvTokens = config_.maxKvTokens;
    s.activeLifetimeKv = activeLifetimeKv_;
    s.activeCount = active_.size();
    s.queuedCount = ready_.size();
    s.stagePrefills = static_cast<int>(stage.prefillLengths.size());
    return s;
}

StageShape
ContinuousBatcher::formStage(PicoSec now)
{
    panicIf(stageOpen_, "formStage called with a stage in flight");
    StageShape stage;

    if (config_.prefillChunkTokens > 0) {
        // Continuing chunks: requests admitted in earlier stages
        // whose prompt is still in flight always run their next
        // chunk — ahead of any new admission, and counted against
        // the stage's prefill budget so chunks and fresh prompts
        // share one cap.
        for (const Request &r : active_) {
            if (r.prefilled < r.inputLen) {
                const std::int64_t span = prefillSpan(r);
                stage.prefillLengths.push_back(span);
                stage.agg.addPrefill(span);
            }
        }
    }

    // Admit new requests while a slot and KV room exist. The KV
    // headroom base is the incrementally maintained lifetime sum,
    // so forming a stage costs O(admissions), not O(batch).
    std::int64_t kv = activeLifetimeKv_;
    if (policy_ == nullptr) {
        // FCFS fast path — the seed's admission loop, preserved
        // bit-for-bit when chunking is off (prefillSpan is then the
        // whole prompt).
        while (arrivals_.hasAdmissible(now) &&
               static_cast<int>(stage.prefillLengths.size()) <
                   config_.maxPrefillsPerStage &&
               active_.size() <
                   static_cast<std::size_t>(config_.maxBatch)) {
            const Request &cand = arrivals_.front();
            // Budget the candidate's full KV lifetime (prompt plus
            // the tokens it will generate) against the active set's
            // lifetime sum. Within one stage, earlier admissions
            // contribute only their prompt to `kv` — the seed's
            // admission rule, preserved bit-for-bit (a multi-admit
            // stage can therefore still overshoot the cap late in
            // generation, exactly as the original walk allowed).
            const std::int64_t need =
                kv + cand.inputLen + cand.outputLen +
                static_cast<std::int64_t>(active_.size()) + 1;
            if (need > kvCapacity()) {
                // Live work wins over cache residency: ask the
                // pool to give headroom back before giving up.
                if (pool_ != nullptr)
                    pool_->reclaim(need - kvCapacity());
                if (need > kvCapacity())
                    break;
            }
            Request admitted = arrivals_.pop(now);
            applyPrefixCache(admitted);
            kv += admitted.inputLen;
            activeLifetimeKv_ +=
                admitted.inputLen + admitted.outputLen;
            ++admissions_;
            const std::int64_t span = prefillSpan(admitted);
            stage.prefillLengths.push_back(span);
            stage.agg.addPrefill(span);
            active_.push_back(std::move(admitted));
        }
    } else {
        admitWithPolicy(now, stage, kv);
    }

    if (config_.exactStageView) {
        // Opt-in slow path: per-context values for consumers that
        // stripe the batch (multi-node nodeShare).
        for (const auto &r : active_) {
            if (r.generated > 0)
                stage.decodeContexts.push_back(r.contextLen());
        }
    }
    stage.agg.numDecode = decodeAgg_.numDecode;
    stage.agg.contextSum = decodeAgg_.contextSum;
    stage.aggValid = true;

    if (stage.agg.numPrefill > 0)
        ++mixed_;
    else if (stage.agg.numDecode > 0)
        ++decodeOnly_;

    stageOpen_ = stage.totalTokens() > 0;
    return stage;
}

void
ContinuousBatcher::admitWithPolicy(PicoSec now, StageShape &stage,
                                   std::int64_t &kv)
{
    // Open loop: materialize every due arrival into the ready pool
    // so the policy can reorder among them. Closed-loop draws stay
    // in the arrival queue — pop() stamps their arrival at
    // admission time, so materializing early would fork the
    // timestamps — and are offered FIFO after any requeued work.
    if (!arrivals_.closedLoop())
        while (arrivals_.hasAdmissible(now))
            ready_.push_back(arrivals_.pop(now));

    std::vector<const Request *> &queue_view = queueViewScratch_;
    for (;;) {
        if (static_cast<int>(stage.prefillLengths.size()) >=
            policy_->prefillBudget(snapshot(now, stage)))
            break;

        const bool from_ready = !ready_.empty();
        const Request *cand = nullptr;
        std::size_t pick = 0;
        if (from_ready) {
            queue_view.clear();
            for (const Request &r : ready_)
                queue_view.push_back(&r);
            const int choice = policy_->nextAdmission(
                queue_view, snapshot(now, stage));
            if (choice < 0)
                break;
            panicIf(choice >=
                        static_cast<int>(queue_view.size()),
                    "SchedulingPolicy::nextAdmission index out of "
                    "range");
            pick = static_cast<std::size_t>(choice);
            cand = queue_view[pick];
        } else if (arrivals_.hasAdmissible(now)) {
            cand = &arrivals_.front();
        } else {
            break;
        }

        // The seed's admission formula: full-lifetime KV plus one
        // slack slot per batch member.
        auto fits = [&] {
            const std::int64_t need =
                kv + cand->inputLen + cand->outputLen +
                static_cast<std::int64_t>(active_.size()) + 1;
            return active_.size() <
                       static_cast<std::size_t>(config_.maxBatch) &&
                   need <= kvCapacity();
        };
        if (pool_ != nullptr && !fits()) {
            // Live work wins: reclaim cache residency before the
            // policy considers preempting real decodes.
            const std::int64_t need =
                kv + cand->inputLen + cand->outputLen +
                static_cast<std::int64_t>(active_.size()) + 1;
            if (need > kvCapacity())
                pool_->reclaim(need - kvCapacity());
        }
        if (!fits()) {
            const std::int64_t need =
                kv + cand->inputLen + cand->outputLen +
                static_cast<std::int64_t>(active_.size()) + 1;
            const std::int64_t need_kv = std::max<std::int64_t>(
                0, need - kvCapacity());
            const int need_slots =
                active_.size() >=
                        static_cast<std::size_t>(config_.maxBatch)
                    ? 1
                    : 0;
            std::vector<const Request *> &active_view =
                activeViewScratch_;
            active_view.clear();
            for (const Request &r : active_)
                active_view.push_back(&r);
            std::vector<std::size_t> &victims = victimScratch_;
            victims.clear();
            policy_->selectVictims(*cand, active_view, need_kv,
                                   need_slots,
                                   snapshot(now, stage), victims);
            if (victims.empty())
                break;
            // Evict highest index first so the remaining indices
            // stay valid; duplicates would double-evict.
            std::sort(victims.begin(), victims.end(),
                      std::greater<std::size_t>());
            for (std::size_t i = 1; i < victims.size(); ++i)
                panicIf(victims[i] == victims[i - 1],
                        "SchedulingPolicy::selectVictims returned "
                        "a duplicate index");
            for (std::size_t idx : victims) {
                panicIf(idx >= active_.size(),
                        "SchedulingPolicy::selectVictims index "
                        "out of range");
                kv -= active_[idx].inputLen +
                      active_[idx].outputLen;
                preemptActive(idx);
            }
            if (!fits())
                break; // the evictions still do not make room
        }

        Request admitted;
        if (from_ready) {
            admitted = std::move(
                ready_[static_cast<std::ptrdiff_t>(pick)]);
            ready_.erase(ready_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        } else {
            admitted = arrivals_.pop(now);
        }
        applyPrefixCache(admitted);
        kv += admitted.inputLen;
        activeLifetimeKv_ += admitted.inputLen + admitted.outputLen;
        ++admissions_;
        const std::int64_t span = prefillSpan(admitted);
        stage.prefillLengths.push_back(span);
        stage.agg.addPrefill(span);
        active_.push_back(std::move(admitted));
    }
}

void
ContinuousBatcher::preemptActive(std::size_t index)
{
    panicIf(index >= active_.size(),
            "preemption victim index out of range");
    panicIf(active_[index].generated < 1,
            "preemption victim must be a decoding request");
    Request victim = std::move(active_[index]);
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(index));
    decodeAgg_.removeDecode(victim.contextLen());
    activeLifetimeKv_ -= victim.inputLen + victim.outputLen;
    preemptedTokens_ += victim.generated;
    ++preempted_;
    // The victim's KV is gone with its batch slot, so it restarts
    // from prefill — the same lifecycle reset the fleet's
    // crash-retry path applies (fleet/fleet.cc scheduleRetry).
    // The original arrival survives, so its eventual TTFT/E2E
    // latency carries the full preemption penalty.
    victim.retries += 1;
    victim.generated = 0;
    victim.prefilled = 0;
    victim.cachedTokens = 0; // re-admission probes the cache again
    victim.firstToken = -1;
    victim.finished = -1;
    victim.tokenTimes.clear();
    ready_.push_back(std::move(victim));
}

void
ContinuousBatcher::completeStage(PicoSec now)
{
    panicIf(!stageOpen_, "completeStage without a stage in flight");
    stageOpen_ = false;

    const std::int64_t chunk = config_.prefillChunkTokens;
    std::vector<Request> &still_active = stillActiveScratch_;
    still_active.clear();
    still_active.reserve(active_.size());
    for (auto &r : active_) {
        if (chunk > 0 && r.prefilled < r.inputLen) {
            // Chunked prefill: this stage ran prefillSpan(r) prompt
            // tokens; only the chunk that finishes the prompt
            // produces the first token (the fall-through below).
            r.prefilled += prefillSpan(r);
            if (r.prefilled < r.inputLen) {
                still_active.push_back(std::move(r));
                continue;
            }
        }
        // A request admitted by the stage just completed has not
        // produced a token yet — generated == 0 is the per-request
        // prefill flag (requests enter active_ only through
        // admission, which leaves generated untouched).
        if (r.generated == 0) {
            r.firstToken = now;
            r.generated = 1;
        } else {
            // Leaves the decode set at its stage-time context; it
            // rejoins below at the grown context unless retired.
            decodeAgg_.removeDecode(r.contextLen());
            r.generated += 1;
        }
        r.tokenTimes.push_back(now);
        ++totalGenerated_;
        if (r.done()) {
            r.finished = now;
            activeLifetimeKv_ -= r.inputLen + r.outputLen;
            // The session's full context (prompt + completion)
            // moves from the live batch into the prefix cache so
            // the next turn can start warm.
            if (pool_ != nullptr)
                pool_->install(r);
            finished_.push_back(std::move(r));
        } else {
            decodeAgg_.addDecode(r.contextLen());
            still_active.push_back(std::move(r));
        }
    }
    std::swap(active_, still_active);
}

void
ContinuousBatcher::drainFinished(std::vector<Request> &out)
{
    out.clear();
    std::swap(out, finished_);
}

void
ContinuousBatcher::evictAll(std::vector<Request> &out)
{
    panicIf(stageOpen_, "evictAll with a stage in flight");
    // The ready pool holds the earliest arrivals (policy runs drain
    // due requests there), so it drains first to keep the
    // queued-in-arrival-order contract.
    for (auto &r : ready_)
        out.push_back(std::move(r));
    ready_.clear();
    arrivals_.drainPending(out);
    for (auto &r : active_)
        out.push_back(std::move(r));
    active_.clear();
    // The instance's KV is gone with the requests: reset the
    // incremental accounting the next admissions rebuild.
    decodeAgg_ = StageAggregates{};
    activeLifetimeKv_ = 0;
}

void
ContinuousBatcher::evictQueued(std::vector<Request> &out)
{
    panicIf(stageOpen_, "evictQueued with a stage in flight");
    // Same drain order as evictAll's queued half; the active batch
    // keeps running, so its accounting stays live.
    for (auto &r : ready_)
        out.push_back(std::move(r));
    ready_.clear();
    arrivals_.drainPending(out);
}

} // namespace duplex
