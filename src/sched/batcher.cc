#include "sched/batcher.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace duplex
{

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     std::vector<Request> requests)
    : ContinuousBatcher(
          config,
          ArrivalQueue(std::move(requests), config.closedLoop))
{
}

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     ArrivalQueue arrivals)
    : config_(config), arrivals_(std::move(arrivals))
{
    fatalIf(config_.maxBatch <= 0, "maxBatch must be positive");
}

bool
ContinuousBatcher::allDone() const
{
    return arrivals_.empty() && active_.empty();
}

std::int64_t
ContinuousBatcher::activeKvTokens() const
{
    // Full-lifetime budget: context already cached plus the tokens
    // the request will still generate.
    std::int64_t total = 0;
    for (const auto &r : active_)
        total += r.inputLen + r.outputLen;
    return total;
}

PicoSec
ContinuousBatcher::nextArrival() const
{
    return arrivals_.nextArrival();
}

StageShape
ContinuousBatcher::formStage(PicoSec now)
{
    panicIf(stageOpen_, "formStage called with a stage in flight");
    StageShape stage;
    stagePrefillIds_.clear();

    // Admit new requests while a slot and KV room exist.
    std::int64_t kv = activeKvTokens();
    while (arrivals_.hasAdmissible(now) &&
           static_cast<int>(stagePrefillIds_.size()) <
               config_.maxPrefillsPerStage &&
           active_.size() < static_cast<std::size_t>(config_.maxBatch)) {
        const Request &cand = arrivals_.front();
        // Budget the request's full KV lifetime (prompt plus the
        // tokens it will generate) so admitted requests never
        // overflow the cache mid-generation.
        const std::int64_t need =
            kv + cand.inputLen + cand.outputLen +
            static_cast<std::int64_t>(active_.size()) + 1;
        if (need > config_.maxKvTokens)
            break;
        Request admitted = arrivals_.pop(now);
        kv += admitted.inputLen;
        stagePrefillIds_.push_back(admitted.id);
        stage.prefillLengths.push_back(admitted.inputLen);
        stage.agg.addPrefill(admitted.inputLen);
        active_.push_back(admitted);
    }

    for (const auto &r : active_) {
        if (r.generated > 0)
            stage.decodeContexts.push_back(r.contextLen());
    }
    stage.agg.numDecode = decodeAgg_.numDecode;
    stage.agg.contextSum = decodeAgg_.contextSum;
    stage.aggValid = true;

    if (!stage.prefillLengths.empty())
        ++mixed_;
    else if (!stage.decodeContexts.empty())
        ++decodeOnly_;

    stageOpen_ = stage.totalTokens() > 0;
    return stage;
}

void
ContinuousBatcher::completeStage(PicoSec now)
{
    panicIf(!stageOpen_, "completeStage without a stage in flight");
    stageOpen_ = false;

    std::vector<Request> &still_active = stillActiveScratch_;
    still_active.clear();
    still_active.reserve(active_.size());
    for (auto &r : active_) {
        const bool was_prefill =
            std::find(stagePrefillIds_.begin(), stagePrefillIds_.end(),
                      r.id) != stagePrefillIds_.end();
        if (was_prefill) {
            r.firstToken = now;
            r.generated = 1;
        } else {
            // Leaves the decode set at its stage-time context; it
            // rejoins below at the grown context unless retired.
            decodeAgg_.removeDecode(r.contextLen());
            r.generated += 1;
        }
        r.tokenTimes.push_back(now);
        ++totalGenerated_;
        if (r.done()) {
            r.finished = now;
            finished_.push_back(r);
        } else {
            decodeAgg_.addDecode(r.contextLen());
            still_active.push_back(std::move(r));
        }
    }
    std::swap(active_, still_active);
    stagePrefillIds_.clear();
}

} // namespace duplex
