#include "sched/metrics.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

void
MetricsAccumulator::ingest(const Request &request)
{
    ++ingested_;
    if (ingested_ <= skip_)
        return; // warm-up request, excluded by completion order
    // One copy of the extraction rule, dispatched to either sink
    // family (SampleStats or BoundedStats — both expose add()).
    // The order mirrors the retained-vector collectMetrics walk
    // exactly (T2FT, E2E, then the token gaps), so the exact
    // mode's SampleStats — including the running float sums — are
    // bit-identical to the legacy path.
    const auto extract = [&](auto &t2ft, auto &e2e, auto &tbt,
                             auto &worst_gap) {
        if (request.firstToken >= 0)
            t2ft.add(psToMs(request.firstToken - request.arrival));
        if (request.finished >= 0)
            e2e.add(psToMs(request.finished - request.arrival));
        double worst = -1.0;
        for (std::size_t t = 1; t < request.tokenTimes.size();
             ++t) {
            const double gap = psToMs(request.tokenTimes[t] -
                                      request.tokenTimes[t - 1]);
            tbt.add(gap);
            worst = std::max(worst, gap);
        }
        if (worst >= 0.0)
            worst_gap.add(worst);
    };
    if (bounded_)
        extract(bounded_->t2ftMs, bounded_->e2eMs,
                bounded_->tbtMs, bounded_->worstGapMs);
    else
        extract(metrics_.t2ftMs, metrics_.e2eMs, metrics_.tbtMs,
                worstGap_);
}

BoundedLatencyMetrics
MetricsAccumulator::takeBounded()
{
    panicIf(!bounded_,
            "takeBounded on an exact-mode MetricsAccumulator");
    BoundedLatencyMetrics out = std::move(*bounded_);
    bounded_.reset();
    return out;
}

ServingMetrics
collectMetrics(const std::vector<Request> &finished,
               std::size_t skip_requests)
{
    MetricsAccumulator acc(skip_requests);
    for (const Request &r : finished)
        acc.ingest(r);
    return acc.takeMetrics();
}

void
WarmupWindow::onStageCompleted(PicoSec now,
                               std::int64_t generated_tokens)
{
    ++stages_;
    if (stages_ == warmupStages_) {
        windowStart_ = now;
        tokensAtStart_ = generated_tokens;
    }
}

void
WarmupWindow::finalize(ServingMetrics &m, PicoSec now,
                       std::int64_t total_tokens) const
{
    if (stages_ > warmupStages_) {
        // Throughput over the post-warm-up window only.
        m.totalTokens = total_tokens - tokensAtStart_;
        m.elapsed = now - windowStart_;
    } else {
        m.totalTokens = total_tokens;
        m.elapsed = now;
    }
}

LatencySummary
summarizeLatency(const ServingMetrics &m)
{
    LatencySummary s;
    s.tbtP50 = m.tbtMs.percentile(50);
    s.tbtP90 = m.tbtMs.percentile(90);
    s.tbtP99 = m.tbtMs.percentile(99);
    s.t2ftP50 = m.t2ftMs.percentile(50);
    s.e2eP50 = m.e2eMs.percentile(50);
    return s;
}

} // namespace duplex
