#include "sched/metrics.hh"

namespace duplex
{

ServingMetrics
collectMetrics(const std::vector<Request> &finished,
               std::size_t skip_requests)
{
    ServingMetrics m;
    for (std::size_t i = skip_requests; i < finished.size(); ++i) {
        const Request &r = finished[i];
        if (r.firstToken >= 0)
            m.t2ftMs.add(psToMs(r.firstToken - r.arrival));
        if (r.finished >= 0)
            m.e2eMs.add(psToMs(r.finished - r.arrival));
        for (std::size_t t = 1; t < r.tokenTimes.size(); ++t) {
            m.tbtMs.add(
                psToMs(r.tokenTimes[t] - r.tokenTimes[t - 1]));
        }
    }
    return m;
}

} // namespace duplex
