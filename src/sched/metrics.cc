#include "sched/metrics.hh"

namespace duplex
{

ServingMetrics
collectMetrics(const std::vector<Request> &finished,
               std::size_t skip_requests)
{
    ServingMetrics m;
    for (std::size_t i = skip_requests; i < finished.size(); ++i) {
        const Request &r = finished[i];
        if (r.firstToken >= 0)
            m.t2ftMs.add(psToMs(r.firstToken - r.arrival));
        if (r.finished >= 0)
            m.e2eMs.add(psToMs(r.finished - r.arrival));
        for (std::size_t t = 1; t < r.tokenTimes.size(); ++t) {
            m.tbtMs.add(
                psToMs(r.tokenTimes[t] - r.tokenTimes[t - 1]));
        }
    }
    return m;
}

void
WarmupWindow::onStageCompleted(PicoSec now,
                               std::int64_t generated_tokens)
{
    ++stages_;
    if (stages_ == warmupStages_) {
        windowStart_ = now;
        tokensAtStart_ = generated_tokens;
    }
}

void
WarmupWindow::finalize(ServingMetrics &m, PicoSec now,
                       std::int64_t total_tokens) const
{
    if (stages_ > warmupStages_) {
        // Throughput over the post-warm-up window only.
        m.totalTokens = total_tokens - tokensAtStart_;
        m.elapsed = now - windowStart_;
    } else {
        m.totalTokens = total_tokens;
        m.elapsed = now;
    }
}

LatencySummary
summarizeLatency(const ServingMetrics &m)
{
    LatencySummary s;
    s.tbtP50 = m.tbtMs.percentile(50);
    s.tbtP90 = m.tbtMs.percentile(90);
    s.tbtP99 = m.tbtMs.percentile(99);
    s.t2ftP50 = m.t2ftMs.percentile(50);
    s.e2eP50 = m.e2eMs.percentile(50);
    return s;
}

} // namespace duplex
