/**
 * @file
 * Serving metrics: the quantities the paper's figures report.
 *
 *  - TBT  (token-between-token): gap between consecutive token
 *    completions of one request; p50/p90/p99 in Figs. 12/13.
 *  - T2FT (time-to-first-token): arrival to first token.
 *  - E2E  : arrival to last token.
 *  - Throughput: generated tokens per second (Figs. 11/14).
 */

#ifndef DUPLEX_SCHED_METRICS_HH
#define DUPLEX_SCHED_METRICS_HH

#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "workload/request.hh"

namespace duplex
{

/** Aggregated serving metrics over a run. */
struct ServingMetrics
{
    SampleStats tbtMs;
    SampleStats t2ftMs;
    SampleStats e2eMs;
    std::int64_t totalTokens = 0;
    PicoSec elapsed = 0;
    std::int64_t decodingOnlyStages = 0;
    std::int64_t mixedStages = 0;

    /** Tokens per second over the whole run. */
    double throughputTokensPerSec() const
    {
        const double sec = psToSec(elapsed);
        return sec > 0.0 ? static_cast<double>(totalTokens) / sec
                         : 0.0;
    }

    /** Fraction of stages that were decoding-only (Fig. 5(a)). */
    double decodingOnlyRatio() const
    {
        const double total = static_cast<double>(
            decodingOnlyStages + mixedStages);
        return total > 0.0
                   ? static_cast<double>(decodingOnlyStages) / total
                   : 0.0;
    }
};

/**
 * Collect latency metrics from finished requests, skipping the first
 * @p skip_requests (warm-up) by completion order.
 */
ServingMetrics collectMetrics(const std::vector<Request> &finished,
                              std::size_t skip_requests = 0);

} // namespace duplex

#endif // DUPLEX_SCHED_METRICS_HH
