/**
 * @file
 * Serving metrics: the quantities the paper's figures report.
 *
 *  - TBT  (token-between-token): gap between consecutive token
 *    completions of one request; p50/p90/p99 in Figs. 12/13.
 *  - T2FT (time-to-first-token): arrival to first token.
 *  - E2E  : arrival to last token.
 *  - Throughput: generated tokens per second (Figs. 11/14).
 *  - SLO attainment: fraction of T2FT / TBT observations under a
 *    latency objective (SloSpec); the per-request view — and
 *    goodput, tokens from SLO-attaining requests only — comes from
 *    the SloAttainment observer (sim/observers.hh).
 */

#ifndef DUPLEX_SCHED_METRICS_HH
#define DUPLEX_SCHED_METRICS_HH

#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "workload/request.hh"

namespace duplex
{

/**
 * A latency service-level objective: the time-to-first-token a
 * user will wait and the steady token cadence they expect. The
 * defaults are interactive-chat-shaped; sweeps override them.
 */
struct SloSpec
{
    double t2ftMs = 1500.0; //!< time to first token (TTFT)
    double tbtMs = 40.0;    //!< gap between consecutive tokens
};

/** Aggregated serving metrics over a run. */
struct ServingMetrics
{
    SampleStats tbtMs;
    SampleStats t2ftMs;
    SampleStats e2eMs;
    std::int64_t totalTokens = 0;
    PicoSec elapsed = 0;
    std::int64_t decodingOnlyStages = 0;
    std::int64_t mixedStages = 0;

    /** Tokens per second over the whole run. */
    double throughputTokensPerSec() const
    {
        const double sec = psToSec(elapsed);
        return sec > 0.0 ? static_cast<double>(totalTokens) / sec
                         : 0.0;
    }

    /** Fraction of T2FT observations meeting the objective. */
    double t2ftAttainment(const SloSpec &slo) const
    {
        return t2ftMs.fractionAtMost(slo.t2ftMs);
    }

    /** Fraction of token gaps meeting the objective. */
    double tbtAttainment(const SloSpec &slo) const
    {
        return tbtMs.fractionAtMost(slo.tbtMs);
    }

    /** Fraction of stages that were decoding-only (Fig. 5(a)). */
    double decodingOnlyRatio() const
    {
        const double total = static_cast<double>(
            decodingOnlyStages + mixedStages);
        return total > 0.0
                   ? static_cast<double>(decodingOnlyStages) / total
                   : 0.0;
    }
};

/**
 * Collect latency metrics from finished requests, skipping the first
 * @p skip_requests (warm-up) by completion order.
 */
ServingMetrics collectMetrics(const std::vector<Request> &finished,
                              std::size_t skip_requests = 0);

/**
 * Warm-up-window bookkeeping shared by the simulation drivers:
 * throughput is reported over the post-warm-up window only (the
 * batch ramp-up distorts it), falling back to the whole run when it
 * ends before the window closes. Latency percentiles use
 * warm-up-request skipping (collectMetrics) instead.
 */
class WarmupWindow
{
  public:
    explicit WarmupWindow(std::int64_t warmup_stages)
        : warmupStages_(warmup_stages)
    {
    }

    /** Record one completed stage at time @p now. */
    void onStageCompleted(PicoSec now,
                          std::int64_t generated_tokens);

    /** Completed stages so far. */
    std::int64_t stages() const { return stages_; }

    /** Fill @p m's throughput window from the run's end state. */
    void finalize(ServingMetrics &m, PicoSec now,
                  std::int64_t total_tokens) const;

  private:
    std::int64_t warmupStages_;
    std::int64_t stages_ = 0;
    PicoSec windowStart_ = 0;
    std::int64_t tokensAtStart_ = 0;
};

/**
 * Warm-up requests to exclude from latency percentiles for a given
 * stage-level batch limit (the benches' shared rule of thumb).
 */
inline int
defaultWarmupRequests(int max_batch)
{
    return max_batch / 2;
}

/** The latency percentiles the paper's figures report. */
struct LatencySummary
{
    double tbtP50 = 0.0;
    double tbtP90 = 0.0;
    double tbtP99 = 0.0;
    double t2ftP50 = 0.0;
    double e2eP50 = 0.0;
};

/** Pull the standard figure percentiles out of @p m. */
LatencySummary summarizeLatency(const ServingMetrics &m);

} // namespace duplex

#endif // DUPLEX_SCHED_METRICS_HH
