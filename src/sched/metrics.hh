/**
 * @file
 * Serving metrics: the quantities the paper's figures report.
 *
 *  - TBT  (token-between-token): gap between consecutive token
 *    completions of one request; p50/p90/p99 in Figs. 12/13.
 *  - T2FT (time-to-first-token): arrival to first token.
 *  - E2E  : arrival to last token.
 *  - Throughput: generated tokens per second (Figs. 11/14).
 *  - SLO attainment: fraction of T2FT / TBT observations under a
 *    latency objective (SloSpec); the per-request view — and
 *    goodput, tokens from SLO-attaining requests only — comes from
 *    the SloAttainment observer (sim/observers.hh).
 */

#ifndef DUPLEX_SCHED_METRICS_HH
#define DUPLEX_SCHED_METRICS_HH

#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "workload/request.hh"

namespace duplex
{

/**
 * A latency service-level objective: the time-to-first-token a
 * user will wait and the steady token cadence they expect. The
 * defaults are interactive-chat-shaped; sweeps override them.
 */
struct SloSpec
{
    double t2ftMs = 1500.0; //!< time to first token (TTFT)
    double tbtMs = 40.0;    //!< gap between consecutive tokens
};

/** Aggregated serving metrics over a run. */
struct ServingMetrics
{
    SampleStats tbtMs;
    SampleStats t2ftMs;
    SampleStats e2eMs;
    std::int64_t totalTokens = 0;
    PicoSec elapsed = 0;
    std::int64_t decodingOnlyStages = 0;
    std::int64_t mixedStages = 0;

    /** Tokens per second over the whole run. */
    double throughputTokensPerSec() const
    {
        const double sec = psToSec(elapsed);
        return sec > 0.0 ? static_cast<double>(totalTokens) / sec
                         : 0.0;
    }

    /** Fraction of T2FT observations meeting the objective. */
    double t2ftAttainment(const SloSpec &slo) const
    {
        return t2ftMs.fractionAtMost(slo.t2ftMs);
    }

    /** Fraction of token gaps meeting the objective. */
    double tbtAttainment(const SloSpec &slo) const
    {
        return tbtMs.fractionAtMost(slo.tbtMs);
    }

    /** Fraction of stages that were decoding-only (Fig. 5(a)). */
    double decodingOnlyRatio() const
    {
        const double total = static_cast<double>(
            decodingOnlyStages + mixedStages);
        return total > 0.0
                   ? static_cast<double>(decodingOnlyStages) / total
                   : 0.0;
    }
};

/**
 * How a driver loop retains latency metrics over a run:
 *
 *  - Streaming (default): retired requests are drained from the
 *    scheduler each stage and fed to a MetricsAccumulator; the
 *    Request (and its per-token timestamp vector) is dropped
 *    immediately. Sample-for-sample identical to Retained — the
 *    golden path. Only the extracted latency samples are kept
 *    (doubles, O(tokens) over the run), not the Request objects;
 *    for truly flat memory use Bounded.
 *  - Retained: the legacy path — every finished Request is kept
 *    until the end of the run and collectMetrics walks the vector.
 *    Kept as the reference the streaming path is property-tested
 *    against, and for callers that want the raw requests.
 *  - Bounded: streaming retirement into fixed-bin BoundedStats
 *    histograms — truly O(1) memory in the request count, but
 *    latency percentiles are approximate (NOT the golden path).
 *    The run's SimResult carries the histograms in
 *    boundedLatency; its ServingMetrics latency SampleStats stay
 *    empty.
 */
enum class MetricsMode
{
    Streaming,
    Retained,
    Bounded,
};

/** The O(1)-memory latency view a Bounded-mode run produces. */
struct BoundedLatencyMetrics
{
    BoundedStats tbtMs;
    BoundedStats t2ftMs;
    BoundedStats e2eMs;
    BoundedStats worstGapMs; //!< worst token gap per request

    explicit BoundedLatencyMetrics(const BoundedSpec &spec = {})
        : tbtMs(spec), t2ftMs(spec), e2eMs(spec), worstGapMs(spec)
    {
    }
};

/**
 * Streams retired requests into latency metrics so the driver loop
 * never retains a finished Request: ingest() extracts the
 * TTFT/E2E/worst-gap/TBT samples and the caller drops the request.
 *
 * The first @p skip_requests ingested (warm-up, by completion
 * order) contribute nothing — the same exclusion collectMetrics
 * applies by index. In the default exact mode the extracted samples
 * land in SampleStats in the exact order collectMetrics would have
 * produced, so takeMetrics() is bit-identical to the retained
 * vector path (pinned in tests/sim/test_streaming_metrics.cc). In
 * bounded mode ([skip, BoundedSpec] constructor) samples land in
 * fixed-bin histograms instead and memory stays O(bins).
 */
class MetricsAccumulator
{
  public:
    /** Exact mode: SampleStats, bit-identical to collectMetrics. */
    explicit MetricsAccumulator(std::size_t skip_requests = 0)
        : skip_(skip_requests)
    {
    }

    /** Bounded mode: fixed-bin histograms, O(1) memory. */
    MetricsAccumulator(std::size_t skip_requests,
                       const BoundedSpec &spec)
        : skip_(skip_requests), bounded_(spec)
    {
    }

    /** Consume one retired request; the caller may drop it after. */
    void ingest(const Request &request);

    /** Requests ingested so far (including skipped warm-up). */
    std::size_t ingested() const { return ingested_; }

    bool bounded() const { return bounded_.has_value(); }

    /**
     * Move the accumulated metrics out (latency samples, exact
     * mode; empty SampleStats in bounded mode). Throughput-window
     * fields (totalTokens, elapsed, stage counts) are the driver
     * loop's to fill, exactly as with collectMetrics.
     */
    ServingMetrics takeMetrics() { return std::move(metrics_); }

    /**
     * Worst token gap per request (exact mode samples; one per
     * multi-token request, so it retains an order of magnitude
     * fewer samples than the per-gap tbtMs beside it).
     */
    const SampleStats &worstGapMs() const { return worstGap_; }

    /** Move the bounded histograms out (bounded mode only). */
    BoundedLatencyMetrics takeBounded();

  private:
    std::size_t skip_ = 0;
    std::size_t ingested_ = 0;
    ServingMetrics metrics_;
    SampleStats worstGap_;
    std::optional<BoundedLatencyMetrics> bounded_;
};

/**
 * The accumulator a driver loop needs for @p mode: bounded
 * histograms for MetricsMode::Bounded, exact SampleStats otherwise
 * (Retained-mode drivers build one too but route results through
 * collectMetrics instead). One place, so the engine and custom
 * loops cannot diverge on warm-up-skip or histogram wiring.
 */
inline MetricsAccumulator
makeMetricsAccumulator(MetricsMode mode, std::size_t skip_requests,
                       const BoundedSpec &spec)
{
    return mode == MetricsMode::Bounded
               ? MetricsAccumulator(skip_requests, spec)
               : MetricsAccumulator(skip_requests);
}

/**
 * Collect latency metrics from finished requests, skipping the first
 * @p skip_requests (warm-up) by completion order. A shim over
 * MetricsAccumulator, kept for retained-vector callers.
 */
ServingMetrics collectMetrics(const std::vector<Request> &finished,
                              std::size_t skip_requests = 0);

/**
 * Warm-up-window bookkeeping shared by the simulation drivers:
 * throughput is reported over the post-warm-up window only (the
 * batch ramp-up distorts it), falling back to the whole run when it
 * ends before the window closes. Latency percentiles use
 * warm-up-request skipping (collectMetrics) instead.
 */
class WarmupWindow
{
  public:
    explicit WarmupWindow(std::int64_t warmup_stages)
        : warmupStages_(warmup_stages)
    {
    }

    /** Record one completed stage at time @p now. */
    void onStageCompleted(PicoSec now,
                          std::int64_t generated_tokens);

    /** Completed stages so far. */
    std::int64_t stages() const { return stages_; }

    /** Fill @p m's throughput window from the run's end state. */
    void finalize(ServingMetrics &m, PicoSec now,
                  std::int64_t total_tokens) const;

  private:
    std::int64_t warmupStages_;
    std::int64_t stages_ = 0;
    PicoSec windowStart_ = 0;
    std::int64_t tokensAtStart_ = 0;
};

/**
 * Warm-up requests to exclude from latency percentiles for a given
 * stage-level batch limit (the benches' shared rule of thumb).
 */
inline int
defaultWarmupRequests(int max_batch)
{
    return max_batch / 2;
}

/** The latency percentiles the paper's figures report. */
struct LatencySummary
{
    double tbtP50 = 0.0;
    double tbtP90 = 0.0;
    double tbtP99 = 0.0;
    double t2ftP50 = 0.0;
    double e2eP50 = 0.0;
};

/** Pull the standard figure percentiles out of @p m. */
LatencySummary summarizeLatency(const ServingMetrics &m);

} // namespace duplex

#endif // DUPLEX_SCHED_METRICS_HH
