/**
 * @file
 * Request-arrival semantics shared by every driver loop.
 *
 * The engine's continuous-batching loop and the split system's
 * custom loop consume the same request stream under the same two
 * admission disciplines: closed loop (a finished request is
 * replaced immediately; arrival timestamps are overwritten at
 * admission) and open loop (Poisson arrivals at workload.qps; a
 * request is admissible only once its arrival time has passed).
 * ArrivalQueue owns that discipline in one place, so a new driver
 * loop cannot fork the arrival contract; idleAdvance owns the
 * matching no-drift clock rule for idle gaps.
 */

#ifndef DUPLEX_SCHED_ARRIVALS_HH
#define DUPLEX_SCHED_ARRIVALS_HH

#include <deque>
#include <vector>

#include "workload/generator.hh"

namespace duplex
{

/** FIFO request queue with closed/open-loop admission gating. */
class ArrivalQueue
{
  public:
    /** Wrap a pre-generated stream (the batcher's entry point). */
    ArrivalQueue(std::vector<Request> requests, bool closed_loop);

    /**
     * Generate the stream a SimConfig describes: @p num_requests
     * drawn from @p workload, open loop iff workload.qps > 0. This
     * is the arrival stream the engine loop consumes; custom loops
     * construct it the same way so both see identical requests.
     */
    ArrivalQueue(const WorkloadConfig &workload, int num_requests);

    bool empty() const { return pending_.empty(); }
    std::size_t size() const { return pending_.size(); }
    bool closedLoop() const { return closedLoop_; }

    /** Next request in arrival order; queue must be non-empty. */
    const Request &front() const;

    /**
     * True when the front request may be admitted at @p now: always
     * in closed loop, only once its arrival has passed in open loop.
     */
    bool hasAdmissible(PicoSec now) const;

    /**
     * Pop the front request. Closed-loop admission overwrites the
     * arrival timestamp with @p now (the request conceptually enters
     * the queue the moment a slot frees).
     */
    Request pop(PicoSec now);

    /**
     * Earliest arrival among pending requests (open loop); used to
     * advance an idle clock across arrival gaps. -1 when empty.
     */
    PicoSec nextArrival() const;

  private:
    std::deque<Request> pending_;
    bool closedLoop_ = true;
};

/**
 * Idle-clock advance rule shared by the driver loops: jump exactly
 * to the next arrival; the one-picosecond bump exists only for
 * stalls where the clock would not otherwise move (admission blocked
 * with the arrival already in the past). For an integer clock this
 * is equivalent to max(now + 1, arrival) — spelled out so the
 * no-drift-ahead-of-arrival invariant is explicit (pinned by
 * Engine.OpenLoopIdleAdvanceJumpsExactlyToArrival).
 */
inline PicoSec
idleAdvance(PicoSec now, PicoSec next_arrival)
{
    return next_arrival > now ? next_arrival : now + 1;
}

} // namespace duplex

#endif // DUPLEX_SCHED_ARRIVALS_HH
