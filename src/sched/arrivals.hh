/**
 * @file
 * Request-arrival semantics shared by every driver loop.
 *
 * The engine's continuous-batching loop and the split system's
 * custom loop consume the same request stream under the same two
 * admission disciplines: closed loop (a finished request is
 * replaced immediately; arrival timestamps are overwritten at
 * admission) and open loop (arrivals stamped by the workload
 * source; a request is admissible only once its arrival time has
 * passed). ArrivalQueue owns that discipline in one place, so a new
 * driver loop cannot fork the arrival contract; idleAdvance owns
 * the matching no-drift clock rule for idle gaps.
 *
 * The queue streams: when constructed over a WorkloadSource it
 * buffers exactly one lookahead request and draws the rest on
 * demand, so a million-request run never materializes the stream.
 * The pre-generated-vector constructor remains for callers that
 * already hold a request vector (trace snippets, tests); both paths
 * behave bit-for-bit identically (pinned in
 * tests/sched/test_arrivals.cc).
 */

#ifndef DUPLEX_SCHED_ARRIVALS_HH
#define DUPLEX_SCHED_ARRIVALS_HH

#include <deque>
#include <memory>
#include <vector>

#include "workload/source.hh"

namespace duplex
{

/** FIFO request queue with closed/open-loop admission gating. */
class ArrivalQueue
{
  public:
    /** Wrap a pre-generated stream (vector callers, tests). */
    ArrivalQueue(std::vector<Request> requests, bool closed_loop);

    /**
     * Stream the synthetic stream a WorkloadConfig describes:
     * @p num_requests drawn lazily from the config's
     * RequestGenerator, open loop iff workload.qps > 0. Kept for
     * old call sites; identical to wrapping a SyntheticSource.
     */
    ArrivalQueue(const WorkloadConfig &workload, int num_requests);

    /**
     * Stream @p num_requests from a workload source built by the
     * WorkloadRegistry (capped by the source's own remaining()
     * count — a short trace ends the run early). This is the
     * arrival stream every driver loop consumes; the engine and
     * custom loops construct it the same way so both see identical
     * requests.
     */
    ArrivalQueue(std::unique_ptr<WorkloadSource> source,
                 std::int64_t num_requests);

    /**
     * An empty push-fed queue: requests arrive through push() as a
     * router delivers them (src/fleet/). The admission discipline
     * is identical to the other modes; only the feeding differs.
     */
    explicit ArrivalQueue(bool closed_loop);

    /**
     * Append one routed request. Push-fed and vector queues only
     * (a streaming queue owns its source; mixing feeds would fork
     * the arrival order). Arrivals must stay non-decreasing — a
     * router consuming a workload stream in arrival order delivers
     * them that way per instance by construction.
     */
    void push(Request r);

    /**
     * Move every buffered request into @p out (appending, in
     * arrival order) — the fleet crash-eviction path. Push-fed and
     * vector queues only, like push(): a streaming queue owns its
     * source and cannot give requests back without forking the
     * draw stream.
     */
    void drainPending(std::vector<Request> &out);

    bool empty() const { return size() == 0; }

    /** Requests still pending (buffered plus undrawn). */
    std::size_t size() const
    {
        return pending_.size() + static_cast<std::size_t>(budget_);
    }

    bool closedLoop() const { return closedLoop_; }

    /** Next request in arrival order; queue must be non-empty. */
    const Request &front() const;

    /**
     * True when the front request may be admitted at @p now: always
     * in closed loop, only once its arrival has passed in open loop.
     */
    bool hasAdmissible(PicoSec now) const;

    /**
     * Pop the front request. Closed-loop admission overwrites the
     * arrival timestamp with @p now (the request conceptually enters
     * the queue the moment a slot frees).
     */
    Request pop(PicoSec now);

    /**
     * Earliest arrival among pending requests (open loop); used to
     * advance an idle clock across arrival gaps. -1 when empty.
     */
    PicoSec nextArrival() const;

    /**
     * A driver loop retired @p r at @p now. No-op unless this is a
     * streaming queue over a wantsRetirements() source (so every
     * pre-existing workload keeps its exact draw stream). Otherwise
     * the buffered lookahead is handed back to the source (its
     * budget restored) before forwarding, so a retirement-created
     * turn that precedes the buffer is re-emitted in arrival order.
     */
    void notifyRetired(const Request &r, PicoSec now);

  private:
    /** Buffered requests: the whole stream in vector mode, at most
     *  one lookahead draw in streaming mode. */
    mutable std::deque<Request> pending_;

    /** Streaming generator; null in vector mode. */
    mutable std::unique_ptr<WorkloadSource> source_;

    /** Requests still to draw from source_. */
    mutable std::int64_t budget_ = 0;

    bool closedLoop_ = true;

    /** Pull the next request into pending_ when it runs dry. */
    void refill() const;
};

/**
 * Idle-clock advance rule shared by the driver loops: jump exactly
 * to the next arrival; the one-picosecond bump exists only for
 * stalls where the clock would not otherwise move (admission blocked
 * with the arrival already in the past). For an integer clock this
 * is equivalent to max(now + 1, arrival) — spelled out so the
 * no-drift-ahead-of-arrival invariant is explicit (pinned by
 * Engine.OpenLoopIdleAdvanceJumpsExactlyToArrival).
 */
inline PicoSec
idleAdvance(PicoSec now, PicoSec next_arrival)
{
    return next_arrival > now ? next_arrival : now + 1;
}

} // namespace duplex

#endif // DUPLEX_SCHED_ARRIVALS_HH
