#include "sched/arrivals.hh"

#include "common/log.hh"

namespace duplex
{

ArrivalQueue::ArrivalQueue(std::vector<Request> requests,
                           bool closed_loop)
    : pending_(requests.begin(), requests.end()),
      closedLoop_(closed_loop)
{
}

ArrivalQueue::ArrivalQueue(const WorkloadConfig &workload,
                           int num_requests)
    : closedLoop_(!workload.openLoop())
{
    RequestGenerator gen(workload);
    for (const Request &r : gen.take(num_requests))
        pending_.push_back(r);
}

const Request &
ArrivalQueue::front() const
{
    panicIf(pending_.empty(), "ArrivalQueue::front on empty queue");
    return pending_.front();
}

bool
ArrivalQueue::hasAdmissible(PicoSec now) const
{
    if (pending_.empty())
        return false;
    return closedLoop_ || pending_.front().arrival <= now;
}

Request
ArrivalQueue::pop(PicoSec now)
{
    panicIf(pending_.empty(), "ArrivalQueue::pop on empty queue");
    Request r = pending_.front();
    pending_.pop_front();
    if (closedLoop_)
        r.arrival = now;
    return r;
}

PicoSec
ArrivalQueue::nextArrival() const
{
    if (pending_.empty())
        return -1;
    return pending_.front().arrival;
}

} // namespace duplex
