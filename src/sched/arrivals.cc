#include "sched/arrivals.hh"

#include <algorithm>

#include "common/log.hh"

namespace duplex
{

ArrivalQueue::ArrivalQueue(std::vector<Request> requests,
                           bool closed_loop)
    : pending_(requests.begin(), requests.end()),
      closedLoop_(closed_loop)
{
}

ArrivalQueue::ArrivalQueue(const WorkloadConfig &workload,
                           int num_requests)
    : ArrivalQueue(
          std::make_unique<SyntheticSource>("synthetic", workload),
          num_requests)
{
}

ArrivalQueue::ArrivalQueue(std::unique_ptr<WorkloadSource> source,
                           std::int64_t num_requests)
{
    fatalIf(source == nullptr, "ArrivalQueue: null workload source");
    fatalIf(num_requests < 0,
            "ArrivalQueue: negative request count");
    closedLoop_ = !source->openLoop();
    budget_ = std::min(num_requests, source->remaining());
    source_ = std::move(source);
}

ArrivalQueue::ArrivalQueue(bool closed_loop)
    : closedLoop_(closed_loop)
{
}

void
ArrivalQueue::push(Request r)
{
    panicIf(source_ != nullptr,
            "ArrivalQueue::push on a streaming queue");
    panicIf(!pending_.empty() && r.arrival < pending_.back().arrival,
            "ArrivalQueue::push out of arrival order");
    pending_.push_back(std::move(r));
}

void
ArrivalQueue::drainPending(std::vector<Request> &out)
{
    panicIf(source_ != nullptr,
            "ArrivalQueue::drainPending on a streaming queue");
    for (auto &r : pending_)
        out.push_back(std::move(r));
    pending_.clear();
}

void
ArrivalQueue::refill() const
{
    if (pending_.empty() && budget_ > 0) {
        pending_.push_back(source_->next());
        --budget_;
    }
}

const Request &
ArrivalQueue::front() const
{
    refill();
    panicIf(pending_.empty(), "ArrivalQueue::front on empty queue");
    return pending_.front();
}

bool
ArrivalQueue::hasAdmissible(PicoSec now) const
{
    if (empty())
        return false;
    return closedLoop_ || front().arrival <= now;
}

Request
ArrivalQueue::pop(PicoSec now)
{
    refill();
    panicIf(pending_.empty(), "ArrivalQueue::pop on empty queue");
    Request r = pending_.front();
    pending_.pop_front();
    if (closedLoop_)
        r.arrival = now;
    return r;
}

PicoSec
ArrivalQueue::nextArrival() const
{
    if (empty())
        return -1;
    return front().arrival;
}

void
ArrivalQueue::notifyRetired(const Request &r, PicoSec now)
{
    if (source_ == nullptr || !source_->wantsRetirements())
        return;
    while (!pending_.empty()) {
        source_->restore(std::move(pending_.back()));
        pending_.pop_back();
        ++budget_;
    }
    source_->notifyRetired(r, now);
}

} // namespace duplex
