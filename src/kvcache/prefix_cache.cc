#include "kvcache/prefix_cache.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace duplex
{

void
PrefixCacheMetrics::merge(const PrefixCacheMetrics &other)
{
    lookups += other.lookups;
    hits += other.hits;
    misses += other.misses;
    hitTokens += other.hitTokens;
    installs += other.installs;
    evictions += other.evictions;
    installedBytes += other.installedBytes;
    evictedBytes += other.evictedBytes;
    acquiredBytes += other.acquiredBytes;
    residentBytes += other.residentBytes;
    peakResidentBytes += other.peakResidentBytes;
}

// ------------------------------------------------- stock policies

namespace
{

/** Least-recently-used: oldest lastUseTick goes first. */
class LruEviction : public EvictionPolicy
{
  public:
    std::int64_t
    victim(const std::vector<EvictionCandidate> &candidates) override
    {
        panicIf(candidates.empty(),
                "lru eviction over an empty candidate list");
        const EvictionCandidate *best = &candidates.front();
        for (const EvictionCandidate &c : candidates)
            if (c.lastUseTick < best->lastUseTick)
                best = &c;
        return best->key;
    }

    const std::string &name() const override
    {
        static const std::string kName = "lru";
        return kName;
    }

    std::string describe() const override
    {
        return "evict the least recently used prefix (oldest "
               "logical access tick; key breaks ties)";
    }
};

/** Least-frequently-used: fewest hits, then oldest, goes first. */
class LfuEviction : public EvictionPolicy
{
  public:
    std::int64_t
    victim(const std::vector<EvictionCandidate> &candidates) override
    {
        panicIf(candidates.empty(),
                "lfu eviction over an empty candidate list");
        const EvictionCandidate *best = &candidates.front();
        for (const EvictionCandidate &c : candidates) {
            if (c.useCount < best->useCount ||
                (c.useCount == best->useCount &&
                 c.lastUseTick < best->lastUseTick))
                best = &c;
        }
        return best->key;
    }

    const std::string &name() const override
    {
        static const std::string kName = "lfu";
        return kName;
    }

    std::string describe() const override
    {
        return "evict the least frequently used prefix (fewest "
               "hits; recency, then key, breaks ties)";
    }
};

void
registerStockEvictionPolicies(EvictionPolicyRegistry &registry)
{
    registry.add("lru",
                 "least recently used (oldest logical access tick)",
                 [] { return std::make_unique<LruEviction>(); });
    registry.add("lfu",
                 "least frequently used (fewest hits, then oldest)",
                 [] { return std::make_unique<LfuEviction>(); });
}

} // namespace

// ------------------------------------------------------- registry

EvictionPolicyRegistry &
EvictionPolicyRegistry::instance()
{
    static EvictionPolicyRegistry *registry = [] {
        auto *r = new EvictionPolicyRegistry;
        registerStockEvictionPolicies(*r);
        return r;
    }();
    return *registry;
}

void
EvictionPolicyRegistry::add(const std::string &id,
                            const std::string &summary,
                            EvictionPolicyFactory factory)
{
    fatalIf(contains(id),
            "EvictionPolicyRegistry: duplicate policy id '" + id +
                "'");
    fatalIf(!factory,
            "EvictionPolicyRegistry: null factory for '" + id +
                "'");
    entries_.push_back({id, summary, std::move(factory)});
}

bool
EvictionPolicyRegistry::contains(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return true;
    return false;
}

const EvictionPolicyRegistry::Entry &
EvictionPolicyRegistry::find(const std::string &id) const
{
    for (const Entry &e : entries_)
        if (e.id == id)
            return e;
    std::string known;
    for (const Entry &e : entries_)
        known += (known.empty() ? "" : ", ") + e.id;
    fatal("EvictionPolicyRegistry: unknown eviction policy '" + id +
          "' (known: " + known + ")");
}

std::unique_ptr<EvictionPolicy>
EvictionPolicyRegistry::make(const std::string &id) const
{
    return find(id).factory();
}

std::vector<std::string>
EvictionPolicyRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.id);
    std::sort(out.begin(), out.end());
    return out;
}

const std::string &
EvictionPolicyRegistry::summary(const std::string &id) const
{
    return find(id).summary;
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(const std::string &id)
{
    return EvictionPolicyRegistry::instance().make(id);
}

std::vector<std::string>
registeredEvictionPolicies()
{
    return EvictionPolicyRegistry::instance().ids();
}

void
registerEvictionPolicy(const std::string &id,
                       const std::string &summary,
                       EvictionPolicyFactory factory)
{
    EvictionPolicyRegistry::instance().add(id, summary,
                                           std::move(factory));
}

// ------------------------------------------------ PrefixCachePool

PrefixCachePool::PrefixCachePool(const PrefixCacheSpec &spec,
                                 std::int64_t bytesPerToken)
    : spec_(spec), bytesPerToken_(bytesPerToken)
{
    if (!spec_.enabled())
        return;
    fatalIf(bytesPerToken_ <= 0,
            "PrefixCachePool: bytes per token must be positive");
    fatalIf(spec_.sharedPrefixTokens < 0,
            "PrefixCachePool: shared prefix tokens must be "
            "non-negative");
    policy_ = makeEvictionPolicy(spec_.evictPolicy);
    // Seed the cross-session shared system prompt: every fresh
    // session's first turn starts with it, so it is warm from the
    // first request (and evictable like any other entry).
    if (spec_.sharedPrefixTokens > 0 &&
        spec_.sharedPrefixTokens * bytesPerToken_ <=
            spec_.budgetBytes)
        insert(kSharedKey, spec_.sharedPrefixTokens);
}

std::int64_t
PrefixCachePool::acquire(const Request &r)
{
    if (!enabled() || r.sessionId < 0 || r.inputLen <= 0)
        return 0;
    ++metrics_.lookups;
    // Session history first: it contains the shared prefix, so it
    // is always the longer of the two possible hits.
    auto it = entries_.find(r.sessionId);
    if (it != entries_.end()) {
        const std::int64_t h =
            std::min(it->second.tokens, r.inputLen - 1);
        // Check the entry out: its bytes ride with the live batch
        // (which charges the full context) until retirement
        // re-installs, so cached KV is never counted twice.
        metrics_.acquiredBytes += it->second.bytes;
        metrics_.residentBytes -= it->second.bytes;
        residentTokens_ -= it->second.tokens;
        entries_.erase(it);
        ++metrics_.hits;
        metrics_.hitTokens += h;
        return h;
    }
    it = entries_.find(kSharedKey);
    if (it != entries_.end()) {
        const std::int64_t h =
            std::min(it->second.tokens, r.inputLen - 1);
        it->second.lastUseTick = ++tick_;
        ++it->second.useCount;
        ++metrics_.hits;
        metrics_.hitTokens += h;
        return h;
    }
    ++metrics_.misses;
    return 0;
}

void
PrefixCachePool::install(const Request &r)
{
    if (!enabled() || r.sessionId < 0)
        return;
    const std::int64_t tokens = r.inputLen + r.generated;
    if (tokens <= 0 || tokens * bytesPerToken_ > spec_.budgetBytes)
        return;
    // Re-installing a live key replaces it; the stale prefix counts
    // as an eviction so the byte ledger stays closed.
    auto it = entries_.find(r.sessionId);
    if (it != entries_.end())
        evict(it);
    while (residentTokens_ * bytesPerToken_ +
               tokens * bytesPerToken_ >
           spec_.budgetBytes)
        evictOne();
    insert(r.sessionId, tokens);
}

void
PrefixCachePool::reclaim(std::int64_t tokens)
{
    if (!enabled())
        return;
    const std::int64_t target =
        std::max<std::int64_t>(residentTokens_ - tokens, 0);
    while (residentTokens_ > target && !entries_.empty())
        evictOne();
}

void
PrefixCachePool::flush()
{
    while (!entries_.empty())
        evict(entries_.begin());
}

void
PrefixCachePool::evictOne()
{
    panicIf(entries_.empty(),
            "PrefixCachePool::evictOne on an empty pool");
    std::vector<EvictionCandidate> candidates;
    candidates.reserve(entries_.size());
    for (const auto &[key, e] : entries_)
        candidates.push_back(
            {key, e.tokens, e.bytes, e.lastUseTick, e.useCount});
    const std::int64_t key = policy_->victim(candidates);
    auto it = entries_.find(key);
    panicIf(it == entries_.end(),
            "eviction policy returned an unknown key");
    evict(it);
}

void
PrefixCachePool::evict(std::map<std::int64_t, Entry>::iterator it)
{
    ++metrics_.evictions;
    metrics_.evictedBytes += it->second.bytes;
    metrics_.residentBytes -= it->second.bytes;
    residentTokens_ -= it->second.tokens;
    entries_.erase(it);
}

void
PrefixCachePool::insert(std::int64_t key, std::int64_t tokens)
{
    Entry e;
    e.tokens = tokens;
    e.bytes = tokens * bytesPerToken_;
    e.lastUseTick = ++tick_;
    e.useCount = 0;
    ++metrics_.installs;
    metrics_.installedBytes += e.bytes;
    metrics_.residentBytes += e.bytes;
    metrics_.peakResidentBytes = std::max(
        metrics_.peakResidentBytes, metrics_.residentBytes);
    residentTokens_ += tokens;
    entries_[key] = e;
}

} // namespace duplex
