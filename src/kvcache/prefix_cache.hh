/**
 * @file
 * KV prefix caching: the PrefixCachePool subsystem (PR 9).
 *
 * Production servers amortize conversational prefill by caching the
 * KV of prompt prefixes — the shared system prompt and each
 * session's accumulated history — and serving follow-up turns from
 * the cache, paying prefill only for the uncached suffix. This
 * directory models that mechanism for the simulator: a per-instance
 * PrefixCachePool tracks cached prefix KV per session (plus one
 * cross-session shared-prefix entry) against a configurable byte
 * budget, charged against the serving system's maxKvTokens headroom
 * so cache residency competes with live batches for the same HBM.
 *
 * The batcher (sched/batcher.hh) consults the pool at admission: a
 * hit pre-fills the request (`Request.prefilled` jumps to the hit
 * length, so the cost model and TTFT both see only the suffix) and
 * stamps `Request.cachedTokens` for the warm-vs-cold observers; a
 * miss pays full prefill. Retirement installs the session's full
 * context back into the pool. Session entries are CHECKED OUT on a
 * hit — the bytes move into the live batch (which charges the full
 * context) and return at retirement — so cached KV is never double
 * counted against the budget.
 *
 * Eviction is pluggable through a string-keyed registry mirroring
 * the system/workload/routing/scheduling registries ("lru", "lfu");
 * see the ROADMAP recipe for adding one. Everything is
 * deterministic: victims are chosen over key-sorted candidates with
 * a monotone logical tick for recency, no wall clock, no RNG — and
 * a disabled pool (budgetBytes == 0) leaves every existing run
 * byte-identical.
 */

#ifndef DUPLEX_KVCACHE_PREFIX_CACHE_HH
#define DUPLEX_KVCACHE_PREFIX_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/request.hh"

namespace duplex
{

/** Configures one PrefixCachePool; default-constructed = disabled. */
struct PrefixCacheSpec
{
    /** Cache budget in bytes; 0 (the default) disables the pool. */
    std::int64_t budgetBytes = 0;

    /** Eviction policy registry id ("lru", "lfu"). */
    std::string evictPolicy = "lru";

    /**
     * Cross-session shared system-prompt length; > 0 seeds the
     * pool with one always-warm candidate entry under the reserved
     * key kSharedKey (evictable like any other entry).
     */
    std::int64_t sharedPrefixTokens = 0;

    /** True when a pool should be built at all. */
    bool enabled() const { return budgetBytes > 0; }
};

/**
 * Counters a pool accumulates; aggregated across a fleet and
 * surfaced through SimResult/FleetResult. The byte ledger holds
 *   installedBytes == evictedBytes + acquiredBytes + residentBytes
 * at every step (pinned in tests/kvcache/test_prefix_cache.cc):
 * every installed byte is either still resident, was evicted, or
 * was checked out into a live batch by a session hit.
 */
struct PrefixCacheMetrics
{
    std::int64_t lookups = 0;   //!< admission-time probes
    std::int64_t hits = 0;      //!< probes served a prefix
    std::int64_t misses = 0;    //!< probes that paid full prefill
    std::int64_t hitTokens = 0; //!< prefill tokens served warm
    std::int64_t installs = 0;  //!< entries written
    std::int64_t evictions = 0; //!< entries evicted (incl. replace)
    std::int64_t installedBytes = 0;
    std::int64_t evictedBytes = 0;
    std::int64_t acquiredBytes = 0; //!< checked out by session hits
    std::int64_t residentBytes = 0; //!< in the pool right now
    std::int64_t peakResidentBytes = 0;

    double hitRate() const
    {
        return lookups > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
    }

    /** Fold another pool's counters in (fleet aggregation). */
    void merge(const PrefixCacheMetrics &other);
};

/** One cached prefix as an eviction policy sees it. */
struct EvictionCandidate
{
    std::int64_t key = 0;    //!< session id, or kSharedKey
    std::int64_t tokens = 0; //!< cached prefix length
    std::int64_t bytes = 0;  //!< budget charge
    std::int64_t lastUseTick = 0; //!< monotone logical recency
    std::int64_t useCount = 0;    //!< hits since install
};

/**
 * Picks the entry a full pool evicts next. Must be a pure function
 * of the (key-sorted, non-empty) candidate list — no RNG, no wall
 * clock — so cache runs stay byte-reproducible.
 */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    /** Key of the candidate to evict. */
    virtual std::int64_t
    victim(const std::vector<EvictionCandidate> &candidates) = 0;

    /** Registry id / display handle ("lru", ...). */
    virtual const std::string &name() const = 0;

    /** One-line description of the eviction rule. */
    virtual std::string describe() const = 0;
};

/** Builds one (stateful) policy instance per pool. */
using EvictionPolicyFactory =
    std::function<std::unique_ptr<EvictionPolicy>()>;

/**
 * Registry of every eviction policy a pool can use — the fifth
 * string-keyed axis beside systems, workloads, scheduling and
 * routing policies. Stock entries: "lru", "lfu".
 */
class EvictionPolicyRegistry
{
  public:
    /** The process-wide registry, with the stock policies loaded. */
    static EvictionPolicyRegistry &instance();

    /** Register a policy; re-registering an id is fatal. */
    void add(const std::string &id, const std::string &summary,
             EvictionPolicyFactory factory);

    /** True when @p id is registered. */
    bool contains(const std::string &id) const;

    /** Build a fresh policy instance; fatal on an unknown id. */
    std::unique_ptr<EvictionPolicy>
    make(const std::string &id) const;

    /**
     * Registered ids, lexicographically sorted — NOT registration
     * order (matches the other registries; keeps bench tables
     * byte-stable across standard libraries).
     */
    std::vector<std::string> ids() const;

    /** One-line summary for --list-evictions style output. */
    const std::string &summary(const std::string &id) const;

  private:
    struct Entry
    {
        std::string id;
        std::string summary;
        EvictionPolicyFactory factory;
    };

    std::vector<Entry> entries_;

    const Entry &find(const std::string &id) const;
};

/** Build a registered eviction policy (registry shorthand). */
std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(const std::string &id);

/** Ids of every registered eviction policy, sorted. */
std::vector<std::string> registeredEvictionPolicies();

/** Register an eviction policy with the process-wide registry. */
void registerEvictionPolicy(const std::string &id,
                            const std::string &summary,
                            EvictionPolicyFactory factory);

/**
 * Per-instance KV prefix cache. Keys are session ids; the reserved
 * kSharedKey holds the cross-session shared system prompt. The
 * batcher calls acquire() at admission and install() at retirement;
 * residentTokens() is the headroom charge and reclaim() frees bytes
 * when a live batch needs them (live work wins over cache).
 */
class PrefixCachePool
{
  public:
    /** Reserved key of the shared system-prompt entry. */
    static constexpr std::int64_t kSharedKey = -1;

    /**
     * @param spec           budget / policy / shared prefix
     * @param bytesPerToken  model KV bytes per cached token
     *                       (ModelConfig::kvBytesPerToken())
     */
    PrefixCachePool(const PrefixCacheSpec &spec,
                    std::int64_t bytesPerToken);

    bool enabled() const { return spec_.enabled(); }

    const PrefixCacheSpec &spec() const { return spec_; }

    /**
     * Admission-time probe for @p r. Returns the prefix tokens the
     * cache can serve (0 = cold), capped at inputLen - 1 so at
     * least one suffix token still runs through prefill. A
     * session-entry hit CHECKS the entry OUT (its bytes leave the
     * pool — the live batch carries them until retirement
     * re-installs); a shared-prefix hit only touches recency.
     * Requests without a session id never probe.
     */
    std::int64_t acquire(const Request &r);

    /**
     * Retirement install: caches @p r's full context
     * (inputLen + generated tokens) under its session id, evicting
     * by policy until it fits; an over-budget context is skipped.
     * No-op for session-less requests or a disabled pool.
     */
    void install(const Request &r);

    /** KV tokens resident — charged against maxKvTokens headroom. */
    std::int64_t residentTokens() const { return residentTokens_; }

    /**
     * Evict entries (by policy) until at least @p tokens of KV
     * headroom are freed or the pool is empty — the batcher's
     * live-work-wins pressure valve.
     */
    void reclaim(std::int64_t tokens);

    /**
     * Evict EVERY resident entry — the fleet crash path: the HBM
     * behind the cache is gone with the instance, so post-rejoin
     * lookups must all miss. Ledger-closed: flushed bytes count as
     * evictions (installedBytes == evictedBytes + acquiredBytes +
     * residentBytes still holds). Bytes checked out by session hits
     * stay checked out — the live requests carrying them were
     * evicted by the crash and never re-install.
     */
    void flush();

    /** Cached entries right now (tests / summaries). */
    std::size_t entryCount() const { return entries_.size(); }

    const PrefixCacheMetrics &metrics() const { return metrics_; }

  private:
    struct Entry
    {
        std::int64_t tokens = 0;
        std::int64_t bytes = 0;
        std::int64_t lastUseTick = 0;
        std::int64_t useCount = 0;
    };

    /** Evict the policy's victim; pool must be non-empty. */
    void evictOne();

    /** Remove @p it, crediting the byte ledger as an eviction. */
    void evict(std::map<std::int64_t, Entry>::iterator it);

    void insert(std::int64_t key, std::int64_t tokens);

    PrefixCacheSpec spec_;
    std::int64_t bytesPerToken_ = 0;
    std::unique_ptr<EvictionPolicy> policy_;

    /** key-sorted so eviction candidates enumerate deterministically. */
    std::map<std::int64_t, Entry> entries_;

    std::int64_t residentTokens_ = 0;
    std::int64_t tick_ = 0; //!< monotone logical clock for recency
    PrefixCacheMetrics metrics_;
};

} // namespace duplex

#endif // DUPLEX_KVCACHE_PREFIX_CACHE_HH
