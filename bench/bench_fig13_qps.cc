/**
 * @file
 * Fig. 13 reproduction: Mixtral latency under Poisson arrivals,
 * QPS 4-16, (Lin, Lout) = (4096, 512), max batch 128, for GPU,
 * Duplex (+PE+ET) and 2xGPU.
 */

#include "bench_util.hh"

using namespace duplex;

namespace
{

SimConfig
qpsConfig(const std::string &system, double qps)
{
    SimConfig c;
    c.systemName = system;
    c.model = mixtralConfig();
    c.maxBatch = 128;
    c.workload.meanInputLen = 4096;
    c.workload.meanOutputLen = 512;
    c.workload.qps = qps;
    c.numRequests = 96;
    c.warmupRequests = 8;
    c.maxStages = 60000;
    return c;
}

} // namespace

int
main()
{
    banner("Fig. 13: Mixtral under Poisson load, (4096, 512), max "
           "batch 128");
    Table t({"QPS", "System", "TBT p50 ms", "TBT p90 ms",
             "TBT p99 ms", "T2FT p50 ms", "E2E p50 ms"});
    const std::vector<double> qps_sweep = {4.0, 8.0, 12.0, 16.0};
    const std::vector<std::string> systems = {"gpu", "duplex-pe-et",
                                              "gpu-2x"};
    std::vector<SimConfig> configs;
    for (double qps : qps_sweep)
        for (const std::string &system : systems)
            configs.push_back(qpsConfig(system, qps));
    const std::vector<SimResult> results = runSweep(configs);

    std::size_t next = 0;
    for (double qps : qps_sweep) {
        for (const std::string &system : systems) {
            const SimResult &r = results[next++];
            t.startRow();
            t.cell(qps, 0);
            t.cell(systemLabel(system));
            latencyCells(t, r.metrics);
        }
    }
    t.print();
    std::printf("\nPaper shape: Duplex's median TBT always beats "
                "2xGPU; at high QPS 2xGPU wins the TBT tail "
                "(more mixed-stage compute); the GPU system "
                "saturates first, exploding T2FT, while Duplex "
                "sustains close to 2xGPU's load.\n");
    return 0;
}
