/**
 * @file
 * Fig. 16 reproduction: Duplex-Split (two prefill + two decode
 * devices, Splitwise-style) vs unified Duplex on Mixtral with a
 * batch size of 128 — plus an open-loop QPS sweep over the
 * disaggregated variants (symmetric, contended-link, asymmetric)
 * that the closed-loop figure cannot show.
 */

#include "bench_util.hh"

using namespace duplex;

namespace
{

/** Open-loop sweep: the split variants under Poisson arrivals. */
void
qpsSweep(const ModelConfig &model)
{
    banner("Fig. 16 extension: split variants under open-loop "
           "arrivals (Mixtral, Lin=Lout=1024)");
    const std::vector<double> qps_points = {2.0, 6.0, 12.0};
    const std::vector<std::string> systems = {
        "duplex-pe-et", "duplex-split", "duplex-split-contended",
        "duplex-split-2p6d", "duplex-split-6p2d"};

    std::vector<SimConfig> configs;
    for (double qps : qps_points) {
        for (const std::string &system : systems) {
            SimConfig c = latencyConfig(system, model, 64, 1024,
                                        1024, 96, 30000);
            c.workload.qps = qps;
            configs.push_back(c);
        }
    }
    const std::vector<SimResult> results = runSweep(configs);

    Table t({"QPS", "System", "tok/s", "TBT p50", "TBT p99",
             "T2FT p50", "E2E p50", "peak batch"});
    std::size_t next = 0;
    for (double qps : qps_points) {
        for (const std::string &system : systems) {
            const SimResult &r = results[next++];
            const LatencySummary s = summarizeLatency(r.metrics);
            t.startRow();
            t.cell(qps, 1);
            t.cell(system == "duplex-pe-et" ? "Duplex"
                                            : systemLabel(system));
            t.cell(r.metrics.throughputTokensPerSec(), 0);
            t.cell(s.tbtP50, 2);
            t.cell(s.tbtP99, 2);
            t.cell(s.t2ftP50, 1);
            t.cell(s.e2eP50, 1);
            t.cell(static_cast<std::int64_t>(r.peakBatch));
        }
    }
    t.print();
    std::printf("\nOpen loop: below saturation the split's clean "
                "decode stages win TBT; past it, prefill-group "
                "queueing and the contended KV link blow up "
                "T2FT.\n");
}

} // namespace

int
main()
{
    banner("Fig. 16: Duplex-Split vs Duplex (Mixtral, batch 128)");
    const ModelConfig model = mixtralConfig();

    Table t({"Lin=Lout", "System", "tok/s", "norm", "TBT p50",
             "TBT p99", "T2FT p50", "E2E p50", "peak batch"});
    const std::vector<std::int64_t> lengths = {256, 1024, 4096};
    const std::vector<std::string> systems = {"duplex-pe-et",
                                              "duplex-split"};
    std::vector<SimConfig> configs;
    for (std::int64_t len : lengths)
        for (const std::string &system : systems)
            configs.push_back(latencyConfig(system, model, 128, len,
                                            len, 256, 6000));
    const std::vector<SimResult> results = runSweep(configs);

    std::size_t next = 0;
    for (std::int64_t len : lengths) {
        SimResult dup;
        for (const std::string &system : systems) {
            const SimResult &r = results[next++];
            if (system == "duplex-pe-et")
                dup = r;
            const LatencySummary s = summarizeLatency(r.metrics);
            t.startRow();
            t.cell(len);
            t.cell(system == "duplex-pe-et" ? "Duplex"
                                            : systemLabel(system));
            t.cell(r.metrics.throughputTokensPerSec(), 0);
            t.cell(r.metrics.throughputTokensPerSec() /
                       dup.metrics.throughputTokensPerSec(),
                   3);
            t.cell(s.tbtP50, 2);
            t.cell(s.tbtP99, 2);
            t.cell(s.t2ftP50, 1);
            t.cell(s.e2eP50, 1);
            t.cell(static_cast<std::int64_t>(r.peakBatch));
        }
    }
    t.print();
    std::printf("\nPaper shape: the split system wins TBT tails "
                "(no mixed stages on decode nodes) but loses "
                "throughput to weight duplication (reduced KV "
                "batch, paper saw 128 -> 74) and prefill/decode "
                "underutilization.\n");

    qpsSweep(model);
    return 0;
}
