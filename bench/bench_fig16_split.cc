/**
 * @file
 * Fig. 16 reproduction: Duplex-Split (two prefill + two decode
 * devices, Splitwise-style) vs unified Duplex on Mixtral with a
 * batch size of 128.
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 16: Duplex-Split vs Duplex (Mixtral, batch 128)");
    const ModelConfig model = mixtralConfig();

    Table t({"Lin=Lout", "System", "tok/s", "norm", "TBT p50",
             "TBT p99", "T2FT p50", "E2E p50", "peak batch"});
    const std::vector<std::int64_t> lengths = {256, 1024, 4096};
    const std::vector<std::string> systems = {"duplex-pe-et",
                                              "duplex-split"};
    std::vector<SimConfig> configs;
    for (std::int64_t len : lengths)
        for (const std::string &system : systems)
            configs.push_back(latencyConfig(system, model, 128, len,
                                            len, 256, 6000));
    const std::vector<SimResult> results = runSweep(configs);

    std::size_t next = 0;
    for (std::int64_t len : lengths) {
        SimResult dup;
        for (const std::string &system : systems) {
            const SimResult &r = results[next++];
            if (system == "duplex-pe-et")
                dup = r;
            const LatencySummary s = summarizeLatency(r.metrics);
            t.startRow();
            t.cell(len);
            t.cell(system == "duplex-pe-et" ? "Duplex"
                                            : systemLabel(system));
            t.cell(r.metrics.throughputTokensPerSec(), 0);
            t.cell(r.metrics.throughputTokensPerSec() /
                       dup.metrics.throughputTokensPerSec(),
                   3);
            t.cell(s.tbtP50, 2);
            t.cell(s.tbtP99, 2);
            t.cell(s.t2ftP50, 1);
            t.cell(s.e2eP50, 1);
            t.cell(static_cast<std::int64_t>(r.peakBatch));
        }
    }
    t.print();
    std::printf("\nPaper shape: the split system wins TBT tails "
                "(no mixed stages on decode nodes) but loses "
                "throughput to weight duplication (reduced KV "
                "batch, paper saw 128 -> 74) and prefill/decode "
                "underutilization.\n");
    return 0;
}
