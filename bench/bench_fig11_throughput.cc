/**
 * @file
 * Fig. 11 reproduction: normalized serving throughput of GPU,
 * 2xGPU, Duplex, Duplex+PE and Duplex+PE+ET on Mixtral, GLaM and
 * Grok1 across (Lin, Lout) and batch sizes.
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 11: normalized throughput (tokens/s)");
    const std::vector<std::string> &systems = comparedSystems();

    Table t({"Model", "Batch", "Lin", "Lout", "GPU tok/s", "2xGPU",
             "Duplex", "+PE", "+PE+ET"});

    // Build the whole figure sweep up front (the same configs
    // bench_perf times), run it on the worker pool, then format
    // from the in-order results.
    struct Point
    {
        ModelConfig model;
        int batch;
        std::int64_t lin;
        std::int64_t lout;
    };
    std::vector<Point> points;
    for (const ModelConfig &model : fig11Models())
        for (int batch : kFig11Batches)
            for (const auto &[lin, lout] : lengthSweep(model))
                points.push_back({model, batch, lin, lout});
    const std::vector<SimResult> results =
        runSweep(fig11SweepConfigs());

    double max_gain = 0.0;
    std::size_t next = 0;
    for (const Point &p : points) {
        double gpu_thr = 0.0;
        std::vector<double> normalized;
        for (const std::string &system : systems) {
            const SimResult &r = results[next++];
            const double thr = r.metrics.throughputTokensPerSec();
            if (system == "gpu") {
                gpu_thr = thr;
                continue;
            }
            normalized.push_back(thr / gpu_thr);
        }
        max_gain = std::max(max_gain, normalized.back());
        t.startRow();
        t.cell(p.model.name);
        t.cell(static_cast<std::int64_t>(p.batch));
        t.cell(p.lin);
        t.cell(p.lout);
        t.cell(gpu_thr, 0);
        for (double n : normalized)
            t.cell(n, 2);
    }
    t.print();
    std::printf("\nMax Duplex+PE+ET gain over GPU: %.2fx "
                "(paper: up to 2.67x).\n"
                "Paper shape: Duplex beats GPU everywhere and "
                "often beats 2xGPU; +PE adds ~4%%; +ET is the "
                "larger step; Grok1 gains least "
                "(inter-node communication).\n",
                max_gain);
    return 0;
}
