/**
 * @file
 * Fig. 4(b) reproduction: roofline placement of the attention, FC
 * and MoE layers of Mixtral and GLaM on the GPU for batch sizes
 * 32-128 (Lin = 2048, Lout = 1024, decoding-only stage).
 *
 * The paper's observation: attention sits at Op/B ~ deggrp, MoE in
 * the low tens, both far below the GPU ridge point, yielding
 * single-digit compute utilization.
 */

#include "bench_util.hh"

#include "device/gpu.hh"
#include "workload/experts.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 4(b): GPU roofline, Lin = 2048, Lout = 1024");
    const HbmTiming timing = hbm3Timing();
    const EngineSpec gpu = h100Engine(timing, cachedCalibration());
    std::printf("GPU ridge point: %.0f Op/B, peak %.0f TFLOPS "
                "(eff. %.0f)\n",
                gpu.ridgeOpPerByte(), gpu.peakFlops / 1e12,
                gpu.effectiveFlops() / 1e12);

    Table t({"Model", "Batch", "Layer", "Op/B", "TFLOPS",
             "Util %"});
    for (const ModelConfig &model :
         {mixtralConfig(), glamConfig()}) {
        LayerCosts costs(model);
        for (int batch : {32, 64, 128}) {
            StageShape stage;
            for (int i = 0; i < batch; ++i)
                stage.decodeContexts.push_back(2048 + 512);

            // Attention (decode): per-request KV streams.
            const OpCost attn = costs.attentionDecode(stage);
            // FC: QKV + projection for the batched tokens.
            OpCost fc = costs.qkv(batch);
            fc += costs.projection(batch);
            // MoE: experts sampled with the uniform gate.
            Rng rng(7);
            ExpertSelector sel(model.numExperts, model.topK);
            const auto hist = sel.sample(rng, batch);
            OpCost moe;
            for (auto h : hist)
                moe += costs.expertFfn(h);

            for (const auto &[name, cost] :
                 std::vector<std::pair<std::string, OpCost>>{
                     {"Attention", attn},
                     {"FC", fc},
                     {"MoE", moe}}) {
                const PicoSec time = operatorTimeNoOverhead(
                    gpu, cost.flops, cost.bytes);
                const double tflops =
                    cost.flops / psToSec(time) / 1e12;
                t.startRow();
                t.cell(model.name);
                t.cell(static_cast<std::int64_t>(batch));
                t.cell(name);
                t.cell(cost.opPerByte(), 2);
                t.cell(tflops, 1);
                t.cell(100.0 * tflops * 1e12 / gpu.peakFlops, 2);
            }
        }
    }
    t.print();
    std::printf("\nPaper shape: attention Op/B ~ deggrp (4 for "
                "Mixtral GQA, 1 for GLaM MHA); MoE Op/B grows "
                "with batch but stays low; GPU utilization stays "
                "under ~11%% for MoE and ~2%% for attention.\n");
    return 0;
}
