/**
 * @file
 * Scheduling-policy bench: the batcher-policy x workload sweep —
 * what admission ordering, chunked prefill and class-aware
 * preemption (sched/policy.hh) buy under bursty and mixed-scenario
 * arrivals.
 *
 * Every cell is one SimulationEngine run of the gpu system under a
 * policy variant: plain fcfs (the pre-policy baseline), fcfs with
 * 256-token chunked prefill, ttft-protect (widened prefill cap
 * under backlog), and the priority policy with a quarter of the
 * stream stamped class 1. Prompts are long (Lin ~ 2048, plus the
 * mixed scenario's 8k summarize class) so whole-prompt prefills
 * visibly stall decodes — the regime chunking and burst protection
 * exist for. Cells are independent and run on the SweepRunner
 * worker pool.
 *
 * Output discipline (same as bench_fleet/bench_faults): the sweep
 * table goes to stdout for the CI determinism diff; wall-clock and
 * RSS go to stderr and, with --json=PATH, into the JSON the CI
 * perf job merges into the BENCH_perf gate
 * (policies.requests_per_sec floor; see tools/check_perf.py).
 *
 *   ./bench_policies                    # the full sweep
 *   ./bench_policies --requests=48      # quick smoke run
 *   ./bench_policies --json=BENCH_policies.json
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/argparse.hh"
#include "common/rss.hh"
#include "workload/registry.hh"

using namespace duplex;

namespace
{

constexpr int kBatch = 16;
constexpr double kOpenLoopQps = 6.0;

/** One batcher-policy configuration under test. */
struct PolicyVariant
{
    const char *label;       //!< table row label
    const char *sched;       //!< SchedulingPolicyRegistry id
    std::int64_t chunk;      //!< prefillChunkTokens (0 = off)
    double priorityFrac;     //!< fraction stamped class 1
};

constexpr PolicyVariant kVariants[] = {
    {"fcfs", "fcfs", 0, 0.0},
    {"fcfs+chunk256", "fcfs", 256, 0.0},
    {"ttft-protect+chunk", "ttft-protect", 256, 0.0},
    {"priority+chunk 25%", "priority", 256, 0.25},
};

const char *const kWorkloads[] = {"bursty", "mixed"};

/**
 * SloAttainment over one priority class only: the priority policy's
 * promise is that class-1 requests keep their SLO through a backlog
 * that sinks the aggregate, so the table splits them out.
 */
class ClassSloAttainment : public SloAttainment
{
  public:
    ClassSloAttainment(SloSpec slo, int priority_class)
        : SloAttainment(slo), class_(priority_class)
    {
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        if (request.priorityClass == class_)
            SloAttainment::onRequestRetired(request, now);
    }

  private:
    int class_;
};

/** The spec every cell shares; long prompts stress prefill. */
WorkloadSpec
policySpec()
{
    WorkloadSpec spec;
    spec.meanInputLen = 2048;
    spec.meanOutputLen = 64;
    spec.qps = kOpenLoopQps;
    spec.burstQps = 100.0;
    spec.idleQps = 0.1;
    spec.meanBurstSec = 0.4;
    spec.meanIdleSec = 8.0;
    return spec;
}

SimConfig
cellConfig(const PolicyVariant &variant,
           const std::string &workload, int requests)
{
    SimConfig c;
    c.systemName = "gpu";
    c.model = mixtralConfig();
    c.workloadName = workload;
    c.workload = policySpec();
    c.workload.priorityFrac = variant.priorityFrac;
    c.maxBatch = kBatch;
    c.numRequests = requests;
    c.warmupRequests = defaultWarmupRequests(kBatch);
    // Runaway backstop, not the run's end: attainment numbers only
    // mean something if the stream drains.
    c.maxStages = 2000000;
    c.schedPolicy = variant.sched;
    c.prefillChunkTokens = variant.chunk;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("requests", "requests per cell", "96");
    args.addFlag("tbt-slo", "TBT SLO in ms", "40");
    args.addFlag("ttft-slo", "TTFT SLO in ms", "1500");
    args.addFlag("json",
                 "write policy-bench perf metrics to this file", "");
    args.parse(argc, argv);

    const int requests = static_cast<int>(args.getInt("requests"));
    const SloSpec slo{args.getDouble("ttft-slo"),
                      args.getDouble("tbt-slo")};

    banner("Scheduling policies: admission x chunking x priority");
    std::printf("gpu system, batch %d, Lin ~ 2048, Lout ~ 64, "
                "%d request(s)/cell, open loop (bursty 12/1 qps; "
                "mixed at %.0f qps), TTFT < %.0f ms, "
                "TBT < %.0f ms\n",
                kBatch, requests, kOpenLoopQps, slo.t2ftMs,
                slo.tbtMs);

    std::vector<SimConfig> configs;
    for (const char *workload : kWorkloads)
        for (const PolicyVariant &variant : kVariants)
            configs.push_back(
                cellConfig(variant, workload, requests));

    const ObserverFactory factory = [slo](const SimConfig &) {
        std::vector<std::unique_ptr<SimObserver>> obs;
        obs.push_back(std::make_unique<SloAttainment>(slo));
        obs.push_back(
            std::make_unique<ClassSloAttainment>(slo, 1));
        return obs;
    };
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<ObservedRun> runs =
        SweepRunner().runObserved(configs, factory);
    const double wall_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // ---- deterministic sweep table (stdout, diffed by CI) ------
    Table t({"Workload", "Policy", "tokens/s", "TTFT p50 ms",
             "TTFT att", "TBT att", "req att", "hi att",
             "goodput/s", "preempt"});
    std::int64_t total_retired = 0;
    std::size_t next = 0;
    for (const char *workload : kWorkloads) {
        for (const PolicyVariant &variant : kVariants) {
            const ObservedRun &run = runs[next++];
            const SimResult &r = run.result;
            const auto *attainment =
                dynamic_cast<const SloAttainment *>(
                    run.observers[0].get());
            const auto *high_class =
                dynamic_cast<const ClassSloAttainment *>(
                    run.observers[1].get());
            total_retired += attainment->totalRequests();
            t.startRow();
            t.cell(WorkloadRegistry::instance().displayName(
                workload));
            t.cell(variant.label);
            t.cell(r.metrics.throughputTokensPerSec(), 0);
            t.cell(r.metrics.t2ftMs.percentile(50), 1);
            t.cell(attainment->t2ftAttainment(), 2);
            t.cell(attainment->tbtAttainment(), 2);
            t.cell(attainment->attainment(), 2);
            if (high_class->totalRequests() > 0)
                t.cell(high_class->attainment(), 2);
            else
                t.cell("-");
            t.cell(attainment->goodputTokensPerSec(), 0);
            t.cell(static_cast<double>(r.preemptions), 0);
        }
    }
    t.print();
    std::printf("fcfs is the pre-policy baseline; 'hi att' is SLO "
                "attainment over class-1 requests only (priority "
                "rows stamp 25%% of the stream class 1). Chunking "
                "bounds per-stage prefill tokens so decodes keep "
                "their cadence; priority preemptions restart "
                "evicted low-class decodes from prefill.\n");

    // ---- perf numbers (stderr + JSON; never in the diffed out) -
    const double rss_mb = peakRssMb();
    const double req_per_sec =
        wall_sec > 0.0 ? total_retired / wall_sec : 0.0;
    std::fprintf(stderr,
                 "policy sweep: %zu run(s), %lld requests retired, "
                 "%.2f s wall, %.0f requests/s, peak RSS %.1f MB\n",
                 configs.size(),
                 static_cast<long long>(total_retired), wall_sec,
                 req_per_sec, rss_mb);

    const std::string json_path = args.getString("json");
    if (!json_path.empty()) {
        std::FILE *json = std::fopen(json_path.c_str(), "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(json,
                     "{\n"
                     "  \"schema\": 1,\n"
                     "  \"policies\": {\n"
                     "    \"runs\": %zu,\n"
                     "    \"requests_retired\": %lld,\n"
                     "    \"wall_sec\": %.3f,\n"
                     "    \"requests_per_sec\": %.3f,\n"
                     "    \"peak_rss_mb\": %.3f\n"
                     "  }\n"
                     "}\n",
                     configs.size(),
                     static_cast<long long>(total_retired),
                     wall_sec, req_per_sec, rss_mb);
        std::fclose(json);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
