/**
 * @file
 * Fleet bench: the routing-policy x fleet-size sweep, judged by
 * SLO attainment and goodput — which policy keeps a fleet of
 * identical instances inside its latency budget, and how that
 * changes as the fleet grows under a fixed per-instance offered
 * load.
 *
 * Every cell is one FleetDriver run (fleet/fleet.hh): N gpu
 * instances behind the policy, one shared open-loop stream at
 * qps-per-instance x N. Cells are independent, so the sweep runs
 * on the SweepRunner worker pool via runTasks() — the generic
 * primitive under the figure benches' runSweep().
 *
 * Output discipline (same as bench_longrun): everything
 * deterministic (the policy table) goes to stdout — the CI
 * determinism job can diff two runs byte-for-byte. Wall-clock and
 * RSS go to stderr and, with --json=PATH, into a JSON file the CI
 * perf job merges into the BENCH_perf gate
 * (fleet.requests_per_sec floor; see tools/check_perf.py).
 *
 *   ./bench_fleet                       # the full sweep
 *   ./bench_fleet --requests=32         # quick smoke run
 *   ./bench_fleet --json=BENCH_fleet.json
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/argparse.hh"
#include "common/rss.hh"
#include "fleet/fleet.hh"

using namespace duplex;

namespace
{

constexpr int kFleetSizes[] = {2, 4};
constexpr double kQpsPerInstance = 4.0;

/** One sweep cell: a policy on a fleet size, with its outcome. */
struct FleetCell
{
    std::string policy;
    int size = 0;

    FleetResult result;
    double attainment = 0.0;
    double goodput = 0.0;
};

FleetConfig
cellConfig(const FleetCell &cell, int requests_per_instance)
{
    FleetConfig fc;
    fc.sim.systemName = "gpu";
    fc.sim.model = mixtralConfig();
    fc.sim.maxBatch = 16;
    fc.sim.workload.meanInputLen = 256;
    fc.sim.workload.meanOutputLen = 64;
    fc.sim.workload.qps = kQpsPerInstance * cell.size;
    // Sessions give session-affinity something to pin; the other
    // policies ignore the tag, so every cell streams the same
    // requests.
    fc.sim.workload.numSessions = 4 * cell.size;
    fc.sim.numRequests = requests_per_instance * cell.size;
    fc.sim.warmupRequests =
        defaultWarmupRequests(fc.sim.maxBatch) / cell.size;
    // The requests/s number only means something if every request
    // retires; the cap is a runaway backstop, not the run's end.
    fc.sim.maxStages = 2000000;
    fc.instances = cell.size;
    fc.policy = cell.policy;
    return fc;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("requests", "requests per instance", "192");
    args.addFlag("tbt-slo", "TBT SLO in ms", "40");
    args.addFlag("ttft-slo", "TTFT SLO in ms", "1500");
    args.addFlag("json",
                 "write fleet perf metrics to this file", "");
    args.parse(argc, argv);

    const int requests_per_instance =
        static_cast<int>(args.getInt("requests"));
    const SloSpec slo{args.getDouble("ttft-slo"),
                      args.getDouble("tbt-slo")};

    banner("Fleet routing policies: SLO attainment x fleet size");
    std::printf("gpu instances, Lin 256, Lout 64, open loop at "
                "%.0f qps/instance, %d request(s)/instance, "
                "TTFT < %.0f ms, TBT < %.0f ms\n",
                kQpsPerInstance, requests_per_instance, slo.t2ftMs,
                slo.tbtMs);

    // The full policy x size cross, every cell an independent
    // FleetDriver run on the worker pool.
    std::vector<FleetCell> cells;
    for (const std::string &policy : registeredRoutingPolicies())
        for (int size : kFleetSizes)
            cells.push_back({policy, size, {}, 0.0, 0.0});

    std::vector<std::function<void()>> tasks;
    tasks.reserve(cells.size());
    for (FleetCell &cell : cells)
        tasks.push_back([&cell, requests_per_instance, slo] {
            FleetDriver driver(
                cellConfig(cell, requests_per_instance));
            FleetSloAttainment attainment(slo);
            driver.addObserver(&attainment);
            cell.result = driver.run();
            cell.attainment = attainment.attainment().attainment();
            cell.goodput =
                attainment.attainment().goodputTokensPerSec();
        });

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner().runTasks(tasks);
    const double wall_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // ---- deterministic sweep table (stdout, diffed by CI) ------
    Table t({"Policy", "Fleet", "tokens/s", "TBT p50 ms",
             "TBT p99 ms", "SLO att", "goodput/s", "retired"});
    std::int64_t total_retired = 0;
    for (const FleetCell &cell : cells) {
        total_retired += cell.result.requestsRetired;
        t.startRow();
        t.cell(cell.policy);
        t.cell(static_cast<double>(cell.size), 0);
        t.cell(cell.result.metrics.throughputTokensPerSec(), 0);
        t.cell(cell.result.metrics.tbtMs.percentile(50), 2);
        t.cell(cell.result.metrics.tbtMs.percentile(99), 2);
        t.cell(cell.attainment, 3);
        t.cell(cell.goodput, 0);
        t.cell(static_cast<double>(cell.result.requestsRetired), 0);
    }
    t.print();
    std::printf("Attainment covers every retired request; "
                "tokens/s and TBT are post-warm-up.\n");

    // ---- perf numbers (stderr + JSON; never in the diffed out) -
    const double rss_mb = peakRssMb();
    const double req_per_sec =
        wall_sec > 0.0 ? total_retired / wall_sec : 0.0;
    std::fprintf(stderr,
                 "fleet sweep: %zu run(s), %lld requests retired, "
                 "%.2f s wall, %.0f requests/s, peak RSS %.1f MB\n",
                 cells.size(),
                 static_cast<long long>(total_retired), wall_sec,
                 req_per_sec, rss_mb);

    const std::string json_path = args.getString("json");
    if (!json_path.empty()) {
        std::FILE *json = std::fopen(json_path.c_str(), "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(json,
                     "{\n"
                     "  \"schema\": 1,\n"
                     "  \"fleet\": {\n"
                     "    \"runs\": %zu,\n"
                     "    \"requests_retired\": %lld,\n"
                     "    \"wall_sec\": %.3f,\n"
                     "    \"requests_per_sec\": %.3f,\n"
                     "    \"peak_rss_mb\": %.3f\n"
                     "  }\n"
                     "}\n",
                     cells.size(),
                     static_cast<long long>(total_retired),
                     wall_sec, req_per_sec, rss_mb);
        std::fclose(json);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
