/**
 * @file
 * Fig. 8 reproduction: normalized energy-delay-area product of
 * Bank-PIM, BankGroup-PIM and Logic-PIM for an FP16 GEMM with a
 * (16384 x 4096) weight matrix, sweeping Op/B (= token count m)
 * from 1 to 32.
 */

#include "bench_util.hh"

#include "device/pim.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 8: normalized EDAP by GEMM Op/B (weight 16384 x "
           "4096)");
    const HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    const AreaModel area;
    const EnergyModel energy;

    const std::vector<PimVariant> variants = {
        PimVariant::BankPim, PimVariant::BankGroupPim,
        PimVariant::LogicPim};

    Table t({"Op/B", "Bank-PIM", "BankGroup-PIM", "Logic-PIM",
             "best"});
    for (std::int64_t m : {1, 2, 4, 8, 16, 32}) {
        std::vector<EdapResult> results;
        for (PimVariant v : variants) {
            const PimEngineDesc desc =
                pimVariantDesc(v, timing, cal, area);
            results.push_back(
                evaluateEdap(desc, GemmShape{m, 16384, 4096},
                             energy));
        }
        const auto norm = normalizeEdap(results);
        std::size_t best = 0;
        for (std::size_t i = 1; i < norm.size(); ++i)
            if (norm[i] < norm[best])
                best = i;
        t.startRow();
        t.cell(m);
        t.cell(norm[0], 2);
        t.cell(norm[1], 2);
        t.cell(norm[2], 2);
        t.cell(pimVariantName(variants[best]));
    }
    t.print();
    std::printf("\nPaper values (Fig. 8):\n"
                "  Op/B  1: Bank 0.08, BG 1.00, Logic 0.66\n"
                "  Op/B  8: Bank 0.81, BG 1.00, Logic 0.65\n"
                "  Op/B 32: Bank 1.00, BG 0.67, Logic 0.40\n"
                "Shape to match: Bank-PIM wins at low Op/B, "
                "Logic-PIM takes over around Op/B 8-16, "
                "BankGroup-PIM never wins (DRAM-die area).\n");
    return 0;
}
