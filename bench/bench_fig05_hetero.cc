/**
 * @file
 * Fig. 5 reproduction: (a) decoding-only vs mixed stage ratio,
 * (b) hetero-system latency vs the 4-GPU baseline, (c) hetero
 * throughput with its capacity-limited batch.
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    const ModelConfig model = mixtralConfig();

    banner("Fig. 5(a): stage-type ratio (Mixtral, GPU system)");
    {
        Table t({"Batch", "Lin", "Lout", "decode-only", "mixed",
                 "ratio"});
        for (int batch : {32, 64, 128}) {
            for (const auto &[lin, lout] :
                 std::vector<std::pair<std::int64_t, std::int64_t>>{
                     {256, 256}, {256, 2048}, {2048, 2048}}) {
                const SimResult r = runThroughput(
                    "gpu", model, batch, lin, lout, 1500);
                t.startRow();
                t.cell(static_cast<std::int64_t>(batch));
                t.cell(lin);
                t.cell(lout);
                t.cell(r.metrics.decodingOnlyStages);
                t.cell(r.metrics.mixedStages);
                t.cell(r.metrics.decodingOnlyRatio(), 3);
            }
        }
        t.print();
        std::printf("Paper shape: decoding-only stages dominate "
                    "everywhere.\n");
    }

    banner("Fig. 5(b): hetero (2 GPU + 2 Logic-PIM) vs 4-GPU "
           "latency, batch 32");
    {
        Table t({"Lin", "Lout", "System", "TBT p50", "TBT p90",
                 "TBT p99", "T2FT p50", "E2E p50"});
        for (const auto &[lin, lout] :
             std::vector<std::pair<std::int64_t, std::int64_t>>{
                 {256, 256}, {2048, 256}, {2048, 2048}}) {
            SimResult gpu = runLatency("gpu", model, 32, lin,
                                       lout, 96, 8000);
            SimResult het = runLatency("hetero", model, 32, lin,
                                       lout, 96, 8000);
            for (const auto &[name, r] :
                 std::vector<std::pair<std::string, SimResult *>>{
                     {"GPU", &gpu}, {"Hetero", &het}}) {
                t.startRow();
                t.cell(lin);
                t.cell(lout);
                t.cell(name);
                latencyCells(t, r->metrics);
            }
        }
        t.print();
        std::printf("Paper shape: hetero improves median TBT but "
                    "tail TBT / T2FT blow up as Lin grows (weak "
                    "PIM compute in mixed stages).\n");
    }

    banner("Fig. 5(c): hetero throughput, batch 128 (capacity "
           "limited)");
    {
        Table t({"Lin", "Lout", "GPU tok/s", "Hetero tok/s",
                 "normalized", "GPU batch", "Hetero batch"});
        for (const auto &[lin, lout] :
             std::vector<std::pair<std::int64_t, std::int64_t>>{
                 {2048, 2048}, {4096, 4096}, {8192, 4096}}) {
            const SimResult gpu = runThroughput(
                "gpu", model, 128, lin, lout, 400);
            const SimResult het = runThroughput(
                "hetero", model, 128, lin, lout, 400);
            t.startRow();
            t.cell(lin);
            t.cell(lout);
            t.cell(gpu.metrics.throughputTokensPerSec(), 0);
            t.cell(het.metrics.throughputTokensPerSec(), 0);
            t.cell(het.metrics.throughputTokensPerSec() /
                       gpu.metrics.throughputTokensPerSec(),
                   3);
            t.cell(static_cast<std::int64_t>(gpu.peakBatch));
            t.cell(static_cast<std::int64_t>(het.peakBatch));
        }
        t.print();
        std::printf("Paper shape: the hetero system's KV capacity "
                    "shrinks the admitted batch at long "
                    "sequences, hurting throughput.\n");
    }
    return 0;
}
