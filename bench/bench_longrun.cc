/**
 * @file
 * Long-run driver-loop gate: a million-request open-loop campaign
 * that measures what the figures never stress — the scheduling
 * loop's own throughput (requests/s of wall-clock) and its memory
 * footprint (peak RSS) at Mixtral scale.
 *
 * The run uses MetricsMode::Bounded by default: retired requests
 * are drained and dropped every stage and latency lands in
 * fixed-bin histograms, so peak RSS stays flat in the request
 * count. --metrics=retained runs the legacy keep-every-request
 * path in a separate invocation for contrast (RSS is a
 * process-wide peak, so the two modes cannot share a process).
 *
 * Output discipline: everything deterministic (request/token
 * counts, simulated time, approximate percentiles) goes to stdout
 * — the CI determinism job diffs two runs byte-for-byte. Timing
 * and RSS go to stderr and, with --json=PATH, into a JSON file the
 * CI perf job merges into the BENCH_perf gate
 * (driver_loop.requests_per_sec floor, driver_loop.peak_rss_mb
 * ceiling; see tools/check_perf.py).
 *
 *   ./bench_longrun                        # the 1M-request gate
 *   ./bench_longrun --requests=50000       # determinism-job size
 *   ./bench_longrun --metrics=retained     # RSS contrast run
 *   ./bench_longrun --json=BENCH_longrun.json
 */

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "common/argparse.hh"
#include "common/rss.hh"
#include "sim/engine.hh"
#include "sim/registry.hh"

using namespace duplex;

namespace
{

/** Counts stages and retirements without retaining anything. */
class DriverCounters : public SimObserver
{
  public:
    std::int64_t stages = 0;
    std::int64_t retired = 0;

    void onStage(const StageObservation &obs) override
    {
        (void)obs;
        ++stages;
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        (void)request;
        (void)now;
        ++retired;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("requests", "requests to stream", "1000000");
    args.addFlag("system", "registered system id", "gpu");
    args.addFlag("batch", "stage-level batch size", "256");
    args.addFlag("lin", "mean prompt length", "256");
    args.addFlag("lout", "mean generation length", "64");
    args.addFlag("qps",
                 "open-loop arrival rate (default sits just under "
                 "the gpu system's ~250 req/s service rate so the "
                 "queue stays stationary over a million requests)",
                 "200");
    args.addFlag("metrics",
                 "bounded | streaming | retained (see "
                 "sched/metrics.hh; bounded keeps RSS flat)",
                 "bounded");
    args.addFlag("json",
                 "write driver_loop perf metrics to this file",
                 "");
    args.parse(argc, argv);

    const int requests = static_cast<int>(args.getInt("requests"));
    const std::string metrics_mode = args.getString("metrics");

    SimConfig c;
    c.systemName = args.getString("system");
    c.model = mixtralConfig();
    c.maxBatch = static_cast<int>(args.getInt("batch"));
    c.workload.meanInputLen = args.getInt("lin");
    c.workload.meanOutputLen = args.getInt("lout");
    c.workload.qps = args.getDouble("qps");
    c.numRequests = requests;
    c.warmupRequests = defaultWarmupRequests(c.maxBatch);
    // Never the stage cap that ends the run: every request must
    // retire for the requests/s number to mean anything.
    c.maxStages = std::numeric_limits<std::int64_t>::max();
    if (metrics_mode == "bounded") {
        c.metricsMode = MetricsMode::Bounded;
        // One-millisecond bins over a minute: tight enough for
        // decode-cadence TBT, wide enough for queueing-inflated
        // T2FT/E2E under a stationary queue. ~0.5 MB per
        // histogram — O(1) in the request count.
        c.boundedLatency = {60000.0, 60000};
    } else if (metrics_mode == "streaming") {
        c.metricsMode = MetricsMode::Streaming;
    } else if (metrics_mode == "retained") {
        c.metricsMode = MetricsMode::Retained;
    } else {
        std::fprintf(stderr, "unknown --metrics=%s\n",
                     metrics_mode.c_str());
        return 1;
    }

    std::printf("=== Long-run driver gate: %d requests, open loop "
                "(qps %.0f), %s metrics ===\n",
                requests, c.workload.qps, metrics_mode.c_str());
    std::printf("system %s, batch %d, Lin %lld, Lout %lld\n",
                c.systemName.c_str(), c.maxBatch,
                static_cast<long long>(c.workload.meanInputLen),
                static_cast<long long>(c.workload.meanOutputLen));

    SimulationEngine engine(c);
    DriverCounters counters;
    engine.addObserver(&counters);

    const auto t0 = std::chrono::steady_clock::now();
    const SimResult r = engine.run();
    const double wall_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // ---- deterministic summary (stdout, diffed by CI) ----------
    std::printf("requests retired: %lld, tokens: %lld, stages: "
                "%lld, peak batch %d\n",
                static_cast<long long>(counters.retired),
                static_cast<long long>(r.generatedTokens),
                static_cast<long long>(counters.stages),
                r.peakBatch);
    std::printf("simulated: %.3f s, %.0f tokens/s (post-warm-up "
                "window)\n",
                psToSec(r.metrics.elapsed),
                r.metrics.throughputTokensPerSec());
    if (r.boundedLatency != nullptr) {
        const BoundedLatencyMetrics &h = *r.boundedLatency;
        std::printf("TBT p50/p99 ~ %.2f / %.2f ms, T2FT p50 ~ "
                    "%.1f ms, E2E p50 ~ %.1f ms, worst-gap p99 ~ "
                    "%.2f ms (fixed-bin approx)\n",
                    h.tbtMs.percentile(50), h.tbtMs.percentile(99),
                    h.t2ftMs.percentile(50),
                    h.e2eMs.percentile(50),
                    h.worstGapMs.percentile(99));
    } else {
        std::printf("TBT p50/p99 = %.3f / %.3f ms, T2FT p50 = "
                    "%.1f ms, E2E p50 = %.1f ms (exact)\n",
                    r.metrics.tbtMs.percentile(50),
                    r.metrics.tbtMs.percentile(99),
                    r.metrics.t2ftMs.percentile(50),
                    r.metrics.e2eMs.percentile(50));
    }

    // ---- perf numbers (stderr + JSON; never in the diffed out) -
    const double rss_mb = peakRssMb();
    const double req_per_sec =
        wall_sec > 0.0 ? counters.retired / wall_sec : 0.0;
    const double stages_per_sec =
        wall_sec > 0.0 ? counters.stages / wall_sec : 0.0;
    std::fprintf(stderr,
                 "driver loop: %.2f s wall, %.0f requests/s, %.0f "
                 "stages/s, peak RSS %.1f MB\n",
                 wall_sec, req_per_sec, stages_per_sec, rss_mb);

    const std::string json_path = args.getString("json");
    if (!json_path.empty()) {
        std::FILE *json = std::fopen(json_path.c_str(), "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(json,
                     "{\n"
                     "  \"schema\": 1,\n"
                     "  \"driver_loop\": {\n"
                     "    \"requests\": %d,\n"
                     "    \"metrics_mode\": \"%s\",\n"
                     "    \"wall_sec\": %.3f,\n"
                     "    \"requests_per_sec\": %.3f,\n"
                     "    \"stages_per_sec\": %.3f,\n"
                     "    \"peak_rss_mb\": %.3f\n"
                     "  }\n"
                     "}\n",
                     requests, metrics_mode.c_str(), wall_sec,
                     req_per_sec, stages_per_sec, rss_mb);
        std::fclose(json);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
