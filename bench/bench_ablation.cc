/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *  1. engine-selection policy (always-xPU / always-PIM / Op-B
 *     driven selection / + co-processing),
 *  2. the TSV bandwidth multiplier behind Logic-PIM (2x/4x/8x),
 *  3. expert-skew sensitivity of co-processing (Section VIII-B).
 */

#include "bench_util.hh"

#include "cluster/cluster.hh"
#include "core/duplex_device.hh"

using namespace duplex;

namespace
{

StageShape
decodeStage(int batch, std::int64_t ctx)
{
    StageShape s;
    for (int i = 0; i < batch; ++i)
        s.decodeContexts.push_back(ctx);
    return s;
}

void
enginePolicyAblation()
{
    banner("Ablation 1: engine policy (Mixtral decode stage, "
           "batch 64, ctx 2048)");
    const ModelConfig model = mixtralConfig();
    const StageShape stage = decodeStage(64, 2048);

    Table t({"Policy", "stage ms", "vs always-xPU"});
    double base_ms = 0.0;

    // Always-xPU == the plain GPU device.
    {
        ClusterConfig cfg =
            makeClusterConfig("gpu", model);
        Cluster c(cfg);
        base_ms = psToMs(c.executeStage(stage).time);
        t.startRow();
        t.cell("always-xPU (GPU)");
        t.cell(base_ms, 2);
        t.cell(1.0, 2);
    }
    // Always-PIM: Logic-PIM engine forced for every selectable op
    // (xPU kept only for FC, which has no PIM option in the
    // paper either). Modeled by a Duplex whose xPU is made
    // unattractive for attention/MoE via a huge dispatch cost.
    {
        ClusterConfig cfg =
            makeClusterConfig("duplex", model);
        // A huge xPU dispatch cost forces every selectable group
        // (attention, MoE) onto the Logic-PIM engine.
        cfg.deviceSpec.xpu.dispatchOverhead = 50 * kPsPerMs;
        Cluster c(cfg);
        const double ms = psToMs(c.executeStage(stage).time);
        t.startRow();
        t.cell("always-PIM (forced)");
        t.cell(ms, 2);
        t.cell(ms / base_ms, 2);
    }
    // Op/B-driven selection (base Duplex).
    {
        Cluster c(makeClusterConfig("duplex", model));
        const double ms = psToMs(c.executeStage(stage).time);
        t.startRow();
        t.cell("Op/B selection (Duplex)");
        t.cell(ms, 2);
        t.cell(ms / base_ms, 2);
    }
    // Selection + co-processing + expert tensor parallelism.
    {
        Cluster c(makeClusterConfig("duplex-pe-et", model));
        const double ms = psToMs(c.executeStage(stage).time);
        t.startRow();
        t.cell("+PE+ET");
        t.cell(ms, 2);
        t.cell(ms / base_ms, 2);
    }
    t.print();
}

void
tsvMultiplierAblation()
{
    banner("Ablation 2: Logic-PIM bandwidth multiplier (Mixtral "
           "decode stage, batch 64)");
    const ModelConfig model = mixtralConfig();
    const StageShape stage = decodeStage(64, 2048);

    Table t({"TSV multiplier", "PIM GB/s per stack", "stage ms"});
    for (double mult : {2.0, 4.0, 8.0}) {
        ClusterConfig cfg =
            makeClusterConfig("duplex-pe-et", model);
        // The calibrated spec is built for 4x; rescale.
        cfg.deviceSpec.low.memBps *= mult / 4.0;
        // Compute-to-bandwidth ratio of 8 Op/B is kept fixed.
        cfg.deviceSpec.low.peakFlops *= mult / 4.0;
        Cluster c(cfg);
        t.startRow();
        t.cell(formatDouble(mult, 0) + "x");
        t.cell(cfg.deviceSpec.low.memBps / 5.0 / 1e9, 0);
        t.cell(psToMs(c.executeStage(stage).time), 2);
    }
    t.print();
    std::printf("Paper context: 4x is what the 22 um TSV pitch "
                "affords at 9%% area overhead.\n");
}

void
expertSkewAblation()
{
    banner("Ablation 3: expert skew vs co-processing benefit "
           "(Mixtral, batch 64)");
    const ModelConfig model = mixtralConfig();
    Table t({"Gate", "Duplex ms", "+PE+ET ms", "speedup"});
    for (const auto &[name, policy, s] :
         std::vector<std::tuple<std::string, GatePolicy, double>>{
             {"uniform", GatePolicy::Uniform, 0.0},
             {"zipf s=0.8", GatePolicy::Zipf, 0.8},
             {"zipf s=1.5", GatePolicy::Zipf, 1.5}}) {
        ClusterConfig base =
            makeClusterConfig("duplex", model);
        base.gatePolicy = policy;
        base.zipfS = s;
        ClusterConfig co =
            makeClusterConfig("duplex-pe-et", model);
        co.gatePolicy = policy;
        co.zipfS = s;
        Cluster cb(base);
        Cluster cc(co);
        const StageShape stage = decodeStage(64, 2048);
        // Average over several stages (expert draws vary).
        double tb = 0.0;
        double tc = 0.0;
        for (int i = 0; i < 16; ++i) {
            tb += psToMs(cb.executeStage(stage).time);
            tc += psToMs(cc.executeStage(stage).time);
        }
        t.startRow();
        t.cell(name);
        t.cell(tb / 16.0, 2);
        t.cell(tc / 16.0, 2);
        t.cell(tb / tc, 3);
    }
    t.print();
    std::printf("Paper context (Section VIII-B): skewed gates "
                "(hot/cold experts) give expert co-processing "
                "more to exploit than perfectly balanced ones.\n");
}

} // namespace

int
main()
{
    enginePolicyAblation();
    tsvMultiplierAblation();
    expertSkewAblation();
    return 0;
}
