/**
 * @file
 * Fig. 12 reproduction: GLaM latency (TBT p50/p90/p99, T2FT p50,
 * E2E p50) for (Lin, Lout) from (512, 512) to (2048, 2048) with a
 * batch size of 64, normalized to the GPU system.
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 12: GLaM latency, batch 64 (normalized to GPU)");
    const ModelConfig model = glamConfig();
    const std::vector<SystemKind> systems = {
        SystemKind::Gpu, SystemKind::Gpu2x, SystemKind::Duplex,
        SystemKind::DuplexPE, SystemKind::DuplexPEET};

    Table t({"Lin=Lout", "System", "TBT p50", "TBT p90", "TBT p99",
             "T2FT p50", "E2E p50"});
    for (std::int64_t len : {512, 1024, 2048}) {
        SimResult gpu;
        for (SystemKind kind : systems) {
            const SimResult r = runLatency(kind, model, 64, len,
                                           len, 160, 8000);
            if (kind == SystemKind::Gpu)
                gpu = r;
            auto norm = [&](double v, double base) {
                return base > 0.0 ? v / base : 0.0;
            };
            t.startRow();
            t.cell(len);
            t.cell(systemName(kind));
            t.cell(norm(r.metrics.tbtMs.percentile(50),
                        gpu.metrics.tbtMs.percentile(50)),
                   3);
            t.cell(norm(r.metrics.tbtMs.percentile(90),
                        gpu.metrics.tbtMs.percentile(90)),
                   3);
            t.cell(norm(r.metrics.tbtMs.percentile(99),
                        gpu.metrics.tbtMs.percentile(99)),
                   3);
            t.cell(norm(r.metrics.t2ftMs.percentile(50),
                        gpu.metrics.t2ftMs.percentile(50)),
                   3);
            t.cell(norm(r.metrics.e2eMs.percentile(50),
                        gpu.metrics.e2eMs.percentile(50)),
                   3);
        }
    }
    t.print();
    std::printf("\nPaper shape: Duplex cuts median TBT ~58%% vs "
                "GPU and beats 2xGPU at p50; tails and T2FT need "
                "+PE+ET to approach 2xGPU; E2E drops ~60%% vs "
                "GPU.\n");
    return 0;
}
