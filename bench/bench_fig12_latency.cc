/**
 * @file
 * Fig. 12 reproduction: GLaM latency (TBT p50/p90/p99, T2FT p50,
 * E2E p50) for (Lin, Lout) from (512, 512) to (2048, 2048) with a
 * batch size of 64, normalized to the GPU system.
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 12: GLaM latency, batch 64 (normalized to GPU)");
    const std::vector<std::string> &systems = comparedSystems();

    Table t({"Lin=Lout", "System", "TBT p50", "TBT p90", "TBT p99",
             "T2FT p50", "E2E p50"});

    // The same configs bench_perf times.
    const std::vector<SimResult> results =
        runSweep(fig12SweepConfigs());

    std::size_t next = 0;
    for (std::int64_t len : kFig12Lengths) {
        LatencySummary gpu;
        for (const std::string &system : systems) {
            const SimResult &r = results[next++];
            const LatencySummary s = summarizeLatency(r.metrics);
            if (system == "gpu")
                gpu = s;
            auto norm = [&](double v, double base) {
                return base > 0.0 ? v / base : 0.0;
            };
            t.startRow();
            t.cell(len);
            t.cell(systemLabel(system));
            t.cell(norm(s.tbtP50, gpu.tbtP50), 3);
            t.cell(norm(s.tbtP90, gpu.tbtP90), 3);
            t.cell(norm(s.tbtP99, gpu.tbtP99), 3);
            t.cell(norm(s.t2ftP50, gpu.t2ftP50), 3);
            t.cell(norm(s.e2eP50, gpu.e2eP50), 3);
        }
    }
    t.print();
    std::printf("\nPaper shape: Duplex cuts median TBT ~58%% vs "
                "GPU and beats 2xGPU at p50; tails and T2FT need "
                "+PE+ET to approach 2xGPU; E2E drops ~60%% vs "
                "GPU.\n");
    return 0;
}
