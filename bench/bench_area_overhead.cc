/**
 * @file
 * Section VII-E reproduction: the area budget of one Logic-PIM
 * stack and the prior-work comparison.
 */

#include "bench_util.hh"

#include "area/area.hh"
#include "device/pim.hh"

using namespace duplex;

int
main()
{
    banner("Section VII-E: Logic-PIM area overhead per stack");
    const AreaModel area;

    Table t({"Component", "mm^2", "paper mm^2"});
    const AreaReport logic = area.logicPim();
    t.startRow();
    t.cell("32 GEMM modules (512 MACs + 8 KB each)");
    t.cell(logic.computeMm2, 2);
    t.cell("3.02");
    t.startRow();
    t.cell("2 x 1 MB staging buffers");
    t.cell(logic.bufferMm2, 2);
    t.cell("2.26");
    t.startRow();
    t.cell("Softmax unit (incl. 128 KB SRAM)");
    t.cell(logic.softmaxMm2, 2);
    t.cell("1.64");
    t.startRow();
    t.cell("Added TSVs (22 um pitch, 4x count)");
    t.cell(logic.tsvMm2, 2);
    t.cell("10.89");
    t.startRow();
    t.cell("Total");
    t.cell(logic.totalMm2(), 2);
    t.cell("17.80");
    t.print();

    std::printf("\nLogic die fraction: %.2f%% of 121 mm^2 "
                "(paper: 14.71%%)\n",
                100.0 * area.logicPimDieFraction());
    std::printf("Logic-PIM peak per stack: %.1f TFLOPS (paper: "
                "21.3)\n",
                area.logicPimPeakFlops() / 1e12);

    banner("Prior-work variants (added silicon per stack)");
    const HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    Table v({"Variant", "compute", "buffers", "softmax", "TSV",
             "total mm^2", "die %"});
    for (PimVariant kind :
         {PimVariant::LogicPim, PimVariant::BankPim,
          PimVariant::BankGroupPim}) {
        AreaReport r;
        switch (kind) {
          case PimVariant::LogicPim:
            r = area.logicPim();
            break;
          case PimVariant::BankPim:
            r = area.bankPim(
                bankPimEngine(timing, cal, 1).peakFlops);
            break;
          case PimVariant::BankGroupPim:
            r = area.bankGroupPim();
            break;
        }
        v.startRow();
        v.cell(pimVariantName(kind));
        v.cell(r.computeMm2, 2);
        v.cell(r.bufferMm2, 2);
        v.cell(r.softmaxMm2, 2);
        v.cell(r.tsvMm2, 2);
        v.cell(r.totalMm2(), 2);
        v.cell(100.0 * r.totalMm2() / area.params().logicDieMm2, 1);
    }
    v.print();
    std::printf("\nPaper shape: prior in-DRAM PIM overheads run "
                "20-27%% of the die; Logic-PIM stays under 15%% "
                "of the logic die.\n");
    return 0;
}
