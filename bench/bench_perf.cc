/**
 * @file
 * Simulator performance harness: times the end-to-end hot path and
 * emits BENCH_perf.json so the perf trajectory is a tracked,
 * per-PR artifact (uploaded by the CI Release job).
 *
 * Three probes:
 *  - cost model: the O(1) closed-form attention costs against the
 *    retained per-context reference loops (batch 256);
 *  - stage execution: stages/sec of Cluster::executeStage on a
 *    representative decode and mixed stage;
 *  - figure sweeps: wall-clock of the Fig. 11 throughput sweep
 *    (the paper's headline figure, 135 simulations) and the
 *    Fig. 12 GLaM latency sweep through the SweepRunner, with
 *    stages/sec and requests/sec;
 *  - workload generation: requests/sec drawn from the registered
 *    workload sources (the streaming ArrivalQueue puts source
 *    draws on the driver loop's critical path);
 *  - prefix cache: acquire+install ops/sec of a PrefixCachePool
 *    under eviction churn (the kvcache probe sits on every
 *    admission and retirement of a cache-enabled run).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "kvcache/prefix_cache.hh"
#include "workload/registry.hh"

using namespace duplex;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Closed-form vs reference attention-cost microbenchmark. */
struct CostModelProbe
{
    double closedFormNs = 0.0;
    double referenceNs = 0.0;
    double speedup = 0.0;
    // Folded into the JSON so the compiler cannot drop the loops.
    double checksum = 0.0;
};

CostModelProbe
probeCostModel()
{
    const LayerCosts costs(mixtralConfig());
    StageShape stage;
    for (int i = 0; i < 256; ++i)
        stage.decodeContexts.push_back(1024 + 13 * i);
    for (int i = 0; i < 4; ++i)
        stage.prefillLengths.push_back(2048 + 101 * i);
    const StageAggregates agg = aggregatesOf(stage);

    CostModelProbe probe;
    const int iters = 20000;
    auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        probe.checksum += costs.attentionDecode(agg).flops;
        probe.checksum += costs.attentionPrefill(agg).flops;
    }
    probe.closedFormNs = secondsSince(t0) * 1e9 / iters;

    const int ref_iters = 2000;
    t0 = Clock::now();
    for (int i = 0; i < ref_iters; ++i) {
        probe.checksum -= costs.attentionDecodeReference(stage).flops;
        probe.checksum -= costs.attentionPrefillReference(stage).flops;
    }
    probe.referenceNs = secondsSince(t0) * 1e9 / ref_iters;
    probe.speedup = probe.closedFormNs > 0.0
                        ? probe.referenceNs / probe.closedFormNs
                        : 0.0;
    return probe;
}

/** Stages/sec of one system on a fixed stage shape. */
double
probeStageExec(const std::string &system, const StageShape &stage)
{
    const std::unique_ptr<ServingSystem> sys =
        makeSystem(system, mixtralConfig());
    // Warm up once (device LUT construction etc.).
    sys->executeStage(stage);
    const int iters = 300;
    const auto t0 = Clock::now();
    PicoSec sink = 0;
    for (int i = 0; i < iters; ++i)
        sink += sys->executeStage(stage).time;
    const double sec = secondsSince(t0);
    return sink > 0 && sec > 0.0 ? iters / sec : 0.0;
}

struct SweepProbe
{
    const char *name = "";
    int configs = 0;
    double wallSec = 0.0;
    std::int64_t stages = 0;
    std::int64_t requests = 0;
    std::int64_t tokens = 0;
};

SweepProbe
timeSweep(const char *name, const std::vector<SimConfig> &configs)
{
    SweepProbe probe;
    probe.name = name;
    probe.configs = static_cast<int>(configs.size());
    const auto t0 = Clock::now();
    const std::vector<SimResult> results = runSweep(configs);
    probe.wallSec = secondsSince(t0);
    for (std::size_t i = 0; i < results.size(); ++i) {
        probe.stages += results[i].metrics.decodingOnlyStages +
                        results[i].metrics.mixedStages;
        probe.requests += configs[i].numRequests;
        probe.tokens += results[i].generatedTokens;
    }
    return probe;
}

// The sweeps time exactly the configs the figure benches run
// (bench_util's fig11SweepConfigs / fig12SweepConfigs), so the
// tracked numbers stay in lockstep with the figures.

/** Requests/sec one workload source sustains. */
double
probeWorkloadGen(const std::string &id)
{
    WorkloadSpec spec;
    spec.qps = 8.0;
    spec.diurnalPeriodSec = 30.0;
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload(id, spec);
    // Warm up once (lookahead buffer, first-state draws).
    std::int64_t sink = source->next().inputLen;
    const int iters = 200000;
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i)
        sink += source->next().inputLen;
    const double sec = secondsSince(t0);
    return sink > 0 && sec > 0.0 ? iters / sec : 0.0;
}

/**
 * Acquire+install cycles/sec of a PrefixCachePool whose working
 * set (512 sessions x 256 tokens) overflows the budget (64 Ki
 * tokens), so the eviction scan stays on the timed path.
 */
double
probePrefixCache()
{
    PrefixCacheSpec spec;
    spec.budgetBytes = 64ll << 20;
    spec.evictPolicy = "lru";
    PrefixCachePool pool(spec, 1024);
    Request r;
    r.inputLen = 256;
    const int sessions = 512;
    const int iters = 100000;
    std::int64_t sink = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        r.sessionId = i % sessions;
        sink += pool.acquire(r);
        pool.install(r);
    }
    const double sec = secondsSince(t0);
    return sink >= 0 && sec > 0.0 ? iters / sec : 0.0;
}

} // namespace

int
main()
{
    banner("Perf: simulator throughput (BENCH_perf.json)");

    const CostModelProbe cost = probeCostModel();
    std::printf("cost model: closed form %.1f ns, reference %.1f "
                "ns, speedup %.1fx\n",
                cost.closedFormNs, cost.referenceNs, cost.speedup);

    StageShape decode_stage;
    for (int i = 0; i < 64; ++i)
        decode_stage.decodeContexts.push_back(2048);
    StageShape mixed_stage = decode_stage;
    mixed_stage.prefillLengths.push_back(2048);

    struct StageProbe
    {
        const char *name;
        double stagesPerSec;
    };
    const StageProbe stage_probes[] = {
        {"gpu_decode64", probeStageExec("gpu", decode_stage)},
        {"gpu_mixed64", probeStageExec("gpu", mixed_stage)},
        {"duplex_decode64",
         probeStageExec("duplex-pe-et", decode_stage)},
        {"duplex_mixed64",
         probeStageExec("duplex-pe-et", mixed_stage)},
    };
    for (const StageProbe &p : stage_probes)
        std::printf("stage exec %-16s %10.0f stages/s\n", p.name,
                    p.stagesPerSec);

    struct WorkloadGenProbe
    {
        const char *name;
        double requestsPerSec;
    };
    const WorkloadGenProbe workload_probes[] = {
        {"synthetic", probeWorkloadGen("synthetic")},
        {"bursty", probeWorkloadGen("bursty")},
        {"diurnal", probeWorkloadGen("diurnal")},
        {"mixed", probeWorkloadGen("mixed")},
        {"session", probeWorkloadGen("session")},
    };
    for (const WorkloadGenProbe &p : workload_probes)
        std::printf("workload gen %-12s %12.0f requests/s\n",
                    p.name, p.requestsPerSec);

    const double prefix_cache_ops = probePrefixCache();
    std::printf("prefix cache %25.0f acquire+install/s\n",
                prefix_cache_ops);

    const SweepProbe sweeps[] = {
        timeSweep("fig11-throughput", fig11SweepConfigs()),
        timeSweep("fig12-glam-latency", fig12SweepConfigs())};
    for (const SweepProbe &s : sweeps)
        std::printf("%s: %d configs in %.2f s (%.0f stages/s, "
                    "%.0f requests/s)\n",
                    s.name, s.configs, s.wallSec,
                    s.stages / s.wallSec,
                    s.requests / s.wallSec);

    std::FILE *json = std::fopen("BENCH_perf.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_perf.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"schema\": 1,\n");
    std::fprintf(json, "  \"sweep_workers\": %d,\n",
                 SweepRunner().workers());
    std::fprintf(json,
                 "  \"cost_model\": {\"closed_form_ns\": %.3f, "
                 "\"reference_ns\": %.3f, \"speedup\": %.3f, "
                 "\"checksum\": %.17g},\n",
                 cost.closedFormNs, cost.referenceNs, cost.speedup,
                 cost.checksum);
    std::fprintf(json, "  \"stage_exec\": {");
    for (std::size_t i = 0; i < std::size(stage_probes); ++i)
        std::fprintf(json, "%s\"%s\": %.3f", i ? ", " : "",
                     stage_probes[i].name,
                     stage_probes[i].stagesPerSec);
    std::fprintf(json, "},\n");
    std::fprintf(json, "  \"workload_gen\": {");
    for (std::size_t i = 0; i < std::size(workload_probes); ++i)
        std::fprintf(json, "%s\"%s\": %.3f", i ? ", " : "",
                     workload_probes[i].name,
                     workload_probes[i].requestsPerSec);
    std::fprintf(json, "},\n");
    std::fprintf(json,
                 "  \"prefix_cache\": {\"ops_per_sec\": %.3f},\n",
                 prefix_cache_ops);
    std::fprintf(json, "  \"figure_sweeps\": [");
    for (std::size_t i = 0; i < std::size(sweeps); ++i) {
        const SweepProbe &s = sweeps[i];
        std::fprintf(json,
                     "%s{\"name\": \"%s\", \"configs\": %d, "
                     "\"wall_sec\": %.3f, \"stages_per_sec\": %.1f, "
                     "\"requests_per_sec\": %.2f, "
                     "\"tokens_per_sec\": %.1f}",
                     i ? ", " : "", s.name, s.configs, s.wallSec,
                     s.stages / s.wallSec,
                     s.requests / s.wallSec,
                     s.tokens / s.wallSec);
    }
    std::fprintf(json, "]\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_perf.json\n");
    return 0;
}
