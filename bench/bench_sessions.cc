/**
 * @file
 * Session bench: the KV prefix cache under multi-turn traffic —
 * cache budget x eviction policy x routing policy, judged by hit
 * rate, the warm-vs-cold TTFT gap, SLO attainment and goodput.
 *
 * Every cell is one FleetDriver run (fleet/fleet.hh) of 2 gpu
 * instances over the "session" workload (workload/source.hh): fresh
 * sessions arrive open-loop, each turn's prompt grows over a shared
 * system prefix, and the next turn releases only after the previous
 * one retires (plus think time). Each instance owns an independent
 * PrefixCachePool (src/kvcache/), so the fleet-wide hit rate
 * directly exposes the routing question: session-affinity keeps a
 * session's turns on the instance holding their prefix KV;
 * least-loaded scatters them and eats cold prefills. A zero-budget
 * baseline row pins the cache-off behavior per policy.
 *
 * Output discipline (same as bench_fleet): the sweep table goes to
 * stdout — the CI determinism job diffs two runs byte-for-byte.
 * Wall-clock and RSS go to stderr and, with --json=PATH, into a
 * JSON file the CI perf job merges into the BENCH_perf gate
 * (sessions.requests_per_sec floor; see tools/check_perf.py).
 *
 *   ./bench_sessions                     # the full sweep
 *   ./bench_sessions --requests=48       # quick smoke run
 *   ./bench_sessions --json=BENCH_sessions.json
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/argparse.hh"
#include "common/rss.hh"
#include "fleet/fleet.hh"
#include "kvcache/prefix_cache.hh"

using namespace duplex;

namespace
{

constexpr int kFleetSize = 2;
constexpr double kSessionQpsPerInstance = 1.5;

/** Budgets in MiB; 0 = cache off (the baseline rows). Mixtral KV
 *  is 128 KiB/token, so 512 MiB holds ~4k cached tokens — enough
 *  for a couple of live sessions, tight enough to force eviction. */
constexpr double kCacheMb[] = {0.0, 512.0, 2048.0};

const std::vector<std::string> &
sweepPolicies()
{
    static const std::vector<std::string> policies = {
        "least-loaded", "session-affinity"};
    return policies;
}

/** One sweep cell and its outcome. */
struct SessionCell
{
    double cacheMb = 0.0;
    std::string evict;
    std::string policy;

    FleetResult result;
    double warmT2ftMs = 0.0;
    double coldT2ftMs = 0.0;
    std::int64_t warm = 0;
    std::int64_t cold = 0;
    double attainment = 0.0;
    double goodput = 0.0;
};

FleetConfig
cellConfig(const SessionCell &cell, int requests_per_instance)
{
    FleetConfig fc;
    fc.sim.systemName = "gpu";
    fc.sim.model = mixtralConfig();
    fc.sim.maxBatch = 16;
    fc.sim.workloadName = "session";
    fc.sim.workload.meanInputLen = 256;
    fc.sim.workload.meanOutputLen = 64;
    // Fresh-session rate; turns release closed-loop on retirement.
    fc.sim.workload.qps = kSessionQpsPerInstance * kFleetSize;
    fc.sim.workload.sessionTurns = 4;
    fc.sim.workload.sharedPrefixTokens = 128;
    fc.sim.workload.meanThinkSec = 0.5;
    fc.sim.numRequests = requests_per_instance * kFleetSize;
    fc.sim.warmupRequests =
        defaultWarmupRequests(fc.sim.maxBatch) / kFleetSize;
    // The requests/s number only means something if every request
    // retires; the cap is a runaway backstop, not the run's end.
    fc.sim.maxStages = 2000000;
    fc.sim.prefixCache.budgetBytes = static_cast<std::int64_t>(
        cell.cacheMb * 1024.0 * 1024.0);
    fc.sim.prefixCache.evictPolicy =
        cell.evict.empty() ? "lru" : cell.evict;
    fc.sim.prefixCache.sharedPrefixTokens =
        fc.sim.workload.sharedPrefixTokens;
    fc.instances = kFleetSize;
    fc.policy = cell.policy;
    return fc;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("requests", "requests per instance", "192");
    args.addFlag("tbt-slo", "TBT SLO in ms", "40");
    args.addFlag("ttft-slo", "TTFT SLO in ms", "1500");
    args.addFlag("json",
                 "write session perf metrics to this file", "");
    args.parse(argc, argv);

    const int requests_per_instance =
        static_cast<int>(args.getInt("requests"));
    const SloSpec slo{args.getDouble("ttft-slo"),
                      args.getDouble("tbt-slo")};

    banner("Session serving: KV prefix cache x eviction x routing");
    std::printf("%d gpu instances, session workload (4 turns, "
                "shared prefix 128, user ~256, reply ~64, think "
                "0.5 s) at %.1f sessions/s/instance, %d "
                "request(s)/instance, TTFT < %.0f ms, TBT < %.0f "
                "ms\n",
                kFleetSize, kSessionQpsPerInstance,
                requests_per_instance, slo.t2ftMs, slo.tbtMs);

    // cache budget x eviction x routing policy; the cache-off
    // baseline collapses the eviction axis ("-").
    std::vector<SessionCell> cells;
    for (double mb : kCacheMb) {
        const std::vector<std::string> evictions =
            mb > 0.0 ? registeredEvictionPolicies()
                     : std::vector<std::string>{""};
        for (const std::string &evict : evictions)
            for (const std::string &policy : sweepPolicies())
                cells.push_back({mb, evict, policy, {}, 0.0, 0.0,
                                 0, 0, 0.0, 0.0});
    }

    std::vector<std::function<void()>> tasks;
    tasks.reserve(cells.size());
    for (SessionCell &cell : cells)
        tasks.push_back([&cell, requests_per_instance, slo] {
            FleetDriver driver(
                cellConfig(cell, requests_per_instance));
            FleetSloAttainment attainment(slo);
            FleetPrefixCacheStats cache_stats;
            driver.addObserver(&attainment);
            driver.addObserver(&cache_stats);
            cell.result = driver.run();
            cell.warmT2ftMs = cache_stats.stats().warmT2ftMs();
            cell.coldT2ftMs = cache_stats.stats().coldT2ftMs();
            cell.warm = cache_stats.stats().warmRequests();
            cell.cold = cache_stats.stats().coldRequests();
            cell.attainment = attainment.attainment().attainment();
            cell.goodput =
                attainment.attainment().goodputTokensPerSec();
        });

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner().runTasks(tasks);
    const double wall_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // ---- deterministic sweep table (stdout, diffed by CI) ------
    Table t({"Cache MiB", "Evict", "Policy", "hit rate",
             "warm TTFT ms", "cold TTFT ms", "SLO att",
             "goodput/s", "retired"});
    std::int64_t total_retired = 0;
    for (const SessionCell &cell : cells) {
        total_retired += cell.result.requestsRetired;
        t.startRow();
        t.cell(cell.cacheMb, 0);
        t.cell(cell.evict.empty() ? "-" : cell.evict);
        t.cell(cell.policy);
        t.cell(cell.result.prefixCache.hitRate(), 3);
        t.cell(cell.warmT2ftMs, 1);
        t.cell(cell.coldT2ftMs, 1);
        t.cell(cell.attainment, 3);
        t.cell(cell.goodput, 0);
        t.cell(static_cast<double>(cell.result.requestsRetired), 0);
    }
    t.print();
    std::printf("Warm = retired with a prefix-cache hit "
                "(cachedTokens > 0); hit rate counts admission "
                "probes fleet-wide. Attainment covers every "
                "retired request.\n");

    // ---- perf numbers (stderr + JSON; never in the diffed out) -
    const double rss_mb = peakRssMb();
    const double req_per_sec =
        wall_sec > 0.0 ? total_retired / wall_sec : 0.0;
    std::fprintf(stderr,
                 "session sweep: %zu run(s), %lld requests "
                 "retired, %.2f s wall, %.0f requests/s, peak RSS "
                 "%.1f MB\n",
                 cells.size(),
                 static_cast<long long>(total_retired), wall_sec,
                 req_per_sec, rss_mb);

    const std::string json_path = args.getString("json");
    if (!json_path.empty()) {
        std::FILE *json = std::fopen(json_path.c_str(), "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(json,
                     "{\n"
                     "  \"schema\": 1,\n"
                     "  \"sessions\": {\n"
                     "    \"runs\": %zu,\n"
                     "    \"requests_retired\": %lld,\n"
                     "    \"wall_sec\": %.3f,\n"
                     "    \"requests_per_sec\": %.3f,\n"
                     "    \"peak_rss_mb\": %.3f\n"
                     "  }\n"
                     "}\n",
                     cells.size(),
                     static_cast<long long>(total_retired),
                     wall_sec, req_per_sec, rss_mb);
        std::fclose(json);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
