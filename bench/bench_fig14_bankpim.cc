/**
 * @file
 * Fig. 14 reproduction: Duplex vs Bank-PIM vs GPU throughput on
 * Mixtral (MoE + GQA), Llama3 (dense + GQA) and OPT (dense + MHA).
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    banner("Fig. 14: Bank-PIM comparison (normalized to GPU)");
    Table t({"Model", "Config", "Batch", "Lin=Lout", "GPU tok/s",
             "Bank-PIM", "Duplex"});

    struct Row
    {
        ModelConfig model;
        const char *config;
        std::vector<std::int64_t> lengths;
    };
    const std::vector<Row> rows = {
        {mixtralConfig(), "MoE O, GQA", {256, 1024, 4096}},
        {llama3Config(), "MoE X, GQA", {256, 512, 1024}},
        {optConfig(), "MoE X, MHA", {256, 512, 1024}},
    };

    const std::vector<std::string> systems = {"gpu", "bank-pim",
                                              "duplex-pe-et"};
    std::vector<SimConfig> configs;
    for (const Row &row : rows)
        for (int batch : {32, 64})
            for (std::int64_t len : row.lengths)
                for (const std::string &system : systems)
                    configs.push_back(throughputConfig(
                        system, row.model, batch, len, len));
    const std::vector<SimResult> results = runSweep(configs);

    std::size_t next = 0;
    for (const Row &row : rows) {
        for (int batch : {32, 64}) {
            for (std::int64_t len : row.lengths) {
                const double gpu =
                    results[next++]
                        .metrics.throughputTokensPerSec();
                const double bank =
                    results[next++]
                        .metrics.throughputTokensPerSec();
                const double dup =
                    results[next++]
                        .metrics.throughputTokensPerSec();
                t.startRow();
                t.cell(row.model.name);
                t.cell(row.config);
                t.cell(static_cast<std::int64_t>(batch));
                t.cell(len);
                t.cell(gpu, 0);
                t.cell(bank / gpu, 2);
                t.cell(dup / gpu, 2);
            }
        }
    }
    t.print();
    std::printf("\nPaper shape: Duplex leads on Mixtral (MoE Op/B "
                "outgrows Bank-PIM's compute as batch rises) and "
                "Llama3 (deggrp = 8); Bank-PIM wins on OPT, whose "
                "MHA decode attention sits at Op/B ~ 1 where raw "
                "internal bandwidth is everything.\n");
    return 0;
}
