/**
 * @file
 * Fig. 15 reproduction: per-token energy breakdown (FC, attention,
 * MoE, split into DRAM and compute) of the GPU system vs Duplex
 * (+PE+ET) on Mixtral, GLaM and Grok1.
 */

#include "bench_util.hh"

using namespace duplex;

namespace
{

void
addRow(Table &t, const std::string &model, int batch,
       std::int64_t lin, std::int64_t lout, const char *system,
       const SimResult &r, double norm_total)
{
    const double tokens =
        static_cast<double>(r.generatedTokens);
    auto per_token = [&](LayerClass cls, bool dram) {
        const EnergyBreakdown &e = r.totals.slice(cls).energy;
        return (dram ? e.dramJ : e.computeJ) / tokens / norm_total;
    };
    const double fc_d = per_token(LayerClass::Fc, true);
    const double fc_c = per_token(LayerClass::Fc, false);
    const double at_d =
        per_token(LayerClass::AttentionDecode, true) +
        per_token(LayerClass::AttentionPrefill, true);
    const double at_c =
        per_token(LayerClass::AttentionDecode, false) +
        per_token(LayerClass::AttentionPrefill, false);
    const double moe_d = per_token(LayerClass::Moe, true);
    const double moe_c = per_token(LayerClass::Moe, false);
    t.startRow();
    t.cell(model);
    t.cell(static_cast<std::int64_t>(batch));
    t.cell(lin);
    t.cell(lout);
    t.cell(system);
    t.cell(fc_d, 3);
    t.cell(fc_c, 3);
    t.cell(at_d, 3);
    t.cell(at_c, 3);
    t.cell(moe_d, 3);
    t.cell(moe_c, 3);
    t.cell(fc_d + fc_c + at_d + at_c + moe_d + moe_c, 3);
}

} // namespace

int
main()
{
    banner("Fig. 15: energy per token, normalized to the GPU "
           "system's total");
    Table t({"Model", "Batch", "Lin", "Lout", "System", "FC dram",
             "FC comp", "Attn dram", "Attn comp", "MoE dram",
             "MoE comp", "Total"});
    double worst_saving = 1.0;
    for (const ModelConfig &model :
         {mixtralConfig(), glamConfig(), grok1Config()}) {
        for (int batch : {32, 64, 128}) {
            for (const auto &[lin, lout] : lengthSweep(model)) {
                const SimResult gpu = runThroughput(
                    "gpu", model, batch, lin, lout, 200);
                const SimResult dup =
                    runThroughput("duplex-pe-et", model, batch,
                                  lin, lout, 200);
                const double gpu_total = gpu.energyPerTokenJ();
                addRow(t, model.name, batch, lin, lout, "GPU", gpu,
                       gpu_total);
                addRow(t, model.name, batch, lin, lout, "Duplex",
                       dup, gpu_total);
                worst_saving = std::min(
                    worst_saving,
                    dup.energyPerTokenJ() / gpu_total);
            }
        }
    }
    t.print();
    std::printf("\nBest Duplex energy reduction: %.1f%% (paper: up "
                "to 42.0%%, 28.2%% average).\n"
                "Paper shape: savings come from MoE/attention DRAM "
                "energy (Logic-PIM skips the interposer); savings "
                "shrink as batch grows on Mixtral/Grok1 (xPU "
                "handles more experts).\n",
                100.0 * (1.0 - worst_saving));
    return 0;
}
