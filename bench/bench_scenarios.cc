/**
 * @file
 * Scenario matrix: every registered serving system crossed with
 * every registered workload, driven through runSweep. This is the
 * ROADMAP's "as many scenarios as you can imagine" harness: adding
 * a system (sim/registry.hh) or a workload (workload/registry.hh)
 * grows the matrix automatically, with no bench edits.
 *
 * The "trace" workload is exercised as a round-trip: the bench
 * first materializes a synthetic open-loop stream, dumps it with
 * saveTrace, then replays the file through TraceSource like a
 * recorded production trace.
 *
 * Reported per cell: throughput, TBT p99, the TTFT/TBT SLO
 * attainment fractions, and — via the SweepRunner's per-run
 * observer factory — the per-request SLO attainment and goodput
 * the SloAttainment observer computes (a request counts only if
 * its TTFT and its *worst* token gap meet the objective). Under
 * bursty/diurnal arrivals these columns separate systems the raw
 * tokens/s column cannot.
 */

#include "bench_util.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

using namespace duplex;

namespace
{

constexpr int kBatch = 16;
constexpr int kRequests = 48;
constexpr std::int64_t kMaxStages = 6000;
constexpr double kOpenLoopQps = 6.0;
const char *const kTracePath = "bench_scenarios_trace.csv";

/** The spec every cell shares; sources read what they need. */
WorkloadSpec
scenarioSpec()
{
    WorkloadSpec spec;
    spec.meanInputLen = 512;
    spec.meanOutputLen = 128;
    spec.qps = kOpenLoopQps;
    spec.burstQps = 12.0;
    spec.idleQps = 1.0;
    spec.meanBurstSec = 2.0;
    spec.meanIdleSec = 4.0;
    spec.diurnalLowQps = 1.0;
    spec.diurnalHighQps = 12.0;
    spec.diurnalPeriodSec = 20.0;
    spec.tracePath = kTracePath;
    return spec;
}

/** Write the trace the "trace" workload replays. */
void
writeScenarioTrace(const WorkloadSpec &spec)
{
    WorkloadSpec synthetic = spec;
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload("synthetic", synthetic);
    std::vector<Request> requests;
    requests.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i)
        requests.push_back(source->next());
    saveTrace(kTracePath, requests);
}

} // namespace

int
main()
{
    banner("Scenario matrix: registered systems x registered "
           "workloads");

    const WorkloadSpec spec = scenarioSpec();
    writeScenarioTrace(spec);

    const std::vector<std::string> systems = registeredSystems();
    const std::vector<std::string> workloads =
        registeredWorkloads();

    std::vector<SimConfig> configs;
    configs.reserve(systems.size() * workloads.size());
    for (const std::string &workload : workloads) {
        for (const std::string &system : systems) {
            SimConfig c;
            c.systemName = system;
            c.workloadName = workload;
            c.model = mixtralConfig();
            c.workload = spec;
            c.maxBatch = kBatch;
            c.numRequests = kRequests;
            c.warmupRequests = defaultWarmupRequests(kBatch);
            c.maxStages = kMaxStages;
            configs.push_back(c);
        }
    }
    // Per-run observers on the parallel sweep: every run gets its
    // own SloAttainment instance from the factory and returns it
    // filled alongside the SimResult.
    const SloSpec slo;
    const ObserverFactory factory = [slo](const SimConfig &) {
        std::vector<std::unique_ptr<SimObserver>> obs;
        obs.push_back(std::make_unique<SloAttainment>(slo));
        return obs;
    };
    const std::vector<ObservedRun> runs =
        SweepRunner().runObserved(configs, factory);

    Table t({"Workload", "System", "tokens/s", "TBT p99 ms",
             "T2FT p50 ms", "TTFT att", "TBT att", "req att",
             "goodput/s"});
    std::size_t next = 0;
    for (const std::string &workload : workloads) {
        for (const std::string &system : systems) {
            const ObservedRun &run = runs[next++];
            const SimResult &r = run.result;
            const auto *attainment =
                dynamic_cast<const SloAttainment *>(
                    run.observers.front().get());
            t.startRow();
            t.cell(WorkloadRegistry::instance().displayName(
                workload));
            t.cell(systemLabel(system));
            t.cell(r.metrics.throughputTokensPerSec(), 0);
            t.cell(r.metrics.tbtMs.percentile(99), 2);
            t.cell(r.metrics.t2ftMs.percentile(50), 1);
            t.cell(r.metrics.t2ftAttainment(slo), 2);
            t.cell(r.metrics.tbtAttainment(slo), 2);
            t.cell(attainment->attainment(), 2);
            t.cell(attainment->goodputTokensPerSec(), 0);
        }
    }
    t.print();
    std::printf("\nSLO: TTFT < %.0f ms, TBT < %.0f ms. Scenario "
                "mixes shift the prefill/decode balance: "
                "summarize-heavy streams punish prefill "
                "bandwidth, codegen-heavy streams reward decode "
                "throughput, and bursty/diurnal arrivals expose "
                "the queueing the closed loop never sees.\n",
                slo.t2ftMs, slo.tbtMs);
    return 0;
}
