/**
 * @file
 * Scenario matrix: every registered serving system crossed with
 * every registered workload, driven through runSweep. This is the
 * ROADMAP's "as many scenarios as you can imagine" harness: adding
 * a system (sim/registry.hh) or a workload (workload/registry.hh)
 * grows the matrix automatically, with no bench edits.
 *
 * The "trace" workload is exercised as a round-trip: the bench
 * first materializes a synthetic open-loop stream, dumps it with
 * saveTrace, then replays the file through TraceSource like a
 * recorded production trace.
 *
 * Reported per cell: throughput, TBT p99, the TTFT/TBT SLO
 * attainment fractions, and — via the SweepRunner's per-run
 * observer factory — the per-request SLO attainment and goodput
 * the SloAttainment observer computes (a request counts only if
 * its TTFT and its *worst* token gap meet the objective). Under
 * bursty/diurnal arrivals these columns separate systems the raw
 * tokens/s column cannot.
 *
 * Output discipline (same as bench_fleet): the matrix table goes
 * to stdout for the CI determinism diff; wall-clock and RSS go to
 * stderr and, with --json=PATH, into a JSON perf summary.
 *
 *   ./bench_scenarios                   # the full matrix
 *   ./bench_scenarios --requests=24     # quick smoke run
 *   ./bench_scenarios --json=BENCH_scenarios.json
 */

#include <chrono>

#include "bench_util.hh"
#include "common/argparse.hh"
#include "common/rss.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

using namespace duplex;

namespace
{

constexpr int kBatch = 16;
constexpr std::int64_t kMaxStages = 6000;
constexpr double kOpenLoopQps = 6.0;
const char *const kTracePath = "bench_scenarios_trace.csv";

/** The spec every cell shares; sources read what they need. */
WorkloadSpec
scenarioSpec()
{
    WorkloadSpec spec;
    spec.meanInputLen = 512;
    spec.meanOutputLen = 128;
    spec.qps = kOpenLoopQps;
    spec.burstQps = 12.0;
    spec.idleQps = 1.0;
    spec.meanBurstSec = 2.0;
    spec.meanIdleSec = 4.0;
    spec.diurnalLowQps = 1.0;
    spec.diurnalHighQps = 12.0;
    spec.diurnalPeriodSec = 20.0;
    spec.tracePath = kTracePath;
    return spec;
}

/** Write the trace the "trace" workload replays. */
void
writeScenarioTrace(const WorkloadSpec &spec, int requests_per_cell)
{
    WorkloadSpec synthetic = spec;
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload("synthetic", synthetic);
    std::vector<Request> requests;
    requests.reserve(requests_per_cell);
    for (int i = 0; i < requests_per_cell; ++i)
        requests.push_back(source->next());
    saveTrace(kTracePath, requests);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("requests", "requests per cell", "48");
    args.addFlag("json",
                 "write scenario-bench perf metrics to this file",
                 "");
    args.parse(argc, argv);
    const int requests = static_cast<int>(args.getInt("requests"));

    banner("Scenario matrix: registered systems x registered "
           "workloads");

    const WorkloadSpec spec = scenarioSpec();
    writeScenarioTrace(spec, requests);

    const std::vector<std::string> systems = registeredSystems();
    const std::vector<std::string> workloads =
        registeredWorkloads();

    std::vector<SimConfig> configs;
    configs.reserve(systems.size() * workloads.size());
    for (const std::string &workload : workloads) {
        for (const std::string &system : systems) {
            SimConfig c;
            c.systemName = system;
            c.workloadName = workload;
            c.model = mixtralConfig();
            c.workload = spec;
            c.maxBatch = kBatch;
            c.numRequests = requests;
            c.warmupRequests = defaultWarmupRequests(kBatch);
            c.maxStages = kMaxStages;
            configs.push_back(c);
        }
    }
    // Per-run observers on the parallel sweep: every run gets its
    // own SloAttainment instance from the factory and returns it
    // filled alongside the SimResult.
    const SloSpec slo;
    const ObserverFactory factory = [slo](const SimConfig &) {
        std::vector<std::unique_ptr<SimObserver>> obs;
        obs.push_back(std::make_unique<SloAttainment>(slo));
        return obs;
    };
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<ObservedRun> runs =
        SweepRunner().runObserved(configs, factory);
    const double wall_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    Table t({"Workload", "System", "tokens/s", "TBT p99 ms",
             "T2FT p50 ms", "TTFT att", "TBT att", "req att",
             "goodput/s"});
    std::size_t next = 0;
    for (const std::string &workload : workloads) {
        for (const std::string &system : systems) {
            const ObservedRun &run = runs[next++];
            const SimResult &r = run.result;
            const auto *attainment =
                dynamic_cast<const SloAttainment *>(
                    run.observers.front().get());
            t.startRow();
            t.cell(WorkloadRegistry::instance().displayName(
                workload));
            t.cell(systemLabel(system));
            t.cell(r.metrics.throughputTokensPerSec(), 0);
            t.cell(r.metrics.tbtMs.percentile(99), 2);
            t.cell(r.metrics.t2ftMs.percentile(50), 1);
            t.cell(r.metrics.t2ftAttainment(slo), 2);
            t.cell(r.metrics.tbtAttainment(slo), 2);
            t.cell(attainment->attainment(), 2);
            t.cell(attainment->goodputTokensPerSec(), 0);
        }
    }
    t.print();
    std::printf("\nSLO: TTFT < %.0f ms, TBT < %.0f ms. Scenario "
                "mixes shift the prefill/decode balance: "
                "summarize-heavy streams punish prefill "
                "bandwidth, codegen-heavy streams reward decode "
                "throughput, and bursty/diurnal arrivals expose "
                "the queueing the closed loop never sees.\n",
                slo.t2ftMs, slo.tbtMs);

    // ---- perf numbers (stderr + JSON; never in the diffed out) -
    const double rss_mb = peakRssMb();
    std::fprintf(stderr,
                 "scenario matrix: %zu run(s), %.2f s wall, peak "
                 "RSS %.1f MB\n",
                 runs.size(), wall_sec, rss_mb);
    const std::string json_path = args.getString("json");
    if (!json_path.empty()) {
        std::FILE *json = std::fopen(json_path.c_str(), "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(json,
                     "{\n"
                     "  \"schema\": 1,\n"
                     "  \"scenarios\": {\n"
                     "    \"runs\": %zu,\n"
                     "    \"wall_sec\": %.3f,\n"
                     "    \"peak_rss_mb\": %.3f\n"
                     "  }\n"
                     "}\n",
                     runs.size(), wall_sec, rss_mb);
        std::fclose(json);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
