/**
 * @file
 * Table I reproduction: model configurations and the parameter
 * counts they imply, next to the paper's published sizes.
 */

#include "bench_util.hh"

using namespace duplex;

int
main()
{
    banner("Table I: model configurations");
    Table t({"Model", "Param(paper)", "Param(model)", "#layer",
             "Hidden", "Interm", "#head", "deggrp", "Nex", "top-k",
             "KV/token"});
    const std::vector<std::pair<ModelConfig, std::string>> rows = {
        {mixtralConfig(), "47B"}, {glamConfig(), "143B"},
        {grok1Config(), "314B"},  {optConfig(), "66B"},
        {llama3Config(), "70B"},
    };
    for (const auto &[m, paper] : rows) {
        t.startRow();
        t.cell(m.name);
        t.cell(paper);
        t.cell(formatDouble(m.totalParams() / 1e9, 1) + "B");
        t.cell(static_cast<std::int64_t>(m.numLayers));
        t.cell(static_cast<std::int64_t>(m.hidden));
        t.cell(static_cast<std::int64_t>(m.intermediate));
        t.cell(static_cast<std::int64_t>(m.numHeads));
        t.cell(m.numExperts > 0 || m.degGrp > 1
                   ? std::to_string(m.degGrp) +
                         (m.degGrp == 1 ? " (MHA)" : " (GQA)")
                   : "1 (MHA)");
        t.cell(m.numExperts > 0
                   ? std::to_string(m.numExperts)
                   : std::string("-"));
        t.cell(m.topK > 0 ? std::to_string(m.topK)
                          : std::string("-"));
        t.cell(formatDouble(static_cast<double>(
                                m.kvBytesPerToken()) /
                                1024.0,
                            0) +
               " KiB");
    }
    t.print();
    return 0;
}
