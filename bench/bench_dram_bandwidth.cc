/**
 * @file
 * DRAM microbenchmark (google-benchmark): sustained bandwidth of
 * the cycle-level model on every access path the paper relies on.
 * Reported counters are simulated GB/s; wall time measures the
 * simulator itself.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "dram/bundle.hh"
#include "dram/calibrate.hh"
#include "dram/controller.hh"

namespace duplex
{
namespace
{

std::vector<XpuStreamEngine::BankRef>
allBanks(const HbmTiming &t)
{
    std::vector<XpuStreamEngine::BankRef> banks;
    for (int r = 0; r < t.ranksPerPch; ++r)
        for (int bg = 0; bg < t.bankGroups; ++bg)
            for (int b = 0; b < t.banksPerGroup; ++b)
                banks.push_back({r, bg, b});
    return banks;
}

void
BM_XpuStream(benchmark::State &state)
{
    const HbmTiming t = hbm3Timing();
    const Bytes bytes = static_cast<Bytes>(state.range(0)) * kKiB;
    double gbps = 0.0;
    for (auto _ : state) {
        PseudoChannel ch(t);
        XpuStreamEngine eng(ch, allBanks(t), bytes);
        runEngines({&eng});
        gbps = static_cast<double>(bytes) /
               psToSec(eng.finishTime()) / 1e9;
    }
    state.counters["sim_GBps"] = gbps;
    state.counters["eff"] = gbps * 1e9 / t.pchPeakBytesPerSec();
}
BENCHMARK(BM_XpuStream)->Arg(64)->Arg(512)->Arg(2048);

void
BM_BundleStream(benchmark::State &state)
{
    const HbmTiming t = hbm3Timing();
    const Bytes bytes = static_cast<Bytes>(state.range(0)) * kKiB;
    const bool lockstep = state.range(1) != 0;
    double gbps = 0.0;
    for (auto _ : state) {
        PseudoChannel ch(t);
        BundleStreamEngine eng(ch, 0, 0, bytes, lockstep);
        runEngines({&eng});
        gbps = static_cast<double>(bytes) /
               psToSec(eng.finishTime()) / 1e9;
    }
    state.counters["sim_GBps"] = gbps;
    state.counters["gain_vs_xpu_peak"] =
        gbps * 1e9 / t.pchPeakBytesPerSec();
}
BENCHMARK(BM_BundleStream)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({2048, 0});

void
BM_ConcurrentCoProcessing(benchmark::State &state)
{
    const HbmTiming t = hbm3Timing();
    const Bytes bytes = 512 * kKiB;
    double xpu_gbps = 0.0;
    double pim_gbps = 0.0;
    for (auto _ : state) {
        PseudoChannel ch(t);
        std::vector<XpuStreamEngine::BankRef> rank1;
        for (int bg = 0; bg < t.bankGroups; ++bg)
            for (int b = 0; b < t.banksPerGroup; ++b)
                rank1.push_back({1, bg, b});
        XpuStreamEngine xpu(ch, rank1, bytes);
        BundleStreamEngine pim(ch, 0, 0, bytes, false);
        runEngines({&xpu, &pim});
        xpu_gbps = static_cast<double>(bytes) /
                   psToSec(xpu.finishTime()) / 1e9;
        pim_gbps = static_cast<double>(bytes) /
                   psToSec(pim.finishTime()) / 1e9;
    }
    state.counters["xpu_GBps"] = xpu_gbps;
    state.counters["pim_GBps"] = pim_gbps;
}
BENCHMARK(BM_ConcurrentCoProcessing);

void
BM_FrFcfsRandom(benchmark::State &state)
{
    const HbmTiming t = hbm3Timing();
    const int n = static_cast<int>(state.range(0));
    Rng rng(5);
    double gbps = 0.0;
    for (auto _ : state) {
        PseudoChannel ch(t);
        FrFcfsController ctrl(ch);
        for (int i = 0; i < n; ++i) {
            Transaction txn;
            txn.coord.rank = static_cast<int>(rng.uniformInt(0, 1));
            txn.coord.bankGroup =
                static_cast<int>(rng.uniformInt(0, 3));
            txn.coord.bank =
                static_cast<int>(rng.uniformInt(0, 3));
            txn.coord.row = rng.uniformInt(0, 1023);
            txn.coord.column =
                static_cast<int>(rng.uniformInt(0, 31));
            ctrl.enqueue(txn);
        }
        const PicoSec end = ctrl.drain();
        gbps = static_cast<double>(n) * t.columnBytes /
               psToSec(end) / 1e9;
    }
    state.counters["sim_GBps"] = gbps;
}
BENCHMARK(BM_FrFcfsRandom)->Arg(1024)->Arg(8192);

void
BM_Calibration(benchmark::State &state)
{
    for (auto _ : state) {
        const DramCalibration cal =
            calibrateDram(hbm3Timing(), 256 * kKiB);
        benchmark::DoNotOptimize(cal);
    }
}
BENCHMARK(BM_Calibration);

} // namespace
} // namespace duplex

BENCHMARK_MAIN();
