/**
 * @file
 * Fig. 4(a) reproduction: execution-time breakdown of Mixtral and
 * GLaM on the GPU system, for decoding-only and mixed stages,
 * varying Lout and batch size with Lin = 2048.
 *
 * The paper's observation to reproduce: MoE and attention dominate
 * both stage types, with FC/communication small.
 */

#include "bench_util.hh"

#include "cluster/cluster.hh"

using namespace duplex;

namespace
{

StageShape
makeStage(int batch, std::int64_t lin, std::int64_t lout,
          bool mixed)
{
    StageShape s;
    // Steady state: contexts sit mid-generation on average.
    const std::int64_t ctx = lin + lout / 2;
    const int decodes = mixed ? batch - 1 : batch;
    for (int i = 0; i < decodes; ++i)
        s.decodeContexts.push_back(ctx);
    if (mixed)
        s.prefillLengths.push_back(lin);
    return s;
}

void
printRow(Table &t, const std::string &model, int batch,
         std::int64_t lout, const char *stage_kind,
         const StageResult &r)
{
    const double total = psToMs(r.time);
    auto frac = [&](LayerClass cls) {
        return total > 0.0 ? psToMs(r.slice(cls).time) / total : 0.0;
    };
    t.startRow();
    t.cell(model);
    t.cell(static_cast<std::int64_t>(batch));
    t.cell(lout);
    t.cell(stage_kind);
    t.cell(frac(LayerClass::Fc), 3);
    t.cell(frac(LayerClass::AttentionPrefill), 3);
    t.cell(frac(LayerClass::AttentionDecode), 3);
    t.cell(frac(LayerClass::Moe), 3);
    t.cell(frac(LayerClass::Communication), 3);
    t.cell(total, 2);
}

} // namespace

int
main()
{
    banner("Fig. 4(a): GPU time breakdown, Lin = 2048");
    Table t({"Model", "Batch", "Lout", "Stage", "FC",
             "Attn(Pre)", "Attn(Dec)", "MoE", "Comm",
             "Stage ms"});

    for (const ModelConfig &model :
         {mixtralConfig(), glamConfig()}) {
        for (int batch : {32, 64, 128}) {
            for (std::int64_t lout : {256, 1024, 4096}) {
                Cluster cluster(
                    makeClusterConfig("gpu", model));
                printRow(t, model.name, batch, lout, "decode-only",
                         cluster.executeStage(
                             makeStage(batch, 2048, lout, false)));
                printRow(t, model.name, batch, lout, "mixed",
                         cluster.executeStage(
                             makeStage(batch, 2048, lout, true)));
            }
        }
    }
    t.print();
    std::printf("\nPaper shape: MoE + attention dominate every "
                "configuration; the attention share grows with "
                "Lout and batch.\n");
    return 0;
}
