/**
 * @file
 * Availability bench: the failure-rate x routing-policy sweep —
 * what fault injection (fleet/faults.hh) does to SLO attainment,
 * goodput and availability, and how much of it a failure-aware
 * policy buys back.
 *
 * Every cell is one FleetDriver run: 4 gpu instances behind the
 * policy, one shared open-loop stream, and a seeded random fault
 * process at the row's MTBF (a quarter of the faults are straggler
 * windows, the rest fail-stop crashes with exponential repair).
 * The fault draws live on a dedicated per-instance RNG stream, so
 * every cell streams the exact same requests — the fault rate is
 * the only thing that changes down a column. Cells are independent
 * and run on the SweepRunner worker pool.
 *
 * Output discipline (same as bench_fleet): the sweep table goes to
 * stdout for the CI determinism diff; wall-clock and RSS go to
 * stderr and, with --json=PATH, into the JSON the CI perf job
 * merges into the BENCH_perf gate (faults.requests_per_sec floor;
 * see tools/check_perf.py).
 *
 *   ./bench_faults                      # the full sweep
 *   ./bench_faults --requests=48        # quick smoke run
 *   ./bench_faults --json=BENCH_faults.json
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/argparse.hh"
#include "common/rss.hh"
#include "fleet/fleet.hh"

using namespace duplex;

namespace
{

constexpr int kFleetSize = 4;
constexpr double kQpsPerInstance = 4.0;

/** The failure-rate axis: MTBF per instance in simulated seconds
 *  (0 = fault-free baseline row). */
constexpr double kMtbfSec[] = {0.0, 6.0, 2.0};

/** The correlated-failure axis: failure domains the fleet is
 *  striped across. */
constexpr int kDomainAxis[] = {2, 4};

/** Whole-domain crash rate for the correlated sweep (seconds). */
constexpr double kDomainMtbfSec = 4.0;

/** One sweep cell: a policy under a failure rate (domains > 0
 *  switches the cell to the correlated whole-domain crash
 *  process instead of independent per-instance faults). */
struct FaultCell
{
    std::string policy;
    double mtbfSec = 0.0;
    int domains = 0;

    FleetResult result;
    double attainment = 0.0;
    double goodput = 0.0;
};

FleetConfig
cellConfig(const FaultCell &cell, int requests_per_instance)
{
    FleetConfig fc;
    fc.sim.systemName = "gpu";
    fc.sim.model = mixtralConfig();
    fc.sim.maxBatch = 16;
    fc.sim.workload.meanInputLen = 256;
    fc.sim.workload.meanOutputLen = 64;
    fc.sim.workload.qps = kQpsPerInstance * kFleetSize;
    fc.sim.numRequests = requests_per_instance * kFleetSize;
    fc.sim.warmupRequests =
        defaultWarmupRequests(fc.sim.maxBatch) / kFleetSize;
    // Runaway backstop, not the run's end: the availability numbers
    // only mean something if the stream drains.
    fc.sim.maxStages = 2000000;
    fc.instances = kFleetSize;
    fc.policy = cell.policy;
    if (cell.domains > 0) {
        // Correlated sweep: whole domains crash together on the
        // per-domain fault stream; no independent instance faults,
        // so the domain process is the only noise source.
        fc.faults.numDomains = cell.domains;
        fc.faults.domainMtbfSec = kDomainMtbfSec;
        fc.faults.domainMttrSec = 0.5;
    } else {
        fc.faults.mtbfSec = cell.mtbfSec;
        fc.faults.mttrSec = 0.5;
        fc.faults.stragglerFraction = 0.25;
        fc.faults.stragglerFactor = 3.0;
    }
    fc.retry.maxAttempts = 3;
    fc.retry.backoffSec = 0.05;
    return fc;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("requests", "requests per instance", "192");
    args.addFlag("tbt-slo", "TBT SLO in ms", "40");
    args.addFlag("ttft-slo", "TTFT SLO in ms", "1500");
    args.addFlag("json",
                 "write fault-bench perf metrics to this file", "");
    args.parse(argc, argv);

    const int requests_per_instance =
        static_cast<int>(args.getInt("requests"));
    const SloSpec slo{args.getDouble("ttft-slo"),
                      args.getDouble("tbt-slo")};

    banner("Fault injection: availability x routing policy");
    std::printf("%d gpu instances, Lin 256, Lout 64, open loop at "
                "%.0f qps/instance, %d request(s)/instance, "
                "MTTR 0.5 s, 25%% stragglers, 3 retries, "
                "TTFT < %.0f ms, TBT < %.0f ms\n",
                kFleetSize, kQpsPerInstance, requests_per_instance,
                slo.t2ftMs, slo.tbtMs);

    // The full policy x failure-rate cross, every cell an
    // independent FleetDriver run on the worker pool.
    std::vector<FaultCell> cells;
    for (const std::string &policy : registeredRoutingPolicies())
        for (double mtbf : kMtbfSec)
            cells.push_back({policy, mtbf, 0, {}, 0.0, 0.0});
    // The correlated cross rides the same worker pool: every
    // policy under whole-domain crashes at each striping width.
    const std::size_t first_domain_cell = cells.size();
    for (const std::string &policy : registeredRoutingPolicies())
        for (int domains : kDomainAxis)
            cells.push_back({policy, 0.0, domains, {}, 0.0, 0.0});

    std::vector<std::function<void()>> tasks;
    tasks.reserve(cells.size());
    for (FaultCell &cell : cells)
        tasks.push_back([&cell, requests_per_instance, slo] {
            FleetDriver driver(
                cellConfig(cell, requests_per_instance));
            FleetSloAttainment attainment(slo);
            driver.addObserver(&attainment);
            cell.result = driver.run();
            cell.attainment = attainment.attainment().attainment();
            cell.goodput =
                attainment.attainment().goodputTokensPerSec();
        });

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner().runTasks(tasks);
    const double wall_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // ---- deterministic sweep tables (stdout, diffed by CI) -----
    Table t({"Policy", "MTBF s", "avail", "crashes", "straggle",
             "dropped", "SLO att", "goodput/s", "retired"});
    std::int64_t total_retired = 0;
    for (std::size_t i = 0; i < first_domain_cell; ++i) {
        const FaultCell &cell = cells[i];
        total_retired += cell.result.requestsRetired;
        t.startRow();
        t.cell(cell.policy);
        t.cell(cell.mtbfSec, 1);
        t.cell(cell.result.availability(), 4);
        t.cell(static_cast<double>(cell.result.crashes), 0);
        t.cell(static_cast<double>(cell.result.degradeWindows), 0);
        t.cell(static_cast<double>(cell.result.requestsDropped), 0);
        t.cell(cell.attainment, 3);
        t.cell(cell.goodput, 0);
        t.cell(static_cast<double>(cell.result.requestsRetired), 0);
    }
    t.print();
    std::printf("MTBF 0 = fault-free baseline. Goodput counts only "
                "SLO-attaining requests; dropped requests exhausted "
                "their retry budget.\n");

    // Correlated failure domains: whole racks crash together, so
    // what matters is the worst DOMAIN's request-weighted
    // availability — the metric domain-spread routing is built to
    // defend. "dom served" lists each domain's served fraction.
    std::printf("\nCorrelated domain crashes: domain MTBF %.0f s, "
                "repair 0.5 s, %d instances striped across D "
                "domains\n",
                kDomainMtbfSec, kFleetSize);
    Table dt({"Policy", "domains", "avail", "worst-dom",
              "dom served", "crashes", "dropped", "SLO att",
              "retired"});
    for (std::size_t i = first_domain_cell; i < cells.size(); ++i) {
        const FaultCell &cell = cells[i];
        total_retired += cell.result.requestsRetired;
        std::string served;
        for (const DomainAvailability &d : cell.result.perDomain) {
            if (!served.empty())
                served += "/";
            served += formatDouble(d.served(), 3);
        }
        dt.startRow();
        dt.cell(cell.policy);
        dt.cell(static_cast<double>(cell.domains), 0);
        dt.cell(cell.result.availability(), 4);
        dt.cell(cell.result.worstDomainAvailability(), 4);
        dt.cell(served);
        dt.cell(static_cast<double>(cell.result.crashes), 0);
        dt.cell(static_cast<double>(cell.result.requestsDropped),
                0);
        dt.cell(cell.attainment, 3);
        dt.cell(static_cast<double>(cell.result.requestsRetired),
                0);
    }
    dt.print();
    std::printf("worst-dom = min over domains of the "
                "request-weighted served fraction "
                "(1 - lost/routed).\n");

    // ---- perf numbers (stderr + JSON; never in the diffed out) -
    const double rss_mb = peakRssMb();
    const double req_per_sec =
        wall_sec > 0.0 ? total_retired / wall_sec : 0.0;
    std::fprintf(stderr,
                 "fault sweep: %zu run(s), %lld requests retired, "
                 "%.2f s wall, %.0f requests/s, peak RSS %.1f MB\n",
                 cells.size(),
                 static_cast<long long>(total_retired), wall_sec,
                 req_per_sec, rss_mb);

    const std::string json_path = args.getString("json");
    if (!json_path.empty()) {
        std::FILE *json = std::fopen(json_path.c_str(), "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(json,
                     "{\n"
                     "  \"schema\": 1,\n"
                     "  \"faults\": {\n"
                     "    \"runs\": %zu,\n"
                     "    \"requests_retired\": %lld,\n"
                     "    \"wall_sec\": %.3f,\n"
                     "    \"requests_per_sec\": %.3f,\n"
                     "    \"peak_rss_mb\": %.3f\n"
                     "  }\n"
                     "}\n",
                     cells.size(),
                     static_cast<long long>(total_retired),
                     wall_sec, req_per_sec, rss_mb);
        std::fclose(json);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
