/**
 * @file
 * Shared helpers for the figure-reproduction benches: standard
 * sweep configurations driven through the SimulationEngine, and
 * result formatting.
 *
 * Systems are referred to by registry id ("gpu", "duplex-pe-et",
 * ...); use systemLabel() for table cells.
 */

#ifndef DUPLEX_BENCH_BENCH_UTIL_HH
#define DUPLEX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"

namespace duplex
{

/** Print a bench banner naming the paper artifact reproduced. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Display name of a registered system ("duplex-pe" -> "Duplex+PE"). */
inline const std::string &
systemLabel(const std::string &id)
{
    return SystemRegistry::instance().displayName(id);
}

/** The benches' standard sweep configuration. */
inline SimConfig
sweepConfig(const std::string &system, const ModelConfig &model,
            int batch, std::int64_t lin, std::int64_t lout,
            int num_requests, std::int64_t max_stages)
{
    SimConfig c;
    c.systemName = system;
    c.model = model;
    c.maxBatch = batch;
    c.workload.meanInputLen = lin;
    c.workload.meanOutputLen = lout;
    c.numRequests = num_requests;
    c.warmupRequests = defaultWarmupRequests(batch);
    c.maxStages = max_stages;
    return c;
}

/** Throughput-sweep simulation: enough stages for a steady state. */
inline SimResult
runThroughput(const std::string &system, const ModelConfig &model,
              int batch, std::int64_t lin, std::int64_t lout,
              std::int64_t max_stages = 300)
{
    SimulationEngine engine(sweepConfig(system, model, batch, lin,
                                        lout, 4 * batch,
                                        max_stages));
    return engine.run();
}

/** Latency-sweep simulation: runs until the requests complete. */
inline SimResult
runLatency(const std::string &system, const ModelConfig &model,
           int batch, std::int64_t lin, std::int64_t lout,
           int num_requests, std::int64_t max_stages = 20000)
{
    SimulationEngine engine(sweepConfig(system, model, batch, lin,
                                        lout, num_requests,
                                        max_stages));
    return engine.run();
}

/** The (Lin, Lout) sweep each model uses in Figs. 11/15. */
inline std::vector<std::pair<std::int64_t, std::int64_t>>
lengthSweep(const ModelConfig &model)
{
    if (model.name == "GLaM")
        return {{512, 512}, {1024, 1024}, {2048, 2048}};
    return {{256, 256}, {1024, 1024}, {4096, 4096}};
}

/** Add the five standard latency cells (see LatencySummary). */
inline void
latencyCells(Table &t, const ServingMetrics &m)
{
    const LatencySummary s = summarizeLatency(m);
    t.cell(s.tbtP50, 2);
    t.cell(s.tbtP90, 2);
    t.cell(s.tbtP99, 2);
    t.cell(s.t2ftP50, 1);
    t.cell(s.e2eP50, 1);
}

} // namespace duplex

#endif // DUPLEX_BENCH_BENCH_UTIL_HH
