/**
 * @file
 * Shared helpers for the figure-reproduction benches: standard
 * sweep configurations driven through the SimulationEngine, and
 * result formatting.
 *
 * Systems are referred to by registry id ("gpu", "duplex-pe-et",
 * ...); use systemLabel() for table cells.
 */

#ifndef DUPLEX_BENCH_BENCH_UTIL_HH
#define DUPLEX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"
#include "sim/sweep.hh"

namespace duplex
{

/** Print a bench banner naming the paper artifact reproduced. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Display name of a registered system ("duplex-pe" -> "Duplex+PE"). */
inline const std::string &
systemLabel(const std::string &id)
{
    return SystemRegistry::instance().displayName(id);
}

/** The benches' standard sweep configuration. */
inline SimConfig
sweepConfig(const std::string &system, const ModelConfig &model,
            int batch, std::int64_t lin, std::int64_t lout,
            int num_requests, std::int64_t max_stages)
{
    SimConfig c;
    c.systemName = system;
    c.model = model;
    c.maxBatch = batch;
    c.workload.meanInputLen = lin;
    c.workload.meanOutputLen = lout;
    c.numRequests = num_requests;
    c.warmupRequests = defaultWarmupRequests(batch);
    c.maxStages = max_stages;
    return c;
}

/** Throughput-sweep configuration: enough stages for steady state. */
inline SimConfig
throughputConfig(const std::string &system, const ModelConfig &model,
                 int batch, std::int64_t lin, std::int64_t lout,
                 std::int64_t max_stages = 300)
{
    return sweepConfig(system, model, batch, lin, lout, 4 * batch,
                       max_stages);
}

/** Latency-sweep configuration: runs until the requests complete. */
inline SimConfig
latencyConfig(const std::string &system, const ModelConfig &model,
              int batch, std::int64_t lin, std::int64_t lout,
              int num_requests, std::int64_t max_stages = 20000)
{
    return sweepConfig(system, model, batch, lin, lout, num_requests,
                       max_stages);
}

/**
 * Run a batch of independent configurations on the SweepRunner's
 * worker pool; results come back in input order, so benches build
 * their whole figure sweep up front and format afterwards.
 */
inline std::vector<SimResult>
runSweep(const std::vector<SimConfig> &configs)
{
    return SweepRunner().run(configs);
}

/** Throughput-sweep simulation: enough stages for a steady state. */
inline SimResult
runThroughput(const std::string &system, const ModelConfig &model,
              int batch, std::int64_t lin, std::int64_t lout,
              std::int64_t max_stages = 300)
{
    SimulationEngine engine(
        throughputConfig(system, model, batch, lin, lout,
                         max_stages));
    return engine.run();
}

/** Latency-sweep simulation: runs until the requests complete. */
inline SimResult
runLatency(const std::string &system, const ModelConfig &model,
           int batch, std::int64_t lin, std::int64_t lout,
           int num_requests, std::int64_t max_stages = 20000)
{
    SimulationEngine engine(latencyConfig(system, model, batch, lin,
                                          lout, num_requests,
                                          max_stages));
    return engine.run();
}

/** The (Lin, Lout) sweep each model uses in Figs. 11/15. */
inline std::vector<std::pair<std::int64_t, std::int64_t>>
lengthSweep(const ModelConfig &model)
{
    if (model.name == "GLaM")
        return {{512, 512}, {1024, 1024}, {2048, 2048}};
    return {{256, 256}, {1024, 1024}, {4096, 4096}};
}

/** The five systems compared in Figs. 11/12. */
inline const std::vector<std::string> &
comparedSystems()
{
    static const std::vector<std::string> systems = {
        "gpu", "gpu-2x", "duplex", "duplex-pe", "duplex-pe-et"};
    return systems;
}

/** The Fig. 11 models and batch sizes. */
inline const std::vector<ModelConfig> &
fig11Models()
{
    static const std::vector<ModelConfig> models = {
        mixtralConfig(), glamConfig(), grok1Config()};
    return models;
}

constexpr int kFig11Batches[] = {32, 64, 128};

/** The Fig. 12 sweep lengths (Lin = Lout) and batch/request sizes. */
constexpr std::int64_t kFig12Lengths[] = {512, 1024, 2048};
constexpr int kFig12Batch = 64;
constexpr int kFig12Requests = 160;
constexpr std::int64_t kFig12MaxStages = 8000;

/**
 * The full Fig. 11 throughput sweep, in table order (innermost:
 * comparedSystems()). Shared by the figure bench and bench_perf so
 * the tracked perf numbers always time the figure's workload.
 */
inline std::vector<SimConfig>
fig11SweepConfigs()
{
    std::vector<SimConfig> configs;
    for (const ModelConfig &model : fig11Models())
        for (int batch : kFig11Batches)
            for (const auto &[lin, lout] : lengthSweep(model))
                for (const std::string &system : comparedSystems())
                    configs.push_back(throughputConfig(
                        system, model, batch, lin, lout));
    return configs;
}

/** The full Fig. 12 GLaM latency sweep, in table order. */
inline std::vector<SimConfig>
fig12SweepConfigs()
{
    std::vector<SimConfig> configs;
    for (std::int64_t len : kFig12Lengths)
        for (const std::string &system : comparedSystems())
            configs.push_back(latencyConfig(
                system, glamConfig(), kFig12Batch, len, len,
                kFig12Requests, kFig12MaxStages));
    return configs;
}

/** Add the five standard latency cells (see LatencySummary). */
inline void
latencyCells(Table &t, const ServingMetrics &m)
{
    const LatencySummary s = summarizeLatency(m);
    t.cell(s.tbtP50, 2);
    t.cell(s.tbtP90, 2);
    t.cell(s.tbtP99, 2);
    t.cell(s.t2ftP50, 1);
    t.cell(s.e2eP50, 1);
}

} // namespace duplex

#endif // DUPLEX_BENCH_BENCH_UTIL_HH
