/**
 * @file
 * Shared helpers for the figure-reproduction benches: standard
 * sweep configurations and result formatting.
 */

#ifndef DUPLEX_BENCH_BENCH_UTIL_HH
#define DUPLEX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"

namespace duplex
{

/** Print a bench banner naming the paper artifact reproduced. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Throughput-sweep simulation: enough stages for a steady state. */
inline SimResult
runThroughput(SystemKind system, const ModelConfig &model, int batch,
              std::int64_t lin, std::int64_t lout,
              std::int64_t max_stages = 300)
{
    SimConfig c;
    c.system = system;
    c.model = model;
    c.maxBatch = batch;
    c.workload.meanInputLen = lin;
    c.workload.meanOutputLen = lout;
    c.numRequests = 4 * batch;
    c.warmupRequests = batch / 2;
    c.maxStages = max_stages;
    return runSimulation(c);
}

/** Latency-sweep simulation: runs until the requests complete. */
inline SimResult
runLatency(SystemKind system, const ModelConfig &model, int batch,
           std::int64_t lin, std::int64_t lout, int num_requests,
           std::int64_t max_stages = 20000)
{
    SimConfig c;
    c.system = system;
    c.model = model;
    c.maxBatch = batch;
    c.workload.meanInputLen = lin;
    c.workload.meanOutputLen = lout;
    c.numRequests = num_requests;
    c.warmupRequests = batch / 2;
    c.maxStages = max_stages;
    return runSimulation(c);
}

/** The (Lin, Lout) sweep each model uses in Figs. 11/15. */
inline std::vector<std::pair<std::int64_t, std::int64_t>>
lengthSweep(const ModelConfig &model)
{
    if (model.name == "GLaM")
        return {{512, 512}, {1024, 1024}, {2048, 2048}};
    return {{256, 256}, {1024, 1024}, {4096, 4096}};
}

} // namespace duplex

#endif // DUPLEX_BENCH_BENCH_UTIL_HH
