/**
 * @file
 * Area-model tests against the published Section VII-E numbers.
 */

#include <gtest/gtest.h>

#include "area/area.hh"

namespace duplex
{
namespace
{

TEST(AreaModel, LogicPimTotalMatchesPaper)
{
    AreaModel a;
    const AreaReport r = a.logicPim();
    EXPECT_NEAR(r.totalMm2(), 17.80, 0.05);
    EXPECT_NEAR(r.computeMm2, 3.02, 1e-9);
    EXPECT_NEAR(r.bufferMm2, 2.26, 1e-9);
    EXPECT_NEAR(r.softmaxMm2, 1.64, 1e-9);
    EXPECT_NEAR(r.tsvMm2, 10.89, 1e-9);
}

TEST(AreaModel, LogicDieFractionMatchesPaper)
{
    AreaModel a;
    // 17.80 / 121 = 14.71%.
    EXPECT_NEAR(a.logicPimDieFraction(), 0.1471, 0.001);
}

TEST(AreaModel, LogicPimPeakFlops)
{
    AreaModel a;
    // 32 modules x 512 MACs x 650 MHz x 2 = 21.3 TFLOPS per stack.
    EXPECT_NEAR(a.logicPimPeakFlops(), 21.3e12, 0.1e12);
}

TEST(AreaModel, BankPimLargerComputeForSameFlops)
{
    AreaModel a;
    const double flops = a.logicPimPeakFlops();
    const AreaReport bank = a.bankPim(flops);
    // Same FLOPS in the DRAM process costs ~10x compute area.
    EXPECT_NEAR(bank.computeMm2,
                a.logicPim().computeMm2 * a.params().dramLogicFactor,
                0.01);
    EXPECT_EQ(bank.tsvMm2, 0.0);
}

TEST(AreaModel, BankGroupPimWorstTotal)
{
    AreaModel a;
    // BankGroup-PIM carries Logic-PIM's full compute and buffers in
    // the DRAM process: the largest added area (Fig. 8's EDAP).
    const double bg = a.bankGroupPim().totalMm2();
    EXPECT_GT(bg, a.logicPim().totalMm2());
    // Bank-PIM's published compute: 16 x stack bandwidth at
    // 1 Op/B ~ 10.9 TFLOPS per stack.
    EXPECT_GT(bg, a.bankPim(10.9e12).totalMm2());
}

TEST(AreaModel, PriorWorkOverheadRange)
{
    AreaModel a;
    // Commercial in-DRAM PIM overheads run 20-27% of the die
    // (Section IV-B); our Bank-PIM model should land in that
    // neighbourhood for its ~10.9 TFLOPS per stack.
    const AreaReport bank = a.bankPim(10.9e12);
    const double fraction =
        bank.totalMm2() / a.params().logicDieMm2;
    EXPECT_GT(fraction, 0.10);
    EXPECT_LT(fraction, 0.30);
}

TEST(AreaModel, Mm2PerMacSane)
{
    AreaModel a;
    // 3.02 mm^2 / 16384 MACs ~ 184 um^2 per MAC with buffers.
    EXPECT_NEAR(a.mm2PerMacLogic() * 1e6, 184.0, 2.0);
}

TEST(AreaModel, BankPimScalesWithFlops)
{
    AreaModel a;
    const AreaReport small = a.bankPim(5e12);
    const AreaReport big = a.bankPim(10e12);
    EXPECT_NEAR(big.computeMm2, 2.0 * small.computeMm2, 1e-9);
}

} // namespace
} // namespace duplex
