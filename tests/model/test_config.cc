/**
 * @file
 * Table I verification: every preset must reproduce its published
 * architecture shape and land near its published parameter count.
 */

#include <gtest/gtest.h>

#include "model/config.hh"

namespace duplex
{
namespace
{

struct TableRow
{
    const char *name;
    double paramsB;
    int layers;
    int hidden;
    int interm;
    int heads;
    int degGrp;
    int numExperts;
    int topK;
};

class TableISweep : public ::testing::TestWithParam<TableRow>
{
};

TEST_P(TableISweep, MatchesPublishedShape)
{
    const TableRow row = GetParam();
    const ModelConfig m = modelByName(row.name);
    EXPECT_EQ(m.numLayers, row.layers);
    EXPECT_EQ(m.hidden, row.hidden);
    EXPECT_EQ(m.intermediate, row.interm);
    EXPECT_EQ(m.numHeads, row.heads);
    EXPECT_EQ(m.degGrp, row.degGrp);
    EXPECT_EQ(m.numExperts, row.numExperts);
    EXPECT_EQ(m.topK, row.topK);
}

TEST_P(TableISweep, ParameterCountWithinTwoPercent)
{
    const TableRow row = GetParam();
    const ModelConfig m = modelByName(row.name);
    EXPECT_NEAR(m.totalParams() / 1e9, row.paramsB,
                row.paramsB * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, TableISweep,
    ::testing::Values(
        TableRow{"mixtral", 47.0, 32, 4096, 14336, 32, 4, 8, 2},
        TableRow{"glam", 143.0, 32, 4096, 16384, 32, 1, 64, 2},
        TableRow{"grok1", 314.0, 64, 6144, 32768, 48, 6, 8, 2},
        TableRow{"opt", 66.0, 64, 9216, 36864, 72, 1, 0, 0},
        TableRow{"llama3", 70.0, 80, 8192, 28672, 64, 8, 0, 0}));

TEST(ModelConfig, HeadGeometry)
{
    const ModelConfig m = mixtralConfig();
    EXPECT_EQ(m.headDim(), 128);
    EXPECT_EQ(m.kvHeads(), 8);
}

TEST(ModelConfig, GlamAlternatesMoeLayers)
{
    const ModelConfig m = glamConfig();
    EXPECT_TRUE(m.isMoeLayer(0));
    EXPECT_FALSE(m.isMoeLayer(1));
    EXPECT_TRUE(m.isMoeLayer(2));
    EXPECT_EQ(m.numMoeLayers(), 16);
}

TEST(ModelConfig, MixtralAllLayersMoe)
{
    const ModelConfig m = mixtralConfig();
    EXPECT_EQ(m.numMoeLayers(), m.numLayers);
}

TEST(ModelConfig, DenseModelsHaveNoMoe)
{
    EXPECT_EQ(optConfig().numMoeLayers(), 0);
    EXPECT_EQ(llama3Config().numMoeLayers(), 0);
    EXPECT_FALSE(optConfig().isMoeLayer(0));
}

TEST(ModelConfig, FfnFcCount)
{
    EXPECT_EQ(mixtralConfig().ffnFcCount(), 3);
    EXPECT_EQ(glamConfig().ffnFcCount(), 2);
    EXPECT_EQ(optConfig().ffnFcCount(), 2);
    EXPECT_EQ(llama3Config().ffnFcCount(), 3);
}

TEST(ModelConfig, KvBytesPerToken)
{
    // Mixtral: 32 layers x 2 x 8 kv-heads x 128 dims x 2 B = 128 KiB.
    EXPECT_EQ(mixtralConfig().kvBytesPerToken(), 128u * 1024);
    // GQA shrinks KV by degGrp: OPT (MHA) pays heads x headDim.
    EXPECT_EQ(optConfig().kvBytesPerToken(),
              64ull * 2 * 72 * 128 * 2);
}

TEST(ModelConfig, GqaReducesKv)
{
    // Same geometry except degGrp: KV shrinks by the group degree.
    ModelConfig mha = mixtralConfig();
    mha.degGrp = 1;
    EXPECT_EQ(mha.kvBytesPerToken(),
              mixtralConfig().kvBytesPerToken() * 4);
}

TEST(ModelConfig, WeightBytesAreFp16)
{
    const ModelConfig m = mixtralConfig();
    EXPECT_EQ(m.weightBytes(),
              static_cast<Bytes>(m.totalParams()) * 2);
}

TEST(ModelConfig, LookupIsCaseInsensitive)
{
    EXPECT_EQ(modelByName("MIXTRAL").name, "Mixtral");
    EXPECT_EQ(modelByName("Grok").name, "Grok1");
}

} // namespace
} // namespace duplex
