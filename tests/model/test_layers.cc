/**
 * @file
 * Operator cost-builder tests: the Section III-A arithmetic
 * intensity analysis, reproduced as assertions.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/layers.hh"

namespace duplex
{
namespace
{

/** Random stage with up to @p max_batch sequences of each kind. */
StageShape
randomStage(Rng &rng, int max_batch, std::int64_t max_len)
{
    StageShape s;
    const auto n_decode =
        static_cast<int>(rng.next() % (max_batch + 1));
    const auto n_prefill = static_cast<int>(rng.next() % 9);
    for (int i = 0; i < n_decode; ++i)
        s.decodeContexts.push_back(
            1 + static_cast<std::int64_t>(rng.next() % max_len));
    for (int i = 0; i < n_prefill; ++i)
        s.prefillLengths.push_back(
            1 + static_cast<std::int64_t>(rng.next() % max_len));
    return s;
}

TEST(StageShape, TokenCounts)
{
    StageShape s;
    s.decodeContexts = {100, 200, 300};
    s.prefillLengths = {512, 1024};
    EXPECT_EQ(s.decodeTokens(), 3);
    EXPECT_EQ(s.prefillTokens(), 1536);
    EXPECT_EQ(s.totalTokens(), 1539);
    EXPECT_TRUE(s.isMixed());
}

TEST(StageShape, DecodingOnly)
{
    StageShape s;
    s.decodeContexts = {100};
    EXPECT_FALSE(s.isMixed());
}

TEST(LayerCosts, QkvShape)
{
    LayerCosts c(mixtralConfig());
    // QKV: hidden x (hidden + 2 * kv) = 4096 x (4096 + 2048).
    const OpCost qkv = c.qkv(1);
    GemmShape expect{1, 4096, 4096 + 2048};
    EXPECT_DOUBLE_EQ(qkv.flops, expect.flops());
    EXPECT_EQ(qkv.bytes, expect.trafficBytes());
}

TEST(LayerCosts, ProjectionShape)
{
    LayerCosts c(mixtralConfig());
    const OpCost p = c.projection(4);
    GemmShape expect{4, 4096, 4096};
    EXPECT_DOUBLE_EQ(p.flops, expect.flops());
}

TEST(LayerCosts, GatedFfnHasThreeGemms)
{
    LayerCosts mixtral(mixtralConfig());
    LayerCosts glam(glamConfig());
    // Mixtral (gated, interm 14336) vs hypothetical 2-FC version.
    const double gated = mixtral.denseFfn(1).flops;
    // gate+up+down = 3 GEMMs of hidden x interm.
    EXPECT_GT(gated, 3.0 * 2.0 * 4096 * 14336 * 0.99);
    // GLaM (2-FC, interm 16384).
    const double plain = glam.denseFfn(1).flops;
    EXPECT_LT(plain, 2.0 * 2.0 * 4096 * 16384 * 1.01);
}

TEST(LayerCosts, ExpertZeroTokensIsFree)
{
    LayerCosts c(mixtralConfig());
    const OpCost e = c.expertFfn(0);
    EXPECT_DOUBLE_EQ(e.flops, 0.0);
    EXPECT_EQ(e.bytes, 0u);
}

TEST(LayerCosts, ExpertCostAffineInTokens)
{
    LayerCosts c(mixtralConfig());
    const OpCost c1 = c.expertFfn(1);
    const OpCost c2 = c.expertFfn(2);
    const OpCost c3 = c.expertFfn(3);
    EXPECT_NEAR(c3.flops - c2.flops, c2.flops - c1.flops, 1.0);
    EXPECT_EQ(c3.bytes - c2.bytes, c2.bytes - c1.bytes);
}

TEST(LayerCosts, DecodeAttentionOpbNearDegGrp)
{
    // Section III-A: GQA attention Op/B is 4-8; MHA is ~1.
    StageShape s;
    s.decodeContexts = {2048};

    LayerCosts mixtral(mixtralConfig()); // degGrp 4
    const double opb4 = mixtral.attentionDecode(s).opPerByte();
    EXPECT_GT(opb4, 2.5);
    EXPECT_LT(opb4, 4.5);

    LayerCosts llama(llama3Config()); // degGrp 8
    const double opb8 = llama.attentionDecode(s).opPerByte();
    EXPECT_GT(opb8, 5.0);
    EXPECT_LT(opb8, 8.5);

    LayerCosts opt(optConfig()); // MHA
    const double opb1 = opt.attentionDecode(s).opPerByte();
    EXPECT_GT(opb1, 0.7);
    EXPECT_LT(opb1, 1.5);
}

TEST(LayerCosts, DecodeAttentionScalesWithContext)
{
    LayerCosts c(mixtralConfig());
    StageShape small;
    small.decodeContexts = {512};
    StageShape large;
    large.decodeContexts = {2048};
    EXPECT_NEAR(c.attentionDecode(large).flops /
                    c.attentionDecode(small).flops,
                4.0, 0.05);
}

TEST(LayerCosts, DecodeAttentionAdditiveOverSequences)
{
    LayerCosts c(mixtralConfig());
    StageShape one;
    one.decodeContexts = {1000};
    StageShape two;
    two.decodeContexts = {1000, 1000};
    EXPECT_NEAR(c.attentionDecode(two).flops,
                2.0 * c.attentionDecode(one).flops, 1.0);
}

TEST(LayerCosts, PrefillAttentionQuadratic)
{
    LayerCosts c(mixtralConfig());
    StageShape s1;
    s1.prefillLengths = {1024};
    StageShape s2;
    s2.prefillLengths = {2048};
    const double ratio = c.attentionPrefill(s2).flops /
                         c.attentionPrefill(s1).flops;
    EXPECT_GT(ratio, 3.8);
    EXPECT_LT(ratio, 4.2);
}

TEST(LayerCosts, PrefillAttentionHighOpb)
{
    LayerCosts c(mixtralConfig());
    StageShape s;
    s.prefillLengths = {2048};
    // Prefill attention is strongly compute-rich (paper: mixed
    // stages suit the xPU).
    EXPECT_GT(c.attentionPrefill(s).opPerByte(), 100.0);
}

TEST(LayerCosts, GateIsTiny)
{
    LayerCosts c(glamConfig());
    EXPECT_LT(c.gate(64).flops, c.expertFfn(1).flops);
}

TEST(LayerCosts, LmHeadUsesVocab)
{
    LayerCosts c(llama3Config());
    GemmShape expect{1, 8192, 128256};
    EXPECT_DOUBLE_EQ(c.lmHead(1).flops, expect.flops());
}

TEST(LayerCosts, ScaledHalvesEverything)
{
    LayerCosts c(mixtralConfig());
    const OpCost full = c.qkv(8);
    const OpCost half = full.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.flops, full.flops / 2.0);
    EXPECT_EQ(half.bytes, full.bytes / 2);
}

TEST(StageAggregates, MatchesVectorRecomputation)
{
    StageShape s;
    s.decodeContexts = {100, 200, 300};
    s.prefillLengths = {512, 1024};
    const StageAggregates agg = aggregatesOf(s);
    EXPECT_EQ(agg.numDecode, 3);
    EXPECT_EQ(agg.contextSum, 600);
    EXPECT_EQ(agg.numPrefill, 2);
    EXPECT_EQ(agg.prefillSum, 1536);
    EXPECT_EQ(agg.prefillSqSum, 512 * 512 + 1024 * 1024);
    EXPECT_EQ(agg.totalTokens(), s.totalTokens());
    EXPECT_EQ(agg.contextTokens(), s.contextTokens());
}

TEST(StageAggregates, AddRemoveRoundTrip)
{
    StageAggregates agg;
    agg.addDecode(100);
    agg.addDecode(250);
    agg.removeDecode(100);
    StageAggregates expect;
    expect.addDecode(250);
    EXPECT_EQ(agg, expect);
}

TEST(StageShape, PublishedAggregatesShortCircuitTokenCounts)
{
    StageShape s;
    s.decodeContexts = {100, 200};
    s.prefillLengths = {64};
    s.agg = aggregatesOf(s);
    s.aggValid = true;
    EXPECT_EQ(s.totalTokens(), 66);
    EXPECT_EQ(s.contextTokens(), 364);
    EXPECT_EQ(s.aggregates(), aggregatesOf(s));
}

// The closed-form O(1) attention costs must reproduce the retained
// per-context reference loops exactly: every per-sequence term is an
// integer-valued double far below 2^53, so reassociating the sums is
// exact and the equality below is bit-for-bit, not approximate.
TEST(LayerCosts, ClosedFormDecodeMatchesReferenceProperty)
{
    Rng rng(2024);
    for (const ModelConfig &model :
         {mixtralConfig(), llama3Config(), optConfig()}) {
        LayerCosts c(model);
        for (int trial = 0; trial < 50; ++trial) {
            const StageShape s = randomStage(rng, 256, 8192);
            const OpCost ref = c.attentionDecodeReference(s);
            const OpCost fast = c.attentionDecode(aggregatesOf(s));
            EXPECT_EQ(fast.flops, ref.flops);
            EXPECT_EQ(fast.bytes, ref.bytes);
        }
    }
}

TEST(LayerCosts, ClosedFormPrefillMatchesReferenceProperty)
{
    Rng rng(7777);
    for (const ModelConfig &model :
         {mixtralConfig(), glamConfig(), grok1Config()}) {
        LayerCosts c(model);
        for (int trial = 0; trial < 50; ++trial) {
            const StageShape s = randomStage(rng, 256, 8192);
            const OpCost ref = c.attentionPrefillReference(s);
            const OpCost fast = c.attentionPrefill(aggregatesOf(s));
            EXPECT_EQ(fast.flops, ref.flops);
            EXPECT_EQ(fast.bytes, ref.bytes);
        }
    }
}

TEST(LayerCosts, ClosedFormMatchesReferenceAtBatch256)
{
    // The acceptance bound from the issue: batch sizes up to 256.
    LayerCosts c(mixtralConfig());
    StageShape s;
    for (int i = 0; i < 256; ++i)
        s.decodeContexts.push_back(17 + 31 * i);
    for (int i = 0; i < 8; ++i)
        s.prefillLengths.push_back(4096 + i);
    const OpCost dec_ref = c.attentionDecodeReference(s);
    const OpCost dec = c.attentionDecode(s);
    EXPECT_EQ(dec.flops, dec_ref.flops);
    EXPECT_EQ(dec.bytes, dec_ref.bytes);
    const OpCost pre_ref = c.attentionPrefillReference(s);
    const OpCost pre = c.attentionPrefill(s);
    EXPECT_EQ(pre.flops, pre_ref.flops);
    EXPECT_EQ(pre.bytes, pre_ref.bytes);
}

TEST(LayerClassNames, AllNamed)
{
    EXPECT_STREQ(layerClassName(LayerClass::Fc), "FC");
    EXPECT_STREQ(layerClassName(LayerClass::Moe), "MoE");
    EXPECT_STREQ(layerClassName(LayerClass::AttentionPrefill),
                 "Attention(Prefill)");
    EXPECT_STREQ(layerClassName(LayerClass::AttentionDecode),
                 "Attention(Decoding)");
    EXPECT_STREQ(layerClassName(LayerClass::Communication),
                 "Communication");
}

} // namespace
} // namespace duplex
