/**
 * @file
 * KV budget tests: the capacity effects behind Figs. 5(c) and 16.
 */

#include <gtest/gtest.h>

#include "model/kv.hh"

namespace duplex
{
namespace
{

TEST(KvBudget, BasicCapacity)
{
    KvBudget b;
    b.deviceCapacity = 80ull * kGiB;
    b.numDevices = 4;
    b.weightBytesTotal = mixtralConfig().weightBytes();
    b.reservedBytes = 1 * kGiB;
    const ModelConfig m = mixtralConfig();
    // Mixtral: 93 GB weights leave well over 200 GB for KV.
    EXPECT_GT(b.kvCapacityBytes(), 200ull * kGiB);
    EXPECT_GT(b.maxKvTokens(m), 1'500'000);
}

TEST(KvBudget, WeightsExceedCapacityMeansZero)
{
    KvBudget b;
    b.deviceCapacity = 80ull * kGiB;
    b.numDevices = 1;
    b.weightBytesTotal = 100ull * kGiB;
    EXPECT_EQ(b.kvCapacityBytes(), 0u);
    EXPECT_EQ(b.maxKvTokens(mixtralConfig()), 0);
}

TEST(KvBudget, MaxBatchDividesTokens)
{
    KvBudget b;
    b.deviceCapacity = 80ull * kGiB;
    b.numDevices = 4;
    b.weightBytesTotal = mixtralConfig().weightBytes();
    const auto tokens = b.maxKvTokens(mixtralConfig());
    EXPECT_EQ(b.maxBatch(mixtralConfig(), 4096), tokens / 4096);
}

TEST(KvBudget, DuplicationHalvesKvRoom)
{
    // The split system stores the weights twice (Fig. 16).
    const ModelConfig m = mixtralConfig();
    KvBudget unified;
    unified.deviceCapacity = 80ull * kGiB;
    unified.numDevices = 4;
    unified.weightBytesTotal = m.weightBytes();

    KvBudget split_decode_half;
    split_decode_half.deviceCapacity = 80ull * kGiB;
    split_decode_half.numDevices = 2;
    split_decode_half.weightBytesTotal = m.weightBytes();

    EXPECT_LT(split_decode_half.maxKvTokens(m),
              unified.maxKvTokens(m) / 2);
}

TEST(KvBudget, ReservedBytesCharged)
{
    KvBudget a;
    a.deviceCapacity = 10ull * kGiB;
    a.numDevices = 2;
    a.weightBytesTotal = 0;
    a.reservedBytes = 1 * kGiB;
    KvBudget b = a;
    b.reservedBytes = 2 * kGiB;
    EXPECT_EQ(a.kvCapacityBytes() - b.kvCapacityBytes(), 2 * kGiB);
}

} // namespace
} // namespace duplex
