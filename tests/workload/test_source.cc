/**
 * @file
 * WorkloadSource tests: the synthetic source's bit-identical
 * RequestGenerator wrap (the golden RNG-stream contract every
 * engine/split/figure pin rests on), trace replay, the bursty and
 * diurnal arrival processes, scenario mixes, and the lookahead
 * contract (peekArrival never perturbs the stream).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/registry.hh"
#include "workload/source.hh"

namespace duplex
{
namespace
{

void
expectSameRequest(const Request &a, const Request &b)
{
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.inputLen, b.inputLen);
    EXPECT_EQ(a.outputLen, b.outputLen);
    EXPECT_EQ(a.arrival, b.arrival);
}

TEST(WorkloadSource, SyntheticMatchesRequestGeneratorExactly)
{
    // The default source must reproduce the pre-registry draw
    // stream bit-for-bit — every golden (engine, split, figure
    // benches) depends on it. Closed and open loop.
    for (double qps : {0.0, 3.0}) {
        WorkloadSpec spec;
        spec.meanInputLen = 640;
        spec.meanOutputLen = 96;
        spec.qps = qps;
        RequestGenerator gen(spec);
        const std::unique_ptr<WorkloadSource> source =
            makeWorkload("synthetic", spec);
        EXPECT_EQ(source->openLoop(), qps > 0.0);
        for (int i = 0; i < 256; ++i)
            expectSameRequest(source->next(), gen.next());
    }
}

TEST(WorkloadSource, PeekArrivalDoesNotPerturbTheStream)
{
    WorkloadSpec spec;
    spec.qps = 5.0;
    RequestGenerator gen(spec);
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload("synthetic", spec);
    for (int i = 0; i < 64; ++i) {
        const Request expected = gen.next();
        // Peeking (repeatedly) buffers one draw, nothing more.
        EXPECT_EQ(source->peekArrival(), expected.arrival);
        EXPECT_EQ(source->peekArrival(), expected.arrival);
        expectSameRequest(source->next(), expected);
    }
}

TEST(WorkloadSource, SyntheticIsUnbounded)
{
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload("synthetic");
    EXPECT_EQ(source->remaining(), WorkloadSource::kUnbounded);
    source->peekArrival(); // buffering must not break "unbounded"
    EXPECT_EQ(source->remaining(), WorkloadSource::kUnbounded);
}

TEST(WorkloadSource, TraceReplaysTimestampsVerbatim)
{
    WorkloadConfig cfg;
    cfg.qps = 4.0;
    RequestGenerator gen(cfg);
    const std::vector<Request> recorded = gen.take(24);

    TraceSource source("in-memory", recorded);
    EXPECT_TRUE(source.openLoop());
    EXPECT_EQ(source.remaining(), 24);
    for (const Request &expected : recorded) {
        EXPECT_EQ(source.peekArrival(), expected.arrival);
        expectSameRequest(source.next(), expected);
    }
    EXPECT_EQ(source.remaining(), 0);
    EXPECT_EQ(source.peekArrival(), -1);
}

TEST(WorkloadSource, TraceRejectsDecreasingArrivals)
{
    Request a;
    a.id = 0;
    a.inputLen = a.outputLen = 16;
    a.arrival = 1000;
    Request b = a;
    b.id = 1;
    b.arrival = 500;
    EXPECT_EXIT({ TraceSource("bad", {a, b}); },
                ::testing::ExitedWithCode(1), "non-decreasing");
}

TEST(WorkloadSource, BurstyArrivalsMonotoneAndDeterministic)
{
    WorkloadSpec spec;
    spec.burstQps = 20.0;
    spec.idleQps = 0.5;
    spec.meanBurstSec = 1.0;
    spec.meanIdleSec = 3.0;
    BurstySource a(spec);
    BurstySource b(spec);
    PicoSec prev = -1;
    for (int i = 0; i < 400; ++i) {
        const Request ra = a.next();
        expectSameRequest(ra, b.next());
        EXPECT_GT(ra.arrival, prev);
        prev = ra.arrival;
        EXPECT_GE(ra.inputLen, spec.minLen);
        EXPECT_GE(ra.outputLen, spec.minLen);
    }
}

TEST(WorkloadSource, BurstyIsBurstierThanPoisson)
{
    // A two-state MMPP over-disperses inter-arrival gaps: their
    // coefficient of variation must clearly exceed the exponential
    // distribution's 1.0.
    WorkloadSpec spec;
    spec.burstQps = 30.0;
    spec.idleQps = 0.2;
    spec.meanBurstSec = 1.0;
    spec.meanIdleSec = 5.0;
    BurstySource source(spec);
    PicoSec prev = 0;
    double sum = 0.0;
    double sq_sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const PicoSec arrival = source.next().arrival;
        const double gap = psToSec(arrival - prev);
        prev = arrival;
        sum += gap;
        sq_sum += gap * gap;
    }
    const double mean = sum / n;
    const double var = sq_sum / n - mean * mean;
    const double cv = std::sqrt(var) / mean;
    EXPECT_GT(cv, 1.5);
    // The long-run rate sits strictly between the two state rates.
    const double rate = 1.0 / mean;
    EXPECT_GT(rate, spec.idleQps);
    EXPECT_LT(rate, spec.burstQps);
}

TEST(WorkloadSource, DiurnalRampInterpolatesPiecewiseLinearly)
{
    WorkloadSpec spec;
    spec.diurnalLowQps = 2.0;
    spec.diurnalHighQps = 10.0;
    spec.diurnalPeriodSec = 40.0;
    DiurnalSource source(spec);
    // Default ramp: low at 0, peak at period/2, linear both ways,
    // periodic.
    EXPECT_DOUBLE_EQ(source.qpsAt(0), 2.0);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(20.0)), 10.0);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(10.0)), 6.0);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(30.0)), 6.0);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(40.0)), 2.0);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(60.0)), 10.0);
}

TEST(WorkloadSource, DiurnalExplicitBreakpointsHonored)
{
    WorkloadSpec spec;
    spec.diurnalPeriodSec = 10.0;
    spec.qpsRamp = {{0.0, 1.0}, {2.0, 9.0}, {6.0, 5.0}};
    DiurnalSource source(spec);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(2.0)), 9.0);
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(4.0)), 7.0);
    // Wrap segment: 5.0 at t=6 back to 1.0 at t=10 (== 0).
    EXPECT_DOUBLE_EQ(source.qpsAt(secToPs(8.0)), 3.0);
}

TEST(WorkloadSource, DiurnalArrivalsTrackTheRamp)
{
    WorkloadSpec spec;
    spec.diurnalLowQps = 1.0;
    spec.diurnalHighQps = 15.0;
    spec.diurnalPeriodSec = 60.0;
    DiurnalSource source(spec);
    // Arrivals in the peak-centered half of each period must far
    // outnumber those in the trough-centered half. The triangle
    // ramp averages (1+15)/2 + 15/2 = 11.5 req/s over the peak
    // half vs 4.5 over the trough half, a ~2.6x density ratio.
    std::int64_t peak_half = 0;
    std::int64_t trough_half = 0;
    PicoSec prev = -1;
    for (int i = 0; i < 3000; ++i) {
        const Request r = source.next();
        EXPECT_GT(r.arrival, prev);
        prev = r.arrival;
        const double sec =
            std::fmod(psToSec(r.arrival), spec.diurnalPeriodSec);
        if (sec >= 15.0 && sec < 45.0)
            ++peak_half;
        else
            ++trough_half;
    }
    EXPECT_GT(peak_half, 2 * trough_half);
}

TEST(WorkloadSource, MixtureDrawsEveryClassClosedAndOpenLoop)
{
    for (double qps : {0.0, 6.0}) {
        WorkloadConfig base;
        base.qps = qps;
        MixtureSource source(
            "mix-test", base,
            {{"short", 0.5, 64, 32, 0.1},
             {"long", 0.5, 4096, 2048, 0.1}});
        EXPECT_EQ(source.openLoop(), qps > 0.0);
        int shorts = 0;
        int longs = 0;
        PicoSec prev = 0;
        for (int i = 0; i < 500; ++i) {
            const Request r = source.next();
            if (r.inputLen < 1024)
                ++shorts;
            else
                ++longs;
            if (qps > 0.0) {
                EXPECT_GT(r.arrival, prev);
                prev = r.arrival;
            } else {
                EXPECT_EQ(r.arrival, 0);
            }
        }
        EXPECT_GT(shorts, 100);
        EXPECT_GT(longs, 100);
    }
}

TEST(WorkloadSource, ScenarioPresetsShapeTheLengthMix)
{
    // Each named scenario must express its documented Lin/Lout
    // profile (means within sampling noise of the preset).
    struct Expectation
    {
        const char *id;
        double meanIn;
        double meanOut;
    };
    for (const Expectation &e :
         {Expectation{"chat", 512, 256},
          Expectation{"long-prefill-summarize", 8192, 256},
          Expectation{"long-decode-codegen", 512, 4096}}) {
        SCOPED_TRACE(e.id);
        const std::unique_ptr<WorkloadSource> source =
            makeWorkload(e.id);
        double in_sum = 0.0;
        double out_sum = 0.0;
        const int n = 3000;
        for (int i = 0; i < n; ++i) {
            const Request r = source->next();
            in_sum += static_cast<double>(r.inputLen);
            out_sum += static_cast<double>(r.outputLen);
        }
        EXPECT_NEAR(in_sum / n, e.meanIn, 0.05 * e.meanIn);
        EXPECT_NEAR(out_sum / n, e.meanOut, 0.05 * e.meanOut);
    }
}

TEST(WorkloadSource, MixedScenarioCoversTheComponentModes)
{
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload("mixed");
    std::int64_t prefill_heavy = 0; // summarize-shaped draws
    std::int64_t decode_heavy = 0;  // codegen-shaped draws
    std::int64_t chat_like = 0;
    for (int i = 0; i < 2000; ++i) {
        const Request r = source->next();
        if (r.inputLen > 4096)
            ++prefill_heavy;
        else if (r.outputLen > 2048)
            ++decode_heavy;
        else
            ++chat_like;
    }
    EXPECT_GT(prefill_heavy, 200);
    EXPECT_GT(decode_heavy, 200);
    EXPECT_GT(chat_like, 600);
}

TEST(WorkloadSource, SessionStampingLeavesTheDrawStreamIntact)
{
    // numSessions stamps sessionId = id % n with pure arithmetic —
    // the drawn lengths and arrivals must be bit-identical to a
    // session-less stream (no RNG draws added or reordered).
    WorkloadSpec plain;
    plain.qps = 6.0;
    WorkloadSpec sessions = plain;
    sessions.numSessions = 4;

    const auto a = makeWorkload("synthetic", plain);
    const auto b = makeWorkload("synthetic", sessions);
    for (int i = 0; i < 64; ++i) {
        const Request ra = a->next();
        const Request rb = b->next();
        EXPECT_EQ(ra.inputLen, rb.inputLen);
        EXPECT_EQ(ra.outputLen, rb.outputLen);
        EXPECT_EQ(ra.arrival, rb.arrival);
        EXPECT_EQ(ra.sessionId, -1);
        EXPECT_EQ(rb.sessionId, rb.id % 4);
    }
}

TEST(WorkloadSource, DescribeNamesTheSource)
{
    for (const std::string &id : registeredWorkloads()) {
        if (id == "trace")
            continue; // needs a file; covered in test_registry
        SCOPED_TRACE(id);
        const std::unique_ptr<WorkloadSource> source =
            makeWorkload(id);
        EXPECT_EQ(source->name(), id);
        EXPECT_FALSE(source->describe().empty());
    }
}

} // namespace
} // namespace duplex
