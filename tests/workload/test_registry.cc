/**
 * @file
 * Workload-registry tests: every registered workload drives the
 * SimulationEngine end to end (the workload-side analogue of
 * Registry.RoundTripOverEveryRegisteredSystem), workloads plug in
 * at runtime, and unknown/duplicate ids are fatal.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>

#include "sim/engine.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

namespace duplex
{
namespace
{

/** A tiny valid trace on disk for the "trace" workload. */
std::string
writeTempTrace()
{
    const std::string path =
        ::testing::TempDir() + "workload_registry_trace.csv";
    WorkloadConfig cfg;
    cfg.meanInputLen = 160;
    cfg.meanOutputLen = 48;
    cfg.qps = 12.0;
    RequestGenerator gen(cfg);
    saveTrace(path, gen.take(24));
    return path;
}

TEST(WorkloadRegistry, ListsEveryStockWorkload)
{
    const std::vector<std::string> expected = {
        "synthetic",          "trace",
        "bursty",             "diurnal",
        "chat",               "long-prefill-summarize",
        "long-decode-codegen", "mixed"};
    for (const std::string &id : expected) {
        EXPECT_TRUE(WorkloadRegistry::instance().contains(id))
            << "missing workload: " << id;
    }
    EXPECT_GE(registeredWorkloads().size(), expected.size());
}

TEST(WorkloadRegistry, IdsAreSorted)
{
    // Same contract as Registry.IdsAreSorted: enumeration order is
    // lexicographic so fleet sweeps and bench tables diff clean
    // across standard libraries.
    const std::vector<std::string> ids = registeredWorkloads();
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(WorkloadRegistry, RoundTripOverEveryRegisteredWorkload)
{
    // Every workload builds, honors the WorkloadSource contract,
    // and drives a small engine run to completion — exactly the
    // guarantee the system registry gives for serving systems.
    const WorkloadRegistry &registry =
        WorkloadRegistry::instance();
    const std::string trace_path = writeTempTrace();
    std::set<std::string> names;
    for (const std::string &id : registry.ids()) {
        SCOPED_TRACE(id);
        WorkloadSpec spec;
        spec.meanInputLen = 160;
        spec.meanOutputLen = 48;
        spec.qps = 8.0;
        spec.tracePath = trace_path;
        spec.burstQps = 16.0;
        spec.meanBurstSec = 1.0;
        spec.meanIdleSec = 2.0;
        spec.diurnalPeriodSec = 10.0;
        spec.diurnalHighQps = 12.0;

        const std::unique_ptr<WorkloadSource> source =
            makeWorkload(id, spec);
        ASSERT_NE(source, nullptr);
        EXPECT_EQ(source->name(), id);
        EXPECT_FALSE(source->describe().empty());
        EXPECT_FALSE(registry.summary(id).empty());
        EXPECT_GT(source->remaining(), 0);
        names.insert(registry.displayName(id));

        SimConfig c;
        c.systemName = "duplex";
        c.workloadName = id;
        c.model = mixtralConfig();
        c.workload = spec;
        c.maxBatch = 8;
        c.numRequests = 16;
        c.warmupRequests = 2;
        c.maxStages = 20000;
        const SimResult r = SimulationEngine(c).run();
        EXPECT_GT(r.generatedTokens, 0);
        EXPECT_GT(r.metrics.totalTokens, 0);
        EXPECT_GT(r.metrics.e2eMs.count(), 0u);
    }
    // Display names are distinct across the registry.
    EXPECT_EQ(names.size(), registry.ids().size());
}

TEST(WorkloadRegistry, CustomLoopSystemsHonorTheWorkload)
{
    // The split system's custom loop builds arrivals through the
    // same registry: a bursty stream must reach it.
    const std::string trace_path = writeTempTrace();
    for (const std::string workload : {"bursty", "trace"}) {
        SCOPED_TRACE(workload);
        SimConfig c;
        c.systemName = "duplex-split";
        c.workloadName = workload;
        c.model = mixtralConfig();
        c.workload.meanInputLen = 160;
        c.workload.meanOutputLen = 48;
        c.workload.tracePath = trace_path;
        c.workload.burstQps = 16.0;
        c.workload.meanBurstSec = 1.0;
        c.workload.meanIdleSec = 2.0;
        c.maxBatch = 8;
        c.numRequests = 16;
        c.warmupRequests = 2;
        c.maxStages = 20000;
        const SimResult r = SimulationEngine(c).run();
        EXPECT_GT(r.generatedTokens, 0);
        EXPECT_GT(r.metrics.e2eMs.count(), 0u);
    }
}

TEST(WorkloadRegistry, TraceShorterThanNumRequestsEndsTheRun)
{
    // A 24-request trace caps a 64-request config: the run retires
    // exactly the recorded requests instead of hanging.
    SimConfig c;
    c.systemName = "gpu";
    c.workloadName = "trace";
    c.model = mixtralConfig();
    c.workload.tracePath = writeTempTrace();
    c.maxBatch = 8;
    c.numRequests = 64;
    c.warmupRequests = 0;
    c.maxStages = 20000;
    const SimResult r = SimulationEngine(c).run();
    EXPECT_EQ(r.metrics.e2eMs.count(), 24u);
}

TEST(WorkloadRegistry, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT({ makeWorkload("no-such-workload"); },
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadRegistry, TraceWithoutPathIsFatal)
{
    EXPECT_EXIT({ makeWorkload("trace"); },
                ::testing::ExitedWithCode(1), "tracePath");
}

TEST(WorkloadRegistry, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(
        {
            registerWorkloadSource(
                "synthetic", "Synthetic", "duplicate",
                [](const WorkloadSpec &spec) {
                    return std::make_unique<SyntheticSource>(
                        "synthetic", spec);
                });
        },
        ::testing::ExitedWithCode(1), "duplicate workload id");
}

TEST(WorkloadRegistry, UserWorkloadsPlugIn)
{
    // A new workload is one registration away — no enum edits, no
    // new entry points, and the engine drives it by name.
    if (!WorkloadRegistry::instance().contains("test-constant")) {
        registerWorkloadSource(
            "test-constant", "TestConstant",
            "fixed-length closed-loop stream (test only)",
            [](const WorkloadSpec &spec) {
                WorkloadConfig cfg = spec;
                cfg.lengthCv = 0.0;
                return std::make_unique<SyntheticSource>(
                    "test-constant", cfg);
            });
    }
    SimConfig c;
    c.systemName = "gpu";
    c.workloadName = "test-constant";
    c.model = mixtralConfig();
    c.workload.meanInputLen = 128;
    c.workload.meanOutputLen = 32;
    c.maxBatch = 8;
    c.numRequests = 16;
    c.warmupRequests = 2;
    c.maxStages = 400;
    const SimResult r = SimulationEngine(c).run();
    EXPECT_GT(r.metrics.totalTokens, 0);
    EXPECT_GT(r.generatedTokens, 0);
}

} // namespace
} // namespace duplex
