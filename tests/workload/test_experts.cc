/**
 * @file
 * Expert-selection tests: uniform gates (the paper's default) and
 * the skewed gates of Section VIII-B.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "workload/experts.hh"

namespace duplex
{
namespace
{

TEST(ExpertSelector, HistogramSumsToTokensTimesTopK)
{
    ExpertSelector sel(8, 2);
    Rng rng(5);
    const auto hist = sel.sample(rng, 100);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(),
                              std::int64_t{0}),
              200);
}

TEST(ExpertSelector, NoExpertExceedsTokens)
{
    ExpertSelector sel(8, 2);
    Rng rng(5);
    const auto hist = sel.sample(rng, 50);
    for (auto h : hist)
        EXPECT_LE(h, 50); // top-k experts are distinct per token
}

TEST(ExpertSelector, UniformGateBalanced)
{
    ExpertSelector sel(64, 2);
    Rng rng(7);
    const auto hist = sel.sample(rng, 64000);
    const double expected = 64000.0 * 2 / 64;
    for (auto h : hist)
        EXPECT_NEAR(static_cast<double>(h), expected,
                    expected * 0.15);
}

TEST(ExpertSelector, ZeroTokensZeroHistogram)
{
    ExpertSelector sel(8, 2);
    Rng rng(5);
    const auto hist = sel.sample(rng, 0);
    for (auto h : hist)
        EXPECT_EQ(h, 0);
}

TEST(ExpertSelector, SmallBatchLeavesColdExperts)
{
    // GLaM at batch 32: 64 selections over 64 experts leave many
    // experts unused — the effect expert co-processing exploits.
    ExpertSelector sel(64, 2);
    Rng rng(11);
    const auto hist = sel.sample(rng, 32);
    int cold = 0;
    for (auto h : hist)
        if (h == 0)
            ++cold;
    EXPECT_GT(cold, 10);
}

TEST(ExpertSelector, ZipfGateSkewed)
{
    ExpertSelector uniform(8, 2, GatePolicy::Uniform);
    ExpertSelector zipf(8, 2, GatePolicy::Zipf, 1.5);
    Rng rng_u(13);
    Rng rng_z(13);
    const auto hu = uniform.sample(rng_u, 20000);
    const auto hz = zipf.sample(rng_z, 20000);
    // The hottest Zipf expert processes far more than the uniform
    // share; the coldest far fewer.
    const auto hot = *std::max_element(hz.begin(), hz.end());
    const auto cold = *std::min_element(hz.begin(), hz.end());
    const auto uniform_hot = *std::max_element(hu.begin(), hu.end());
    EXPECT_GT(hot, uniform_hot * 1.3);
    EXPECT_LT(cold, hot / 3);
}

TEST(ExpertSelector, ZipfStillSumsCorrectly)
{
    ExpertSelector zipf(8, 2, GatePolicy::Zipf, 1.0);
    Rng rng(17);
    const auto hist = zipf.sample(rng, 500);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(),
                              std::int64_t{0}),
              1000);
    for (auto h : hist)
        EXPECT_LE(h, 500);
}

TEST(ExpertSelector, DeterministicGivenRngState)
{
    ExpertSelector sel(8, 2);
    Rng a(21);
    Rng b(21);
    EXPECT_EQ(sel.sample(a, 100), sel.sample(b, 100));
}

/** Parameterized: all paper gate configurations stay consistent. */
class GateSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GateSweep, SumsAndBounds)
{
    const auto [nex, topk] = GetParam();
    ExpertSelector sel(nex, topk);
    Rng rng(31);
    const auto hist = sel.sample(rng, 128);
    EXPECT_EQ(static_cast<int>(hist.size()), nex);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(),
                              std::int64_t{0}),
              128 * topk);
}

INSTANTIATE_TEST_SUITE_P(Models, GateSweep,
                         ::testing::Values(std::pair{8, 2},
                                           std::pair{64, 2},
                                           std::pair{8, 1},
                                           std::pair{16, 4}));

} // namespace
} // namespace duplex
