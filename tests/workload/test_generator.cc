/**
 * @file
 * Request-generator tests (Section VI workload synthesis).
 */

#include <gtest/gtest.h>

#include "workload/generator.hh"

namespace duplex
{
namespace
{

TEST(RequestGenerator, LengthsNearMeans)
{
    WorkloadConfig cfg;
    cfg.meanInputLen = 2048;
    cfg.meanOutputLen = 512;
    RequestGenerator gen(cfg);
    double in_sum = 0.0;
    double out_sum = 0.0;
    const int n = 5000;
    for (const auto &r : gen.take(n)) {
        in_sum += static_cast<double>(r.inputLen);
        out_sum += static_cast<double>(r.outputLen);
    }
    EXPECT_NEAR(in_sum / n, 2048.0, 2048.0 * 0.02);
    EXPECT_NEAR(out_sum / n, 512.0, 512.0 * 0.02);
}

TEST(RequestGenerator, RespectsMinimumLength)
{
    WorkloadConfig cfg;
    cfg.meanInputLen = 16;
    cfg.meanOutputLen = 16;
    cfg.lengthCv = 2.0; // wild spread
    cfg.minLen = 8;
    RequestGenerator gen(cfg);
    for (const auto &r : gen.take(2000)) {
        EXPECT_GE(r.inputLen, 8);
        EXPECT_GE(r.outputLen, 8);
    }
}

TEST(RequestGenerator, ClosedLoopArrivalsAreZero)
{
    WorkloadConfig cfg;
    cfg.qps = 0.0;
    RequestGenerator gen(cfg);
    for (const auto &r : gen.take(50))
        EXPECT_EQ(r.arrival, 0);
}

TEST(RequestGenerator, PoissonArrivalsMonotone)
{
    WorkloadConfig cfg;
    cfg.qps = 10.0;
    RequestGenerator gen(cfg);
    PicoSec prev = -1;
    for (const auto &r : gen.take(500)) {
        EXPECT_GT(r.arrival, prev);
        prev = r.arrival;
    }
}

TEST(RequestGenerator, PoissonRateMatchesQps)
{
    WorkloadConfig cfg;
    cfg.qps = 8.0;
    RequestGenerator gen(cfg);
    const auto reqs = gen.take(4000);
    const double span_sec = psToSec(reqs.back().arrival);
    EXPECT_NEAR(4000.0 / span_sec, 8.0, 0.5);
}

TEST(RequestGenerator, DeterministicBySeed)
{
    WorkloadConfig cfg;
    cfg.seed = 99;
    RequestGenerator a(cfg);
    RequestGenerator b(cfg);
    const auto ra = a.take(100);
    const auto rb = b.take(100);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(ra[i].inputLen, rb[i].inputLen);
        EXPECT_EQ(ra[i].outputLen, rb[i].outputLen);
    }
}

TEST(RequestGenerator, IdsSequential)
{
    RequestGenerator gen(WorkloadConfig{});
    const auto reqs = gen.take(10);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(reqs[i].id, i);
}

TEST(Request, LifecycleHelpers)
{
    Request r;
    r.inputLen = 100;
    r.outputLen = 3;
    EXPECT_EQ(r.contextLen(), 100);
    r.generated = 2;
    EXPECT_EQ(r.contextLen(), 102);
    EXPECT_FALSE(r.done());
    r.generated = 3;
    EXPECT_TRUE(r.done());
}

} // namespace
} // namespace duplex
