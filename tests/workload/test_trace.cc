/**
 * @file
 * Trace I/O tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hh"
#include "workload/trace.hh"

namespace duplex
{
namespace
{

TEST(Trace, ParsesBasicLines)
{
    std::istringstream in("# comment\n"
                          "0.0,512,256\n"
                          "\n"
                          "0.5,1024,128\n");
    const auto reqs = parseTrace(in);
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].arrival, 0);
    EXPECT_EQ(reqs[0].inputLen, 512);
    EXPECT_EQ(reqs[0].outputLen, 256);
    EXPECT_EQ(reqs[1].arrival, secToPs(0.5));
    EXPECT_EQ(reqs[1].id, 1);
}

TEST(Trace, RoundTripThroughWriter)
{
    WorkloadConfig cfg;
    cfg.qps = 5.0;
    RequestGenerator gen(cfg);
    const auto original = gen.take(32);

    std::ostringstream out;
    writeTrace(out, original);
    std::istringstream in(out.str());
    const auto parsed = parseTrace(in);

    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].inputLen, original[i].inputLen);
        EXPECT_EQ(parsed[i].outputLen, original[i].outputLen);
        // Arrival survives to within text round-off (< 1 us).
        EXPECT_NEAR(static_cast<double>(parsed[i].arrival),
                    static_cast<double>(original[i].arrival),
                    1e6);
    }
}

TEST(Trace, SessionIdRoundTripsThroughOptionalColumn)
{
    WorkloadConfig cfg;
    cfg.qps = 5.0;
    RequestGenerator gen(cfg);
    auto original = gen.take(12);
    for (std::size_t i = 0; i < original.size(); ++i)
        original[i].sessionId = static_cast<std::int64_t>(i % 4);

    std::ostringstream out;
    writeTrace(out, original);
    EXPECT_NE(out.str().find("session_id"), std::string::npos);

    std::istringstream in(out.str());
    const auto parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed[i].sessionId, original[i].sessionId);
}

TEST(Trace, SessionlessTraceKeepsLegacyFormat)
{
    // A trace recorded without sessions must stay byte-compatible
    // with the pre-session three-column format: no fourth column,
    // the original header, and sessionId = -1 on replay.
    WorkloadConfig cfg;
    cfg.qps = 5.0;
    RequestGenerator gen(cfg);
    const auto original = gen.take(8);

    std::ostringstream out;
    writeTrace(out, original);
    EXPECT_EQ(out.str().find("session_id"), std::string::npos);
    EXPECT_NE(out.str().find("# arrival_sec,input_len,output_len"),
              std::string::npos);

    std::istringstream in(out.str());
    for (const Request &r : parseTrace(in))
        EXPECT_EQ(r.sessionId, -1);
}

TEST(Trace, ThreeColumnLinesStillParse)
{
    // Legacy traces (no session column) replay with sessionId
    // absent; mixed four-column lines pick it up.
    std::istringstream in("0.0,512,256\n"
                          "0.5,1024,128,7\n");
    const auto reqs = parseTrace(in);
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].sessionId, -1);
    EXPECT_EQ(reqs[1].sessionId, 7);
}

TEST(Trace, EmptyInputEmptyTrace)
{
    std::istringstream in("# nothing here\n");
    EXPECT_TRUE(parseTrace(in).empty());
}

TEST(Trace, FractionalArrivalPrecision)
{
    std::istringstream in("1.25,16,16\n");
    const auto reqs = parseTrace(in);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].arrival, secToPs(1.25));
}

// ---- error paths: a broken CSV must die with ONE line that names
// ---- the offending line (number and content), not a stack trace
// ---- or a silent misparse.

TEST(TraceErrors, MissingColumnNamesTheLine)
{
    std::istringstream in("0.0,512,256\n"
                          "0.5,1024\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "trace line 2: '0.5,1024'");
}

TEST(TraceErrors, MalformedNumberNamesFieldAndLine)
{
    std::istringstream in("0.0,512,256\n"
                          "0.5,banana,128\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "trace line 2.*bad input_len 'banana'");
}

TEST(TraceErrors, TrailingGarbageInNumberIsAnError)
{
    // '1.5x' must not silently parse as 1.5.
    std::istringstream in("1.5x,512,256\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "trace line 1.*bad arrival_sec '1.5x'");
}

TEST(TraceErrors, TooManyColumnsIsAnError)
{
    // Five columns is the full format (session + priority); a
    // sixth is an error.
    std::istringstream in("0.0,512,256,7,99,1\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "trace line 1.*too many columns");
}

TEST(TraceErrors, NonMonotoneArrivalNamesBothLines)
{
    std::istringstream in("2.0,512,256\n"
                          "1.0,512,256\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "trace line 2.*non-decreasing");
}

TEST(TraceErrors, NonPositiveLengthIsAnError)
{
    std::istringstream in("0.0,0,256\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "trace line 1.*lengths must be positive");
}

TEST(TraceErrors, MissingFileNamesThePath)
{
    EXPECT_EXIT({ loadTrace("/no/such/trace.csv"); },
                ::testing::ExitedWithCode(1),
                "cannot open trace: /no/such/trace.csv");
}

} // namespace
} // namespace duplex
