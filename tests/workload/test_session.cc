/**
 * @file
 * SessionSource tests — the multi-turn workload's contracts:
 *
 *  - Turns per session are capped at sessionTurns; each follow-up
 *    prompt grows by the full history (shared prefix + every prior
 *    prompt and completion) plus freshly drawn user tokens.
 *  - Turn content is a pure function of (seed, session, turn):
 *    retiring a turn later shifts only its successor's arrival,
 *    never its lengths — the interleaving-independence the driver
 *    feedback channel relies on for byte-identical double runs.
 *  - The peekArrival() lookahead is reabsorbed on retirement, so a
 *    follow-up turn that precedes the buffered request re-emits in
 *    arrival order (arrivals stay non-decreasing).
 *  - Opt-in: only the session source wants retirements; notifying
 *    any other source is a no-op, keeping every golden intact.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/registry.hh"
#include "workload/source.hh"

namespace duplex
{
namespace
{

WorkloadSpec
sessionSpec()
{
    WorkloadSpec spec;
    spec.qps = 2.0; // fresh sessions/s
    spec.meanInputLen = 128;
    spec.meanOutputLen = 48;
    spec.sessionTurns = 3;
    spec.sharedPrefixTokens = 64;
    spec.meanThinkSec = 0.0; // think time 0: arrival == retire time
    return spec;
}

TEST(SessionSource, RegisteredAndWantsRetirements)
{
    EXPECT_TRUE(WorkloadRegistry::instance().contains("session"));
    const auto session = makeWorkload("session", sessionSpec());
    EXPECT_TRUE(session->openLoop());
    EXPECT_TRUE(session->wantsRetirements());
    EXPECT_EQ(session->remaining(), WorkloadSource::kUnbounded);

    // The feedback channel is strictly opt-in.
    const auto synthetic = makeWorkload("synthetic", WorkloadSpec{});
    EXPECT_FALSE(synthetic->wantsRetirements());
}

TEST(SessionSource, FreshSessionsOpenWithTheSharedPrefix)
{
    const auto source = makeWorkload("session", sessionSpec());
    PicoSec last_arrival = 0;
    for (std::int64_t i = 0; i < 32; ++i) {
        const Request r = source->next();
        // No retirements yet: only first turns, one per session.
        EXPECT_EQ(r.sessionId, i);
        EXPECT_GT(r.inputLen, sessionSpec().sharedPrefixTokens);
        EXPECT_GT(r.outputLen, 0);
        EXPECT_GE(r.arrival, last_arrival);
        last_arrival = r.arrival;
    }
}

TEST(SessionSource, TurnsGrowAndStopAtTheCap)
{
    const WorkloadSpec spec = sessionSpec();
    const auto source = makeWorkload("session", spec);
    std::map<std::int64_t, int> turns;
    std::map<std::int64_t, std::int64_t> last_input;
    PicoSec last_arrival = 0;
    for (int i = 0; i < 256; ++i) {
        const Request r = source->next();
        EXPECT_GE(r.arrival, last_arrival);
        last_arrival = r.arrival;
        const int turn = turns[r.sessionId]++;
        if (turn > 0) {
            // Prompt = full history + new user tokens: strictly
            // longer than the previous turn's prompt.
            EXPECT_GT(r.inputLen, last_input[r.sessionId])
                << "session " << r.sessionId << " turn " << turn;
        }
        last_input[r.sessionId] = r.inputLen;
        // Retire immediately (think 0): the next turn arrives now.
        source->notifyRetired(r, r.arrival);
    }
    for (const auto &[session, count] : turns)
        EXPECT_LE(count, spec.sessionTurns) << "session " << session;
    // The closed loop actually closed: some session ran all turns.
    int finished = 0;
    for (const auto &[session, count] : turns)
        finished += count == spec.sessionTurns ? 1 : 0;
    EXPECT_GT(finished, 0);
}

TEST(SessionSource, TurnContentIsIndependentOfRetirementTime)
{
    // Retiring the same turn at two different times must shift the
    // follow-up's arrival by exactly the difference and change
    // nothing else — the draws are a pure function of
    // (seed, session, turn), not of driver timing.
    WorkloadSpec spec = sessionSpec();
    spec.meanThinkSec = 1.0;
    const auto a = makeWorkload("session", spec);
    const auto b = makeWorkload("session", spec);

    const Request first_a = a->next();
    const Request first_b = b->next();
    EXPECT_EQ(first_a.inputLen, first_b.inputLen);

    const PicoSec now_a = first_a.arrival + 1000;
    const PicoSec shift = 7'000'000'000'000; // 7 s later
    a->notifyRetired(first_a, now_a);
    b->notifyRetired(first_b, now_a + shift);

    // Drain until each source emits session 0's second turn.
    auto second_of = [](WorkloadSource &src) {
        for (;;) {
            Request r = src.next();
            if (r.sessionId == 0)
                return r;
        }
    };
    const Request second_a = second_of(*a);
    const Request second_b = second_of(*b);
    EXPECT_EQ(second_a.inputLen, second_b.inputLen);
    EXPECT_EQ(second_a.outputLen, second_b.outputLen);
    EXPECT_EQ(second_b.arrival - second_a.arrival, shift);
    EXPECT_GT(second_a.arrival, now_a); // think time elapsed
}

TEST(SessionSource, RetirementReabsorbsTheLookaheadInOrder)
{
    const auto source = makeWorkload("session", sessionSpec());
    const Request first = source->next(); // session 0, turn 0

    // Peek buffers session 1's first turn...
    const PicoSec peeked = source->peekArrival();
    EXPECT_GT(peeked, first.arrival);

    // ...but retiring turn 0 with think 0 creates session 0's
    // second turn at the retire time, BEFORE the buffered request:
    // the source must unwind the buffer and re-emit in order.
    source->notifyRetired(first, first.arrival);
    const Request second = source->next();
    EXPECT_EQ(second.sessionId, 0);
    EXPECT_EQ(second.arrival, first.arrival);

    const Request third = source->next();
    EXPECT_EQ(third.sessionId, 1);
    EXPECT_EQ(third.arrival, peeked);
}

TEST(SessionSource, DoubleRunsAreBitIdentical)
{
    const auto a = makeWorkload("session", sessionSpec());
    const auto b = makeWorkload("session", sessionSpec());
    for (int i = 0; i < 200; ++i) {
        const Request ra = a->next();
        const Request rb = b->next();
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.sessionId, rb.sessionId);
        EXPECT_EQ(ra.inputLen, rb.inputLen);
        EXPECT_EQ(ra.outputLen, rb.outputLen);
        EXPECT_EQ(ra.arrival, rb.arrival);
        if (i % 3 == 0) {
            a->notifyRetired(ra, ra.arrival + 500);
            b->notifyRetired(rb, rb.arrival + 500);
        }
    }
}

} // namespace
} // namespace duplex
