/**
 * @file
 * Bundle-space allocator tests (Section V-C memory sections).
 */

#include <gtest/gtest.h>

#include "dram/stack.hh"

namespace duplex
{
namespace
{

TEST(BundleSpaceAllocator, FourEqualSpaces)
{
    BundleSpaceAllocator alloc(16ull * kGiB);
    EXPECT_EQ(alloc.spaceCapacity(), 4ull * kGiB);
    for (int s = 0; s < BundleSpaceAllocator::kNumSpaces; ++s)
        EXPECT_EQ(alloc.freeBytes(s), 4ull * kGiB);
    EXPECT_EQ(alloc.totalFreeBytes(), 16ull * kGiB);
}

TEST(BundleSpaceAllocator, AllocateAndRelease)
{
    BundleSpaceAllocator alloc(16ull * kGiB);
    EXPECT_TRUE(alloc.allocate(1, 1 * kGiB));
    EXPECT_EQ(alloc.freeBytes(1), 3ull * kGiB);
    EXPECT_EQ(alloc.freeBytes(0), 4ull * kGiB);
    alloc.release(1, 1 * kGiB);
    EXPECT_EQ(alloc.freeBytes(1), 4ull * kGiB);
}

TEST(BundleSpaceAllocator, RejectsOverflowUnchanged)
{
    BundleSpaceAllocator alloc(16ull * kGiB);
    EXPECT_TRUE(alloc.allocate(0, 3 * kGiB));
    EXPECT_FALSE(alloc.allocate(0, 2 * kGiB));
    EXPECT_EQ(alloc.freeBytes(0), 1ull * kGiB);
}

TEST(BundleSpaceAllocator, ExpertsRoundRobinAcrossSpaces)
{
    // Section V-C: expert FFNs are allocated one by one across the
    // four spaces; with equal experts all spaces fill evenly.
    BundleSpaceAllocator alloc(16ull * kGiB);
    const Bytes expert = 512 * kMiB;
    for (int e = 0; e < 8; ++e)
        EXPECT_TRUE(alloc.allocate(e % 4, expert));
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(alloc.freeBytes(s), 4ull * kGiB - 2 * expert);
}

TEST(BundleSpaceAllocator, KvSpreadOverThreeSpaces)
{
    // Section V-C: KV cache alternates across three spaces, the
    // fourth is reserved for prefill QKV.
    BundleSpaceAllocator alloc(16ull * kGiB);
    const std::array<bool, 4> kv_spaces{true, true, true, false};
    EXPECT_TRUE(alloc.allocateSpread(kv_spaces, 9 * kGiB));
    for (int s = 0; s < 3; ++s)
        EXPECT_EQ(alloc.freeBytes(s), 1ull * kGiB);
    EXPECT_EQ(alloc.freeBytes(3), 4ull * kGiB);
}

TEST(BundleSpaceAllocator, SpreadFailsAtomically)
{
    BundleSpaceAllocator alloc(16ull * kGiB);
    EXPECT_TRUE(alloc.allocate(0, 4 * kGiB)); // space 0 full
    const std::array<bool, 4> spaces{true, true, false, false};
    EXPECT_FALSE(alloc.allocateSpread(spaces, 2 * kGiB));
    // Space 1 must be untouched by the failed spread.
    EXPECT_EQ(alloc.freeBytes(1), 4ull * kGiB);
}

TEST(BundleSpaceAllocator, SpreadOverNoSpacesFails)
{
    BundleSpaceAllocator alloc(16ull * kGiB);
    const std::array<bool, 4> none{false, false, false, false};
    EXPECT_FALSE(alloc.allocateSpread(none, kGiB));
}

TEST(HbmStack, DefaultCapacity)
{
    HbmStack stack;
    EXPECT_EQ(stack.capacity, 16ull * kGiB);
    EXPECT_EQ(stack.bundleSpaceBytes(), 4ull * kGiB);
    EXPECT_EQ(stack.timing.pchPerStack, 32);
}

TEST(HbmStack, FiveStacksMakeAnH100)
{
    HbmStack stack;
    EXPECT_EQ(5 * stack.capacity, 80ull * kGiB);
}

} // namespace
} // namespace duplex
