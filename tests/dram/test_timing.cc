/**
 * @file
 * HBM3 timing preset checks: the numbers the paper pivots on.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"

namespace duplex
{
namespace
{

TEST(HbmTiming, Tccd)
{
    const HbmTiming t = hbm3Timing();
    // Section VI: the 650 MHz Logic-PIM clock follows tCCD_S = 1.5 ns.
    EXPECT_EQ(t.tCCDS, 1500);
    EXPECT_EQ(t.tCCDL, 2 * t.tCCDS);
    EXPECT_EQ(t.tBURST, t.tCCDS);
}

TEST(HbmTiming, Geometry)
{
    const HbmTiming t = hbm3Timing();
    EXPECT_EQ(t.pchPerStack, 32);
    EXPECT_EQ(t.ranksPerPch, 2);
    EXPECT_EQ(t.banksPerRank(), 16);
    EXPECT_EQ(t.banksPerBundle(), 8);
    EXPECT_EQ(t.bundlesPerPch(), 4);
    EXPECT_EQ(t.columnsPerRow(), 32);
}

TEST(HbmTiming, PchPeakBandwidth)
{
    const HbmTiming t = hbm3Timing();
    // 32 B per 1.5 ns = 21.33 GB/s per pseudo channel.
    EXPECT_NEAR(t.pchPeakBytesPerSec(), 32.0 / 1.5e-9, 1e6);
}

TEST(HbmTiming, StackPeakNearH100)
{
    const HbmTiming t = hbm3Timing();
    // Five stacks should land near the H100's 3.35 TB/s.
    EXPECT_NEAR(5.0 * t.stackPeakBytesPerSec(), 3.41e12, 0.1e12);
}

TEST(HbmTiming, BundleProvisionedIsFourX)
{
    const HbmTiming t = hbm3Timing();
    EXPECT_NEAR(t.pchBundlePeakBytesPerSec() /
                    t.pchPeakBytesPerSec(),
                4.0, 1e-9);
}

TEST(HbmTiming, RowTimingOrdering)
{
    const HbmTiming t = hbm3Timing();
    EXPECT_GT(t.tRAS, t.tRCD);
    EXPECT_EQ(t.tRAS + t.tRP, 42000); // tRC
    EXPECT_GT(t.tRRDL, t.tRRDS);
    EXPECT_GE(t.tFAW, 4 * t.tRRDS);
    EXPECT_GT(t.tREFI, t.tRFC);
}

} // namespace
} // namespace duplex
