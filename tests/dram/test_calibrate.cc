/**
 * @file
 * Calibration-layer tests: the factors everything downstream uses.
 */

#include <gtest/gtest.h>

#include "dram/calibrate.hh"

namespace duplex
{
namespace
{

TEST(Calibration, EfficienciesInPhysicalRange)
{
    const DramCalibration &cal = cachedCalibration();
    EXPECT_GT(cal.xpuStreamEff, 0.80);
    EXPECT_LE(cal.xpuStreamEff, 1.0);
    EXPECT_GT(cal.pimStaggeredEff, 0.55);
    EXPECT_LE(cal.pimStaggeredEff, 1.0);
    EXPECT_GT(cal.pimLockstepEff, 0.35);
    EXPECT_LE(cal.pimLockstepEff, cal.pimStaggeredEff);
}

TEST(Calibration, BundleGainNearPaperClaim)
{
    const HbmTiming t = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    // Provisioned 4 x, sustained close to 3 x after row switches.
    EXPECT_GT(cal.pimGain(t), 2.5);
    EXPECT_LT(cal.pimGain(t), 4.0);
}

TEST(Calibration, CoProcessingInterferenceSmall)
{
    const DramCalibration &cal = cachedCalibration();
    // Sharing ACT windows and refresh costs only a few percent,
    // which is what makes co-processing worthwhile (Section IV-C).
    EXPECT_GT(cal.xpuCoEff, 0.92 * cal.xpuStreamEff);
    EXPECT_GT(cal.pimCoEff, 0.92 * cal.pimStaggeredEff);
}

TEST(Calibration, StackBandwidthsConsistent)
{
    const HbmTiming t = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    EXPECT_NEAR(cal.xpuStackBps(t),
                t.stackPeakBytesPerSec() * cal.xpuStreamEff, 1.0);
    EXPECT_GT(cal.pimStackBps(t), cal.xpuStackBps(t));
}

TEST(Calibration, CachedIsStable)
{
    const DramCalibration &a = cachedCalibration();
    const DramCalibration &b = cachedCalibration();
    EXPECT_EQ(&a, &b);
}

TEST(Calibration, DeterministicAcrossRuns)
{
    const DramCalibration c1 = calibrateDram(hbm3Timing(), 256 * kKiB);
    const DramCalibration c2 = calibrateDram(hbm3Timing(), 256 * kKiB);
    EXPECT_DOUBLE_EQ(c1.xpuStreamEff, c2.xpuStreamEff);
    EXPECT_DOUBLE_EQ(c1.pimStaggeredEff, c2.pimStaggeredEff);
}

TEST(Calibration, LongerProbesConverge)
{
    const DramCalibration c1 = calibrateDram(hbm3Timing(), 512 * kKiB);
    const DramCalibration c2 = calibrateDram(hbm3Timing(), 1 * kMiB);
    EXPECT_NEAR(c1.xpuStreamEff, c2.xpuStreamEff, 0.02);
    EXPECT_NEAR(c1.pimStaggeredEff, c2.pimStaggeredEff, 0.02);
}

} // namespace
} // namespace duplex
