/**
 * @file
 * Stream engine and controller tests: sustained bandwidths, the
 * Logic-PIM bundle gain, FR-FCFS behaviour, and the address map.
 */

#include <gtest/gtest.h>

#include "dram/address.hh"
#include "dram/bundle.hh"
#include "dram/controller.hh"

namespace duplex
{
namespace
{

std::vector<XpuStreamEngine::BankRef>
allBanks(const HbmTiming &t)
{
    std::vector<XpuStreamEngine::BankRef> banks;
    for (int r = 0; r < t.ranksPerPch; ++r)
        for (int bg = 0; bg < t.bankGroups; ++bg)
            for (int b = 0; b < t.banksPerGroup; ++b)
                banks.push_back({r, bg, b});
    return banks;
}

double
runXpuStream(const HbmTiming &t, Bytes bytes)
{
    PseudoChannel ch(t);
    XpuStreamEngine eng(ch, allBanks(t), bytes);
    runEngines({&eng});
    return static_cast<double>(bytes) / psToSec(eng.finishTime());
}

double
runBundleStream(const HbmTiming &t, Bytes bytes, bool lockstep)
{
    PseudoChannel ch(t);
    BundleStreamEngine eng(ch, 0, 0, bytes, lockstep);
    runEngines({&eng});
    return static_cast<double>(bytes) / psToSec(eng.finishTime());
}

TEST(XpuStreamEngine, SustainsMostOfPeak)
{
    const HbmTiming t = hbm3Timing();
    const double bw = runXpuStream(t, 1 * kMiB);
    EXPECT_GT(bw, 0.80 * t.pchPeakBytesPerSec());
    EXPECT_LE(bw, t.pchPeakBytesPerSec());
}

TEST(XpuStreamEngine, ThroughputScalesWithSize)
{
    const HbmTiming t = hbm3Timing();
    PseudoChannel ch(t);
    XpuStreamEngine small(ch, allBanks(t), 64 * kKiB);
    runEngines({&small});
    PseudoChannel ch2(t);
    XpuStreamEngine big(ch2, allBanks(t), 256 * kKiB);
    runEngines({&big});
    EXPECT_GT(big.finishTime(), small.finishTime());
    // Roughly linear: 4 x the data in 3.5..4.5 x the time.
    const double ratio = static_cast<double>(big.finishTime()) /
                         static_cast<double>(small.finishTime());
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 4.6);
}

TEST(BundleStreamEngine, ExceedsXpuPathSubstantially)
{
    const HbmTiming t = hbm3Timing();
    const double xpu = runXpuStream(t, 1 * kMiB);
    const double pim = runBundleStream(t, 1 * kMiB, false);
    // The paper provisions 4 x; row-switch stalls keep the
    // sustained gain near 3 x on the cycle model.
    EXPECT_GT(pim / xpu, 2.5);
    EXPECT_LT(pim / xpu, 4.0);
}

TEST(BundleStreamEngine, StaysUnderProvisionedBandwidth)
{
    const HbmTiming t = hbm3Timing();
    const double pim = runBundleStream(t, 1 * kMiB, false);
    EXPECT_LE(pim, t.pchBundlePeakBytesPerSec());
}

TEST(BundleStreamEngine, LockstepSlowerThanStaggered)
{
    const HbmTiming t = hbm3Timing();
    const double staggered = runBundleStream(t, 1 * kMiB, false);
    const double lockstep = runBundleStream(t, 1 * kMiB, true);
    // Synchronized row switches stall all eight banks together.
    EXPECT_LT(lockstep, staggered);
    EXPECT_GT(lockstep, 0.4 * staggered);
}

TEST(BundleStreamEngine, BothHalvesEquivalent)
{
    const HbmTiming t = hbm3Timing();
    PseudoChannel ch0(t);
    BundleStreamEngine upper(ch0, 0, 0, 512 * kKiB, false);
    runEngines({&upper});
    PseudoChannel ch1(t);
    BundleStreamEngine lower(ch1, 0, 1, 512 * kKiB, false);
    runEngines({&lower});
    EXPECT_EQ(upper.finishTime(), lower.finishTime());
}

TEST(ConcurrentEngines, DisjointBundlesProceedTogether)
{
    const HbmTiming t = hbm3Timing();
    // xPU on rank 1 only; PIM bundle on rank 0 half 0.
    std::vector<XpuStreamEngine::BankRef> rank1;
    for (int bg = 0; bg < t.bankGroups; ++bg)
        for (int b = 0; b < t.banksPerGroup; ++b)
            rank1.push_back({1, bg, b});

    PseudoChannel ch(t);
    XpuStreamEngine xpu(ch, rank1, 512 * kKiB);
    BundleStreamEngine pim(ch, 0, 0, 512 * kKiB, false);
    runEngines({&xpu, &pim});

    PseudoChannel solo_ch(t);
    XpuStreamEngine solo(solo_ch, rank1, 512 * kKiB);
    runEngines({&solo});

    // Concurrency costs at most a few percent (shared refresh).
    EXPECT_LT(xpu.finishTime(),
              static_cast<PicoSec>(1.10 *
                                   static_cast<double>(
                                       solo.finishTime())));
}

TEST(FrFcfsController, ServesAllTransactions)
{
    const HbmTiming t = hbm3Timing();
    PseudoChannel ch(t);
    FrFcfsController ctrl(ch);
    for (int i = 0; i < 64; ++i) {
        Transaction txn;
        txn.coord = {0, 0, i % 4, i % 2, i / 8, i % 32};
        ctrl.enqueue(txn);
    }
    ctrl.drain();
    EXPECT_EQ(ctrl.completed().size(), 64u);
    for (const auto &txn : ctrl.completed())
        EXPECT_GT(txn.completed, 0);
}

TEST(FrFcfsController, RowHitsFasterThanConflicts)
{
    const HbmTiming t = hbm3Timing();
    // Same bank, same row: hits after the first activation.
    PseudoChannel hit_ch(t);
    FrFcfsController hits(hit_ch);
    for (int i = 0; i < 16; ++i) {
        Transaction txn;
        txn.coord = {0, 0, 0, 0, 0, i};
        hits.enqueue(txn);
    }
    const PicoSec hit_time = hits.drain();

    // Same bank, alternating rows, window 1 so the scheduler
    // cannot reorder around the conflicts.
    PseudoChannel miss_ch(t);
    FrFcfsController misses(miss_ch, 1);
    for (int i = 0; i < 16; ++i) {
        Transaction txn;
        txn.coord = {0, 0, 0, 0, i % 2, 0};
        misses.enqueue(txn);
    }
    const PicoSec miss_time = misses.drain();
    EXPECT_LT(hit_time * 3, miss_time);
}

TEST(FrFcfsController, ReordersAroundRowConflicts)
{
    // The same conflicting pattern with a full window: FR-FCFS
    // groups the row-0 and row-5 transactions, paying for only two
    // activations instead of sixteen.
    const HbmTiming t = hbm3Timing();
    PseudoChannel in_order_ch(t);
    FrFcfsController in_order(in_order_ch, 1);
    PseudoChannel reordered_ch(t);
    FrFcfsController reordered(reordered_ch, 32);
    for (int i = 0; i < 16; ++i) {
        Transaction txn;
        txn.coord = {0, 0, 0, 0, (i % 2) ? 5 : 0, i};
        in_order.enqueue(txn);
        reordered.enqueue(txn);
    }
    EXPECT_LT(reordered.drain() * 2, in_order.drain());
}

TEST(FrFcfsController, PrioritizesRowHitsInWindow)
{
    const HbmTiming t = hbm3Timing();
    PseudoChannel ch(t);
    FrFcfsController ctrl(ch, 8);
    Transaction a; // opens row 0
    a.coord = {0, 0, 0, 0, 0, 0};
    Transaction b; // row conflict
    b.coord = {0, 0, 0, 0, 5, 0};
    Transaction c; // row hit on row 0
    c.coord = {0, 0, 0, 0, 0, 1};
    ctrl.enqueue(a);
    ctrl.enqueue(b);
    ctrl.enqueue(c);
    ctrl.drain();
    // The hit (c) must complete before the conflict (b).
    ASSERT_EQ(ctrl.completed().size(), 3u);
    EXPECT_EQ(ctrl.completed()[1].coord.row, 0);
    EXPECT_EQ(ctrl.completed()[2].coord.row, 5);
}

TEST(FrFcfsController, WritesComplete)
{
    const HbmTiming t = hbm3Timing();
    PseudoChannel ch(t);
    FrFcfsController ctrl(ch);
    for (int i = 0; i < 8; ++i) {
        Transaction txn;
        txn.coord = {0, 0, 0, 0, 0, i};
        txn.isWrite = (i % 2 == 1);
        ctrl.enqueue(txn);
    }
    ctrl.drain();
    EXPECT_EQ(ctrl.completed().size(), 8u);
}

TEST(AddressMap, RoundTripBijective)
{
    const HbmTiming t = hbm3Timing();
    AddressMap map(t);
    for (std::uint64_t unit = 0; unit < 100000; unit += 97) {
        const std::uint64_t addr = unit * t.columnBytes;
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}

TEST(AddressMap, SequentialAddressesInterleaveChannels)
{
    const HbmTiming t = hbm3Timing();
    AddressMap map(t);
    // Consecutive column bursts within one row walk the row first,
    // then move across pseudo channels.
    const DramCoord c0 = map.decode(0);
    const DramCoord c1 = map.decode(t.rowBytes);
    EXPECT_EQ(c0.pch, 0);
    EXPECT_EQ(c1.pch, 1);
}

TEST(AddressMap, BundleIndexMatchesSectionVC)
{
    DramCoord c;
    c.rank = 0;
    c.bank = 0;
    EXPECT_EQ(c.bundleIndex(), 0);
    c.bank = 1;
    EXPECT_EQ(c.bundleIndex(), 0);
    c.bank = 2;
    EXPECT_EQ(c.bundleIndex(), 1);
    c.rank = 1;
    c.bank = 3;
    EXPECT_EQ(c.bundleIndex(), 3);
    c.bank = 0;
    EXPECT_EQ(c.bundleIndex(), 2);
}

TEST(AddressMap, CapacityBytes)
{
    const HbmTiming t = hbm3Timing();
    AddressMap map(t);
    // 32 pCH x 2 ranks x 16 banks x rows x 1 KiB.
    EXPECT_EQ(map.capacityBytes(16384),
              32ull * 2 * 16 * 16384 * 1024);
}

/** Parameterized sweep: streaming works for many sizes. */
class StreamSizeSweep : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(StreamSizeSweep, CompletesAndStaysUnderPeak)
{
    const HbmTiming t = hbm3Timing();
    const Bytes bytes = GetParam();
    const double bw = runXpuStream(t, bytes);
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, t.pchPeakBytesPerSec() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StreamSizeSweep,
                         ::testing::Values(4 * kKiB, 32 * kKiB,
                                           128 * kKiB, 1 * kMiB));

} // namespace
} // namespace duplex
