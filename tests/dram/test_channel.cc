/**
 * @file
 * Pseudo-channel cross-bank constraint tests: shared bus, tRRD,
 * tFAW, the Logic-PIM TSV slot resource, and refresh gating.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"

namespace duplex
{
namespace
{

class ChannelTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    PseudoChannel ch{timing};
};

TEST_F(ChannelTest, XpuBusSerializesBursts)
{
    ch.recordXpuBurst(0, 0, 0);
    // Different bank group: only the bus occupancy applies.
    EXPECT_EQ(ch.earliestXpuBurst(0, 1, 0), timing.tBURST);
}

TEST_F(ChannelTest, SameBankGroupBurstsSpacedTccdl)
{
    ch.recordXpuBurst(0, 2, 0);
    EXPECT_EQ(ch.earliestXpuBurst(0, 2, 0), timing.tCCDL);
}

TEST_F(ChannelTest, DifferentRankSameGroupIndexUnconstrained)
{
    ch.recordXpuBurst(0, 2, 0);
    // Rank 1's bank group 2 is a different physical group.
    EXPECT_EQ(ch.earliestXpuBurst(1, 2, 0), timing.tBURST);
}

TEST_F(ChannelTest, TrrdShortAcrossGroups)
{
    ch.recordAct(0, 0, 0);
    EXPECT_EQ(ch.earliestAct(0, 1, 0), timing.tRRDS);
}

TEST_F(ChannelTest, TrrdLongWithinGroup)
{
    ch.recordAct(0, 0, 0);
    EXPECT_EQ(ch.earliestAct(0, 0, 0), timing.tRRDL);
}

TEST_F(ChannelTest, RanksActIndependently)
{
    ch.recordAct(0, 0, 0);
    EXPECT_EQ(ch.earliestAct(1, 0, 0), 0);
}

TEST_F(ChannelTest, TfawLimitsFourActs)
{
    // Four ACTs spaced by tRRD_S across groups.
    PicoSec t = 0;
    for (int bg = 0; bg < 4; ++bg) {
        t = ch.earliestAct(0, bg, t);
        ch.recordAct(0, bg, t);
    }
    // The fifth ACT must wait for the first + tFAW.
    const PicoSec fifth = ch.earliestAct(0, 0, 0);
    EXPECT_GE(fifth, timing.tFAW);
}

TEST_F(ChannelTest, TfawWindowSlides)
{
    PicoSec t = 0;
    for (int i = 0; i < 8; ++i) {
        const int bg = i % 4;
        t = ch.earliestAct(0, bg, t);
        ch.recordAct(0, bg, t);
    }
    // Eight ACTs need at least two tFAW windows minus slack.
    EXPECT_GE(t, timing.tFAW);
}

TEST_F(ChannelTest, PimSlotsSpacedTccdl)
{
    ch.recordPimSlot(0);
    EXPECT_EQ(ch.earliestPimSlot(0), timing.tCCDL);
}

TEST_F(ChannelTest, PimReadsRateLimited)
{
    // Eight staggered reads fill exactly one tCCD_L window.
    PicoSec t = 0;
    for (int i = 0; i < 8; ++i) {
        t = ch.earliestPimSlot(t);
        ch.recordPimRead(t);
    }
    EXPECT_EQ(ch.earliestPimSlot(0), timing.tCCDL);
}

TEST_F(ChannelTest, PimPathIndependentOfXpuBus)
{
    ch.recordXpuBurst(0, 0, 0);
    // The PIM TSV group is a separate resource.
    EXPECT_EQ(ch.earliestPimSlot(0), 0);
}

TEST_F(ChannelTest, RefreshGatePassesEarlyTimes)
{
    EXPECT_EQ(ch.gateRefresh(100), 100);
}

TEST_F(ChannelTest, RefreshGateBlocksDuringRefresh)
{
    const PicoSec due = ch.nextRefreshAt();
    const PicoSec gated = ch.gateRefresh(due + 1);
    EXPECT_GE(gated, due + timing.tRFC);
}

TEST_F(ChannelTest, RefreshClosesAllBanks)
{
    Bank &b = ch.bank(0, 0, 0);
    b.act(b.earliestAct(0), 3);
    EXPECT_EQ(b.state(), Bank::State::Active);
    ch.gateRefresh(ch.nextRefreshAt() + 1);
    EXPECT_EQ(ch.bank(0, 0, 0).state(), Bank::State::Precharged);
}

TEST_F(ChannelTest, RefreshReschedules)
{
    const PicoSec first = ch.nextRefreshAt();
    ch.gateRefresh(first + 1);
    EXPECT_EQ(ch.nextRefreshAt(), first + timing.tREFI);
}

TEST_F(ChannelTest, MultipleMissedRefreshesCatchUp)
{
    const PicoSec far = timing.tREFI * 3 + 42;
    const PicoSec gated = ch.gateRefresh(far);
    EXPECT_GE(gated, far);
    EXPECT_GT(ch.nextRefreshAt(), far);
}

TEST_F(ChannelTest, BurstCountsTracked)
{
    ch.recordXpuBurst(0, 0, 0);
    ch.recordXpuBurst(0, 1, ch.earliestXpuBurst(0, 1, 0));
    ch.recordPimSlot(ch.earliestPimSlot(0));
    EXPECT_EQ(ch.xpuBursts(), 2u);
    EXPECT_EQ(ch.pimSlots(), 1u);
}

} // namespace
} // namespace duplex
