/**
 * @file
 * Bank state-machine timing invariants.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"

namespace duplex
{
namespace
{

class BankTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    Bank bank{&timing};
};

TEST_F(BankTest, StartsPrecharged)
{
    EXPECT_EQ(bank.state(), Bank::State::Precharged);
    EXPECT_EQ(bank.openRow(), -1);
}

TEST_F(BankTest, ActOpensRow)
{
    const PicoSec t = bank.earliestAct(0);
    bank.act(t, 17);
    EXPECT_EQ(bank.state(), Bank::State::Active);
    EXPECT_EQ(bank.openRow(), 17);
}

TEST_F(BankTest, ReadWaitsForTrcd)
{
    bank.act(1000, 0);
    EXPECT_GE(bank.earliestRead(0), 1000 + timing.tRCD);
}

TEST_F(BankTest, BackToBackReadsSpacedTccdl)
{
    bank.act(0, 0);
    const PicoSec r1 = bank.earliestRead(0);
    bank.read(r1);
    const PicoSec r2 = bank.earliestRead(0);
    EXPECT_GE(r2, r1 + timing.tCCDL);
}

TEST_F(BankTest, PrechargeWaitsForTras)
{
    bank.act(0, 0);
    EXPECT_GE(bank.earliestPrecharge(0), timing.tRAS);
}

TEST_F(BankTest, PrechargeWaitsForTrtpAfterRead)
{
    bank.act(0, 0);
    const PicoSec rd = bank.earliestRead(0);
    bank.read(rd);
    EXPECT_GE(bank.earliestPrecharge(0), rd + timing.tRTP);
}

TEST_F(BankTest, ActAfterPrechargeWaitsForTrp)
{
    bank.act(0, 0);
    const PicoSec pre = bank.earliestPrecharge(0);
    bank.precharge(pre);
    EXPECT_EQ(bank.state(), Bank::State::Precharged);
    EXPECT_GE(bank.earliestAct(0), pre + timing.tRP);
}

TEST_F(BankTest, FullRowCycleRespectsTrc)
{
    bank.act(0, 0);
    bank.precharge(bank.earliestPrecharge(0));
    const PicoSec act2 = bank.earliestAct(0);
    EXPECT_GE(act2, timing.tRAS + timing.tRP);
}

TEST_F(BankTest, WriteThenPrechargeWaitsForTwr)
{
    bank.act(0, 0);
    const PicoSec wr = bank.earliestWrite(0);
    bank.write(wr);
    EXPECT_GE(bank.earliestPrecharge(0),
              wr + timing.tBURST + timing.tWR);
}

TEST_F(BankTest, WriteToReadTurnaround)
{
    bank.act(0, 0);
    const PicoSec wr = bank.earliestWrite(0);
    bank.write(wr);
    EXPECT_GE(bank.earliestRead(0), wr + timing.tWTRL);
}

TEST_F(BankTest, RefreshClosesRow)
{
    bank.act(0, 5);
    // Refresh may interrupt regardless of bank history.
    bank.completeRefresh(1'000'000);
    EXPECT_EQ(bank.state(), Bank::State::Precharged);
    EXPECT_EQ(bank.openRow(), -1);
    EXPECT_GE(bank.earliestAct(0), 1'000'000);
}

} // namespace
} // namespace duplex
