/**
 * @file
 * Cluster-level stage execution tests: time composition, breakdown
 * accounting, capacity budgets and the hetero strawman.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "sim/presets.hh"

namespace duplex
{
namespace
{

StageShape
decodeStage(int batch, std::int64_t ctx)
{
    StageShape s;
    for (int i = 0; i < batch; ++i)
        s.decodeContexts.push_back(ctx);
    return s;
}

StageShape
mixedStage(int batch, std::int64_t ctx, std::int64_t lin)
{
    StageShape s = decodeStage(batch, ctx);
    s.prefillLengths.push_back(lin);
    return s;
}

TEST(Cluster, EmptyStageFree)
{
    Cluster c(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    const StageResult r = c.executeStage({});
    EXPECT_EQ(r.time, 0);
    EXPECT_DOUBLE_EQ(r.totalEnergyJ(), 0.0);
}

TEST(Cluster, DecodeStagePositiveEverything)
{
    Cluster c(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    const StageResult r = c.executeStage(decodeStage(32, 2048));
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.slice(LayerClass::Fc).time, 0);
    EXPECT_GT(r.slice(LayerClass::AttentionDecode).time, 0);
    EXPECT_GT(r.slice(LayerClass::Moe).time, 0);
    EXPECT_GT(r.slice(LayerClass::Communication).time, 0);
    EXPECT_EQ(r.slice(LayerClass::AttentionPrefill).time, 0);
    EXPECT_GT(r.totalEnergyJ(), 0.0);
}

TEST(Cluster, MoeAndAttentionDominateGpuDecode)
{
    // The Fig. 4(a) observation: in decoding-only stages on GPUs,
    // MoE + attention take most of the time.
    Cluster c(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    const StageResult r = c.executeStage(decodeStage(64, 2048));
    const double moe_attn = psToMs(
        r.slice(LayerClass::Moe).time +
        r.slice(LayerClass::AttentionDecode).time);
    EXPECT_GT(moe_attn, 0.5 * psToMs(r.time));
}

TEST(Cluster, MixedStageAddsPrefillWork)
{
    Cluster c(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    const StageResult dec = c.executeStage(decodeStage(32, 2048));
    Cluster c2(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    const StageResult mix =
        c2.executeStage(mixedStage(32, 2048, 2048));
    EXPECT_GT(mix.time, dec.time);
    EXPECT_GT(mix.slice(LayerClass::AttentionPrefill).time, 0);
}

TEST(Cluster, DuplexFasterThanGpuOnDecode)
{
    Cluster gpu(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    Cluster dup(
        makeClusterConfig(SystemKind::Duplex, mixtralConfig()));
    const StageShape s = decodeStage(64, 2048);
    EXPECT_LT(dup.executeStage(s).time, gpu.executeStage(s).time);
}

TEST(Cluster, CoProcessingHelpsMixedStage)
{
    Cluster base(
        makeClusterConfig(SystemKind::Duplex, mixtralConfig()));
    Cluster pe(
        makeClusterConfig(SystemKind::DuplexPE, mixtralConfig()));
    const StageShape s = mixedStage(64, 2048, 2048);
    EXPECT_LE(pe.executeStage(s).time, base.executeStage(s).time);
}

TEST(Cluster, EtIncreasesExpertsOnLowEngine)
{
    Cluster pe(
        makeClusterConfig(SystemKind::DuplexPE, mixtralConfig()));
    Cluster et(
        makeClusterConfig(SystemKind::DuplexPEET, mixtralConfig()));
    const StageShape s = decodeStage(64, 1024);
    pe.executeStage(s);
    et.executeStage(s);
    // EP gives each device 2 experts; ET exposes all 8.
    EXPECT_LE(pe.lastExpertsOnLow(), 2);
    EXPECT_GT(et.lastExpertsOnLow(), 2);
}

TEST(Cluster, DeterministicForSameSeed)
{
    const auto cfg =
        makeClusterConfig(SystemKind::DuplexPEET, glamConfig(), 42);
    Cluster a(cfg);
    Cluster b(cfg);
    const StageShape s = decodeStage(64, 1024);
    EXPECT_EQ(a.executeStage(s).time, b.executeStage(s).time);
}

TEST(Cluster, SeedChangesExpertDraw)
{
    Cluster a(
        makeClusterConfig(SystemKind::DuplexPEET, glamConfig(), 1));
    Cluster b(
        makeClusterConfig(SystemKind::DuplexPEET, glamConfig(), 2));
    const StageShape s = decodeStage(64, 1024);
    // Different gate draws almost surely differ in time.
    EXPECT_NE(a.executeStage(s).time, b.executeStage(s).time);
}

TEST(Cluster, KvBudgetFitsModels)
{
    for (auto kind : {SystemKind::Gpu, SystemKind::Duplex}) {
        Cluster c(makeClusterConfig(kind, mixtralConfig()));
        EXPECT_GT(c.maxKvTokens(), 100000);
    }
    Cluster g(makeClusterConfig(SystemKind::Gpu, grok1Config()));
    EXPECT_GT(g.maxKvTokens(), 100000);
}

TEST(Cluster, TimeScalesWithLayers)
{
    ModelConfig small = mixtralConfig();
    small.numLayers = 8;
    auto cfg_small = makeClusterConfig(SystemKind::Gpu, small);
    auto cfg_full =
        makeClusterConfig(SystemKind::Gpu, mixtralConfig());
    Cluster a(cfg_small);
    Cluster b(cfg_full);
    const StageShape s = decodeStage(32, 1024);
    const double ratio =
        static_cast<double>(b.executeStage(s).time) /
        static_cast<double>(a.executeStage(s).time);
    EXPECT_GT(ratio, 3.4);
    EXPECT_LT(ratio, 4.6);
}

TEST(Cluster, EnergySumsAcrossDevices)
{
    // 2xGPU halves per-device work but doubles device count:
    // total energy stays in the same neighbourhood.
    Cluster one(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    Cluster two(
        makeClusterConfig(SystemKind::Gpu2x, mixtralConfig()));
    const StageShape s = decodeStage(64, 2048);
    const double j1 = one.executeStage(s).totalEnergyJ();
    const double j2 = two.executeStage(s).totalEnergyJ();
    EXPECT_NEAR(j2, j1, j1 * 0.25);
}

TEST(HeteroCluster, ExecutesAndSplitsClasses)
{
    HeteroCluster h(makeHeteroConfig(mixtralConfig()));
    const StageResult r = h.executeStage(decodeStage(32, 2048));
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.slice(LayerClass::Moe).time, 0);
    EXPECT_GT(r.slice(LayerClass::Communication).time, 0);
}

TEST(HeteroCluster, KvCapacityBelowHomogeneous)
{
    // Fig. 5(c): the hetero system wastes capacity, shrinking the
    // maximum batch.
    Cluster gpu(makeClusterConfig(SystemKind::Gpu, mixtralConfig()));
    HeteroCluster h(makeHeteroConfig(mixtralConfig()));
    EXPECT_LT(h.maxKvTokens(), gpu.maxKvTokens());
}

TEST(HeteroCluster, MixedStageMoeSuffers)
{
    // The Section III-B pathology: mixed-stage MoE on weak PIM
    // compute hurts the hetero system vs Duplex.
    HeteroCluster h(makeHeteroConfig(mixtralConfig()));
    Cluster dup(
        makeClusterConfig(SystemKind::DuplexPE, mixtralConfig()));
    const StageShape s = mixedStage(32, 2048, 2048);
    EXPECT_GT(h.executeStage(s).time, dup.executeStage(s).time);
}

} // namespace
} // namespace duplex
