/**
 * @file
 * Collective cost-model tests.
 */

#include <gtest/gtest.h>

#include "parallel/collectives.hh"

namespace duplex
{
namespace
{

const LinkSpec kNvlink{450e9, 700 * kPsPerNs};
const LinkSpec kIb{200e9, 2 * kPsPerUs};

TEST(Collectives, SinglePeerIsFree)
{
    EXPECT_EQ(allReduceTime(1 * kGiB, 1, kNvlink), 0);
    EXPECT_EQ(allToAllTime(1 * kGiB, 1, kNvlink), 0);
}

TEST(Collectives, ZeroBytesIsFree)
{
    EXPECT_EQ(allReduceTime(0, 8, kNvlink), 0);
    EXPECT_EQ(allToAllTime(0, 8, kNvlink), 0);
    EXPECT_EQ(p2pTime(0, kNvlink), 0);
}

TEST(Collectives, AllReduceRingFactor)
{
    // 2 (n-1)/n B / bw plus latency terms.
    const Bytes bytes = 1'000'000'000;
    const int n = 4;
    const PicoSec t = allReduceTime(bytes, n, kNvlink);
    const double expect_sec = 2.0 * 3.0 / 4.0 * 1e9 / 450e9;
    EXPECT_NEAR(static_cast<double>(t),
                expect_sec * 1e12 + 6.0 * 700e3, 1e6);
}

TEST(Collectives, AllToAllCheaperThanAllReduce)
{
    const Bytes bytes = 64 * kMiB;
    EXPECT_LT(allToAllTime(bytes, 8, kNvlink),
              allReduceTime(bytes, 8, kNvlink));
}

TEST(Collectives, MonotoneInBytes)
{
    PicoSec prev = 0;
    for (Bytes b = kMiB; b <= 64 * kMiB; b *= 2) {
        const PicoSec t = allReduceTime(b, 4, kNvlink);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Collectives, InterNodeSlower)
{
    const Bytes bytes = 16 * kMiB;
    EXPECT_GT(allReduceTime(bytes, 2, kIb),
              allReduceTime(bytes, 2, kNvlink));
}

TEST(Collectives, P2pBandwidthPlusLatency)
{
    const PicoSec t = p2pTime(450'000'000'000ull, kNvlink);
    // 450 GB at 450 GB/s = 1 s (plus tiny latency).
    EXPECT_NEAR(psToSec(t), 1.0, 1e-5);
}

TEST(Collectives, HierarchicalAddsInterNodeLeg)
{
    const Bytes bytes = 16 * kMiB;
    const PicoSec flat =
        hierarchicalAllReduceTime(bytes, 8, 1, kNvlink, kIb);
    const PicoSec two_node =
        hierarchicalAllReduceTime(bytes, 8, 2, kNvlink, kIb);
    EXPECT_EQ(flat, allReduceTime(bytes, 8, kNvlink));
    EXPECT_GT(two_node, flat);
}

TEST(Collectives, LinkQueueIdleTransferMatchesP2p)
{
    LinkQueue link(kNvlink);
    const Bytes bytes = 64 * kMiB;
    EXPECT_EQ(link.transfer(1000, bytes),
              1000 + p2pTime(bytes, kNvlink));
    EXPECT_EQ(link.freeAt(), 1000 + p2pTime(bytes, kNvlink));
}

TEST(Collectives, LinkQueueSerializesConcurrentTransfers)
{
    // Two transfers issued at the same instant: the second queues
    // FIFO behind the first instead of copying in parallel.
    LinkQueue link(kNvlink);
    const Bytes bytes = 64 * kMiB;
    const PicoSec each = p2pTime(bytes, kNvlink);
    const PicoSec first = link.transfer(0, bytes);
    const PicoSec second = link.transfer(0, bytes);
    EXPECT_EQ(first, each);
    EXPECT_EQ(second, 2 * each);
}

TEST(Collectives, LinkQueueIdleGapDoesNotAccumulate)
{
    // A transfer issued after the link fell idle starts at its
    // issue time, not at the previous completion.
    LinkQueue link(kNvlink);
    const Bytes bytes = 16 * kMiB;
    const PicoSec each = p2pTime(bytes, kNvlink);
    link.transfer(0, bytes);
    const PicoSec late = link.transfer(10 * each, bytes);
    EXPECT_EQ(late, 11 * each);
}

} // namespace
} // namespace duplex
