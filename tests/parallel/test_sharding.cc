/**
 * @file
 * Sharding-plan tests: the Fig. 3 distribution and the ET variant.
 */

#include <gtest/gtest.h>

#include "parallel/sharding.hh"

namespace duplex
{
namespace
{

SystemTopology
topo(int nodes, int per_node)
{
    SystemTopology t;
    t.numNodes = nodes;
    t.devicesPerNode = per_node;
    return t;
}

TEST(Sharding, MixtralExpertParallel)
{
    const auto plan =
        makeShardingPlan(mixtralConfig(), topo(1, 4),
                         ExpertPlacement::ExpertParallel);
    EXPECT_EQ(plan.tpDegree, 4);
    EXPECT_EQ(plan.dpDegree, 1);
    EXPECT_EQ(plan.expertsPerDevice, 2); // 8 experts / 4 devices
    EXPECT_EQ(plan.expertTpDegree, 1);
    EXPECT_DOUBLE_EQ(plan.expertShardFraction(), 1.0);
}

TEST(Sharding, GlamExpertParallel)
{
    const auto plan = makeShardingPlan(
        glamConfig(), topo(1, 8), ExpertPlacement::ExpertParallel);
    EXPECT_EQ(plan.expertsPerDevice, 8); // 64 / 8
}

TEST(Sharding, Grok1ExpertsSharded)
{
    // 8 experts over 16 devices: each expert split over 2.
    const auto plan = makeShardingPlan(
        grok1Config(), topo(2, 8), ExpertPlacement::ExpertParallel);
    EXPECT_EQ(plan.expertsPerDevice, 1);
    EXPECT_EQ(plan.expertTpDegree, 2);
    EXPECT_DOUBLE_EQ(plan.expertShardFraction(), 0.5);
}

TEST(Sharding, MixtralExpertTensorParallel)
{
    const auto plan =
        makeShardingPlan(mixtralConfig(), topo(1, 4),
                         ExpertPlacement::ExpertTensorParallel);
    // Every device sees all 8 experts at 1/4 each (Section V-B).
    EXPECT_EQ(plan.expertsPerDevice, 8);
    EXPECT_EQ(plan.expertTpDegree, 4);
    EXPECT_DOUBLE_EQ(plan.expertShardFraction(), 0.25);
}

TEST(Sharding, Grok1EtSplitsExpertsAcrossNodes)
{
    const auto plan =
        makeShardingPlan(grok1Config(), topo(2, 8),
                         ExpertPlacement::ExpertTensorParallel);
    EXPECT_EQ(plan.expertsPerDevice, 4); // 8 experts / 2 nodes
    EXPECT_EQ(plan.expertTpDegree, 8);
    EXPECT_EQ(plan.expertEpNodes, 2);
}

TEST(Sharding, DenseModelHasNoExperts)
{
    const auto plan = makeShardingPlan(
        llama3Config(), topo(1, 4), ExpertPlacement::ExpertParallel);
    EXPECT_EQ(plan.expertsPerDevice, 0);
}

TEST(Sharding, WeightBytesFitOnDevices)
{
    // Every Section VI configuration must fit in 80 GB per device.
    struct Case
    {
        ModelConfig model;
        SystemTopology t;
    };
    const std::vector<Case> cases{
        {mixtralConfig(), topo(1, 4)},
        {glamConfig(), topo(1, 8)},
        {grok1Config(), topo(2, 8)},
        {optConfig(), topo(1, 4)},
        {llama3Config(), topo(1, 4)},
    };
    for (const auto &c : cases) {
        const auto plan = makeShardingPlan(
            c.model, c.t, ExpertPlacement::ExpertParallel);
        const Bytes per_dev =
            weightBytesPerDevice(c.model, c.t, plan);
        EXPECT_LT(per_dev, 80ull * kGiB)
            << c.model.name << " does not fit";
    }
}

TEST(Sharding, WeightTotalsConserved)
{
    // Summed across devices, shards reconstruct the model (no
    // duplication in a single-node EP system).
    const ModelConfig m = mixtralConfig();
    const SystemTopology t = topo(1, 4);
    const auto plan =
        makeShardingPlan(m, t, ExpertPlacement::ExpertParallel);
    const double total = static_cast<double>(
        weightBytesPerDevice(m, t, plan) * t.totalDevices());
    EXPECT_NEAR(total, static_cast<double>(m.weightBytes()),
                static_cast<double>(m.weightBytes()) * 0.01);
}

TEST(Sharding, EtSameFootprintAsEpSingleNode)
{
    // On one node, ET re-slices but does not duplicate weights.
    const ModelConfig m = mixtralConfig();
    const SystemTopology t = topo(1, 4);
    const auto ep =
        makeShardingPlan(m, t, ExpertPlacement::ExpertParallel);
    const auto et =
        makeShardingPlan(m, t, ExpertPlacement::ExpertTensorParallel);
    EXPECT_EQ(weightBytesPerDevice(m, t, ep),
              weightBytesPerDevice(m, t, et));
}

TEST(Sharding, DataParallelismDuplicatesNonExpert)
{
    // Two DP nodes hold two copies of non-expert weights.
    const ModelConfig m = llama3Config();
    const auto one = weightBytesPerDevice(
        m, topo(1, 4),
        makeShardingPlan(m, topo(1, 4),
                         ExpertPlacement::ExpertParallel));
    const auto two = weightBytesPerDevice(
        m, topo(2, 4),
        makeShardingPlan(m, topo(2, 4),
                         ExpertPlacement::ExpertParallel));
    EXPECT_EQ(one, two); // per-device bytes identical => duplicated
}

} // namespace
} // namespace duplex
