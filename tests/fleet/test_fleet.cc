/**
 * @file
 * FleetDriver tests — the tentpole guarantees:
 *
 *  - Golden equivalence: a 1-instance round-robin fleet reproduces
 *    the bare SimulationEngine's SimResult bit-for-bit, closed and
 *    open loop (the fleet steps the identical DriverLoop code).
 *  - Determinism: two identical fleet runs agree sample-for-sample
 *    for every policy.
 *  - Least-loaded never admits past any instance's KV budget.
 *  - Autoscaling drains before retiring: a retired instance has
 *    zero in-flight requests, and every routed request retires.
 *  - Session affinity pins each session to one instance fleet-wide.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fleet/fleet.hh"
#include "sim/engine.hh"
#include "sim/registry.hh"

namespace duplex
{
namespace
{

SimConfig
baseSim()
{
    SimConfig c;
    c.systemName = "gpu";
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workload.meanInputLen = 256;
    c.workload.meanOutputLen = 64;
    c.numRequests = 48;
    c.warmupRequests = 8;
    c.maxStages = 20000;
    return c;
}

/** Bit-exact comparison of two sample accumulators. */
void
expectSameSamples(const SampleStats &a, const SampleStats &b,
                  const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what; // same fp add order
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_EQ(a.percentile(p), b.percentile(p))
            << what << " p" << p;
}

void
expectSameSimResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    EXPECT_EQ(a.metrics.totalTokens, b.metrics.totalTokens);
    EXPECT_EQ(a.metrics.decodingOnlyStages,
              b.metrics.decodingOnlyStages);
    EXPECT_EQ(a.metrics.mixedStages, b.metrics.mixedStages);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.peakBatch, b.peakBatch);
    EXPECT_EQ(a.totals.time, b.totals.time);
    EXPECT_EQ(a.totals.totalEnergyJ(), b.totals.totalEnergyJ());
    expectSameSamples(a.metrics.tbtMs, b.metrics.tbtMs, "tbt");
    expectSameSamples(a.metrics.t2ftMs, b.metrics.t2ftMs, "t2ft");
    expectSameSamples(a.metrics.e2eMs, b.metrics.e2eMs, "e2e");
}

void
expectGoldenEquivalence(const SimConfig &sim)
{
    const SimResult bare = SimulationEngine(sim).run();

    FleetConfig fc;
    fc.sim = sim;
    fc.instances = 1;
    fc.policy = "round-robin";
    const FleetResult fleet = FleetDriver(fc).run();

    ASSERT_EQ(fleet.perInstance.size(), 1u);
    expectSameSimResult(fleet.perInstance[0], bare);
    // The merged view of a 1-instance fleet is that instance.
    expectSameSamples(fleet.metrics.e2eMs, bare.metrics.e2eMs,
                      "merged e2e");
    EXPECT_EQ(fleet.generatedTokens, bare.generatedTokens);
    EXPECT_EQ(fleet.requestsRouted, sim.numRequests);
    EXPECT_EQ(fleet.requestsRetired, sim.numRequests);
}

TEST(Fleet, OneInstanceMatchesBareEngineClosedLoop)
{
    expectGoldenEquivalence(baseSim());
}

TEST(Fleet, OneInstanceMatchesBareEngineOpenLoop)
{
    SimConfig sim = baseSim();
    sim.workload.qps = 8.0;
    expectGoldenEquivalence(sim);
}

TEST(Fleet, OneInstanceMatchesBareEngineOnDuplex)
{
    SimConfig sim = baseSim();
    sim.systemName = "duplex-pe-et";
    sim.workload.qps = 6.0;
    expectGoldenEquivalence(sim);
}

TEST(Fleet, RunsAreDeterministicForEveryPolicy)
{
    for (const std::string &policy :
         registeredRoutingPolicies()) {
        SCOPED_TRACE(policy);
        FleetConfig fc;
        fc.sim = baseSim();
        fc.sim.workload.qps = 12.0;
        fc.sim.workload.numSessions = 6;
        fc.sim.numRequests = 64;
        fc.instances = 4;
        fc.policy = policy;
        const FleetResult a = FleetDriver(fc).run();
        const FleetResult b = FleetDriver(fc).run();
        EXPECT_EQ(a.requestsRouted, b.requestsRouted);
        EXPECT_EQ(a.requestsRetired, b.requestsRetired);
        EXPECT_EQ(a.generatedTokens, b.generatedTokens);
        EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
        EXPECT_EQ(a.totals.time, b.totals.time);
        expectSameSamples(a.metrics.e2eMs, b.metrics.e2eMs, "e2e");
        expectSameSamples(a.metrics.tbtMs, b.metrics.tbtMs, "tbt");
        ASSERT_EQ(a.perInstance.size(), b.perInstance.size());
        for (std::size_t i = 0; i < a.perInstance.size(); ++i)
            EXPECT_EQ(a.perInstance[i].generatedTokens,
                      b.perInstance[i].generatedTokens)
                << "instance " << i;
    }
}

/** Watches every stage of every instance for KV overcommit. */
class KvBudgetWatch : public FleetObserver
{
  public:
    explicit KvBudgetWatch(std::int64_t max_kv) : maxKv_(max_kv) {}

    void onStage(int instance, const StageObservation &obs) override
    {
        EXPECT_LE(obs.kvTokens, maxKv_)
            << "instance " << instance << " stage " << obs.index;
        ++stages_;
    }

    std::int64_t stages() const { return stages_; }

  private:
    std::int64_t maxKv_;
    std::int64_t stages_ = 0;
};

TEST(Fleet, LeastLoadedNeverExceedsAnyInstanceKvBudget)
{
    FleetConfig fc;
    fc.sim = baseSim();
    // Long sequences against the GPU KV budget: admission pressure
    // on every instance.
    fc.sim.workload.meanInputLen = 2048;
    fc.sim.workload.meanOutputLen = 512;
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 96;
    fc.sim.maxStages = 100000;
    fc.instances = 3;
    fc.policy = "least-loaded";

    const std::int64_t max_kv =
        makeSystem("gpu", fc.sim.model)->maxKvTokens();
    KvBudgetWatch watch(max_kv);
    FleetDriver driver(fc);
    driver.addObserver(&watch);
    const FleetResult result = driver.run();
    EXPECT_GT(watch.stages(), 0);
    EXPECT_EQ(result.requestsRouted, result.requestsRetired);
}

/** Records the route map and scale events of a fleet run. */
class RouteRecorder : public FleetObserver
{
  public:
    void onRequestRouted(int instance, const Request &request,
                         PicoSec) override
    {
        routes.push_back({instance, request.sessionId});
    }

    void onScaleEvent(const ScaleEvent &event) override
    {
        events.push_back(event);
    }

    struct Route
    {
        int instance;
        std::int64_t session;
    };
    std::vector<Route> routes;
    std::vector<ScaleEvent> events;
};

TEST(Fleet, SessionAffinityPinsSessionsFleetWide)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 12.0;
    fc.sim.workload.numSessions = 8;
    fc.sim.numRequests = 64;
    fc.instances = 4;
    fc.policy = "session-affinity";

    RouteRecorder recorder;
    FleetDriver driver(fc);
    driver.addObserver(&recorder);
    driver.run();

    std::map<std::int64_t, int> pin;
    std::set<int> used;
    for (const RouteRecorder::Route &r : recorder.routes) {
        ASSERT_GE(r.session, 0);
        const auto it = pin.find(r.session);
        if (it == pin.end())
            pin[r.session] = r.instance;
        else
            EXPECT_EQ(it->second, r.instance)
                << "session " << r.session << " moved";
        used.insert(r.instance);
    }
    EXPECT_EQ(pin.size(), 8u);
    EXPECT_GT(used.size(), 1u) << "all sessions on one instance";
}

/** Session fleet config with a per-instance prefix cache. */
FleetConfig
sessionFleet(const std::string &policy)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workloadName = "session";
    fc.sim.workload.qps = 4.0; // fresh sessions/s
    fc.sim.workload.meanInputLen = 192;
    fc.sim.workload.meanOutputLen = 48;
    fc.sim.workload.sessionTurns = 4;
    fc.sim.workload.sharedPrefixTokens = 96;
    fc.sim.workload.meanThinkSec = 0.1;
    fc.sim.numRequests = 64;
    fc.sim.maxStages = 200000;
    fc.sim.prefixCache.budgetBytes = 512ll << 20;
    fc.sim.prefixCache.evictPolicy = "lru";
    fc.sim.prefixCache.sharedPrefixTokens =
        fc.sim.workload.sharedPrefixTokens;
    fc.instances = 2;
    fc.policy = policy;
    return fc;
}

TEST(Fleet, SessionCacheRunsAreDeterministic)
{
    // The retirement-feedback channel (instance retirements fold
    // back into the shared session stream) plus the per-instance
    // pools must keep double runs bit-identical.
    const FleetConfig fc = sessionFleet("session-affinity");
    const FleetResult a = FleetDriver(fc).run();
    const FleetResult b = FleetDriver(fc).run();
    EXPECT_EQ(a.requestsRouted, b.requestsRouted);
    EXPECT_EQ(a.requestsRetired, b.requestsRetired);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    expectSameSamples(a.metrics.e2eMs, b.metrics.e2eMs, "e2e");
    expectSameSamples(a.metrics.t2ftMs, b.metrics.t2ftMs, "t2ft");
    EXPECT_EQ(a.prefixCache.lookups, b.prefixCache.lookups);
    EXPECT_EQ(a.prefixCache.hits, b.prefixCache.hits);
    EXPECT_EQ(a.prefixCache.hitTokens, b.prefixCache.hitTokens);
    EXPECT_EQ(a.prefixCache.evictions, b.prefixCache.evictions);
    EXPECT_GT(a.prefixCache.hits, 0);
}

TEST(Fleet, SessionAffinityBeatsLeastLoadedOnHitRate)
{
    // Each instance owns its pool: affinity keeps a session's turns
    // on the instance holding their prefix KV; least-loaded
    // scatters them across cold pools.
    const FleetResult affinity =
        FleetDriver(sessionFleet("session-affinity")).run();
    const FleetResult scattered =
        FleetDriver(sessionFleet("least-loaded")).run();
    EXPECT_GT(affinity.prefixCache.hits, 0);
    EXPECT_GE(affinity.prefixCache.hitRate(),
              scattered.prefixCache.hitRate());
    // The fleet aggregates every instance's warm-token count.
    EXPECT_GT(affinity.prefixCache.hitTokens, 0);
}

TEST(Fleet, AutoscalingDrainsBeforeRetiring)
{
    FleetConfig fc;
    fc.sim = baseSim();
    // Two diurnal periods: the ramp peak forces scale-ups, the
    // trough forces drains.
    fc.sim.workloadName = "diurnal";
    fc.sim.workload.diurnalLowQps = 0.5;
    fc.sim.workload.diurnalHighQps = 40.0;
    fc.sim.workload.diurnalPeriodSec = 16.0;
    fc.sim.workload.meanInputLen = 128;
    fc.sim.workload.meanOutputLen = 32;
    fc.sim.numRequests = 600;
    fc.sim.maxStages = 200000;
    fc.instances = 1;
    fc.policy = "least-loaded";
    fc.scaling.enabled = true;
    fc.scaling.minInstances = 1;
    fc.scaling.maxInstances = 4;
    fc.scaling.upQpsPerInstance = 6.0;
    fc.scaling.downQpsPerInstance = 2.0;
    fc.scaling.windowSec = 2.0;
    fc.scaling.cooldownSec = 3.0;

    RouteRecorder recorder;
    FleetUtilization util;
    FleetDriver driver(fc);
    driver.addObserver(&recorder);
    driver.addObserver(&util);
    const FleetResult result = driver.run();

    // The ramp actually scaled, both directions.
    EXPECT_GE(result.scaleUps, 1);
    EXPECT_GE(result.scaleDowns, 1);
    EXPECT_GT(result.peakInstances, 1);
    EXPECT_EQ(result.scaleUps,
              static_cast<int>(result.perInstance.size()) -
                  fc.instances);

    // Drain-before-retire: every Retire event follows a Drain of
    // the same instance, never before its drain.
    std::set<int> draining;
    for (const ScaleEvent &e : recorder.events) {
        if (e.kind == ScaleEvent::Kind::Drain)
            draining.insert(e.instance);
        else if (e.kind == ScaleEvent::Kind::Retire)
            EXPECT_TRUE(draining.count(e.instance))
                << "instance " << e.instance
                << " retired without draining";
    }

    // Nothing in flight was dropped: every routed request retired,
    // on whichever instance it was routed to.
    EXPECT_EQ(result.requestsRouted, fc.sim.numRequests);
    EXPECT_EQ(result.requestsRetired, result.requestsRouted);
    std::int64_t routed = 0, retired = 0;
    for (const FleetUtilization::InstanceStats &s :
         util.instances()) {
        EXPECT_EQ(s.routed, s.retired) << "instance " << s.id;
        routed += s.routed;
        retired += s.retired;
    }
    EXPECT_EQ(routed, result.requestsRouted);
    EXPECT_EQ(retired, result.requestsRetired);
}

TEST(Fleet, FleetSloAttainmentCountsEveryRetirement)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 10.0;
    fc.instances = 2;
    fc.policy = "join-shortest-queue";

    FleetSloAttainment slo;
    FleetDriver driver(fc);
    driver.addObserver(&slo);
    const FleetResult result = driver.run();

    EXPECT_EQ(slo.attainment().totalRequests(),
              result.requestsRetired);
    EXPECT_GE(slo.attainment().attainment(), 0.0);
    EXPECT_LE(slo.attainment().attainment(), 1.0);
    EXPECT_GE(slo.attainment().goodputTokensPerSec(), 0.0);
}

TEST(Fleet, MoreInstancesRetireEverything)
{
    // Sanity across fleet sizes: all requests route and retire, and
    // round-robin spreads a closed-loop stream evenly.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.numRequests = 64;
    fc.instances = 4;
    fc.policy = "round-robin";

    FleetUtilization util;
    FleetDriver driver(fc);
    driver.addObserver(&util);
    const FleetResult result = driver.run();

    EXPECT_EQ(result.requestsRouted, 64);
    EXPECT_EQ(result.requestsRetired, 64);
    ASSERT_EQ(util.instances().size(), 4u);
    for (const FleetUtilization::InstanceStats &s :
         util.instances())
        EXPECT_EQ(s.routed, 16) << "instance " << s.id;
}

TEST(Fleet, ScalingRequiresOpenLoop)
{
    EXPECT_EXIT(
        {
            FleetConfig fc;
            fc.sim = baseSim(); // closed loop: no arrival stamps
            fc.scaling.enabled = true;
            FleetDriver(fc).run();
        },
        ::testing::ExitedWithCode(1), "open-loop");
}

} // namespace
} // namespace duplex
