/**
 * @file
 * Routing-policy tests: the policy registry mirrors the
 * system/workload registries (stock policies present, sorted ids,
 * runtime plug-in, fatal on unknown/duplicate), and each stock
 * policy's routing rule is checked against hand-built instance
 * snapshots.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fleet/policy.hh"

namespace duplex
{
namespace
{

InstanceStatus
status(int id, std::size_t queued, std::size_t active,
       std::int64_t headroom)
{
    InstanceStatus s;
    s.id = id;
    s.queueDepth = queued;
    s.activeCount = active;
    s.kvHeadroom = headroom;
    s.maxKvTokens = 1 << 20;
    return s;
}

TEST(PolicyRegistry, ListsEveryStockPolicy)
{
    for (const std::string id :
         {"round-robin", "least-loaded", "join-shortest-queue",
          "session-affinity"}) {
        EXPECT_TRUE(RoutingPolicyRegistry::instance().contains(id))
            << "missing policy: " << id;
        EXPECT_FALSE(
            RoutingPolicyRegistry::instance().summary(id).empty());
    }
    EXPECT_GE(registeredRoutingPolicies().size(), 4u);
}

TEST(PolicyRegistry, IdsAreSorted)
{
    const std::vector<std::string> ids =
        registeredRoutingPolicies();
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(PolicyRegistry, EveryPolicyBuildsAndRoutes)
{
    const std::vector<InstanceStatus> fleet = {
        status(0, 0, 0, 1000), status(1, 0, 0, 1000)};
    Request r;
    r.id = 0;
    for (const std::string &id : registeredRoutingPolicies()) {
        SCOPED_TRACE(id);
        const std::unique_ptr<RoutingPolicy> policy =
            makeRoutingPolicy(id);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), id);
        EXPECT_FALSE(policy->describe().empty());
        const int target = policy->route(r, fleet);
        EXPECT_TRUE(target == 0 || target == 1);
    }
}

TEST(PolicyRegistry, UnknownPolicyIsFatal)
{
    EXPECT_EXIT({ makeRoutingPolicy("no-such-policy"); },
                ::testing::ExitedWithCode(1), "unknown policy");
}

TEST(PolicyRegistry, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(
        {
            registerRoutingPolicy("round-robin", "duplicate", [] {
                return makeRoutingPolicy("least-loaded");
            });
        },
        ::testing::ExitedWithCode(1), "duplicate policy id");
}

TEST(PolicyRegistry, UserPoliciesPlugIn)
{
    // A new routing policy is one registration away, like systems
    // and workloads.
    if (!RoutingPolicyRegistry::instance().contains("test-first")) {
        class FirstPolicy : public RoutingPolicy
        {
          public:
            int route(const Request &,
                      const std::vector<InstanceStatus> &instances)
                override
            {
                return instances.front().id;
            }
            const std::string &name() const override
            {
                static const std::string kName = "test-first";
                return kName;
            }
            std::string describe() const override
            {
                return "always the lowest id (test only)";
            }
        };
        registerRoutingPolicy(
            "test-first", "always the lowest id (test only)",
            [] { return std::make_unique<FirstPolicy>(); });
    }
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("test-first");
    Request r;
    EXPECT_EQ(policy->route(r, {status(3, 0, 0, 0),
                                status(5, 0, 0, 0)}),
              3);
}

TEST(Policy, RoundRobinCyclesThroughInstances)
{
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("round-robin");
    const std::vector<InstanceStatus> fleet = {
        status(0, 0, 0, 0), status(1, 0, 0, 0),
        status(2, 0, 0, 0)};
    Request r;
    std::vector<int> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(policy->route(r, fleet));
    EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Policy, RoundRobinCursorSurvivesFleetResize)
{
    // The cursor counts routed requests, so a grown fleet keeps
    // rotating instead of restarting at instance 0.
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("round-robin");
    Request r;
    std::vector<InstanceStatus> fleet = {status(0, 0, 0, 0),
                                         status(1, 0, 0, 0)};
    EXPECT_EQ(policy->route(r, fleet), 0);
    EXPECT_EQ(policy->route(r, fleet), 1);
    fleet.push_back(status(2, 0, 0, 0));
    EXPECT_EQ(policy->route(r, fleet), 2);
    EXPECT_EQ(policy->route(r, fleet), 0);
}

TEST(Policy, LeastLoadedPicksMostKvHeadroom)
{
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("least-loaded");
    Request r;
    EXPECT_EQ(policy->route(r, {status(0, 0, 0, 100),
                                status(1, 0, 0, 900),
                                status(2, 0, 0, 500)}),
              1);
    // Ties break toward the lowest instance id.
    EXPECT_EQ(policy->route(r, {status(0, 0, 0, 500),
                                status(1, 0, 0, 500)}),
              0);
}

TEST(Policy, JoinShortestQueuePicksFewestInFlight)
{
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("join-shortest-queue");
    Request r;
    // Queue depth and active batch both count as in-flight.
    EXPECT_EQ(policy->route(r, {status(0, 4, 4, 0),
                                status(1, 0, 7, 0),
                                status(2, 2, 3, 0)}),
              2);
    EXPECT_EQ(policy->route(r, {status(0, 1, 1, 0),
                                status(1, 2, 0, 0)}),
              0);
}

TEST(Policy, SessionAffinityPinsASessionToOneInstance)
{
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("session-affinity");
    const std::vector<InstanceStatus> fleet = {
        status(0, 0, 0, 0), status(1, 0, 0, 0),
        status(2, 0, 0, 0), status(3, 0, 0, 0)};
    for (std::int64_t session = 0; session < 16; ++session) {
        Request a;
        a.id = static_cast<int>(session);
        a.sessionId = session;
        Request b;
        b.id = static_cast<int>(100 + session);
        b.sessionId = session;
        EXPECT_EQ(policy->route(a, fleet), policy->route(b, fleet))
            << "session " << session;
    }
}

TEST(Policy, SessionAffinitySpreadsSessionsAndFallsBack)
{
    const std::unique_ptr<RoutingPolicy> policy =
        makeRoutingPolicy("session-affinity");
    const std::vector<InstanceStatus> fleet = {
        status(0, 0, 0, 0), status(1, 0, 0, 0),
        status(2, 0, 0, 0), status(3, 0, 0, 0)};
    std::vector<int> hits(4, 0);
    for (std::int64_t session = 0; session < 64; ++session) {
        Request r;
        r.id = static_cast<int>(session);
        r.sessionId = session;
        ++hits[static_cast<std::size_t>(policy->route(r, fleet))];
    }
    // The splitmix hash spreads 64 sessions over 4 instances;
    // no instance should be starved or hoard them all.
    for (int h : hits) {
        EXPECT_GT(h, 0);
        EXPECT_LT(h, 40);
    }
    // Session-less requests hash their request id: deterministic,
    // and distinct ids need not collide on one instance.
    Request a;
    a.id = 7;
    Request b;
    b.id = 7;
    EXPECT_EQ(policy->route(a, fleet), policy->route(b, fleet));
}

} // namespace
} // namespace duplex
