/**
 * @file
 * Fault-injection tests — the PR-7 guarantees:
 *
 *  - A fleet with faults disabled is bit-identical to one that never
 *    heard of the fault subsystem (inert FaultSpec/RetrySpec knobs
 *    change nothing), and healthy-first routing equals least-loaded
 *    on a fault-free fleet.
 *  - Faulted runs are deterministic: identical configs agree on
 *    every sample, counter, and the full fault timeline.
 *  - Crash semantics: queued + active requests evicted, retried
 *    after backoff, the instance rejoins at its repair time, and the
 *    accounting invariants hold (retired + dropped == workload
 *    requests; routed == requests + retries scheduled).
 *  - Degrade semantics: a straggler window slows the instance
 *    without downtime, and failure-aware routing steers around it.
 *  - Edge cases: zero-request workloads, fewer requests than
 *    instances, retry exhaustion, crashes landing on a draining
 *    autoscaled instance.
 *
 * And the PR-10 robustness guarantees:
 *
 *  - Failure-domain topology: whole-domain crashes strike every
 *    live member, correlated random domain crashes are
 *    deterministic, and the per-domain availability books close.
 *  - domain-spread routing beats least-loaded on worst-domain
 *    availability under correlated crashes.
 *  - Proactive draining migrates queued (never active) requests
 *    back through the router with zero lost work, and a crash
 *    landing mid-drain keeps the books.
 *  - A crash flushes the instance's KV prefix cache: the first
 *    post-rejoin turn of every session runs cold.
 *  - Availability-aware autoscaling holds spare capacity under
 *    faults and is inert without them.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fleet/faults.hh"
#include "fleet/fleet.hh"

namespace duplex
{
namespace
{

SimConfig
baseSim()
{
    SimConfig c;
    c.systemName = "gpu";
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workload.meanInputLen = 256;
    c.workload.meanOutputLen = 64;
    c.numRequests = 48;
    c.warmupRequests = 8;
    c.maxStages = 200000;
    return c;
}

/** Bit-exact comparison of two sample accumulators. */
void
expectSameSamples(const SampleStats &a, const SampleStats &b,
                  const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what; // same fp add order
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
}

/** Bit-exact comparison of two whole fleet outcomes. */
void
expectSameFleetResult(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.requestsRouted, b.requestsRouted);
    EXPECT_EQ(a.requestsRetired, b.requestsRetired);
    EXPECT_EQ(a.totals.time, b.totals.time);
    EXPECT_EQ(a.totals.totalEnergyJ(), b.totals.totalEnergyJ());
    expectSameSamples(a.metrics.e2eMs, b.metrics.e2eMs, "e2e");
    expectSameSamples(a.metrics.tbtMs, b.metrics.tbtMs, "tbt");
    expectSameSamples(a.metrics.t2ftMs, b.metrics.t2ftMs, "t2ft");
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.degradeWindows, b.degradeWindows);
    EXPECT_EQ(a.requestsLost, b.requestsLost);
    EXPECT_EQ(a.lostWorkTokens, b.lostWorkTokens);
    EXPECT_EQ(a.retriesScheduled, b.retriesScheduled);
    EXPECT_EQ(a.requestsDropped, b.requestsDropped);
    EXPECT_EQ(a.totalDowntime, b.totalDowntime);
    EXPECT_EQ(a.drains, b.drains);
    EXPECT_EQ(a.requestsMigrated, b.requestsMigrated);
    ASSERT_EQ(a.faultEvents.size(), b.faultEvents.size());
    for (std::size_t i = 0; i < a.faultEvents.size(); ++i) {
        EXPECT_EQ(a.faultEvents[i].kind, b.faultEvents[i].kind);
        EXPECT_EQ(a.faultEvents[i].instance,
                  b.faultEvents[i].instance);
        EXPECT_EQ(a.faultEvents[i].at, b.faultEvents[i].at);
        EXPECT_EQ(a.faultEvents[i].domain, b.faultEvents[i].domain);
    }
    ASSERT_EQ(a.perInstance.size(), b.perInstance.size());
    for (std::size_t i = 0; i < a.perInstance.size(); ++i)
        EXPECT_EQ(a.perInstance[i].generatedTokens,
                  b.perInstance[i].generatedTokens)
            << "instance " << i;
    ASSERT_EQ(a.perInstanceDowntime.size(),
              b.perInstanceDowntime.size());
    for (std::size_t i = 0; i < a.perInstanceDowntime.size(); ++i)
        EXPECT_EQ(a.perInstanceDowntime[i],
                  b.perInstanceDowntime[i])
            << "instance " << i;
    ASSERT_EQ(a.perDomain.size(), b.perDomain.size());
    for (std::size_t i = 0; i < a.perDomain.size(); ++i) {
        EXPECT_EQ(a.perDomain[i].domain, b.perDomain[i].domain);
        EXPECT_EQ(a.perDomain[i].instances,
                  b.perDomain[i].instances);
        EXPECT_EQ(a.perDomain[i].crashes, b.perDomain[i].crashes);
        EXPECT_EQ(a.perDomain[i].routed, b.perDomain[i].routed);
        EXPECT_EQ(a.perDomain[i].lost, b.perDomain[i].lost);
        EXPECT_EQ(a.perDomain[i].downtime,
                  b.perDomain[i].downtime);
    }
}

/** Collects the fault/retry callback stream of one run. */
class FaultRecorder : public FleetObserver
{
  public:
    void onFault(int instance, const FaultEvent &event,
                 PicoSec now) override
    {
        (void)now;
        (void)instance;
        faults.push_back(event);
    }

    void onRetry(int instance, const Request &request, int attempt,
                 bool dropped, PicoSec at) override
    {
        (void)instance;
        (void)request;
        (void)at;
        if (dropped)
            ++drops;
        else
            ++retries;
        lastAttempt = attempt;
    }

    std::vector<FaultEvent> faults;
    int retries = 0;
    int drops = 0;
    int lastAttempt = 0;
};

// --- the no-fault bit-identity contract -------------------------

TEST(Faults, InertFaultKnobsChangeNothing)
{
    // A config that never mentions faults vs one that fiddles every
    // knob that does NOT enable them (mttr, straggler shape, retry
    // discipline): byte-identical outcomes, zero fault counters.
    FleetConfig plain;
    plain.sim = baseSim();
    plain.sim.workload.qps = 12.0;
    plain.instances = 3;
    plain.policy = "least-loaded";

    FleetConfig inert = plain;
    inert.faults.mttrSec = 9.0;
    inert.faults.stragglerFraction = 0.9;
    inert.faults.stragglerFactor = 7.0;
    inert.faults.domainMttrSec = 2.0;
    inert.faults.drainFactorThreshold = 5.0;
    inert.retry.maxAttempts = 1;
    inert.retry.backoffSec = 3.0;
    inert.scaling.availabilityAware = true; // scaling disabled

    const FleetResult a = FleetDriver(plain).run();
    const FleetResult b = FleetDriver(inert).run();
    expectSameFleetResult(a, b);
    EXPECT_EQ(a.crashes, 0);
    EXPECT_EQ(a.requestsLost, 0);
    EXPECT_EQ(a.totalDowntime, 0);
    EXPECT_TRUE(a.faultEvents.empty());
    EXPECT_DOUBLE_EQ(a.availability(), 1.0);
}

TEST(Faults, HealthyFirstEqualsLeastLoadedWhenAllHealthy)
{
    // With every instance Healthy, the failure-aware policy must
    // degenerate to exactly least-loaded — no behavior tax for
    // running it on a reliable fleet.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 12.0;
    fc.instances = 3;
    fc.policy = "least-loaded";
    const FleetResult ll = FleetDriver(fc).run();

    fc.policy = "healthy-first";
    const FleetResult hf = FleetDriver(fc).run();
    expectSameFleetResult(ll, hf);
}

// --- crash semantics --------------------------------------------

TEST(Faults, CrashEvictsRetriesRejoinsAndBalances)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 64;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.events =
        parseFaultList("crash@1.0:0:0.5"); // down 0.5 s, rejoins

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    const FleetResult r = driver.run();

    EXPECT_EQ(r.crashes, 1);
    EXPECT_GT(r.requestsLost, 0) << "crash hit an idle instance; "
                                    "raise qps or move the event";
    EXPECT_EQ(r.retriesScheduled, r.requestsLost)
        << "nothing should be dropped under the default budget";
    EXPECT_EQ(r.requestsDropped, 0);
    EXPECT_GT(r.totalDowntime, 0);
    EXPECT_LT(r.availability(), 1.0);
    EXPECT_GT(r.availability(), 0.0);

    // Accounting closes: every workload request retired, and the
    // router saw each loss come back around exactly once.
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted,
              fc.sim.numRequests + r.retriesScheduled);

    // Timeline: the crash strikes at/after its scheduled time (the
    // stage-boundary alignment only moves events forward), then the
    // rejoin closes the window no earlier than the scheduled repair
    // time (strike time + downtime, anchored to the schedule).
    ASSERT_EQ(rec.faults.size(), 2u);
    EXPECT_EQ(rec.faults[0].kind, FaultKind::Crash);
    EXPECT_EQ(rec.faults[0].instance, 0);
    EXPECT_GE(rec.faults[0].at, secToPs(1.0));
    EXPECT_EQ(rec.faults[1].kind, FaultKind::Rejoin);
    EXPECT_GE(rec.faults[1].at, secToPs(1.5));
    EXPECT_GT(rec.faults[1].at, rec.faults[0].at);
    EXPECT_EQ(static_cast<std::int64_t>(rec.retries),
              r.retriesScheduled);
    EXPECT_EQ(rec.drops, 0);
    ASSERT_EQ(r.faultEvents.size(), rec.faults.size());
}

TEST(Faults, RetryExhaustionDropsEveryLoss)
{
    // maxAttempts = 0: a crashed-out request is dropped on the
    // spot. The crashed instance never rejoins, so the survivor
    // serves the rest — and the books still balance.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 64;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.events = parseFaultList("crash@1.0:0"); // no rejoin
    fc.retry.maxAttempts = 0;

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    const FleetResult r = driver.run();

    EXPECT_GT(r.requestsLost, 0);
    EXPECT_EQ(r.requestsDropped, r.requestsLost);
    EXPECT_EQ(r.retriesScheduled, 0);
    EXPECT_EQ(r.requestsRetired + r.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted, fc.sim.numRequests);
    EXPECT_EQ(static_cast<std::int64_t>(rec.drops),
              r.requestsDropped);
    EXPECT_EQ(rec.retries, 0);
}

// --- degrade semantics ------------------------------------------

TEST(Faults, DegradeWindowSlowsWithoutDowntime)
{
    // One instance, closed loop, the whole run inside a 4x
    // straggler window: everything still retires, the makespan
    // stretches, and availability stays 1.0 (slow != down).
    FleetConfig fc;
    fc.sim = baseSim();
    fc.instances = 1;
    const FleetResult plain = FleetDriver(fc).run();

    FleetConfig slow = fc;
    slow.faults.events = parseFaultList("degrade@0:0:1000:4");
    const FleetResult r = FleetDriver(slow).run();

    EXPECT_EQ(r.degradeWindows, 1);
    EXPECT_EQ(r.crashes, 0);
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_GT(r.metrics.elapsed, plain.metrics.elapsed);
    EXPECT_EQ(r.totalDowntime, 0);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

TEST(Faults, HealthyFirstSteersAroundTheStraggler)
{
    // Instance 0 straggles for the whole run; the failure-aware
    // policy must send the bulk of the traffic to instance 1.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 8.0;
    fc.sim.numRequests = 64;
    fc.instances = 2;
    fc.policy = "healthy-first";
    fc.faults.events = parseFaultList("degrade@0:0:1000:8");

    class Router : public FleetObserver
    {
      public:
        void onRequestRouted(int instance, const Request &,
                             PicoSec) override
        {
            ++routed[instance];
        }
        std::int64_t routed[2] = {0, 0};
    } router;

    FleetDriver driver(fc);
    driver.addObserver(&router);
    const FleetResult r = driver.run();
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_GT(router.routed[1], router.routed[0])
        << "healthy-first kept feeding the straggler";
}

// --- determinism ------------------------------------------------

TEST(Faults, RandomFaultsAreDeterministic)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 12.0;
    fc.sim.numRequests = 96;
    fc.instances = 4;
    fc.policy = "healthy-first";
    fc.faults.mtbfSec = 1.5;
    fc.faults.mttrSec = 0.5;
    fc.faults.stragglerFraction = 0.3;

    const FleetResult a = FleetDriver(fc).run();
    const FleetResult b = FleetDriver(fc).run();
    EXPECT_GT(a.crashes + a.degradeWindows, 0)
        << "MTBF too long to exercise anything";
    expectSameFleetResult(a, b);
}

// --- edge cases -------------------------------------------------

TEST(Faults, ZeroRequestWorkloadFinishesClean)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.numRequests = 0;
    fc.sim.warmupRequests = 0;
    fc.instances = 2;
    fc.faults.events = parseFaultList("crash@1.0:0:0.5");

    const FleetResult r = FleetDriver(fc).run();
    EXPECT_EQ(r.requestsRouted, 0);
    EXPECT_EQ(r.requestsRetired, 0);
    EXPECT_EQ(r.requestsLost, 0);
    EXPECT_EQ(r.requestsDropped, 0);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

TEST(Faults, FewerRequestsThanInstances)
{
    // 3 requests across 8 instances, one of which crashes while
    // mostly idle: everything still retires.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 4.0;
    fc.sim.numRequests = 3;
    fc.sim.warmupRequests = 0;
    fc.instances = 8;
    fc.policy = "round-robin";
    fc.faults.events = parseFaultList("crash@0.1:5:0.2");

    const FleetResult r = FleetDriver(fc).run();
    EXPECT_EQ(r.requestsRetired + r.requestsDropped, 3);
    EXPECT_EQ(r.requestsRouted,
              3 + r.retriesScheduled);
}

TEST(Faults, CrashesDuringAutoscaleDrainsKeepTheBooks)
{
    // The hardest interleaving: a diurnal ramp scaling up and
    // draining down while random crashes and stragglers land on
    // instances in every state (including already-draining ones).
    // The invariants must survive all of it.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workloadName = "diurnal";
    fc.sim.workload.diurnalLowQps = 0.5;
    fc.sim.workload.diurnalHighQps = 40.0;
    fc.sim.workload.diurnalPeriodSec = 16.0;
    fc.sim.workload.meanInputLen = 128;
    fc.sim.workload.meanOutputLen = 32;
    fc.sim.numRequests = 400;
    fc.instances = 1;
    fc.policy = "healthy-first";
    fc.scaling.enabled = true;
    fc.scaling.minInstances = 1;
    fc.scaling.maxInstances = 4;
    fc.scaling.upQpsPerInstance = 6.0;
    fc.scaling.downQpsPerInstance = 2.0;
    fc.scaling.windowSec = 2.0;
    fc.scaling.cooldownSec = 3.0;
    fc.faults.mtbfSec = 2.0;
    fc.faults.mttrSec = 0.5;
    fc.faults.stragglerFraction = 0.25;

    const FleetResult a = FleetDriver(fc).run();
    EXPECT_GT(a.crashes, 0) << "no crash landed; shorten the MTBF";
    EXPECT_GE(a.scaleUps, 1);
    EXPECT_EQ(a.requestsRetired + a.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(a.requestsRouted,
              fc.sim.numRequests + a.retriesScheduled);
    EXPECT_GT(a.totalDowntime, 0);
    EXPECT_LT(a.availability(), 1.0);

    // And the whole tangle double-runs byte-identical.
    const FleetResult b = FleetDriver(fc).run();
    expectSameFleetResult(a, b);
}

// --- failure domains --------------------------------------------

TEST(Faults, DomainTopologyStripesAndExplicitMapWins)
{
    FaultSpec striped;
    striped.numDomains = 3;
    EXPECT_EQ(striped.domainCount(), 3);
    EXPECT_TRUE(striped.hasDomains());
    EXPECT_EQ(striped.domainFor(0), 0);
    EXPECT_EQ(striped.domainFor(4), 1);
    EXPECT_EQ(striped.domainFor(5), 2);

    FaultSpec mapped;
    mapped.domainOf = {1, 1, 0};
    EXPECT_EQ(mapped.domainCount(), 2);
    EXPECT_EQ(mapped.domainFor(1), 1);
    EXPECT_EQ(mapped.domainFor(2), 0);
    // Instances past the explicit map stripe over its width.
    EXPECT_EQ(mapped.domainFor(3), 1);

    FaultSpec none;
    EXPECT_FALSE(none.hasDomains());
    EXPECT_EQ(none.domainFor(7), -1);
    // Topology alone never enables fault processes.
    EXPECT_FALSE(striped.enabled());
}

TEST(Faults, DomainTopologyAloneIsInertExceptReporting)
{
    // --domains with no fault process: identical serving behavior,
    // plus all-green per-domain reporting.
    FleetConfig plain;
    plain.sim = baseSim();
    plain.sim.workload.qps = 12.0;
    plain.instances = 4;
    plain.policy = "least-loaded";

    FleetConfig domains = plain;
    domains.faults.numDomains = 2;

    const FleetResult a = FleetDriver(plain).run();
    const FleetResult b = FleetDriver(domains).run();
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.requestsRouted, b.requestsRouted);
    EXPECT_EQ(a.requestsRetired, b.requestsRetired);
    expectSameSamples(a.metrics.tbtMs, b.metrics.tbtMs, "tbt");

    EXPECT_TRUE(a.perDomain.empty());
    ASSERT_EQ(b.perDomain.size(), 2u);
    for (const DomainAvailability &d : b.perDomain) {
        EXPECT_EQ(d.instances, 2);
        EXPECT_EQ(d.crashes, 0);
        EXPECT_EQ(d.lost, 0);
        EXPECT_EQ(d.downtime, 0);
        EXPECT_DOUBLE_EQ(d.availability, 1.0);
        EXPECT_DOUBLE_EQ(d.served(), 1.0);
    }
    EXPECT_GT(b.perDomain[0].routed, 0);
    EXPECT_DOUBLE_EQ(b.worstDomainAvailability(), 1.0);
}

TEST(Faults, WholeDomainCrashStrikesEveryMember)
{
    // 4 instances striped over 2 domains (0,2 -> domain 0); one
    // scheduled domain-0 crash must take BOTH members down with the
    // same downtime, and the per-domain books must close.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 96;
    fc.instances = 4;
    fc.policy = "least-loaded";
    fc.faults.numDomains = 2;
    fc.faults.events = parseFaultList("crash@1.0:domain=0:0.5");

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    const FleetResult r = driver.run();

    EXPECT_EQ(r.crashes, 2);
    int domainCrashes = 0;
    for (const FaultEvent &e : rec.faults)
        if (e.kind == FaultKind::Crash) {
            ++domainCrashes;
            EXPECT_EQ(e.domain, 0);
            EXPECT_TRUE(e.instance == 0 || e.instance == 2)
                << "struck instance " << e.instance
                << " outside domain 0";
            EXPECT_GE(e.at, secToPs(1.0));
        }
    EXPECT_EQ(domainCrashes, 2);

    ASSERT_EQ(r.perDomain.size(), 2u);
    EXPECT_EQ(r.perDomain[0].crashes, 2);
    EXPECT_EQ(r.perDomain[1].crashes, 0);
    EXPECT_GT(r.perDomain[0].downtime, 0);
    EXPECT_EQ(r.perDomain[1].downtime, 0);
    EXPECT_LT(r.perDomain[0].availability, 1.0);
    EXPECT_DOUBLE_EQ(r.perDomain[1].availability, 1.0);
    EXPECT_LE(r.worstDomainAvailability(),
              r.perDomain[1].served());

    // Downtime folds: per-instance downtime sums to the total, and
    // only domain-0 members accrued any.
    ASSERT_EQ(r.perInstanceDowntime.size(), 4u);
    PicoSec sum = 0;
    for (PicoSec d : r.perInstanceDowntime)
        sum += d;
    EXPECT_EQ(sum, r.totalDowntime);
    EXPECT_GT(r.perInstanceDowntime[0], 0);
    EXPECT_EQ(r.perInstanceDowntime[1], 0);
    EXPECT_GT(r.perInstanceDowntime[2], 0);
    EXPECT_EQ(r.perInstanceDowntime[3], 0);

    // Request accounting closes across the correlated strike.
    EXPECT_EQ(r.requestsRetired + r.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted,
              fc.sim.numRequests + r.retriesScheduled +
                  r.requestsMigrated);
    std::int64_t domainRouted = 0;
    for (const DomainAvailability &d : r.perDomain)
        domainRouted += d.routed;
    EXPECT_EQ(domainRouted, r.requestsRouted);
}

TEST(Faults, CorrelatedRandomDomainCrashesAreDeterministic)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 12.0;
    fc.sim.numRequests = 96;
    fc.instances = 4;
    fc.policy = "healthy-first";
    fc.faults.numDomains = 2;
    fc.faults.domainMtbfSec = 1.5;
    fc.faults.domainMttrSec = 0.5;

    const FleetResult a = FleetDriver(fc).run();
    const FleetResult b = FleetDriver(fc).run();
    EXPECT_GT(a.crashes, 0)
        << "domain MTBF too long to exercise anything";
    expectSameFleetResult(a, b);

    // Every crash lands in some domain, and the per-domain fold
    // accounts for each of them.
    int domainCrashes = 0;
    for (const DomainAvailability &d : a.perDomain)
        domainCrashes += d.crashes;
    EXPECT_EQ(domainCrashes, a.crashes);
}

TEST(Faults, DomainSpreadBeatsLeastLoadedOnWorstDomain)
{
    // The rejoin-flood trap: domain 1 crashes, rejoins empty, and
    // least-loaded (which chases KV headroom) floods the freshly
    // empty domain right before it crashes AGAIN — so domain 1
    // eats a deep queue of losses. domain-spread balances in-flight
    // work ACROSS domains, capping the pile-up any single strike
    // can take out.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 96.0;
    fc.sim.numRequests = 256;
    fc.instances = 4;
    fc.faults.numDomains = 2;
    fc.faults.events = parseFaultList(
        "crash@1.0:domain=1:0.5; crash@2.0:domain=1:0.75");
    fc.retry.maxAttempts = 6;

    fc.policy = "least-loaded";
    const FleetResult ll = FleetDriver(fc).run();
    fc.policy = "domain-spread";
    const FleetResult ds = FleetDriver(fc).run();

    EXPECT_EQ(ll.crashes, 4);
    EXPECT_EQ(ds.crashes, 4);
    EXPECT_GT(ds.worstDomainAvailability(),
              ll.worstDomainAvailability())
        << "domain-spread should defend the struck domain's "
           "served fraction";
    // Both drain the stream eventually — resilience, not triage.
    EXPECT_EQ(ds.requestsRetired + ds.requestsDropped,
              fc.sim.numRequests);
}

// --- proactive draining -----------------------------------------

TEST(Faults, ProactiveDrainMigratesQueuedWithoutLoss)
{
    // A heavy queue builds on instance 0 (arrivals far outrun the
    // 16-wide batch), then a 4x degrade crosses the drain
    // threshold: the queued requests must migrate back through the
    // router as NEW routes (no retry budget, no lost work), while
    // the active batch keeps running.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 200.0;
    fc.sim.numRequests = 96;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.drainFactorThreshold = 2.0;
    fc.faults.events = parseFaultList("degrade@0.5:0:3:4");

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    const FleetResult r = driver.run();

    EXPECT_EQ(r.drains, 1);
    EXPECT_GT(r.requestsMigrated, 0)
        << "the degrade hit an empty queue; raise qps";
    EXPECT_EQ(r.requestsLost, 0);
    EXPECT_EQ(r.retriesScheduled, 0);
    EXPECT_EQ(r.requestsDropped, 0);
    EXPECT_EQ(r.crashes, 0);
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted,
              fc.sim.numRequests + r.requestsMigrated);
    // Slow, never down.
    EXPECT_EQ(r.totalDowntime, 0);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);

    // The timeline surfaces the drain on the degraded instance.
    bool sawDrain = false;
    for (const FaultEvent &e : rec.faults)
        if (e.kind == FaultKind::Drain) {
            sawDrain = true;
            EXPECT_EQ(e.instance, 0);
        }
    EXPECT_TRUE(sawDrain);

    // And the tangle double-runs byte-identical.
    FleetDriver again(fc);
    const FleetResult r2 = again.run();
    expectSameFleetResult(r, r2);
}

TEST(Faults, DrainBelowThresholdNeverFires)
{
    // A 1.5x straggler under a 2x threshold: same run as with the
    // drain feature disabled, zero drains.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 24.0;
    fc.sim.numRequests = 96;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.events = parseFaultList("degrade@0.5:0:3:1.5");

    FleetConfig gated = fc;
    gated.faults.drainFactorThreshold = 2.0;

    const FleetResult a = FleetDriver(fc).run();
    const FleetResult b = FleetDriver(gated).run();
    expectSameFleetResult(a, b);
    EXPECT_EQ(b.drains, 0);
    EXPECT_EQ(b.requestsMigrated, 0);
}

TEST(Faults, DrainOnSingleInstanceFleetCompletes)
{
    // Degenerate but legal: the ONLY instance drains. Nothing else
    // can take the migrated requests, so the driver must hold them
    // until the degrade window closes (the force-drain-end path)
    // instead of deadlocking.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 48;
    fc.instances = 1;
    fc.faults.drainFactorThreshold = 2.0;
    fc.faults.events = parseFaultList("degrade@0.5:0:2:4");

    const FleetResult r = FleetDriver(fc).run();
    EXPECT_EQ(r.drains, 1);
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted,
              fc.sim.numRequests + r.requestsMigrated);
    EXPECT_EQ(r.requestsLost, 0);
}

TEST(Faults, CrashDuringProactiveDrainKeepsTheBooks)
{
    // A crash lands on an instance that is already fault-draining:
    // the crash supersedes the drain (its queued requests already
    // migrated; the active batch is now lost work), and after the
    // rejoin the instance admits again. Books must close across
    // migration + retries, and the whole thing double-runs
    // byte-identical.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 200.0;
    fc.sim.numRequests = 96;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.drainFactorThreshold = 2.0;
    fc.faults.events =
        parseFaultList("degrade@0.5:0:5:4; crash@1.0:0:0.5");

    const FleetResult r = FleetDriver(fc).run();
    EXPECT_EQ(r.drains, 1);
    EXPECT_EQ(r.crashes, 1);
    EXPECT_GT(r.requestsMigrated, 0);
    EXPECT_EQ(r.requestsRetired + r.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted,
              fc.sim.numRequests + r.retriesScheduled +
                  r.requestsMigrated);
    EXPECT_GT(r.totalDowntime, 0);

    const FleetResult r2 = FleetDriver(fc).run();
    expectSameFleetResult(r, r2);
}

// --- sessions + prefix cache under faults -----------------------

/** Session fleet with per-instance prefix caches (no shared
 *  prefix, so every cache entry is per-session context). */
FleetConfig
sessionFaultFleet(int instances)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workloadName = "session";
    fc.sim.workload.qps = 4.0; // fresh sessions/s
    fc.sim.workload.meanInputLen = 192;
    fc.sim.workload.meanOutputLen = 48;
    fc.sim.workload.sessionTurns = 4;
    fc.sim.workload.sharedPrefixTokens = 0;
    fc.sim.workload.meanThinkSec = 0.1;
    fc.sim.numRequests = 48;
    // Far above the run's working set so the fault-free baseline
    // never evicts for capacity — every eviction in a faulted run
    // is a crash flush.
    fc.sim.prefixCache.budgetBytes = 8ll << 30;
    fc.sim.prefixCache.evictPolicy = "lru";
    fc.instances = instances;
    fc.policy = instances > 1 ? "session-affinity" : "round-robin";
    return fc;
}

TEST(Faults, CrashFlushesThePrefixCache)
{
    // Regression: applyCrash used to leave the instance's
    // PrefixCachePool warm across the downtime, so post-rejoin
    // turns hit KV that died with the instance. The budget is far
    // bigger than the run, so the baseline evicts NOTHING — every
    // eviction in the crashed run is the flush — and each
    // session's first post-rejoin turn must run fully cold.
    const FleetConfig plainCfg = sessionFaultFleet(1);
    const FleetResult plain = FleetDriver(plainCfg).run();
    EXPECT_GT(plain.prefixCache.hits, 0);
    EXPECT_EQ(plain.prefixCache.evictions, 0);

    FleetConfig fc = plainCfg;
    fc.faults.events = parseFaultList("crash@1.5:0:0.5");

    class Retirements : public FleetObserver
    {
      public:
        void onRequestRetired(int, const Request &r,
                              PicoSec now) override
        {
            retired.push_back({r.sessionId, r.cachedTokens, now});
        }
        struct Row
        {
            std::int64_t session;
            std::int64_t cachedTokens;
            PicoSec at;
        };
        std::vector<Row> retired;
    } log;

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    driver.addObserver(&log);
    const FleetResult r = driver.run();

    EXPECT_EQ(r.crashes, 1);
    EXPECT_GT(r.prefixCache.evictions, 0)
        << "the crash flushed nothing";
    EXPECT_LT(r.prefixCache.hits, plain.prefixCache.hits)
        << "post-rejoin turns still ran warm";

    // Zero warm tokens on the first post-rejoin turn of every
    // session: nothing can hit a flushed pool until some turn
    // re-installs its context.
    PicoSec rejoinAt = -1;
    for (const FaultEvent &e : rec.faults)
        if (e.kind == FaultKind::Rejoin)
            rejoinAt = e.at;
    ASSERT_GE(rejoinAt, 0);
    std::set<std::int64_t> seen;
    int postRejoinFirsts = 0;
    for (const auto &row : log.retired) {
        if (row.at <= rejoinAt)
            continue;
        if (!seen.insert(row.session).second)
            continue; // later turn; may be warm again
        ++postRejoinFirsts;
        EXPECT_EQ(row.cachedTokens, 0)
            << "session " << row.session
            << " hit the cache across the crash";
    }
    EXPECT_GT(postRejoinFirsts, 0)
        << "no session retired after the rejoin; move the crash";
}

TEST(Faults, WholeDomainCrashWithSessionsReroutes)
{
    // Satellite 3: a whole-domain crash under the session workload.
    // Retirement-feedback turns pinned to the downed domain must
    // re-route instead of deadlocking the feedback loop, and the
    // run must double-run byte-identical.
    FleetConfig fc = sessionFaultFleet(4);
    fc.faults.numDomains = 2;
    fc.faults.events = parseFaultList("crash@1.0:domain=0:0.5");

    const FleetResult a = FleetDriver(fc).run();
    EXPECT_EQ(a.crashes, 2);
    EXPECT_EQ(a.requestsRetired + a.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(a.requestsRouted,
              fc.sim.numRequests + a.retriesScheduled +
                  a.requestsMigrated);
    ASSERT_EQ(a.perDomain.size(), 2u);
    EXPECT_EQ(a.perDomain[0].crashes, 2);

    const FleetResult b = FleetDriver(fc).run();
    expectSameFleetResult(a, b);
    EXPECT_EQ(a.prefixCache.hits, b.prefixCache.hits);
    EXPECT_EQ(a.prefixCache.evictions, b.prefixCache.evictions);
}

// --- availability-aware autoscaling -----------------------------

TEST(Faults, AvailabilityAwareScalingIsInertWithoutFaults)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 96;
    fc.instances = 1;
    fc.policy = "least-loaded";
    fc.scaling.enabled = true;
    fc.scaling.minInstances = 1;
    fc.scaling.maxInstances = 4;
    fc.scaling.upQpsPerInstance = 6.0;
    fc.scaling.downQpsPerInstance = 1.0;
    fc.scaling.windowSec = 2.0;
    fc.scaling.cooldownSec = 1.0; // 96 req at 16 qps span only 6 s

    FleetConfig aware = fc;
    aware.scaling.availabilityAware = true;

    const FleetResult a = FleetDriver(fc).run();
    const FleetResult b = FleetDriver(aware).run();
    EXPECT_GE(a.scaleUps, 1);
    expectSameFleetResult(a, b);
    EXPECT_EQ(a.scaleUps, b.scaleUps);
    EXPECT_EQ(a.peakInstances, b.peakInstances);
}

TEST(Faults, AvailabilityAwareScalingHoldsSpareCapacity)
{
    // Under sustained crashes the aware autoscaler discounts
    // accepting capacity by observed unavailability, so it scales
    // at least as eagerly as the plain one — never less.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 192;
    fc.instances = 1;
    fc.policy = "healthy-first";
    fc.scaling.enabled = true;
    fc.scaling.minInstances = 1;
    fc.scaling.maxInstances = 6;
    fc.scaling.upQpsPerInstance = 6.0;
    fc.scaling.downQpsPerInstance = 1.0;
    fc.scaling.windowSec = 2.0;
    fc.scaling.cooldownSec = 1.0;
    fc.faults.mtbfSec = 1.0;
    fc.faults.mttrSec = 0.5;

    FleetConfig aware = fc;
    aware.scaling.availabilityAware = true;

    const FleetResult plain = FleetDriver(fc).run();
    const FleetResult spare = FleetDriver(aware).run();
    EXPECT_GT(plain.crashes, 0);
    EXPECT_GE(spare.scaleUps, plain.scaleUps);
    EXPECT_GE(spare.peakInstances, plain.peakInstances);
    EXPECT_EQ(spare.requestsRetired + spare.requestsDropped,
              fc.sim.numRequests);

    // Deterministic like everything else.
    const FleetResult again = FleetDriver(aware).run();
    expectSameFleetResult(spare, again);
}

// --- the --faults grammar ---------------------------------------

TEST(Faults, ParseFaultListGrammar)
{
    const auto events =
        parseFaultList("crash@2:0; degrade@4:1:2:3.5, crash@6:2:1");
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, FaultKind::Crash);
    EXPECT_EQ(events[0].instance, 0);
    EXPECT_EQ(events[0].at, secToPs(2.0));
    EXPECT_EQ(events[0].duration, -1); // never rejoins
    EXPECT_EQ(events[1].kind, FaultKind::Degrade);
    EXPECT_EQ(events[1].instance, 1);
    EXPECT_EQ(events[1].duration, secToPs(2.0));
    EXPECT_DOUBLE_EQ(events[1].factor, 3.5);
    EXPECT_EQ(events[2].duration, secToPs(1.0));
}

TEST(Faults, ParseDomainCrashGrammar)
{
    const auto events =
        parseFaultList("crash@2:domain=1:1.5; crash@4:domain=0");
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, FaultKind::Crash);
    EXPECT_EQ(events[0].instance, -1); // whole domain, no instance
    EXPECT_EQ(events[0].domain, 1);
    EXPECT_EQ(events[0].at, secToPs(2.0));
    EXPECT_EQ(events[0].duration, secToPs(1.5));
    EXPECT_EQ(events[1].domain, 0);
    EXPECT_EQ(events[1].duration, -1); // never rejoins
    // Plain instance events carry no domain.
    EXPECT_EQ(parseFaultList("crash@2:0")[0].domain, -1);
}

TEST(Faults, ParseDomainRejectsNonCrash)
{
    EXPECT_EXIT({ parseFaultList("degrade@2:domain=1:2:3"); },
                ::testing::ExitedWithCode(1),
                "only crash can target a domain");
}

TEST(Faults, DomainEventNeedsTopology)
{
    // A scheduled domain crash without a domain map is a config
    // bug, not a silent no-op.
    EXPECT_EXIT(
        {
            FleetConfig fc;
            fc.sim = baseSim();
            fc.instances = 2;
            fc.faults.events =
                parseFaultList("crash@1:domain=0:0.5");
            FleetDriver(fc).run();
        },
        ::testing::ExitedWithCode(1), "domain");
}

TEST(Faults, ParseFaultListNamesTheBadItem)
{
    EXPECT_EXIT({ parseFaultList("crash@2:0;flood@3:1"); },
                ::testing::ExitedWithCode(1), "flood@3:1");
}

TEST(Faults, NegativeRetryBudgetIsFatal)
{
    EXPECT_EXIT(
        {
            FleetConfig fc;
            fc.sim = baseSim();
            fc.faults.events = parseFaultList("crash@1:0");
            fc.retry.maxAttempts = -1;
            FleetDriver(fc).run();
        },
        ::testing::ExitedWithCode(1), "maxAttempts");
}

} // namespace
} // namespace duplex
